// Command proteusfetch downloads one object from a proteusd fetch
// server (proteusd recv -serve DIR) using the segmented bulk-transfer
// protocol: FETCH requests are paced by a congestion controller at the
// downloading endpoint, SEGMENT responses are reassembled in order and
// verified against the server's whole-object digest.
//
//	proteusd recv -listen 127.0.0.1:9741 -serve /srv/objects
//	proteusfetch -to 127.0.0.1:9741 -object kernel.tar -out /tmp/kernel.tar
//
// The default controller is Proteus-S, so a fetch scavenges: it soaks
// up leftover capacity and yields to primary traffic sharing the path.
// An emulated bottleneck can be interposed with -shim.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"pccproteus/internal/exp"
	"pccproteus/internal/fetch"
	"pccproteus/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "proteusfetch: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("proteusfetch", flag.ExitOnError)
	to := fs.String("to", "127.0.0.1:9741", "fetch server UDP address")
	object := fs.String("object", "", "object name to fetch (file name in the server's -serve dir)")
	out := fs.String("out", "", "output file (default: object's base name; \"-\" discards)")
	proto := fs.String("proto", exp.ProtoProteusS, "controller (proteus-s, proteus-p, proteus-h, ...)")
	seed := fs.Int64("seed", 1, "controller RNG seed")
	window := fs.Int("window", 0, "reassembly window in segments (0 = default)")
	segSize := fs.Int("segsize", 0, "segment payload bytes; must match the server (0 = default)")
	timeout := fs.Float64("timeout", 0, "abort after this many seconds (0 = no limit)")
	quiet := fs.Bool("quiet", false, "suppress per-second progress")
	useShim := fs.Bool("shim", false, "interpose the impairment shim")
	mbps := fs.Float64("mbps", 20, "shim bottleneck capacity, Mbps")
	rtt := fs.Float64("rtt", 0.040, "shim base round-trip time, seconds")
	queue := fs.Int("queue", 0, "shim queue bytes (0 = 1.5×BDP)")
	loss := fs.Float64("loss", 0, "shim random loss probability")
	fs.Parse(args)

	if *object == "" {
		return fmt.Errorf("-object is required (a file name served by proteusd recv -serve)")
	}

	dst, err := net.ResolveUDPAddr("udp", *to)
	if err != nil {
		return err
	}
	if *useShim {
		q := *queue
		if q <= 0 {
			q = int(1.5 * *mbps * 1e6 / 8 * *rtt)
		}
		shim, err := wire.NewShim(wire.ShimConfig{
			RateMbps: *mbps, QueueBytes: q, Delay: *rtt / 2, AckDelay: *rtt / 2,
			LossProb: *loss, Seed: wire.MixSeed(*seed, 0x77),
		}, dst)
		if err != nil {
			return err
		}
		if err := shim.Start(); err != nil {
			return err
		}
		defer shim.Stop()
		dst = shim.Addr()
		fmt.Printf("proteusfetch: shim %.0f Mbps / %.0f ms RTT at %s\n", *mbps, *rtt*1e3, dst)
	}

	// Output sink. Segments arrive strictly in order, so sequential
	// writes reproduce the object byte for byte.
	var sink *os.File
	dest := *out
	if dest == "" {
		dest = filepath.Base(*object)
	}
	if dest != "-" {
		sink, err = os.Create(dest)
		if err != nil {
			return err
		}
		defer sink.Close()
	}

	conn, err := net.DialUDP("udp", nil, dst)
	if err != nil {
		return err
	}
	conn.SetReadBuffer(1 << 21)
	conn.SetWriteBuffer(1 << 21)

	var writeErr error
	rng := rand.New(rand.NewSource(wire.MixSeed(*seed, 0x55)))
	f := &fetch.Fetcher{
		Conn: conn, CC: exp.NewControllerRNG(rng, *proto),
		ObjID: fetch.ObjectID(*object), SegSize: *segSize, Window: *window,
		OnData: func(seg int64, payload []byte) {
			if sink != nil && writeErr == nil {
				_, writeErr = sink.Write(payload)
			}
		},
	}
	if err := f.Start(); err != nil {
		conn.Close()
		return err
	}
	defer f.Stop()
	fmt.Printf("proteusfetch: %s <- %q at %s (%s)\n", dest, *object, *to, *proto)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	var deadline <-chan time.Time
	if *timeout > 0 {
		deadline = time.After(time.Duration(*timeout * float64(time.Second)))
	}
	t0 := time.Now()
	var last fetch.FetcherStats
	for {
		select {
		case <-f.Done():
			return report(f, t0, writeErr)
		case <-sig:
			fmt.Println("proteusfetch: interrupted")
			return report(f, t0, writeErr)
		case <-deadline:
			return fmt.Errorf("timed out after %.0fs (%d bytes delivered)", *timeout, f.Stats().Delivered)
		case <-tick.C:
			st := f.Stats()
			if !*quiet {
				fmt.Printf("rx %7.3f Mbps  segs=%d lost=%d srtt=%5.1fms%s\n",
					float64(st.Delivered-last.Delivered)*8/1e6,
					st.SegsRx, st.LostReqs, st.SRTT*1e3, outageNote(st))
			}
			last = st
		}
	}
}

func outageNote(st fetch.FetcherStats) string {
	if st.InOutage {
		return "  [outage]"
	}
	return ""
}

// report prints the transfer summary and returns non-nil if the object
// did not arrive intact.
func report(f *fetch.Fetcher, t0 time.Time, writeErr error) error {
	st := f.Stats()
	secs := time.Since(t0).Seconds()
	p50, p95, p99 := f.RTTQuantiles()
	mbps := 0.0
	if secs > 0 {
		mbps = float64(st.Delivered) * 8 / secs / 1e6
	}
	fmt.Printf("total: %d bytes in %.2fs (%.2f Mbps)  reqs=%d lost=%d dups=%d refetched=%d\n",
		st.Delivered, secs, mbps, st.ReqsSent, st.LostReqs, st.Dups, st.Refetched)
	fmt.Printf("rtt: p50=%.1fms p95=%.1fms p99=%.1fms\n", p50*1e3, p95*1e3, p99*1e3)
	if writeErr != nil {
		return fmt.Errorf("writing output: %w", writeErr)
	}
	if !st.Done {
		return fmt.Errorf("incomplete: %d bytes delivered", st.Delivered)
	}
	if !st.Verified {
		return fmt.Errorf("checksum mismatch: object corrupt")
	}
	fmt.Println("sha256: verified")
	return nil
}
