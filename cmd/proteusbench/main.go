// Command proteusbench regenerates the paper's evaluation figures on the
// emulated network substrate and prints them as text tables.
//
// Usage:
//
//	proteusbench -fig 6                 # one figure at paper scale
//	proteusbench -fig all -fast         # every figure, reduced grids
//	proteusbench -fig 8 -trials 1       # heavy sweep, single trial
//	proteusbench -fig all -fast -jobs 4 # four figures in parallel
//	proteusbench -fig 14 -fast -trace /tmp/t -trace-events mi,rate,drop
//	proteusbench -chaos -fast           # cross-world fault replay (real time)
//	proteusbench -campaign specs/campaign-smoke.json -campaign-out agg.json
//	proteusbench -perf                  # hot-path micro-benchmarks → BENCH_proteus.json
//
// Figure ids: 2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19,20,21,22,
// plus "ablation", "equilibrium", the §7.2 extension "lte", and the
// Appendix-F bulk-fetch scavenger-yield table "fetch".
//
// Independent figures run on a -jobs worker pool (default: NumCPU capped
// at the figure count); output is printed in figure order regardless of
// completion order. A failing figure no longer aborts the batch: every
// failure is collected and reported at exit.
//
// With -trace, every simulation a figure runs records flight-recorder
// events and writes one JSONL file per flow under <dir>/<figure>/;
// -trace-events selects event kinds (mi,rate,util,drop,queue,rtt,mode or
// "all") and -trace-csv writes a CSV beside each JSONL.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"

	"pccproteus/internal/equi"
	"pccproteus/internal/exp"
	"pccproteus/internal/stats"
	"pccproteus/internal/trace"
)

var csvDir string

func main() {
	fig := flag.String("fig", "all", "figure to regenerate (2..22, ablation, equilibrium, lte, cellular, satellite, incast, fetch, all)")
	fast := flag.Bool("fast", false, "reduced grids and durations")
	trials := flag.Int("trials", 0, "trials per data point (0 = default)")
	jobs := flag.Int("jobs", 0, "figures to run in parallel (0 = NumCPU, capped at figure count)")
	traceDir := flag.String("trace", "", "write per-flow flight-recorder JSONL traces under this directory")
	traceEvents := flag.String("trace-events", "all", "comma-separated event kinds to trace (mi,rate,util,drop,queue,rtt,mode)")
	traceCSV := flag.Bool("trace-csv", false, "also write traces as CSV beside each JSONL")
	flag.StringVar(&csvDir, "csv", "", "also write plot-ready CSV files into this directory")
	seed := flag.Int64("seed", 0, "master seed for all per-trial RNGs (0 = historical defaults)")
	hunt := flag.String("hunt", "", "hunt for invariant violations of this controller instead of running figures")
	huntBudget := flag.Int("hunt-budget", 200, "schedule evaluations to spend in a -hunt search")
	huntModel := flag.String("hunt-model", "", "hunt over this path model (lte, 5g, leo) instead of a static bottleneck")
	huntOut := flag.String("hunt-out", "", "write the minimized counterexample JSON here (with -hunt)")
	replay := flag.String("replay", "", "re-verify a counterexample replay file instead of running figures")
	wireMode := flag.Bool("wire", false, "run the sim-vs-wire parity table (real UDP loopback, real time) instead of figures; with -replay, replay the counterexample through the wire shim")
	chaosMode := flag.Bool("chaos", false, "replay the chaos fault plan through the simulator and the real UDP shim and compare survival + fault attribution (real time)")
	wireProtos := flag.String("wire-protos", "proteus-p,proteus-s,proteus-h", "comma-separated protocols for -wire")
	wireEngine := flag.Bool("wire-engine", false, "run the -wire parity wire half on the sharded engine datapath instead of the legacy per-flow path")
	wireDur := flag.Float64("wire-dur", 0, "seconds per -wire run (0 = 12, or 8 with -fast)")
	wireMbps := flag.Float64("wire-mbps", 20, "bottleneck capacity for -wire")
	wireRTT := flag.Float64("wire-rtt", 0.040, "base RTT for -wire, seconds")
	campaignSpec := flag.String("campaign", "", "run a simulation campaign from this JSON spec instead of figures")
	campaignWorkers := flag.Int("campaign-workers", 0, "campaign worker pool size (0 = NumCPU); the aggregate is identical for any value")
	campaignOut := flag.String("campaign-out", "", "write the campaign aggregate JSON here (with -campaign)")
	perfMode := flag.Bool("perf", false, "run hot-path micro-benchmarks instead of figures")
	perfOut := flag.String("perf-out", "BENCH_proteus.json", "output path for the -perf report")
	flag.Parse()

	if *campaignSpec != "" {
		if csvDir != "" {
			if err := os.MkdirAll(csvDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "proteusbench: %v\n", err)
				os.Exit(1)
			}
		}
		if err := runCampaign(os.Stdout, *campaignSpec, *campaignWorkers, *campaignOut); err != nil {
			fmt.Fprintf(os.Stderr, "proteusbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *perfMode {
		if err := runPerf(os.Stdout, *perfOut); err != nil {
			fmt.Fprintf(os.Stderr, "proteusbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *chaosMode {
		if err := runChaosSoak(os.Stdout, *wireProtos, *wireDur, *wireMbps, *wireRTT, *seed, *fast); err != nil {
			fmt.Fprintf(os.Stderr, "proteusbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *wireMode && *replay == "" {
		if err := runWireParity(os.Stdout, *wireProtos, *wireDur, *wireMbps, *wireRTT, *seed, *fast, *wireEngine); err != nil {
			fmt.Fprintf(os.Stderr, "proteusbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *replay != "" && *wireMode {
		if err := runWireReplay(os.Stdout, *replay); err != nil {
			fmt.Fprintf(os.Stderr, "proteusbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *hunt != "" || *replay != "" {
		var err error
		if *replay != "" {
			err = runReplay(os.Stdout, *replay)
		} else {
			huntSeed := *seed
			if huntSeed == 0 {
				huntSeed = 1
			}
			huntJobs := *jobs
			if huntJobs <= 0 {
				huntJobs = runtime.NumCPU()
			}
			err = runHunt(os.Stdout, *hunt, *huntModel, *huntBudget, huntSeed, huntJobs, *fast, *huntOut)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "proteusbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "proteusbench: %v\n", err)
			os.Exit(1)
		}
	}
	mask, err := trace.ParseKinds(*traceEvents)
	if err != nil {
		fmt.Fprintf(os.Stderr, "proteusbench: %v\n", err)
		os.Exit(1)
	}

	ids := strings.Split(*fig, ",")
	if *fig == "all" {
		ids = []string{"2", "3", "4", "5", "6", "7", "8", "9", "10", "11", "12", "13",
			"14", "15", "16", "17", "18", "19", "21", "22", "ablation", "equilibrium", "fetch",
			"cellular", "satellite", "incast"}
	}
	for i, id := range ids {
		ids[i] = strings.TrimSpace(id)
	}

	workers := *jobs
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(ids) {
		workers = len(ids)
	}

	type result struct {
		out  bytes.Buffer
		errs []error
		done chan struct{}
	}
	results := make([]*result, len(ids))
	for i := range results {
		results[i] = &result{done: make(chan struct{})}
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, id := range ids {
		i, id := i, id
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			r := results[i]
			defer close(r.done)
			o := exp.Options{Fast: *fast, Trials: *trials, Seed: *seed}
			var tc *exp.Tracing
			if *traceDir != "" {
				tc = &exp.Tracing{Dir: filepath.Join(*traceDir, figDirName(id)), Mask: mask, CSV: *traceCSV}
				o.Trace = tc
			}
			if err := run(&r.out, id, o); err != nil {
				r.errs = append(r.errs, fmt.Errorf("fig %s: %w", id, err))
			}
			if err := tc.Err(); err != nil {
				r.errs = append(r.errs, fmt.Errorf("fig %s: %w", id, err))
			}
		}()
	}

	// Print in figure order as each finishes; collect every failure.
	var failures []error
	for _, r := range results {
		<-r.done
		os.Stdout.Write(r.out.Bytes())
		failures = append(failures, r.errs...)
	}
	wg.Wait()
	if len(failures) > 0 {
		for _, err := range failures {
			fmt.Fprintf(os.Stderr, "proteusbench: %v\n", err)
		}
		fmt.Fprintf(os.Stderr, "proteusbench: %d figure(s) failed\n", len(failures))
		os.Exit(1)
	}
}

// figDirName maps a figure id to its trace subdirectory ("14" → "fig14",
// "lte" → "lte").
func figDirName(id string) string {
	if id != "" && id[0] >= '0' && id[0] <= '9' {
		return "fig" + id
	}
	return id
}

var appendixSingles = []string{
	exp.ProtoProteusS, exp.ProtoLEDBAT25, exp.ProtoLEDBAT, exp.ProtoCubic,
	exp.ProtoBBR, exp.ProtoProteusP, exp.ProtoCopa, exp.ProtoVivace,
}

func run(w io.Writer, id string, o exp.Options) error {
	switch id {
	case "2":
		r := exp.Fig2(o)
		fmt.Fprintln(w, "# Fig 2: PDF of RTT deviation/gradient under Poisson CUBIC arrivals")
		for i, rate := range r.ArrivalRates {
			fmt.Fprintf(w, "arrival=%g/s  dev: mean=%.4fms p90=%.4fms   |grad|: mean=%.5f p90=%.5f\n",
				rate,
				histMean(r.DevHistograms[i])*1000, histP90(r.DevHistograms[i])*1000,
				histMean(r.GradHistograms[i]), histP90(r.GradHistograms[i]))
		}
		fmt.Fprintf(w, "confusion probability: deviation=%.4f  gradient=%.4f (paper: 0.006 vs 0.080)\n\n",
			r.DevConfusion, r.GradConfusion)
	case "3":
		tput, infl := exp.Fig3(o, nil)
		emit(w, "fig3a", tput)
		emit(w, "fig3b", infl)
	case "4":
		emit(w, "fig4", exp.Fig4(o, nil))
	case "5":
		emit(w, "fig5", exp.Fig5(o, nil))
	case "6", "7":
		cells := exp.Fig6(o, nil)
		for _, scv := range []string{exp.ProtoLEDBAT, exp.ProtoProteusS, exp.ProtoProteusP, exp.ProtoCopa} {
			emit(w, "fig6_"+scv, exp.Fig6Table(cells, scv))
		}
	case "8":
		emitCDF(w, "fig8", "Fig 8: primary throughput ratio over configuration sweep", exp.Fig8(o, nil, nil))
	case "9":
		emitCDF(w, "fig9", "Fig 9: normalized single-flow throughput on WiFi-like paths", exp.Fig9(o, nil))
	case "10":
		emitCDF(w, "fig10", "Fig 10: primary throughput ratio on WiFi-like paths", exp.Fig10(o, nil, nil))
	case "11":
		emit(w, "fig11a", exp.Fig11Video(o))
		emitCDF(w, "fig11b", "Fig 11(b): page load time (s) with background flow", exp.Fig11Web(o))
	case "12":
		emit(w, "fig12", exp.Fig12Table(exp.Fig12(o, false), false))
	case "13":
		emit(w, "fig13", exp.Fig12Table(exp.Fig12(o, true), true))
	case "14":
		printTimelines(w, "Fig 14: BBR-S throughput over time", exp.Fig14(o))
	case "15":
		tput, infl := exp.Fig3(o, appendixSingles)
		fmt.Fprintln(w, strings.Replace(tput.Render(), "Fig 3(a)", "Fig 15(a)", 1))
		fmt.Fprintln(w, strings.Replace(infl.Render(), "Fig 3(b)", "Fig 15(b)", 1))
	case "16":
		fmt.Fprintln(w, strings.Replace(exp.Fig4(o, appendixSingles).Render(), "Fig 4", "Fig 16", 1))
	case "17":
		fmt.Fprintln(w, strings.Replace(exp.Fig5(o, appendixSingles).Render(), "Fig 5", "Fig 17", 1))
	case "18":
		printTimelines(w, "Fig 18: 4-flow competition over time", exp.Fig18(o, nil))
	case "19", "20":
		cells := exp.Fig6(o, []string{exp.ProtoLEDBAT25, exp.ProtoLEDBAT, exp.ProtoProteusS})
		for _, scv := range []string{exp.ProtoLEDBAT25, exp.ProtoLEDBAT, exp.ProtoProteusS} {
			fmt.Fprintln(w, strings.Replace(exp.Fig6Table(cells, scv).Render(), "Fig 6", "Fig 19/20", 1))
		}
	case "21":
		fmt.Fprintln(w, exp.RenderCDFs("Fig 21: single-flow WiFi throughput incl. LEDBAT-25", exp.Fig9(o, appendixSingles)))
	case "22":
		fmt.Fprintln(w, exp.RenderCDFs("Fig 22: WiFi yielding incl. LEDBAT-25",
			exp.Fig10(o, nil, []string{exp.ProtoProteusS, exp.ProtoLEDBAT25, exp.ProtoLEDBAT})))
	case "ablation":
		emit(w, "ablation", exp.AblationTable(exp.Ablation(o)))
	case "fetch":
		emit(w, "fetch_yield", exp.FetchYieldTable(exp.FetchYield(o)))
	case "lte":
		emit(w, "lte", exp.LTESolo(o, append(append([]string{}, exp.AllSingle...), exp.ProtoAllegro)))
	case "equilibrium":
		printEquilibrium(w)
	case "cellular":
		for _, model := range []string{"lte", "5g"} {
			t, err := exp.CellularSolo(o, nil, model)
			if err != nil {
				return err
			}
			emit(w, "cellular_"+model, t)
		}
		t, err := exp.CellularYield(o, "lte")
		if err != nil {
			return err
		}
		emit(w, "cellular_yield", t)
	case "satellite":
		t, err := exp.SatelliteSurvival(o, nil)
		if err != nil {
			return err
		}
		emit(w, "satellite", t)
	case "incast":
		emit(w, "incast", exp.IncastFairness(o, nil))
	case "overload":
		t, err := exp.OverloadFig(o)
		if err != nil {
			return err
		}
		emit(w, "overload", t)
	default:
		return fmt.Errorf("unknown figure %q (valid: %s)", id, strings.Join(validFigs, ", "))
	}
	return nil
}

// validFigs lists every -fig name run() accepts, for the unknown-name
// error and the "all" batch above.
var validFigs = []string{
	"2", "3", "4", "5", "6", "7", "8", "9", "10", "11", "12", "13",
	"14", "15", "16", "17", "18", "19", "20", "21", "22",
	"ablation", "equilibrium", "lte", "fetch", "cellular", "satellite", "incast",
	"overload",
}

// emit prints a table and, when -csv is set, writes it alongside.
func emit(w io.Writer, name string, t *exp.Table) {
	fmt.Fprintln(w, t.Render())
	if csvDir == "" {
		return
	}
	f, err := os.Create(filepath.Join(csvDir, name+".csv"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "proteusbench: %v\n", err)
		return
	}
	defer f.Close()
	if err := t.WriteCSV(f); err != nil {
		fmt.Fprintf(os.Stderr, "proteusbench: %v\n", err)
	}
}

// emitCDF prints CDF summaries and optionally the long-form CSV.
func emitCDF(w io.Writer, name, title string, series []exp.CDFSeries) {
	fmt.Fprintln(w, exp.RenderCDFs(title, series))
	if csvDir == "" {
		return
	}
	f, err := os.Create(filepath.Join(csvDir, name+".csv"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "proteusbench: %v\n", err)
		return
	}
	defer f.Close()
	if err := exp.WriteCDFCSV(f, series); err != nil {
		fmt.Fprintf(os.Stderr, "proteusbench: %v\n", err)
	}
}

func printTimelines(w io.Writer, title string, m map[string][]exp.TimelineSeries) {
	fmt.Fprintln(w, "# "+title)
	for name, series := range m {
		fmt.Fprintf(w, "## %s\n", name)
		for _, s := range series {
			fmt.Fprintf(w, "%-12s", s.Name)
			for i, v := range s.Mbps {
				if i%10 == 0 {
					fmt.Fprintf(w, " %5.1f", v)
				}
			}
			fmt.Fprintln(w)
		}
		// Steady-state summary over the second half.
		var tputs []float64
		for _, s := range series {
			tputs = append(tputs, stats.Mean(s.Mbps[len(s.Mbps)/2:]))
		}
		fmt.Fprintf(w, "steady-state Mbps: %v\n\n", tputs)
	}
}

func printEquilibrium(w io.Writer) {
	fmt.Fprintln(w, "# Appendix A: numerical equilibria (probing-smoothed game, C=100 Mbps)")
	p := equi.Default(100)
	for _, n := range []int{2, 5, 10} {
		kinds := make([]equi.SenderKind, n)
		x, _ := p.Equilibrium(kinds, nil)
		fmt.Fprintf(w, "%d Proteus-P senders: per-flow %.2f Mbps (fair share of %.1f)\n", n, x[0], sum(x))
	}
	mixed, _ := p.EquilibriumAppendixA([]equi.SenderKind{equi.Primary, equi.Scavenger}, nil)
	fmt.Fprintf(w, "Appendix-A mixed P+S equilibrium: P=%.2f S=%.2f\n", mixed[0], mixed[1])
	x1, x2 := equi.HybridPrediction(30, 40, 65)
	fmt.Fprintf(w, "Proteus-H prediction (r1=30, r2=40, C=65): (%.1f, %.1f)\n\n", x1, x2)
}

func sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

func histMean(h *stats.Histogram) float64 {
	if h.N == 0 {
		return 0
	}
	m := 0.0
	for i, c := range h.Counts {
		m += h.BinCenter(i) * float64(c)
	}
	return m / float64(h.N)
}

func histP90(h *stats.Histogram) float64 {
	if h.N == 0 {
		return 0
	}
	cum := 0
	for i, c := range h.Counts {
		cum += c
		if float64(cum) >= 0.9*float64(h.N) {
			return h.BinCenter(i)
		}
	}
	return h.BinCenter(len(h.Counts) - 1)
}
