// Command proteusbench regenerates the paper's evaluation figures on the
// emulated network substrate and prints them as text tables.
//
// Usage:
//
//	proteusbench -fig 6                 # one figure at paper scale
//	proteusbench -fig all -fast         # every figure, reduced grids
//	proteusbench -fig 8 -trials 1       # heavy sweep, single trial
//
// Figure ids: 2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19,20,21,22,
// plus "ablation", "equilibrium", and the §7.2 extension "lte".
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"pccproteus/internal/equi"
	"pccproteus/internal/exp"
	"pccproteus/internal/stats"
)

var csvDir string

func main() {
	fig := flag.String("fig", "all", "figure to regenerate (2..22, ablation, equilibrium, lte, all)")
	fast := flag.Bool("fast", false, "reduced grids and durations")
	trials := flag.Int("trials", 0, "trials per data point (0 = default)")
	flag.StringVar(&csvDir, "csv", "", "also write plot-ready CSV files into this directory")
	flag.Parse()
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "proteusbench: %v\n", err)
			os.Exit(1)
		}
	}

	o := exp.Options{Fast: *fast, Trials: *trials}
	ids := strings.Split(*fig, ",")
	if *fig == "all" {
		ids = []string{"2", "3", "4", "5", "6", "7", "8", "9", "10", "11", "12", "13",
			"14", "15", "16", "17", "18", "19", "21", "22", "ablation", "equilibrium"}
	}
	for _, id := range ids {
		if err := run(strings.TrimSpace(id), o); err != nil {
			fmt.Fprintf(os.Stderr, "proteusbench: %v\n", err)
			os.Exit(1)
		}
	}
}

var appendixSingles = []string{
	exp.ProtoProteusS, exp.ProtoLEDBAT25, exp.ProtoLEDBAT, exp.ProtoCubic,
	exp.ProtoBBR, exp.ProtoProteusP, exp.ProtoCopa, exp.ProtoVivace,
}

func run(id string, o exp.Options) error {
	switch id {
	case "2":
		r := exp.Fig2(o)
		fmt.Println("# Fig 2: PDF of RTT deviation/gradient under Poisson CUBIC arrivals")
		for i, rate := range r.ArrivalRates {
			fmt.Printf("arrival=%g/s  dev: mean=%.4fms p90=%.4fms   |grad|: mean=%.5f p90=%.5f\n",
				rate,
				histMean(r.DevHistograms[i])*1000, histP90(r.DevHistograms[i])*1000,
				histMean(r.GradHistograms[i]), histP90(r.GradHistograms[i]))
		}
		fmt.Printf("confusion probability: deviation=%.4f  gradient=%.4f (paper: 0.006 vs 0.080)\n\n",
			r.DevConfusion, r.GradConfusion)
	case "3":
		tput, infl := exp.Fig3(o, nil)
		emit("fig3a", tput)
		emit("fig3b", infl)
	case "4":
		emit("fig4", exp.Fig4(o, nil))
	case "5":
		emit("fig5", exp.Fig5(o, nil))
	case "6", "7":
		cells := exp.Fig6(o, nil)
		for _, scv := range []string{exp.ProtoLEDBAT, exp.ProtoProteusS, exp.ProtoProteusP, exp.ProtoCopa} {
			emit("fig6_"+scv, exp.Fig6Table(cells, scv))
		}
	case "8":
		emitCDF("fig8", "Fig 8: primary throughput ratio over configuration sweep", exp.Fig8(o, nil, nil))
	case "9":
		emitCDF("fig9", "Fig 9: normalized single-flow throughput on WiFi-like paths", exp.Fig9(o, nil))
	case "10":
		emitCDF("fig10", "Fig 10: primary throughput ratio on WiFi-like paths", exp.Fig10(o, nil, nil))
	case "11":
		emit("fig11a", exp.Fig11Video(o))
		emitCDF("fig11b", "Fig 11(b): page load time (s) with background flow", exp.Fig11Web(o))
	case "12":
		emit("fig12", exp.Fig12Table(exp.Fig12(o, false), false))
	case "13":
		emit("fig13", exp.Fig12Table(exp.Fig12(o, true), true))
	case "14":
		printTimelines("Fig 14: BBR-S throughput over time", exp.Fig14(o))
	case "15":
		tput, infl := exp.Fig3(o, appendixSingles)
		fmt.Println(strings.Replace(tput.Render(), "Fig 3(a)", "Fig 15(a)", 1))
		fmt.Println(strings.Replace(infl.Render(), "Fig 3(b)", "Fig 15(b)", 1))
	case "16":
		fmt.Println(strings.Replace(exp.Fig4(o, appendixSingles).Render(), "Fig 4", "Fig 16", 1))
	case "17":
		fmt.Println(strings.Replace(exp.Fig5(o, appendixSingles).Render(), "Fig 5", "Fig 17", 1))
	case "18":
		printTimelines("Fig 18: 4-flow competition over time", exp.Fig18(o, nil))
	case "19", "20":
		cells := exp.Fig6(o, []string{exp.ProtoLEDBAT25, exp.ProtoLEDBAT, exp.ProtoProteusS})
		for _, scv := range []string{exp.ProtoLEDBAT25, exp.ProtoLEDBAT, exp.ProtoProteusS} {
			fmt.Println(strings.Replace(exp.Fig6Table(cells, scv).Render(), "Fig 6", "Fig 19/20", 1))
		}
	case "21":
		fmt.Println(exp.RenderCDFs("Fig 21: single-flow WiFi throughput incl. LEDBAT-25", exp.Fig9(o, appendixSingles)))
	case "22":
		fmt.Println(exp.RenderCDFs("Fig 22: WiFi yielding incl. LEDBAT-25",
			exp.Fig10(o, nil, []string{exp.ProtoProteusS, exp.ProtoLEDBAT25, exp.ProtoLEDBAT})))
	case "ablation":
		emit("ablation", exp.AblationTable(exp.Ablation(o)))
	case "lte":
		emit("lte", exp.LTESolo(o, append(append([]string{}, exp.AllSingle...), exp.ProtoAllegro)))
	case "equilibrium":
		printEquilibrium()
	default:
		return fmt.Errorf("unknown figure %q", id)
	}
	return nil
}

// emit prints a table and, when -csv is set, writes it alongside.
func emit(name string, t *exp.Table) {
	fmt.Println(t.Render())
	if csvDir == "" {
		return
	}
	f, err := os.Create(filepath.Join(csvDir, name+".csv"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "proteusbench: %v\n", err)
		return
	}
	defer f.Close()
	if err := t.WriteCSV(f); err != nil {
		fmt.Fprintf(os.Stderr, "proteusbench: %v\n", err)
	}
}

// emitCDF prints CDF summaries and optionally the long-form CSV.
func emitCDF(name, title string, series []exp.CDFSeries) {
	fmt.Println(exp.RenderCDFs(title, series))
	if csvDir == "" {
		return
	}
	f, err := os.Create(filepath.Join(csvDir, name+".csv"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "proteusbench: %v\n", err)
		return
	}
	defer f.Close()
	if err := exp.WriteCDFCSV(f, series); err != nil {
		fmt.Fprintf(os.Stderr, "proteusbench: %v\n", err)
	}
}

func printTimelines(title string, m map[string][]exp.TimelineSeries) {
	fmt.Println("# " + title)
	for name, series := range m {
		fmt.Printf("## %s\n", name)
		for _, s := range series {
			fmt.Printf("%-12s", s.Name)
			for i, v := range s.Mbps {
				if i%10 == 0 {
					fmt.Printf(" %5.1f", v)
				}
			}
			fmt.Println()
		}
		// Steady-state summary over the second half.
		var tputs []float64
		for _, s := range series {
			tputs = append(tputs, stats.Mean(s.Mbps[len(s.Mbps)/2:]))
		}
		fmt.Printf("steady-state Mbps: %v\n\n", tputs)
	}
}

func printEquilibrium() {
	fmt.Println("# Appendix A: numerical equilibria (probing-smoothed game, C=100 Mbps)")
	p := equi.Default(100)
	for _, n := range []int{2, 5, 10} {
		kinds := make([]equi.SenderKind, n)
		x, _ := p.Equilibrium(kinds, nil)
		fmt.Printf("%d Proteus-P senders: per-flow %.2f Mbps (fair share of %.1f)\n", n, x[0], sum(x))
	}
	mixed, _ := p.EquilibriumAppendixA([]equi.SenderKind{equi.Primary, equi.Scavenger}, nil)
	fmt.Printf("Appendix-A mixed P+S equilibrium: P=%.2f S=%.2f\n", mixed[0], mixed[1])
	x1, x2 := equi.HybridPrediction(30, 40, 65)
	fmt.Printf("Proteus-H prediction (r1=30, r2=40, C=65): (%.1f, %.1f)\n\n", x1, x2)
}

func sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

func histMean(h *stats.Histogram) float64 {
	if h.N == 0 {
		return 0
	}
	m := 0.0
	for i, c := range h.Counts {
		m += h.BinCenter(i) * float64(c)
	}
	return m / float64(h.N)
}

func histP90(h *stats.Histogram) float64 {
	if h.N == 0 {
		return 0
	}
	cum := 0
	for i, c := range h.Counts {
		cum += c
		if float64(cum) >= 0.9*float64(h.N) {
			return h.BinCenter(i)
		}
	}
	return h.BinCenter(len(h.Counts) - 1)
}
