package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"testing"
	"time"

	"pccproteus/internal/cc/bbr2"
	"pccproteus/internal/engine"
	"pccproteus/internal/fetch"
	"pccproteus/internal/pathmodel"
	"pccproteus/internal/sim"
	"pccproteus/internal/transport"
	"pccproteus/internal/wire"
)

// perfResult is one micro-benchmark's outcome in BENCH_proteus.json.
type perfResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
	PktsPerSec  float64 `json:"pkts_per_sec,omitempty"`
	N           int     `json:"n"`
}

// perfReport is the BENCH_proteus.json schema: hot-path numbers the
// roadmap tracks across versions. sim_events_per_sec is the headline —
// campaign throughput is bounded by it.
type perfReport struct {
	Schema          string                `json:"schema"`
	GoVersion       string                `json:"go_version"`
	GOARCH          string                `json:"goarch"`
	SimEventsPerSec float64               `json:"sim_events_per_sec"`
	Benchmarks      map[string]perfResult `json:"benchmarks"`
}

func toPerfResult(r testing.BenchmarkResult) perfResult {
	out := perfResult{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		N:           r.N,
	}
	if r.Bytes > 0 && r.T > 0 {
		out.MBPerSec = float64(r.Bytes) * float64(r.N) / 1e6 / r.T.Seconds()
	}
	return out
}

// benchSimEvent measures the schedule→pop→execute cycle of the event
// queue with the free list hot.
func benchSimEvent(b *testing.B) {
	s := sim.New(1)
	b.ReportAllocs()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			s.After(0.001, tick)
		}
	}
	s.After(0, tick)
	b.ResetTimer()
	s.Run(1e18)
}

// benchDataCodec measures data-header encode+decode round trips.
func benchDataCodec(b *testing.B) {
	buf := make([]byte, 1500)
	h := wire.DataHeader{Seq: 42, SentAt: 123456789}
	b.ReportAllocs()
	b.SetBytes(1200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Seq = int64(i)
		pkt := wire.EncodeData(buf, h, 1200)
		if _, err := wire.DecodeData(pkt); err != nil {
			b.Fatal(err)
		}
	}
}

// benchAckCodec measures ack encode+decode round trips with SACK blocks.
func benchAckCodec(b *testing.B) {
	var buf [wire.MaxAckLen]byte
	a := wire.AckPacket{Seq: 1, CumAck: 2, RecvAt: 123456789,
		Blocks: []wire.SackBlock{{Start: 10, End: 12}, {Start: 20, End: 25}}}
	var out wire.AckPacket
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Seq = int64(i)
		pkt := a.Encode(buf[:])
		if err := wire.DecodeAck(pkt, &out); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPathmodelSteps measures compiling one minute of a bundled LTE
// trace into the deduplicated step schedule both appliers replay —
// the per-run setup cost of every pathmodel-driven scenario.
func benchPathmodelSteps(b *testing.B) {
	m := pathmodel.GenLTE(1, 60)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if steps := pathmodel.Steps(m, 60); len(steps) == 0 {
			b.Fatal("empty schedule")
		}
	}
}

// benchBBR2Step measures the bbr2 controller's per-ack hot path: one
// OnSend + OnAck round trip with the delivery-rate sampler engaged.
func benchBBR2Step(b *testing.B) {
	cc := bbr2.New()
	const rtt = 0.03
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := float64(i) * 0.001
		pkt := transport.SentPacket{Seq: int64(i), Size: 1200, SentAt: now}
		cc.OnSend(now, &pkt)
		cc.OnAck(transport.Ack{
			Seq: int64(i), Bytes: 1200, SentAt: now,
			RecvAt: now + rtt/2, Now: now + rtt, RTT: rtt,
			Inflight: 24000,
		})
	}
}

// ppsFlows and ppsWindow size the engine-vs-legacy aggregate
// throughput comparison: 1k concurrent fixed-rate flows, each path
// measured over the same steady-state window.
const (
	ppsFlows  = 1000
	ppsWindow = 2 * time.Second
)

// measureLegacyPPS is the per-flow-goroutine baseline for the engine
// comparison: flows wire.Senders (two goroutines and one syscall per
// packet each) into one wire.Receiver, same fixed offered load and
// packet size as engine.MeasurePPS.
func measureLegacyPPS(flows int, d time.Duration) (float64, int64, error) {
	recvConn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return 0, 0, err
	}
	recvConn.SetReadBuffer(1 << 22)
	recv := &wire.Receiver{Conn: recvConn, MaxFlows: flows}
	if err := recv.Start(); err != nil {
		return 0, 0, err
	}
	defer recv.Stop()
	dst := recv.Addr()
	senders := make([]*wire.Sender, 0, flows)
	defer func() {
		for _, s := range senders {
			s.Stop()
		}
	}()
	for i := 0; i < flows; i++ {
		conn, err := net.DialUDP("udp", nil, dst)
		if err != nil {
			return 0, 0, err
		}
		snd := &wire.Sender{
			CC:         &engine.FixedRateCC{Rate: 4e6, Win: 8 * 400},
			Conn:       conn,
			PacketSize: 400,
		}
		if err := snd.Start(); err != nil {
			conn.Close()
			return 0, 0, err
		}
		senders = append(senders, snd)
	}
	time.Sleep(300 * time.Millisecond)
	p0 := recv.Stats().Pkts
	time.Sleep(d)
	p1 := recv.Stats().Pkts
	return float64(p1-p0) / d.Seconds(), p1 - p0, nil
}

// runPerf runs every hot-path micro-benchmark plus the 1k-flow
// datapath throughput comparison and writes the report.
func runPerf(w io.Writer, outPath string) error {
	benches := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"sim_event", benchSimEvent},
		{"wire_data_codec", benchDataCodec},
		{"wire_ack_codec", benchAckCodec},
		{"wire_pacer_send", wire.RunPacerBench},
		{"wire_ack_process", wire.RunAckBench},
		{"fetch_goodput", fetch.RunFetchBench},
		{"engine_hotpath", engine.RunHotpathBench},
		{"pathmodel_steps", benchPathmodelSteps},
		{"bbr2_step", benchBBR2Step},
	}
	rep := perfReport{
		Schema:     "proteusbench-perf/v1",
		GoVersion:  runtime.Version(),
		GOARCH:     runtime.GOARCH,
		Benchmarks: map[string]perfResult{},
	}
	fmt.Fprintf(w, "# proteusbench -perf (%s %s)\n", rep.GoVersion, rep.GOARCH)
	fmt.Fprintf(w, "%-18s %12s %10s %10s %12s\n", "benchmark", "ns/op", "B/op", "allocs/op", "MB/s")
	for _, bench := range benches {
		r := testing.Benchmark(bench.fn)
		if r.N == 0 {
			return fmt.Errorf("benchmark %s did not run", bench.name)
		}
		pr := toPerfResult(r)
		rep.Benchmarks[bench.name] = pr
		mbs := "-"
		if pr.MBPerSec > 0 {
			mbs = fmt.Sprintf("%.1f", pr.MBPerSec)
		}
		fmt.Fprintf(w, "%-18s %12.1f %10d %10d %12s\n",
			bench.name, pr.NsPerOp, pr.BytesPerOp, pr.AllocsPerOp, mbs)
	}
	// Aggregate datapath throughput at 1k concurrent flows: the
	// sharded engine vs the per-flow-goroutine legacy path, identical
	// offered load. Both run over real loopback sockets.
	enginePPS, enginePkts, err := engine.MeasurePPS(ppsFlows, ppsWindow)
	if err != nil {
		return fmt.Errorf("engine pps: %w", err)
	}
	rep.Benchmarks["engine_pps_1k"] = perfResult{
		PktsPerSec: enginePPS, N: int(enginePkts),
		NsPerOp: 1e9 / enginePPS,
	}
	// Same engine under class-aware overload control, held in brownout
	// by a 4×-capacity half-scavenger population: the admission gate,
	// sheds, and BUSY emission all run on the measured hot path.
	ovPPS, ovPkts, err := engine.MeasureOverloadPPS(ppsFlows, ppsWindow)
	if err != nil {
		return fmt.Errorf("engine overload pps: %w", err)
	}
	rep.Benchmarks["engine_overload_pps"] = perfResult{
		PktsPerSec: ovPPS, N: int(ovPkts),
		NsPerOp: 1e9 / ovPPS,
	}
	legacyPPS, legacyPkts, err := measureLegacyPPS(ppsFlows, ppsWindow)
	if err != nil {
		return fmt.Errorf("legacy pps: %w", err)
	}
	rep.Benchmarks["legacy_pps_1k"] = perfResult{
		PktsPerSec: legacyPPS, N: int(legacyPkts),
		NsPerOp: 1e9 / legacyPPS,
	}
	fmt.Fprintf(w, "datapath @%d flows: engine %.0f pps, overloaded %.0f pps, legacy %.0f pps (%.1f×)\n",
		ppsFlows, enginePPS, ovPPS, legacyPPS, enginePPS/legacyPPS)
	rep.SimEventsPerSec = 1e9 / rep.Benchmarks["sim_event"].NsPerOp
	fmt.Fprintf(w, "sim events/sec: %.2fM\n", rep.SimEventsPerSec/1e6)
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", outPath)
	return nil
}
