package main

import (
	"fmt"
	"io"

	"pccproteus/internal/adversary"
	"pccproteus/internal/pathmodel"
)

// runHunt drives the adversarial search: it hunts for a schedule that
// breaks one of proto's invariants, prints the deterministic search log
// and final verdicts, and (optionally) writes the minimized
// counterexample as a JSON replay file. The exit error is non-nil only
// on operational failures — finding a violation is a successful hunt.
func runHunt(w io.Writer, proto, model string, budget int, seed int64, jobs int, fast bool, out string) error {
	sc := adversary.DefaultScenario(proto, fast)
	if model != "" {
		sc.PathModel = &pathmodel.Spec{Kind: model}
	}
	cfg := adversary.Config{
		Scenario: sc,
		Budget:   budget,
		Seed:     seed,
		Jobs:     jobs,
	}
	fmt.Fprintf(w, "# hunt: %s, budget %d, seed %d\n", cfg.Scenario, cfg.Budget, seed)
	res, err := adversary.Hunt(cfg)
	if err != nil {
		return err
	}
	for _, line := range res.Log {
		fmt.Fprintln(w, line)
	}
	fmt.Fprintf(w, "evaluations: %d search + %d shrink\n", res.Evals, res.ShrinkEvals)

	if res.Counterexample == nil {
		fmt.Fprintf(w, "no violation found; closest schedule (fitness %+.4f):\n", res.BestFitness)
		fmt.Fprintln(w, "  "+res.Best.String())
		for _, v := range res.BestVerdicts {
			fmt.Fprintln(w, "  "+v.String())
		}
		return nil
	}

	ce := res.Counterexample
	fmt.Fprintf(w, "VIOLATION: %s\n", ce.Verdict)
	fmt.Fprintln(w, "minimized schedule:")
	fmt.Fprintln(w, "  "+ce.Schedule.String())
	if out != "" {
		if err := ce.WriteFile(out); err != nil {
			return err
		}
		fmt.Fprintf(w, "replay file written to %s\n", out)
	}
	return nil
}

// runReplay re-verifies a counterexample file and prints the verdicts.
func runReplay(w io.Writer, path string) error {
	ce, vs, err := adversary.ReplayFile(path)
	if ce != nil {
		fmt.Fprintf(w, "# replay: %s (seed %d)\n", ce.Scenario, ce.Seed)
		fmt.Fprintln(w, "schedule: "+ce.Schedule.String())
		for _, v := range vs {
			fmt.Fprintln(w, "  "+v.String())
		}
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "recorded verdict reproduces: %s\n", ce.Verdict)
	return nil
}
