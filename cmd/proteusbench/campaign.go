package main

import (
	"fmt"
	"io"
	"os"

	"pccproteus/internal/campaign"
	"pccproteus/internal/exp"
)

// runCampaign loads a campaign spec, executes it on the worker pool,
// prints the yield/fairness report, and optionally writes the aggregate
// JSON. The aggregate is bit-identical for any worker count.
func runCampaign(w io.Writer, specPath string, workers int, outPath string) error {
	spec, err := campaign.LoadSpec(specPath)
	if err != nil {
		return err
	}
	agg, err := exp.RunCampaign(spec, workers)
	if err != nil {
		return err
	}
	fmt.Fprint(w, agg.Render())
	if outPath != "" {
		b, err := campaign.EncodeJSON(agg)
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, b, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nwrote %s\n", outPath)
	}
	if csvDir != "" {
		emit(w, "campaign_"+agg.Name+"_classes", exp.CampaignTable(agg))
		emit(w, "campaign_"+agg.Name+"_summary", exp.CampaignSummaryTable(agg))
	}
	return nil
}
