package main

import (
	"fmt"
	"io"
	"strings"

	"pccproteus/internal/adversary"
	"pccproteus/internal/exp"
)

// runWireParity cross-validates the controllers between the simulator
// and the real UDP loopback datapath — the legacy per-flow path, or
// the sharded engine with engineDP. Runs in real time: expect about
// one -wire-dur per protocol.
func runWireParity(w io.Writer, protos string, dur, mbps, rtt float64, seed int64, fast, engineDP bool) error {
	if dur <= 0 {
		dur = 12
		if fast {
			dur = 8
		}
	}
	var list []string
	for _, p := range strings.Split(protos, ",") {
		if p = strings.TrimSpace(p); p != "" {
			list = append(list, p)
		}
	}
	res, err := exp.WireParity(exp.WireParityOptions{
		Protos:   list,
		Mbps:     mbps,
		RTT:      rtt,
		Duration: dur,
		Seed:     seed,
		Engine:   engineDP,
	})
	if err != nil {
		return err
	}
	fmt.Fprint(w, res.Render())
	if !res.AllPass() {
		return fmt.Errorf("wire parity outside %.0f%% tolerance", res.Opts.TolerancePct)
	}
	return nil
}

// runChaosSoak replays the default (or a scaled) chaos fault plan
// through both worlds — the simulator link and the real UDP shim — and
// prints the survival/attribution comparison. Runs in real time:
// expect about one -wire-dur per protocol.
func runChaosSoak(w io.Writer, protos string, dur, mbps, rtt float64, seed int64, fast bool) error {
	if dur <= 0 {
		dur = 16
		if fast {
			dur = 10
		}
	}
	var list []string
	for _, p := range strings.Split(protos, ",") {
		if p = strings.TrimSpace(p); p != "" {
			list = append(list, p)
		}
	}
	res, err := exp.ChaosSoak(exp.ChaosSoakOptions{
		Protos:   list,
		Mbps:     mbps,
		RTT:      rtt,
		Duration: dur,
		Seed:     seed,
	})
	if err != nil {
		return err
	}
	fmt.Fprint(w, res.Render())
	if !res.AllPass() {
		return fmt.Errorf("chaos soak failed: survival or attribution mismatch between worlds")
	}
	return nil
}

// runWireReplay re-executes a counterexample's impairment schedule on
// the wire shim and checks the wire invariants.
func runWireReplay(w io.Writer, path string) error {
	ce, err := adversary.ReadCounterexample(path)
	if err != nil {
		return err
	}
	rep, err := adversary.ReplayWire(ce)
	if err != nil {
		return err
	}
	fmt.Fprint(w, rep.Render())
	if !rep.OK() {
		return fmt.Errorf("wire replay reproduced %d violation(s)", len(rep.Violations))
	}
	return nil
}
