// Command proteusd is the standalone wire-datapath daemon: the same
// Sender/Receiver/Shim stack the parity harness drives in-process,
// exposed as a command so the Proteus controllers can be run between
// two real processes (typically both on localhost).
//
// A two-process session looks like:
//
//	proteusd recv -listen 127.0.0.1:9741
//	proteusd send -to 127.0.0.1:9741 -proto proteus-s -duration 10
//
// The sender can interpose the userspace impairment shim in front of
// the destination with -shim, which emulates a bottleneck (rate,
// tail-drop queue, propagation delay, random loss) without root:
//
//	proteusd send -to 127.0.0.1:9741 -shim -mbps 20 -rtt 0.040 -duration 10
//
// `proteusd demo` runs sender, shim and receiver in one process — the
// quickest way to watch a controller work over real sockets.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"pccproteus/internal/engine"
	"pccproteus/internal/exp"
	"pccproteus/internal/fetch"
	"pccproteus/internal/overload"
	"pccproteus/internal/transport"
	"pccproteus/internal/wire"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "recv":
		err = runRecv(os.Args[2:])
	case "send":
		err = runSend(os.Args[2:])
	case "demo":
		err = runDemo(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "proteusd:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: proteusd <recv|send|demo> [flags]

  recv  -listen ADDR [-serve DIR] [-engine -shards N]    ack-generating receiver / fetch server
  send  -to ADDR -proto NAME [-flows N] [-engine] [-shim ...]  congestion-controlled sender
  demo  [-proto NAME ...]                                single-process loopback run

run "proteusd <mode> -h" for the mode's flags`)
}

// listenUDPRetry binds the address, retrying transient socket errors
// with exponential backoff (100 ms doubling, 6 attempts) so a daemon
// restarting into a lingering port wins the race instead of dying.
func listenUDPRetry(addr *net.UDPAddr) (*net.UDPConn, error) {
	var err error
	backoff := 100 * time.Millisecond
	for attempt := 0; attempt < 6; attempt++ {
		if attempt > 0 {
			fmt.Fprintf(os.Stderr, "proteusd: bind %s: %v — retrying in %v\n", addr, err, backoff)
			time.Sleep(backoff)
			backoff *= 2
		}
		var conn *net.UDPConn
		if conn, err = net.ListenUDP("udp", addr); err == nil {
			return conn, nil
		}
	}
	return nil, fmt.Errorf("bind %s: %w", addr, err)
}

// dialUDPRetry connects to the destination with the same backoff
// policy as listenUDPRetry.
func dialUDPRetry(dst *net.UDPAddr) (*net.UDPConn, error) {
	var err error
	backoff := 100 * time.Millisecond
	for attempt := 0; attempt < 6; attempt++ {
		if attempt > 0 {
			fmt.Fprintf(os.Stderr, "proteusd: dial %s: %v — retrying in %v\n", dst, err, backoff)
			time.Sleep(backoff)
			backoff *= 2
		}
		var conn *net.UDPConn
		if conn, err = net.DialUDP("udp", nil, dst); err == nil {
			return conn, nil
		}
	}
	return nil, fmt.Errorf("dial %s: %w", dst, err)
}

// startFlows admits n flows through start, enforcing the flow cap
// BEFORE anything is spawned: an over-cap batch must be rejected
// whole, costing zero goroutines, sockets, or engine slots — under
// admission churn a check placed after the spawn leaks resources on
// every rejected round.
func startFlows(n, maxFlows int, start func(i int) error) error {
	if n < 1 {
		return fmt.Errorf("proteusd: need at least one flow, got %d", n)
	}
	if maxFlows > 0 && n > maxFlows {
		return fmt.Errorf("proteusd: %d flows exceed -max-flows %d", n, maxFlows)
	}
	for i := 0; i < n; i++ {
		if err := start(i); err != nil {
			return fmt.Errorf("flow %d: %w", i, err)
		}
	}
	return nil
}

// runRecv listens for the data stream and prints a per-second line of
// receive-side counters until interrupted.
func runRecv(args []string) error {
	fs := flag.NewFlagSet("recv", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:9741", "UDP address to listen on")
	quiet := fs.Bool("quiet", false, "suppress per-second stats")
	idle := fs.Float64("idle", 60, "evict a flow after this many seconds without packets (0 = default)")
	maxFlows := fs.Int("max-flows", 0, "flow-state cap; stalest flow is evicted at the cap (0 = default)")
	serve := fs.String("serve", "", "also answer segmented fetch requests for every file in this directory (proteusfetch is the client)")
	engineMode := fs.Bool("engine", false, "receive on the sharded event-loop engine (shard i listens on port+i)")
	shards := fs.Int("shards", 2, "engine shards (with -engine)")
	statsInterval := fs.Float64("stats-interval", 0, "with -engine: print a per-class overload stats line every this many seconds (0 = off)")
	fs.Parse(args)

	addr, err := net.ResolveUDPAddr("udp", *listen)
	if err != nil {
		return err
	}
	if *engineMode {
		if *serve != "" {
			return fmt.Errorf("-serve requires the legacy receiver (drop -engine)")
		}
		return runRecvEngine(addr, *shards, *idle, *maxFlows, *quiet, *statsInterval)
	}
	conn, err := listenUDPRetry(addr)
	if err != nil {
		return err
	}
	conn.SetReadBuffer(1 << 21)
	conn.SetWriteBuffer(1 << 21)
	recv := &wire.Receiver{Conn: conn, IdleTimeout: *idle, MaxFlows: *maxFlows}
	if *serve != "" {
		store := fetch.NewStore(0)
		names, err := store.ServeDir(*serve)
		if err != nil {
			return err
		}
		recv.OnFetch = store.HandleFetch
		fmt.Printf("proteusd recv: serving %d objects from %s: %v\n", len(names), *serve, names)
	}
	if err := recv.Start(); err != nil {
		return err
	}
	defer recv.Stop()
	fmt.Printf("proteusd recv: listening on %s\n", recv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	var last wire.ReceiverStats
	for {
		select {
		case <-sig:
			st := recv.Stats()
			fmt.Printf("total: pkts=%d bytes=%d dups=%d acks=%d cum=%d flows=%d evicted=%d bad=%d fetch=%d segs=%d\n",
				st.Pkts, st.Bytes, st.Dups, st.AcksSent, st.CumAck, st.Flows, st.Evicted, st.BadPkts,
				st.FetchReqs, st.SegsSent)
			return nil
		case <-tick.C:
			st := recv.Stats()
			if !*quiet && (st.Pkts != last.Pkts || st.FetchReqs != last.FetchReqs) {
				fmt.Printf("rx %7.3f Mbps  pkts=%d dups=%d cum=%d sacks=%d fetch=%d segs=%d\n",
					float64(st.Bytes-last.Bytes)*8/1e6, st.Pkts, st.Dups, st.CumAck, st.AcksSent,
					st.FetchReqs, st.SegsSent)
			}
			last = st
		}
	}
}

// classStatsLine formats the engine's brownout state and per-class
// admission counters: one glanceable line showing that pressure is
// being spent on scavengers (shed/rejected) before primaries.
func classStatsLine(st engine.Stats) string {
	return fmt.Sprintf(
		"overload: state=%s worst=%s pressure=%.2f admitted=%d/%d rejected=%d/%d shed=%d/%d paused=%d busy=%d/%d evicted=%d (primary/scavenger)",
		st.Overload, st.WorstOverload, st.Pressure,
		st.AdmittedPrimary, st.AdmittedScavenger,
		st.RejectedPrimary, st.RejectedScavenger,
		st.ShedPrimary, st.ShedScavenger,
		st.Paused, st.BusyTx, st.BusyRx, st.Evicted)
}

// statsTicker returns a ticker channel firing every interval seconds,
// or a nil channel (never fires) when the interval is off.
func statsTicker(interval float64) (<-chan time.Time, func()) {
	if interval <= 0 {
		return nil, func() {}
	}
	t := time.NewTicker(time.Duration(interval * float64(time.Second)))
	return t.C, t.Stop
}

// runRecvEngine is the sharded receive path: one engine, shard i on
// listen-port+i, all incoming flows multiplexed onto the shard loops.
func runRecvEngine(addr *net.UDPAddr, shards int, idle float64, maxFlows int, quiet bool, statsInterval float64) error {
	ip := "0.0.0.0"
	if addr.IP != nil {
		ip = addr.IP.String()
	}
	eng, err := engine.New(engine.Config{
		Shards: shards, ListenIP: ip, ListenPort: addr.Port,
		IdleTimeout: idle, MaxFlowsPerShard: maxFlows,
	})
	if err != nil {
		return err
	}
	defer eng.Stop()
	if err := eng.Start(); err != nil {
		return err
	}
	fmt.Printf("proteusd recv: engine listening on %v\n", eng.Addrs())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	ovTick, stopOv := statsTicker(statsInterval)
	defer stopOv()
	var last engine.Stats
	for {
		select {
		case <-sig:
			// Graceful drain: quiesce admissions by stopping the engine
			// only after the final summary is captured, so the counters
			// reflect everything the datapath did.
			st := eng.Stats()
			fmt.Printf("total: pkts=%d bytes=%d dups=%d acks=%d flows=%d evicted=%d rebinds=%d bad=%d batches=%d\n",
				st.Delivered, st.DeliveredBytes, st.RxDups, st.TxPkts, st.Flows,
				st.Evicted, st.Rebinds, st.BadPkts, st.RxBatches)
			fmt.Println(classStatsLine(st))
			return nil
		case <-ovTick:
			fmt.Println(classStatsLine(eng.Stats()))
		case <-tick.C:
			st := eng.Stats()
			if !quiet && st.RxPkts != last.RxPkts {
				fmt.Printf("rx %7.3f Mbps  pkts=%d dups=%d flows=%d batches=%d\n",
					float64(st.DeliveredBytes-last.DeliveredBytes)*8/1e6,
					st.Delivered, st.RxDups, st.Flows, st.RxBatches)
			}
			last = st
		}
	}
}

// runSend drives congestion-controlled flows at the given address,
// optionally through an in-process impairment shim, and prints a
// per-second line of send-side counters.
func runSend(args []string) error {
	fs := flag.NewFlagSet("send", flag.ExitOnError)
	to := fs.String("to", "127.0.0.1:9741", "receiver UDP address")
	proto := fs.String("proto", exp.ProtoProteusP, "controller (proteus-p, proteus-s, proteus-h, ...)")
	duration := fs.Float64("duration", 10, "seconds to run (0 = until interrupted)")
	seed := fs.Int64("seed", 1, "controller RNG seed")
	quiet := fs.Bool("quiet", false, "suppress per-second stats")
	drain := fs.Duration("drain", 2*time.Second, "on SIGINT/SIGTERM, wait up to this long for in-flight packets to be acked before exiting")
	flows := fs.Int("flows", 1, "concurrent flows (each with its own controller)")
	maxFlows := fs.Int("max-flows", 4096, "refuse to start more than this many flows (checked before any flow is spawned)")
	engineMode := fs.Bool("engine", false, "run flows on the sharded event-loop engine instead of one goroutine pair per flow")
	shards := fs.Int("shards", 2, "engine shards (with -engine; -shim forces 1, the shim tracks a single return socket)")
	bind := fs.String("bind", "127.0.0.1", "engine shard bind IP (with -engine)")
	statsInterval := fs.Float64("stats-interval", 0, "with -engine: print a per-class overload stats line every this many seconds (0 = off)")
	shimFlags := newShimFlags(fs)
	fs.Parse(args)

	dst, err := net.ResolveUDPAddr("udp", *to)
	if err != nil {
		return err
	}
	if shimFlags.enabled() {
		shim, err := wire.NewShim(shimFlags.config(*seed), dst)
		if err != nil {
			return err
		}
		if err := shim.Start(); err != nil {
			return err
		}
		defer func() {
			shim.Stop()
			st := shim.Stats()
			fmt.Printf("shim: enq=%d drop=%d rand=%d fwd=%d acks=%d\n",
				st.Enqueued, st.Dropped, st.LostRandom, st.Delivered, st.AcksRelay)
		}()
		dst = shim.Addr()
		fmt.Printf("proteusd send: shim %s at %s\n", shimFlags.describe(), dst)
		if *engineMode && *shards != 1 {
			*shards = 1
		}
	}
	newCC := func(i int) transport.Controller {
		rng := rand.New(rand.NewSource(wire.MixSeed(*seed, 0x55+int64(i))))
		return exp.NewControllerRNG(rng, *proto)
	}
	if *engineMode {
		return runSendEngine(dst, *proto, *flows, *maxFlows, *shards, *bind, *duration, *quiet, *statsInterval, newCC)
	}

	// Legacy path: one socket and one goroutine pair per flow — the
	// datapath the engine replaces at scale, kept for comparison and
	// for single-flow runs.
	senders := make([]*wire.Sender, 0, *flows)
	defer func() {
		for _, s := range senders {
			s.Stop()
		}
	}()
	err = startFlows(*flows, *maxFlows, func(i int) error {
		conn, err := dialUDPRetry(dst)
		if err != nil {
			return err
		}
		conn.SetReadBuffer(1 << 21)
		conn.SetWriteBuffer(1 << 21)
		snd := &wire.Sender{CC: newCC(i), Conn: conn}
		if err := snd.Start(); err != nil {
			conn.Close()
			return err
		}
		senders = append(senders, snd)
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Printf("proteusd send: %s ×%d -> %s\n", *proto, *flows, *to)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	deadline := time.Now().Add(time.Duration(*duration * float64(time.Second)))
	var last wire.SenderStats
	for {
		select {
		case <-sig:
			gracefulDrain(senders, sig, *drain)
			printSendTotal(sumSendStats(senders))
			return nil
		case <-tick.C:
			st := sumSendStats(senders)
			if !*quiet {
				fmt.Printf("tx %7.3f Mbps  rate=%6.2f srtt=%5.1fms inflight=%d lost=%d\n",
					float64(st.AckedBytes-last.AckedBytes)*8/1e6,
					st.RateMbps, st.SRTT*1e3, st.Inflight, st.LostPkts)
			}
			last = st
			if *duration > 0 && !time.Now().Before(deadline) {
				gracefulDrain(senders, sig, *drain)
				printSendTotal(sumSendStats(senders))
				return nil
			}
		}
	}
}

// sumSendStats aggregates legacy senders: counters add up, rate and
// RTT report the across-flow mean.
func sumSendStats(snds []*wire.Sender) wire.SenderStats {
	var out wire.SenderStats
	for _, s := range snds {
		st := s.Stats()
		out.SentPkts += st.SentPkts
		out.AckedPkts += st.AckedPkts
		out.LostPkts += st.LostPkts
		out.AckedBytes += st.AckedBytes
		out.Inflight += st.Inflight
		out.RateMbps += st.RateMbps
		out.SRTT += st.SRTT
		out.MinRTT += st.MinRTT
	}
	if n := float64(len(snds)); n > 1 {
		out.SRTT /= n
		out.MinRTT /= n
	}
	return out
}

// runSendEngine runs the flows on the sharded engine: a fixed set of
// event loops, batched socket I/O, no per-flow goroutines. Scavenger
// protocols are tagged with the scavenger class so the receiver's
// overload control sheds them first.
func runSendEngine(dst *net.UDPAddr, proto string, flows, maxFlows, shards int, bind string,
	duration float64, quiet bool, statsInterval float64, newCC func(i int) transport.Controller) error {
	perShard := 0
	if maxFlows > 0 {
		perShard = (maxFlows + shards - 1) / shards
	}
	eng, err := engine.New(engine.Config{
		Shards: shards, ListenIP: bind, MaxFlowsPerShard: perShard,
	})
	if err != nil {
		return err
	}
	defer eng.Stop()
	if err := eng.Start(); err != nil {
		return err
	}
	dstAP := dst.AddrPort()
	class := overload.ClassOf(proto)
	handles := make([]*engine.Flow, 0, flows)
	err = startFlows(flows, maxFlows, func(i int) error {
		fl, err := eng.AddFlow(engine.FlowConfig{Dst: dstAP, CC: newCC(i), Class: class})
		if err == nil {
			handles = append(handles, fl)
		}
		return err
	})
	if err != nil {
		return err
	}
	fmt.Printf("proteusd send: engine %s ×%d (%d shards) -> %s\n", proto, flows, shards, dst)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	ovTick, stopOv := statsTicker(statsInterval)
	defer stopOv()
	deadline := time.Now().Add(time.Duration(duration * float64(time.Second)))
	var lastAcked int64
	total := func() (acked, lost int64, srtt float64) {
		for _, fl := range handles {
			st := fl.Stats()
			acked += st.AckedBytes
			lost += st.LostPkts
			srtt += st.SRTT
		}
		srtt /= float64(len(handles))
		return
	}
	for {
		select {
		case <-sig:
		case <-ovTick:
			fmt.Println(classStatsLine(eng.Stats()))
			continue
		case <-tick.C:
			acked, lost, srtt := total()
			if !quiet {
				est := eng.Stats()
				fmt.Printf("tx %7.3f Mbps  srtt=%5.1fms lost=%d pkts=%d batches=%d\n",
					float64(acked-lastAcked)*8/1e6, srtt*1e3, lost, est.TxPkts, est.TxBatches)
			}
			lastAcked = acked
			if duration <= 0 || time.Now().Before(deadline) {
				continue
			}
		}
		acked, lost, srtt := total()
		est := eng.Stats()
		fmt.Printf("total: acked=%d bytes lost=%d srtt=%.1fms txpkts=%d txbatches=%d rxbatches=%d\n",
			acked, lost, srtt*1e3, est.TxPkts, est.TxBatches, est.RxBatches)
		fmt.Println(classStatsLine(est))
		return nil
	}
}

// gracefulDrain waits for the senders' in-flight packets to be acked
// (bounded by timeout) so shutdown doesn't strand a window of data. A
// second signal aborts the wait immediately.
func gracefulDrain(snds []*wire.Sender, sig chan os.Signal, timeout time.Duration) {
	inflight := 0
	for _, s := range snds {
		inflight += s.Stats().Inflight
	}
	if timeout <= 0 || inflight == 0 {
		return
	}
	fmt.Printf("proteusd send: draining %d in-flight bytes (signal again to abort)\n", inflight)
	done := make(chan bool, 1)
	go func() {
		var timedOut atomic.Bool
		var wg sync.WaitGroup
		for _, s := range snds {
			wg.Add(1)
			go func(s *wire.Sender) {
				defer wg.Done()
				if !s.Drain(timeout) {
					timedOut.Store(true)
				}
			}(s)
		}
		wg.Wait()
		done <- !timedOut.Load()
	}()
	select {
	case ok := <-done:
		if !ok {
			fmt.Println("proteusd send: drain timed out")
		}
	case <-sig:
		fmt.Println("proteusd send: drain aborted")
	}
}

func printSendTotal(st wire.SenderStats) {
	fmt.Printf("total: sent=%d acked=%d lost=%d bytes=%d srtt=%.1fms minrtt=%.1fms\n",
		st.SentPkts, st.AckedPkts, st.LostPkts, st.AckedBytes, st.SRTT*1e3, st.MinRTT*1e3)
}

// runDemo is the single-process version: RunLoopback with a summary.
func runDemo(args []string) error {
	fs := flag.NewFlagSet("demo", flag.ExitOnError)
	proto := fs.String("proto", exp.ProtoProteusP, "controller to run")
	duration := fs.Float64("duration", 10, "seconds to run")
	seed := fs.Int64("seed", 1, "controller and shim RNG seed")
	shimFlags := newShimFlags(fs)
	fs.Parse(args)

	fmt.Printf("proteusd demo: %s over %s for %.0fs\n", *proto, shimFlags.describe(), *duration)
	res, err := wire.RunLoopback(wire.LoopbackConfig{
		NewController: func() transport.Controller {
			return exp.NewControllerRNG(rand.New(rand.NewSource(wire.MixSeed(*seed, 0x55))), *proto)
		},
		Shim:     shimFlags.config(*seed),
		Duration: *duration,
	})
	if err != nil {
		return err
	}
	fmt.Printf("per-second Mbps:")
	for _, m := range res.PerSecMbps {
		fmt.Printf(" %.1f", m)
	}
	fmt.Printf("\nsteady state: %.2f Mbps, mean RTT %.1f ms, p95 %.1f ms, loss %.2f%%\n",
		res.Mbps, res.MeanRTT*1e3, res.P95RTT*1e3, res.LossRate*100)
	return nil
}

// shimFlags groups the emulated-bottleneck flags shared by send/demo.
type shimFlags struct {
	use   *bool
	mbps  *float64
	rtt   *float64
	queue *int
	loss  *float64
}

func newShimFlags(fs *flag.FlagSet) *shimFlags {
	return &shimFlags{
		use:   fs.Bool("shim", false, "interpose the impairment shim (demo always does)"),
		mbps:  fs.Float64("mbps", 20, "shim bottleneck capacity, Mbps"),
		rtt:   fs.Float64("rtt", 0.040, "shim base round-trip time, seconds"),
		queue: fs.Int("queue", 0, "shim queue bytes (0 = 1.5×BDP)"),
		loss:  fs.Float64("loss", 0, "shim random loss probability"),
	}
}

func (sf *shimFlags) enabled() bool { return *sf.use }

func (sf *shimFlags) config(seed int64) wire.ShimConfig {
	queue := *sf.queue
	if queue <= 0 {
		queue = int(1.5 * *sf.mbps * 1e6 / 8 * *sf.rtt)
	}
	return wire.ShimConfig{
		RateMbps:   *sf.mbps,
		QueueBytes: queue,
		Delay:      *sf.rtt / 2,
		AckDelay:   *sf.rtt / 2,
		LossProb:   *sf.loss,
		Seed:       wire.MixSeed(seed, 0x77),
	}
}

func (sf *shimFlags) describe() string {
	return fmt.Sprintf("%.0f Mbps / %.0f ms RTT", *sf.mbps, *sf.rtt*1e3)
}
