package main

import (
	"net"
	"runtime"
	"testing"
	"time"

	"pccproteus/internal/engine"
	"pccproteus/internal/wire"
)

// TestStartFlowsCapBeforeSpawn is the regression test for flow-cap
// enforcement order: an over-cap request must be rejected before the
// first flow is spawned, not discovered after N goroutine pairs and
// sockets already exist.
func TestStartFlowsCapBeforeSpawn(t *testing.T) {
	spawned := 0
	err := startFlows(11, 10, func(i int) error {
		spawned++
		return nil
	})
	if err == nil {
		t.Fatal("over-cap batch accepted")
	}
	if spawned != 0 {
		t.Fatalf("cap checked after spawn: %d flows started before rejection", spawned)
	}
	// At the cap is fine; zero cap means uncapped.
	if err := startFlows(10, 10, func(int) error { spawned++; return nil }); err != nil || spawned != 10 {
		t.Fatalf("at-cap batch rejected: err=%v spawned=%d", err, spawned)
	}
	if err := startFlows(500, 0, func(int) error { return nil }); err != nil {
		t.Fatalf("uncapped batch rejected: %v", err)
	}
	if err := startFlows(0, 10, func(int) error { return nil }); err == nil {
		t.Fatal("zero flows accepted")
	}
}

// TestFlowCapChurnLeaksNoGoroutines drives the real sender-spawn path
// through repeated over-cap rejections and checks the process
// goroutine count stays flat — the leak mode the cap ordering guards
// against.
func TestFlowCapChurnLeaksNoGoroutines(t *testing.T) {
	recvConn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	recv := &wire.Receiver{Conn: recvConn}
	if err := recv.Start(); err != nil {
		t.Fatal(err)
	}
	defer recv.Stop()
	dst := recv.Addr()

	spawn := func(int) error {
		conn, err := net.DialUDP("udp", nil, dst)
		if err != nil {
			return err
		}
		snd := &wire.Sender{CC: &engine.FixedRateCC{Rate: 1}, Conn: conn}
		if err := snd.Start(); err != nil {
			conn.Close()
			return err
		}
		t.Cleanup(snd.Stop)
		return nil
	}

	runtime.GC()
	base := runtime.NumGoroutine()
	for round := 0; round < 50; round++ {
		if err := startFlows(4, 3, spawn); err == nil {
			t.Fatal("over-cap round accepted")
		}
	}
	runtime.GC()
	time.Sleep(50 * time.Millisecond)
	if n := runtime.NumGoroutine(); n > base+2 {
		t.Fatalf("goroutines grew under churn: %d -> %d", base, n)
	}
}

// TestEngineAddFlowCap checks the engine-level backstop: AddFlow
// rejects once Shards×MaxFlowsPerShard sender flows are admitted, and
// the rejection costs nothing (no shard state, no wire flow ID burn
// beyond the counter).
func TestEngineAddFlowCap(t *testing.T) {
	eng, err := engine.New(engine.Config{Shards: 2, MaxFlowsPerShard: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	dst := eng.Addrs()[0]
	for i := 0; i < 4; i++ {
		if _, err := eng.AddFlow(engine.FlowConfig{Dst: dst, CC: &engine.FixedRateCC{Rate: 1}}); err != nil {
			t.Fatalf("flow %d rejected below cap: %v", i, err)
		}
	}
	if _, err := eng.AddFlow(engine.FlowConfig{Dst: dst, CC: &engine.FixedRateCC{Rate: 1}}); err == nil {
		t.Fatal("flow beyond engine cap accepted")
	}
}
