module pccproteus

go 1.22
