// Package bench provides one testing.B benchmark per figure of the
// paper's evaluation. Each benchmark regenerates its figure on the
// emulated substrate (reduced grids — pass -fig flags to
// cmd/proteusbench for paper-scale runs) and reports the figure's
// headline quantity as a custom benchmark metric, so
//
//	go test -bench=. -benchmem
//
// doubles as a one-shot reproduction of the whole evaluation.
package bench

import (
	"strings"
	"testing"

	"pccproteus/internal/equi"
	"pccproteus/internal/exp"
	"pccproteus/internal/stats"
)

func opts() exp.Options { return exp.Options{Fast: true, Trials: 1} }

// metricName makes a series label safe for testing.B.ReportMetric,
// whose unit must not contain whitespace.
func metricName(prefix, label string) string {
	return prefix + strings.ReplaceAll(label, " ", "_")
}

func BenchmarkFig02RTTDeviationIndicator(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.Fig2(opts())
		b.ReportMetric(r.DevConfusion, "dev-confusion")
		b.ReportMetric(r.GradConfusion, "grad-confusion")
	}
}

func BenchmarkFig03BufferSaturation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tput, _ := exp.Fig3(opts(), []string{exp.ProtoProteusP, exp.ProtoLEDBAT})
		// Headline: Proteus-P throughput at the smallest buffer that fits
		// a pacing train.
		b.ReportMetric(tput.Rows[1].Cells[0], "proteus-Mbps@37.5KB")
		b.ReportMetric(tput.Rows[1].Cells[1], "ledbat-Mbps@37.5KB")
	}
}

func BenchmarkFig04LossTolerance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := exp.Fig4(opts(), []string{exp.ProtoProteusP, exp.ProtoLEDBAT})
		last := t.Rows[len(t.Rows)-1]
		b.ReportMetric(last.Cells[0], "proteus-Mbps@5pct")
		b.ReportMetric(last.Cells[1], "ledbat-Mbps@5pct")
	}
}

func BenchmarkFig05Fairness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := exp.Fig5(opts(), []string{exp.ProtoProteusS, exp.ProtoLEDBAT})
		last := t.Rows[len(t.Rows)-1]
		b.ReportMetric(last.Cells[0], "proteusS-jain")
		b.ReportMetric(last.Cells[1], "ledbat-jain")
	}
}

func BenchmarkFig06Yielding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells := exp.Fig6(opts(), []string{exp.ProtoProteusS, exp.ProtoLEDBAT})
		var pSum, lSum float64
		var pN, lN int
		for _, c := range cells {
			if c.Scavenger == exp.ProtoProteusS {
				pSum += c.PrimaryRatio
				pN++
			} else {
				lSum += c.PrimaryRatio
				lN++
			}
		}
		b.ReportMetric(pSum/float64(pN), "proteusS-mean-primary-ratio")
		b.ReportMetric(lSum/float64(lN), "ledbat-mean-primary-ratio")
	}
}

func BenchmarkFig07RTTRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells := exp.Fig6(opts(), []string{exp.ProtoProteusS, exp.ProtoLEDBAT})
		for _, c := range cells {
			if c.BufBytes == 375000 && c.Primary == exp.ProtoCopa {
				switch c.Scavenger {
				case exp.ProtoProteusS:
					b.ReportMetric(c.RTTRatio, "copa-rtt-ratio-vs-proteusS")
				case exp.ProtoLEDBAT:
					b.ReportMetric(c.RTTRatio, "copa-rtt-ratio-vs-ledbat")
				}
			}
		}
	}
}

func BenchmarkFig08BroadSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series := exp.Fig8(opts(), []string{exp.ProtoBBR}, nil)
		for _, s := range series {
			b.ReportMetric(stats.Median(s.Values), metricName("median:", s.Name))
		}
	}
}

func BenchmarkFig09WiFiSingle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series := exp.Fig9(opts(), []string{exp.ProtoProteusP, exp.ProtoVivace, exp.ProtoCubic})
		for _, s := range series {
			b.ReportMetric(stats.Median(s.Values), metricName("median-norm:", s.Name))
		}
	}
}

func BenchmarkFig10WiFiYield(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series := exp.Fig10(opts(), []string{exp.ProtoBBR}, nil)
		for _, s := range series {
			b.ReportMetric(stats.Median(s.Values), metricName("median:", s.Name))
		}
	}
}

func BenchmarkFig11Applications(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := exp.Fig11Video(opts())
		last := t.Rows[len(t.Rows)-1]
		b.ReportMetric(last.Cells[1], "dash-Mbps-bg-proteusS")
		b.ReportMetric(last.Cells[2], "dash-Mbps-bg-ledbat")
		web := exp.Fig11Web(exp.Options{Fast: true, Trials: 1})
		for _, s := range web {
			if s.Name == "bg="+exp.ProtoProteusS || s.Name == "bg="+exp.ProtoLEDBAT {
				b.ReportMetric(stats.Median(s.Values), metricName("plt-median:", s.Name))
			}
		}
	}
}

func BenchmarkFig12HybridVideo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := exp.Fig12(opts(), false)
		for _, r := range res {
			if r.BandwidthMbps == 110 || r.BandwidthMbps == 80 {
				b.ReportMetric(r.Bitrate4K, metricName("4k-Mbps:", r.Mode))
			}
		}
	}
}

func BenchmarkFig13ForcedMaxRebuffer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := exp.Fig12(opts(), true)
		for _, r := range res {
			b.ReportMetric(r.Rebuf4K*100, metricName("4k-rebuf-pct:", r.Mode))
		}
	}
}

func BenchmarkFig14BBRS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series := exp.Fig14(opts())
		vs := series["bbr_vs_bbrs"]
		half := len(vs[0].Mbps) / 2
		b.ReportMetric(stats.Mean(vs[0].Mbps[half:]), "bbr-Mbps")
		b.ReportMetric(stats.Mean(vs[1].Mbps[half:]), "bbrs-Mbps")
	}
}

func BenchmarkFig15To17AppendixSingles(b *testing.B) {
	protos := []string{exp.ProtoLEDBAT25, exp.ProtoLEDBAT, exp.ProtoProteusS}
	for i := 0; i < b.N; i++ {
		tput, _ := exp.Fig3(opts(), protos)
		b.ReportMetric(tput.Rows[len(tput.Rows)-1].Cells[0], "ledbat25-Mbps@900KB")
		t5 := exp.Fig5(opts(), protos)
		last := t5.Rows[len(t5.Rows)-1]
		b.ReportMetric(last.Cells[0], "ledbat25-jain")
		b.ReportMetric(last.Cells[1], "ledbat100-jain")
	}
}

func BenchmarkFig18FourFlowTimelines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := exp.Fig18(opts(), []string{exp.ProtoLEDBAT25, exp.ProtoLEDBAT})
		for proto, series := range m {
			var finals []float64
			for _, s := range series {
				xs := s.Mbps
				finals = append(finals, stats.Mean(xs[len(xs)*3/4:]))
			}
			b.ReportMetric(stats.JainIndex(finals), metricName("final-jain:", proto))
		}
	}
}

func BenchmarkFig19LEDBAT25Yield(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells := exp.Fig6(opts(), []string{exp.ProtoLEDBAT25})
		for _, c := range cells {
			if c.BufBytes == 375000 && c.Primary == exp.ProtoProteusP {
				b.ReportMetric(c.PrimaryRatio, "proteusP-ratio-vs-ledbat25")
			}
		}
	}
}

func BenchmarkFig21And22WiFiAppendix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series := exp.Fig9(opts(), []string{exp.ProtoLEDBAT25, exp.ProtoLEDBAT})
		for _, s := range series {
			b.ReportMetric(stats.Median(s.Values), metricName("median-norm:", s.Name))
		}
	}
}

func BenchmarkAblationNoiseMechanisms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, r := range exp.Ablation(opts()) {
			b.ReportMetric(r.NoisySoloMbps, metricName("noisy-Mbps:", r.Variant))
		}
	}
}

func BenchmarkEquilibriumSolver(b *testing.B) {
	p := equi.Default(100)
	kinds := []equi.SenderKind{equi.Primary, equi.Primary, equi.Scavenger}
	for i := 0; i < b.N; i++ {
		if _, ok := p.Equilibrium(kinds, nil); !ok {
			b.Fatal("no convergence")
		}
	}
}
