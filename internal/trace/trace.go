// Package trace is the flight-recorder telemetry subsystem: a typed
// event model with per-flow ring buffers that the simulator, link,
// transport, and congestion controllers emit into at every decision
// point. It exists so a divergent figure can be debugged from the
// event stream of the run that produced it — per-MI utility terms,
// rate-decision votes, RTT samples, queue depths — instead of ad-hoc
// printfs.
//
// The disabled path is free by construction: components hold a Tracer
// value whose zero value (NopTracer) carries a nil Recorder, and every
// emit method begins with an enabled check the compiler reduces to one
// or two branches — no allocation, no dynamic dispatch. This is
// verified by an allocation-guard test (testing.AllocsPerRun == 0).
//
// A Recorder is bound to exactly one simulation and is not safe for
// concurrent use; concurrent experiments (proteusbench -jobs) each
// attach their own.
package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Kind enumerates the event types of the flight recorder.
type Kind uint8

const (
	// KindMIDecision is one finalized monitor interval as the rate
	// controller saw it: target vs measured rate, utility, and the base
	// rate after the decision.
	KindMIDecision Kind = iota
	// KindRateChange is a change of a controller's base sending rate.
	KindRateChange
	// KindUtilitySample is the per-MI utility decomposition: the value
	// plus the metric terms (gradient, deviation, loss) it was computed
	// from.
	KindUtilitySample
	// KindPacketDrop is a packet destroyed anywhere: tail-dropped at the
	// queue, hit by random loss, or declared lost by the sender.
	KindPacketDrop
	// KindQueueDepth is a sampled bottleneck-queue occupancy.
	KindQueueDepth
	// KindRTTSample is one acknowledged packet's RTT, with the sender's
	// cumulative acked bytes so throughput timelines can be rebuilt
	// exactly from the trace alone.
	KindRTTSample
	// KindModeSwitch is a controller mode/state/utility transition.
	KindModeSwitch
	// KindFault is a path-fault transition (blackout, corruption,
	// restart — emitted by the chaos appliers) or a datapath survival
	// event (stall-watchdog trip and recovery). Note carries the fault
	// or event name; A is 1 on activation and 0 on clearing.
	KindFault

	numKinds
)

var kindNames = [numKinds]string{
	KindMIDecision:    "mi",
	KindRateChange:    "rate",
	KindUtilitySample: "util",
	KindPacketDrop:    "drop",
	KindQueueDepth:    "queue",
	KindRTTSample:     "rtt",
	KindModeSwitch:    "mode",
	KindFault:         "fault",
}

// String returns the short name used in exports and CLI flags.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Mask selects a set of event kinds.
type Mask uint16

// AllEvents enables every kind.
const AllEvents Mask = 1<<numKinds - 1

// MaskOf builds a mask from kinds.
func MaskOf(kinds ...Kind) Mask {
	var m Mask
	for _, k := range kinds {
		m |= 1 << k
	}
	return m
}

// Has reports whether the mask includes k.
func (m Mask) Has(k Kind) bool { return m&(1<<k) != 0 }

// ParseKinds parses a comma-separated kind list ("mi,rate,drop"); the
// empty string and "all" mean AllEvents.
func ParseKinds(s string) (Mask, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "all" {
		return AllEvents, nil
	}
	var m Mask
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		found := false
		for k, name := range kindNames {
			if part == name {
				m |= 1 << Kind(k)
				found = true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("trace: unknown event kind %q (have mi,rate,util,drop,queue,rtt,mode,fault)", part)
		}
	}
	return m, nil
}

// Event is one fixed-size flight-recorder record. The payload fields
// A–D are kind-specific; see the JSONL schema in the README and the
// fieldNames table in export.go.
type Event struct {
	T    float64 // virtual time, seconds
	Flow int32   // sender ID; 0 is the link itself
	Kind Kind
	Seq  int64   // MI id (mi, util) or packet sequence (drop, rtt)
	A    float64 // kind-specific payload
	B    float64
	C    float64
	D    float64
	Note string // static label: state/mode/utility name or drop reason
}

// DefaultFlowCap is the default per-flow ring capacity in events —
// large enough to hold every ACK of a -fast timeline figure without
// eviction, small enough (~80 MB worst case) to trace broad sweeps.
const DefaultFlowCap = 1 << 20

// Options configures a Recorder.
type Options struct {
	// Mask selects the event kinds to capture; zero means AllEvents.
	Mask Mask
	// FlowCap is the per-flow ring capacity in events; zero means
	// DefaultFlowCap. When a ring is full the oldest events are
	// overwritten (flight-recorder semantics) and counted as evicted.
	FlowCap int
	// SampleEvery keeps one in N of the per-packet kinds (RTTSample,
	// QueueDepth); zero or one keeps all. Decision-level kinds are
	// never sampled.
	SampleEvery int
}

// flowRing is one flow's ring buffer. It grows geometrically up to the
// recorder's capacity, then wraps.
type flowRing struct {
	buf     []Event
	next    int // overwrite position once wrapped
	wrapped bool
	evicted int64
	ctr     [2]uint32 // sampling counters: 0 = rtt, 1 = queue
}

const (
	strideRTT = iota
	strideQueue
)

func (f *flowRing) push(ev Event, capMax int) {
	if f.wrapped {
		f.buf[f.next] = ev
		f.next++
		if f.next == len(f.buf) {
			f.next = 0
		}
		f.evicted++
		return
	}
	if len(f.buf) < capMax {
		if len(f.buf) == cap(f.buf) {
			// Grow manually so capacity never overshoots capMax.
			n := 2 * cap(f.buf)
			if n == 0 {
				n = 1024
			}
			if n > capMax {
				n = capMax
			}
			grown := make([]Event, len(f.buf), n)
			copy(grown, f.buf)
			f.buf = grown
		}
		f.buf = append(f.buf, ev)
		return
	}
	f.wrapped = true
	f.buf[0] = ev
	f.next = 1
	f.evicted++
}

// events returns the ring's contents oldest-first.
func (f *flowRing) events() []Event {
	if !f.wrapped {
		return f.buf
	}
	out := make([]Event, 0, len(f.buf))
	out = append(out, f.buf[f.next:]...)
	return append(out, f.buf[:f.next]...)
}

// Recorder captures events into per-flow ring buffers. The nil
// Recorder is valid and permanently disabled, so call sites need no
// nil checks beyond the ones built into Tracer's methods.
type Recorder struct {
	mask  Mask
	cap   int
	every uint32
	flows map[int32]*flowRing
}

// NewRecorder builds a recorder with the given options.
func NewRecorder(o Options) *Recorder {
	if o.Mask == 0 {
		o.Mask = AllEvents
	}
	if o.FlowCap <= 0 {
		o.FlowCap = DefaultFlowCap
	}
	if o.SampleEvery <= 0 {
		o.SampleEvery = 1
	}
	return &Recorder{
		mask:  o.Mask,
		cap:   o.FlowCap,
		every: uint32(o.SampleEvery),
		flows: make(map[int32]*flowRing),
	}
}

// Enabled reports whether kind k is being captured. Safe on nil.
func (r *Recorder) Enabled(k Kind) bool { return r != nil && r.mask&(1<<k) != 0 }

// Tracer returns the emission handle for one flow, creating its ring on
// first use. A nil recorder returns NopTracer.
func (r *Recorder) Tracer(flow int) Tracer {
	if r == nil {
		return Tracer{}
	}
	f := r.flows[int32(flow)]
	if f == nil {
		f = &flowRing{}
		r.flows[int32(flow)] = f
	}
	return Tracer{rec: r, ring: f, flow: int32(flow)}
}

// Flows returns the IDs that have recorded at least one event, sorted.
func (r *Recorder) Flows() []int32 {
	if r == nil {
		return nil
	}
	out := make([]int32, 0, len(r.flows))
	for id, f := range r.flows {
		if len(f.buf) > 0 {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Events returns one flow's captured events oldest-first.
func (r *Recorder) Events(flow int32) []Event {
	if r == nil || r.flows[flow] == nil {
		return nil
	}
	return r.flows[flow].events()
}

// Evicted returns how many of a flow's events were overwritten by ring
// wrap-around; nonzero means the oldest part of the timeline is gone.
func (r *Recorder) Evicted(flow int32) int64 {
	if r == nil || r.flows[flow] == nil {
		return 0
	}
	return r.flows[flow].evicted
}

// Tracer is the per-flow emission handle threaded through the stack.
// The zero value (NopTracer) is disabled; every method starts with an
// enabled check that compiles to an inlined branch, so a disabled
// tracer on a hot path costs nothing and allocates nothing.
type Tracer struct {
	rec  *Recorder
	ring *flowRing
	flow int32
}

// NopTracer is the disabled tracer every component defaults to.
var NopTracer Tracer

// Enabled reports whether kind k would be recorded. Use it to guard
// emissions whose arguments are themselves costly to compute.
func (t Tracer) Enabled(k Kind) bool {
	return t.rec != nil && t.rec.mask&(1<<k) != 0
}

// sampled reports whether this per-packet event passes the sampling
// stride (keep the first, then every Nth).
func (t Tracer) sampled(idx int) bool {
	if t.rec.every <= 1 {
		return true
	}
	n := t.ring.ctr[idx]
	t.ring.ctr[idx] = n + 1
	return n%t.rec.every == 0
}

// MIDecision records one finalized monitor interval: the rate it was
// asked to run at, the rate it measured, its utility, and the
// controller's base rate after processing it.
func (t Tracer) MIDecision(now float64, mi int64, targetMbps, measuredMbps, utility, baseRateMbps float64, state string) {
	if t.rec == nil || t.rec.mask&(1<<KindMIDecision) == 0 {
		return
	}
	t.ring.push(Event{T: now, Flow: t.flow, Kind: KindMIDecision, Seq: mi,
		A: targetMbps, B: measuredMbps, C: utility, D: baseRateMbps, Note: state}, t.rec.cap)
}

// RateChange records a base-rate move: the new and previous rates, the
// utility gradient that drove it, and the confidence amplifier.
func (t Tracer) RateChange(now float64, rateMbps, prevMbps, gradient float64, amp int, reason string) {
	if t.rec == nil || t.rec.mask&(1<<KindRateChange) == 0 {
		return
	}
	t.ring.push(Event{T: now, Flow: t.flow, Kind: KindRateChange,
		A: rateMbps, B: prevMbps, C: gradient, D: float64(amp), Note: reason}, t.rec.cap)
}

// UtilitySample records the per-MI utility value with the metric terms
// it was computed from.
func (t Tracer) UtilitySample(now float64, mi int64, utility, rttGrad, rttDev, lossRate float64, utilName string) {
	if t.rec == nil || t.rec.mask&(1<<KindUtilitySample) == 0 {
		return
	}
	t.ring.push(Event{T: now, Flow: t.flow, Kind: KindUtilitySample, Seq: mi,
		A: utility, B: rttGrad, C: rttDev, D: lossRate, Note: utilName}, t.rec.cap)
}

// PacketDrop records a destroyed packet. Reasons: "taildrop" (queue
// full), "random" (non-congestion loss), "declared" (sender loss
// detection). queueBytes is the queue occupancy observed at the event.
func (t Tracer) PacketDrop(now float64, seq int64, size, queueBytes int, reason string) {
	if t.rec == nil || t.rec.mask&(1<<KindPacketDrop) == 0 {
		return
	}
	t.ring.push(Event{T: now, Flow: t.flow, Kind: KindPacketDrop, Seq: seq,
		A: float64(size), B: float64(queueBytes), Note: reason}, t.rec.cap)
}

// QueueDepth records a sampled bottleneck-queue occupancy along with
// the queueing delay a packet enqueued now would see and the link's
// current drain rate (which varies under RateWalk).
func (t Tracer) QueueDepth(now float64, queueBytes int, queueDelay, linkBps float64) {
	if t.rec == nil || t.rec.mask&(1<<KindQueueDepth) == 0 || !t.sampled(strideQueue) {
		return
	}
	t.ring.push(Event{T: now, Flow: t.flow, Kind: KindQueueDepth,
		A: float64(queueBytes), B: queueDelay, C: linkBps}, t.rec.cap)
}

// RTTSample records one acknowledged packet: its RTT, the smoothed
// RTT, the sender's cumulative acked bytes (so throughput timelines
// reduce exactly from the trace), and bytes left in flight.
func (t Tracer) RTTSample(now float64, seq int64, rtt, srtt float64, ackedBytes int64, inflight int) {
	if t.rec == nil || t.rec.mask&(1<<KindRTTSample) == 0 || !t.sampled(strideRTT) {
		return
	}
	t.ring.push(Event{T: now, Flow: t.flow, Kind: KindRTTSample, Seq: seq,
		A: rtt, B: srtt, C: float64(ackedBytes), D: float64(inflight)}, t.rec.cap)
}

// ModeSwitch records a controller state or utility-function transition,
// with one kind-specific context value (e.g. the rate at the switch).
func (t Tracer) ModeSwitch(now float64, mode string, value float64) {
	if t.rec == nil || t.rec.mask&(1<<KindModeSwitch) == 0 {
		return
	}
	t.ring.push(Event{T: now, Flow: t.flow, Kind: KindModeSwitch, A: value, Note: mode}, t.rec.cap)
}

// Fault records a path-fault transition or a survival-machinery event.
// name is the fault kind ("blackout", "corrupt", ...) or the event
// ("watchdog-trip", "watchdog-recover", "peer-restart"); active is 1 on
// activation and 0 on clearing; value is kind-specific (probability,
// clock offset, idle or outage seconds, resume rate).
func (t Tracer) Fault(now float64, name string, active, value float64) {
	if t.rec == nil || t.rec.mask&(1<<KindFault) == 0 {
		return
	}
	t.ring.push(Event{T: now, Flow: t.flow, Kind: KindFault, A: active, B: value, Note: name}, t.rec.cap)
}
