package trace

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// fieldNames maps each kind's A–D payload slots to the JSONL field
// names of the documented schema (README "Tracing & telemetry"). An
// empty name means the slot is unused for that kind.
var fieldNames = [numKinds][4]string{
	KindMIDecision:    {"target_mbps", "measured_mbps", "utility", "base_rate_mbps"},
	KindRateChange:    {"rate_mbps", "prev_mbps", "gradient", "amp"},
	KindUtilitySample: {"utility", "rtt_grad", "rtt_dev", "loss_rate"},
	KindPacketDrop:    {"size", "queue_bytes", "", ""},
	KindQueueDepth:    {"queue_bytes", "queue_delay", "link_bps", ""},
	KindRTTSample:     {"rtt", "srtt", "acked_bytes", "inflight"},
	KindModeSwitch:    {"value", "", "", ""},
	KindFault:         {"active", "value", "", ""},
}

// kindHasSeq marks the kinds whose Seq field is meaningful (an MI id
// or a packet sequence number).
var kindHasSeq = [numKinds]bool{
	KindMIDecision:    true,
	KindUtilitySample: true,
	KindPacketDrop:    true,
	KindRTTSample:     true,
}

// WriteJSONL writes events as one JSON object per line, using
// kind-specific field names, e.g.
//
//	{"t":12.031,"flow":1,"kind":"rtt","seq":50122,"rtt":0.0312,"srtt":0.0308,"acked_bytes":75183000,"inflight":187500}
//
// Floats are formatted with full round-trip precision so a reduced
// timeline from the file is bit-identical to one reduced in process.
func WriteJSONL(w io.Writer, evs []Event) error {
	bw := bufio.NewWriter(w)
	buf := make([]byte, 0, 256)
	for _, ev := range evs {
		buf = buf[:0]
		buf = append(buf, `{"t":`...)
		buf = strconv.AppendFloat(buf, ev.T, 'g', -1, 64)
		buf = append(buf, `,"flow":`...)
		buf = strconv.AppendInt(buf, int64(ev.Flow), 10)
		buf = append(buf, `,"kind":"`...)
		buf = append(buf, ev.Kind.String()...)
		buf = append(buf, '"')
		if int(ev.Kind) < len(kindHasSeq) && kindHasSeq[ev.Kind] {
			buf = append(buf, `,"seq":`...)
			buf = strconv.AppendInt(buf, ev.Seq, 10)
		}
		if int(ev.Kind) < len(fieldNames) {
			vals := [4]float64{ev.A, ev.B, ev.C, ev.D}
			for i, name := range fieldNames[ev.Kind] {
				if name == "" {
					continue
				}
				buf = append(buf, ',', '"')
				buf = append(buf, name...)
				buf = append(buf, `":`...)
				buf = appendJSONFloat(buf, vals[i])
			}
		}
		if ev.Note != "" {
			buf = append(buf, `,"note":`...)
			q, err := json.Marshal(ev.Note)
			if err != nil {
				return err
			}
			buf = append(buf, q...)
		}
		buf = append(buf, '}', '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// appendJSONFloat formats a float as valid JSON (NaN and infinities
// are not representable in JSON; they become null).
func appendJSONFloat(buf []byte, v float64) []byte {
	if v != v || v > 1.797e308 || v < -1.797e308 {
		return append(buf, "null"...)
	}
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}

// ReadJSONL parses a JSONL trace written by WriteJSONL back into
// events, so exporters, reducers, and external tools can round-trip.
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var m map[string]json.RawMessage
		if err := json.Unmarshal(raw, &m); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		var ev Event
		var kindName string
		if err := unmarshalField(m, "kind", &kindName); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		kind, ok := kindFromString(kindName)
		if !ok {
			return nil, fmt.Errorf("trace: line %d: unknown kind %q", line, kindName)
		}
		ev.Kind = kind
		if err := unmarshalField(m, "t", &ev.T); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		var flow int64
		if err := unmarshalField(m, "flow", &flow); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		ev.Flow = int32(flow)
		if kindHasSeq[kind] {
			_ = unmarshalField(m, "seq", &ev.Seq)
		}
		slots := [4]*float64{&ev.A, &ev.B, &ev.C, &ev.D}
		for i, name := range fieldNames[kind] {
			if name == "" {
				continue
			}
			if raw, ok := m[name]; ok && string(raw) != "null" {
				if err := json.Unmarshal(raw, slots[i]); err != nil {
					return nil, fmt.Errorf("trace: line %d: field %s: %w", line, name, err)
				}
			}
		}
		_ = unmarshalField(m, "note", &ev.Note)
		out = append(out, ev)
	}
	return out, sc.Err()
}

func unmarshalField(m map[string]json.RawMessage, name string, dst any) error {
	raw, ok := m[name]
	if !ok {
		return nil
	}
	if err := json.Unmarshal(raw, dst); err != nil {
		return fmt.Errorf("field %s: %w", name, err)
	}
	return nil
}

func kindFromString(s string) (Kind, bool) {
	for k, name := range kindNames {
		if s == name {
			return Kind(k), true
		}
	}
	return 0, false
}

// WriteCSV writes events in a plot-ready wide format with generic
// payload columns (t,flow,kind,seq,a,b,c,d,note); the per-kind column
// meanings are the same as the JSONL schema.
func WriteCSV(w io.Writer, evs []Event) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"t", "flow", "kind", "seq", "a", "b", "c", "d", "note"}); err != nil {
		return err
	}
	for _, ev := range evs {
		rec := []string{
			strconv.FormatFloat(ev.T, 'g', -1, 64),
			strconv.FormatInt(int64(ev.Flow), 10),
			ev.Kind.String(),
			strconv.FormatInt(ev.Seq, 10),
			strconv.FormatFloat(ev.A, 'g', -1, 64),
			strconv.FormatFloat(ev.B, 'g', -1, 64),
			strconv.FormatFloat(ev.C, 'g', -1, 64),
			strconv.FormatFloat(ev.D, 'g', -1, 64),
			ev.Note,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
