package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// emitAll fires every emitter once on t.
func emitAll(tr Tracer) {
	tr.MIDecision(1.0, 7, 40, 38, 12.5, 41, "probing")
	tr.RateChange(1.1, 42, 40, 0.8, 2, "up")
	tr.UtilitySample(1.2, 7, 12.5, 0.01, 0.002, 0.0, "primary")
	tr.PacketDrop(1.3, 101, 1500, 30000, "taildrop")
	tr.QueueDepth(1.4, 30000, 0.004, 6.25e6)
	tr.RTTSample(1.5, 102, 0.031, 0.030, 1_500_000, 187500)
	tr.ModeSwitch(1.6, "probe_rtt", 1.0)
	tr.Fault(1.7, "blackout", 1, 0)
}

// TestNopTracerZeroAlloc is the zero-cost guarantee: a disabled tracer
// (no recorder, or every emitted kind masked off) must not allocate.
func TestNopTracerZeroAlloc(t *testing.T) {
	if n := testing.AllocsPerRun(1000, func() { emitAll(NopTracer) }); n != 0 {
		t.Fatalf("NopTracer allocated %v allocs/op, want 0", n)
	}
	rec := NewRecorder(Options{Mask: MaskOf(KindModeSwitch)})
	tr := rec.Tracer(1)
	masked := func() {
		tr.MIDecision(1.0, 7, 40, 38, 12.5, 41, "probing")
		tr.RateChange(1.1, 42, 40, 0.8, 2, "up")
		tr.UtilitySample(1.2, 7, 12.5, 0.01, 0.002, 0.0, "primary")
		tr.PacketDrop(1.3, 101, 1500, 30000, "taildrop")
		tr.QueueDepth(1.4, 30000, 0.004, 6.25e6)
		tr.RTTSample(1.5, 102, 0.031, 0.030, 1_500_000, 187500)
	}
	if n := testing.AllocsPerRun(1000, masked); n != 0 {
		t.Fatalf("mask-disabled tracer allocated %v allocs/op, want 0", n)
	}
	if got := len(rec.Events(1)); got != 0 {
		t.Fatalf("masked kinds recorded %d events, want 0", got)
	}
}

func TestRecorderCapturesAllKinds(t *testing.T) {
	rec := NewRecorder(Options{})
	emitAll(rec.Tracer(3))
	evs := rec.Events(3)
	if len(evs) != int(numKinds) {
		t.Fatalf("got %d events, want %d", len(evs), numKinds)
	}
	wantKinds := []Kind{KindMIDecision, KindRateChange, KindUtilitySample,
		KindPacketDrop, KindQueueDepth, KindRTTSample, KindModeSwitch, KindFault}
	for i, ev := range evs {
		if ev.Kind != wantKinds[i] {
			t.Errorf("event %d kind = %v, want %v", i, ev.Kind, wantKinds[i])
		}
		if ev.Flow != 3 {
			t.Errorf("event %d flow = %d, want 3", i, ev.Flow)
		}
	}
	if flows := rec.Flows(); len(flows) != 1 || flows[0] != 3 {
		t.Errorf("Flows() = %v, want [3]", flows)
	}
	// A flow whose ring was created but never written is not listed.
	_ = rec.Tracer(9)
	if flows := rec.Flows(); len(flows) != 1 {
		t.Errorf("Flows() after empty ring = %v, want [3]", flows)
	}
}

func TestRingWrap(t *testing.T) {
	const capMax = 8
	rec := NewRecorder(Options{FlowCap: capMax})
	tr := rec.Tracer(1)
	for i := 0; i < 20; i++ {
		tr.ModeSwitch(float64(i), "m", float64(i))
	}
	evs := rec.Events(1)
	if len(evs) != capMax {
		t.Fatalf("ring holds %d events, want %d", len(evs), capMax)
	}
	for i, ev := range evs {
		if want := float64(20 - capMax + i); ev.T != want {
			t.Errorf("event %d T = %g, want %g (oldest-first after wrap)", i, ev.T, want)
		}
	}
	if ev := rec.Evicted(1); ev != 12 {
		t.Errorf("Evicted = %d, want 12", ev)
	}
}

func TestSampling(t *testing.T) {
	rec := NewRecorder(Options{SampleEvery: 3})
	tr := rec.Tracer(1)
	for i := 0; i < 10; i++ {
		tr.RTTSample(float64(i), int64(i), 0.03, 0.03, int64(i), 0)
	}
	evs := rec.Events(1)
	if len(evs) != 4 { // indices 0, 3, 6, 9
		t.Fatalf("sampled %d events, want 4", len(evs))
	}
	for i, want := range []float64{0, 3, 6, 9} {
		if evs[i].T != want {
			t.Errorf("sample %d at T=%g, want %g", i, evs[i].T, want)
		}
	}
	// Decision-level kinds are never sampled.
	for i := 0; i < 5; i++ {
		tr.ModeSwitch(float64(i), "m", 0)
	}
	if got := len(rec.Events(1)); got != 9 {
		t.Errorf("after 5 mode events: %d total, want 9 (mode never sampled)", got)
	}
}

func TestParseKinds(t *testing.T) {
	for _, s := range []string{"", "all"} {
		m, err := ParseKinds(s)
		if err != nil || m != AllEvents {
			t.Errorf("ParseKinds(%q) = %v, %v; want AllEvents, nil", s, m, err)
		}
	}
	m, err := ParseKinds("mi, rate ,drop")
	if err != nil {
		t.Fatal(err)
	}
	if want := MaskOf(KindMIDecision, KindRateChange, KindPacketDrop); m != want {
		t.Errorf("ParseKinds(mi,rate,drop) = %b, want %b", m, want)
	}
	if m.Has(KindRTTSample) || !m.Has(KindPacketDrop) {
		t.Error("Has() disagrees with parsed mask")
	}
	if _, err := ParseKinds("mi,bogus"); err == nil {
		t.Error("ParseKinds accepted unknown kind")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	rec := NewRecorder(Options{})
	emitAll(rec.Tracer(2))
	evs := rec.Events(2)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, evs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(evs) {
		t.Fatalf("round-trip length %d, want %d", len(got), len(evs))
	}
	for i := range evs {
		want := evs[i]
		// Unused payload slots are not serialized; zero them as the
		// reader would.
		for s, name := range fieldNames[want.Kind] {
			if name == "" {
				*[4]*float64{&want.A, &want.B, &want.C, &want.D}[s] = 0
			}
		}
		if !kindHasSeq[want.Kind] {
			want.Seq = 0
		}
		if got[i] != want {
			t.Errorf("event %d round-trip:\n got %+v\nwant %+v", i, got[i], want)
		}
	}
}

func TestJSONLNaNBecomesNull(t *testing.T) {
	evs := []Event{{T: 1, Flow: 1, Kind: KindUtilitySample, Seq: 3, A: math.NaN(), B: math.Inf(1), C: 2.5}}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, evs); err != nil {
		t.Fatal(err)
	}
	line := buf.String()
	if !strings.Contains(line, `"utility":null`) || !strings.Contains(line, `"rtt_grad":null`) {
		t.Fatalf("NaN/Inf not serialized as null: %s", line)
	}
	got, err := ReadJSONL(strings.NewReader(line))
	if err != nil {
		t.Fatal(err)
	}
	if got[0].A != 0 || got[0].B != 0 || got[0].C != 2.5 {
		t.Errorf("null slots read back as %+v, want A=0 B=0 C=2.5", got[0])
	}
}

func TestWriteCSV(t *testing.T) {
	rec := NewRecorder(Options{})
	emitAll(rec.Tracer(2))
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rec.Events(2)); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != int(numKinds)+1 {
		t.Fatalf("CSV has %d lines, want %d", len(lines), int(numKinds)+1)
	}
	if lines[0] != "t,flow,kind,seq,a,b,c,d,note" {
		t.Errorf("CSV header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1,2,mi,7,") {
		t.Errorf("first CSV row = %q", lines[1])
	}
}

func TestReduce(t *testing.T) {
	evs := []Event{
		{T: 0.5, Flow: 1, Kind: KindRTTSample, A: 0.030, C: 125000},
		{T: 1.0, Flow: 1, Kind: KindRTTSample, A: 0.040, C: 250000}, // exactly on boundary → bucket 1
		{T: 1.5, Flow: 1, Kind: KindPacketDrop, Seq: 9, A: 1500},
		{T: 2.5, Flow: 1, Kind: KindRTTSample, A: 0.050, C: 500000},
	}
	s := Reduce(evs, 1, 3)
	if s.Flow != 1 || s.Bucket != 1 {
		t.Fatalf("summary header %+v", s)
	}
	wantTput := []float64{1.0, 1.0, 2.0}
	for i, want := range wantTput {
		if math.Abs(s.ThroughputMbps[i]-want) > 1e-12 {
			t.Errorf("ThroughputMbps[%d] = %g, want %g", i, s.ThroughputMbps[i], want)
		}
	}
	wantRTT := []float64{0.030, 0.040, 0.050}
	for i, want := range wantRTT {
		if math.Abs(s.AvgRTT[i]-want) > 1e-12 {
			t.Errorf("AvgRTT[%d] = %g, want %g", i, s.AvgRTT[i], want)
		}
	}
	if s.LossPkts[0] != 0 || s.LossPkts[1] != 1 || s.LossPkts[2] != 0 {
		t.Errorf("LossPkts = %v, want [0 1 0]", s.LossPkts)
	}
}

func TestReduceEmptyBucketRTTIsNaN(t *testing.T) {
	evs := []Event{{T: 0.2, Flow: 1, Kind: KindRTTSample, A: 0.030, C: 1000}}
	s := Reduce(evs, 1, 2)
	if !math.IsNaN(s.AvgRTT[1]) {
		t.Errorf("AvgRTT of empty bucket = %g, want NaN", s.AvgRTT[1])
	}
	if s.ThroughputMbps[1] != 0 {
		t.Errorf("ThroughputMbps of idle bucket = %g, want 0", s.ThroughputMbps[1])
	}
	// Default horizon: last event time rounded up.
	s2 := Reduce(evs, 1, 0)
	if len(s2.ThroughputMbps) != 1 {
		t.Errorf("default horizon buckets = %d, want 1", len(s2.ThroughputMbps))
	}
}
