package trace

import "math"

// FlowSummary is one flow's trace reduced to fixed-width time buckets:
// the same per-second (or any width) throughput/RTT/loss timelines the
// paper's timeline figures print, rebuilt from the event stream alone.
type FlowSummary struct {
	Flow   int32
	Bucket float64 // bucket width, seconds

	// ThroughputMbps[i] is the acked-byte rate over [i·w, (i+1)·w),
	// computed from the cumulative acked-bytes counter carried by RTT
	// samples — exact even when RTT samples are stride-sampled, since
	// the counter is cumulative.
	ThroughputMbps []float64
	// AvgRTT[i] is the mean of the bucket's RTT samples (NaN if none).
	AvgRTT []float64
	// LossPkts[i] counts the bucket's drop events of every reason.
	LossPkts []int
}

// Reduce buckets one flow's events (as returned by Recorder.Events or
// ReadJSONL: oldest first) at the given width. horizon bounds the
// timeline; if zero, it is the last event time rounded up to a bucket.
//
// Bucket boundaries are half-open [k·w, (k+1)·w): an event at exactly
// k·w lands in bucket k. This matches the experiment harness's
// per-second measurement callbacks, which are scheduled before the
// run and therefore fire ahead of any ack at the same instant.
func Reduce(evs []Event, bucket, horizon float64) FlowSummary {
	if bucket <= 0 {
		bucket = 1
	}
	if horizon <= 0 {
		for _, ev := range evs {
			if ev.T > horizon {
				horizon = ev.T
			}
		}
	}
	n := int(math.Ceil(horizon/bucket - 1e-9))
	if n < 0 {
		n = 0
	}
	s := FlowSummary{
		Bucket:         bucket,
		ThroughputMbps: make([]float64, n),
		AvgRTT:         make([]float64, n),
		LossPkts:       make([]int, n),
	}
	if len(evs) > 0 {
		s.Flow = evs[0].Flow
	}
	// cumAt[k] is cumulative acked bytes strictly before boundary k·w.
	cumAt := make([]float64, n+1)
	rttSum := make([]float64, n)
	rttN := make([]int, n)
	cum := 0.0
	b := 1
	for _, ev := range evs {
		for b <= n && ev.T >= float64(b)*bucket {
			cumAt[b] = cum
			b++
		}
		i := int(ev.T / bucket)
		switch ev.Kind {
		case KindRTTSample:
			cum = ev.C
			if i >= 0 && i < n {
				rttSum[i] += ev.A
				rttN[i]++
			}
		case KindPacketDrop:
			if i >= 0 && i < n {
				s.LossPkts[i]++
			}
		}
	}
	for ; b <= n; b++ {
		cumAt[b] = cum
	}
	for i := 0; i < n; i++ {
		s.ThroughputMbps[i] = (cumAt[i+1] - cumAt[i]) * 8 / bucket / 1e6
		if rttN[i] > 0 {
			s.AvgRTT[i] = rttSum[i] / float64(rttN[i])
		} else {
			s.AvgRTT[i] = math.NaN()
		}
	}
	return s
}
