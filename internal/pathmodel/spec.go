package pathmodel

import (
	"fmt"
	"os"
)

// KnownModels lists the model kinds Build and ByName accept, in help
// order: the bundled generators, the satellite constellation, and
// file-backed traces.
var KnownModels = []string{"lte", "5g", "leo", "trace"}

// Spec is the JSON-friendly description of a path model, embedded in
// campaign topology specs and CLI flags. A generator spec is fully
// reproducible from (Kind, Seed, DurS); a trace spec names a file.
type Spec struct {
	Kind string `json:"kind"` // lte | 5g | leo | trace

	// Generator fields (lte, 5g): Seed and the generated trace length
	// in seconds (0 = the horizon Build is given).
	Seed int64   `json:"seed,omitempty"`
	DurS float64 `json:"dur_s,omitempty"`

	// Trace fields (kind=trace).
	Path   string `json:"path,omitempty"`   // CSV or JSONL trace file
	Interp string `json:"interp,omitempty"` // "hold" (default) | "linear"
	NoLoop bool   `json:"no_loop,omitempty"`

	// LEO overrides (zero = model default).
	PeriodS float64 `json:"period_s,omitempty"`
	OutageS float64 `json:"outage_s,omitempty"`
	Mbps    float64 `json:"mbps,omitempty"`
}

// Build constructs the model the spec describes. horizon bounds
// generated trace length when DurS is unset; generated traces loop, so
// a shorter DurS simply repeats.
func (sp Spec) Build(horizon float64) (Model, error) {
	dur := sp.DurS
	if dur <= 0 {
		dur = horizon
	}
	if dur <= 0 {
		return nil, fmt.Errorf("pathmodel: spec %q needs dur_s or a positive horizon", sp.Kind)
	}
	seed := sp.Seed
	if seed == 0 {
		seed = 1
	}
	switch sp.Kind {
	case "lte":
		return GenLTE(seed, dur), nil
	case "5g":
		return Gen5G(seed, dur), nil
	case "leo":
		m := DefaultLEO(seed)
		m.Period, m.Outage = sp.PeriodS, sp.OutageS
		m.Mbps = sp.Mbps
		return m.withDefaults(), nil
	case "trace":
		if sp.Path == "" {
			return nil, fmt.Errorf("pathmodel: trace spec needs a path")
		}
		f, err := os.Open(sp.Path)
		if err != nil {
			return nil, fmt.Errorf("pathmodel: %w", err)
		}
		defer f.Close()
		tr, err := ParseTrace(f)
		if err != nil {
			return nil, fmt.Errorf("%w (in %s)", err, sp.Path)
		}
		tr.Label = sp.Path
		tr.Loop = !sp.NoLoop
		switch sp.Interp {
		case "", "hold":
			tr.Mode = Hold
		case "linear":
			tr.Mode = Linear
		default:
			return nil, fmt.Errorf("pathmodel: unknown interp %q (hold|linear)", sp.Interp)
		}
		return tr, nil
	default:
		return nil, fmt.Errorf("pathmodel: unknown model kind %q (known: %v)", sp.Kind, KnownModels)
	}
}

// ByName builds a named bundled model — the CLI and adversary-scenario
// shorthand for a generator Spec with the given seed.
func ByName(name string, seed int64, horizon float64) (Model, error) {
	return Spec{Kind: name, Seed: seed}.Build(horizon)
}
