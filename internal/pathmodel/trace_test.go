package pathmodel

import (
	"math"
	"os"
	"strings"
	"testing"
)

func mustParseFile(t *testing.T, path string) *Trace {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := ParseTrace(f)
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	return tr
}

// TestGoldenTracesParse parses the committed golden traces and checks
// the CSV and JSONL forms of the same channel decode identically.
func TestGoldenTracesParse(t *testing.T) {
	csv := mustParseFile(t, "testdata/cellular_golden.csv")
	jsonl := mustParseFile(t, "testdata/cellular_golden.jsonl")
	if len(csv.Points) != 21 || len(jsonl.Points) != 21 {
		t.Fatalf("row counts: csv=%d jsonl=%d, want 21", len(csv.Points), len(jsonl.Points))
	}
	for i := range csv.Points {
		if csv.Points[i] != jsonl.Points[i] {
			t.Fatalf("row %d differs: csv=%+v jsonl=%+v", i, csv.Points[i], jsonl.Points[i])
		}
	}
	// Spot checks against the file contents.
	if p := csv.Points[5]; p.T != 0.5 || p.Mbps != 1.2 || p.ExtraDelay != 0.045 {
		t.Fatalf("row 5 = %+v, want {0.5 1.2 0.045}", p)
	}
	if d := csv.Duration(); d != 2.0 {
		t.Fatalf("duration = %v, want 2.0", d)
	}
}

// TestTraceStateAt covers hold vs linear interpolation, loop wrap, and
// hold-past-end behavior.
func TestTraceStateAt(t *testing.T) {
	tr := &Trace{Points: []TracePoint{
		{T: 0, Mbps: 10},
		{T: 1, Mbps: 20, ExtraDelay: 0.010},
		{T: 2, Mbps: 40},
	}}

	tr.Mode = Hold
	if got := tr.StateAt(0.99).Mbps; got != 10 {
		t.Fatalf("hold at 0.99: %v, want 10", got)
	}
	if got := tr.StateAt(1.5); got.Mbps != 20 || got.ExtraDelay != 0.010 {
		t.Fatalf("hold at 1.5: %+v, want {20 0.010}", got)
	}

	tr.Mode = Linear
	if got := tr.StateAt(0.5).Mbps; math.Abs(got-15) > 1e-12 {
		t.Fatalf("linear at 0.5: %v, want 15", got)
	}
	if got := tr.StateAt(1.5); math.Abs(got.Mbps-30) > 1e-12 || math.Abs(got.ExtraDelay-0.005) > 1e-12 {
		t.Fatalf("linear at 1.5: %+v, want {30 0.005}", got)
	}

	// Past the end: loop wraps modulo the duration, no-loop holds.
	tr.Mode = Hold
	tr.Loop = true
	if got, want := tr.StateAt(2.5).Mbps, tr.StateAt(0.5).Mbps; got != want {
		t.Fatalf("loop at 2.5: %v, want %v", got, want)
	}
	tr.Loop = false
	if got := tr.StateAt(100).Mbps; got != 40 {
		t.Fatalf("hold-past-end: %v, want 40", got)
	}
}

// TestParseTraceRejects is the malformed-row table: every case must
// fail with an error (and, via the fuzz harness, without a panic).
func TestParseTraceRejects(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"comment-only", "# nothing\n"},
		{"one-column", "1.0\n"},
		{"four-columns", "0,1,2,3\n"},
		{"bad-number", "0,abc\n"},
		{"nan", "0,NaN\n"},
		{"inf-delay", "0,10,+Inf\n"},
		{"negative-time", "-1,10\n"},
		{"negative-mbps", "0,-3\n"},
		{"negative-delay", "0,10,-2\n"},
		{"non-increasing", "0,10\n0,12\n"},
		{"decreasing", "1,10\n0.5,12\n"},
		{"wrong-header", "time,rate\n0,10\n"},
		{"jsonl-unknown-field", `{"t":0,"mbps":10,"x":1}`},
		{"jsonl-missing-mbps", `{"t":0}`},
		{"jsonl-nan", `{"t":0,"mbps":null}`},
		{"jsonl-trailing", `{"t":0,"mbps":10}{"t":1,"mbps":11}`},
		{"jsonl-negative", `{"t":0,"mbps":-1}`},
		{"jsonl-not-object", "{broken"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseTrace(strings.NewReader(tc.in)); err == nil {
				t.Fatalf("ParseTrace(%q) accepted malformed input", tc.in)
			}
		})
	}
}

// TestParseTraceAccepts covers the lenient corners of the strict
// format: header, comments, blank lines, zero capacity, 2-column rows.
func TestParseTraceAccepts(t *testing.T) {
	in := "t,mbps,delay_ms\n# fade below\n\n0,10\n0.5,0,12.5\n1,25\n"
	tr, err := ParseTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Points) != 3 {
		t.Fatalf("rows = %d, want 3", len(tr.Points))
	}
	if p := tr.Points[1]; p.Mbps != 0 || p.ExtraDelay != 0.0125 {
		t.Fatalf("row 1 = %+v", p)
	}
	// A zero-capacity fade clamps to the floor at application time.
	if got := ClampMbps(tr.StateAt(0.5).Mbps); got != FloorMbps {
		t.Fatalf("clamped fade = %v, want floor %v", got, FloorMbps)
	}
}

// FuzzParseTrace feeds arbitrary bytes to the sniffing parser: it must
// either return a trace satisfying the format invariants or an error —
// never panic.
func FuzzParseTrace(f *testing.F) {
	f.Add("t,mbps,delay_ms\n0,10,1\n1,20,0\n")
	f.Add(`{"t":0,"mbps":10}` + "\n" + `{"t":1,"mbps":20,"delay_ms":3}`)
	f.Add("0,1\n")
	f.Add("0,NaN\n")
	f.Add("-1,5\n")
	f.Add("{\n")
	f.Add("")
	f.Add("t,mbps,delay_ms")
	f.Add("0,1e309\n")
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := ParseTrace(strings.NewReader(in))
		if err != nil {
			return
		}
		if len(tr.Points) == 0 {
			t.Fatal("accepted trace with no rows")
		}
		prev := math.Inf(-1)
		for i, p := range tr.Points {
			if math.IsNaN(p.T) || p.T < 0 || p.T <= prev && i > 0 {
				t.Fatalf("row %d: non-increasing or invalid time %v", i, p.T)
			}
			if math.IsNaN(p.Mbps) || math.IsInf(p.Mbps, 0) || p.Mbps < 0 {
				t.Fatalf("row %d: invalid capacity %v", i, p.Mbps)
			}
			if math.IsNaN(p.ExtraDelay) || math.IsInf(p.ExtraDelay, 0) || p.ExtraDelay < 0 {
				t.Fatalf("row %d: invalid delay %v", i, p.ExtraDelay)
			}
			prev = p.T
		}
		// The accepted trace must also be applicable: every sampled
		// state passes the netem model boundary.
		if err := Validate(tr, math.Min(tr.Duration(), 5)); err != nil {
			t.Fatalf("accepted trace fails Validate: %v", err)
		}
	})
}
