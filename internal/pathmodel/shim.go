package pathmodel

import (
	"pccproteus/internal/wire"
)

// ShimUpdates compiles the model's step schedule into the wire shim's
// timed-update records: the same Steps enumeration ApplySim replays as
// sim events, expressed as wire.ShimUpdate rows for
// wire.LoopbackConfig.Schedule (or a hand-rolled shim driver). Outage
// windows are omitted — pair this with FaultPlan, whose chaos blackout
// plan the wire loopback already knows how to execute — and capacity
// samples arrive pre-clamped to the netem floor, so a fade can never
// alias into ShimUpdate's "zero means keep" convention.
func ShimUpdates(m Model, horizon float64) []wire.ShimUpdate {
	steps := Steps(m, horizon)
	out := make([]wire.ShimUpdate, 0, len(steps))
	var last State
	for i, st := range steps {
		s := st.State
		if i > 0 && s.Mbps == last.Mbps && s.ExtraDelay == last.ExtraDelay {
			last = s
			continue // only the Down flag changed; FaultPlan owns it
		}
		out = append(out, wire.ShimUpdate{
			At:         st.At,
			RateMbps:   s.Mbps,
			ExtraDelay: s.ExtraDelay,
			LossProb:   -1, // keep
		})
		last = s
	}
	return out
}
