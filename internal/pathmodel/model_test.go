package pathmodel

import (
	"math"
	"testing"

	"pccproteus/internal/chaos"
	"pccproteus/internal/netem"
	"pccproteus/internal/sim"
)

// TestStepsDedup checks the step schedule collapses consecutive equal
// states and starts at t=0.
func TestStepsDedup(t *testing.T) {
	tr := &Trace{Step: 0.1, Points: []TracePoint{
		{T: 0, Mbps: 10}, {T: 1, Mbps: 10}, {T: 2, Mbps: 20},
	}}
	steps := Steps(tr, 3)
	if len(steps) != 2 {
		t.Fatalf("steps = %+v, want 2 entries (t=0 @10, t=2 @20)", steps)
	}
	if steps[0].At != 0 || steps[0].State.Mbps != 10 {
		t.Fatalf("step 0 = %+v", steps[0])
	}
	if steps[1].At != 2 || steps[1].State.Mbps != 20 {
		t.Fatalf("step 1 = %+v", steps[1])
	}
}

// TestGeneratorsDeterministic checks both bundled generators reproduce
// bitwise from their seed and respect their capacity envelopes.
func TestGeneratorsDeterministic(t *testing.T) {
	for _, tc := range []struct {
		name     string
		gen      func(int64, float64) *Trace
		lo, hi   float64
	}{
		{"lte", GenLTE, 0.5, 55},
		{"5g", Gen5G, 2, 250},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a, b := tc.gen(7, 30), tc.gen(7, 30)
			if len(a.Points) != len(b.Points) {
				t.Fatalf("lengths differ: %d vs %d", len(a.Points), len(b.Points))
			}
			for i := range a.Points {
				if a.Points[i] != b.Points[i] {
					t.Fatalf("row %d differs: %+v vs %+v", i, a.Points[i], b.Points[i])
				}
			}
			c := tc.gen(8, 30)
			same := true
			for i := range a.Points {
				if a.Points[i] != c.Points[i] {
					same = false
					break
				}
			}
			if same {
				t.Fatal("different seeds produced identical traces")
			}
			for i, p := range a.Points {
				if p.Mbps < tc.lo || p.Mbps > tc.hi {
					t.Fatalf("row %d capacity %v outside [%v, %v]", i, p.Mbps, tc.lo, tc.hi)
				}
			}
		})
	}
}

// TestLEOModel checks the constellation's shape: pure StateAt, an
// outage window at every handover, per-pass capacity changes, and a
// delay arc bounded by the configured swing.
func TestLEOModel(t *testing.T) {
	m := DefaultLEO(3).withDefaults()
	if got, want := m.StateAt(31.7), m.StateAt(31.7); got != want {
		t.Fatalf("StateAt not pure: %+v vs %+v", got, want)
	}
	// Handover tail of each pass is down.
	for _, tt := range []float64{14.9, 29.9, 44.9} {
		if st := m.StateAt(tt); !st.Down {
			t.Fatalf("t=%v: not in outage: %+v", tt, st)
		}
	}
	for _, tt := range []float64{7.5, 14.8, 15.0, 22.5} {
		if st := m.StateAt(tt); st.Down {
			t.Fatalf("t=%v: unexpected outage", tt)
		}
	}
	// Successive passes draw different capacities.
	if a, b := m.StateAt(5).Mbps, m.StateAt(20).Mbps; a == b {
		t.Fatalf("pass capacities identical: %v", a)
	}
	// Delay arc: min mid-pass, within [BaseExtra, BaseExtra+SwingExtra].
	mid, edge := m.StateAt(7.5).ExtraDelay, m.StateAt(0.5).ExtraDelay
	if mid >= edge {
		t.Fatalf("delay arc inverted: mid %v >= edge %v", mid, edge)
	}
	for tt := 0.0; tt < 15; tt += 0.05 {
		st := m.StateAt(tt)
		if st.Down {
			continue
		}
		if st.ExtraDelay < m.BaseExtra-1e-9 || st.ExtraDelay > m.BaseExtra+m.SwingExtra+1e-9 {
			t.Fatalf("t=%v: delay %v outside envelope", tt, st.ExtraDelay)
		}
	}
}

// TestFaultPlanLEO checks outage windows extract as chaos blackouts:
// one per handover, with the configured duration.
func TestFaultPlanLEO(t *testing.T) {
	m := DefaultLEO(1)
	plan, has := FaultPlan(m, 46)
	if !has {
		t.Fatal("no faults extracted")
	}
	if len(plan.Faults) != 3 {
		t.Fatalf("faults = %+v, want 3 handovers in 46 s", plan.Faults)
	}
	for i, f := range plan.Faults {
		if f.Kind != chaos.KindBlackout {
			t.Fatalf("fault %d kind %q", i, f.Kind)
		}
		wantAt := 14.85 + 15*float64(i)
		if math.Abs(f.At-wantAt) > 1e-9 || math.Abs(f.Dur-0.15) > 1e-9 {
			t.Fatalf("fault %d = %+v, want at=%.2f dur=0.15", i, f, wantAt)
		}
	}
}

// TestValidateRejectsBadDelay checks the model boundary fails loudly on
// invalid prescribed delays.
func TestValidateRejectsBadDelay(t *testing.T) {
	tr := &Trace{Points: []TracePoint{{T: 0, Mbps: 10, ExtraDelay: math.NaN()}}}
	if err := Validate(tr, 1); err == nil {
		t.Fatal("NaN delay accepted")
	}
	s := sim.New(1)
	link := netem.NewLink(s, 10, 1<<20, 0.01)
	if err := ApplySim(s, link, tr, 1); err == nil {
		t.Fatal("ApplySim accepted NaN delay")
	}
}

// TestApplySimDrivesLink replays a trace on a sim link and checks the
// hardened setters applied the schedule: capacity follows the trace
// (with the floor clamp on the fade) and delay = base + extra.
func TestApplySimDrivesLink(t *testing.T) {
	tr := &Trace{Step: 0.1, Loop: false, Points: []TracePoint{
		{T: 0, Mbps: 10},
		{T: 1, Mbps: 0, ExtraDelay: 0.020}, // fade: clamps to floor
		{T: 2, Mbps: 40},
	}}
	s := sim.New(1)
	link := netem.NewLink(s, 99, 1<<20, 0.015)
	if err := ApplySim(s, link, tr, 3); err != nil {
		t.Fatal(err)
	}
	type probe struct{ rate, delay float64 }
	var at05, at15, at25 probe
	s.At(0.5, func() { at05 = probe{link.Rate, link.PropDelay} })
	s.At(1.5, func() { at15 = probe{link.Rate, link.PropDelay} })
	s.At(2.5, func() { at25 = probe{link.Rate, link.PropDelay} })
	s.Run(3)

	if at05.rate != 10*1e6/8 || at05.delay != 0.015 {
		t.Fatalf("t=0.5: %+v", at05)
	}
	if at15.rate != netem.MinRate || at15.delay != 0.035 {
		t.Fatalf("t=1.5: %+v, want floor rate %v and delay 0.035", at15, netem.MinRate)
	}
	if at25.rate != 40*1e6/8 || at25.delay != 0.015 {
		t.Fatalf("t=2.5: %+v", at25)
	}
}

// TestShimUpdatesMatchSteps checks the wire compilation mirrors the
// sim schedule: same times, floor-clamped rates, and no pure-outage
// rows (those belong to the fault plan).
func TestShimUpdatesMatchSteps(t *testing.T) {
	m := DefaultLEO(5)
	horizon := 31.0
	ups := ShimUpdates(m, horizon)
	if len(ups) == 0 {
		t.Fatal("no updates")
	}
	prev := -1.0
	for i, u := range ups {
		if u.At <= prev {
			t.Fatalf("update %d out of order: %+v", i, u)
		}
		prev = u.At
		if u.RateMbps < FloorMbps {
			t.Fatalf("update %d rate %v below floor (would alias to keep)", i, u.RateMbps)
		}
		if u.ExtraDelay < 0 {
			t.Fatalf("update %d negative extra delay %v (would alias to keep)", i, u.ExtraDelay)
		}
		if u.LossProb >= 0 {
			t.Fatalf("update %d touches loss: %+v", i, u)
		}
	}
}

// TestSpecBuild round-trips the spec forms.
func TestSpecBuild(t *testing.T) {
	if _, err := (Spec{Kind: "nope"}).Build(10); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := (Spec{Kind: "trace"}).Build(10); err == nil {
		t.Fatal("trace spec without path accepted")
	}
	m, err := Spec{Kind: "leo", Seed: 2, PeriodS: 10, OutageS: 0.2}.Build(60)
	if err != nil {
		t.Fatal(err)
	}
	leo, ok := m.(LEO)
	if !ok || leo.Period != 10 || leo.Outage != 0.2 {
		t.Fatalf("leo spec = %+v", m)
	}
	tr, err := Spec{Kind: "trace", Path: "testdata/cellular_golden.csv", Interp: "linear"}.Build(60)
	if err != nil {
		t.Fatal(err)
	}
	if tr.(*Trace).Mode != Linear {
		t.Fatal("interp not applied")
	}
	for _, kind := range []string{"lte", "5g"} {
		if _, err := ByName(kind, 3, 30); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
	}
}
