package pathmodel

import (
	"math"
	"math/rand"
)

// Bundled synthetic trace generators. Both emit an ordinary Trace —
// the same object the file parser produces — so generated and captured
// channels replay through identical machinery. Generation is
// deterministic in (seed, dur): the figures cite the seed and the
// tables reproduce bitwise.

// genStep is the generators' sample spacing, matching the 100 ms
// scheduler-report granularity of the usual cellular trace corpora.
const genStep = 0.1

// GenLTE synthesizes an LTE downlink capacity trace: a bounded
// geometric random walk around ~25 Mbps (per-user eNodeB scheduler
// share swinging on sub-second timescales) punctuated by occasional
// deep fades to ~1 Mbps lasting a few hundred milliseconds, during
// which the radio buffer adds tens of milliseconds of extra one-way
// delay.
func GenLTE(seed int64, dur float64) *Trace {
	rng := rand.New(rand.NewSource(seed))
	const (
		mean     = 25.0
		sigma    = 0.22 // per-step lognormal volatility
		minMbps  = 2.0
		maxMbps  = 55.0
		fadeProb = 0.008 // per-step chance a deep fade begins
	)
	tr := &Trace{Label: "lte", Loop: true, Step: genStep}
	mbps := mean
	fadeLeft := 0
	for t := 0.0; t <= dur; t += genStep {
		if fadeLeft > 0 {
			fadeLeft--
			fadeMbps := 0.6 + 1.4*rng.Float64()
			delay := 0.020 + 0.060*rng.Float64()
			tr.Points = append(tr.Points, TracePoint{T: t, Mbps: fadeMbps, ExtraDelay: delay})
			continue
		}
		if rng.Float64() < fadeProb {
			fadeLeft = 3 + rng.Intn(8) // 0.3–1.0 s
		}
		step := math.Exp(sigma * rng.NormFloat64())
		// Mean-revert gently so the walk orbits the operating point.
		mbps = mbps*step + 0.05*(mean-mbps)
		if mbps < minMbps {
			mbps = minMbps
		}
		if mbps > maxMbps {
			mbps = maxMbps
		}
		tr.Points = append(tr.Points, TracePoint{T: t, Mbps: mbps})
	}
	return tr
}

// Gen5G synthesizes a 5G mmWave-like trace: a two-state line-of-sight
// channel. In LoS the capacity random-walks in the 120–250 Mbps band;
// blockage (NLoS) events cut it to 5–30 Mbps with a ~15 ms delay
// penalty and clear after a geometric number of steps. The blockage
// process is the channel's defining feature — capacity swings of an
// order of magnitude in a few hundred milliseconds.
func Gen5G(seed int64, dur float64) *Trace {
	rng := rand.New(rand.NewSource(seed))
	const (
		losMean    = 190.0
		losSigma   = 0.12
		losMin     = 120.0
		losMax     = 250.0
		blockProb  = 0.015 // per-step chance LoS -> NLoS
		unblockPr  = 0.12  // per-step chance NLoS -> LoS
		nlosSigma  = 0.30
		nlosMin    = 5.0
		nlosMax    = 30.0
		nlosDelay  = 0.015
	)
	tr := &Trace{Label: "5g", Loop: true, Step: genStep}
	mbps := losMean
	blocked := false
	for t := 0.0; t <= dur; t += genStep {
		if blocked {
			if rng.Float64() < unblockPr {
				blocked = false
				mbps = losMin + (losMax-losMin)*rng.Float64()
			}
		} else if rng.Float64() < blockProb {
			blocked = true
			mbps = nlosMin + (nlosMax-nlosMin)*rng.Float64()
		}
		if blocked {
			mbps *= math.Exp(nlosSigma * rng.NormFloat64())
			if mbps < nlosMin {
				mbps = nlosMin
			}
			if mbps > nlosMax {
				mbps = nlosMax
			}
			tr.Points = append(tr.Points, TracePoint{T: t, Mbps: mbps, ExtraDelay: nlosDelay})
			continue
		}
		mbps = mbps*math.Exp(losSigma*rng.NormFloat64()) + 0.05*(losMean-mbps)
		if mbps < losMin {
			mbps = losMin
		}
		if mbps > losMax {
			mbps = losMax
		}
		tr.Points = append(tr.Points, TracePoint{T: t, Mbps: mbps})
	}
	return tr
}
