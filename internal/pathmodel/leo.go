package pathmodel

import "math"

// LEO models a low-earth-orbit satellite path: the terminal tracks one
// satellite per pass, the satellite's slant range sweeps the extra
// one-way delay down to mid-pass and back up, each pass serves a
// different (deterministically drawn) per-satellite capacity, and
// every handover between passes is a micro-blackout — the paper-world
// event the survival machinery must ride out.
//
// StateAt is a pure function of t: per-pass parameters derive from a
// splitmix64 hash of the pass index, not from sequential RNG state, so
// sampling order cannot change the channel.
type LEO struct {
	Period     float64 // seconds between handovers (default 15)
	Outage     float64 // handover micro-blackout duration (default 0.15)
	Mbps       float64 // mean per-satellite capacity (default 120)
	MbpsJitter float64 // per-pass capacity spread as a fraction (default 0.35)
	BaseExtra  float64 // extra one-way delay at mid-pass, seconds (default 0.002)
	SwingExtra float64 // additional delay at the pass edges (default 0.008)
	Step       float64 // sampling interval (default 0.05; must divide Outage)
	Seed       int64   // per-pass parameter stream
}

// DefaultLEO is the standard constellation used by the satellite
// figure: 15 s passes, 150 ms handover blackouts, ~120 Mbps.
func DefaultLEO(seed int64) LEO { return LEO{Seed: seed} }

func (m LEO) withDefaults() LEO {
	if m.Period <= 0 {
		m.Period = 15
	}
	if m.Outage <= 0 {
		m.Outage = 0.15
	}
	if m.Mbps <= 0 {
		m.Mbps = 120
	}
	if m.MbpsJitter <= 0 {
		m.MbpsJitter = 0.35
	}
	if m.BaseExtra <= 0 {
		m.BaseExtra = 0.002
	}
	if m.SwingExtra <= 0 {
		m.SwingExtra = 0.008
	}
	if m.Step <= 0 {
		m.Step = 0.05
	}
	return m
}

// Name identifies the model in tables and logs.
func (m LEO) Name() string { return "leo" }

// Interval returns the sampling resolution.
func (m LEO) Interval() float64 { return m.withDefaults().Step }

// delayQuantum keeps the delay arc a staircase of ~0.25 ms treads so
// the step schedule stays compact (a few dozen steps per pass instead
// of one per sample).
const delayQuantum = 0.00025

// StateAt returns the constellation's prescription at t.
func (m LEO) StateAt(t float64) State {
	m = m.withDefaults()
	if t < 0 {
		t = 0
	}
	pass := math.Floor(t / m.Period)
	phase := t/m.Period - pass // [0, 1) across the pass

	// Handover: the tail of each pass is a dead path.
	if phase >= 1-m.Outage/m.Period {
		return State{Mbps: FloorMbps, Down: true}
	}

	// Per-pass capacity: the next satellite is a fresh draw.
	h := splitmix64(uint64(m.Seed)*0x9e3779b97f4a7c15 + uint64(int64(pass)) + 0x51ed2701)
	mbps := m.Mbps * (1 + m.MbpsJitter*(2*unit(h)-1))

	// Slant-range delay arc: max at the pass edges, min mid-pass,
	// quantized so consecutive samples dedup.
	extra := m.BaseExtra + m.SwingExtra*2*math.Abs(phase-0.5)
	extra = math.Round(extra/delayQuantum) * delayQuantum
	return State{Mbps: mbps, ExtraDelay: extra}
}
