package pathmodel

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Interp selects how a trace's capacity and delay are read between
// sample points.
type Interp int

const (
	// Hold keeps each row's values until the next row (step function).
	Hold Interp = iota
	// Linear interpolates between neighboring rows; the applied
	// schedule is still a staircase at the trace's Step resolution,
	// identical in both worlds.
	Linear
)

// TracePoint is one row of a capacity trace.
type TracePoint struct {
	T          float64 // seconds from trace start, strictly increasing
	Mbps       float64 // capacity
	ExtraDelay float64 // extra one-way delay, seconds
}

// Trace is a trace-driven path model: capacity (and optionally extra
// one-way delay) over time, replayed from parsed rows or a bundled
// generator. Past the last row the trace loops by default (Loop),
// otherwise it holds the final values.
type Trace struct {
	Label  string
	Points []TracePoint
	Mode   Interp
	Loop   bool
	// Step is the application resolution in seconds (default 0.1):
	// Steps samples StateAt on this grid, so finer traces replay
	// faithfully and Linear mode becomes a Step-resolution staircase.
	Step float64
}

// Name identifies the trace in figure tables and logs.
func (tr *Trace) Name() string {
	if tr.Label != "" {
		return "trace:" + tr.Label
	}
	return "trace"
}

// Interval returns the application resolution.
func (tr *Trace) Interval() float64 {
	if tr.Step <= 0 {
		return 0.1
	}
	return tr.Step
}

// Duration returns the time of the last row.
func (tr *Trace) Duration() float64 {
	if len(tr.Points) == 0 {
		return 0
	}
	return tr.Points[len(tr.Points)-1].T
}

// StateAt returns the trace's prescription at t: the covering row in
// Hold mode or the interpolation of the neighboring rows in Linear
// mode, after loop/hold extension past the end. Traces never declare
// outages; a zero-capacity fade clamps to the netem floor instead.
func (tr *Trace) StateAt(t float64) State {
	n := len(tr.Points)
	if n == 0 {
		return State{Mbps: FloorMbps}
	}
	end := tr.Duration()
	if t > end {
		if tr.Loop && end > 0 {
			t = math.Mod(t, end)
		} else {
			t = end
		}
	}
	if t < 0 {
		t = 0
	}
	// i is the last row with T <= t (t below the first row reads row 0).
	i := sort.Search(n, func(k int) bool { return tr.Points[k].T > t }) - 1
	if i < 0 {
		i = 0
	}
	p := tr.Points[i]
	if tr.Mode == Linear && i+1 < n && tr.Points[i+1].T > p.T && t > p.T {
		q := tr.Points[i+1]
		f := (t - p.T) / (q.T - p.T)
		return State{
			Mbps:       p.Mbps + f*(q.Mbps-p.Mbps),
			ExtraDelay: p.ExtraDelay + f*(q.ExtraDelay-p.ExtraDelay),
		}
	}
	return State{Mbps: p.Mbps, ExtraDelay: p.ExtraDelay}
}

// Trace-parser limits. Violations are parse errors, never panics — the
// parser is fuzzed against arbitrary input.
const (
	maxTraceRows    = 1 << 20
	maxTraceLineLen = 1 << 16
)

// traceHeader is the only CSV header the strict parser accepts. The
// delay column holds milliseconds (the natural unit for trace files);
// TracePoint stores seconds.
const traceHeader = "t,mbps,delay_ms"

// ParseTrace parses a capacity trace, sniffing the format from the
// first non-blank byte: '{' selects JSONL, anything else CSV.
func ParseTrace(r io.Reader) (*Trace, error) {
	data, err := io.ReadAll(io.LimitReader(r, int64(maxTraceRows)*maxTraceLineLen))
	if err != nil {
		return nil, fmt.Errorf("pathmodel: reading trace: %w", err)
	}
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '{' {
		return ParseTraceJSONL(bytes.NewReader(data))
	}
	return ParseTraceCSV(bytes.NewReader(data))
}

// ParseTraceCSV parses the strict CSV trace format: an optional header
// line (exactly "t,mbps,delay_ms"), then one row per line with two or
// three comma-separated finite numbers — time in seconds (strictly
// increasing, starting at or after 0), capacity in Mbps (non-negative;
// zero is a legal fade that clamps to the netem floor on application),
// and optional extra one-way delay in milliseconds (non-negative).
// Blank lines and '#' comments are allowed; every malformed row is an
// error naming its line number.
func ParseTraceCSV(r io.Reader) (*Trace, error) {
	tr := &Trace{Loop: true}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), maxTraceLineLen)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if len(tr.Points) == 0 && text == traceHeader {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) != 2 && len(fields) != 3 {
			return nil, fmt.Errorf("pathmodel: trace line %d: %d columns, want 2 or 3 (%s)", line, len(fields), traceHeader)
		}
		var p TracePoint
		var err error
		if p.T, err = parseField(fields[0]); err != nil {
			return nil, fmt.Errorf("pathmodel: trace line %d: time: %v", line, err)
		}
		if p.Mbps, err = parseField(fields[1]); err != nil {
			return nil, fmt.Errorf("pathmodel: trace line %d: capacity: %v", line, err)
		}
		if len(fields) == 3 {
			ms, err := parseField(fields[2])
			if err != nil {
				return nil, fmt.Errorf("pathmodel: trace line %d: delay: %v", line, err)
			}
			p.ExtraDelay = ms / 1e3
		}
		if err := tr.appendRow(p, line); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("pathmodel: trace line %d: %w", line+1, err)
	}
	if len(tr.Points) == 0 {
		return nil, fmt.Errorf("pathmodel: trace has no rows")
	}
	return tr, nil
}

// jsonlRow is the strict JSONL row shape; unknown fields are rejected.
type jsonlRow struct {
	T       float64  `json:"t"`
	Mbps    *float64 `json:"mbps"`
	DelayMS float64  `json:"delay_ms"`
}

// ParseTraceJSONL parses the strict JSONL trace format: one JSON
// object per line with fields t (seconds), mbps, and optional delay_ms,
// validated under the same rules as the CSV format.
func ParseTraceJSONL(r io.Reader) (*Trace, error) {
	tr := &Trace{Loop: true}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), maxTraceLineLen)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		dec := json.NewDecoder(strings.NewReader(text))
		dec.DisallowUnknownFields()
		var row jsonlRow
		if err := dec.Decode(&row); err != nil {
			return nil, fmt.Errorf("pathmodel: trace line %d: %v", line, err)
		}
		if dec.More() {
			return nil, fmt.Errorf("pathmodel: trace line %d: trailing data after object", line)
		}
		if row.Mbps == nil {
			return nil, fmt.Errorf("pathmodel: trace line %d: missing mbps", line)
		}
		p := TracePoint{T: row.T, Mbps: *row.Mbps, ExtraDelay: row.DelayMS / 1e3}
		if err := tr.appendRow(p, line); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("pathmodel: trace line %d: %w", line+1, err)
	}
	if len(tr.Points) == 0 {
		return nil, fmt.Errorf("pathmodel: trace has no rows")
	}
	return tr, nil
}

// parseField parses one numeric CSV field, rejecting non-finite values.
func parseField(s string) (float64, error) {
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", strings.TrimSpace(s))
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("non-finite value %v", v)
	}
	return v, nil
}

// appendRow validates one parsed row against the strict-format rules
// shared by both parsers and appends it.
func (tr *Trace) appendRow(p TracePoint, line int) error {
	switch {
	case math.IsNaN(p.T) || math.IsInf(p.T, 0) || p.T < 0:
		return fmt.Errorf("pathmodel: trace line %d: invalid time %v", line, p.T)
	case math.IsNaN(p.Mbps) || math.IsInf(p.Mbps, 0) || p.Mbps < 0:
		return fmt.Errorf("pathmodel: trace line %d: invalid capacity %v Mbps", line, p.Mbps)
	case math.IsNaN(p.ExtraDelay) || math.IsInf(p.ExtraDelay, 0) || p.ExtraDelay < 0:
		return fmt.Errorf("pathmodel: trace line %d: invalid delay %v", line, p.ExtraDelay)
	case len(tr.Points) > 0 && p.T <= tr.Points[len(tr.Points)-1].T:
		return fmt.Errorf("pathmodel: trace line %d: time %v not increasing (previous %v)",
			line, p.T, tr.Points[len(tr.Points)-1].T)
	case len(tr.Points) >= maxTraceRows:
		return fmt.Errorf("pathmodel: trace exceeds %d rows", maxTraceRows)
	}
	tr.Points = append(tr.Points, p)
	return nil
}
