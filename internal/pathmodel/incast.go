package pathmodel

import (
	"pccproteus/internal/netem"
	"pccproteus/internal/sim"
)

// Incast describes the datacenter incast scenario: FanIn synchronized
// senders (a partition-aggregate response wave) firing into one
// shallow-buffered top-of-rack port. Unlike the time-varying models,
// the path itself is static — the stress is the synchronized workload
// against a queue of only BufPkts packets — so Incast is a scenario
// descriptor the experiment and campaign layers build topologies from,
// not a Model.
type Incast struct {
	FanIn   int     // synchronized senders (default 32)
	Mbps    float64 // bottleneck port speed (default 1000)
	RTT     float64 // base round-trip, seconds (default 0.0005)
	BufPkts int     // queue depth in MTU packets — shallow by design (default 64)
	Bytes   int64   // per-sender response size (default 256 KiB)
}

// WithDefaults fills unset fields with the standard scenario.
func (ic Incast) WithDefaults() Incast {
	if ic.FanIn <= 0 {
		ic.FanIn = 32
	}
	if ic.Mbps <= 0 {
		ic.Mbps = 1000
	}
	if ic.RTT <= 0 {
		ic.RTT = 0.0005
	}
	if ic.BufPkts <= 0 {
		ic.BufPkts = 64
	}
	if ic.Bytes <= 0 {
		ic.Bytes = 256 << 10
	}
	return ic
}

// Build constructs the shared bottleneck and its path: one link whose
// queue holds BufPkts full packets, with the propagation delay split
// evenly between the forward and ack directions.
func (ic Incast) Build(s *sim.Sim) *netem.Path {
	ic = ic.WithDefaults()
	link := netem.NewLink(s, ic.Mbps, ic.BufPkts*netem.MTU, ic.RTT/2)
	return &netem.Path{Link: link, AckDelay: ic.RTT / 2}
}
