// Package pathmodel is the scenario-model subsystem: composable
// time-varying path models — trace-driven cellular channels (with
// bundled synthetic LTE and 5G generators), a LEO-satellite handover
// model, and a datacenter incast descriptor — that drive netem link
// stages identically in the discrete-event simulator and on the real
// UDP wire shim.
//
// A Model is a pure function of time: StateAt(t) returns the
// prescribed capacity, extra one-way delay, and outage flag at t, with
// no internal mutation, so both appliers derive the path's condition
// from the same arithmetic. Steps samples that function at the model's
// native interval and collapses consecutive identical states into a
// deduplicated step schedule; ApplySim replays the schedule as sim
// events through the hardened netem boundary (Link.SetRateMbps's
// documented capacity floor, Link.SetPropDelay's delay validation),
// and ShimUpdates compiles the identical schedule into wire.ShimUpdate
// records for the loopback shim. Outage (Down) windows are not applied
// directly: FaultPlan extracts them as chaos blackout faults so they
// ride the existing cross-world chaos executors and compose with any
// user-supplied fault plan by fault-list concatenation.
package pathmodel

import (
	"fmt"
	"math"

	"pccproteus/internal/chaos"
	"pccproteus/internal/netem"
	"pccproteus/internal/sim"
)

// State is the path condition a model prescribes at one instant.
type State struct {
	Mbps       float64 // bottleneck capacity
	ExtraDelay float64 // extra one-way forward delay, seconds
	Down       bool    // outage: the whole path is dead (handover, eclipse)
}

// Model is a deterministic time-varying path model. StateAt must be a
// pure function of t — appliers, validators, and invariant checkers
// all sample it independently and must see the same path.
type Model interface {
	Name() string
	// Interval is the model's native step resolution in seconds: the
	// sampling grid Steps enumerates on.
	Interval() float64
	StateAt(t float64) State
}

// Step is one entry of a model's deduplicated step schedule.
type Step struct {
	At    float64
	State State
}

// FloorMbps is netem's documented capacity floor expressed in Mbps;
// capacity samples below it (deep fades, degenerate traces) clamp here
// in both worlds so sim and wire apply the identical schedule.
const FloorMbps = netem.MinRate * 8 / 1e6

// ClampMbps applies the capacity floor to one sample: NaN and anything
// below FloorMbps become FloorMbps (mirroring netem.Link.SetRate).
func ClampMbps(mbps float64) float64 {
	if math.IsNaN(mbps) || mbps < FloorMbps {
		return FloorMbps
	}
	return mbps
}

// Steps samples the model on its native interval over [0, horizon] and
// returns the deduplicated step schedule: the state at t=0 plus one
// step per sample where the (floor-clamped) state differs from the
// previous sample.
func Steps(m Model, horizon float64) []Step {
	dt := m.Interval()
	if dt <= 0 {
		dt = 0.1
	}
	var out []Step
	for i := 0; ; i++ {
		t := float64(i) * dt
		if t > horizon {
			break
		}
		st := m.StateAt(t)
		st.Mbps = ClampMbps(st.Mbps)
		if i == 0 || st != out[len(out)-1].State {
			out = append(out, Step{At: t, State: st})
		}
	}
	return out
}

// Validate checks every step the model would apply over the horizon
// through the netem model boundary: NaN, infinite, or negative extra
// delays are rejected with an error (capacities need no check — the
// floor clamp handles degenerate samples by construction).
func Validate(m Model, horizon float64) error {
	for _, st := range Steps(m, horizon) {
		d := st.State.ExtraDelay
		if math.IsNaN(d) || math.IsInf(d, 0) || d < 0 {
			return fmt.Errorf("pathmodel: model %q prescribes invalid extra delay %v at t=%.3f",
				m.Name(), d, st.At)
		}
	}
	return nil
}

// ApplySim replays the model's capacity and delay schedule on a live
// simulation: one event per step, each re-deriving the link state
// through the hardened netem setters. The link's propagation delay at
// call time is taken as the base the model's extra delay adds to.
// Outage windows are not applied here — extract them with FaultPlan
// and apply through chaos.ApplySim so ack paths, survival accounting,
// and wire replay all behave exactly as chaos blackouts do.
func ApplySim(s *sim.Sim, link *netem.Link, m Model, horizon float64) error {
	if err := Validate(m, horizon); err != nil {
		return err
	}
	base := link.PropDelay
	apply := func(st State) {
		link.SetRateMbps(st.Mbps)
		// Validate guaranteed the delay; the hardened setter cannot
		// fail here, but keep the boundary honest anyway.
		if err := link.SetPropDelay(base + st.ExtraDelay); err != nil {
			panic(err)
		}
	}
	for _, step := range Steps(m, horizon) {
		st := step.State
		if step.At <= s.Now() {
			apply(st)
			continue
		}
		s.At(step.At, func() { apply(st) })
	}
	return nil
}

// FaultPlan extracts the model's outage windows over the horizon as a
// canonical chaos blackout plan, and reports whether there are any.
// Compose with a user fault plan by concatenating fault lists — the
// chaos model's StateAt already merges overlapping faults.
func FaultPlan(m Model, horizon float64) (chaos.Plan, bool) {
	var p chaos.Plan
	steps := Steps(m, horizon)
	downAt := math.NaN()
	for _, st := range steps {
		switch {
		case st.State.Down && math.IsNaN(downAt):
			downAt = st.At
		case !st.State.Down && !math.IsNaN(downAt):
			p.Faults = append(p.Faults, chaos.Fault{
				Kind: chaos.KindBlackout, At: downAt, Dur: st.At - downAt,
			})
			downAt = math.NaN()
		}
	}
	if !math.IsNaN(downAt) {
		p.Faults = append(p.Faults, chaos.Fault{
			Kind: chaos.KindBlackout, At: downAt, Dur: horizon - downAt,
		})
	}
	return p.Canonical(), len(p.Faults) > 0
}

// MeanMbps is the time-weighted mean capacity the model prescribes
// over [0, horizon], counting outage windows as zero capacity — the
// honest utilization/yield denominator for a time-varying bottleneck.
func MeanMbps(m Model, horizon float64) float64 {
	steps := Steps(m, horizon)
	if len(steps) == 0 || horizon <= 0 {
		return 0
	}
	sum := 0.0
	for i, st := range steps {
		end := horizon
		if i+1 < len(steps) {
			end = steps[i+1].At
		}
		if !st.State.Down {
			sum += st.State.Mbps * (end - st.At)
		}
	}
	return sum / horizon
}

// MergePlans concatenates two fault plans into one canonical plan,
// keeping the seed of the first non-zero-seeded input.
func MergePlans(a, b chaos.Plan) chaos.Plan {
	out := chaos.Plan{Seed: a.Seed}
	if out.Seed == 0 {
		out.Seed = b.Seed
	}
	out.Faults = append(append([]chaos.Fault(nil), a.Faults...), b.Faults...)
	return out.Canonical()
}

// splitmix64 is the per-index parameter hash the stochastic models use
// in place of sequential RNG state, keeping StateAt a pure function.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unit maps a splitmix64 output to [0, 1).
func unit(x uint64) float64 { return float64(x>>11) / (1 << 53) }
