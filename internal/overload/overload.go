// Package overload is the host-side analog of the paper's utility
// ordering: when the *machine* running the datapath — not the network
// path — is the bottleneck, scavenger traffic must yield first, just
// as Proteus-S yields on a congested link. It provides the pieces the
// engine wires together: a flow Class (primary vs scavenger), a
// brownout state machine (Normal → Brownout → Shed → Recover) driven
// by per-shard pressure signals, and a deterministic overload Plan the
// scenario harness replays, chaos-style.
//
// The package is pure policy: no sockets, no goroutines, no engine
// types. Detector.Update is a function of (time, signals) plus the
// detector's own small state, so the same arithmetic is unit-testable
// without a datapath and identical on every shard.
package overload

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Class orders flows by who yields first under host pressure. The
// zero value is primary, so an unclassified flow is never shed by
// accident — degradation must be opted into, exactly like running a
// scavenger controller is.
type Class uint8

const (
	// ClassPrimary flows are never paused, shed, or refused admission
	// while any scavenger remains — the engine touches them only at
	// the hard table cap, and then stalest-first among primaries.
	ClassPrimary Class = iota
	// ClassScavenger flows absorb all overload actions first: paused
	// and evicted under Shed, refused admission from Brownout on.
	ClassScavenger
)

func (c Class) String() string {
	if c == ClassScavenger {
		return "scavenger"
	}
	return "primary"
}

// scavengerProtos names the controllers that are scavengers by
// construction. Kept as an explicit set (plus the "-s" suffix
// convention) so classification stays in sync with the exp registry
// without importing it.
var scavengerProtos = map[string]bool{
	"proteus-s": true,
	"ledbat":    true,
	"ledbat-25": true,
	"bbr-s":     true,
}

// ClassOf classifies a protocol name: the known scavenger controllers
// (proteus-s, ledbat, ledbat-25, bbr-s) and anything following the
// "-s" scavenger-variant suffix convention are ClassScavenger;
// everything else — primaries, hybrids, unknowns — is ClassPrimary,
// the safe default.
func ClassOf(proto string) Class {
	p := strings.ToLower(strings.TrimSpace(proto))
	if scavengerProtos[p] || strings.HasSuffix(p, "-s") {
		return ClassScavenger
	}
	return ClassPrimary
}

// State is one stage of the brownout machine.
type State uint8

const (
	// StateNormal: no pressure; everything is admitted.
	StateNormal State = iota
	// StateBrownout: sustained pressure; new scavenger admissions are
	// refused (BUSY) but existing flows are untouched.
	StateBrownout
	// StateShed: acute pressure; existing scavenger flows are paused
	// (senders) or evicted with BUSY (receivers) until pressure falls.
	// Primary flows are never touched.
	StateShed
	// StateRecover: pressure has fallen; paused scavengers resume, but
	// new scavenger admissions stay refused until the state matures to
	// Normal, so a still-hammering flood cannot re-enter instantly.
	StateRecover
)

var stateNames = [...]string{"normal", "brownout", "shed", "recover"}

func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// AdmitScavenger reports whether a new scavenger flow may be admitted
// in this state. Primary admission is never gated on state (only on
// the hard table cap).
func (s State) AdmitScavenger() bool { return s == StateNormal }

// Shedding reports whether existing scavenger flows should be actively
// paused/evicted in this state.
func (s State) Shedding() bool { return s == StateShed }

// Severity orders states by how degraded they are (Normal < Recover <
// Brownout < Shed) — the numeric State values follow the machine's
// lifecycle, not its badness, so "worst shard" aggregation uses this.
func (s State) Severity() int {
	switch s {
	case StateRecover:
		return 1
	case StateBrownout:
		return 2
	case StateShed:
		return 3
	}
	return 0
}

// Signals is one shard's pressure snapshot, sampled once per event-
// loop pass. Each field is the engine's cheapest honest proxy for one
// exhaustion mode; Pressure folds them into a single scalar.
type Signals struct {
	// FlowOccupancy is live flows over the shard's table cap, 0..1.
	FlowOccupancy float64
	// TxBacklog is the fraction of the tx staging batch still unsent
	// after a flush pass — nonzero only when the socket can't drain.
	TxBacklog float64
	// RxSaturation is the recent fraction of socket reads that filled
	// every rx slot: 1.0 means the shard never catches up with arrival.
	RxSaturation float64
	// SendErrStreak counts consecutive tx flushes that hit
	// ENOBUFS/ENOMEM-class soft errors.
	SendErrStreak int
}

// Config tunes the detector. The zero value takes the defaults below.
type Config struct {
	// Brownout is the pressure at which Normal degrades. Default 0.85.
	Brownout float64
	// Shed is the pressure at which shedding starts. Default 0.95.
	Shed float64
	// Recover is the pressure below which an elevated state begins
	// recovery. Default 0.70 — the gap to Brownout is the hysteresis
	// band that stops the machine flapping at a threshold.
	Recover float64
	// RecoverHold is how long pressure must stay below Recover before
	// Recover matures to Normal (seconds). Default 1.0.
	RecoverHold float64
	// ErrStreak is the send-error streak treated as pressure 1.0;
	// shorter streaks contribute proportionally. Default 16.
	ErrStreak int
}

func (c Config) withDefaults() Config {
	if c.Brownout <= 0 {
		c.Brownout = 0.85
	}
	if c.Shed <= 0 {
		c.Shed = 0.95
	}
	if c.Recover <= 0 {
		c.Recover = 0.70
	}
	if c.RecoverHold <= 0 {
		c.RecoverHold = 1.0
	}
	if c.ErrStreak <= 0 {
		c.ErrStreak = 16
	}
	// Orderings the state machine depends on: Recover < Brownout ≤ Shed.
	if c.Shed < c.Brownout {
		c.Shed = c.Brownout
	}
	if c.Recover >= c.Brownout {
		c.Recover = c.Brownout * 0.8
	}
	return c
}

// Pressure folds one signal snapshot into a scalar in [0, 1]: the max
// over the normalized exhaustion modes. Max, not a weighted sum — any
// single exhausted resource is sufficient to take the host down, so
// averaging a full flow table against an idle socket would understate
// exactly the case that matters.
func (c Config) Pressure(sig Signals) float64 {
	c = c.withDefaults()
	p := math.Max(sig.FlowOccupancy, sig.TxBacklog)
	p = math.Max(p, sig.RxSaturation)
	p = math.Max(p, float64(sig.SendErrStreak)/float64(c.ErrStreak))
	return clamp01(p)
}

func clamp01(v float64) float64 {
	if v < 0 || math.IsNaN(v) {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Detector is one shard's brownout state machine. Not safe for
// concurrent use: it is owned by the shard goroutine, and anything
// cross-goroutine reads the engine's atomic mirror of State instead.
type Detector struct {
	cfg        Config
	state      State
	pressure   float64
	belowSince float64 // when pressure last fell below Recover
}

// NewDetector builds a detector with cfg (zero value = defaults).
func NewDetector(cfg Config) *Detector {
	return &Detector{cfg: cfg.withDefaults()}
}

// State returns the current state without updating.
func (d *Detector) State() State { return d.state }

// Pressure returns the last computed pressure scalar.
func (d *Detector) Pressure() float64 { return d.pressure }

// Update advances the machine with one signal snapshot at time now
// (seconds, any monotone clock) and returns the resulting state.
func (d *Detector) Update(now float64, sig Signals) State {
	p := d.cfg.Pressure(sig)
	d.pressure = p
	switch d.state {
	case StateNormal:
		if p >= d.cfg.Shed {
			d.state = StateShed
		} else if p >= d.cfg.Brownout {
			d.state = StateBrownout
		}
	case StateBrownout:
		if p >= d.cfg.Shed {
			d.state = StateShed
		} else if p < d.cfg.Recover {
			d.state = StateRecover
			d.belowSince = now
		}
	case StateShed:
		if p < d.cfg.Recover {
			d.state = StateRecover
			d.belowSince = now
		}
	case StateRecover:
		switch {
		case p >= d.cfg.Shed:
			d.state = StateShed
		case p >= d.cfg.Brownout:
			d.state = StateBrownout
		case p >= d.cfg.Recover:
			// Pressure climbed back into the hysteresis band: restart
			// the hold. Recovery requires *sustained* calm.
			d.belowSince = now
		case now-d.belowSince >= d.cfg.RecoverHold:
			d.state = StateNormal
		}
	}
	return d.state
}

// Plan is a deterministic overload scenario: phases of synthetic host
// pressure the harness applies to a running engine, the overload
// analog of a chaos.Plan. Pure data; the engine harness interprets it.
type Plan struct {
	Seed   int64   `json:"seed,omitempty"`
	Phases []Phase `json:"phases"`
}

// PhaseKind names one overload scenario ingredient.
type PhaseKind string

const (
	// KindFlood admits Flows scavenger flows at At and stops (and
	// abandons) them at At+Dur — the flow-flood scenario.
	KindFlood PhaseKind = "flood"
	// KindAckStarve admits Flows scavenger flows aimed at a mute
	// endpoint that never acks — the slow-receiver starvation scenario.
	KindAckStarve PhaseKind = "ack-starve"
)

// Phase is one scheduled load segment, active on [At, At+Dur).
type Phase struct {
	Kind  PhaseKind `json:"kind"`
	At    float64   `json:"at"`
	Dur   float64   `json:"dur"`
	Flows int       `json:"flows"`
}

func (p Phase) String() string {
	return fmt.Sprintf("%s@%.1fs+%.1fs ×%d", p.Kind, p.At, p.Dur, p.Flows)
}

// String renders the plan for logs.
func (p Plan) String() string {
	if len(p.Phases) == 0 {
		return "no load"
	}
	parts := make([]string, len(p.Phases))
	for i, ph := range p.Phases {
		parts[i] = ph.String()
	}
	return strings.Join(parts, "; ")
}

// Canonical clamps, quantizes (milliseconds), and time-orders the plan
// — the same normal form discipline as chaos.Plan.Canonical, so plans
// embed cleanly in replay files. Unknown kinds and zero-flow phases
// are dropped; durations get a 1 ms floor.
func (p Plan) Canonical() Plan {
	out := Plan{Seed: p.Seed}
	for _, ph := range p.Phases {
		switch ph.Kind {
		case KindFlood, KindAckStarve:
		default:
			continue
		}
		if ph.Flows <= 0 {
			continue
		}
		ph.At = round3(math.Max(0, ph.At))
		ph.Dur = round3(math.Max(0.001, ph.Dur))
		out.Phases = append(out.Phases, ph)
	}
	sort.SliceStable(out.Phases, func(i, j int) bool {
		a, b := out.Phases[i], out.Phases[j]
		if a.At != b.At {
			return a.At < b.At
		}
		return a.Kind < b.Kind
	})
	return out
}

func round3(v float64) float64 { return math.Round(v*1000) / 1000 }
