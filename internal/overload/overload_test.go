package overload

import (
	"math"
	"testing"
)

func TestClassOf(t *testing.T) {
	cases := map[string]Class{
		"proteus-s":  ClassScavenger,
		"Proteus-S":  ClassScavenger,
		"ledbat":     ClassScavenger,
		"ledbat-25":  ClassScavenger,
		"bbr-s":      ClassScavenger,
		"copa-s":     ClassScavenger, // suffix convention
		"proteus-p":  ClassPrimary,
		"proteus-h":  ClassPrimary,
		"cubic":      ClassPrimary,
		"bbr":        ClassPrimary,
		"bbr2":       ClassPrimary,
		"vivace":     ClassPrimary,
		"fixed:20":   ClassPrimary,
		"":           ClassPrimary, // unknown defaults to primary
		"mystery-cc": ClassPrimary,
	}
	for proto, want := range cases {
		if got := ClassOf(proto); got != want {
			t.Errorf("ClassOf(%q) = %v, want %v", proto, got, want)
		}
	}
}

func TestPressureIsMaxOfSignals(t *testing.T) {
	cfg := Config{}.withDefaults()
	cases := []struct {
		sig  Signals
		want float64
	}{
		{Signals{}, 0},
		{Signals{FlowOccupancy: 0.5}, 0.5},
		{Signals{FlowOccupancy: 0.5, TxBacklog: 0.9}, 0.9},
		{Signals{RxSaturation: 0.97}, 0.97},
		{Signals{SendErrStreak: 8}, 0.5},  // 8/16
		{Signals{SendErrStreak: 32}, 1.0}, // clamped
		{Signals{FlowOccupancy: 7}, 1.0},  // clamped
		{Signals{FlowOccupancy: math.NaN()}, 0},
		{Signals{FlowOccupancy: -1}, 0},
	}
	for _, c := range cases {
		if got := cfg.Pressure(c.sig); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Pressure(%+v) = %v, want %v", c.sig, got, c.want)
		}
	}
}

func TestDetectorFullCycle(t *testing.T) {
	d := NewDetector(Config{})
	if d.State() != StateNormal {
		t.Fatalf("initial state %v", d.State())
	}
	// Calm traffic: stays Normal.
	if st := d.Update(0, Signals{FlowOccupancy: 0.3}); st != StateNormal {
		t.Fatalf("calm → %v", st)
	}
	// Sustained pressure above brownout but below shed.
	if st := d.Update(1, Signals{FlowOccupancy: 0.90}); st != StateBrownout {
		t.Fatalf("0.90 occupancy → %v, want brownout", st)
	}
	if d.State().AdmitScavenger() {
		t.Fatal("brownout must refuse new scavengers")
	}
	if d.State().Shedding() {
		t.Fatal("brownout must not shed")
	}
	// Acute pressure: shed.
	if st := d.Update(2, Signals{FlowOccupancy: 0.99}); st != StateShed {
		t.Fatalf("0.99 occupancy → %v, want shed", st)
	}
	if !d.State().Shedding() {
		t.Fatal("shed state must shed")
	}
	// Pressure falls below the recover threshold: recovery begins,
	// scavenger admission still closed.
	if st := d.Update(3, Signals{FlowOccupancy: 0.4}); st != StateRecover {
		t.Fatalf("post-shed calm → %v, want recover", st)
	}
	if d.State().AdmitScavenger() {
		t.Fatal("recover must still refuse new scavengers")
	}
	// Hold not yet elapsed: still recovering.
	if st := d.Update(3.5, Signals{FlowOccupancy: 0.4}); st != StateRecover {
		t.Fatalf("mid-hold → %v", st)
	}
	// Hold elapsed: normal, admission reopens.
	if st := d.Update(4.1, Signals{FlowOccupancy: 0.4}); st != StateNormal {
		t.Fatalf("post-hold → %v, want normal", st)
	}
	if !d.State().AdmitScavenger() {
		t.Fatal("normal must admit scavengers")
	}
}

func TestDetectorHysteresisBandRestartsHold(t *testing.T) {
	d := NewDetector(Config{})
	d.Update(0, Signals{FlowOccupancy: 0.99}) // shed
	d.Update(1, Signals{FlowOccupancy: 0.5})  // recover, belowSince=1
	// Pressure climbs back into the band (0.70..0.85): hold restarts.
	d.Update(1.5, Signals{FlowOccupancy: 0.75})
	if st := d.Update(2.2, Signals{FlowOccupancy: 0.5}); st != StateRecover {
		t.Fatalf("hold did not restart: %v", st)
	}
	// A full hold after the band excursion matures to Normal.
	if st := d.Update(3.3, Signals{FlowOccupancy: 0.5}); st != StateNormal {
		t.Fatalf("matured state %v, want normal", st)
	}
}

func TestDetectorRecoverReEscalates(t *testing.T) {
	d := NewDetector(Config{})
	d.Update(0, Signals{FlowOccupancy: 0.99})
	d.Update(1, Signals{FlowOccupancy: 0.5})
	if st := d.Update(1.2, Signals{FlowOccupancy: 0.99}); st != StateShed {
		t.Fatalf("recover under renewed flood → %v, want shed", st)
	}
	d.Update(2, Signals{FlowOccupancy: 0.5})
	if st := d.Update(2.2, Signals{FlowOccupancy: 0.90}); st != StateBrownout {
		t.Fatalf("recover under medium pressure → %v, want brownout", st)
	}
}

func TestDetectorErrStreakAloneSheds(t *testing.T) {
	// Buffer exhaustion with an empty flow table must still trip the
	// machine: ENOBUFS streaks are full-strength pressure.
	d := NewDetector(Config{ErrStreak: 8})
	if st := d.Update(0, Signals{FlowOccupancy: 0.1, SendErrStreak: 8}); st != StateShed {
		t.Fatalf("errstreak → %v, want shed", st)
	}
	if st := d.Update(1, Signals{FlowOccupancy: 0.1, SendErrStreak: 0}); st != StateRecover {
		t.Fatalf("streak cleared → %v, want recover", st)
	}
}

func TestConfigDefaultOrderings(t *testing.T) {
	// Degenerate configs are repaired so Recover < Brownout ≤ Shed.
	c := Config{Brownout: 0.9, Shed: 0.5, Recover: 0.95}.withDefaults()
	if c.Shed < c.Brownout {
		t.Fatalf("shed %v < brownout %v", c.Shed, c.Brownout)
	}
	if c.Recover >= c.Brownout {
		t.Fatalf("recover %v >= brownout %v", c.Recover, c.Brownout)
	}
}

func TestPlanCanonical(t *testing.T) {
	p := Plan{Phases: []Phase{
		{Kind: KindAckStarve, At: 5.0004, Dur: 0, Flows: 10},
		{Kind: KindFlood, At: -1, Dur: 2, Flows: 100},
		{Kind: PhaseKind("bogus"), At: 1, Dur: 1, Flows: 5},
		{Kind: KindFlood, At: 3, Dur: 1, Flows: 0}, // dropped: no flows
	}}
	c := p.Canonical()
	if len(c.Phases) != 2 {
		t.Fatalf("canonical kept %d phases, want 2: %v", len(c.Phases), c)
	}
	if c.Phases[0].Kind != KindFlood || c.Phases[0].At != 0 {
		t.Fatalf("order/clamp wrong: %v", c.Phases[0])
	}
	if c.Phases[1].At != 5.0 || c.Phases[1].Dur != 0.001 {
		t.Fatalf("quantize/floor wrong: %+v", c.Phases[1])
	}
	if got := c.String(); got == "" || got == "no load" {
		t.Fatalf("String = %q", got)
	}
	if (Plan{}).String() != "no load" {
		t.Fatal("empty plan String")
	}
}
