package sim

import "testing"

// TestPoolReusesEvents checks the free list actually recycles: a long
// run of schedule-execute cycles should settle on a handful of event
// allocations rather than one per event.
func TestPoolReusesEvents(t *testing.T) {
	s := New(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < 10000 {
			s.After(0.001, tick)
		}
	}
	s.After(0, tick)
	allocs := testing.AllocsPerRun(1, func() {
		s.Run(1e9)
	})
	if n != 10000 {
		t.Fatalf("ran %d ticks, want 10000", n)
	}
	// 10k events through the loop; without pooling this is ~10k allocs.
	// The Timer handles still allocate, so allow generous slack below
	// one-per-event for the events themselves.
	if allocs > 15000 {
		t.Fatalf("%v allocs for 10k recycled events", allocs)
	}
}

// TestStaleTimerStopCannotKillRecycledEvent is the safety property the
// generation counter exists for: a Timer whose event already fired must
// not cancel the unrelated event now occupying the same allocation.
func TestStaleTimerStopCannotKillRecycledEvent(t *testing.T) {
	s := New(1)
	var fired1, fired2 bool
	t1 := s.At(1, func() { fired1 = true })
	s.Run(2)
	if !fired1 {
		t.Fatal("first event did not fire")
	}
	// Reschedule: with pooling this reuses t1's event allocation.
	t2 := s.At(3, func() { fired2 = true })
	if t1.ev != t2.ev {
		t.Fatal("free list did not recycle the event allocation")
	}
	if t1.Stop() {
		t.Fatal("stale Stop reported success")
	}
	s.Run(4)
	if !fired2 {
		t.Fatal("stale Stop cancelled the recycled event")
	}
	if !t2.Stop() == false {
		t.Fatal("Stop after firing should report false")
	}
}

// TestStopStillCancelsLiveRecycledEvent checks a fresh Timer on a
// recycled event still cancels normally.
func TestStopStillCancelsLiveRecycledEvent(t *testing.T) {
	s := New(1)
	s.At(1, func() {})
	s.Run(2)
	fired := false
	t2 := s.At(3, func() { fired = true })
	if !t2.Stop() {
		t.Fatal("Stop on live recycled event failed")
	}
	s.Run(4)
	if fired {
		t.Fatal("stopped event fired anyway")
	}
}

// TestRecycleDuringCallbackRescheduling checks the hot path the pool is
// built for: a callback rescheduling itself reuses its own event and a
// timer captured across the reschedule stays inert.
func TestRecycleDuringCallbackRescheduling(t *testing.T) {
	s := New(1)
	var timers []*Timer
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < 100 {
			timers = append(timers, s.After(0.01, tick))
		}
	}
	s.After(0, tick)
	s.Run(1e9)
	if n != 100 {
		t.Fatalf("ran %d ticks, want 100", n)
	}
	for i, tm := range timers {
		if tm.Stop() {
			t.Fatalf("timer %d: Stop succeeded on a fired, recycled event", i)
		}
	}
}

// BenchmarkEventSchedule measures allocs/op of the schedule→execute
// cycle — the sim hot path that bounds campaign events/sec. With the
// free list the event itself is recycled; the remaining alloc is the
// *Timer handle.
func BenchmarkEventSchedule(b *testing.B) {
	s := New(1)
	b.ReportAllocs()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			s.After(0.001, tick)
		}
	}
	s.After(0, tick)
	b.ResetTimer()
	s.Run(1e18)
}
