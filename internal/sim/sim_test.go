package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.At(2.0, func() { got = append(got, 2) })
	s.At(1.0, func() { got = append(got, 1) })
	s.At(3.0, func() { got = append(got, 3) })
	s.Run(10)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if s.Now() != 10 {
		t.Fatalf("clock should advance to horizon, got %v", s.Now())
	}
}

func TestTieBreakIsInsertionOrder(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		s.At(5.0, func() { got = append(got, i) })
	}
	s.Run(6)
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break violated at %d: %v", i, got)
		}
	}
}

func TestAfterAndNow(t *testing.T) {
	s := New(1)
	var at float64
	s.After(1.5, func() {
		at = s.Now()
		s.After(0.25, func() { at = s.Now() })
	})
	s.Run(100)
	if at != 1.75 {
		t.Fatalf("nested After wrong time: %v", at)
	}
}

func TestTimerStop(t *testing.T) {
	s := New(1)
	fired := false
	tm := s.After(1, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop should report true for pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	s.Run(10)
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestStopHaltsLoop(t *testing.T) {
	s := New(1)
	n := 0
	s.At(1, func() { n++; s.Stop() })
	s.At(2, func() { n++ })
	s.Run(10)
	if n != 1 {
		t.Fatalf("Stop did not halt loop, n=%d", n)
	}
	// Run can resume afterwards.
	s.Run(10)
	if n != 2 {
		t.Fatalf("resume after Stop failed, n=%d", n)
	}
}

func TestHorizonLeavesEventsQueued(t *testing.T) {
	s := New(1)
	fired := false
	s.At(5, func() { fired = true })
	s.Run(4)
	if fired {
		t.Fatal("event beyond horizon fired")
	}
	if s.Now() != 4 {
		t.Fatalf("clock not at horizon: %v", s.Now())
	}
	s.Run(6)
	if !fired {
		t.Fatal("event not fired after horizon extended")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New(1)
	s.At(2, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in past should panic")
			}
		}()
		s.At(1, func() {})
	})
	s.Run(10)
}

func TestDeterministicRand(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Rand().Float64() != b.Rand().Float64() {
			t.Fatal("same seed must give same stream")
		}
	}
}

func TestPending(t *testing.T) {
	s := New(1)
	t1 := s.At(1, func() {})
	s.At(2, func() {})
	if s.Pending() != 2 {
		t.Fatalf("Pending=%d want 2", s.Pending())
	}
	t1.Stop()
	if s.Pending() != 1 {
		t.Fatalf("Pending=%d want 1 after stop", s.Pending())
	}
}

// Property: whatever random schedule of events is submitted, they execute
// in nondecreasing time order and the clock never moves backwards.
func TestQuickExecutionOrder(t *testing.T) {
	f := func(seed int64, raw []uint16) bool {
		s := New(seed)
		rng := rand.New(rand.NewSource(seed))
		times := make([]float64, len(raw))
		for i, r := range raw {
			times[i] = float64(r) / 97.0
			_ = rng
		}
		var fired []float64
		for _, tm := range times {
			tm := tm
			s.At(tm, func() { fired = append(fired, s.Now()) })
		}
		s.Run(1e9)
		if len(fired) != len(times) {
			return false
		}
		if !sort.Float64sAreSorted(fired) {
			return false
		}
		sorted := append([]float64(nil), times...)
		sort.Float64s(sorted)
		for i := range sorted {
			if sorted[i] != fired[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: events scheduled from within events still respect ordering.
func TestQuickNestedScheduling(t *testing.T) {
	f := func(offsets []uint8) bool {
		s := New(7)
		last := -1.0
		ok := true
		var spawn func(depth int)
		spawn = func(depth int) {
			if s.Now() < last {
				ok = false
			}
			last = s.Now()
			if depth < len(offsets) {
				s.After(float64(offsets[depth])/13.0, func() { spawn(depth + 1) })
			}
		}
		s.At(0, func() { spawn(0) })
		s.Run(1e9)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
