package sim

import "testing"

func TestTimerStopAfterFire(t *testing.T) {
	s := New(1)
	fired := 0
	tm := s.At(1, func() { fired++ })
	s.Run(2)
	if fired != 1 {
		t.Fatalf("timer fired %d times, want 1", fired)
	}
	if tm.Stop() {
		t.Error("Stop after fire reported the event as still pending")
	}
}

func TestTimerDoubleStop(t *testing.T) {
	s := New(1)
	tm := s.At(1, func() { t.Error("stopped timer fired") })
	if !tm.Stop() {
		t.Error("first Stop reported false for a pending timer")
	}
	if tm.Stop() {
		t.Error("second Stop reported true")
	}
	s.Run(2)
	if got := s.Pending(); got != 0 {
		t.Errorf("Pending after run = %d, want 0", got)
	}
}

// A timer scheduled at the current instant from within an event can be
// stopped before the loop reaches it: same timestamp, later sequence.
func TestTimerStopAtCurrentInstant(t *testing.T) {
	s := New(1)
	ran := false
	s.At(1, func() {
		tm := s.At(s.Now(), func() { ran = true })
		if !tm.Stop() {
			t.Error("Stop of a same-instant timer reported false")
		}
	})
	s.Run(2)
	if ran {
		t.Error("same-instant timer ran despite Stop")
	}
}

func TestTimerStopNil(t *testing.T) {
	var tm *Timer
	if tm.Stop() {
		t.Error("Stop on nil Timer reported true")
	}
}
