// Package sim provides a deterministic discrete-event simulation engine.
//
// All experiments in this repository run in virtual time on top of this
// engine: a binary-heap event queue ordered by (time, insertion sequence)
// so that simultaneous events execute in a stable, reproducible order, and
// a single seeded random source per simulation so every run is
// bit-for-bit repeatable.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"

	"pccproteus/internal/trace"
)

// Event is a scheduled callback. Events are ordered by time; ties break on
// the order in which they were scheduled.
//
// Event objects are pooled: once executed (or popped dead) they return
// to a free list and are reused by later At calls. gen counts reuses so
// an outstanding Timer can tell "my event" from "a stranger now living
// in the same allocation".
type event struct {
	at    float64
	seq   uint64
	gen   uint64
	fn    func()
	index int
	dead  bool
}

// Timer is a handle to a scheduled event that can be cancelled.
type Timer struct {
	ev  *event
	gen uint64
}

// Stop cancels the timer. It is safe to call on an already-fired or
// already-stopped timer — including one whose event object has since
// been recycled for an unrelated callback; it reports whether the event
// was still pending.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.gen != t.gen || t.ev.dead {
		return false
	}
	t.ev.dead = true
	t.ev.fn = nil
	return true
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Sim is a discrete-event simulator. The zero value is not usable; create
// one with New.
type Sim struct {
	now     float64
	seq     uint64
	events  eventHeap
	free    []*event
	rng     *rand.Rand
	running bool
	stopped bool
	rec     *trace.Recorder
}

// freeCap bounds the event free list so a one-off scheduling burst does
// not pin memory for the rest of the simulation.
const freeCap = 1024

// New returns a simulator with its clock at zero and randomness derived
// from seed.
func New(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time in seconds.
func (s *Sim) Now() float64 { return s.now }

// Rand returns the simulation's random source. All stochastic models
// (loss, jitter, workload arrivals) must draw from it so runs stay
// deterministic.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// SetTrace attaches a flight recorder. Components built on this
// simulation (links, senders, controllers) pick it up through Trace
// and FlowTracer; with no recorder attached they run at full speed
// with zero telemetry overhead. Attach before starting flows: senders
// bind their tracer at Start.
func (s *Sim) SetTrace(r *trace.Recorder) { s.rec = r }

// Trace returns the attached flight recorder, or nil when disabled.
func (s *Sim) Trace() *trace.Recorder { return s.rec }

// FlowTracer returns the per-flow emission handle for flow id
// (trace.NopTracer when no recorder is attached).
func (s *Sim) FlowTracer(flow int) trace.Tracer { return s.rec.Tracer(flow) }

// At schedules fn to run at absolute time t. Scheduling in the past
// panics: it would silently corrupt causality.
func (s *Sim) At(t float64, fn func()) *Timer {
	if t < s.now {
		panic(fmt.Sprintf("sim: schedule at %.9f before now %.9f", t, s.now))
	}
	var ev *event
	if n := len(s.free); n > 0 {
		ev = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		ev.at, ev.seq, ev.fn, ev.dead = t, s.seq, fn, false
	} else {
		ev = &event{at: t, seq: s.seq, fn: fn}
	}
	s.seq++
	heap.Push(&s.events, ev)
	return &Timer{ev: ev, gen: ev.gen}
}

// After schedules fn to run d seconds from now.
func (s *Sim) After(d float64, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Stop halts the event loop after the currently executing event returns.
func (s *Sim) Stop() { s.stopped = true }

// Pending reports the number of live events in the queue.
func (s *Sim) Pending() int {
	n := 0
	for _, ev := range s.events {
		if !ev.dead {
			n++
		}
	}
	return n
}

// Run executes events in order until the queue is empty, Stop is called,
// or the clock would pass until. The clock is left at min(until, time of
// last executed event); if the horizon is reached, remaining events stay
// queued and the clock is set to until.
func (s *Sim) Run(until float64) {
	if s.running {
		panic("sim: Run called re-entrantly")
	}
	s.running = true
	s.stopped = false
	defer func() { s.running = false }()
	for len(s.events) > 0 && !s.stopped {
		ev := s.events[0]
		if ev.dead {
			heap.Pop(&s.events)
			s.recycle(ev)
			continue
		}
		if ev.at > until {
			s.now = until
			return
		}
		heap.Pop(&s.events)
		s.now = ev.at
		fn := ev.fn
		ev.fn = nil
		ev.dead = true
		// Recycle before running fn so a callback that immediately
		// reschedules (pacing, timer restart) reuses this allocation.
		s.recycle(ev)
		fn()
	}
	if s.now < until {
		s.now = until
	}
}

// recycle returns a popped event to the free list. Bumping gen first
// invalidates any Timer still holding this event, so a stale Stop
// cannot cancel whatever the allocation is reused for next.
func (s *Sim) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	if len(s.free) < freeCap {
		s.free = append(s.free, ev)
	}
}
