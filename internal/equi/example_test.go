package equi_test

import (
	"fmt"

	"pccproteus/internal/equi"
)

func ExampleHybridPrediction() {
	// Two Proteus-H senders with thresholds 30 and 40 Mbps on a 65 Mbps
	// bottleneck: the low-threshold sender caps at its threshold and the
	// other takes the rest (§4.4).
	x1, x2 := equi.HybridPrediction(30, 40, 65)
	fmt.Printf("%.0f %.0f\n", x1, x2)
	// Output: 30 35
}

func ExampleParams_Equilibrium() {
	p := equi.Default(100)
	rates, ok := p.Equilibrium(make([]equi.SenderKind, 4), nil)
	spread := rates[0] - rates[3]
	if spread < 0 {
		spread = -spread
	}
	fmt.Printf("converged=%v fair=%v\n", ok, spread < 0.01*rates[0])
	// Output: converged=true fair=true
}
