package equi

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func allKind(k SenderKind, n int) []SenderKind {
	out := make([]SenderKind, n)
	for i := range out {
		out[i] = k
	}
	return out
}

func spread(xs []float64) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	return hi - lo
}

func sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Theorem 4.1: n Proteus-P senders converge to equal rates with the
// link fully utilized.
func TestTheorem41PrimaryFairness(t *testing.T) {
	p := Default(100)
	for _, n := range []int{2, 3, 5, 10} {
		x, ok := p.Equilibrium(allKind(Primary, n), make([]float64, n))
		if !ok {
			t.Fatalf("n=%d did not converge", n)
		}
		if spread(x)/x[0] > 1e-3 {
			t.Fatalf("n=%d unfair equilibrium: %v", n, x)
		}
		// "Full" utilization in the smoothed game means the +ε probe
		// rides the capacity boundary: S* ≈ C/(1+ε).
		if s := sum(x); s < p.C*0.95 || s > p.C*1.01 {
			t.Fatalf("n=%d utilization %v (C=%v)", n, s, p.C)
		}
	}
}

// Theorem 4.2: the same for Proteus-S senders.
func TestTheorem42ScavengerFairness(t *testing.T) {
	p := Default(100)
	for _, n := range []int{2, 4, 8} {
		x, ok := p.Equilibrium(allKind(Scavenger, n), make([]float64, n))
		if !ok {
			t.Fatalf("n=%d did not converge", n)
		}
		if spread(x)/x[0] > 1e-3 {
			t.Fatalf("n=%d unfair: %v", n, x)
		}
		// Scavengers sit a little further below capacity: the two-sided
		// |S−C| penalty makes boundary-hugging costly on both probes.
		if s := sum(x); s < p.C*0.93 || s > p.C*1.01 {
			t.Fatalf("n=%d utilization %v", n, s)
		}
	}
}

// Mixed P+S equilibrium of the smoothed game exists and is unique
// (independent of the starting point). Note the static model does not by
// itself produce yielding — the paper explicitly leaves the formal
// yielding analysis to future work; yielding emerges from the dynamics
// (and is measured by the exp harness), not from this equilibrium.
func TestMixedEquilibriumUnique(t *testing.T) {
	p := Default(100)
	kinds := []SenderKind{Primary, Scavenger}
	rng := rand.New(rand.NewSource(1))
	var ref []float64
	for trial := 0; trial < 8; trial++ {
		start := []float64{rng.Float64() * 150, rng.Float64() * 150}
		x, ok := p.Equilibrium(kinds, start)
		if !ok {
			t.Fatalf("trial %d did not converge from %v", trial, start)
		}
		if ref == nil {
			ref = x
		} else {
			for i := range x {
				if math.Abs(x[i]-ref[i]) > 1e-3*p.C {
					t.Fatalf("non-unique equilibrium: %v vs %v", x, ref)
				}
			}
		}
	}
	if s := ref[0] + ref[1]; s < p.C*0.95 {
		t.Fatalf("mixed equilibrium under-utilizes: %v", s)
	}
}

// In the Appendix-A game (the one the proofs analyze, with one-sided
// penalties in the S ≥ C regime), the scavenger's strictly larger
// penalty coefficient gives it a strictly smaller equilibrium rate, and
// more so as d grows.
func TestAppendixAScavengerTakesLess(t *testing.T) {
	prev := math.Inf(1)
	for _, d := range []float64{500, 1500, 5000, 15000} {
		p := Default(100)
		p.D = d
		x, ok := p.EquilibriumAppendixA([]SenderKind{Primary, Scavenger}, nil)
		if !ok {
			t.Fatalf("d=%v did not converge", d)
		}
		if x[1] >= x[0] {
			t.Fatalf("d=%v: scavenger %.2f should be below primary %.2f", d, x[1], x[0])
		}
		share := x[1] / (x[0] + x[1])
		if share >= prev {
			t.Fatalf("share %.4f at d=%v not below %.4f", share, d, prev)
		}
		prev = share
	}
}

func TestBestResponseUnderCapacityPushesToCapacity(t *testing.T) {
	p := Default(100)
	// With others at 20 and capacity 100, the smoothed best response
	// places the +ε probe right at the kink: x ≈ 80/(1+ε).
	br := p.bestResponse(Primary, 20, p.utility)
	want := 80 / (1 + p.Eps)
	if math.Abs(br-want) > 1.5 {
		t.Fatalf("best response %v, want ≈%v", br, want)
	}
}

func TestHybridPredictionPiecewise(t *testing.T) {
	cases := []struct{ r1, r2, c, want1, want2 float64 }{
		{30, 40, 50, 25, 25},  // C < 2·r1: fair share
		{30, 40, 65, 30, 35},  // 2·r1 ≤ C < r1+r2: low-threshold yields at r1
		{30, 40, 75, 35, 40},  // r1+r2 ≤ C < 2·r2: high-threshold capped at r2
		{30, 40, 100, 50, 50}, // C ≥ 2·r2: fair share again
		{40, 30, 65, 30, 35},  // argument order must not matter
	}
	for _, c := range cases {
		x1, x2 := HybridPrediction(c.r1, c.r2, c.c)
		if math.Abs(x1-c.want1) > 1e-12 || math.Abs(x2-c.want2) > 1e-12 {
			t.Fatalf("HybridPrediction(%v,%v,%v) = (%v,%v) want (%v,%v)",
				c.r1, c.r2, c.c, x1, x2, c.want1, c.want2)
		}
	}
}

// Property: hybrid prediction always sums to min(C, …) consistently and
// never exceeds capacity.
func TestQuickHybridConservation(t *testing.T) {
	f := func(a, b, cc uint16) bool {
		r1 := float64(a%200) + 1
		r2 := float64(b%200) + 1
		c := float64(cc%400) + 1
		x1, x2 := HybridPrediction(r1, r2, c)
		if x1 < 0 || x2 < 0 {
			return false
		}
		return math.Abs(x1+x2-c) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: equilibria never leave the link badly under- or over-used.
func TestQuickEquilibriumUtilization(t *testing.T) {
	f := func(nP, nS uint8, cap16 uint16) bool {
		np, ns := int(nP%4), int(nS%4)
		if np+ns == 0 {
			return true
		}
		c := float64(cap16%400) + 20
		p := Default(c)
		kinds := append(allKind(Primary, np), allKind(Scavenger, ns)...)
		x, ok := p.Equilibrium(kinds, nil)
		if !ok {
			return false
		}
		s := sum(x)
		// Scavenger-heavy mixes settle a little further below capacity
		// (the |S−C| deviation penalty is two-sided), so allow 90%.
		return s > 0.90*c && s < 1.1*c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
