// Package equi implements the Appendix-A equilibrium analysis
// numerically. In the paper's simplified single-bottleneck model a
// Proteus-P sender's utility is
//
//	u_P(x) = x^t − b·x·max(0, (S−C)/C)
//
// and a Proteus-S sender adds the deviation penalty −d·A·x·|S−C|/C.
//
// Taken literally, the kink at S = C makes every full-utilization split
// a Nash equilibrium (below capacity every sender wants more; above it
// the b-penalty is overwhelming; exactly at the boundary nobody can
// improve) — the fair point of Theorems 4.1/4.2 is actually selected by
// the protocol's ±ε rate probing, which samples utility on both sides
// of the boundary. This package therefore analyzes the probing-smoothed
// game the deployed controller really plays: each sender's payoff is
// the expectation over its two probe rates x(1±ε),
//
//	u(x) = ½·u(x(1+ε); S₋ᵢ) + ½·u(x(1−ε); S₋ᵢ),
//
// which is strictly concave through the boundary. Best-response
// iteration on it converges to a unique, fair equilibrium — the
// numerical counterpart of Theorems 4.1 and 4.2 — and the same solver
// verifies the unique mixed P/S equilibrium and the §4.4 Proteus-H
// rate-pair prediction.
package equi

import (
	"math"
)

// Params are the utility constants of the model.
type Params struct {
	T   float64 // throughput exponent (0,1)
	B   float64 // latency-gradient coefficient
	D   float64 // deviation coefficient (scavengers)
	A   float64 // deviation-to-gradient conversion constant of Appendix A
	C   float64 // bottleneck capacity, Mbps
	Eps float64 // probing perturbation ±ε of the rate controller
}

// Default returns the paper's constants on a capacity-C link. A is set
// to MI/√12 with a 30 ms monitor interval (the σ(RTT) expression of
// Appendix A evaluated for an RTT-long MI).
func Default(capacityMbps float64) Params {
	return Params{T: 0.9, B: 900, D: 1500, A: 0.030 / math.Sqrt(12), C: capacityMbps, Eps: 0.05}
}

// SenderKind selects which utility a sender maximizes.
type SenderKind int

// Sender kinds.
const (
	Primary SenderKind = iota
	Scavenger
)

// AppendixAUtility evaluates the exact payoff analyzed in Appendix A's
// proofs — the S ≥ C regime's smooth forms, u_P = x^t − b·x·(S−C)/C and
// u_S = x^t − (b+d·A)·x·(S−C)/C, extended over all rates. This is the
// strictly socially concave game whose unique equilibrium the paper's
// theorems are about; note that in it the scavenger's larger penalty
// coefficient makes its equilibrium rate strictly smaller.
func (p Params) AppendixAUtility(kind SenderKind, x, rest float64) float64 {
	if x < 0 {
		return math.Inf(-1)
	}
	s := x + rest
	pen := p.B
	if kind == Scavenger {
		pen = p.B + p.D*p.A
	}
	return math.Pow(x, p.T) - pen*x*(s-p.C)/p.C
}

// pointUtility evaluates the raw (kinked) payoff at rate x given the
// other senders' total rate rest.
func (p Params) pointUtility(kind SenderKind, x, rest float64) float64 {
	if x < 0 {
		return math.Inf(-1)
	}
	s := x + rest
	over := 0.0
	if s > p.C {
		over = (s - p.C) / p.C
	}
	u := math.Pow(x, p.T) - p.B*x*over
	if kind == Scavenger {
		u -= p.D * p.A * x * math.Abs(s-p.C) / p.C
	}
	return u
}

// utility is the probing-smoothed payoff: the mean over the two probe
// rates x(1±ε).
func (p Params) utility(kind SenderKind, x, rest float64) float64 {
	if x < 0 {
		return math.Inf(-1)
	}
	return 0.5*p.pointUtility(kind, x*(1+p.Eps), rest) +
		0.5*p.pointUtility(kind, x*(1-p.Eps), rest)
}

// bestResponse maximizes sender i's utility over x ∈ [0, hi] by golden-
// section search (the payoff is unimodal in x: increasing while under
// capacity, concave beyond).
func (p Params) bestResponse(kind SenderKind, rest float64, u payoff) float64 {
	lo, hi := 0.0, 2*p.C
	const phi = 0.6180339887498949
	a, b := hi-phi*(hi-lo), lo+phi*(hi-lo)
	fa, fb := u(kind, a, rest), u(kind, b, rest)
	for i := 0; i < 200; i++ {
		if fa < fb {
			lo = a
			a, fa = b, fb
			b = lo + phi*(hi-lo)
			fb = u(kind, b, rest)
		} else {
			hi = b
			b, fb = a, fa
			a = hi - phi*(hi-lo)
			fa = u(kind, a, rest)
		}
	}
	return (lo + hi) / 2
}

// Equilibrium finds the Nash equilibrium of the probing-smoothed game
// by damped best-response iteration from the given starting rates. It
// returns the rates and whether the iteration converged.
func (p Params) Equilibrium(kinds []SenderKind, start []float64) ([]float64, bool) {
	return p.solve(kinds, start, p.utility)
}

// EquilibriumAppendixA finds the Nash equilibrium of the Appendix-A
// game (see AppendixAUtility).
func (p Params) EquilibriumAppendixA(kinds []SenderKind, start []float64) ([]float64, bool) {
	return p.solve(kinds, start, p.AppendixAUtility)
}

type payoff func(kind SenderKind, x, rest float64) float64

func (p Params) solve(kinds []SenderKind, start []float64, u payoff) ([]float64, bool) {
	x := make([]float64, len(kinds))
	copy(x, start)
	for i := range x {
		if x[i] <= 0 {
			x[i] = p.C / float64(len(kinds)+1)
		}
	}
	const damping = 0.3
	for iter := 0; iter < 5000; iter++ {
		maxMove := 0.0
		var sum float64
		for _, v := range x {
			sum += v
		}
		for i, kind := range kinds {
			br := p.bestResponse(kind, sum-x[i], u)
			next := x[i] + damping*(br-x[i])
			move := math.Abs(next - x[i])
			if move > maxMove {
				maxMove = move
			}
			sum += next - x[i]
			x[i] = next
		}
		if maxMove < 1e-7*p.C {
			return x, true
		}
	}
	return x, false
}

// HybridPrediction returns the §4.4 ideal rate pair for two Proteus-H
// senders with switching thresholds r1 ≤ r2 on a capacity-C bottleneck:
//
//	(C/2, C/2)        if C < 2·r1
//	(r1,  C−r1)       if 2·r1 ≤ C < r1+r2
//	(C−r2, r2)        if r1+r2 ≤ C < 2·r2
//	(C/2, C/2)        if C ≥ 2·r2
func HybridPrediction(r1, r2, c float64) (x1, x2 float64) {
	if r1 > r2 {
		r1, r2 = r2, r1
	}
	switch {
	case c < 2*r1:
		return c / 2, c / 2
	case c < r1+r2:
		return r1, c - r1
	case c < 2*r2:
		return c - r2, r2
	default:
		return c / 2, c / 2
	}
}
