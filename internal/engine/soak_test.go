package engine

import (
	"math/rand"
	"testing"
	"time"

	"pccproteus/internal/core"
	"pccproteus/internal/transport"
	"pccproteus/internal/wire"
)

// soakController builds a down-tuned Proteus-S controller: the paper's
// scavenger machinery intact, but rates scaled so thousands of
// concurrent flows fit a single-host loopback. Each flow gets its own
// rand.Rand — controllers run on shard goroutines and the shared
// global source would race.
func soakController(seed int64) func(i int) transport.Controller {
	return func(i int) transport.Controller {
		rng := rand.New(rand.NewSource(wire.MixSeed(seed, int64(i))))
		cfg := core.ProteusConfig(rng)
		cfg.InitialRateMbps = 0.05
		cfg.MinRateMbps = 0.01
		cfg.MaxRateMbps = 0.5
		return core.New("proteus-s", cfg, core.NewScavenger())
	}
}

func runSoak(t *testing.T, flows int) {
	t.Helper()
	const limit = 4 << 10
	res, err := RunLoopback(LoopbackConfig{
		Flows:            flows,
		SenderShards:     2,
		RecvShards:       2,
		PacketSize:       400,
		LimitBytes:       limit,
		Duration:         120 * time.Second,
		Controller:       soakController(42),
		MaxFlowsPerShard: flows, // all receiver flows fit without eviction
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("soak %d flows: completed=%d elapsed=%v recv=%+v", flows, res.Completed, res.Elapsed, res.Recv)
	// Allow a sliver of stragglers: scavenger flows back off to the
	// rate floor under self-induced congestion, and the last few can
	// straddle the deadline.
	if min := flows * 99 / 100; res.Completed < min {
		t.Fatalf("completed %d/%d flows (need ≥%d)", res.Completed, flows, min)
	}
	if res.Recv.Evicted != 0 {
		t.Fatalf("receiver evicted %d flows during soak", res.Recv.Evicted)
	}
}

// TestSoak1k is the race-friendly soak: small enough for the race
// detector's overhead, large enough to exercise cross-shard admission,
// wheel pressure, and the batched socket path under real contention.
func TestSoak1k(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short")
	}
	runSoak(t, 1000)
}

// TestSoak10k runs ten thousand simultaneous Proteus-S flows across
// two sender and two receiver shards — the tentpole scale target.
func TestSoak10k(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short")
	}
	if raceEnabled {
		t.Skip("10k soak skipped under the race detector; TestSoak1k covers the racing surface")
	}
	runSoak(t, 10000)
}
