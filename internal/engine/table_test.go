package engine

import (
	"net/netip"
	"testing"

	"pccproteus/internal/wire"
)

// newTestShard builds a socketless shard: dispatch, the flow table,
// and the wheel all work; flushTx just recycles.
func newTestShard(t *testing.T, cfg Config) *shard {
	t.Helper()
	eng := &Engine{cfg: cfg.withDefaults(), clock: wire.NewClock(), done: make(chan struct{})}
	return newShard(eng, 0, nil)
}

func dataPkt(t *testing.T, flowID uint32, seq int64, size int) []byte {
	t.Helper()
	buf := make([]byte, 2048)
	return wire.EncodeDataV2(buf, wire.DataHeader{Seq: seq, SentAt: 1, Flow: flowID}, size)
}

func src(port uint16) netip.AddrPort {
	return netip.AddrPortFrom(netip.AddrFrom4([4]byte{127, 0, 0, 1}), port)
}

func TestFlowTableCreatesPerKey(t *testing.T) {
	sh := newTestShard(t, Config{})
	sh.dispatch(src(1000), dataPkt(t, 7, 0, 100), 0)
	sh.dispatch(src(1000), dataPkt(t, 8, 0, 100), 0)
	sh.dispatch(src(1001), dataPkt(t, 7, 0, 100), 0)
	if len(sh.flows) != 3 {
		t.Fatalf("flows=%d want 3 (keying must be (addr, flowID))", len(sh.flows))
	}
	// Same key again: no new flow, the packet is a duplicate.
	sh.dispatch(src(1000), dataPkt(t, 7, 0, 100), 0)
	if len(sh.flows) != 3 {
		t.Fatalf("flows=%d want 3", len(sh.flows))
	}
	if d := sh.ctr.rxDups.Load(); d != 1 {
		t.Fatalf("dups=%d want 1", d)
	}
}

func TestFlowTableIdleEviction(t *testing.T) {
	sh := newTestShard(t, Config{IdleTimeout: 5})
	sh.dispatch(src(1000), dataPkt(t, 1, 0, 100), 0)
	sh.dispatch(src(1001), dataPkt(t, 2, 0, 100), 3)
	sh.sweep(7) // flow 1 idle 7s > 5, flow 2 idle 4s
	if len(sh.flows) != 1 {
		t.Fatalf("flows=%d want 1 after idle sweep", len(sh.flows))
	}
	if _, ok := sh.flows[flowKey{addr: src(1001), id: 2}]; !ok {
		t.Fatal("wrong flow evicted")
	}
	if e := sh.ctr.evicted.Load(); e != 1 {
		t.Fatalf("evicted=%d want 1", e)
	}
}

func TestFlowTableRebindIsNewFlow(t *testing.T) {
	// A sender that restarts and rebinds arrives from a fresh port:
	// same flow ID, different addr, so it gets fresh state.
	sh := newTestShard(t, Config{})
	for seq := int64(0); seq < 10; seq++ {
		sh.dispatch(src(1000), dataPkt(t, 9, seq, 100), 0)
	}
	old := sh.flows[flowKey{addr: src(1000), id: 9}]
	if old == nil || old.rcv.Cum != 10 {
		t.Fatalf("old flow cum=%v", old)
	}
	sh.dispatch(src(2000), dataPkt(t, 9, 0, 100), 0)
	nf := sh.flows[flowKey{addr: src(2000), id: 9}]
	if nf == nil || nf == old {
		t.Fatal("rebind did not create a new flow")
	}
	if nf.rcv.Cum != 1 || old.rcv.Cum != 10 {
		t.Fatalf("state bled between rebinds: new cum=%d old cum=%d", nf.rcv.Cum, old.rcv.Cum)
	}
}

func TestFlowTableReusedKeyCollisionResets(t *testing.T) {
	// The same (addr, flowID) reused by a restarted sender: seq 0
	// arriving with the cumulative ack far ahead is impossible within
	// one flow's life (sequences are never reused), so the tracker
	// resets instead of treating the entire new flow as duplicates.
	sh := newTestShard(t, Config{})
	key := flowKey{addr: src(1000), id: 5}
	for seq := int64(0); seq < 20; seq++ {
		sh.dispatch(src(1000), dataPkt(t, 5, seq, 100), 0)
	}
	f := sh.flows[key]
	if f.rcv.Cum != 20 {
		t.Fatalf("cum=%d want 20", f.rcv.Cum)
	}
	sh.dispatch(src(1000), dataPkt(t, 5, 0, 100), 0) // restarted sender
	if got := sh.ctr.rebinds.Load(); got != 1 {
		t.Fatalf("rebinds=%d want 1", got)
	}
	if f.rcv.Cum != 1 {
		t.Fatalf("tracker not reset: cum=%d want 1", f.rcv.Cum)
	}
	// The dup counter must not have exploded: the restart's packets
	// are new data, not duplicates.
	if d := sh.ctr.rxDups.Load(); d != 0 {
		t.Fatalf("restart counted as dups: %d", d)
	}
	// But a genuinely duplicated early packet of a young flow (cum
	// below the floor) must NOT reset state.
	sh2 := newTestShard(t, Config{})
	sh2.dispatch(src(1000), dataPkt(t, 6, 0, 100), 0)
	sh2.dispatch(src(1000), dataPkt(t, 6, 1, 100), 0)
	sh2.dispatch(src(1000), dataPkt(t, 6, 0, 100), 0) // network dup
	f2 := sh2.flows[flowKey{addr: src(1000), id: 6}]
	if f2.rcv.Cum != 2 || sh2.ctr.rebinds.Load() != 0 {
		t.Fatalf("young-flow dup treated as restart: cum=%d rebinds=%d",
			f2.rcv.Cum, sh2.ctr.rebinds.Load())
	}
}

func TestFlowTableCapEvictsStalestReceiver(t *testing.T) {
	sh := newTestShard(t, Config{MaxFlowsPerShard: 4})
	for i := 0; i < 8; i++ {
		sh.dispatch(src(uint16(1000+i)), dataPkt(t, uint32(i+1), 0, 100), float64(i))
	}
	if len(sh.flows) != 4 {
		t.Fatalf("flows=%d want 4 (cap not enforced)", len(sh.flows))
	}
	if e := sh.ctr.evicted.Load(); e != 4 {
		t.Fatalf("evicted=%d want 4", e)
	}
	// Survivors are the most recently active keys.
	for i := 4; i < 8; i++ {
		if _, ok := sh.flows[flowKey{addr: src(uint16(1000 + i)), id: uint32(i + 1)}]; !ok {
			t.Fatalf("flow %d missing", i)
		}
	}
}

func TestFlowTableRebindAtCapDoesNotEvict(t *testing.T) {
	// A restarted sender reusing its (addr, flowID) while the shard's
	// table is full must rebind in place: the collision resolves on the
	// existing entry, so it must not race the cap's admission/eviction
	// path — no eviction, no new flow, and the rebound flow is fresh
	// enough to survive the next genuine admission.
	sh := newTestShard(t, Config{MaxFlowsPerShard: 4})
	for i := 0; i < 4; i++ {
		for seq := int64(0); seq < 20; seq++ {
			sh.dispatch(src(uint16(1000+i)), dataPkt(t, uint32(i+1), seq, 100), float64(i))
		}
	}
	if len(sh.flows) != 4 || sh.ctr.evicted.Load() != 0 {
		t.Fatalf("setup: flows=%d evicted=%d", len(sh.flows), sh.ctr.evicted.Load())
	}

	// Restart collision on the stalest key, at the cap, at a late time.
	sh.dispatch(src(1000), dataPkt(t, 1, 0, 100), 10)
	if got := sh.ctr.rebinds.Load(); got != 1 {
		t.Fatalf("rebinds=%d want 1", got)
	}
	if e := sh.ctr.evicted.Load(); e != 0 {
		t.Fatalf("rebind at cap evicted %d flows, want 0", e)
	}
	if len(sh.flows) != 4 {
		t.Fatalf("flows=%d want 4 (rebind must reuse the entry)", len(sh.flows))
	}
	f := sh.flows[flowKey{addr: src(1000), id: 1}]
	if f == nil || f.rcv.Cum != 1 {
		t.Fatalf("rebound flow not reset: %+v", f)
	}

	// A genuinely new 5th key now evicts the stalest flow — which is no
	// longer the rebound one (its lastSeen moved to the rebind time).
	sh.dispatch(src(2000), dataPkt(t, 50, 0, 100), 11)
	if e := sh.ctr.evicted.Load(); e != 1 {
		t.Fatalf("evicted=%d want 1", e)
	}
	if _, ok := sh.flows[flowKey{addr: src(1000), id: 1}]; !ok {
		t.Fatal("freshly-rebound flow was evicted instead of the stalest")
	}
	if _, ok := sh.flows[flowKey{addr: src(1001), id: 2}]; ok {
		t.Fatal("stalest flow (port 1001) survived; wrong eviction victim")
	}
}

func TestFlowTableAckWithNoFlowIsCounted(t *testing.T) {
	sh := newTestShard(t, Config{})
	var ack wire.AckPacket
	ack.Flow = 42
	var buf [wire.MaxAckLen]byte
	sh.dispatch(src(1000), ack.EncodeV2(buf[:]), 0)
	if got := sh.ctr.badAcks.Load(); got != 1 {
		t.Fatalf("badAcks=%d want 1", got)
	}
	if len(sh.flows) != 0 {
		t.Fatal("stray ack must not create a flow")
	}
}

func TestHotpathZeroAllocs(t *testing.T) {
	h := newHotpathHarness(400)
	// Warm: freelists, SACK capacity, tx staging, and every wheel
	// slot's entry slice — each 1ms step advances the 500µs wheel two
	// slots, so a full 512-slot revolution needs 256+ steps.
	for i := 0; i < 600; i++ {
		h.step()
	}
	if h.f.snd.ackedPkts.Load() == 0 {
		t.Fatal("harness not cycling packets")
	}
	allocs := testing.AllocsPerRun(500, func() { h.step() })
	if allocs != 0 {
		t.Fatalf("per-packet hot path allocates %.2f/op, want 0", allocs)
	}
}

func BenchmarkHotpath(b *testing.B) {
	RunHotpathBench(b)
}
