package engine

import (
	"math"
	"math/rand"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"pccproteus/internal/overload"
	"pccproteus/internal/wire"
)

// maxLoopSleep bounds how long a shard blocks in the socket read when
// the wheel is idle, so admissions, shutdown, and the idle sweep are
// observed promptly — the event-loop analog of the legacy sender's
// maxSleep ack-poll cadence.
const maxLoopSleep = time.Millisecond

// shardCounters is the shard's atomic stats surface; everything else
// in shard is owned by the loop goroutine.
type shardCounters struct {
	rxPkts         atomic.Int64 // valid datagrams dispatched
	rxBatches      atomic.Int64 // socket read syscalls that returned data
	rxDups         atomic.Int64
	txPkts         atomic.Int64
	txBatches      atomic.Int64 // socket write flushes
	bad            atomic.Int64 // datagrams the codecs rejected
	badAcks        atomic.Int64 // acks with no matching sender flow
	evicted        atomic.Int64
	rebinds        atomic.Int64 // reused (addr,flowID) collisions reset
	delivered      atomic.Int64 // distinct data packets received
	deliveredBytes atomic.Int64

	// Overload surface (see engine.Stats for field meanings).
	rejectScav atomic.Int64 // remote scavenger admissions refused (BUSY)
	shedPrim   atomic.Int64 // primary recv flows evicted at the cap
	shedScav   atomic.Int64 // scavenger flows paused/evicted/shed
	busyTx     atomic.Int64
	busyRx     atomic.Int64
	txSoftErrs atomic.Int64 // ENOBUFS/ENOMEM-class tx flush errors
	paused     atomic.Int64 // local scavenger senders currently paused
}

// shard is one event loop: one socket, one flow table, one pacing
// wheel, one goroutine. Flows never move between shards, so no flow
// state is ever locked — only the admission queue and the atomic
// counters cross goroutines.
type shard struct {
	eng   *Engine
	idx   int
	conn  *net.UDPConn
	clock wire.Clock
	local netip.AddrPort
	v6    bool

	flows map[flowKey]*flow
	wh    wheel

	maxPacket int
	batchSize int
	maxFlows  int
	idleTO    float64

	// rx staging, filled by the arch-specific readBatch. rxSegs[i], when
	// nonzero, is the GRO segment size of a kernel-coalesced buffer that
	// dispatch slices back into datagrams; always zero on the fallback.
	rxBufs [][]byte
	rxLens []int
	rxSrcs []netip.AddrPort
	rxSegs []int
	mmsg   mmsgState // per-arch batch-syscall state (empty struct on fallback)

	// tx staging: packets queued by flows, flushed in one batched
	// write; buffers recycle through txFree, so the steady-state path
	// allocates nothing.
	txq     [][]byte
	txAddrs []netip.AddrPort
	txFree  [][]byte

	ackScratch wire.AckPacket // encode scratch for receiver flows
	ackDecode  wire.AckPacket // decode scratch for sender dispatch

	admitMu sync.Mutex
	admitQ  []*flow

	// fireFn is the wheel-fire callback, bound once so advance() runs
	// without a per-wake closure allocation; fireNow carries the wake
	// timestamp into it.
	fireNow float64
	fireFn  func(*flow)

	lastSweep float64
	flowGauge atomic.Int64

	// Overload machinery: the brownout detector (loop-goroutine-owned)
	// plus atomic mirrors of its state/pressure for AddFlow and Stats.
	det        *overload.Detector
	ovState    atomic.Uint32
	ovWorst    atomic.Uint32 // worst severity ever entered (Shed dwells are brief)
	ovPressure atomic.Uint64 // math.Float64bits
	rng        *rand.Rand    // loop-owned jitter source
	// Pressure-signal inputs maintained by the I/O paths: consecutive
	// soft-error tx flushes, the unsent fraction of the last flush, and
	// an EWMA of reads that filled every rx slot.
	txErrStreak int
	txBacklog   float64
	rxFullEWMA  float64
	busyBudget  int // per-pass BUSY frame allowance (anti-amplification)

	ctr shardCounters
}

func newShard(eng *Engine, idx int, conn *net.UDPConn) *shard {
	cfg := eng.cfg
	sh := &shard{
		eng: eng, idx: idx, conn: conn, clock: eng.clock,
		flows:     make(map[flowKey]*flow),
		maxPacket: cfg.MaxPacket,
		batchSize: cfg.BatchSize,
		maxFlows:  cfg.MaxFlowsPerShard,
		idleTO:    cfg.IdleTimeout,
		rxBufs:    make([][]byte, cfg.BatchSize),
		rxLens:    make([]int, cfg.BatchSize),
		rxSrcs:    make([]netip.AddrPort, cfg.BatchSize),
		rxSegs:    make([]int, cfg.BatchSize),
		txq:       make([][]byte, 0, cfg.BatchSize),
		txAddrs:   make([]netip.AddrPort, 0, cfg.BatchSize),
		det:       overload.NewDetector(cfg.Overload),
		rng:       rand.New(rand.NewSource(wire.MixSeed(cfg.Seed, int64(idx)+0x0B5E))),
	}
	for i := range sh.rxBufs {
		sh.rxBufs[i] = make([]byte, cfg.MaxPacket)
	}
	sh.fireFn = func(f *flow) { sh.service(f, sh.fireNow) }
	if conn != nil {
		ua := conn.LocalAddr().(*net.UDPAddr)
		sh.local = ua.AddrPort()
		sh.v6 = ua.IP.To4() == nil
		sh.initBatch()
	}
	return sh
}

// loop is the shard event loop: admit → fire due timers → flush tx →
// block in a batched read until the next deadline → dispatch → flush.
func (sh *shard) loop() {
	defer sh.eng.wg.Done()
	sh.wh.init(sh.clock.Now())
	for {
		select {
		case <-sh.eng.done:
			return
		default:
		}
		sh.admit()
		now := sh.clock.Now()
		sh.fireNow = now
		sh.wh.advance(now, sh.fireFn)
		sh.sweep(now)
		sh.updateOverload(now)
		sh.flushTx()

		dur := maxLoopSleep
		if next := sh.wh.next(); !math.IsInf(next, 1) {
			d := next - sh.clock.Now()
			if d < 0 {
				d = 0
			}
			if dd := time.Duration(d * float64(time.Second)); dd < dur {
				dur = dd
			}
		}
		n := sh.readBatch(time.Now().Add(dur))
		if n < 0 {
			return // socket closed
		}
		// Rx saturation EWMA: a read that fills every slot means the
		// shard is not keeping up with arrival; an idle or partial read
		// decays the signal, so pressure falls once load is removed.
		full := 0.0
		if n >= len(sh.rxBufs) {
			full = 1.0
		}
		sh.rxFullEWMA += (full - sh.rxFullEWMA) / 32
		if n > 0 {
			sh.ctr.rxBatches.Add(1)
			now = sh.clock.Now()
			for i := 0; i < n; i++ {
				b := sh.rxBufs[i][:sh.rxLens[i]]
				if g := sh.rxSegs[i]; g > 0 && g < len(b) {
					// GRO-coalesced buffer: slice it back into the
					// original datagrams (the last may be shorter).
					for off := 0; off < len(b); off += g {
						end := off + g
						if end > len(b) {
							end = len(b)
						}
						sh.dispatch(sh.rxSrcs[i], b[off:end], now)
					}
				} else {
					sh.dispatch(sh.rxSrcs[i], b, now)
				}
			}
			sh.flushTx()
		}
	}
}

// dispatch routes one datagram through the flow table.
func (sh *shard) dispatch(src netip.AddrPort, b []byte, now float64) {
	switch wire.PacketType(b) {
	case 'P':
		h, err := wire.DecodeData(b)
		if err != nil {
			sh.ctr.bad.Add(1)
			return
		}
		key := flowKey{addr: src, id: h.Flow}
		f := sh.flows[key]
		if f == nil {
			f = sh.newRecvFlow(key, now)
			if f == nil {
				return // scavenger admission refused (BUSY already sent)
			}
		}
		if f.rcv == nil {
			sh.ctr.bad.Add(1) // data aimed at one of our sender keys
			return
		}
		sh.ctr.rxPkts.Add(1)
		f.lastSeen = now
		f.rcv.onData(sh, f, h, len(b), now)
	case 'A':
		a := &sh.ackDecode
		if err := wire.DecodeAck(b, a); err != nil {
			sh.ctr.bad.Add(1)
			return
		}
		f := sh.flows[flowKey{addr: src, id: a.Flow}]
		if f == nil || f.snd == nil {
			sh.ctr.badAcks.Add(1)
			return
		}
		sh.ctr.rxPkts.Add(1)
		f.lastSeen = now
		f.snd.onAck(sh, f, a, now)
		// The ack may have freed window or completed a loss episode:
		// service immediately instead of waiting out the armed deadline.
		sh.service(f, now)
	case 'Y':
		bp, err := wire.DecodeBusy(b)
		if err != nil {
			sh.ctr.bad.Add(1)
			return
		}
		f := sh.flows[flowKey{addr: src, id: bp.Flow}]
		if f == nil || f.snd == nil {
			sh.ctr.badAcks.Add(1)
			return
		}
		sh.ctr.busyRx.Add(1)
		f.lastSeen = now
		f.snd.onBusy(sh, bp, now)
		sh.service(f, now) // re-arm against the new busy deadline
	default:
		sh.ctr.bad.Add(1)
	}
}

// service pumps a sender flow and re-arms its next deadline. For a
// receiver flow it is the delayed-ack timer: flush whatever ack state
// coalescing has deferred.
func (sh *shard) service(f *flow, now float64) {
	if f.snd == nil {
		if f.rcv != nil && f.rcv.unacked > 0 {
			f.rcv.emitAck(sh, f)
		}
		return
	}
	if next := f.snd.pump(sh, f, now); next > 0 {
		sh.wh.arm(f, next)
	} else if f.armed {
		f.armed = false
		sh.wh.armed--
	}
}

// newRecvFlow admits an unknown (addr, flowID) as a receiver flow,
// evicting the stalest receiver flow at the cap — sender flows are
// never evicted for table pressure. Admission and eviction are both
// class-aware: from Brownout on, new scavenger flows are refused with
// a BUSY frame (and nil is returned — no state is kept for them), and
// at the cap the stalest *scavenger* receiver is evicted before any
// primary is considered.
func (sh *shard) newRecvFlow(key flowKey, now float64) *flow {
	scav := wire.ScavengerID(key.id)
	if scav && !sh.det.State().AdmitScavenger() {
		sh.ctr.rejectScav.Add(1)
		sh.sendBusy(key, false)
		return nil
	}
	if len(sh.flows) >= sh.maxFlows {
		var oldKey flowKey
		var old *flow
		oldScav := false
		oldest := now + 1
		for k, f := range sh.flows {
			if f.rcv == nil {
				continue
			}
			fs := wire.ScavengerID(k.id)
			// A scavenger victim always beats a primary one; within a
			// class, stalest wins.
			if old != nil && (oldScav && !fs || oldScav == fs && f.lastSeen >= oldest) {
				continue
			}
			oldest = f.lastSeen
			oldKey, old, oldScav = k, f, fs
		}
		if old != nil {
			sh.dropFlow(oldKey, old)
			sh.ctr.evicted.Add(1)
			if oldScav {
				sh.ctr.shedScav.Add(1)
				sh.sendBusy(oldKey, true)
			} else {
				sh.ctr.shedPrim.Add(1)
			}
		}
	}
	f := &flow{key: key, rcv: &recvFlow{highest: -1}}
	sh.flows[key] = f
	sh.flowGauge.Store(int64(len(sh.flows)))
	return f
}

// sweep evicts idle flows, at most once per second. Sender flows are
// reclaimed only once completed (or abandoned) and idle; receiver
// flows on the idle deadline alone, like the legacy Receiver.
func (sh *shard) sweep(now float64) {
	if now-sh.lastSweep < 1 {
		return
	}
	sh.lastSweep = now
	for k, f := range sh.flows {
		if now-f.lastSeen <= sh.idleTO {
			continue
		}
		if f.snd != nil && !f.snd.completed && f.snd.limit > 0 {
			continue // a stalled finite sender keeps retrying by RTO
		}
		sh.dropFlow(k, f)
		sh.ctr.evicted.Add(1)
	}
}

// busyRetryMillis is the retry-after hint on refusal/shed BUSY frames:
// the base of the sender's jittered exponential backoff. Comfortably
// above RecoverHold granularity so one backoff step usually clears a
// transient brownout, short enough that recovery lands well inside the
// 3 s budget.
const busyRetryMillis = 250

// updateOverload samples this shard's pressure signals, advances the
// brownout machine, and applies transitions: entering Shed pauses
// local scavenger senders and evicts scavenger receiver flows (BUSY
// shed=true); leaving Shed resumes the paused senders. Runs once per
// loop pass — four float compares in the steady state.
func (sh *shard) updateOverload(now float64) {
	sh.busyBudget = sh.batchSize
	prev := sh.det.State()
	st := sh.det.Update(now, overload.Signals{
		FlowOccupancy: float64(len(sh.flows)) / float64(sh.maxFlows),
		TxBacklog:     sh.txBacklog,
		RxSaturation:  sh.rxFullEWMA,
		SendErrStreak: sh.txErrStreak,
	})
	sh.ovState.Store(uint32(st))
	sh.ovPressure.Store(math.Float64bits(sh.det.Pressure()))
	if st == prev {
		return
	}
	if w := uint32(st.Severity()); w > sh.ovWorst.Load() {
		sh.ovWorst.Store(w)
	}
	if st == overload.StateShed {
		sh.shedScavengers()
	} else if prev == overload.StateShed {
		sh.resumeScavengers(now)
	}
}

// shedScavengers applies the Shed action: every local scavenger sender
// is paused (state kept, emission stopped) and every scavenger
// receiver flow is evicted with a shed BUSY. Primary flows are not
// touched — that is the entire point of the class ordering.
func (sh *shard) shedScavengers() {
	for k, f := range sh.flows {
		if f.snd != nil {
			if f.snd.class == overload.ClassScavenger && !f.snd.paused {
				f.snd.paused = true
				sh.ctr.paused.Add(1)
				sh.ctr.shedScav.Add(1)
			}
			continue
		}
		if wire.ScavengerID(k.id) {
			sh.dropFlow(k, f)
			sh.ctr.shedScav.Add(1)
			sh.sendBusy(k, true)
		}
	}
}

// resumeScavengers unpauses local scavenger senders on leaving Shed
// and services them so their pacing deadlines re-arm. Evicted receiver
// flows need nothing: their senders retry after backoff and re-admit
// once the shard returns to Normal.
func (sh *shard) resumeScavengers(now float64) {
	for _, f := range sh.flows {
		if f.snd != nil && f.snd.paused {
			f.snd.paused = false
			sh.ctr.paused.Add(-1)
			sh.service(f, now)
		}
	}
}

// sendBusy queues one BUSY push-back frame for key's peer, bounded by
// the per-pass budget so a flood of refused admissions cannot amplify
// into a flood of BUSY traffic (the refusal is still counted; the
// sender's own RTO covers a lost frame).
func (sh *shard) sendBusy(key flowKey, shed bool) {
	if sh.busyBudget <= 0 {
		return
	}
	sh.busyBudget--
	buf := sh.txBuf()
	pkt := wire.EncodeBusy(buf, wire.BusyPacket{
		Flow: key.id, RetryAfterMillis: busyRetryMillis, Shed: shed,
	})
	sh.queueTx(pkt, key.addr)
	sh.ctr.busyTx.Add(1)
}

// overloadState is the cross-goroutine mirror of the detector state
// (AddFlow admission gate, Stats).
func (sh *shard) overloadState() overload.State {
	return overload.State(sh.ovState.Load())
}

// pressureMirror is the cross-goroutine mirror of the last pressure.
func (sh *shard) pressureMirror() float64 {
	return math.Float64frombits(sh.ovPressure.Load())
}

func (sh *shard) dropFlow(key flowKey, f *flow) {
	if f.armed {
		f.armed = false
		sh.wh.armed--
	}
	if f.snd != nil && f.snd.paused {
		f.snd.paused = false
		sh.ctr.paused.Add(-1)
	}
	f.gen++ // lazily cancels any queued wheel entry
	delete(sh.flows, key)
	sh.flowGauge.Store(int64(len(sh.flows)))
	if f.snd != nil {
		sh.eng.senders.Add(-1) // release the AddFlow admission slot
	}
}

// admit drains the cross-goroutine admission queue and gives each new
// flow its first service.
func (sh *shard) admit() {
	sh.admitMu.Lock()
	if len(sh.admitQ) == 0 {
		sh.admitMu.Unlock()
		return
	}
	q := sh.admitQ
	sh.admitQ = nil
	sh.admitMu.Unlock()
	now := sh.clock.Now()
	for _, f := range q {
		sh.flows[f.key] = f
		f.lastSeen = now
		// A scavenger admitted while the shard is shedding raced the
		// AddFlow gate; it starts paused and resumes with the rest.
		if f.snd != nil && f.snd.class == overload.ClassScavenger &&
			!f.snd.paused && sh.det.State().Shedding() {
			f.snd.paused = true
			sh.ctr.paused.Add(1)
			sh.ctr.shedScav.Add(1)
		}
		sh.service(f, now)
	}
	sh.flowGauge.Store(int64(len(sh.flows)))
}

// enqueue hands a flow to the shard; the loop admits it within one
// wake (bounded by maxLoopSleep).
func (sh *shard) enqueue(f *flow) {
	sh.admitMu.Lock()
	sh.admitQ = append(sh.admitQ, f)
	sh.admitMu.Unlock()
}

// txBuf returns a maxPacket-sized scratch buffer for one outgoing
// packet; recycled by flushTx, so steady state never allocates.
func (sh *shard) txBuf() []byte {
	if n := len(sh.txFree); n > 0 {
		b := sh.txFree[n-1]
		sh.txFree[n-1] = nil
		sh.txFree = sh.txFree[:n-1]
		return b
	}
	return make([]byte, sh.maxPacket)
}

// queueTx stages one encoded packet (a prefix of a txBuf buffer) for
// the next batched write, flushing when a full batch is staged.
func (sh *shard) queueTx(pkt []byte, dst netip.AddrPort) {
	sh.txq = append(sh.txq, pkt)
	sh.txAddrs = append(sh.txAddrs, dst)
	if len(sh.txq) >= sh.batchSize {
		sh.flushTx()
	}
}

// flushTx writes every staged packet (one sendmmsg on Linux, a write
// loop on the fallback) and recycles the buffers.
func (sh *shard) flushTx() {
	if len(sh.txq) == 0 {
		return
	}
	if sh.conn != nil {
		sh.writeBatch(sh.txq, sh.txAddrs)
		sh.ctr.txPkts.Add(int64(len(sh.txq)))
		sh.ctr.txBatches.Add(1)
	}
	sh.recycleTx()
}

// recycleTx returns every staged buffer to the freelist without
// writing; the socketless bench harness uses it directly.
func (sh *shard) recycleTx() {
	for i, p := range sh.txq {
		sh.txFree = append(sh.txFree, p[0:sh.maxPacket:sh.maxPacket])
		sh.txq[i] = nil
	}
	sh.txq = sh.txq[:0]
	sh.txAddrs = sh.txAddrs[:0]
}
