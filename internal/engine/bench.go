package engine

import (
	"math"
	"net/netip"
	"testing"
	"time"

	"pccproteus/internal/transport"
	"pccproteus/internal/wire"
)

// FixedRateCC is a minimal controller pinned at a constant pacing
// rate — the measurement load for datapath benchmarks, where
// controller adaptation would only add noise. Win, when set, bounds
// the bytes in flight so an over-offered flow stays ack-clocked
// instead of accumulating an unbounded unacked list.
type FixedRateCC struct {
	Rate float64 // bytes/sec
	Win  float64 // bytes in flight; 0 = unbounded
}

func (c *FixedRateCC) Name() string                                  { return "fixed-rate" }
func (c *FixedRateCC) OnSend(now float64, pkt *transport.SentPacket) {}
func (c *FixedRateCC) OnAck(ack transport.Ack)                       {}
func (c *FixedRateCC) OnLoss(loss transport.Loss)                    {}
func (c *FixedRateCC) PacingRate() float64                           { return c.Rate }

func (c *FixedRateCC) CWnd() float64 {
	if c.Win > 0 {
		return c.Win
	}
	return math.Inf(1)
}

// hotpathHarness wires one sender flow and one receiver flow through
// two socketless shards, shuttling packets in memory. It exercises
// the full per-packet path — pump/emit, codec encode, flow-table
// dispatch, AckTracker, ack encode, ack dispatch, RACK bookkeeping,
// wheel re-arm — with no syscalls, which is exactly the surface the
// zero-allocation gate covers.
type hotpathHarness struct {
	sndShard *shard
	rcvShard *shard
	f        *flow
	now      float64
	sndAddr  netip.AddrPort
	rcvAddr  netip.AddrPort
	carry    [][]byte // reused staging for in-memory packet transfer
}

func newHotpathHarness(packetSize int) *hotpathHarness {
	// BatchSize must exceed any one step's packet output: on a
	// socketless shard, queueTx's batch-full auto-flush would recycle
	// (= drop) the staged packets before step() can hand them over.
	eng := &Engine{cfg: Config{BatchSize: 4096}.withDefaults(), clock: wire.NewClock(), done: make(chan struct{})}
	h := &hotpathHarness{
		sndShard: newShard(eng, 0, nil),
		rcvShard: newShard(eng, 1, nil),
		sndAddr:  netip.MustParseAddrPort("127.0.0.1:40001"),
		rcvAddr:  netip.MustParseAddrPort("127.0.0.1:40002"),
	}
	// Unbounded pacing (rate above MaxFiniteRate refills the bucket on
	// every Advance) with a window bound: the flow is ack-clocked, so
	// inflight — and with it the unacked list the ack path scans —
	// stays pinned at 64 packets instead of growing without limit.
	s := &senderFlow{
		cc:         &FixedRateCC{Rate: 1e12, Win: float64(64 * packetSize)},
		burst:      transport.DefaultBurst,
		packetSize: packetSize,
		done:       make(chan struct{}),
	}
	s.pacer.Cap = float64(2 * s.burst * packetSize)
	h.f = &flow{key: flowKey{addr: h.rcvAddr, id: 1}, snd: s}
	h.sndShard.flows[h.f.key] = h.f
	h.sndShard.service(h.f, 0) // first service arms the wheel
	return h
}

// RunHotpathBench measures the full in-memory per-packet engine path
// (pump, encode, dispatch, ack tracking, ack processing, wheel
// re-arm) — the allocs/op gate for the zero-allocation claim.
// Exported for proteusbench -perf.
func RunHotpathBench(b *testing.B) {
	h := newHotpathHarness(400)
	// Warm past a full wheel revolution so every slot's entry slice has
	// reached steady capacity (2 slots per 1ms step, 512 slots).
	for i := 0; i < 600; i++ {
		h.step()
	}
	b.ReportAllocs()
	b.SetBytes(400)
	b.ResetTimer()
	for n := 0; n < b.N; {
		n += h.step()
	}
}

// MeasurePPS measures steady-state aggregate packets/sec through a
// real-socket engine loopback: flows fixed-rate senders offered at
// roughly 2× the achievable load, so the datapath — not the
// controllers — is the bottleneck. Returns delivered pps and the
// packet count over the measurement window.
func MeasurePPS(flows int, d time.Duration) (float64, int64, error) {
	recv, err := New(Config{Shards: 2, BatchSize: 1024, MaxFlowsPerShard: flows})
	if err != nil {
		return 0, 0, err
	}
	defer recv.Stop()
	snd, err := New(Config{Shards: 2, BatchSize: 1024, MaxFlowsPerShard: flows})
	if err != nil {
		return 0, 0, err
	}
	defer snd.Stop()
	if err := recv.Start(); err != nil {
		return 0, 0, err
	}
	if err := snd.Start(); err != nil {
		return 0, 0, err
	}
	addrs := recv.Addrs()
	for i := 0; i < flows; i++ {
		// 10k pps/flow offered — far beyond achievable at 1k flows, so
		// the datapath, not the controllers, is the bottleneck. The
		// 8-packet window keeps the overload ack-clocked: aggregate
		// inflight (8k packets) stays within socket-buffer capacity, so
		// the measured path is lossless and every sent packet counts.
		_, err := snd.AddFlow(FlowConfig{
			Dst:        addrs[i%len(addrs)],
			CC:         &FixedRateCC{Rate: 4e6, Win: 8 * 400},
			PacketSize: 400,
		})
		if err != nil {
			return 0, 0, err
		}
	}
	time.Sleep(300 * time.Millisecond) // admission + warmup
	p0 := recv.Stats().Delivered
	time.Sleep(d)
	p1 := recv.Stats().Delivered
	return float64(p1-p0) / d.Seconds(), p1 - p0, nil
}

// step emits up to burst packets, delivers them to the receiver
// shard, and feeds the acks back — one full round of the per-packet
// hot path. Returns the number of data packets cycled.
func (h *hotpathHarness) step() int {
	h.now += 0.001
	// Drive the wheels exactly like the shard loop does: fires re-arm
	// and their entries drain, so slot slices stay bounded. (Calling
	// service directly would leave every re-arm's entry behind.)
	h.sndShard.fireNow = h.now
	h.sndShard.wh.advance(h.now, h.sndShard.fireFn)
	h.rcvShard.fireNow = h.now
	h.rcvShard.wh.advance(h.now, h.rcvShard.fireFn)
	n := len(h.sndShard.txq)
	// Move data packets to the receiver shard: dispatch reads the
	// buffer synchronously, so handing the same backing bytes over is
	// safe — but recycle only after dispatch.
	h.carry = append(h.carry[:0], h.sndShard.txq...)
	h.sndShard.txq = h.sndShard.txq[:0]
	h.sndShard.txAddrs = h.sndShard.txAddrs[:0]
	for _, p := range h.carry {
		h.rcvShard.dispatch(h.sndAddr, p, h.now)
		h.sndShard.txFree = append(h.sndShard.txFree, p[0:h.sndShard.maxPacket:h.sndShard.maxPacket])
	}
	// Acks flow back into the sender shard.
	h.carry = append(h.carry[:0], h.rcvShard.txq...)
	h.rcvShard.txq = h.rcvShard.txq[:0]
	h.rcvShard.txAddrs = h.rcvShard.txAddrs[:0]
	for _, p := range h.carry {
		h.sndShard.dispatch(h.rcvAddr, p, h.now)
		h.rcvShard.txFree = append(h.rcvShard.txFree, p[0:h.rcvShard.maxPacket:h.rcvShard.maxPacket])
	}
	return n
}
