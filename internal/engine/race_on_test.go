//go:build race

package engine

// raceEnabled lets tests scale themselves down under the race
// detector, whose memory overhead makes a 10k-flow soak impractical.
const raceEnabled = true
