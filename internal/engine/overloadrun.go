package engine

import (
	"errors"
	"net"
	"net/netip"
	"sync"
	"time"

	"pccproteus/internal/overload"
)

// OverloadConfig drives RunOverload: a steady primary population on a
// capacity-limited receiver, hit by scheduled overload phases
// (scavenger flow floods, ack-starved scavengers aimed at a mute
// endpoint) from an overload.Plan. The receiver's flow cap is the
// scarce resource — set it low enough that the plan's floods cross the
// brownout thresholds.
type OverloadConfig struct {
	PrimaryFlows int
	PrimaryRate  float64 // bytes/sec per primary flow
	ScavRate     float64 // bytes/sec per flood scavenger flow
	RecvShards   int
	BatchSize    int
	PacketSize   int
	// RecvFlowCap is the receiver's MaxFlowsPerShard; also used as the
	// per-shard cap on ack-starve phase engines, where the starved
	// flows themselves are the table pressure.
	RecvFlowCap int
	Plan        overload.Plan
	// Warmup is the primary-only baseline period before the plan's
	// t=0; its second half is the pre-flood goodput window.
	Warmup time.Duration
	// Cooldown bounds the post-plan recovery wait and hosts the
	// post-recovery goodput window.
	Cooldown time.Duration
	Overload overload.Config
	Seed     int64
}

func (c OverloadConfig) withDefaults() OverloadConfig {
	if c.PrimaryRate <= 0 {
		c.PrimaryRate = 2e5
	}
	if c.ScavRate <= 0 {
		c.ScavRate = 1e5
	}
	if c.RecvShards <= 0 {
		c.RecvShards = 1
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 256
	}
	if c.PacketSize <= 0 {
		c.PacketSize = 400
	}
	if c.RecvFlowCap <= 0 {
		c.RecvFlowCap = 64
	}
	if c.Warmup <= 0 {
		c.Warmup = time.Second
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	return c
}

// OverloadResult summarizes one overload scenario run.
type OverloadResult struct {
	PreGoodput   float64 // primary bytes/sec before the first phase
	LoadGoodput  float64 // primary bytes/sec while phases are active
	PostGoodput  float64 // primary bytes/sec after recovery
	RecoverySecs float64 // load end → receiver Normal again; -1 = never
	WorstState   overload.State // worst receiver state observed under load

	Recv    Stats // receiver engine at teardown
	Primary Stats // primary sender engine at teardown
	Load    Stats // merged phase-engine stats (BUSY rx, sheds, pauses…)

	LoadAddErrs int // AddFlow refusals inside phases (expected under pressure)
}

// mergeStats folds one engine snapshot into an accumulator — counters
// add, gauges add (they are per-engine), states take the worst.
func mergeStats(dst *Stats, s Stats) {
	dst.RxPkts += s.RxPkts
	dst.TxPkts += s.TxPkts
	dst.Evicted += s.Evicted
	dst.Delivered += s.Delivered
	dst.DeliveredBytes += s.DeliveredBytes
	dst.AdmittedPrimary += s.AdmittedPrimary
	dst.AdmittedScavenger += s.AdmittedScavenger
	dst.RejectedPrimary += s.RejectedPrimary
	dst.RejectedScavenger += s.RejectedScavenger
	dst.ShedPrimary += s.ShedPrimary
	dst.ShedScavenger += s.ShedScavenger
	dst.BusyTx += s.BusyTx
	dst.BusyRx += s.BusyRx
	dst.TxSoftErrs += s.TxSoftErrs
	dst.Paused += s.Paused
	if s.Overload.Severity() > dst.Overload.Severity() {
		dst.Overload = s.Overload
	}
	if s.WorstOverload.Severity() > dst.WorstOverload.Severity() {
		dst.WorstOverload = s.WorstOverload
	}
	if s.Pressure > dst.Pressure {
		dst.Pressure = s.Pressure
	}
}

// RunOverload stands up the receiver and primary engines, replays the
// plan's phases against them, and measures primary goodput before /
// during / after the load plus the receiver's recovery time.
func RunOverload(cfg OverloadConfig) (*OverloadResult, error) {
	cfg = cfg.withDefaults()
	if cfg.PrimaryFlows <= 0 {
		return nil, errors.New("engine: overload needs PrimaryFlows")
	}
	plan := cfg.Plan.Canonical()

	recv, err := New(Config{
		Shards: cfg.RecvShards, BatchSize: cfg.BatchSize,
		MaxFlowsPerShard: cfg.RecvFlowCap, Overload: cfg.Overload,
		Seed: cfg.Seed,
		// Short idle timeout: scavenger receiver flows admitted between
		// shed waves go quiet once their senders back off; they must
		// drain quickly or lingering occupancy holds the shard in
		// Brownout long after the load is gone.
		IdleTimeout: 1,
	})
	if err != nil {
		return nil, err
	}
	defer recv.Stop()
	prim, err := New(Config{BatchSize: cfg.BatchSize, Seed: cfg.Seed + 1})
	if err != nil {
		return nil, err
	}
	defer prim.Stop()
	if err := recv.Start(); err != nil {
		return nil, err
	}
	if err := prim.Start(); err != nil {
		return nil, err
	}

	addrs := recv.Addrs()
	primFlows := make([]*Flow, 0, cfg.PrimaryFlows)
	for i := 0; i < cfg.PrimaryFlows; i++ {
		fl, err := prim.AddFlow(FlowConfig{
			Dst:        addrs[i%len(addrs)],
			CC:         &FixedRateCC{Rate: cfg.PrimaryRate, Win: float64(64 * cfg.PacketSize)},
			PacketSize: cfg.PacketSize,
		})
		if err != nil {
			return nil, err
		}
		primFlows = append(primFlows, fl)
	}
	ackedPrim := func() int64 {
		var n int64
		for _, fl := range primFlows {
			n += fl.Stats().AckedBytes
		}
		return n
	}

	// A mute endpoint for ack-starve phases: a bound, never-read UDP
	// socket. Its receive buffer fills and the kernel silently drops —
	// exactly the slow receiver the scenario wants.
	var muteAddr netip.AddrPort
	needMute := false
	for _, ph := range plan.Phases {
		if ph.Kind == overload.KindAckStarve {
			needMute = true
		}
	}
	if needMute {
		mc, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			return nil, err
		}
		defer mc.Close()
		muteAddr = mc.LocalAddr().(*net.UDPAddr).AddrPort()
	}

	res := &OverloadResult{RecoverySecs: -1}

	// Warmup, then the pre-load goodput window over its second half.
	time.Sleep(cfg.Warmup / 2)
	a0, t0 := ackedPrim(), time.Now()
	time.Sleep(cfg.Warmup / 2)
	res.PreGoodput = float64(ackedPrim()-a0) / time.Since(t0).Seconds()

	base := time.Now() // the plan's t=0
	sleepUntil := func(at float64) {
		if d := time.Until(base.Add(time.Duration(at * float64(time.Second)))); d > 0 {
			time.Sleep(d)
		}
	}

	// Launch each phase on its own ephemeral engine so "load removal"
	// is a clean teardown, not a lingering population.
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		loadEnd float64
	)
	for _, ph := range plan.Phases {
		if end := ph.At + ph.Dur; end > loadEnd {
			loadEnd = end
		}
		wg.Add(1)
		go func(ph overload.Phase) {
			defer wg.Done()
			sleepUntil(ph.At)
			ecfg := Config{BatchSize: cfg.BatchSize, Seed: cfg.Seed + 100 + int64(ph.Flows)}
			dst := addrs
			if ph.Kind == overload.KindAckStarve {
				// The starved flows themselves are the pressure: a tight
				// table and a short idle timeout so the phase engine both
				// browns out and then drains.
				ecfg.MaxFlowsPerShard = cfg.RecvFlowCap
				ecfg.Overload = cfg.Overload
				ecfg.IdleTimeout = 2
				dst = []netip.AddrPort{muteAddr}
			}
			eng, err := New(ecfg)
			if err != nil {
				return
			}
			if err := eng.Start(); err != nil {
				eng.Stop()
				return
			}
			addErrs := 0
			for i := 0; i < ph.Flows; i++ {
				class := overload.ClassScavenger
				if ph.Kind == overload.KindAckStarve && i >= ph.Flows/2 {
					// A slow receiver starves everyone: the back half of
					// the starved population is primary, which both mirrors
					// reality and guarantees the table reaches Shed even
					// after the scavenger admission gate closes.
					class = overload.ClassPrimary
				}
				_, err := eng.AddFlow(FlowConfig{
					Dst:        dst[i%len(dst)],
					CC:         &FixedRateCC{Rate: cfg.ScavRate, Win: float64(64 * cfg.PacketSize)},
					PacketSize: cfg.PacketSize,
					Class:      class,
				})
				if err != nil {
					addErrs++ // expected once the phase engine browns out
				}
			}
			sleepUntil(ph.At + ph.Dur)
			st := eng.Stats()
			eng.Stop()
			mu.Lock()
			mergeStats(&res.Load, st)
			res.LoadAddErrs += addErrs
			mu.Unlock()
		}(ph)
	}

	// Primary goodput over the whole load window.
	if len(plan.Phases) > 0 {
		sleepUntil(plan.Phases[0].At)
		la, lt := ackedPrim(), time.Now()
		sleepUntil(loadEnd)
		wg.Wait() // phase engines fully stopped: load is removed
		res.LoadGoodput = float64(ackedPrim()-la) / time.Since(lt).Seconds()
	}
	// Shed dwells can be a single loop pass (~1ms): shedding collapses
	// the very pressure that caused it. Polling would miss that, so the
	// shards record the worst state they ever entered and Stats()
	// surfaces it sticky.
	res.WorstState = recv.Stats().WorstOverload

	// Recovery clock: load removal → receiver (and primary sender)
	// report Normal with nothing paused.
	removed := time.Now()
	deadline := removed.Add(cfg.Cooldown)
	for time.Now().Before(deadline) {
		rs, ps := recv.Stats(), prim.Stats()
		if rs.Overload == overload.StateNormal && ps.Overload == overload.StateNormal &&
			rs.Paused == 0 && ps.Paused == 0 {
			res.RecoverySecs = time.Since(removed).Seconds()
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Post-recovery goodput window.
	postWin := cfg.Cooldown / 4
	if postWin > time.Second {
		postWin = time.Second
	}
	p0, pt := ackedPrim(), time.Now()
	time.Sleep(postWin)
	res.PostGoodput = float64(ackedPrim()-p0) / time.Since(pt).Seconds()

	res.Recv = recv.Stats()
	res.Primary = prim.Stats()
	return res, nil
}

// MeasureOverloadPPS is the degraded-mode counterpart of MeasurePPS:
// delivered packets/sec through a receiver held in brownout for the
// whole window. The offered population is 4× the receiver's table
// capacity and half of it is scavenger-class, so the admission gate,
// class-aware eviction, BUSY emission, and pressure bookkeeping all
// run on the hot path while the primaries keep flowing.
func MeasureOverloadPPS(flows int, d time.Duration) (float64, int64, error) {
	recv, err := New(Config{Shards: 2, BatchSize: 1024, MaxFlowsPerShard: (flows + 7) / 8})
	if err != nil {
		return 0, 0, err
	}
	defer recv.Stop()
	snd, err := New(Config{Shards: 2, BatchSize: 1024, MaxFlowsPerShard: flows})
	if err != nil {
		return 0, 0, err
	}
	defer snd.Stop()
	if err := recv.Start(); err != nil {
		return 0, 0, err
	}
	if err := snd.Start(); err != nil {
		return 0, 0, err
	}
	addrs := recv.Addrs()
	for i := 0; i < flows; i++ {
		fc := FlowConfig{
			Dst:        addrs[i%len(addrs)],
			CC:         &FixedRateCC{Rate: 4e6, Win: 8 * 400},
			PacketSize: 400,
		}
		if i%2 == 1 {
			fc.Class = overload.ClassScavenger
		}
		if _, err := snd.AddFlow(fc); err != nil {
			return 0, 0, err
		}
	}
	time.Sleep(300 * time.Millisecond) // admission, first shed wave, warmup
	p0 := recv.Stats().Delivered
	time.Sleep(d)
	p1 := recv.Stats().Delivered
	return float64(p1-p0) / d.Seconds(), p1 - p0, nil
}
