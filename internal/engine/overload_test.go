package engine

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"pccproteus/internal/overload"
	"pccproteus/internal/wire"
)

const scavBit = wire.FlowClassScavenger

// addLocalSender inserts a socketless sender flow into sh's table, the
// way hotpathHarness does, so shed/pause behavior is testable without
// sockets.
func addLocalSender(sh *shard, id uint32, class overload.Class) *flow {
	s := &senderFlow{
		cc:         &FixedRateCC{Rate: 1, Win: 400},
		burst:      1,
		packetSize: 400,
		done:       make(chan struct{}),
		class:      class,
	}
	s.pacer.Cap = 800
	f := &flow{key: flowKey{addr: src(uint16(30000 + id)), id: id}, snd: s}
	sh.flows[f.key] = f
	sh.flowGauge.Store(int64(len(sh.flows)))
	return f
}

func TestScavengerAdmissionRefusedUnderBrownout(t *testing.T) {
	sh := newTestShard(t, Config{})
	sh.busyBudget = sh.batchSize
	// Force Brownout directly on the shard-owned detector.
	sh.det.Update(0, overload.Signals{FlowOccupancy: 0.9})

	// A new scavenger flow is refused: no state, a BUSY goes back.
	sh.dispatch(src(1000), dataPkt(t, 1|scavBit, 0, 100), 0)
	if len(sh.flows) != 0 {
		t.Fatalf("scavenger admitted under brownout: %d flows", len(sh.flows))
	}
	if r := sh.ctr.rejectScav.Load(); r != 1 {
		t.Fatalf("rejectScav=%d want 1", r)
	}
	if b := sh.ctr.busyTx.Load(); b != 1 {
		t.Fatalf("busyTx=%d want 1", b)
	}
	if len(sh.txq) != 1 || wire.PacketType(sh.txq[0]) != 'Y' {
		t.Fatalf("expected one staged BUSY frame, txq=%d", len(sh.txq))
	}
	bp, err := wire.DecodeBusy(sh.txq[0])
	if err != nil || bp.Flow != 1|scavBit || bp.Shed {
		t.Fatalf("busy frame %+v err=%v", bp, err)
	}

	// A primary flow is untouched by brownout.
	sh.dispatch(src(1001), dataPkt(t, 2, 0, 100), 0)
	if len(sh.flows) != 1 {
		t.Fatal("primary admission must not be gated on brownout")
	}

	// Back to Normal: the scavenger gets in.
	sh.det.Update(1, overload.Signals{})
	sh.det.Update(3, overload.Signals{}) // recover hold elapses
	sh.dispatch(src(1000), dataPkt(t, 1|scavBit, 0, 100), 3)
	if len(sh.flows) != 2 {
		t.Fatal("scavenger not admitted after recovery")
	}
}

func TestCapEvictionPrefersScavenger(t *testing.T) {
	sh := newTestShard(t, Config{MaxFlowsPerShard: 3})
	sh.busyBudget = sh.batchSize
	// Stalest flow is a primary; a fresher scavenger must still be the
	// eviction victim.
	sh.dispatch(src(1000), dataPkt(t, 1, 0, 100), 0)         // primary, stalest
	sh.dispatch(src(1001), dataPkt(t, 2|scavBit, 0, 100), 5) // scavenger, fresh
	sh.dispatch(src(1002), dataPkt(t, 3, 0, 100), 6)         // primary
	sh.dispatch(src(1003), dataPkt(t, 4, 0, 100), 7)         // over cap
	if len(sh.flows) != 3 {
		t.Fatalf("flows=%d want 3", len(sh.flows))
	}
	if _, ok := sh.flows[flowKey{addr: src(1001), id: 2 | scavBit}]; ok {
		t.Fatal("scavenger survived eviction while a primary was dropped")
	}
	if _, ok := sh.flows[flowKey{addr: src(1000), id: 1}]; !ok {
		t.Fatal("stalest primary was evicted despite a scavenger victim")
	}
	if s, p := sh.ctr.shedScav.Load(), sh.ctr.shedPrim.Load(); s != 1 || p != 0 {
		t.Fatalf("shedScav=%d shedPrim=%d want 1,0", s, p)
	}
	if b := sh.ctr.busyTx.Load(); b != 1 {
		t.Fatalf("busyTx=%d want 1 (evicted scavenger gets a shed BUSY)", b)
	}

	// With only primaries left, cap pressure evicts stalest-primary and
	// counts it against the primary class.
	sh2 := newTestShard(t, Config{MaxFlowsPerShard: 2})
	sh2.busyBudget = sh2.batchSize
	sh2.dispatch(src(1000), dataPkt(t, 1, 0, 100), 0)
	sh2.dispatch(src(1001), dataPkt(t, 2, 0, 100), 1)
	sh2.dispatch(src(1002), dataPkt(t, 3, 0, 100), 2)
	if sh2.ctr.shedPrim.Load() != 1 {
		t.Fatal("all-primary cap eviction must count as a primary shed")
	}
	if _, ok := sh2.flows[flowKey{addr: src(1000), id: 1}]; ok {
		t.Fatal("stalest primary should have been the victim")
	}
}

func TestShedPausesLocalScavengersOnly(t *testing.T) {
	sh := newTestShard(t, Config{})
	prim := addLocalSender(sh, 1, overload.ClassPrimary)
	scav := addLocalSender(sh, 2|scavBit, overload.ClassScavenger)
	// Also a scavenger receiver flow: Shed must evict it with a BUSY.
	sh.dispatch(src(2000), dataPkt(t, 9|scavBit, 0, 100), 0)

	sh.txErrStreak = 32 // ENOBUFS streak: full-strength pressure
	sh.updateOverload(1)
	if got := sh.det.State(); got != overload.StateShed {
		t.Fatalf("state %v want shed", got)
	}
	if !scav.snd.paused || prim.snd.paused {
		t.Fatalf("paused: scav=%v prim=%v want true,false", scav.snd.paused, prim.snd.paused)
	}
	if sh.ctr.paused.Load() != 1 {
		t.Fatalf("paused gauge %d want 1", sh.ctr.paused.Load())
	}
	if _, ok := sh.flows[flowKey{addr: src(2000), id: 9 | scavBit}]; ok {
		t.Fatal("scavenger receiver flow not shed")
	}
	if sh.ctr.shedScav.Load() != 2 || sh.ctr.shedPrim.Load() != 0 {
		t.Fatalf("shedScav=%d shedPrim=%d want 2,0",
			sh.ctr.shedScav.Load(), sh.ctr.shedPrim.Load())
	}
	// A paused sender still wakes (RTO aging) but emits nothing.
	if next := scav.snd.pump(sh, scav, 1); next <= 1 {
		t.Fatalf("paused pump returned %v, want a future wake", next)
	}
	if scav.snd.sentPkts.Load() != 0 {
		t.Fatal("paused scavenger emitted")
	}

	// Streak clears: Recover resumes the paused sender.
	sh.txErrStreak = 0
	sh.updateOverload(2)
	if got := sh.det.State(); got != overload.StateRecover {
		t.Fatalf("state %v want recover", got)
	}
	if scav.snd.paused || sh.ctr.paused.Load() != 0 {
		t.Fatal("recover did not resume the paused scavenger")
	}
}

func TestBusyBackoffJitteredExponential(t *testing.T) {
	sh := newTestShard(t, Config{})
	f := addLocalSender(sh, 1|scavBit, overload.ClassScavenger)
	s := f.snd
	bp := wire.BusyPacket{Flow: f.key.id, RetryAfterMillis: 200}
	prev := 0.0
	for i := 1; i <= 4; i++ {
		s.busyUntil = 0 // isolate each step's backoff
		s.onBusy(sh, bp, 0)
		got := s.busyUntil
		base := 0.2
		for j := 1; j < i; j++ {
			base *= 2
		}
		if got < base*0.75-1e-9 || got > base*1.25+1e-9 {
			t.Fatalf("streak %d: backoff %.3fs outside [%.3f, %.3f]",
				i, got, base*0.75, base*1.25)
		}
		if got <= prev/2 {
			t.Fatalf("backoff not growing: %v after %v", got, prev)
		}
		prev = got
	}
	// The cap: a long streak cannot push the horizon past maxBusyBackoff.
	for i := 0; i < 20; i++ {
		s.onBusy(sh, bp, 0)
	}
	if s.busyUntil > maxBusyBackoff*1.25 {
		t.Fatalf("backoff %v exceeds cap", s.busyUntil)
	}
	// While busy, pump emits nothing and wakes no later than busyUntil.
	s.busyUntil = 5
	if next := s.pump(sh, f, 1); next > 5 {
		t.Fatalf("busy pump wake %v after busyUntil", next)
	}
	if s.sentPkts.Load() != 0 {
		t.Fatal("busy flow emitted")
	}
	// An ack resets the streak (the peer is serving us again).
	var a wire.AckPacket
	s.onAck(sh, f, &a, 6)
	if s.busyStreak != 0 {
		t.Fatalf("busyStreak=%d after ack, want 0", s.busyStreak)
	}
}

// TestShedCycleZeroAlloc is the "zero memory growth during Shed" gate
// at its sharpest: a full Shed→Recover→Normal cycle over a populated
// shard allocates nothing once warm, so no amount of overload dwell
// can grow the heap.
func TestShedCycleZeroAlloc(t *testing.T) {
	sh := newTestShard(t, Config{})
	for i := uint32(0); i < 8; i++ {
		addLocalSender(sh, 100+i|scavBit, overload.ClassScavenger)
		addLocalSender(sh, 200+i, overload.ClassPrimary)
	}
	now := 0.0
	cycle := func() {
		now += 1
		sh.txErrStreak = 32
		sh.updateOverload(now) // → Shed: pause scavengers
		sh.fireNow = now
		sh.wh.advance(now, sh.fireFn)
		sh.txErrStreak = 0
		now += 1
		sh.updateOverload(now) // → Recover: resume
		now += 1.1
		sh.updateOverload(now) // hold elapsed → Normal
		sh.fireNow = now
		sh.wh.advance(now, sh.fireFn)
		sh.flushTx()
	}
	// Warm thoroughly: each cycle advances time by 3.1s, so armed
	// deadlines walk the wheel's 512 slots with a 64-cycle period —
	// every slot the measurement can touch must have grown its slice
	// capacity first.
	for i := 0; i < 200; i++ {
		cycle()
	}
	if allocs := testing.AllocsPerRun(100, cycle); allocs != 0 {
		t.Fatalf("shed/recover cycle allocates %.2f/op, want 0", allocs)
	}
}

// overloadGateConfig is the scaled acceptance scenario: 6 primaries on
// a 24-slot receiver hit by a 4× scavenger flood.
func overloadGateConfig() OverloadConfig {
	flood := 2.0
	if raceEnabled {
		flood = 1.5
	}
	return OverloadConfig{
		PrimaryFlows: 6,
		PrimaryRate:  2e5,
		ScavRate:     1e5,
		RecvFlowCap:  24,
		BatchSize:    256,
		PacketSize:   400,
		Warmup:       time.Second,
		Cooldown:     5 * time.Second,
		Overload:     overload.Config{RecoverHold: 0.4},
		Plan: overload.Plan{Phases: []overload.Phase{
			{Kind: overload.KindFlood, At: 0, Dur: flood, Flows: 24},
		}},
	}
}

// TestOverloadFloodGate is the ISSUE acceptance gate: through a 4×
// scavenger flood, only S-class flows are shed, primary goodput holds
// within 10%, recovery lands within 3 s of load removal, and goroutine
// count returns to baseline.
func TestOverloadFloodGate(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second loopback scenario")
	}
	before := runtime.NumGoroutine()
	var duringMax atomic.Int64
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				if n := int64(runtime.NumGoroutine()); n > duringMax.Load() {
					duringMax.Store(n)
				}
				time.Sleep(20 * time.Millisecond)
			}
		}
	}()

	res, err := RunOverload(overloadGateConfig())
	close(stop)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("pre=%.0f load=%.0f post=%.0f B/s recovery=%.2fs worst=%v recv=%+v",
		res.PreGoodput, res.LoadGoodput, res.PostGoodput,
		res.RecoverySecs, res.WorstState, res.Recv)

	if res.WorstState != overload.StateShed {
		t.Errorf("worst state %v, want shed (the flood must trip shedding)", res.WorstState)
	}
	if res.Recv.ShedScavenger == 0 {
		t.Error("no scavenger sheds under a 4× flood")
	}
	if res.Recv.ShedPrimary != 0 {
		t.Errorf("shed %d primary flows — class ordering violated", res.Recv.ShedPrimary)
	}
	if res.Recv.RejectedPrimary != 0 {
		t.Errorf("rejected %d primary admissions", res.Recv.RejectedPrimary)
	}
	if res.Recv.RejectedScavenger == 0 {
		t.Error("no remote scavenger refusals — admission gate never closed")
	}
	if res.Load.BusyRx == 0 {
		t.Error("flood senders never saw a BUSY push-back")
	}
	if res.LoadGoodput < 0.9*res.PreGoodput {
		t.Errorf("primary goodput under flood %.0f < 90%% of pre-flood %.0f",
			res.LoadGoodput, res.PreGoodput)
	}
	if res.RecoverySecs < 0 || res.RecoverySecs > 3 {
		t.Errorf("recovery %.2fs outside (0, 3]", res.RecoverySecs)
	}
	if res.PostGoodput < 0.9*res.PreGoodput {
		t.Errorf("post-recovery goodput %.0f < 90%% of pre-flood %.0f",
			res.PostGoodput, res.PreGoodput)
	}

	// Goroutines: bounded while shedding (phase engine + monitors),
	// and back to baseline once the harness tears down.
	if max := duringMax.Load(); max > int64(before)+16 {
		t.Errorf("goroutines grew to %d during the flood (baseline %d)", max, before)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Errorf("goroutines %d after teardown, baseline %d", after, before)
	}
}

// TestOverloadAckStarve drives the slow-receiver scenario: a starved
// population aimed at a mute endpoint sheds (pauses) its scavengers
// first and never touches a primary.
func TestOverloadAckStarve(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second loopback scenario")
	}
	cfg := overloadGateConfig()
	cfg.RecvFlowCap = 16
	cfg.Plan = overload.Plan{Phases: []overload.Phase{
		{Kind: overload.KindAckStarve, At: 0, Dur: 1.2, Flows: 40},
	}}
	res, err := RunOverload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("load=%+v addErrs=%d", res.Load, res.LoadAddErrs)
	if res.Load.Overload != overload.StateShed {
		t.Errorf("starved engine state %v, want shed", res.Load.Overload)
	}
	if res.Load.ShedScavenger == 0 || res.Load.Paused == 0 {
		t.Errorf("no scavengers paused under ack starvation: %+v", res.Load)
	}
	if res.Load.ShedPrimary != 0 {
		t.Errorf("ack starvation shed %d primaries", res.Load.ShedPrimary)
	}
	if res.LoadAddErrs == 0 {
		t.Error("starved engine never refused an admission at cap")
	}
	// The starved population is off on its own engine: the main
	// receiver must be completely unaffected.
	if res.Recv.ShedScavenger != 0 || res.Recv.Overload != overload.StateNormal {
		t.Errorf("receiver disturbed by ack-starve phase: %+v", res.Recv)
	}
}

// TestAddFlowScavengerGate covers the local admission path: a shard in
// Brownout refuses new scavenger AddFlow but admits primaries.
func TestAddFlowScavengerGate(t *testing.T) {
	eng, err := New(Config{MaxFlowsPerShard: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	// Force the single shard's mirror into Brownout.
	eng.shards[0].ovState.Store(uint32(overload.StateBrownout))
	dst := eng.Addrs()[0]
	if _, err := eng.AddFlow(FlowConfig{
		Dst: dst, CC: &FixedRateCC{Rate: 1}, Class: overload.ClassScavenger,
	}); err == nil {
		t.Fatal("scavenger AddFlow admitted under brownout")
	}
	if eng.Stats().RejectedScavenger != 1 {
		t.Fatalf("RejectedScavenger=%d want 1", eng.Stats().RejectedScavenger)
	}
	fl, err := eng.AddFlow(FlowConfig{Dst: dst, CC: &FixedRateCC{Rate: 1}})
	if err != nil {
		t.Fatalf("primary AddFlow refused under brownout: %v", err)
	}
	if wire.ScavengerID(fl.ID()) {
		t.Fatal("primary flow carries the scavenger class bit")
	}
	// Back to normal: scavenger admitted, class bit set on the wire ID.
	eng.shards[0].ovState.Store(uint32(overload.StateNormal))
	sfl, err := eng.AddFlow(FlowConfig{
		Dst: dst, CC: &FixedRateCC{Rate: 1}, Class: overload.ClassScavenger,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !wire.ScavengerID(sfl.ID()) {
		t.Fatal("scavenger flow ID missing the class bit")
	}
	st := eng.Stats()
	if st.AdmittedPrimary != 1 || st.AdmittedScavenger != 1 {
		t.Fatalf("admitted P=%d S=%d want 1,1", st.AdmittedPrimary, st.AdmittedScavenger)
	}
}
