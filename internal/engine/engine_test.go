package engine

import (
	"testing"
	"time"

	"pccproteus/internal/transport"
)

func TestLoopbackSmoke(t *testing.T) {
	const (
		flows = 32
		limit = 8 << 10
	)
	res, err := RunLoopback(LoopbackConfig{
		Flows:      flows,
		RecvShards: 2,
		PacketSize: 512,
		LimitBytes: limit,
		Duration:   20 * time.Second,
		Controller: func(i int) transport.Controller {
			return &FixedRateCC{Rate: 256 << 10}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != flows {
		t.Fatalf("completed %d/%d flows in %v (sender=%+v recv=%+v)",
			res.Completed, flows, res.Elapsed, res.Sender, res.Recv)
	}
	// Every payload byte was delivered (retransmits may add more
	// packets, but delivered distinct bytes ≥ payload per flow).
	minPayload := int64(flows) * limit
	if res.Recv.DeliveredBytes < minPayload {
		t.Fatalf("delivered %d bytes want ≥ %d", res.Recv.DeliveredBytes, minPayload)
	}
	if res.Recv.RxBatches == 0 || res.Sender.TxBatches == 0 {
		t.Fatalf("batch counters stuck: recv=%+v sender=%+v", res.Recv, res.Sender)
	}
	for _, fl := range res.Flows {
		st := fl.Stats()
		if st.AckedBytes < limit {
			t.Fatalf("flow %d acked %d/%d bytes", fl.ID(), st.AckedBytes, limit)
		}
	}
}

func TestLoopbackStreaming(t *testing.T) {
	// Unbounded flows stream until the deadline and never "complete".
	res, err := RunLoopback(LoopbackConfig{
		Flows:      4,
		PacketSize: 512,
		Duration:   300 * time.Millisecond,
		Controller: func(i int) transport.Controller {
			return &FixedRateCC{Rate: 128 << 10}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 0 {
		t.Fatalf("streaming flows reported complete: %d", res.Completed)
	}
	if res.Recv.Delivered == 0 {
		t.Fatalf("nothing delivered: %+v", res.Recv)
	}
}

func TestAddFlowValidation(t *testing.T) {
	e, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	if _, err := e.AddFlow(FlowConfig{}); err == nil {
		t.Fatal("AddFlow before Start must fail")
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	dst := e.Addrs()[0]
	if _, err := e.AddFlow(FlowConfig{Dst: dst}); err == nil {
		t.Fatal("AddFlow without controller must fail")
	}
	if _, err := e.AddFlow(FlowConfig{CC: &FixedRateCC{Rate: 1}}); err == nil {
		t.Fatal("AddFlow without destination must fail")
	}
	if _, err := e.AddFlow(FlowConfig{Dst: dst, CC: &FixedRateCC{Rate: 1}, PacketSize: 1 << 20}); err == nil {
		t.Fatal("oversized PacketSize must fail")
	}
	fl, err := e.AddFlow(FlowConfig{Dst: dst, CC: &FixedRateCC{Rate: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if fl.ID() == 0 {
		t.Fatal("flow ID must be nonzero (zero is the legacy v1 marker)")
	}
}
