package engine

import (
	"errors"
	"time"

	"pccproteus/internal/transport"
)

// LoopbackConfig drives RunLoopback: a sender engine and a receiver
// engine on the host loopback, with Flows sender flows spread across
// the receiver's shards.
type LoopbackConfig struct {
	Flows        int
	SenderShards int
	RecvShards   int
	BatchSize    int
	PacketSize   int
	LimitBytes   int64 // per-flow transfer size; 0 streams for Duration
	Duration     time.Duration
	// Controller builds one controller per flow (index 0..Flows-1).
	Controller func(i int) transport.Controller
	// MaxFlowsPerShard overrides the receiver-side table cap when >0.
	MaxFlowsPerShard int
}

// LoopbackResult summarizes a loopback run.
type LoopbackResult struct {
	Sender    Stats
	Recv      Stats
	Completed int // flows whose Done closed (finite transfers)
	Elapsed   time.Duration
	Flows     []*Flow
}

// RunLoopback stands up the two engines, runs the flows, and tears
// everything down. With LimitBytes set it waits (up to Duration,
// default 30s) for every flow to complete; otherwise it streams for
// Duration.
func RunLoopback(cfg LoopbackConfig) (*LoopbackResult, error) {
	if cfg.Flows <= 0 || cfg.Controller == nil {
		return nil, errors.New("engine: loopback needs Flows and Controller")
	}
	if cfg.SenderShards <= 0 {
		cfg.SenderShards = 1
	}
	if cfg.RecvShards <= 0 {
		cfg.RecvShards = 1
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 30 * time.Second
	}
	recv, err := New(Config{
		Shards: cfg.RecvShards, BatchSize: cfg.BatchSize,
		MaxFlowsPerShard: cfg.MaxFlowsPerShard,
	})
	if err != nil {
		return nil, err
	}
	snd, err := New(Config{Shards: cfg.SenderShards, BatchSize: cfg.BatchSize})
	if err != nil {
		recv.Stop()
		return nil, err
	}
	if err := recv.Start(); err != nil {
		recv.Stop()
		snd.Stop()
		return nil, err
	}
	if err := snd.Start(); err != nil {
		recv.Stop()
		snd.Stop()
		return nil, err
	}
	defer snd.Stop()
	defer recv.Stop()

	addrs := recv.Addrs()
	start := time.Now()
	flows := make([]*Flow, 0, cfg.Flows)
	for i := 0; i < cfg.Flows; i++ {
		fl, err := snd.AddFlow(FlowConfig{
			Dst:        addrs[i%len(addrs)],
			CC:         cfg.Controller(i),
			Limit:      cfg.LimitBytes,
			PacketSize: cfg.PacketSize,
		})
		if err != nil {
			return nil, err
		}
		flows = append(flows, fl)
	}

	res := &LoopbackResult{Flows: flows}
	deadline := time.After(cfg.Duration)
	if cfg.LimitBytes > 0 {
		// Wait for completions, bounded by the deadline.
	wait:
		for _, fl := range flows {
			select {
			case <-fl.Done():
				res.Completed++
			case <-deadline:
				break wait
			}
		}
		// Count any that finished while we were blocked elsewhere.
		if res.Completed < len(flows) {
			res.Completed = 0
			for _, fl := range flows {
				select {
				case <-fl.Done():
					res.Completed++
				default:
				}
			}
		}
	} else {
		<-deadline
	}
	res.Elapsed = time.Since(start)
	res.Sender = snd.Stats()
	res.Recv = recv.Stats()
	return res, nil
}
