//go:build linux && (amd64 || arm64)

package engine

// Batched socket I/O via raw recvmmsg/sendmmsg. The stdlib syscall
// package exposes the syscall numbers but not the wrappers, and the
// module deliberately takes no external dependencies, so the mmsghdr
// plumbing lives here. The struct layout below is the 64-bit one
// (struct msghdr is 56 bytes, so msg_len pads to an 8-byte boundary),
// which is why the build tag pins amd64/arm64 — every other platform
// takes the single-message fallback in batch_generic.go. Ports are
// stored byte-swapped into the raw sockaddrs because both supported
// architectures are little-endian while the kernel reads network
// byte order.
//
// All staging memory (headers, iovecs, sockaddrs) is preallocated at
// shard init, and the RawConn callbacks are bound once, so the
// per-batch syscall path allocates nothing.

import (
	"net/netip"
	"syscall"
	"time"
	"unsafe"
)

// mmsghdr mirrors struct mmsghdr on 64-bit Linux.
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
	_   [4]byte
}

// UDP GSO (generic segmentation offload): a UDP_SEGMENT control
// message turns one sendmsg into many equal-size datagrams split by
// the kernel, collapsing the dominant per-datagram socket/route cost
// into one traversal. The engine's tx batches group naturally — all
// of a flow's packets share one destination, and peer engines expose
// only a handful of shard addresses — so a flush becomes a few
// segmented sends instead of hundreds of entries. Probed per socket
// at init; absent support (pre-4.18 kernels) keeps the plain path.
const (
	solUDP     = 17
	udpSegment = 103
	udpGRO     = 104
	// gsoMaxSegs is the kernel's UDP_MAX_SEGMENTS floor; gsoMaxBytes
	// keeps the concatenated payload under the 16-bit UDP length.
	gsoMaxSegs  = 64
	gsoMaxBytes = 65000
	// gsoMaxDsts bounds the per-flush destination-grouping table; a
	// flush seeing more distinct destinations sends the overflow as
	// plain one-datagram entries.
	gsoMaxDsts = 16
	// groBufSize must hold the largest GRO super-skb the kernel can
	// coalesce (64KiB), else the tail would truncate; groMaxSlots caps
	// how many such buffers a shard stages, since one slot now carries
	// a whole train of datagrams.
	groBufSize  = 1 << 16
	groMaxSlots = 128
)

// cmsgGSO is CMSG_SPACE(2) worth of control data: a cmsghdr (16
// bytes, cmsg_len = CMSG_LEN(2) = 18) carrying the uint16 segment
// size, padded to the 8-byte cmsg alignment.
type cmsgGSO struct {
	clen  uint64
	level int32
	typ   int32
	size  uint16
	_     [6]byte
}

// cmsgGRO receives the kernel's UDP_GRO segment-size annotation on a
// coalesced datagram: same cmsghdr, int-sized payload.
type cmsgGRO struct {
	clen  uint64
	level int32
	typ   int32
	size  int32
	_     [4]byte
}

// mmsgState is the preallocated staging area for one shard's batched
// reads and writes, plus the bound RawConn callbacks.
type mmsgState struct {
	rc syscall.RawConn

	rhdrs  []mmsghdr
	riovs  []syscall.Iovec
	rnames []syscall.RawSockaddrInet6
	rctrl  []cmsgGRO
	gro    bool

	whdrs  []mmsghdr
	wiovs  []syscall.Iovec
	wnames []syscall.RawSockaddrInet6

	// GSO staging: per-entry control messages and segment counts, and
	// the per-flush destination-grouping table.
	gso    bool
	wctrl  []cmsgGSO
	wsegs  []int
	gdst   [gsoMaxDsts]netip.AddrPort
	gidx   [gsoMaxDsts][]int
	gflat  []int // overflow: packets sent as plain entries

	readFn  func(fd uintptr) bool
	writeFn func(fd uintptr) bool

	rGot  int
	rErr  syscall.Errno
	wOff  int
	wTot  int
	wErr  syscall.Errno
	wSkip int64 // datagrams dropped on per-message send errors
	wSoft bool  // last flush attempt hit ENOBUFS/ENOMEM (retryable)
}

func (sh *shard) initBatch() {
	rc, err := sh.conn.SyscallConn()
	if err != nil {
		// Leave m.rc nil: readBatch degrades to the closed path and the
		// engine reports nothing sendable — in practice SyscallConn on a
		// healthy *net.UDPConn does not fail.
		return
	}
	m := &sh.mmsg
	m.rc = rc
	n := sh.batchSize
	m.whdrs = make([]mmsghdr, n)
	m.wiovs = make([]syscall.Iovec, n)
	m.wnames = make([]syscall.RawSockaddrInet6, n)
	m.wctrl = make([]cmsgGSO, n)
	m.wsegs = make([]int, n)
	for i := range m.gidx {
		m.gidx[i] = make([]int, 0, n)
	}
	m.gflat = make([]int, 0, n)
	rc.Control(func(fd uintptr) {
		// Setting UDP_SEGMENT to 0 is a no-op that succeeds exactly
		// when the kernel implements UDP GSO. UDP_GRO=1 asks the
		// kernel to coalesce bursts of same-flow datagrams into one
		// buffer annotated with the segment size.
		m.gso = syscall.SetsockoptInt(int(fd), solUDP, udpSegment, 0) == nil
		m.gro = syscall.SetsockoptInt(int(fd), solUDP, udpGRO, 1) == nil
	})
	rn, bufSize := n, sh.maxPacket
	if m.gro {
		// A GRO slot holds a whole coalesced train, so fewer, bigger
		// buffers: anything smaller than the 64KiB super-skb ceiling
		// would truncate coalesced tails.
		if rn > groMaxSlots {
			rn = groMaxSlots
		}
		bufSize = groBufSize
		sh.rxBufs = make([][]byte, rn)
		for i := range sh.rxBufs {
			sh.rxBufs[i] = make([]byte, bufSize)
		}
		sh.rxLens = make([]int, rn)
		sh.rxSrcs = make([]netip.AddrPort, rn)
		sh.rxSegs = make([]int, rn)
	}
	m.rhdrs = make([]mmsghdr, rn)
	m.riovs = make([]syscall.Iovec, rn)
	m.rnames = make([]syscall.RawSockaddrInet6, rn)
	m.rctrl = make([]cmsgGRO, rn)
	for i := 0; i < rn; i++ {
		m.riovs[i].Base = &sh.rxBufs[i][0]
		m.riovs[i].SetLen(bufSize)
		m.rhdrs[i].hdr.Name = (*byte)(unsafe.Pointer(&m.rnames[i]))
		m.rhdrs[i].hdr.Namelen = syscall.SizeofSockaddrInet6
		m.rhdrs[i].hdr.Iov = &m.riovs[i]
		m.rhdrs[i].hdr.Iovlen = 1
		if m.gro {
			m.rhdrs[i].hdr.Control = (*byte)(unsafe.Pointer(&m.rctrl[i]))
			m.rhdrs[i].hdr.SetControllen(24)
		}
	}
	for i := 0; i < n; i++ {
		m.whdrs[i].hdr.Name = (*byte)(unsafe.Pointer(&m.wnames[i]))
		m.whdrs[i].hdr.Iov = &m.wiovs[i]
		m.whdrs[i].hdr.Iovlen = 1
	}
	m.readFn = func(fd uintptr) bool {
		r1, _, errno := syscall.Syscall6(sysRECVMMSG, fd,
			uintptr(unsafe.Pointer(&m.rhdrs[0])), uintptr(len(m.rhdrs)),
			syscall.MSG_DONTWAIT, 0, 0)
		if errno == syscall.EAGAIN {
			return false // park on the netpoller until readable
		}
		m.rErr = errno
		if errno == 0 {
			m.rGot = int(r1)
		}
		return true
	}
	m.writeFn = func(fd uintptr) bool {
		r1, _, errno := syscall.Syscall6(sysSENDMMSG, fd,
			uintptr(unsafe.Pointer(&m.whdrs[m.wOff])), uintptr(m.wTot-m.wOff),
			syscall.MSG_DONTWAIT, 0, 0)
		if errno == syscall.EAGAIN {
			return false // park until writable
		}
		if errno == syscall.ENOBUFS || errno == syscall.ENOMEM {
			// Kernel buffer exhaustion: the message is fine, the host is
			// not. Retryable — writeBatch backs off and resends the same
			// offset instead of dropping.
			m.wErr = errno
			m.wSoft = true
			return true
		}
		if errno != 0 {
			// sendmmsg reports an errno only when the *first* message
			// failed; skip it so the batch cannot spin, and let the
			// remainder go out on the next pass.
			m.wErr = errno
			m.wSkip += int64(m.wsegs[m.wOff])
			m.wOff++
			return true
		}
		m.wOff += int(r1)
		return true
	}
}

// readBatch stages up to batchSize datagrams in one recvmmsg. Returns
// the count (0 on deadline, so timers run), or -1 on a closed socket.
func (sh *shard) readBatch(deadline time.Time) int {
	m := &sh.mmsg
	if m.rc == nil {
		return -1
	}
	sh.conn.SetReadDeadline(deadline)
	// Namelen and Controllen are value-result: restore before every
	// syscall, and clear the stale control payload.
	for i := range m.rhdrs {
		m.rhdrs[i].hdr.Namelen = syscall.SizeofSockaddrInet6
		if m.gro {
			m.rhdrs[i].hdr.SetControllen(24)
			m.rctrl[i] = cmsgGRO{}
		}
	}
	m.rGot, m.rErr = 0, 0
	err := m.rc.Read(m.readFn)
	if err != nil {
		if isTimeout(err) {
			return 0
		}
		return -1
	}
	if m.rErr != 0 {
		// Transient receive error (e.g. queued ICMP): count nothing,
		// keep the loop alive.
		return 0
	}
	got := m.rGot
	for i := 0; i < got; i++ {
		sh.rxLens[i] = int(m.rhdrs[i].n)
		sh.rxSrcs[i] = sockaddrToAddrPort(&m.rnames[i])
		sh.rxSegs[i] = 0
		if m.gro {
			if c := &m.rctrl[i]; c.level == solUDP && c.typ == udpGRO && c.size > 0 {
				sh.rxSegs[i] = int(c.size)
			}
		}
	}
	return got
}

// writeBatch sends every staged packet with as few sendmmsg calls as
// partial sends allow, coalescing same-destination runs into UDP GSO
// segmented sends when the kernel supports them. Undeliverable
// datagrams are dropped — UDP semantics, same as the fallback path.
func (sh *shard) writeBatch(pkts [][]byte, addrs []netip.AddrPort) {
	m := &sh.mmsg
	if m.rc == nil {
		return
	}
	if m.gso {
		m.wTot = sh.buildGSO(pkts, addrs)
	} else {
		for i := range pkts {
			m.wiovs[i].Base = &pkts[i][0]
			m.wiovs[i].SetLen(len(pkts[i]))
			m.whdrs[i].hdr.Iov = &m.wiovs[i]
			m.whdrs[i].hdr.Iovlen = 1
			m.whdrs[i].hdr.Namelen = putSockaddr(&m.wnames[i], addrs[i], sh.v6)
			m.wsegs[i] = 1
		}
		m.wTot = len(pkts)
	}
	m.wOff = 0
	sh.conn.SetWriteDeadline(time.Now().Add(10 * time.Millisecond))
	// ENOBUFS/ENOMEM adaptive backoff: the socket stays "writable" (no
	// netpoller park), so spinning would burn the core while starving
	// the kernel of the grace it needs to drain. Micro-sleep with
	// doubling instead, retrying the same offset; after the retry
	// budget, fall back to dropping the head message so the flush
	// always terminates inside the write deadline.
	softSleep := 50 * time.Microsecond
	softTries, sawSoft := 0, false
	for m.wOff < m.wTot {
		m.wSoft = false
		if err := m.rc.Write(m.writeFn); err != nil {
			sh.noteTxFlush(pkts, true)
			return // closed or write-deadline: drop the remainder
		}
		if m.wSoft {
			sawSoft = true
			sh.ctr.txSoftErrs.Add(1)
			if softTries++; softTries > 6 {
				m.wSkip += int64(m.wsegs[m.wOff])
				m.wOff++
				continue
			}
			time.Sleep(softSleep)
			if softSleep < 2*time.Millisecond {
				softSleep *= 2
			}
		}
	}
	sh.noteTxFlush(pkts, sawSoft)
}

// noteTxFlush feeds the overload detector's tx signals after a flush:
// the soft-error streak and the unsent fraction of this batch.
func (sh *shard) noteTxFlush(pkts [][]byte, soft bool) {
	m := &sh.mmsg
	if soft {
		sh.txErrStreak++
	} else {
		sh.txErrStreak = 0
	}
	unsent := 0
	for i := m.wOff; i < m.wTot; i++ {
		unsent += m.wsegs[i]
	}
	sh.txBacklog = float64(unsent) / float64(len(pkts))
}

// buildGSO stages the flush as segmented sendmmsg entries: packets
// are bucketed by destination (order within a destination — and so
// within a flow — is preserved), and each bucket becomes runs of
// equal-size segments sharing one msghdr, the kernel splitting them
// back into datagrams. A run closes at gsoMaxSegs, at the UDP length
// ceiling, or on a size change — a single smaller packet may close a
// run as its final short segment. Returns the entry count.
func (sh *shard) buildGSO(pkts [][]byte, addrs []netip.AddrPort) int {
	m := &sh.mmsg
	nd := 0
	m.gflat = m.gflat[:0]
	for i := range addrs {
		d := 0
		for d < nd && m.gdst[d] != addrs[i] {
			d++
		}
		if d == nd {
			if nd == gsoMaxDsts {
				m.gflat = append(m.gflat, i)
				continue
			}
			m.gdst[nd] = addrs[i]
			m.gidx[nd] = m.gidx[nd][:0]
			nd++
		}
		m.gidx[d] = append(m.gidx[d], i)
	}
	e, iov := 0, 0
	put := func(idxs []int, dst netip.AddrPort) {
		for len(idxs) > 0 {
			segSize := len(pkts[idxs[0]])
			segs, bytes := 0, 0
			for _, i := range idxs {
				sz := len(pkts[i])
				if segs == gsoMaxSegs || bytes+sz > gsoMaxBytes || sz > segSize {
					break
				}
				m.wiovs[iov+segs].Base = &pkts[i][0]
				m.wiovs[iov+segs].SetLen(sz)
				segs++
				bytes += sz
				if sz < segSize {
					break // shorter packet: legal only as the final segment
				}
			}
			h := &m.whdrs[e].hdr
			h.Iov = &m.wiovs[iov]
			h.Iovlen = uint64(segs)
			h.Namelen = putSockaddr(&m.wnames[e], dst, sh.v6)
			if segs > 1 {
				m.wctrl[e] = cmsgGSO{clen: 18, level: solUDP, typ: udpSegment, size: uint16(segSize)}
				h.Control = (*byte)(unsafe.Pointer(&m.wctrl[e]))
				h.SetControllen(24)
			} else {
				h.Control = nil
				h.SetControllen(0)
			}
			m.wsegs[e] = segs
			e++
			iov += segs
			idxs = idxs[segs:]
		}
	}
	for d := 0; d < nd; d++ {
		put(m.gidx[d], m.gdst[d])
	}
	// Overflow destinations (beyond the grouping table): one plain
	// entry per packet.
	for _, i := range m.gflat {
		m.wiovs[iov].Base = &pkts[i][0]
		m.wiovs[iov].SetLen(len(pkts[i]))
		h := &m.whdrs[e].hdr
		h.Iov = &m.wiovs[iov]
		h.Iovlen = 1
		h.Namelen = putSockaddr(&m.wnames[e], addrs[i], sh.v6)
		h.Control = nil
		h.SetControllen(0)
		m.wsegs[e] = 1
		e++
		iov++
	}
	return e
}

// putSockaddr fills sa for dst and returns the sockaddr length. v4
// destinations on a v6 socket use the 4-in-6 mapped form.
func putSockaddr(sa *syscall.RawSockaddrInet6, dst netip.AddrPort, v6 bool) uint32 {
	port := dst.Port()
	if !v6 {
		sa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		sa4.Family = syscall.AF_INET
		sa4.Port = port<<8 | port>>8
		sa4.Addr = dst.Addr().Unmap().As4()
		return syscall.SizeofSockaddrInet4
	}
	sa.Family = syscall.AF_INET6
	sa.Port = port<<8 | port>>8
	sa.Addr = dst.Addr().As16()
	return syscall.SizeofSockaddrInet6
}

// sockaddrToAddrPort decodes a kernel-filled source sockaddr,
// unmapping 4-in-6 so flow-table keys are uniform across socket
// families.
func sockaddrToAddrPort(sa *syscall.RawSockaddrInet6) netip.AddrPort {
	switch sa.Family {
	case syscall.AF_INET:
		sa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		return netip.AddrPortFrom(netip.AddrFrom4(sa4.Addr), sa4.Port<<8|sa4.Port>>8)
	case syscall.AF_INET6:
		return netip.AddrPortFrom(netip.AddrFrom16(sa.Addr).Unmap(), sa.Port<<8|sa.Port>>8)
	}
	return netip.AddrPort{}
}
