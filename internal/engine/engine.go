package engine

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"

	"pccproteus/internal/netem"
	"pccproteus/internal/overload"
	"pccproteus/internal/transport"
	"pccproteus/internal/wire"
)

// Config sizes an Engine. The zero value is usable: one shard, batch
// of 32, 2KiB packets.
type Config struct {
	// Shards is the number of event loops (and sockets). Default 1.
	Shards int
	// BatchSize is the number of datagrams staged per socket syscall
	// (recvmmsg/sendmmsg on Linux). Default 32.
	BatchSize int
	// MaxPacket is the largest datagram the engine sends or receives.
	// Default 2048; must cover every flow's PacketSize and MaxAckLen.
	MaxPacket int
	// MaxFlowsPerShard caps each shard's flow table; receiver-side
	// flows beyond it evict the stalest. Default 16384.
	MaxFlowsPerShard int
	// IdleTimeout evicts idle flows after this many seconds.
	// Default 60.
	IdleTimeout float64
	// ListenIP is the bind address for shard sockets ("127.0.0.1"
	// default). Each shard takes its own ephemeral port.
	ListenIP string
	// ListenPort, when nonzero, binds shard i to ListenPort+i instead
	// of an ephemeral port — for daemons that must advertise their
	// shard addresses up front.
	ListenPort int
	// Overload tunes the per-shard brownout detector (zero value =
	// overload.Config defaults).
	Overload overload.Config
	// Seed derives the per-shard jitter RNGs (BUSY retry backoff).
	// Zero is a fixed default, so runs are reproducible by default.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.MaxPacket <= 0 {
		c.MaxPacket = 2048
	}
	if c.MaxPacket < wire.MaxAckLen {
		c.MaxPacket = wire.MaxAckLen
	}
	if c.MaxFlowsPerShard <= 0 {
		c.MaxFlowsPerShard = 1 << 14
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 60
	}
	if c.ListenIP == "" {
		c.ListenIP = "127.0.0.1"
	}
	return c
}

// FlowConfig describes one sender flow.
type FlowConfig struct {
	// Dst is the peer (an engine shard or a legacy receiver — both
	// speak the version-2 ack exchange).
	Dst netip.AddrPort
	// CC is the flow's congestion controller. Each flow needs its own
	// instance: callbacks run on the owning shard's goroutine.
	CC transport.Controller
	// Limit bounds the transfer in bytes (lost bytes re-credited);
	// zero streams until Stop.
	Limit int64
	// PacketSize is the on-wire datagram size (default netem.MTU,
	// clamped to the engine's MaxPacket).
	PacketSize int
	// Burst is the pacing-train length (default transport.DefaultBurst).
	Burst int
	// RecordRTT keeps every per-ack RTT sample for Flow.RTTSamples —
	// measurement harnesses only; leave off on production flows.
	RecordRTT bool
	// Class orders the flow under host overload: scavenger flows are
	// paused/shed and refused admission before any primary flow is
	// touched. The zero value is primary (never shed); use
	// overload.ClassOf(protoName) to classify by controller name. The
	// class is carried in the top bit of the wire flow ID so the
	// receiving engine sheds class-aware too.
	Class overload.Class
}

// Flow is the cross-goroutine handle for one sender flow.
type Flow struct {
	id  uint32
	dst netip.AddrPort
	s   *senderFlow
}

// ID returns the engine-assigned wire flow ID (nonzero).
func (fl *Flow) ID() uint32 { return fl.id }

// Done is closed once a finite transfer is fully acked.
func (fl *Flow) Done() <-chan struct{} { return fl.s.done }

// FlowStats is a point-in-time snapshot of one flow's counters.
type FlowStats struct {
	SentPkts   int64
	SentBytes  int64
	AckedPkts  int64
	AckedBytes int64
	LostPkts   int64
	LostBytes  int64
	SRTT       float64
}

// RTTSamples returns a copy of the per-ack RTT samples recorded so
// far (seconds); always empty unless the flow was added with
// RecordRTT. Safe to call while the flow runs.
func (fl *Flow) RTTSamples() []float64 {
	fl.s.rttMu.Lock()
	defer fl.s.rttMu.Unlock()
	return append([]float64(nil), fl.s.rttSamples...)
}

// Stats snapshots the flow's counters (safe while the flow runs).
func (fl *Flow) Stats() FlowStats {
	return FlowStats{
		SentPkts: fl.s.sentPkts.Load(), SentBytes: fl.s.sentBytes.Load(),
		AckedPkts: fl.s.ackedPkts.Load(), AckedBytes: fl.s.ackedBytes.Load(),
		LostPkts: fl.s.lostPkts.Load(), LostBytes: fl.s.lostBytes.Load(),
		SRTT: float64(fl.s.srttNanos.Load()) / 1e9,
	}
}

// Stats aggregates every shard's counters.
type Stats struct {
	RxPkts         int64 // valid datagrams dispatched to flows
	RxBatches      int64
	RxDups         int64
	TxPkts         int64
	TxBatches      int64
	BadPkts        int64
	BadAcks        int64
	Evicted        int64
	Rebinds        int64 // (addr,flowID) collisions reset as new flows
	Delivered      int64 // distinct data packets received
	DeliveredBytes int64
	Flows          int

	// Overload surface: per-class admission/degradation counters plus
	// the worst shard's brownout state and pressure. The invariant the
	// shed ordering promises — and the overload gate asserts — is that
	// ShedPrimary stays 0 while any scavenger exists to shed.
	AdmittedPrimary   int64 // AddFlow successes per class
	AdmittedScavenger int64
	RejectedPrimary   int64 // primary AddFlow refusals (hard cap only)
	RejectedScavenger int64 // scavenger refusals: local AddFlow + remote BUSY
	ShedPrimary       int64 // primary recv flows evicted at the table cap
	ShedScavenger     int64 // scavenger flows paused, evicted, or shed
	BusyTx            int64 // BUSY frames sent (refusals + sheds)
	BusyRx            int64 // BUSY frames received (we were pushed back)
	TxSoftErrs        int64 // ENOBUFS/ENOMEM-class tx flush errors
	Paused            int64 // local scavenger senders currently paused
	Overload          overload.State // worst shard's current state
	WorstOverload     overload.State // worst state any shard ever entered
	Pressure          float64
}

// Engine runs wire flows on a fixed set of shard event loops. Create
// with New, Start it, add flows, Stop when done.
type Engine struct {
	cfg     Config
	clock   wire.Clock
	shards  []*shard
	nextID  atomic.Uint32
	rr      atomic.Uint32
	senders atomic.Int64 // admitted sender flows, for the AddFlow cap
	done    chan struct{}

	// Per-class admission accounting (AddFlow runs on caller
	// goroutines, so these live on the engine, not a shard).
	admitPrim  atomic.Int64
	admitScav  atomic.Int64
	rejectPrim atomic.Int64
	rejectScav atomic.Int64

	started  bool
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New opens one socket per shard and builds the engine.
func New(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	ip := net.ParseIP(cfg.ListenIP)
	if ip == nil {
		return nil, fmt.Errorf("engine: bad listen IP %q", cfg.ListenIP)
	}
	e := &Engine{cfg: cfg, clock: wire.NewClock(), done: make(chan struct{})}
	for i := 0; i < cfg.Shards; i++ {
		port := 0
		if cfg.ListenPort != 0 {
			port = cfg.ListenPort + i
		}
		conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: ip, Port: port})
		if err != nil {
			for _, sh := range e.shards {
				sh.conn.Close()
			}
			return nil, err
		}
		// As large as default net.core.{r,w}mem_max allow: at engine
		// rates a shard can be heads-down in timer work for a full
		// batch's duration, and skb overhead (~2× truesize for small
		// datagrams) halves the effective packet capacity.
		conn.SetReadBuffer(1 << 22)
		conn.SetWriteBuffer(1 << 22)
		e.shards = append(e.shards, newShard(e, i, conn))
	}
	return e, nil
}

// Start launches the shard loops.
func (e *Engine) Start() error {
	if e.started {
		return errors.New("engine: already started")
	}
	e.started = true
	for _, sh := range e.shards {
		e.wg.Add(1)
		go sh.loop()
	}
	return nil
}

// Stop terminates every shard loop and closes the sockets. Safe to
// call more than once.
func (e *Engine) Stop() {
	e.stopOnce.Do(func() {
		close(e.done)
		for _, sh := range e.shards {
			sh.conn.Close()
		}
	})
	e.wg.Wait()
}

// Addrs returns each shard's listening address. Flows land on the
// shard whose socket receives their packets, so a peer engine spreads
// its flows across these.
func (e *Engine) Addrs() []netip.AddrPort {
	out := make([]netip.AddrPort, len(e.shards))
	for i, sh := range e.shards {
		out[i] = sh.local
	}
	return out
}

// AddFlow admits one sender flow, assigning it a unique nonzero flow
// ID and a shard (round-robin). The flow starts sending within one
// shard wake (≤1ms).
func (e *Engine) AddFlow(fc FlowConfig) (*Flow, error) {
	if !e.started {
		return nil, errors.New("engine: AddFlow before Start")
	}
	if fc.CC == nil {
		return nil, errors.New("engine: flow needs a controller")
	}
	if !fc.Dst.IsValid() {
		return nil, errors.New("engine: flow needs a destination")
	}
	if fc.PacketSize <= 0 {
		fc.PacketSize = netem.MTU
	}
	if fc.PacketSize < wire.DataHeaderLenV2 {
		return nil, errors.New("engine: packet size below header size")
	}
	if fc.PacketSize > e.cfg.MaxPacket {
		return nil, fmt.Errorf("engine: packet size %d exceeds MaxPacket %d",
			fc.PacketSize, e.cfg.MaxPacket)
	}
	if fc.Burst <= 0 {
		fc.Burst = transport.DefaultBurst
	}
	// Admission control happens here, before the flow touches a shard:
	// a rejected flow must cost nothing. The shard is picked first so
	// scavenger admission can be gated on that shard's brownout state.
	sh := e.shards[int(e.rr.Add(1)-1)%len(e.shards)]
	if fc.Class == overload.ClassScavenger {
		if st := sh.overloadState(); !st.AdmitScavenger() {
			e.rejectScav.Add(1)
			return nil, fmt.Errorf("engine: shard %d %s: scavenger admission refused", sh.idx, st)
		}
	}
	flowCap := int64(e.cfg.Shards) * int64(e.cfg.MaxFlowsPerShard)
	if e.senders.Add(1) > flowCap {
		e.senders.Add(-1)
		if fc.Class == overload.ClassScavenger {
			e.rejectScav.Add(1)
		} else {
			e.rejectPrim.Add(1)
		}
		return nil, fmt.Errorf("engine: flow cap %d reached", flowCap)
	}
	id := e.nextID.Add(1)
	if fc.Class == overload.ClassScavenger {
		// The class rides the top bit of the wire flow ID, so the
		// receiving engine sheds class-aware without extra header bytes.
		id |= wire.FlowClassScavenger
	}
	s := &senderFlow{
		cc: fc.CC, limit: fc.Limit, burst: fc.Burst,
		packetSize: fc.PacketSize, done: make(chan struct{}),
		recordRTT: fc.RecordRTT, class: fc.Class,
	}
	s.pacer.Cap = float64(2 * fc.Burst * fc.PacketSize)
	f := &flow{
		key: flowKey{addr: netip.AddrPortFrom(fc.Dst.Addr().Unmap(), fc.Dst.Port()), id: id},
		snd: s,
	}
	if fc.Class == overload.ClassScavenger {
		e.admitScav.Add(1)
	} else {
		e.admitPrim.Add(1)
	}
	sh.enqueue(f)
	return &Flow{id: id, dst: fc.Dst, s: s}, nil
}

// severityState maps a stored worst-severity rank back to the state
// that rank represents (the inverse of overload.State.Severity).
func severityState(sev uint32) overload.State {
	switch sev {
	case 1:
		return overload.StateRecover
	case 2:
		return overload.StateBrownout
	case 3:
		return overload.StateShed
	}
	return overload.StateNormal
}

// Stats aggregates all shards.
func (e *Engine) Stats() Stats {
	st := Stats{
		AdmittedPrimary:   e.admitPrim.Load(),
		AdmittedScavenger: e.admitScav.Load(),
		RejectedPrimary:   e.rejectPrim.Load(),
		RejectedScavenger: e.rejectScav.Load(),
	}
	for _, sh := range e.shards {
		st.RxPkts += sh.ctr.rxPkts.Load()
		st.RxBatches += sh.ctr.rxBatches.Load()
		st.RxDups += sh.ctr.rxDups.Load()
		st.TxPkts += sh.ctr.txPkts.Load()
		st.TxBatches += sh.ctr.txBatches.Load()
		st.BadPkts += sh.ctr.bad.Load()
		st.BadAcks += sh.ctr.badAcks.Load()
		st.Evicted += sh.ctr.evicted.Load()
		st.Rebinds += sh.ctr.rebinds.Load()
		st.Delivered += sh.ctr.delivered.Load()
		st.DeliveredBytes += sh.ctr.deliveredBytes.Load()
		st.Flows += int(sh.flowGauge.Load())
		st.RejectedScavenger += sh.ctr.rejectScav.Load()
		st.ShedPrimary += sh.ctr.shedPrim.Load()
		st.ShedScavenger += sh.ctr.shedScav.Load()
		st.BusyTx += sh.ctr.busyTx.Load()
		st.BusyRx += sh.ctr.busyRx.Load()
		st.TxSoftErrs += sh.ctr.txSoftErrs.Load()
		st.Paused += sh.ctr.paused.Load()
		if s := sh.overloadState(); s.Severity() > st.Overload.Severity() {
			st.Overload = s
		}
		if w := severityState(sh.ovWorst.Load()); w.Severity() > st.WorstOverload.Severity() {
			st.WorstOverload = w
		}
		if p := sh.pressureMirror(); p > st.Pressure {
			st.Pressure = p
		}
	}
	return st
}
