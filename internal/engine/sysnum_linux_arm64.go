//go:build linux && arm64

package engine

// arm64 syscall table: recvmmsg 243, sendmmsg 269.
const (
	sysRECVMMSG = 243
	sysSENDMMSG = 269
)
