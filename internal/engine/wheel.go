// Package engine is the sharded event-loop datapath: many wire flows
// multiplexed onto a small fixed set of shards, each shard one
// goroutine owning one UDP socket, a flow table, and a pacing wheel.
// It replaces the legacy two-goroutines-per-flow wire datapath when
// flow counts reach the thousands, reusing the wire codecs, pacer,
// and transport.Controller machinery unchanged — only the concurrency
// architecture differs (cf. the rx-loop/worker-lcore split in DPDK
// forwarders).
package engine

import "math"

// Wheel geometry: 512 slots of 500µs give a 256ms horizon. Deadlines
// beyond the horizon clamp to the last slot and re-arm on fire; at
// engine rates (per-flow wakes every ≲1ms) the horizon is never hit
// in steady state, only by idle flows' slow ticks.
const (
	wheelSlots = 512
	wheelGran  = 500e-6
)

// wheelEntry is one armed timer. Entries are one-shot and lazily
// cancelled: re-arming a flow bumps its generation, so a stale entry
// left in an old slot no longer matches and is dropped when its slot
// fires. This keeps arm() append-only — no list surgery, and slot
// slices keep their capacity, so steady-state arming never allocates.
type wheelEntry struct {
	f   *flow
	gen uint64
}

// wheel merges every flow's next-service deadline into one timer per
// shard: the event loop asks next() how long it may block in the
// batched socket read, then advance() fires everything due. Owned by
// exactly one shard goroutine; no locking.
type wheel struct {
	slots   [wheelSlots][]wheelEntry
	cur     int     // slot whose window starts at curTime
	curTime float64 // slot-aligned time of slots[cur]
	armed   int     // live (non-stale) entries, for next()'s fast path
	inited  bool
}

func (w *wheel) init(now float64) {
	w.curTime = math.Floor(now/wheelGran) * wheelGran
	w.cur = 0
	w.inited = true
}

// arm schedules f for service at deadline at (clock seconds). Any
// previously armed deadline for f is superseded.
func (w *wheel) arm(f *flow, at float64) {
	if !w.inited {
		w.init(at)
	}
	if f.armed {
		w.armed-- // superseding a live entry: it just went stale
	}
	f.gen++
	f.deadline = at
	f.armed = true
	// Everything lands at least one slot ahead: arm() is called from
	// fire callbacks while advance() drains the current slot, and an
	// append into the slot being drained would clobber the snapshot.
	// The cost is slot-granularity deferral for already-due deadlines,
	// which the advance loop picks up on its very next slot step.
	idx := 1
	if at > w.curTime {
		idx = int((at-w.curTime)/wheelGran) + 1
		if idx >= wheelSlots {
			idx = wheelSlots - 1 // clamp: re-armed on fire
		}
	}
	slot := (w.cur + idx) % wheelSlots
	w.slots[slot] = append(w.slots[slot], wheelEntry{f: f, gen: f.gen})
	w.armed++
}

// advance walks the wheel up to now, invoking fire for every flow
// whose deadline has arrived. Entries whose deadline is still in the
// future (horizon clamps) are silently re-armed.
func (w *wheel) advance(now float64, fire func(*flow)) {
	if !w.inited {
		w.init(now)
	}
	if w.armed == 0 && now-w.curTime > wheelGran {
		// Fast-forward an idle wheel instead of stepping through every
		// empty granule of a long sleep.
		w.curTime = math.Floor(now/wheelGran) * wheelGran
	}
	for w.curTime <= now {
		slot := w.cur
		entries := w.slots[slot]
		w.slots[slot] = w.slots[slot][:0]
		for i, e := range entries {
			entries[i] = wheelEntry{} // drop the *flow reference
			if e.gen != e.f.gen || !e.f.armed {
				continue // stale: superseded or disarmed
			}
			if e.f.deadline > now+wheelGran {
				// Horizon-clamped (or slot-rounded) early fire: push it
				// back out without servicing.
				e.f.armed = false
				w.armed--
				w.arm(e.f, e.f.deadline)
				continue
			}
			e.f.armed = false
			w.armed--
			fire(e.f)
		}
		w.cur = (w.cur + 1) % wheelSlots
		w.curTime += wheelGran
	}
}

// next returns the earliest armed deadline, or +Inf when nothing is
// armed. It scans forward from the current slot — at most wheelSlots
// iterations, and in the common case the first busy slot is close.
func (w *wheel) next() float64 {
	if w.armed == 0 {
		return math.Inf(1)
	}
	for i := 0; i < wheelSlots; i++ {
		slot := (w.cur + i) % wheelSlots
		best := math.Inf(1)
		for _, e := range w.slots[slot] {
			if e.gen == e.f.gen && e.f.armed && e.f.deadline < best {
				best = e.f.deadline
			}
		}
		if !math.IsInf(best, 1) {
			return best
		}
	}
	return math.Inf(1)
}
