package engine

import (
	"math"
	"net/netip"
	"sync"
	"sync/atomic"

	"pccproteus/internal/overload"
	"pccproteus/internal/transport"
	"pccproteus/internal/wire"
)

// flowKey identifies one flow on a shard: peer address plus the wire
// flow ID. Engine-originated flows always carry nonzero IDs (the
// engine allocator starts at 1), so ID 0 marks legacy version-1
// traffic, which is keyed by source address alone exactly as the
// legacy Receiver keys it.
type flowKey struct {
	addr netip.AddrPort
	id   uint32
}

// flow is one event-loop citizen: the wheel bookkeeping shared by
// both roles plus exactly one of the two role states. Owned by a
// single shard goroutine; the only cross-goroutine reads are the
// atomic counters inside senderFlow/recvFlow.
type flow struct {
	key flowKey

	// Pacing-wheel intrusive state (see wheel.go): gen lazily cancels
	// superseded entries, armed marks a live one.
	gen      uint64
	deadline float64
	armed    bool

	lastSeen float64 // shard-clock seconds of the last packet either way

	snd *senderFlow // exactly one of snd/rcv is non-nil
	rcv *recvFlow
}

// Datapath constants mirroring the legacy wire.Sender so the engine's
// per-flow behavior is the same protocol, only batched differently.
const (
	dupAckThreshold = 3
	rtoCheckEvery   = 0.010
	maxRTOBackoff   = 4
	maxRTOCap       = 3.0
	maxUnackedRecs  = 1 << 16
	schedSlack      = 0.25
	// ackPoll is the wake cadence while window- or limit-gated (the
	// legacy sender's maxSleep); minWake is the shortest pacing sleep
	// worth scheduling (its minSleep).
	ackPoll = 0.001
	minWake = 50e-6
)

// rec is the sender-side record of one in-flight packet; identical in
// meaning to the legacy wireRec (scheduled send time vs wall emission
// time), recycled through a per-flow freelist.
type rec struct {
	seq    int64
	size   int
	sentAt float64 // scheduled (token-bucket timeline) send time
	wallAt float64 // actual emission time, for loss aging
	mi     int64
	acked  bool
	lost   bool
}

// senderFlow drives one congestion-controlled flow from shard events:
// pump() on timer fires, onAck() on ack arrival. It is the legacy
// wire.Sender state machine with the goroutines, mutex, and
// outage-probe machinery stripped out — RTO backoff remains the
// dead-path backstop. All methods run on the owning shard goroutine.
type senderFlow struct {
	cc         transport.Controller
	rtt        transport.RTTEstimator
	pacer      wire.Pacer
	unacked    []*rec
	freelist   []*rec
	sp         transport.SentPacket // reused OnSend scratch
	seq        int64
	inflight   int
	launched   int64
	limit      int64
	burst      int
	packetSize int
	maxSack    int64

	sched        float64
	schedAnchor  bool
	lastRTOCheck float64
	rtoBackoff   int
	lastAckAt    float64
	revBase      float64
	revCal       bool

	// Overload state. class fixes who yields under host pressure;
	// paused is set by the owning shard's Shed action (emission stops,
	// RTO aging continues); busyUntil/busyStreak implement the jittered
	// exponential backoff a peer's BUSY frames demand.
	class      overload.Class
	paused     bool
	busyUntil  float64
	busyStreak int

	// Cross-goroutine stats surface (Flow.Stats reads these).
	sentPkts   atomic.Int64
	sentBytes  atomic.Int64
	ackedPkts  atomic.Int64
	ackedBytes atomic.Int64
	lostPkts   atomic.Int64
	lostBytes  atomic.Int64
	srttNanos  atomic.Int64

	// Per-ack RTT sample log for measurement harnesses (parity runs);
	// off unless FlowConfig.RecordRTT, so the hot path never touches
	// the mutex. Appends happen on the shard goroutine while a harness
	// reads concurrently through Flow.RTTSamples.
	recordRTT  bool
	rttMu      sync.Mutex
	rttSamples []float64

	completed bool
	done      chan struct{}
}

// pump advances the flow: RTO scan, pacer accrual, and a burst of
// emissions while tokens, window, and limit allow. It returns the
// next wake deadline, or 0 when the flow has nothing left to do.
func (s *senderFlow) pump(sh *shard, f *flow, now float64) float64 {
	if now-s.lastRTOCheck >= rtoCheckEvery {
		s.lastRTOCheck = now
		s.checkRTO(now)
	}
	if s.completed && len(s.unacked) == 0 {
		return 0 // fully acked finite transfer: nothing to schedule
	}
	// Pushed back or shed: no emission, but keep waking on the RTO
	// cadence so loss aging (and an eventual busy expiry) still run.
	if s.paused {
		return now + rtoCheckEvery
	}
	if now < s.busyUntil {
		next := s.busyUntil
		if d := now + rtoCheckEvery; d < next {
			next = d
		}
		return next
	}
	rate := s.pacingRate()
	s.pacer.Advance(now, rate)
	gated := false
	if s.pacer.Delay(s.trainBytes(), rate) == 0 {
		finite := rate > 0 && rate <= wire.MaxFiniteRate
		if !finite || !s.schedAnchor || now-s.sched > s.pacer.Cap/rate+schedSlack {
			// Re-anchor the scheduled-send timeline after idle, exactly
			// as the legacy sender does: no back-credit for dead time.
			s.sched = now
			s.schedAnchor = true
		}
		for {
			if s.limitReached() {
				gated = true
				break
			}
			size := s.nextSize()
			if float64(s.inflight+size) > s.cc.CWnd() {
				gated = true
				break
			}
			if !s.pacer.Take(size) {
				break
			}
			virt := now
			if finite {
				virt = s.sched
				s.sched += float64(size) / rate
			}
			s.emit(sh, f, now, virt, size)
		}
	}
	if gated || s.limitReached() {
		return now + ackPoll // window/limit-blocked: wake on ack cadence
	}
	d := s.pacer.Delay(s.trainBytes(), rate)
	if d > ackPoll {
		d = ackPoll
	}
	if d < minWake {
		d = minWake
	}
	return now + d
}

// emit encodes and queues one version-2 data packet stamped with its
// scheduled send time.
func (s *senderFlow) emit(sh *shard, f *flow, now, virt float64, size int) {
	s.capUnacked(now)
	s.sp = transport.SentPacket{Seq: s.seq, Size: size, SentAt: virt}
	s.cc.OnSend(now, &s.sp)
	r := s.newRec()
	r.seq, r.size, r.sentAt, r.wallAt, r.mi = s.seq, size, virt, now, s.sp.MI
	r.acked, r.lost = false, false
	s.seq++
	s.unacked = append(s.unacked, r)
	s.inflight += size
	s.launched += int64(size)
	s.sentPkts.Add(1)
	s.sentBytes.Add(int64(size))
	buf := sh.txBuf()
	pkt := wire.EncodeDataV2(buf, wire.DataHeader{
		Seq: r.seq, SentAt: sh.clock.NanosAt(virt), Flow: f.key.id,
	}, size)
	sh.queueTx(pkt, f.key.addr)
}

// Busy-backoff bounds: the exponent stops doubling after
// maxBusyDoublings steps and the computed backoff never exceeds
// maxBusyBackoff seconds, so a long brownout cannot push a scavenger's
// retry horizon past recovery-detection usefulness.
const (
	maxBusyDoublings = 7
	maxBusyBackoff   = 30.0
)

// onBusy applies one BUSY push-back frame: back off for the peer's
// retry-after hint, doubled per consecutive BUSY and jittered to
// ±25% so a cohort of refused scavengers does not retry in lockstep.
func (s *senderFlow) onBusy(sh *shard, bp wire.BusyPacket, now float64) {
	if s.busyStreak < maxBusyDoublings {
		s.busyStreak++
	}
	backoff := float64(bp.RetryAfterMillis) / 1000
	for i := 1; i < s.busyStreak; i++ {
		backoff *= 2
	}
	if backoff > maxBusyBackoff {
		backoff = maxBusyBackoff
	}
	until := now + backoff*(0.75+0.5*sh.rng.Float64())
	if until > s.busyUntil {
		s.busyUntil = until
	}
	// No back-credit for the pause: re-anchor the pacing timeline when
	// emission resumes.
	s.schedAnchor = false
}

// onAck applies one decoded ack: retire covered packets with
// controller callbacks, run RACK-style loss detection, prune.
func (s *senderFlow) onAck(sh *shard, f *flow, a *wire.AckPacket, now float64) {
	s.lastAckAt = now
	s.rtoBackoff = 0
	s.busyStreak = 0
	if a.Seq > s.maxSack {
		s.maxSack = a.Seq
	}
	if a.CumAck-1 > s.maxSack {
		s.maxSack = a.CumAck - 1
	}
	for _, bl := range a.Blocks {
		if bl.End-1 > s.maxSack {
			s.maxSack = bl.End - 1
		}
	}
	recvAt := sh.clock.SecondsSince(a.RecvAt)
	// Same timestamp RTT scheme as the legacy sender: forward half from
	// the receiver's echoed arrival stamp, reverse half a constant
	// calibrated once at the first ack.
	if !s.revCal {
		s.revBase = now - recvAt
		s.revCal = true
	}
	// A coalesced ack echoes only its newest packet's stamps. Computing
	// every retired packet's RTT against that one arrival would inflate
	// the older samples by up to ackEvery−1 packet intervals — sawtooth
	// noise a latency-gradient controller reads as queue growth. Take
	// the one accurate sample from the echoed packet's own record and
	// attribute it to everything this ack retires; when the echo has no
	// live record (dup data, already retired), skip the estimator
	// entirely, Karn-style.
	ackRTT := s.rtt.SRTT()
	lo, hi := 0, len(s.unacked)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.unacked[mid].seq < a.Seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s.unacked) {
		if r := s.unacked[lo]; r.seq == a.Seq && !r.acked && !r.lost {
			ackRTT = (recvAt - r.sentAt) + s.revBase
			if ackRTT < 0 {
				ackRTT = 0
			}
			s.rtt.Update(ackRTT)
			s.srttNanos.Store(int64(s.rtt.SRTT() * 1e9))
			if s.recordRTT {
				s.rttMu.Lock()
				s.rttSamples = append(s.rttSamples, ackRTT)
				s.rttMu.Unlock()
			}
		}
	}
	for _, r := range s.unacked {
		if r.acked || r.lost {
			continue
		}
		if r.seq >= a.CumAck && !a.Covers(r.seq) {
			if r.seq > s.maxSack {
				break // sorted by seq: nothing further is covered
			}
			continue
		}
		s.ackRec(r, now, recvAt, ackRTT)
	}
	s.detectLosses(now)
	s.prune()
	if s.limit > 0 && !s.completed && s.ackedBytes.Load() >= s.limit {
		s.completed = true
		close(s.done)
	}
}

func (s *senderFlow) ackRec(r *rec, now, recvAt, rtt float64) {
	r.acked = true
	s.inflight -= r.size
	s.ackedPkts.Add(1)
	s.ackedBytes.Add(int64(r.size))
	s.cc.OnAck(transport.Ack{
		Seq: r.seq, Bytes: r.size, SentAt: r.sentAt, RecvAt: recvAt,
		Now: now, RTT: rtt, OWD: rtt - s.revBase, MI: r.mi,
		Inflight: s.inflight,
	})
}

// detectLosses: a packet dupAckThreshold behind the highest SACKed
// sequence and older than srtt + reorder window is lost.
func (s *senderFlow) detectLosses(now float64) {
	window := s.rtt.SRTT() + s.reorderWindow()
	for _, r := range s.unacked {
		if r.seq > s.maxSack-dupAckThreshold {
			break
		}
		if !r.acked && !r.lost && now-r.wallAt > window {
			s.markLost(r, now)
		}
	}
}

func (s *senderFlow) reorderWindow() float64 {
	w := 4 * s.rtt.RTTVar()
	if w < 0.004 {
		w = 0.004
	}
	return w
}

// checkRTO declares every outstanding packet older than the
// backed-off RTO lost — the backstop when acks stop entirely.
func (s *senderFlow) checkRTO(now float64) {
	rto := s.effRTO()
	declared := false
	for _, r := range s.unacked {
		if r.acked || r.lost {
			continue
		}
		if now-r.wallAt < rto {
			break // sorted by send time: the rest are younger
		}
		s.markLost(r, now)
		declared = true
	}
	if declared && now-s.lastAckAt >= rto && s.rtoBackoff < maxRTOBackoff {
		s.rtoBackoff++
	}
	s.prune()
}

func (s *senderFlow) effRTO() float64 {
	base := s.rtt.RTO()
	rto := base
	for i := 0; i < s.rtoBackoff; i++ {
		rto *= 2
	}
	if rto > maxRTOCap {
		rto = math.Max(maxRTOCap, base)
	}
	return rto
}

func (s *senderFlow) markLost(r *rec, now float64) {
	r.lost = true
	s.inflight -= r.size
	s.lostPkts.Add(1)
	s.lostBytes.Add(int64(r.size))
	if s.limit > 0 {
		s.launched -= int64(r.size) // re-credit so a replacement goes out
	}
	s.cc.OnLoss(transport.Loss{
		Seq: r.seq, Bytes: r.size, SentAt: r.sentAt, Now: now,
		MI: r.mi, Inflight: s.inflight,
	})
}

func (s *senderFlow) capUnacked(now float64) {
	if len(s.unacked) < maxUnackedRecs {
		return
	}
	if r := s.unacked[0]; !r.acked && !r.lost {
		s.markLost(r, now)
	}
	s.prune()
}

func (s *senderFlow) prune() {
	i := 0
	for i < len(s.unacked) && (s.unacked[i].acked || s.unacked[i].lost) {
		s.freelist = append(s.freelist, s.unacked[i])
		i++
	}
	if i > 0 {
		n := copy(s.unacked, s.unacked[i:])
		for j := n; j < len(s.unacked); j++ {
			s.unacked[j] = nil
		}
		s.unacked = s.unacked[:n]
	}
}

func (s *senderFlow) newRec() *rec {
	if n := len(s.freelist); n > 0 {
		r := s.freelist[n-1]
		s.freelist[n-1] = nil
		s.freelist = s.freelist[:n-1]
		return r
	}
	return &rec{}
}

func (s *senderFlow) pacingRate() float64 {
	if r := s.cc.PacingRate(); r > 0 {
		return r
	}
	if !s.rtt.Valid() {
		return math.Inf(1)
	}
	cwnd := s.cc.CWnd()
	if math.IsInf(cwnd, 1) {
		return math.Inf(1)
	}
	return 1.25 * cwnd / s.rtt.SRTT()
}

func (s *senderFlow) trainBytes() int {
	n := s.burst * s.packetSize
	if s.limit > 0 {
		if rem := s.limit - s.launched; rem < int64(n) {
			n = int(rem)
			if n < wire.DataHeaderLenV2 {
				n = wire.DataHeaderLenV2
			}
		}
	}
	return n
}

func (s *senderFlow) nextSize() int {
	size := s.packetSize
	if s.limit > 0 {
		if rem := s.limit - s.launched; rem < int64(size) {
			size = int(rem)
			if size < wire.DataHeaderLenV2 {
				size = wire.DataHeaderLenV2
			}
		}
	}
	return size
}

func (s *senderFlow) limitReached() bool {
	return s.limit > 0 && s.launched >= s.limit
}

// restartCumFloor guards collision detection on reused (addr, flowID)
// pairs: sequence numbers are never reused within one flow's life, so
// seq 0 arriving while the cumulative ack is already past this floor
// can only be a restarted sender that picked the same flow ID from
// the same port — the tracker resets rather than treating the entire
// new flow as duplicates. The floor keeps a network-duplicated
// first packet of a young flow from wiping real state.
const restartCumFloor = 4

// Ack coalescing: a steady in-order flow acks every ackEvery-th
// packet instead of every packet, halving the receiver's transmit
// work — the dominant datapath cost at high aggregate rates. Any
// anomaly (duplicate, outstanding SACK gap) and every packet of a
// young flow acks immediately, so loss detection, fast retransmit,
// and the sender's first-ack RTT calibration see no added latency.
// A wheel-armed delayed ack bounds how long an odd tail packet
// (e.g. the last packet of a finite transfer) waits.
const (
	ackEvery     = 4
	delayedAckTO = 0.005
)

// recvFlow is the ack-generating side of one flow: the same
// cumulative-ack + SACK tracker the legacy Receiver keeps per source.
type recvFlow struct {
	wire.AckTracker
	highest int64
	pkts    int64
	dups    int64

	// Coalesced-ack state: echo stamps of the newest unacked packet,
	// flushed by the next immediate ack or the delayed-ack timer.
	unacked    int
	pendSeq    int64
	pendSentAt int64
	pendRecvAt int64
}

// onData records one data packet and queues the ack, echoing the
// packet's wire version.
func (rf *recvFlow) onData(sh *shard, f *flow, h wire.DataHeader, n int, now float64) {
	if h.Seq == 0 && rf.Cum > restartCumFloor {
		// Collision: the (addr, flowID) pair was reused by a restarted
		// sender. Rebind as a new flow.
		rf.Cum = 0
		rf.Ranges = rf.Ranges[:0]
		rf.highest = -1
		rf.pkts, rf.dups = 0, 0
		rf.unacked = 0
		sh.ctr.rebinds.Add(1)
	}
	dup := !rf.Record(h.Seq)
	if dup {
		rf.dups++
		sh.ctr.rxDups.Add(1)
	} else {
		rf.pkts++
		sh.ctr.delivered.Add(1)
		sh.ctr.deliveredBytes.Add(int64(n))
	}
	if h.Seq > rf.highest {
		rf.highest = h.Seq
	}
	// Prefer a shim's emulated arrival stamp, as the legacy receiver
	// does; on a bare path the local wall clock is the truth.
	recvAt := h.Arrival
	if recvAt == 0 {
		recvAt = sh.clock.WallNanos()
	}
	rf.pendSeq, rf.pendSentAt, rf.pendRecvAt = h.Seq, h.SentAt, recvAt
	rf.unacked++
	if dup || len(rf.Ranges) > 0 || rf.Cum <= restartCumFloor || rf.unacked >= ackEvery {
		rf.emitAck(sh, f)
		return
	}
	// Defer: the next in-order packet (or the timer) flushes the ack.
	// A live timer is left alone — one entry per flow, not per packet.
	if !f.armed {
		sh.wh.arm(f, now+delayedAckTO)
	}
}

// emitAck flushes the coalesced ack state as one ack packet echoing
// the newest received packet's stamps.
func (rf *recvFlow) emitAck(sh *shard, f *flow) {
	rf.unacked = 0
	ack := &sh.ackScratch
	ack.Seq = rf.pendSeq
	ack.SentAtEcho = rf.pendSentAt
	ack.RecvAt = rf.pendRecvAt
	ack.CumAck = rf.Cum
	ack.Blocks = append(ack.Blocks[:0], rf.Ranges...)
	buf := sh.txBuf()
	var pkt []byte
	if f.key.id != 0 {
		ack.Flow = f.key.id
		pkt = ack.EncodeV2(buf)
	} else {
		ack.Flow = 0
		pkt = ack.Encode(buf)
	}
	sh.queueTx(pkt, f.key.addr)
}
