//go:build !linux || !(amd64 || arm64)

package engine

import (
	"net/netip"
	"time"
)

// mmsgState is empty on the portable fallback: no batch syscalls, so
// no mmsghdr/iovec staging to keep.
type mmsgState struct{}

func (sh *shard) initBatch() {}

// readBatch on the fallback reads exactly one datagram per call with
// the ordinary blocking read — the portable half of the batch-I/O
// matrix. Returns the number of datagrams staged (0 on timeout, so
// the event loop runs its timers), or -1 when the socket is closed.
func (sh *shard) readBatch(deadline time.Time) int {
	sh.conn.SetReadDeadline(deadline)
	n, src, err := sh.conn.ReadFromUDPAddrPort(sh.rxBufs[0])
	if err != nil {
		if isTimeout(err) {
			return 0
		}
		if isClosed(err) {
			return -1
		}
		// Transient errors (ICMP unreachable bursts) must not kill the
		// shard; yield briefly and let the loop continue.
		time.Sleep(time.Millisecond)
		return 0
	}
	sh.rxLens[0] = n
	sh.rxSrcs[0] = netip.AddrPortFrom(src.Addr().Unmap(), src.Port())
	return 1
}

// writeBatch on the fallback is a plain write loop; datagrams that
// fail to send are dropped, exactly as a full socket buffer drops
// them on the batched path. Send errors still feed the overload
// detector's streak signal so buffer exhaustion is visible here too.
func (sh *shard) writeBatch(pkts [][]byte, addrs []netip.AddrPort) {
	errs := 0
	for i, p := range pkts {
		if _, err := sh.conn.WriteToUDPAddrPort(p, addrs[i]); err != nil && !isClosed(err) {
			errs++
		}
	}
	if errs > 0 {
		sh.ctr.txSoftErrs.Add(int64(errs))
		sh.txErrStreak++
	} else {
		sh.txErrStreak = 0
	}
	sh.txBacklog = float64(errs) / float64(len(pkts))
}
