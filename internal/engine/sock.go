package engine

import (
	"errors"
	"net"
	"os"
)

func isTimeout(err error) bool {
	if errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

func isClosed(err error) bool {
	return errors.Is(err, net.ErrClosed) || errors.Is(err, os.ErrClosed)
}
