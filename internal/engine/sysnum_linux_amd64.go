//go:build linux && amd64

package engine

// The stdlib syscall table on amd64 predates sendmmsg, so the numbers
// are pinned here (x86_64 syscall table: recvmmsg 299, sendmmsg 307).
const (
	sysRECVMMSG = 299
	sysSENDMMSG = 307
)
