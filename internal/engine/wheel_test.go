package engine

import (
	"math"
	"testing"
)

func TestWheelFiresInDeadlineOrder(t *testing.T) {
	var w wheel
	w.init(0)
	var fired []uint32
	mk := func(id uint32) *flow { return &flow{key: flowKey{id: id}} }
	f1, f2, f3 := mk(1), mk(2), mk(3)
	w.arm(f1, 0.010)
	w.arm(f2, 0.003)
	w.arm(f3, 0.007)
	w.advance(0.012, func(f *flow) { fired = append(fired, f.key.id) })
	if len(fired) != 3 || fired[0] != 2 || fired[1] != 3 || fired[2] != 1 {
		t.Fatalf("fired %v want [2 3 1]", fired)
	}
	if w.armed != 0 {
		t.Fatalf("armed=%d want 0", w.armed)
	}
}

func TestWheelRearmSupersedes(t *testing.T) {
	var w wheel
	w.init(0)
	f := &flow{key: flowKey{id: 1}}
	w.arm(f, 0.050)
	w.arm(f, 0.002) // earlier deadline replaces the later one
	n := 0
	w.advance(0.005, func(*flow) { n++ })
	if n != 1 {
		t.Fatalf("fired %d times want 1 (stale entry not cancelled?)", n)
	}
	// The superseded 50ms entry must not fire again.
	w.advance(0.060, func(*flow) { n++ })
	if n != 1 {
		t.Fatalf("stale entry fired: n=%d", n)
	}
	if w.armed != 0 {
		t.Fatalf("armed=%d want 0", w.armed)
	}
}

func TestWheelHorizonClampRearms(t *testing.T) {
	var w wheel
	f := &flow{key: flowKey{id: 1}}
	far := 3 * wheelSlots * wheelGran // well past one rotation
	w.arm(f, far)
	n := 0
	// Sweeping to just before the deadline must not fire it, despite
	// the entry being clamped into the wheel's last slot repeatedly.
	w.advance(far-10*wheelGran, func(*flow) { n++ })
	if n != 0 {
		t.Fatalf("clamped entry fired early")
	}
	w.advance(far+wheelGran, func(*flow) { n++ })
	if n != 1 {
		t.Fatalf("clamped entry fired %d times want 1", n)
	}
}

func TestWheelNext(t *testing.T) {
	var w wheel
	w.init(0)
	if !math.IsInf(w.next(), 1) {
		t.Fatal("empty wheel should report +Inf")
	}
	f := &flow{key: flowKey{id: 1}}
	w.arm(f, 0.004)
	if got := w.next(); got != 0.004 {
		t.Fatalf("next=%v want 0.004", got)
	}
}

func TestWheelArmDuringFire(t *testing.T) {
	// A fire callback re-arming the same flow (the pump pattern) must
	// land the new deadline, not be dropped or double-fired.
	var w wheel
	f := &flow{key: flowKey{id: 1}}
	w.arm(f, 0.001)
	fires := 0
	w.advance(0.002, func(fl *flow) {
		fires++
		if fires == 1 {
			w.arm(fl, 0.0015) // due immediately: next slot picks it up
		}
	})
	if fires != 2 {
		t.Fatalf("fires=%d want 2 (immediate re-arm lost)", fires)
	}
	w.advance(1.0, func(*flow) { fires++ })
	if fires != 2 {
		t.Fatalf("ghost fire: %d", fires)
	}
}

func TestWheelZeroAllocSteadyState(t *testing.T) {
	var w wheel
	f := &flow{key: flowKey{id: 1}}
	now := 0.0
	w.arm(f, now+0.001)
	// Warm the slot slices through one full rotation.
	for i := 0; i < 2*wheelSlots; i++ {
		now += wheelGran
		w.advance(now, func(fl *flow) { w.arm(fl, now+0.001) })
	}
	allocs := testing.AllocsPerRun(1000, func() {
		now += wheelGran
		w.advance(now, func(fl *flow) { w.arm(fl, now+0.001) })
	})
	if allocs != 0 {
		t.Fatalf("steady-state wheel allocates %.1f/op, want 0", allocs)
	}
}
