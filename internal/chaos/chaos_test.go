package chaos

import (
	"reflect"
	"testing"
)

func TestStateAtComposition(t *testing.T) {
	p := Plan{Faults: []Fault{
		{Kind: KindBlackout, At: 2, Dur: 2},
		{Kind: KindCorrupt, At: 1, Dur: 4, Value: 0.1},
		{Kind: KindCorrupt, At: 3, Dur: 4, Value: 0.3},
		{Kind: KindClockJump, At: 0, Dur: 10, Value: 1.5},
		{Kind: KindClockJump, At: 5, Dur: 10, Value: -0.5},
	}}
	if st := p.StateAt(0.5); st.LinkDown || st.CorruptProb != 0 || st.ClockOffset != 1.5 {
		t.Fatalf("t=0.5: %+v", st)
	}
	// Blackout implies ack blackout; overlapping corrupts take the max.
	st := p.StateAt(3.5)
	if !st.LinkDown || !st.AckDown {
		t.Fatalf("t=3.5: blackout must imply AckDown: %+v", st)
	}
	if st.CorruptProb != 0.3 {
		t.Fatalf("t=3.5: CorruptProb=%v want max 0.3", st.CorruptProb)
	}
	// Clock offsets sum.
	if st := p.StateAt(6); st.ClockOffset != 1.0 {
		t.Fatalf("t=6: ClockOffset=%v want 1.0", st.ClockOffset)
	}
	// Interval is half-open: [At, At+Dur).
	if st := p.StateAt(4); st.LinkDown {
		t.Fatalf("t=4: blackout over at its end time: %+v", st)
	}
	if !p.StateAt(20).Healthy() {
		t.Fatal("past every fault the path must be healthy")
	}
}

func TestCanonicalClampsAndSorts(t *testing.T) {
	p := Plan{Seed: 7, Faults: []Fault{
		{Kind: KindReorder, At: 5.00049, Dur: 1, Value: 0.9, Delay: 0.5},
		{Kind: KindCorrupt, At: -1, Dur: 0, Value: 2},
		{Kind: KindClockJump, At: 2, Dur: 1, Value: -9},
		{Kind: Kind("bogus"), At: 1, Dur: 1},
		{Kind: KindPeerRestart, At: 3, Dur: 4, Value: 5, Delay: 6},
	}}
	c := p.Canonical()
	if len(c.Faults) != 4 {
		t.Fatalf("unknown kind must be dropped: %v", c.Faults)
	}
	// Sorted by At; fields clamped and quantized.
	if c.Faults[0].Kind != KindCorrupt || c.Faults[0].At != 0 || c.Faults[0].Value != MaxFaultProb || c.Faults[0].Dur != minFaultDur {
		t.Fatalf("corrupt not clamped: %+v", c.Faults[0])
	}
	if c.Faults[1].Kind != KindClockJump || c.Faults[1].Value != -MaxClockJump {
		t.Fatalf("clock jump not clamped: %+v", c.Faults[1])
	}
	if c.Faults[2].Kind != KindPeerRestart || c.Faults[2].Dur != 0 || c.Faults[2].Value != 0 {
		t.Fatalf("restart must zero interval fields: %+v", c.Faults[2])
	}
	re := c.Faults[3]
	if re.Value != MaxFaultProb || re.Delay != MaxReorderDelay || re.At != 5.0 {
		t.Fatalf("reorder not clamped/quantized: %+v", re)
	}
	// Canonical is idempotent.
	if !reflect.DeepEqual(c, c.Canonical()) {
		t.Fatalf("not idempotent:\n%v\n%v", c, c.Canonical())
	}
	if c.Seed != 7 {
		t.Fatal("seed must survive canonicalization")
	}
}

func TestStepsDeterministic(t *testing.T) {
	p := Plan{Faults: []Fault{
		{Kind: KindBlackout, At: 2, Dur: 2},
		{Kind: KindCorrupt, At: 2, Dur: 3, Value: 0.2}, // coincident start edge
		{Kind: KindPeerRestart, At: 3},
	}}
	steps := p.Steps(10)
	// Edges at 2 (blackout+corrupt on), 4 (blackout off), 5 (corrupt
	// off), plus the restart at 3.
	if len(steps) != 4 {
		t.Fatalf("steps=%v", steps)
	}
	for i := 1; i < len(steps); i++ {
		if steps[i].At < steps[i-1].At {
			t.Fatalf("steps out of order: %v", steps)
		}
	}
	for _, st := range steps {
		if st.Restart {
			if st.At != 3 {
				t.Fatalf("restart step at %v", st.At)
			}
			continue
		}
		if want := p.StateAt(st.At); st.State != want {
			t.Fatalf("step@%v state %+v want %+v", st.At, st.State, want)
		}
	}
	// The final state step returns the path to health.
	last := steps[len(steps)-1]
	if last.Restart || !last.State.Healthy() {
		t.Fatalf("last step must clear all faults: %+v", last)
	}
	// Horizon cuts edges beyond it: only the coincident activation at
	// t=2 survives a horizon of 2.5.
	if got := len(p.Steps(2.5)); got != 1 {
		t.Fatalf("horizon-cut steps = %d want 1: %v", got, p.Steps(2.5))
	}
	// Determinism: equal plans yield identical step lists.
	if !reflect.DeepEqual(steps, p.Steps(10)) {
		t.Fatal("Steps must be deterministic")
	}
}

func TestScale(t *testing.T) {
	p := Plan{Seed: 1, Faults: []Fault{{Kind: KindBlackout, At: 8, Dur: 4}, {Kind: KindCorrupt, At: 2, Dur: 2, Value: 0.25}}}
	sc := p.Scale(4)
	if sc.Faults[0].At != 2 || sc.Faults[0].Dur != 1 {
		t.Fatalf("times not scaled: %+v", sc.Faults[0])
	}
	if sc.Faults[1].Value != 0.25 {
		t.Fatal("probabilities must not scale")
	}
	if !reflect.DeepEqual(p, p.Scale(1)) || !reflect.DeepEqual(p, p.Scale(0)) {
		t.Fatal("factor 1 or non-positive must be identity")
	}
}

func TestTransitions(t *testing.T) {
	evs := Transitions(PathState{}, PathState{LinkDown: true, AckDown: true})
	if len(evs) != 1 || evs[0].Name != string(KindBlackout) || evs[0].Active != 1 {
		t.Fatalf("blackout activation must suppress the implied ack event: %v", evs)
	}
	evs = Transitions(PathState{LinkDown: true, AckDown: true}, PathState{})
	if len(evs) != 1 || evs[0].Active != 0 {
		t.Fatalf("blackout clearance: %v", evs)
	}
	evs = Transitions(PathState{}, PathState{AckDown: true, CorruptProb: 0.2, ClockOffset: 1})
	names := map[string]bool{}
	for _, e := range evs {
		names[e.Name] = true
	}
	if len(evs) != 3 || !names[string(KindAckBlackout)] || !names[string(KindCorrupt)] || !names[string(KindClockJump)] {
		t.Fatalf("field transitions: %v", evs)
	}
	if len(Transitions(PathState{CorruptProb: 0.2}, PathState{CorruptProb: 0.2})) != 0 {
		t.Fatal("no-change must emit nothing")
	}
}
