// Package chaos is the cross-world fault-injection model: a seeded,
// deterministic plan of path faults — link blackout, ack-path
// blackout, corruption, duplication, severe reordering, peer
// restart/rebind, clock jump — that applies identically to the
// discrete-event world (internal/sim + internal/netem) and, compiled
// to the same schedule, to the real-UDP world (the internal/wire
// impairment shim). Any fault plan can therefore be replayed
// sim-vs-wire like the parity table, with matching loss and outage
// attribution.
//
// The model is pure: PathState(t) is a function of the plan alone, so
// both appliers derive the path's fault state from the same arithmetic
// rather than from accumulated mutations.
package chaos

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"pccproteus/internal/netem"
	"pccproteus/internal/sim"
	"pccproteus/internal/trace"
)

// Kind names one fault type.
type Kind string

// Fault kinds. Interval faults are active on [At, At+Dur); restart is
// instantaneous at At.
const (
	// KindBlackout destroys all forward traffic and all acks for Dur.
	KindBlackout Kind = "blackout"
	// KindAckBlackout destroys only the reverse (ack) path for Dur:
	// data keeps arriving, nothing comes back.
	KindAckBlackout Kind = "ack-blackout"
	// KindCorrupt damages each packet in flight with probability Value.
	KindCorrupt Kind = "corrupt"
	// KindDuplicate duplicates each packet with probability Value.
	KindDuplicate Kind = "duplicate"
	// KindReorder releases each packet out of order with probability
	// Value, holding it Delay seconds extra.
	KindReorder Kind = "reorder"
	// KindPeerRestart models the peer process restarting at At: every
	// packet and ack in flight is flushed. (On the wire, a restarted
	// sender also rebinds to a fresh source port; the receiver's
	// per-source flow state makes that a fresh flow automatically.)
	KindPeerRestart Kind = "peer-restart"
	// KindClockJump offsets the receiver's clock stamps by Value
	// seconds for Dur — the sender's controller sees shifted arrival
	// stamps (one-way delays, ack-interval clocking) while its own
	// RTT clock is unaffected.
	KindClockJump Kind = "clock-jump"
)

// Bounds applied by Canonical. Probabilities cap at ½ (beyond that no
// transport is expected to make progress), reorder holds at a quarter
// second, clock jumps at ±5 s, and every interval fault lasts at least
// a millisecond so zero-length segments cannot hide in a plan.
const (
	MaxFaultProb    = 0.5
	MaxReorderDelay = 0.25
	MaxClockJump    = 5.0
	minFaultDur     = 0.001
)

// Fault is one scheduled fault.
type Fault struct {
	Kind  Kind    `json:"kind"`
	At    float64 `json:"at"`
	Dur   float64 `json:"dur,omitempty"`   // interval kinds; unused for peer-restart
	Value float64 `json:"value,omitempty"` // probability, or clock offset seconds
	Delay float64 `json:"delay,omitempty"` // reorder hold, seconds
}

// end returns the fault's deactivation time.
func (f Fault) end() float64 {
	if f.Kind == KindPeerRestart {
		return f.At
	}
	return f.At + f.Dur
}

// activeAt reports whether an interval fault covers time t.
func (f Fault) activeAt(t float64) bool {
	return f.Kind != KindPeerRestart && t >= f.At && t < f.end()
}

// String renders one fault compactly, e.g. "blackout@4.0s+2.0s".
func (f Fault) String() string {
	switch f.Kind {
	case KindPeerRestart:
		return fmt.Sprintf("%s@%.1fs", f.Kind, f.At)
	case KindClockJump:
		return fmt.Sprintf("%s@%.1fs+%.1fs %+.3fs", f.Kind, f.At, f.Dur, f.Value)
	case KindReorder:
		return fmt.Sprintf("%s@%.1fs+%.1fs p=%.2f d=%.0fms", f.Kind, f.At, f.Dur, f.Value, f.Delay*1e3)
	case KindCorrupt, KindDuplicate:
		return fmt.Sprintf("%s@%.1fs+%.1fs p=%.2f", f.Kind, f.At, f.Dur, f.Value)
	default:
		return fmt.Sprintf("%s@%.1fs+%.1fs", f.Kind, f.At, f.Dur)
	}
}

// Plan is a deterministic fault schedule. Seed, when non-zero, names
// the random stream the *appliers* use for per-packet draws; the plan
// itself contains no randomness.
type Plan struct {
	Seed   int64   `json:"seed,omitempty"`
	Faults []Fault `json:"faults"`
}

// String renders the plan for logs and counterexample output.
func (p Plan) String() string {
	if len(p.Faults) == 0 {
		return "no faults"
	}
	parts := make([]string, len(p.Faults))
	for i, f := range p.Faults {
		parts[i] = f.String()
	}
	return strings.Join(parts, "; ")
}

// PathState is the full fault state of a path at one instant — the
// value both worlds apply. The zero value is a healthy path.
type PathState struct {
	LinkDown     bool    // forward path destroyed
	AckDown      bool    // reverse path destroyed
	CorruptProb  float64 // per-packet corruption probability
	DupProb      float64 // per-packet duplication probability
	ReorderProb  float64 // per-packet out-of-order release probability
	ReorderDelay float64 // extra hold for reorder-selected packets
	ClockOffset  float64 // receiver stamp offset, seconds
}

// Healthy reports whether the state is fault-free.
func (st PathState) Healthy() bool { return st == PathState{} }

// StateAt derives the path's fault state at time t from the plan
// alone. Overlapping faults compose: probabilities and holds take the
// max, clock offsets sum, blackout implies ack blackout.
func (p Plan) StateAt(t float64) PathState {
	var st PathState
	for _, f := range p.Faults {
		if !f.activeAt(t) {
			continue
		}
		switch f.Kind {
		case KindBlackout:
			st.LinkDown = true
			st.AckDown = true
		case KindAckBlackout:
			st.AckDown = true
		case KindCorrupt:
			st.CorruptProb = math.Max(st.CorruptProb, f.Value)
		case KindDuplicate:
			st.DupProb = math.Max(st.DupProb, f.Value)
		case KindReorder:
			st.ReorderProb = math.Max(st.ReorderProb, f.Value)
			st.ReorderDelay = math.Max(st.ReorderDelay, f.Delay)
		case KindClockJump:
			st.ClockOffset += f.Value
		}
	}
	return st
}

// Step is one applier action: at At, either flush in-flight state
// (Restart) or set the path's fault state to State. Steps returns them
// time-ordered; both worlds execute the identical list.
type Step struct {
	At      float64
	Restart bool
	State   PathState
}

// Steps enumerates the plan's boundary events within [0, horizon):
// one state step per activation/deactivation edge (the state re-derived
// from StateAt, so overlapping faults compose correctly) plus one
// restart step per peer-restart.
func (p Plan) Steps(horizon float64) []Step {
	var times []float64
	for _, f := range p.Faults {
		if f.Kind == KindPeerRestart {
			continue
		}
		if f.At < horizon {
			times = append(times, f.At)
		}
		if e := f.end(); e < horizon {
			times = append(times, e)
		}
	}
	sort.Float64s(times)
	steps := make([]Step, 0, len(times)+2)
	last := -1.0
	for _, t := range times {
		if t == last {
			continue // coincident edges collapse into one step
		}
		last = t
		steps = append(steps, Step{At: t, State: p.StateAt(t)})
	}
	for _, f := range p.Faults {
		if f.Kind == KindPeerRestart && f.At < horizon {
			steps = append(steps, Step{At: f.At, Restart: true})
		}
	}
	sort.SliceStable(steps, func(i, j int) bool { return steps[i].At < steps[j].At })
	return steps
}

// Canonical returns the plan with every fault clamped to the model's
// bounds, quantized to milliseconds, and stably sorted — the normal
// form used for replay files and deduplication. Unknown kinds are
// dropped.
func (p Plan) Canonical() Plan {
	out := Plan{Seed: p.Seed}
	for _, f := range p.Faults {
		f.At = round3(math.Max(0, f.At))
		switch f.Kind {
		case KindPeerRestart:
			f.Dur, f.Value, f.Delay = 0, 0, 0
		case KindBlackout, KindAckBlackout:
			f.Dur = round3(math.Max(minFaultDur, f.Dur))
			f.Value, f.Delay = 0, 0
		case KindCorrupt, KindDuplicate:
			f.Dur = round3(math.Max(minFaultDur, f.Dur))
			f.Value = round3(clamp(f.Value, 0, MaxFaultProb))
			f.Delay = 0
		case KindReorder:
			f.Dur = round3(math.Max(minFaultDur, f.Dur))
			f.Value = round3(clamp(f.Value, 0, MaxFaultProb))
			f.Delay = round3(clamp(f.Delay, 0, MaxReorderDelay))
		case KindClockJump:
			f.Dur = round3(math.Max(minFaultDur, f.Dur))
			f.Value = round3(clamp(f.Value, -MaxClockJump, MaxClockJump))
			f.Delay = 0
		default:
			continue
		}
		out.Faults = append(out.Faults, f)
	}
	sort.SliceStable(out.Faults, func(i, j int) bool {
		a, b := out.Faults[i], out.Faults[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Dur < b.Dur
	})
	return out
}

func round3(v float64) float64 { return math.Round(v*1000) / 1000 }

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ApplySim schedules the plan onto a simulated link and path: one sim
// event per step, setting the netem fault fields (or flushing in-flight
// state for a restart) and emitting a flight-recorder Fault event per
// transition so outage windows are visible on trace timelines.
func ApplySim(s *sim.Sim, link *netem.Link, path *netem.Path, p Plan, horizon float64) {
	p = p.Canonical()
	prev := PathState{}
	for _, step := range p.Steps(horizon) {
		step := step
		if step.Restart {
			s.At(step.At, func() {
				link.Flush()
				path.Flush()
				s.Trace().Tracer(0).Fault(step.At, string(KindPeerRestart), 1, 0)
			})
			continue
		}
		from := prev
		prev = step.State
		s.At(step.At, func() {
			st := step.State
			link.Down = st.LinkDown
			link.CorruptProb = st.CorruptProb
			link.DupProb = st.DupProb
			link.ReorderProb = st.ReorderProb
			link.ReorderDelay = st.ReorderDelay
			path.AckDown = st.AckDown
			path.StampOffset = st.ClockOffset
			traceTransition(s.Trace().Tracer(0), step.At, from, st)
		})
	}
}

// FaultEvent is one field-level fault transition — what gets stamped
// onto a trace timeline when a step applies.
type FaultEvent struct {
	Name   string
	Active float64 // 1 on activation, 0 on clearance
	Value  float64 // probability / offset after the transition
}

// Transitions lists the field-level changes between two path states.
// Both worlds emit exactly this list per step, so sim and wire traces
// carry identical fault timelines for the same plan.
func Transitions(from, to PathState) []FaultEvent {
	var evs []FaultEvent
	if from.LinkDown != to.LinkDown {
		evs = append(evs, FaultEvent{string(KindBlackout), b2f(to.LinkDown), 0})
	}
	if from.AckDown != to.AckDown && !(from.LinkDown || to.LinkDown) {
		evs = append(evs, FaultEvent{string(KindAckBlackout), b2f(to.AckDown), 0})
	}
	if from.CorruptProb != to.CorruptProb {
		evs = append(evs, FaultEvent{string(KindCorrupt), b2f(to.CorruptProb > 0), to.CorruptProb})
	}
	if from.DupProb != to.DupProb {
		evs = append(evs, FaultEvent{string(KindDuplicate), b2f(to.DupProb > 0), to.DupProb})
	}
	if from.ReorderProb != to.ReorderProb {
		evs = append(evs, FaultEvent{string(KindReorder), b2f(to.ReorderProb > 0), to.ReorderProb})
	}
	if from.ClockOffset != to.ClockOffset {
		evs = append(evs, FaultEvent{string(KindClockJump), b2f(to.ClockOffset != 0), to.ClockOffset})
	}
	return evs
}

// traceTransition emits one Fault event per field that changed between
// two path states.
func traceTransition(tr trace.Tracer, now float64, from, to PathState) {
	for _, ev := range Transitions(from, to) {
		tr.Fault(now, ev.Name, ev.Active, ev.Value)
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Scale returns the plan with every time (activation and duration,
// but not probabilities or offsets) divided by factor — used by the
// wire replayer, which compresses long simulated scenarios into
// shorter real-time runs.
func (p Plan) Scale(factor float64) Plan {
	if factor == 1 || factor <= 0 {
		return p
	}
	out := Plan{Seed: p.Seed, Faults: make([]Fault, len(p.Faults))}
	for i, f := range p.Faults {
		f.At /= factor
		f.Dur /= factor
		out.Faults[i] = f
	}
	return out
}
