package chaos_test

import (
	"testing"

	"pccproteus/internal/cc/fixedrate"
	"pccproteus/internal/chaos"
	"pccproteus/internal/core"
	"pccproteus/internal/netem"
	"pccproteus/internal/sim"
	"pccproteus/internal/trace"
	"pccproteus/internal/transport"
)

func newChaosController(s *sim.Sim, mode string) transport.Controller {
	switch mode {
	case "proteus-p":
		return core.NewProteusP(s.Rand())
	case "proteus-s":
		return core.NewProteusS(s.Rand())
	case "proteus-h":
		c, _ := core.NewProteusH(s.Rand())
		return c
	}
	panic("unknown mode " + mode)
}

// TestBlackoutSurvivalSim is the acceptance-criterion gate in the
// simulated world: on a 40 ms-RTT, 20 Mbps link, after a 2 s full
// blackout each Proteus mode must re-attain >= 80% of its pre-blackout
// throughput within 3 s of the path healing, with the watchdog keeping
// sender state bounded during the outage.
func TestBlackoutSurvivalSim(t *testing.T) {
	for _, mode := range []string{"proteus-p", "proteus-s", "proteus-h"} {
		mode := mode
		t.Run(mode, func(t *testing.T) {
			s := sim.New(42)
			link := netem.NewLink(s, 20, 150_000, 0.020)
			path := &netem.Path{Link: link, AckDelay: 0.020}
			snd := transport.NewSender(1, path, newChaosController(s, mode))
			snd.Survival = true

			// Blackout [8,10): late enough that even the cautious
			// scavenger ramp has meaningful throughput to lose.
			plan := chaos.Plan{Faults: []chaos.Fault{{Kind: chaos.KindBlackout, At: 8, Dur: 2}}}
			chaos.ApplySim(s, link, path, plan, 16)

			// Per-second acked throughput, sampled on the virtual clock.
			perSec := make([]float64, 16)
			var prev int64
			for sec := 1; sec <= 16; sec++ {
				sec := sec
				s.At(float64(sec), func() {
					acked := snd.AckedBytes()
					perSec[sec-1] = float64(acked-prev) * 8 / 1e6
					prev = acked
				})
			}
			var outstandingAtTrip, outstandingLate int
			s.At(8.8, func() { outstandingAtTrip = snd.OutstandingPackets() })
			s.At(9.9, func() { outstandingLate = snd.OutstandingPackets() })
			var inOutageMid, inOutageAfter bool
			s.At(9.5, func() { inOutageMid = snd.InOutage() })
			s.At(12.0, func() { inOutageAfter = snd.InOutage() })

			snd.Start()
			s.Run(16)

			pre := perSec[6]
			if perSec[7] > pre {
				pre = perSec[7] // best of seconds (6,8] before the cut
			}
			if pre < 2 {
				t.Fatalf("%s: implausible pre-blackout throughput %.2f Mbps (perSec=%v)", mode, pre, perSec)
			}
			// The blackout's covering second must collapse.
			if perSec[8] > 0.5 {
				t.Errorf("%s: second 9 saw %.2f Mbps through a blackout", mode, perSec[8])
			}
			// Recovery: >= 80% of pre within 3 s of healing at t=10.
			best := 0.0
			for _, v := range perSec[10:13] {
				if v > best {
					best = v
				}
			}
			if best < 0.8*pre {
				t.Errorf("%s: post-heal best %.2f Mbps < 80%% of pre %.2f (perSec=%v)", mode, best, pre, perSec)
			}
			if snd.WatchdogTrips() != 1 || snd.WatchdogRecoveries() != 1 {
				t.Errorf("%s: trips=%d recoveries=%d, want 1/1", mode, snd.WatchdogTrips(), snd.WatchdogRecoveries())
			}
			if !inOutageMid || inOutageAfter {
				t.Errorf("%s: outage flag mid=%v after=%v, want true/false", mode, inOutageMid, inOutageAfter)
			}
			// No state growth during the outage: once the watchdog has
			// tripped, only quarter-second probes are added while the RTO
			// retires the pre-trip backlog — the record count must not
			// grow beyond the trip-time backlog plus the probe budget.
			if outstandingLate > outstandingAtTrip+8 {
				t.Errorf("%s: unacked records grew during outage: %d -> %d", mode, outstandingAtTrip, outstandingLate)
			}
		})
	}
}

// TestFaultAttributionConservation checks the netem accounting law
// under a composite fault plan: after every in-flight event drains,
// Delivered + LostRandom + Corrupted + Flushed = Enqueued + Duplicated,
// with blackout drops attributed separately (FaultDrop, never queued).
func TestFaultAttributionConservation(t *testing.T) {
	s := sim.New(7)
	link := netem.NewLink(s, 10, 100_000, 0.020)
	link.LossProb = 0.01
	path := &netem.Path{Link: link, AckDelay: 0.020}
	snd := transport.NewSender(1, path, fixedrate.New(8))
	snd.Survival = true
	snd.Limit = 4 << 20

	plan := chaos.Plan{Faults: []chaos.Fault{
		{Kind: chaos.KindCorrupt, At: 0.5, Dur: 2, Value: 0.1},
		{Kind: chaos.KindDuplicate, At: 1.0, Dur: 2, Value: 0.1},
		{Kind: chaos.KindReorder, At: 0.5, Dur: 3, Value: 0.2, Delay: 0.03},
		{Kind: chaos.KindBlackout, At: 3.5, Dur: 0.4},
		{Kind: chaos.KindAckBlackout, At: 4.5, Dur: 0.3},
		{Kind: chaos.KindPeerRestart, At: 5.2},
	}}
	chaos.ApplySim(s, link, path, plan, 30)
	snd.Start()
	s.Run(30)

	st := link.Stats()
	if st.Corrupted == 0 || st.Duplicated == 0 || st.Reordered == 0 || st.FaultDrop == 0 || st.Flushed == 0 {
		t.Fatalf("every fault must leave attribution: %+v", st)
	}
	got := st.Delivered + st.LostRandom + st.Corrupted + st.Flushed
	want := st.Enqueued + st.Duplicated
	if got != want {
		t.Fatalf("conservation violated: Delivered+LostRandom+Corrupted+Flushed=%d, Enqueued+Duplicated=%d (%+v)", got, want, st)
	}
	ps := path.Stats()
	if ps.AckDropped == 0 {
		t.Fatalf("ack blackout must attribute dropped acks: %+v", ps)
	}
}

// TestApplySimEmitsFaultTrace verifies that fault transitions land on
// the flight-recorder timeline with the chaos kind names.
func TestApplySimEmitsFaultTrace(t *testing.T) {
	s := sim.New(3)
	rec := trace.NewRecorder(trace.Options{})
	s.SetTrace(rec)
	link := netem.NewLink(s, 10, 100_000, 0.020)
	path := &netem.Path{Link: link, AckDelay: 0.020}
	plan := chaos.Plan{Faults: []chaos.Fault{
		{Kind: chaos.KindBlackout, At: 1, Dur: 1},
		{Kind: chaos.KindPeerRestart, At: 2.5},
	}}
	chaos.ApplySim(s, link, path, plan, 10)
	s.Run(10)

	want := map[string]int{"blackout": 0, "peer-restart": 0}
	for _, ev := range rec.Events(0) {
		if ev.Kind == trace.KindFault {
			want[ev.Note]++
		}
	}
	if want["blackout"] != 2 { // activation + clearance
		t.Errorf("blackout fault events = %d, want 2", want["blackout"])
	}
	if want["peer-restart"] != 1 {
		t.Errorf("peer-restart fault events = %d, want 1", want["peer-restart"])
	}
}
