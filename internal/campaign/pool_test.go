package campaign

import (
	"testing"
	"time"
)

// TestOrderedReduceOrdering checks the fold visits indices in order for
// every worker count, even when early items finish last.
func TestOrderedReduceOrdering(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16, 64} {
		var got []int
		OrderedReduce(50, workers, func(i int) int {
			if i%7 == 0 { // stagger completion order
				time.Sleep(time.Millisecond)
			}
			return i * i
		}, func(i, v int) {
			if v != i*i {
				t.Fatalf("workers=%d: index %d got value %d", workers, i, v)
			}
			got = append(got, i)
		})
		if len(got) != 50 {
			t.Fatalf("workers=%d: %d merges, want 50", workers, len(got))
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("workers=%d: merge order %v", workers, got)
			}
		}
	}
}

// TestOrderedReduceFoldIdentical checks a float fold is bit-identical
// across worker counts — the property campaign determinism rests on.
func TestOrderedReduceFoldIdentical(t *testing.T) {
	fold := func(workers int) float64 {
		sum := 0.0
		OrderedReduce(200, workers, func(i int) float64 {
			return 1.0 / float64(i+1)
		}, func(_ int, v float64) { sum += v })
		return sum
	}
	want := fold(1)
	for _, workers := range []int{2, 3, 8, 32} {
		if got := fold(workers); got != want {
			t.Fatalf("workers=%d: sum %v != sequential %v", workers, got, want)
		}
	}
}

func TestOrderedReduceEmpty(t *testing.T) {
	called := false
	OrderedReduce(0, 4, func(i int) int { return i }, func(int, int) { called = true })
	if called {
		t.Fatal("merge called for empty input")
	}
}

func TestSplitSeed(t *testing.T) {
	seen := map[int64]bool{}
	for n := int64(1); n <= 1000; n++ {
		s := SplitSeed(42, n)
		if s <= 0 {
			t.Fatalf("SplitSeed(42, %d) = %d, want positive", n, s)
		}
		if seen[s] {
			t.Fatalf("SplitSeed(42, %d) = %d collides", n, s)
		}
		seen[s] = true
	}
	if SplitSeed(1, 5) == SplitSeed(2, 5) {
		t.Fatal("different masters produced the same child seed")
	}
	if SplitSeed(7, 9) != SplitSeed(7, 9) {
		t.Fatal("SplitSeed not deterministic")
	}
}
