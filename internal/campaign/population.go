package campaign

import (
	"math"
	"math/rand"
)

// MixEntry is one controller class in the population, drawn per flow
// by weight. Proto names are whatever the injected Factory accepts —
// with the experiment harness's registry, "proteus-p", "proteus-s",
// "proteus-h", "cubic", "bbr", "bbr-s", "copa", "ledbat", "vivace", …
type MixEntry struct {
	Proto  string  `json:"proto"`
	Weight float64 `json:"weight"`
}

// PopulationSpec describes the workload a scenario carries: a diurnal
// Poisson flow-arrival process, bounded-Pareto (heavy-tailed) flow
// sizes, and a weighted controller mix.
type PopulationSpec struct {
	// ArrivalRate is the mean flow arrival rate in flows/sec; the
	// instantaneous rate is modulated by DiurnalAmp (0..1) over
	// DiurnalPeriod seconds of virtual time, emulating a day cycle:
	// λ(t) = ArrivalRate · (1 + DiurnalAmp · sin(2πt/Period)).
	ArrivalRate   float64 `json:"arrival_rate"`
	DiurnalAmp    float64 `json:"diurnal_amp"`
	DiurnalPeriod float64 `json:"diurnal_period"`

	// FlowKB bounds flow sizes in kilobytes; sizes follow a bounded
	// Pareto with tail index ParetoAlpha (smaller = heavier tail).
	FlowKB      Range   `json:"flow_kb"`
	ParetoAlpha float64 `json:"pareto_alpha"`

	// MaxFlows caps the flows spawned per scenario, bounding memory and
	// pinning total campaign flow count to Scenarios × MaxFlows when
	// the arrival process saturates the cap.
	MaxFlows int `json:"max_flows"`

	Mix []MixEntry `json:"mix"`
}

func (p PopulationSpec) withDefaults(duration float64) PopulationSpec {
	if p.ArrivalRate == 0 {
		p.ArrivalRate = 4
	}
	if p.DiurnalPeriod == 0 {
		p.DiurnalPeriod = duration
	}
	p.FlowKB = p.FlowKB.orDefault(Range{50, 20000})
	if p.ParetoAlpha == 0 {
		p.ParetoAlpha = 1.2
	}
	if p.MaxFlows == 0 {
		p.MaxFlows = 100
	}
	if len(p.Mix) == 0 {
		p.Mix = []MixEntry{
			{Proto: "proteus-p", Weight: 0.35},
			{Proto: "proteus-s", Weight: 0.35},
			{Proto: "cubic", Weight: 0.30},
		}
	}
	return p
}

// pickProto draws one controller name by mix weight.
func pickProto(mix []MixEntry, rng *rand.Rand) string {
	total := 0.0
	for _, m := range mix {
		total += m.Weight
	}
	x := rng.Float64() * total
	for _, m := range mix {
		x -= m.Weight
		if x < 0 {
			return m.Proto
		}
	}
	return mix[len(mix)-1].Proto
}

// boundedPareto draws from a Pareto(alpha) truncated to [lo, hi] by
// inverse-CDF sampling. hi <= lo degenerates to the constant lo.
func boundedPareto(rng *rand.Rand, alpha, lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	u := rng.Float64()
	ratio := math.Pow(lo/hi, alpha)
	return lo / math.Pow(1-u*(1-ratio), 1/alpha)
}

// sin2pi returns sin(2πx).
func sin2pi(x float64) float64 { return math.Sin(2 * math.Pi * x) }

// scavengers names the controller classes that, by design, yield to
// primary traffic; everything else counts as primary for yield and
// fairness rollups.
var scavengers = map[string]bool{
	"proteus-s": true,
	"ledbat":    true,
	"ledbat-25": true,
	"bbr-s":     true,
}

// IsScavenger reports whether a protocol name is a scavenger class.
func IsScavenger(proto string) bool { return scavengers[proto] }
