package campaign

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"pccproteus/internal/stats"
)

// Sketch shapes. These are part of the aggregate's identity: two
// aggregates merge only if they share them, and changing them changes
// golden outputs.
const (
	goodputBins = 48 // Mbps, log-spaced over [0.01, 1000)
	fctBins     = 48 // seconds, log-spaced over [0.01, 1000)
	rttBins     = 40 // seconds, log-spaced over [0.001, 10)
	fracBins    = 30 // unitless fractions, log-spaced over [0.001, 1)
)

// ClassAgg aggregates one controller class across every scenario.
type ClassAgg struct {
	Flows     int64          `json:"flows"`
	Completed int64          `json:"completed"`
	Bytes     int64          `json:"bytes"` // acked bytes, incl. partial flows
	Goodput   *stats.LogHist `json:"goodput_mbps"`
	FCT       *stats.LogHist `json:"fct_s"`
	RTT       *stats.LogHist `json:"rtt_s"`

	GoodputMoments stats.Moments `json:"goodput_moments"`
	RTTMoments     stats.Moments `json:"rtt_moments"`
	Loss           stats.Moments `json:"loss_frac"` // per-flow loss fraction
}

func newClassAgg() *ClassAgg {
	return &ClassAgg{
		Goodput: stats.NewLogHist(0.01, 1000, goodputBins),
		FCT:     stats.NewLogHist(0.01, 1000, fctBins),
		RTT:     stats.NewLogHist(0.001, 10, rttBins),
	}
}

func (c *ClassAgg) merge(o *ClassAgg) error {
	c.Flows += o.Flows
	c.Completed += o.Completed
	c.Bytes += o.Bytes
	if err := c.Goodput.Merge(o.Goodput); err != nil {
		return err
	}
	if err := c.FCT.Merge(o.FCT); err != nil {
		return err
	}
	if err := c.RTT.Merge(o.RTT); err != nil {
		return err
	}
	c.GoodputMoments.Merge(o.GoodputMoments)
	c.RTTMoments.Merge(o.RTTMoments)
	c.Loss.Merge(o.Loss)
	return nil
}

// Aggregate is the streaming campaign result: counters plus fixed-size
// sketches, mergeable across shards. Its JSON encoding is deterministic
// (encoding/json sorts map keys), which is what the worker-count
// determinism guarantee is stated against.
type Aggregate struct {
	Name      string `json:"name"`
	Seed      int64  `json:"seed"`
	Scenarios int64  `json:"scenarios"`
	Flows     int64  `json:"flows"`
	Completed int64  `json:"completed"`

	// Per-scenario distributions: scavenger yield (scavenger bytes as a
	// fraction of bottleneck capacity × duration), Jain's index over
	// completed primary flows, bottleneck utilization.
	ScavYield       *stats.LogHist `json:"scav_yield"`
	Fairness        *stats.LogHist `json:"fairness"`
	YieldMoments    stats.Moments  `json:"yield_moments"`
	FairnessMoments stats.Moments  `json:"fairness_moments"`
	Utilization     stats.Moments  `json:"utilization"`

	Classes map[string]*ClassAgg `json:"classes"`
}

func newAggregate() *Aggregate {
	return &Aggregate{
		ScavYield: stats.NewLogHist(0.001, 1, fracBins),
		Fairness:  stats.NewLogHist(0.001, 1, fracBins),
		Classes:   map[string]*ClassAgg{},
	}
}

// class returns the accumulator for proto, creating it on first use.
func (a *Aggregate) class(proto string) *ClassAgg {
	c := a.Classes[proto]
	if c == nil {
		c = newClassAgg()
		a.Classes[proto] = c
	}
	return c
}

// Merge folds another aggregate into a. Merge order matters for
// bit-exactness of the floating-point moments; Run folds in scenario
// order via OrderedReduce.
func (a *Aggregate) Merge(o *Aggregate) error {
	a.Scenarios += o.Scenarios
	a.Flows += o.Flows
	a.Completed += o.Completed
	if err := a.ScavYield.Merge(o.ScavYield); err != nil {
		return err
	}
	if err := a.Fairness.Merge(o.Fairness); err != nil {
		return err
	}
	a.YieldMoments.Merge(o.YieldMoments)
	a.FairnessMoments.Merge(o.FairnessMoments)
	a.Utilization.Merge(o.Utilization)
	// Per-key folds are independent, so map iteration order here does
	// not affect the result.
	for proto, oc := range o.Classes {
		if err := a.class(proto).merge(oc); err != nil {
			return fmt.Errorf("class %s: %w", proto, err)
		}
	}
	return nil
}

// EncodeJSON renders the aggregate as stable, indented JSON with a
// trailing newline — the byte stream the determinism tests and the CI
// golden compare.
func EncodeJSON(a *Aggregate) ([]byte, error) {
	b, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// ClassNames returns the aggregate's class keys sorted for stable
// rendering.
func (a *Aggregate) ClassNames() []string {
	names := make([]string, 0, len(a.Classes))
	for n := range a.Classes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Render formats the campaign report: headline counts, the scavenger
// yield / fairness / utilization distributions, and a per-class table.
func (a *Aggregate) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Campaign %q: %d scenarios, %d flows (%d completed), seed %d\n",
		a.Name, a.Scenarios, a.Flows, a.Completed, a.Seed)
	q := func(h *stats.LogHist, p float64) float64 { return h.Quantile(p) }
	fmt.Fprintf(&b, "%-34s %8s %8s %8s %8s %8s\n", "per-scenario distribution", "p10", "p50", "p90", "mean", "n")
	fmt.Fprintf(&b, "%-34s %8.4f %8.4f %8.4f %8.4f %8d\n", "scavenger yield (frac of capacity)",
		q(a.ScavYield, 0.10), q(a.ScavYield, 0.50), q(a.ScavYield, 0.90), a.YieldMoments.Mean, a.ScavYield.N())
	fmt.Fprintf(&b, "%-34s %8.4f %8.4f %8.4f %8.4f %8d\n", "primary fairness (Jain)",
		q(a.Fairness, 0.10), q(a.Fairness, 0.50), q(a.Fairness, 0.90), a.FairnessMoments.Mean, a.Fairness.N())
	fmt.Fprintf(&b, "%-34s %8s %8s %8s %8.4f %8d\n", "bottleneck utilization",
		"-", "-", "-", a.Utilization.Mean, a.Utilization.Count)
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-12s %5s %8s %8s %10s %10s %10s %9s %9s %9s %9s %9s\n",
		"class", "kind", "flows", "done", "bytes(MB)", "gput-p50", "gput-p90", "fct-p50", "rtt-p50", "rtt-p95", "rtt-p99", "loss-mean")
	for _, name := range a.ClassNames() {
		c := a.Classes[name]
		kind := "pri"
		if IsScavenger(name) {
			kind = "scav"
		}
		fmt.Fprintf(&b, "%-12s %5s %8d %8d %10.1f %10.3f %10.3f %9.3f %9.4f %9.4f %9.4f %9.5f\n",
			name, kind, c.Flows, c.Completed, float64(c.Bytes)/1e6,
			c.Goodput.Quantile(0.50), c.Goodput.Quantile(0.90),
			c.FCT.Quantile(0.50), c.RTT.Quantile(0.50),
			c.RTT.Quantile(0.95), c.RTT.Quantile(0.99), c.Loss.Mean)
	}
	return b.String()
}
