package campaign

import (
	"runtime"
	"sync/atomic"
)

// SplitSeed derives the n-th child seed from a master seed with a
// splitmix64-style finalizer — the same mix the experiment harness has
// always used for per-trial seeds (exp.Options now delegates here), so
// wire runs, figure trials, and campaign scenarios all draw from one
// seed-splitting scheme. The result is positive and never zero, so it
// can feed rand.NewSource and still leave 0 available as a "use
// defaults" sentinel in CLIs.
func SplitSeed(master, n int64) int64 {
	x := uint64(n) + uint64(master)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	s := int64(x)
	if s < 0 {
		s = -s
	}
	if s == 0 {
		s = 1
	}
	return s
}

// OrderedReduce evaluates fn(0..n-1) on up to workers goroutines and
// folds each result through merge in strictly increasing index order.
// Because the fold order is fixed, the reduction is bit-identical for
// any worker count — including floating-point merges, which are not
// associative under regrouping. This is what lets campaign aggregates
// (and figure trial means) shard across cores while staying exactly
// replayable.
//
// Results completing out of order wait in a reorder buffer whose size
// is bounded by the worker count (a worker blocks handing off its
// result, so nobody runs unboundedly ahead); memory stays O(workers),
// not O(n). workers <= 0 selects GOMAXPROCS. merge runs on the calling
// goroutine only.
func OrderedReduce[T any](n, workers int, fn func(i int) T, merge func(i int, v T)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			merge(i, fn(i))
		}
		return
	}
	type item struct {
		i int
		v T
	}
	ch := make(chan item, workers)
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		go func() {
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				ch <- item{i, fn(i)}
			}
		}()
	}
	pending := make(map[int]T, workers*2)
	for done := 0; done < n; {
		it := <-ch
		pending[it.i] = it.v
		for {
			v, ok := pending[done]
			if !ok {
				break
			}
			delete(pending, done)
			merge(done, v)
			done++
		}
	}
}
