package campaign_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"pccproteus/internal/campaign"
	"pccproteus/internal/exp"
	"pccproteus/internal/pathmodel"
)

// testSpec is a small but non-trivial campaign: all three topology
// kinds, a mixed population, enough scenarios to exercise sharding.
func testSpec() campaign.Spec {
	return campaign.Spec{
		Name:      "test",
		Seed:      7,
		Scenarios: 12,
		Duration:  8,
		Topology: []campaign.TopologySpec{
			{Kind: campaign.TopoDumbbell, Weight: 1},
			{Kind: campaign.TopoParkingLot, Weight: 1},
			{Kind: campaign.TopoSharedUplink, Weight: 1},
		},
		Pop: campaign.PopulationSpec{
			ArrivalRate: 3,
			DiurnalAmp:  0.5,
			FlowKB:      campaign.Range{Lo: 30, Hi: 2000},
			MaxFlows:    20,
			Mix: []campaign.MixEntry{
				{Proto: "proteus-p", Weight: 0.4},
				{Proto: "proteus-s", Weight: 0.4},
				{Proto: "cubic", Weight: 0.2},
			},
		},
	}
}

func runJSON(t *testing.T, spec campaign.Spec, workers int) []byte {
	t.Helper()
	agg, err := campaign.Run(spec, campaign.RunOpts{
		Workers:       workers,
		NewController: exp.NewControllerRNG,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := campaign.EncodeJSON(agg)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestCampaignDeterminismAcrossWorkers is the load-bearing guarantee:
// the same spec and seed produce byte-identical aggregate JSON with 1,
// 4, and 16 workers.
func TestCampaignDeterminismAcrossWorkers(t *testing.T) {
	spec := testSpec()
	want := runJSON(t, spec, 1)
	for _, workers := range []int{4, 16} {
		if got := runJSON(t, spec, workers); !bytes.Equal(got, want) {
			t.Fatalf("workers=%d aggregate differs from sequential run:\n%s\nvs\n%s",
				workers, got, want)
		}
	}
}

// TestCampaignSanity checks the aggregate's internal accounting.
func TestCampaignSanity(t *testing.T) {
	agg, err := campaign.Run(testSpec(), campaign.RunOpts{NewController: exp.NewControllerRNG})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Scenarios != 12 {
		t.Fatalf("Scenarios = %d, want 12", agg.Scenarios)
	}
	if agg.Flows == 0 {
		t.Fatal("campaign spawned no flows")
	}
	if agg.Completed == 0 || agg.Completed > agg.Flows {
		t.Fatalf("Completed = %d of %d flows", agg.Completed, agg.Flows)
	}
	var classFlows, classDone int64
	for proto, c := range agg.Classes {
		classFlows += c.Flows
		classDone += c.Completed
		if c.Completed > c.Flows {
			t.Fatalf("class %s: completed %d > flows %d", proto, c.Completed, c.Flows)
		}
		if int64(c.Goodput.N()) != c.Completed {
			t.Fatalf("class %s: goodput samples %d != completed %d", proto, c.Goodput.N(), c.Completed)
		}
	}
	if classFlows != agg.Flows || classDone != agg.Completed {
		t.Fatalf("class totals %d/%d != aggregate %d/%d", classFlows, classDone, agg.Flows, agg.Completed)
	}
	// Every scenario contributes exactly one yield and one utilization
	// sample.
	if agg.ScavYield.N() != agg.Scenarios || agg.Utilization.Count != agg.Scenarios {
		t.Fatalf("yield/util samples %d/%d, want %d", agg.ScavYield.N(), agg.Utilization.Count, agg.Scenarios)
	}
	if agg.YieldMoments.Mean < 0 || agg.YieldMoments.Mean > 1 {
		t.Fatalf("mean scavenger yield %v outside [0,1]", agg.YieldMoments.Mean)
	}
	if agg.Utilization.Mean <= 0 {
		t.Fatalf("mean utilization %v, want > 0", agg.Utilization.Mean)
	}
	if out := agg.Render(); len(out) == 0 {
		t.Fatal("empty render")
	}
}

// TestCampaignMergeAccumulates checks aggregate merging across two
// half-campaigns equals counters of the full run (integer counters;
// float moments are checked by the determinism test).
func TestCampaignMergeAccumulates(t *testing.T) {
	spec := testSpec()
	full, err := campaign.Run(spec, campaign.RunOpts{NewController: exp.NewControllerRNG})
	if err != nil {
		t.Fatal(err)
	}
	a := spec
	a.Scenarios = 12 // same scenario seeds: merging two full runs doubles counts
	again, err := campaign.Run(a, campaign.RunOpts{NewController: exp.NewControllerRNG})
	if err != nil {
		t.Fatal(err)
	}
	if err := full.Merge(again); err != nil {
		t.Fatal(err)
	}
	if full.Scenarios != 24 || full.Flows != 2*again.Flows {
		t.Fatalf("merge did not accumulate: %d scenarios, %d flows", full.Scenarios, full.Flows)
	}
}

func TestCampaignRejectsBadSpec(t *testing.T) {
	spec := testSpec()
	spec.Topology = []campaign.TopologySpec{{Kind: "moebius"}}
	if _, err := campaign.Run(spec, campaign.RunOpts{NewController: exp.NewControllerRNG}); err == nil {
		t.Fatal("unknown topology kind accepted")
	}
	if _, err := campaign.Run(testSpec(), campaign.RunOpts{}); err == nil {
		t.Fatal("missing factory accepted")
	}
}

func TestLoadSpecRejectsUnknownFields(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(path, []byte(`{"name":"x","scenarioz":3}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := campaign.LoadSpec(path); err == nil {
		t.Fatal("unknown field accepted")
	}
	if err := os.WriteFile(path, []byte(`{"name":"x","scenarios":3}`), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := campaign.LoadSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Scenarios != 3 || spec.Name != "x" {
		t.Fatalf("loaded spec %+v", spec)
	}
}

// TestCampaignGolden pins the smoke-spec aggregate byte-for-byte; CI
// runs the same spec through proteusbench -campaign and diffs against
// this file, so the golden guards both the library and the CLI path.
func TestCampaignGolden(t *testing.T) {
	spec, err := campaign.LoadSpec(filepath.Join("..", "..", "specs", "campaign-smoke.json"))
	if err != nil {
		t.Fatal(err)
	}
	got := runJSON(t, spec, 2)
	goldenPath := filepath.Join("testdata", "smoke_aggregate.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("smoke aggregate deviates from golden (UPDATE_GOLDEN=1 to refresh):\n%s", got)
	}
}

// TestCampaignPathModel drives campaign bottlenecks with path models —
// cellular fading on one topology family, LEO handover outages on the
// other — and checks the integration end to end: flows complete under
// the time-varying bottleneck, every scenario still contributes one
// utilization sample against the model's mean capacity, and the
// aggregate stays byte-identical across worker counts.
func TestCampaignPathModel(t *testing.T) {
	spec := testSpec()
	spec.Scenarios = 8
	spec.Duration = 10
	spec.Topology = []campaign.TopologySpec{
		{Kind: campaign.TopoDumbbell, Weight: 1,
			PathModel: &pathmodel.Spec{Kind: "lte"}},
		{Kind: campaign.TopoSharedUplink, Weight: 1,
			PathModel: &pathmodel.Spec{Kind: "leo", PeriodS: 5}},
	}
	agg, err := campaign.Run(spec, campaign.RunOpts{NewController: exp.NewControllerRNG})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Flows == 0 || agg.Completed == 0 {
		t.Fatalf("flows=%d completed=%d under path models", agg.Flows, agg.Completed)
	}
	if agg.Utilization.Count != agg.Scenarios {
		t.Fatalf("utilization samples %d, want %d", agg.Utilization.Count, agg.Scenarios)
	}
	if agg.Utilization.Mean <= 0 {
		t.Fatalf("mean utilization %v, want > 0", agg.Utilization.Mean)
	}
	want := runJSON(t, spec, 1)
	for _, workers := range []int{4} {
		if got := runJSON(t, spec, workers); !bytes.Equal(got, want) {
			t.Fatalf("workers=%d path-model aggregate differs from sequential run", workers)
		}
	}
}

// TestCampaignRejectsBadPathModel: a broken model spec must fail at
// validation, before any scenario runs.
func TestCampaignRejectsBadPathModel(t *testing.T) {
	for _, bad := range []*pathmodel.Spec{
		{Kind: "warp-drive"},
		{Kind: "trace"}, // no file
		{Kind: "trace", Path: filepath.Join(t.TempDir(), "missing.csv")},
	} {
		spec := testSpec()
		spec.Topology = []campaign.TopologySpec{{Kind: campaign.TopoDumbbell, PathModel: bad}}
		if _, err := campaign.Run(spec, campaign.RunOpts{NewController: exp.NewControllerRNG}); err == nil {
			t.Fatalf("bad path model %+v accepted", *bad)
		}
	}
}
