// Package campaign runs fleet-scale simulation campaigns: thousands of
// seeded scenarios — each a multi-bottleneck topology carrying a
// population of flows with stochastic arrivals, heavy-tailed sizes, and
// a mixed controller population — sharded across a worker pool with
// streaming aggregation. No per-flow trace is ever retained: every
// scenario folds its flows into fixed-size mergeable sketches
// (stats.Moments, stats.LogHist), and scenario aggregates are folded in
// strictly increasing scenario order (OrderedReduce), so the final
// aggregate is bit-identical regardless of worker count.
//
// Seeding uses the same splitmix64 scheme as the experiment harness:
// scenario i runs on SplitSeed(spec.Seed, i+1), making any scenario
// individually replayable (e.g. under the flight recorder) without
// rerunning the campaign.
package campaign

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"

	"pccproteus/internal/chaos"
	"pccproteus/internal/netem"
	"pccproteus/internal/pathmodel"
	"pccproteus/internal/sim"
	"pccproteus/internal/stats"
	"pccproteus/internal/transport"
)

// Factory builds a congestion controller by protocol name. The
// experiment harness's registry (exp.NewControllerRNG) is the canonical
// implementation; it is injected rather than imported so campaign stays
// below exp in the dependency order (exp reuses this package's pool).
type Factory func(rng *rand.Rand, proto string) transport.Controller

// Spec is a complete, JSON-serializable campaign description. The zero
// value of most fields selects a sensible default (see withDefaults);
// Scenarios and the topology/population shapes are what callers
// typically set.
type Spec struct {
	Name      string         `json:"name"`
	Seed      int64          `json:"seed"`      // master seed; 0 = 1
	Scenarios int            `json:"scenarios"` // seeded scenarios to run
	Duration  float64        `json:"duration"`  // virtual seconds per scenario
	Topology  []TopologySpec `json:"topologies"`
	Pop       PopulationSpec `json:"population"`
}

// LoadSpec reads a Spec from a JSON file. Unknown fields are rejected:
// a misspelled knob silently reverting to its default is exactly the
// kind of error a 100k-flow run should not absorb.
func LoadSpec(path string) (Spec, error) {
	var s Spec
	b, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return s, fmt.Errorf("campaign spec %s: %w", path, err)
	}
	return s, nil
}

func (s Spec) withDefaults() Spec {
	if s.Name == "" {
		s.Name = "campaign"
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Scenarios == 0 {
		s.Scenarios = 16
	}
	if s.Duration == 0 {
		s.Duration = 30
	}
	if len(s.Topology) == 0 {
		s.Topology = []TopologySpec{{Kind: TopoDumbbell}}
	}
	for i := range s.Topology {
		s.Topology[i] = s.Topology[i].withDefaults()
	}
	s.Pop = s.Pop.withDefaults(s.Duration)
	return s
}

func (s Spec) validate() error {
	if s.Scenarios < 0 || s.Duration <= 0 {
		return fmt.Errorf("campaign: bad scenario count %d / duration %g", s.Scenarios, s.Duration)
	}
	for _, t := range s.Topology {
		switch t.Kind {
		case TopoDumbbell, TopoParkingLot, TopoSharedUplink:
		default:
			return fmt.Errorf("campaign: unknown topology kind %q", t.Kind)
		}
		if t.Weight < 0 {
			return fmt.Errorf("campaign: negative topology weight %g", t.Weight)
		}
		if t.PathModel != nil {
			// Build once with a fixed probe seed: catches unknown kinds,
			// missing trace files, and parse errors before any scenario
			// runs, so a 100k-scenario campaign cannot die halfway in.
			probe := *t.PathModel
			if probe.Seed == 0 {
				probe.Seed = 1
			}
			m, err := probe.Build(s.Duration)
			if err != nil {
				return err
			}
			if err := pathmodel.Validate(m, s.Duration); err != nil {
				return err
			}
		}
	}
	if len(s.Pop.Mix) == 0 {
		return errors.New("campaign: empty controller mix")
	}
	for _, m := range s.Pop.Mix {
		if m.Weight < 0 {
			return fmt.Errorf("campaign: negative mix weight for %q", m.Proto)
		}
	}
	return nil
}

// RunOpts configures one campaign execution. Workers <= 0 uses
// GOMAXPROCS; the result does not depend on the worker count.
type RunOpts struct {
	Workers       int
	NewController Factory
}

// Run executes every scenario of the spec and returns the merged
// aggregate. Memory is bounded: per-flow state lives only inside a
// scenario, per-scenario sketches are O(1), and at most O(workers)
// scenario aggregates exist at once in the reorder buffer.
func Run(spec Spec, opts RunOpts) (*Aggregate, error) {
	if opts.NewController == nil {
		return nil, errors.New("campaign: RunOpts.NewController is required")
	}
	spec = spec.withDefaults()
	if err := spec.validate(); err != nil {
		return nil, err
	}
	total := newAggregate()
	total.Name = spec.Name
	total.Seed = spec.Seed
	OrderedReduce(spec.Scenarios, opts.Workers, func(i int) *Aggregate {
		return runScenario(spec, i, opts.NewController)
	}, func(_ int, a *Aggregate) {
		if err := total.Merge(a); err != nil {
			// All scenario aggregates share one shape; a mismatch is a
			// programming error, not an input error.
			panic(err)
		}
	})
	return total, nil
}

// flowState is the transient per-flow bookkeeping inside one scenario.
// It is dropped (and the sender released) as soon as the flow's metrics
// are folded into the aggregate.
type flowState struct {
	proto string
	scav  bool
	size  int64
	start float64
	done  bool
	snd   *transport.Sender
}

// runScenario builds and runs scenario idx and returns its aggregate.
func runScenario(spec Spec, idx int, factory Factory) *Aggregate {
	seed := SplitSeed(spec.Seed, int64(idx)+1)
	s := sim.New(seed)
	rng := s.Rand()

	ts := pickTopology(spec.Topology, rng)
	topo := buildTopology(s, ts, rng)
	survival := false
	if ts.PathModel != nil {
		ps := *ts.PathModel
		if ps.Seed == 0 {
			ps.Seed = seed // fresh trace per scenario
		}
		m, err := ps.Build(spec.Duration)
		if err == nil {
			err = pathmodel.ApplySim(s, topo.bottleneck, m, spec.Duration)
		}
		if err != nil {
			// validate() already built this spec once; failing here means
			// the environment changed mid-campaign (e.g. the trace file
			// vanished), which no aggregate can honestly absorb.
			panic(err)
		}
		if plan, ok := pathmodel.FaultPlan(m, spec.Duration); ok {
			// Outage windows ride the chaos executor. Blackout faults act
			// through the shared link, so the path argument (which chaos
			// writes ack-fault fields into) can be a throwaway.
			chaos.ApplySim(s, topo.bottleneck, &netem.Path{Link: topo.bottleneck}, plan, spec.Duration)
			survival = true
		}
		// The bottleneck's capacity is now time-varying: the utilization
		// and yield denominator is the model's time-weighted mean.
		topo.capacity = pathmodel.MeanMbps(m, spec.Duration) * 1e6 / 8
	}
	agg := newAggregate()
	agg.Scenarios = 1

	var (
		flows        []*flowState
		primaryGoods []float64 // completed primary goodputs, for Jain
		classBytes   = map[string]int64{}
	)

	complete := func(fs *flowState, now float64) {
		fs.done = true
		snd := fs.snd
		fs.snd = nil // release sender state; metrics are folded below
		ca := agg.class(fs.proto)
		ca.Completed++
		ca.Bytes += fs.size
		classBytes[fs.proto] += fs.size
		fct := now - fs.start
		if fct <= 0 {
			fct = 1e-9
		}
		goodput := float64(fs.size) * 8 / fct / 1e6
		ca.FCT.Add(fct)
		ca.Goodput.Add(goodput)
		ca.GoodputMoments.Add(goodput)
		if rtt := snd.SRTT(); rtt > 0 {
			ca.RTT.Add(rtt)
			ca.RTTMoments.Add(rtt)
		}
		if tot := snd.AckedBytes() + snd.LostBytes(); tot > 0 {
			ca.Loss.Add(float64(snd.LostBytes()) / float64(tot))
		}
		if !fs.scav {
			primaryGoods = append(primaryGoods, goodput)
		}
	}

	spawn := func(now float64) {
		pop := spec.Pop
		proto := pickProto(pop.Mix, rng)
		size := boundedPareto(rng, pop.ParetoAlpha, pop.FlowKB.Lo*1024, pop.FlowKB.Hi*1024)
		fs := &flowState{proto: proto, scav: IsScavenger(proto), size: int64(size), start: now}
		snd := transport.NewSender(len(flows)+1, topo.assign(rng), factory(rng, proto))
		snd.Limit = fs.size
		snd.Survival = survival // outage machinery only when the model has outages
		snd.OnComplete = func(at float64) { complete(fs, at) }
		fs.snd = snd
		flows = append(flows, fs)
		agg.Flows++
		agg.class(proto).Flows++
		snd.Start()
	}

	// Diurnal Poisson arrivals by thinning: candidate events at the peak
	// rate, accepted with probability λ(t)/λmax. Every draw comes from
	// the scenario's seeded source, so the arrival pattern is a pure
	// function of (spec, idx).
	pop := spec.Pop
	lambdaMax := pop.ArrivalRate * (1 + pop.DiurnalAmp)
	lambda := func(t float64) float64 {
		return pop.ArrivalRate * (1 + pop.DiurnalAmp*sin2pi(t/pop.DiurnalPeriod))
	}
	var arrive func()
	arrive = func() {
		if len(flows) >= pop.MaxFlows {
			return
		}
		s.After(rng.ExpFloat64()/lambdaMax, func() {
			now := s.Now()
			if rng.Float64()*lambdaMax < lambda(now) && len(flows) < pop.MaxFlows {
				spawn(now)
			}
			arrive()
		})
	}
	arrive()

	s.Run(spec.Duration)

	// Credit bytes of flows still in progress at the horizon, then fold
	// the scenario-level distributions.
	for _, fs := range flows {
		if fs.done {
			continue
		}
		b := fs.snd.AckedBytes()
		agg.class(fs.proto).Bytes += b
		classBytes[fs.proto] += b
		fs.snd = nil
	}
	capBytes := topo.capacity * spec.Duration
	var scavBytes, totalBytes int64
	for proto, b := range classBytes {
		totalBytes += b
		if IsScavenger(proto) {
			scavBytes += b
		}
	}
	agg.Completed = countCompleted(flows)
	agg.ScavYield.Add(float64(scavBytes) / capBytes)
	agg.YieldMoments.Add(float64(scavBytes) / capBytes)
	agg.Utilization.Add(float64(totalBytes) / capBytes)
	if len(primaryGoods) >= 2 {
		j := stats.JainIndex(primaryGoods)
		agg.Fairness.Add(j)
		agg.FairnessMoments.Add(j)
	}
	return agg
}

func countCompleted(flows []*flowState) int64 {
	var n int64
	for _, fs := range flows {
		if fs.done {
			n++
		}
	}
	return n
}
