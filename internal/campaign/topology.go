package campaign

import (
	"math/rand"

	"pccproteus/internal/netem"
	"pccproteus/internal/pathmodel"
	"pccproteus/internal/sim"
)

// Topology kinds. Each is built from composed netem links inside one
// simulation; flows are assigned paths through them per scenario.
const (
	// TopoDumbbell is the classic shared bottleneck: every flow crosses
	// one link, with per-flow heterogeneous base RTTs on the return path.
	TopoDumbbell = "dumbbell"
	// TopoParkingLot chains several bottleneck segments; "long" flows
	// traverse the whole chain while cross traffic loads one random
	// segment, the standard multi-bottleneck fairness stressor.
	TopoParkingLot = "parking-lot"
	// TopoSharedUplink models the last mile: each flow enters through
	// one of several constrained access links ("homes") that all feed a
	// shared aggregation bottleneck.
	TopoSharedUplink = "shared-uplink"
)

// Range is a closed interval sampled uniformly per scenario. Hi <= Lo
// degenerates to the constant Lo, so {"lo": 20} pins a parameter.
type Range struct {
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

func (r Range) sample(rng *rand.Rand) float64 {
	if r.Hi <= r.Lo {
		return r.Lo
	}
	return r.Lo + rng.Float64()*(r.Hi-r.Lo)
}

func (r Range) orDefault(def Range) Range {
	if r.Lo == 0 && r.Hi == 0 {
		return def
	}
	return r
}

// TopologySpec describes one topology family in a campaign's scenario
// mix; per-scenario parameters are drawn from the ranges.
type TopologySpec struct {
	Kind     string  `json:"kind"`
	Weight   float64 `json:"weight"`    // scenario mix weight (default 1)
	Mbps     Range   `json:"mbps"`      // bottleneck capacity
	RTTms    Range   `json:"rtt_ms"`    // base round-trip
	BufBDP   Range   `json:"buf_bdp"`   // queue capacity as a BDP multiple
	LossProb Range   `json:"loss_prob"` // random non-congestion loss

	// Parking-lot only: number of chained segments.
	Segments int `json:"segments"`
	// Shared-uplink only: access-link count and capacity range.
	Uplinks    int   `json:"uplinks"`
	UplinkMbps Range `json:"uplink_mbps"`

	// PathModel, when set, drives the topology's reference bottleneck
	// with a time-varying path model (lte, 5g, leo, trace) for the whole
	// scenario: capacity/delay steps through the hardened netem setters,
	// outage windows as chaos blackouts. A zero model seed draws a fresh
	// trace per scenario from the scenario seed; a fixed seed replays the
	// same trace in every scenario of the mix.
	PathModel *pathmodel.Spec `json:"path_model,omitempty"`
}

func (t TopologySpec) withDefaults() TopologySpec {
	if t.Weight == 0 {
		t.Weight = 1
	}
	t.Mbps = t.Mbps.orDefault(Range{10, 50})
	t.RTTms = t.RTTms.orDefault(Range{20, 80})
	t.BufBDP = t.BufBDP.orDefault(Range{0.5, 2})
	if t.Segments == 0 {
		t.Segments = 3
	}
	if t.Uplinks == 0 {
		t.Uplinks = 8
	}
	return t
}

// pickTopology draws one topology spec by mix weight.
func pickTopology(specs []TopologySpec, rng *rand.Rand) TopologySpec {
	total := 0.0
	for _, t := range specs {
		total += t.Weight
	}
	x := rng.Float64() * total
	for _, t := range specs {
		x -= t.Weight
		if x < 0 {
			return t
		}
	}
	return specs[len(specs)-1]
}

// topology is a built scenario substrate: assign hands each new flow a
// path through it, capacity is the reference bottleneck in bytes/sec
// (the denominator of utilization and scavenger yield), and bottleneck
// is the link a path model drives when the spec carries one.
type topology struct {
	capacity   float64
	bottleneck *netem.Link
	assign     func(rng *rand.Rand) *netem.Path
}

// newLink builds a link with the buffer sized in BDP multiples of this
// link's own rate/RTT, floored at two packets so a degenerate draw
// still forwards traffic.
func newLink(s *sim.Sim, mbps, rttSec, bufBDP, lossProb float64) *netem.Link {
	buf := int(bufBDP * mbps * 1e6 / 8 * rttSec)
	if buf < 2*netem.MTU {
		buf = 2 * netem.MTU
	}
	l := netem.NewLink(s, mbps, buf, rttSec/2)
	l.LossProb = lossProb
	return l
}

// ackDelayFor spreads per-flow base RTTs over [0.6, 1.4]× the nominal
// reverse delay, modeling the RTT heterogeneity of a real population.
func ackDelayFor(rng *rand.Rand, nominal float64) float64 {
	return nominal * (0.6 + 0.8*rng.Float64())
}

// buildTopology instantiates one sampled topology on the simulation.
func buildTopology(s *sim.Sim, ts TopologySpec, rng *rand.Rand) topology {
	mbps := ts.Mbps.sample(rng)
	rtt := ts.RTTms.sample(rng) / 1000
	bufBDP := ts.BufBDP.sample(rng)
	loss := ts.LossProb.sample(rng)

	switch ts.Kind {
	case TopoParkingLot:
		// k segments, each a bottleneck within ±20% of the drawn rate,
		// splitting the forward propagation delay evenly.
		k := ts.Segments
		segs := make([]*netem.Link, k)
		var minLink *netem.Link
		for i := range segs {
			m := mbps * (0.8 + 0.4*rng.Float64())
			segs[i] = newLink(s, m, rtt/float64(k), bufBDP, loss)
			if minLink == nil || segs[i].Rate < minLink.Rate {
				minLink = segs[i]
			}
		}
		return topology{
			capacity:   minLink.Rate,
			bottleneck: minLink,
			assign: func(rng *rand.Rand) *netem.Path {
				p := &netem.Path{AckDelay: ackDelayFor(rng, rtt/2)}
				if rng.Float64() < 0.5 {
					p.Link, p.Hops = segs[0], segs[1:]
				} else {
					p.Link = segs[rng.Intn(k)]
				}
				return p
			},
		}

	case TopoSharedUplink:
		// Constrained access links feeding one shared aggregation
		// bottleneck; most of the propagation delay sits behind the
		// shared link, as on a real last mile.
		upRange := ts.UplinkMbps.orDefault(Range{mbps * 0.1, mbps * 0.4})
		shared := newLink(s, mbps, rtt*0.75, bufBDP, loss)
		access := make([]*netem.Link, ts.Uplinks)
		for i := range access {
			access[i] = newLink(s, upRange.sample(rng), rtt*0.25, bufBDP, 0)
		}
		return topology{
			capacity:   shared.Rate,
			bottleneck: shared,
			assign: func(rng *rand.Rand) *netem.Path {
				return &netem.Path{
					Link:     access[rng.Intn(len(access))],
					Hops:     []*netem.Link{shared},
					AckDelay: ackDelayFor(rng, rtt/2),
				}
			},
		}

	default: // TopoDumbbell
		link := newLink(s, mbps, rtt, bufBDP, loss)
		return topology{
			capacity:   link.Rate,
			bottleneck: link,
			assign: func(rng *rand.Rand) *netem.Path {
				return &netem.Path{Link: link, AckDelay: ackDelayFor(rng, rtt/2)}
			},
		}
	}
}
