package exp

import (
	"pccproteus/internal/core"
	"pccproteus/internal/netem"
	"pccproteus/internal/sim"
	"pccproteus/internal/transport"
)

// AblationVariant is one noise-tolerance configuration of §5. The paper
// notes ("we do not have enough space to show how each tolerance
// mechanism contributes") that per-MI regression tolerance is necessary
// for saturation even on stable bottlenecks, trending tolerance enhances
// latency sensitivity, and the ACK filter and majority rule matter in
// highly dynamic networks — this experiment quantifies those claims.
type AblationVariant struct {
	Name   string
	Mutate func(cfg *core.Config)
}

// AblationVariants returns the standard ablation set: the full design
// plus one variant per disabled mechanism.
func AblationVariants() []AblationVariant {
	return []AblationVariant{
		{Name: "full", Mutate: func(*core.Config) {}},
		{Name: "no-ack-filter", Mutate: func(c *core.Config) { c.UseAckFilter = false }},
		{Name: "no-regression-tol", Mutate: func(c *core.Config) {
			c.UseRegressionTolerance = false
			c.FixedGradTolerance = 0.005 // falls back to Vivace's flat threshold
		}},
		{Name: "no-trending", Mutate: func(c *core.Config) { c.UseTrending = false }},
		{Name: "two-pair-probes", Mutate: func(c *core.Config) { c.ProbePairs = 2 }},
	}
}

// AblationResult quantifies one variant across the three §5 scenarios.
type AblationResult struct {
	Variant       string
	CleanSoloMbps float64 // stable 50 Mbps bottleneck, Proteus-P alone
	NoisySoloMbps float64 // WiFi-like jitter, Proteus-P alone
	YieldRatio    float64 // Proteus-P throughput share vs Proteus-S scavenger
}

// Ablation runs each variant in the three scenarios.
func Ablation(o Options) []AblationResult {
	o = o.withDefaults()
	dur := o.Duration
	var out []AblationResult
	for _, v := range AblationVariants() {
		res := AblationResult{Variant: v.Name}

		res.CleanSoloMbps = meanOver(o, func(seed int64) float64 {
			return ablationSolo(seed, v, emulabLink(375000), dur)
		})

		noisy := emulabLink(375000)
		noisy.Jitter = netem.SpikeNoise{
			Base:      netem.LognormalNoise{Median: 0.001, Sigma: 0.8},
			SpikeProb: 0.001, SpikeMin: 0.01, SpikeMax: 0.03,
		}
		res.NoisySoloMbps = meanOver(o, func(seed int64) float64 {
			return ablationSolo(seed, v, noisy, dur)
		})

		res.YieldRatio = meanOver(o, func(seed int64) float64 {
			return ablationYield(seed, v, emulabLink(375000), dur+80)
		})
		out = append(out, res)
	}
	return out
}

func ablationSolo(seed int64, v AblationVariant, link LinkSpec, dur float64) float64 {
	s := sim.New(seed)
	path := link.Build(s)
	cfg := core.ProteusConfig(s.Rand())
	v.Mutate(&cfg)
	cc := core.New("proteus-p:"+v.Name, cfg, core.NewPrimary())
	snd := transport.NewSender(1, path, cc)
	snd.Start()
	var mark int64
	s.At(dur*0.2, func() { mark = snd.AckedBytes() })
	s.Run(dur)
	return float64(snd.AckedBytes()-mark) * 8 / (dur * 0.8) / 1e6
}

func ablationYield(seed int64, v AblationVariant, link LinkSpec, dur float64) float64 {
	s := sim.New(seed)
	path := link.Build(s)
	pCfg := core.ProteusConfig(s.Rand())
	v.Mutate(&pCfg)
	sCfg := core.ProteusConfig(s.Rand())
	v.Mutate(&sCfg)
	p := transport.NewSender(1, path, core.New("proteus-p:"+v.Name, pCfg, core.NewPrimary()))
	scv := transport.NewSender(2, path, core.New("proteus-s:"+v.Name, sCfg, core.NewScavenger()))
	p.Start()
	s.At(20, func() { scv.Start() })
	var mp, ms int64
	from := dur * 0.4
	s.At(from, func() { mp, ms = p.AckedBytes(), scv.AckedBytes() })
	s.Run(dur)
	pT := float64(p.AckedBytes() - mp)
	sT := float64(scv.AckedBytes() - ms)
	if pT+sT == 0 {
		return 0
	}
	return pT / (pT + sT)
}

// AblationTable renders ablation results.
func AblationTable(rs []AblationResult) *Table {
	t := &Table{
		Title:   "Ablation: Proteus noise-tolerance mechanisms (§5)",
		XLabel:  "variant",
		Columns: []string{"clean(Mbps)", "noisy(Mbps)", "yieldShare"},
	}
	for _, r := range rs {
		t.Rows = append(t.Rows, TableRow{
			XName: r.Variant,
			Cells: []float64{r.CleanSoloMbps, r.NoisySoloMbps, r.YieldRatio},
		})
	}
	return t
}
