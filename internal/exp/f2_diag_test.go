package exp

import (
	"fmt"
	"os"
	"testing"

	"pccproteus/internal/stats"
)

func TestDiagFig2(t *testing.T) {
	if os.Getenv("PROTEUS_DIAG") == "" {
		t.Skip("diag")
	}
	for _, rate := range []float64{0, 9} {
		devs, grads := fig2Trial(nil, "", 1, rate, 120)
		fmt.Printf("rate=%v n=%d dev p10=%.5f p50=%.5f p90=%.5f | grad p10=%.5f p50=%.5f p90=%.5f\n",
			rate, len(devs),
			stats.Percentile(devs, 10), stats.Percentile(devs, 50), stats.Percentile(devs, 90),
			stats.Percentile(grads, 10), stats.Percentile(grads, 50), stats.Percentile(grads, 90))
	}
}
