package exp

import (
	"strings"
	"testing"
)

func TestFig11VideoShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	tab := Fig11Video(Options{Fast: true, Trials: 1})
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
	// Columns: none, proteus-s, ledbat, cubic. With 1 video on 100 Mbps
	// every background still leaves the top rung reachable except the
	// most aggressive ones; at 4 videos the orderings matter:
	last := tab.Rows[len(tab.Rows)-1]
	none, ps, led, cub := last.Cells[0], last.Cells[1], last.Cells[2], last.Cells[3]
	if none <= 0 || ps <= 0 || led <= 0 || cub <= 0 {
		t.Fatalf("degenerate bitrates: %v", last.Cells)
	}
	// §6.2.2: a Proteus-S background hurts DASH less than a CUBIC one.
	if ps < cub {
		t.Errorf("DASH bitrate with Proteus-S bg (%.2f) should beat CUBIC bg (%.2f)", ps, cub)
	}
	// And the no-background case is the ceiling.
	if ps > none*1.05 {
		t.Errorf("bg=proteus-s (%.2f) cannot exceed no-background (%.2f)", ps, none)
	}
}

func TestFig11WebShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	series := Fig11Web(Options{Fast: true, Trials: 1})
	med := map[string]float64{}
	for _, s := range series {
		if len(s.Values) == 0 {
			t.Fatalf("no page loads for %s", s.Name)
		}
		med[s.Name] = median(s.Values)
	}
	// Page loads with a Proteus-S background should be far closer to the
	// idle-link baseline than with a CUBIC background.
	none := med["bg=none"]
	ps := med["bg="+ProtoProteusS]
	cub := med["bg="+ProtoCubic]
	if !(none <= ps && ps <= cub) {
		t.Errorf("PLT ordering violated: none=%.2f proteus-s=%.2f cubic=%.2f", none, ps, cub)
	}
}

func TestFig12HybridShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	res := Fig12(Options{Fast: true, Trials: 1}, false)
	byKey := map[string]Fig12Result{}
	for _, r := range res {
		byKey[r.Mode+"@"+fmtBW(r.BandwidthMbps)] = r
	}
	// At the constrained 110 Mbps point, hybrid mode should lift the 4K
	// bitrate relative to pure primary without tanking the 1080P streams
	// (paper: up to +3 Mbps / 11%).
	h, p := byKey["proteus-h@110"], byKey["proteus-p@110"]
	if h.Bitrate4K < p.Bitrate4K-0.5 {
		t.Errorf("hybrid 4K bitrate %.2f should be ≥ primary %.2f", h.Bitrate4K, p.Bitrate4K)
	}
	if h.Bitrate1080 < 0.85*p.Bitrate1080 {
		t.Errorf("hybrid must not tank 1080P: %.2f vs %.2f", h.Bitrate1080, p.Bitrate1080)
	}
	if s := Fig12Table(res, false).Render(); !strings.Contains(s, "proteus-h") {
		t.Error("render incomplete")
	}
}

func fmtBW(bw float64) string {
	switch bw {
	case 80:
		return "80"
	case 110:
		return "110"
	case 100:
		return "100"
	case 120:
		return "120"
	}
	return "other"
}

func median(xs []float64) float64 {
	cp := append([]float64(nil), xs...)
	for i := range cp {
		for j := i + 1; j < len(cp); j++ {
			if cp[j] < cp[i] {
				cp[i], cp[j] = cp[j], cp[i]
			}
		}
	}
	return cp[len(cp)/2]
}
