package exp

import (
	"fmt"
	"math/rand"
	"sort"

	"pccproteus/internal/chaos"
	"pccproteus/internal/pathmodel"
	"pccproteus/internal/sim"
	"pccproteus/internal/stats"
	"pccproteus/internal/transport"
	"pccproteus/internal/wire"
)

// ---------------------------------------------------------------------
// Extension: pathmodel-driven scenarios (cellular, LEO satellite,
// datacenter incast). These figures run the same controllers on the
// composable time-varying path models of internal/pathmodel — the
// trace-driven LTE/5G channels, the periodic LEO constellation with
// handover micro-blackouts, and the synchronized incast fan-in — the
// environments §7.2 names beyond the paper's static-bottleneck grid.
// ---------------------------------------------------------------------

// cellularLink is the base path under a cellular model: the model
// rewrites capacity (and extra delay) from t=0, so only the RTT and
// buffer here matter.
func cellularLink(model string) LinkSpec {
	if model == "5g" {
		// mmWave-class: short RTT, buffer sized for the LoS rate.
		return LinkSpec{Mbps: 190, RTT: 0.020, BufBytes: 950_000}
	}
	return LinkSpec{Mbps: 25, RTT: 0.050, BufBytes: 600_000}
}

// pathRun is runTraced on a model-driven bottleneck: the model's
// rate/delay schedule is applied through the hardened netem setters,
// its outage windows (if any) through a chaos blackout plan, and every
// sender runs with the survival machinery armed whenever the model can
// black out the path.
func pathRun(tc *Tracing, scenario string, seed int64, m pathmodel.Model, link LinkSpec, flows []FlowSpec, measureFrom, duration float64) ([]FlowResult, error) {
	s := sim.New(seed)
	flush := tc.attach(s, scenario, flows)
	path := link.Build(s)
	if err := pathmodel.ApplySim(s, path.Link, m, duration); err != nil {
		return nil, err
	}
	plan, hasFaults := pathmodel.FaultPlan(m, duration)
	if hasFaults {
		chaos.ApplySim(s, path.Link, path, plan, duration)
	}
	senders := make([]*transport.Sender, len(flows))
	for i, f := range flows {
		cc := NewController(s, f.Proto)
		snd := transport.NewSender(i+1, path, cc)
		snd.Burst = BurstFor(f.Proto)
		snd.RecordRTT = true
		snd.Survival = hasFaults
		senders[i] = snd
		if f.StartAt <= 0 {
			snd.Start()
		} else {
			at := f.StartAt
			s.At(at, func() { snd.Start() })
		}
	}
	marks := make([]int64, len(flows))
	s.At(measureFrom, func() {
		for i, snd := range senders {
			marks[i] = snd.AckedBytes()
		}
	})
	s.Run(duration)
	flush()
	out := make([]FlowResult, len(flows))
	for i, snd := range senders {
		out[i] = FlowResult{
			Proto:      flows[i].Proto,
			Mbps:       float64(snd.AckedBytes()-marks[i]) * 8 / (duration - measureFrom) / 1e6,
			RTTSamples: snd.RTTSamples(),
		}
	}
	return out, nil
}

// CellularSolo runs each protocol alone on a trace-driven cellular
// channel (model "lte" or "5g", regenerated per trial seed) and
// reports throughput and 95th-percentile RTT.
func CellularSolo(o Options, protocols []string, model string) (*Table, error) {
	o = o.withDefaults()
	if protocols == nil {
		protocols = append(append([]string{}, AllSingle...), ProtoBBR2)
	}
	t := &Table{
		Title:   fmt.Sprintf("Cellular (%s trace model): solo flows", model),
		XLabel:  "protocol",
		Columns: []string{"Mbps", "p95RTT(ms)"},
	}
	dur := o.Duration
	link := cellularLink(model)
	for _, proto := range protocols {
		var tput, rtt float64
		for tr := 0; tr < o.Trials; tr++ {
			seed := o.seedFor(int64(tr + 1))
			m, err := pathmodel.ByName(model, seed, dur)
			if err != nil {
				return nil, err
			}
			rs, err := pathRun(o.Trace, fmt.Sprintf("cell_%s_%s_s%d", model, proto, tr+1),
				seed, m, link, []FlowSpec{{Proto: proto}}, dur*0.2, dur)
			if err != nil {
				return nil, err
			}
			tput += rs[0].Mbps
			rtt += rs[0].P95RTT()
		}
		n := float64(o.Trials)
		t.Rows = append(t.Rows, TableRow{XName: proto, Cells: []float64{tput / n, rtt * 1000 / n}})
	}
	return t, nil
}

// CellularYield measures scavenger yielding on the cellular channel:
// each primary runs solo and then with a Proteus-S scavenger joining
// at 10% of the run, reporting the primary's retained share and the
// scavenger's take.
func CellularYield(o Options, model string) (*Table, error) {
	o = o.withDefaults()
	primaries := []string{ProtoCubic, ProtoBBR, ProtoBBR2, ProtoCopa, ProtoProteusP}
	t := &Table{
		Title:   fmt.Sprintf("Cellular (%s trace model): primary + Proteus-S scavenger", model),
		XLabel:  "primary",
		Columns: []string{"solo Mbps", "shared Mbps", "yield%", "scav Mbps"},
	}
	dur := o.Duration
	link := cellularLink(model)
	for _, primary := range primaries {
		var solo, shared, scav float64
		for tr := 0; tr < o.Trials; tr++ {
			seed := o.seedFor(int64(tr + 1))
			m, err := pathmodel.ByName(model, seed, dur)
			if err != nil {
				return nil, err
			}
			rs, err := pathRun(o.Trace, fmt.Sprintf("cellyield_%s_%s_solo_s%d", model, primary, tr+1),
				seed, m, link, []FlowSpec{{Proto: primary}}, dur*0.2, dur)
			if err != nil {
				return nil, err
			}
			solo += rs[0].Mbps
			rs, err = pathRun(o.Trace, fmt.Sprintf("cellyield_%s_%s_scav_s%d", model, primary, tr+1),
				seed, m, link,
				[]FlowSpec{{Proto: primary}, {Proto: ProtoProteusS, StartAt: dur * 0.1}},
				dur*0.2, dur)
			if err != nil {
				return nil, err
			}
			shared += rs[0].Mbps
			scav += rs[1].Mbps
		}
		n := float64(o.Trials)
		yield := nan()
		if solo > 0 {
			yield = shared / solo * 100
		}
		t.Rows = append(t.Rows, TableRow{XName: primary,
			Cells: []float64{solo / n, shared / n, yield, scav / n}})
	}
	return t, nil
}

// satellitePre/Post describe the survival gate around one LEO
// handover at second h (outage tail of the pass, healing at h+0.15):
// pre is the best of the two full seconds before the outage, post the
// best of the three seconds after healing — the same ≥80%-within-3s
// gate the chaos blackout tests apply.
const satelliteRecoverFrac = 0.8

// SatelliteSurvival runs each protocol through the LEO constellation
// model — periodic capacity/delay passes with a handover micro-
// blackout every period — and reports overall throughput plus the
// handover-survival gate: worst-case post/pre recovery across the
// run's handovers, and the fraction of trials where every handover
// recovered to ≥80% within 3 s.
func SatelliteSurvival(o Options, protocols []string) (*Table, error) {
	o = o.withDefaults()
	if protocols == nil {
		protocols = []string{ProtoProteusS, ProtoProteusP, ProtoBBR2, ProtoBBR, ProtoCubic}
	}
	t := &Table{
		Title:   "LEO satellite: throughput across handover micro-blackouts",
		XLabel:  "protocol",
		Columns: []string{"Mbps", "pre Mbps", "post Mbps", "recov%", "surv%"},
	}
	// Two full handovers (t≈14.85 and t≈29.85 at the default 15 s
	// period) plus recovery room.
	const dur = 45.0
	for _, proto := range protocols {
		var mbps, pre, post, recov, surv float64
		for tr := 0; tr < o.Trials; tr++ {
			seed := o.seedFor(int64(tr + 1))
			r, err := satelliteTrial(o.Trace, fmt.Sprintf("sat_%s_s%d", proto, tr+1), seed, proto, dur)
			if err != nil {
				return nil, err
			}
			mbps += r.mbps
			pre += r.pre
			post += r.post
			recov += r.recov
			if r.survived {
				surv++
			}
		}
		n := float64(o.Trials)
		t.Rows = append(t.Rows, TableRow{XName: proto,
			Cells: []float64{mbps / n, pre / n, post / n, recov * 100 / n, surv * 100 / n}})
	}
	return t, nil
}

type satelliteResult struct {
	mbps, pre, post, recov float64
	survived               bool
}

// satelliteTrial runs one protocol once on the LEO model with
// per-second throughput sampling and evaluates the handover gate.
func satelliteTrial(tc *Tracing, scenario string, seed int64, proto string, dur float64) (satelliteResult, error) {
	m := pathmodel.DefaultLEO(seed)
	s := sim.New(seed)
	flows := []FlowSpec{{Proto: proto}}
	flush := tc.attach(s, scenario, flows)
	link := LinkSpec{Mbps: m.Mbps, RTT: 0.050, BufBytes: 1_125_000}
	path := link.Build(s)
	if err := pathmodel.ApplySim(s, path.Link, m, dur); err != nil {
		return satelliteResult{}, err
	}
	plan, _ := pathmodel.FaultPlan(m, dur)
	chaos.ApplySim(s, path.Link, path, plan, dur)

	cc := NewController(s, proto)
	snd := transport.NewSender(1, path, cc)
	snd.Burst = BurstFor(proto)
	snd.Survival = true

	secs := int(dur)
	perSec := make([]float64, secs)
	var prev int64
	for sec := 1; sec <= secs; sec++ {
		sec := sec
		s.At(float64(sec), func() {
			acked := snd.AckedBytes()
			perSec[sec-1] = float64(acked-prev) * 8 / 1e6
			prev = acked
		})
	}
	var mark int64
	measureFrom := dur * 0.1
	s.At(measureFrom, func() { mark = snd.AckedBytes() })
	snd.Start()
	s.Run(dur)
	flush()

	res := satelliteResult{
		mbps:     float64(snd.AckedBytes()-mark) * 8 / (dur - measureFrom) / 1e6,
		recov:    1,
		survived: true,
	}
	// Gate every handover whose 3 s recovery window fits in the run.
	// The recovery target is min(pre-handover rate, post-handover
	// capacity): successive passes draw different capacities (±35%
	// jitter), and no controller can restore a rate the new pass does
	// not offer — but within what it offers, this is exactly the raw
	// ≥80%-within-3s chaos gate.
	for _, f := range plan.Faults {
		heal := f.At + f.Dur
		if int(f.At) < 2 || int(heal)+3 > secs {
			continue
		}
		// Best of the two full seconds ending before the outage starts.
		preSec := int(f.At) // the outage's covering second (0-indexed)
		p := perSec[preSec-2]
		if perSec[preSec-1] > p {
			p = perSec[preSec-1]
		}
		// Best throughput — and best capacity — over the three seconds
		// after healing.
		q, postCap := 0.0, 0.0
		for k := int(heal); k < int(heal)+3; k++ {
			if perSec[k] > q {
				q = perSec[k]
			}
			if c := pathmodel.ClampMbps(m.StateAt(float64(k) + 0.5).Mbps); c > postCap {
				postCap = c
			}
		}
		target := p
		if postCap < target {
			target = postCap
		}
		res.pre += p
		res.post += q
		ratio := 1.0
		if target > 0 {
			ratio = q / target
		}
		if ratio < res.recov {
			res.recov = ratio
		}
		if q < satelliteRecoverFrac*target {
			res.survived = false
		}
	}
	if n := float64(len(plan.Faults)); n > 0 {
		res.pre /= n
		res.post /= n
	}
	return res, nil
}

// IncastFairness runs the synchronized incast wave: FanIn senders of
// the same protocol release equal responses into the shallow-buffered
// fan-in port at t=0, and the table reports aggregate goodput, Jain's
// fairness over per-flow completion rates, and the p50/p99 flow
// completion times.
func IncastFairness(o Options, protocols []string) *Table {
	o = o.withDefaults()
	if protocols == nil {
		protocols = []string{ProtoCubic, ProtoBBR, ProtoBBR2, ProtoCopa, ProtoProteusP, ProtoProteusS}
	}
	ic := pathmodel.Incast{}.WithDefaults()
	t := &Table{
		Title: fmt.Sprintf("Incast: %d synchronized senders, %d KiB responses, %d-packet buffer",
			ic.FanIn, ic.Bytes>>10, ic.BufPkts),
		XLabel:  "protocol",
		Columns: []string{"goodput Mbps", "Jain", "p50 FCT(ms)", "p99 FCT(ms)"},
	}
	for _, proto := range protocols {
		var goodput, jain, p50, p99 float64
		for tr := 0; tr < o.Trials; tr++ {
			g, j, f50, f99 := incastTrial(o.seedFor(int64(tr+1)), proto, ic)
			goodput += g
			jain += j
			p50 += f50
			p99 += f99
		}
		n := float64(o.Trials)
		t.Rows = append(t.Rows, TableRow{XName: proto,
			Cells: []float64{goodput / n, jain / n, p50 * 1000 / n, p99 * 1000 / n}})
	}
	return t
}

// incastTrial runs one synchronized wave and returns aggregate goodput
// (total bytes over the wave's completion time), Jain's index over
// per-flow completion rates, and the p50/p99 FCTs.
func incastTrial(seed int64, proto string, ic pathmodel.Incast) (goodput, jain, p50, p99 float64) {
	const timeout = 30.0
	s := sim.New(seed)
	path := ic.Build(s)
	fcts := make([]float64, ic.FanIn)
	for i := 0; i < ic.FanIn; i++ {
		i := i
		cc := NewController(s, proto)
		snd := transport.NewSender(i+1, path, cc)
		snd.Burst = BurstFor(proto)
		snd.Limit = ic.Bytes
		fcts[i] = timeout // overwritten on completion
		snd.OnComplete = func(now float64) { fcts[i] = now }
		snd.Start()
	}
	s.Run(timeout)
	rates := make([]float64, ic.FanIn)
	last := 0.0
	for i, f := range fcts {
		rates[i] = float64(ic.Bytes) / f
		if f > last {
			last = f
		}
	}
	sorted := append([]float64(nil), fcts...)
	sort.Float64s(sorted)
	goodput = float64(int64(ic.FanIn)*ic.Bytes) * 8 / last / 1e6
	jain = stats.JainIndex(rates)
	p50 = stats.PercentileSorted(sorted, 50)
	p99 = stats.PercentileSorted(sorted, 99)
	return goodput, jain, p50, p99
}

// PathModelWireParity cross-validates a trace-driven model between
// the two worlds: the same schedule drives the simulator link through
// pathmodel.ApplySim and the UDP loopback shim through the compiled
// ShimUpdates, and each protocol's throughput must agree within the
// standard parity tolerance. A nil model selects the default parity
// staircase — capacity and delay steps every few seconds, slow enough
// that both domains' controllers converge between steps, so the gate
// measures schedule-application parity rather than how a controller
// chases 100 ms fades in real time versus virtual time.
func PathModelWireParity(o WireParityOptions, m pathmodel.Model) (*WireParityResult, error) {
	o.defaults()
	if m == nil {
		m = ParityStaircase(o.Mbps)
	}
	res := &WireParityResult{Opts: o}
	for i, proto := range o.Protos {
		seed := o.Seed + int64(i)
		simMbps, simMean, simP95, simLoss, err := pathParitySim(seed, o, proto, m)
		if err != nil {
			return nil, fmt.Errorf("sim run %s: %w", proto, err)
		}
		plan, hasFaults := pathmodel.FaultPlan(m, o.Duration)
		cfg := wire.LoopbackConfig{
			NewController: func() transport.Controller {
				return NewControllerRNG(rand.New(rand.NewSource(wire.MixSeed(seed, 0x55))), proto)
			},
			Shim:        parityShim(seed, o),
			Schedule:    pathmodel.ShimUpdates(m, o.Duration),
			Duration:    o.Duration,
			MeasureFrom: o.MeasureFrom,
		}
		if hasFaults {
			cfg.Chaos = &plan
		}
		lb, err := wire.RunLoopback(cfg)
		if err != nil {
			return nil, fmt.Errorf("wire run %s: %w", proto, err)
		}
		var wLoss float64
		if tot := lb.Sender.AckedBytes + lb.Sender.LostBytes; tot > 0 {
			wLoss = float64(lb.Sender.LostBytes) / float64(tot)
		}
		row := WireParityRow{
			Proto:   proto,
			SimMbps: simMbps, WireMbps: lb.Mbps,
			SimMeanRTT: simMean, WireMeanRTT: lb.MeanRTT,
			SimP95RTT: simP95, WireP95RTT: lb.P95RTT,
			SimLoss: simLoss, WireLoss: wLoss,
		}
		if simMbps > 0 {
			row.TputErrPct = abs(lb.Mbps-simMbps) / simMbps * 100
		}
		row.Pass = row.TputErrPct <= o.TolerancePct
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// ParityStaircase is the default trace for the sim-vs-wire model gate:
// a deterministic capacity staircase around the base rate (0.5×, 1.5×,
// 0.75×, 1.25×…) with a delay bump on one tread, each tread lasting
// segLen seconds and the whole pattern looping over the duration.
func ParityStaircase(baseMbps float64) *pathmodel.Trace {
	const segLen = 2.5
	factors := []float64{1.0, 0.5, 1.5, 0.75, 1.25}
	extras := []float64{0, 0.010, 0, 0.005, 0}
	tr := &pathmodel.Trace{Label: "parity-stairs", Loop: true, Step: segLen}
	for i, f := range factors {
		tr.Points = append(tr.Points, pathmodel.TracePoint{
			T: float64(i) * segLen, Mbps: baseMbps * f, ExtraDelay: extras[i],
		})
	}
	return tr
}

// pathParitySim is wireParitySim with the model applied to the link:
// the simulator half of the trace-model parity gate.
func pathParitySim(seed int64, o WireParityOptions, proto string, m pathmodel.Model) (mbps, meanRTT, p95RTT, loss float64, err error) {
	s := sim.New(seed)
	link := LinkSpec{Mbps: o.Mbps, RTT: o.RTT, BufBytes: o.QueueBytes}
	path := link.Build(s)
	if err = pathmodel.ApplySim(s, path.Link, m, o.Duration); err != nil {
		return
	}
	if plan, hasFaults := pathmodel.FaultPlan(m, o.Duration); hasFaults {
		chaos.ApplySim(s, path.Link, path, plan, o.Duration)
	}
	cc := NewController(s, proto)
	snd := transport.NewSender(1, path, cc)
	snd.RecordRTT = true
	snd.Start()
	var markAcked int64
	markSamples := 0
	s.At(o.MeasureFrom, func() {
		markAcked = snd.AckedBytes()
		markSamples = len(snd.RTTSamples())
	})
	s.Run(o.Duration)
	window := o.Duration - o.MeasureFrom
	mbps = float64(snd.AckedBytes()-markAcked) * 8 / window / 1e6
	rtts := snd.RTTSamples()[markSamples:]
	meanRTT = stats.Mean(rtts)
	p95RTT = stats.Percentile(rtts, 95)
	if tot := snd.AckedBytes() + snd.LostBytes(); tot > 0 {
		loss = float64(snd.LostBytes()) / float64(tot)
	}
	return
}
