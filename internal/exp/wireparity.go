package exp

import (
	"fmt"
	"math"
	"math/rand"
	"net"
	"strings"
	"time"

	"pccproteus/internal/engine"
	"pccproteus/internal/sim"
	"pccproteus/internal/stats"
	"pccproteus/internal/transport"
	"pccproteus/internal/wire"
)

// WireParityOptions configures one sim-vs-wire cross-validation run:
// the same controller code drives both the discrete-event simulator
// and the real UDP loopback datapath on a matched bottleneck, and the
// resulting throughput/RTT/loss are compared.
type WireParityOptions struct {
	Protos       []string // default: proteus-p, proteus-s, proteus-h
	Mbps         float64  // bottleneck capacity (default 20)
	RTT          float64  // base round-trip, seconds (default 0.040)
	QueueBytes   int      // default 1.5 × BDP
	Duration     float64  // seconds, both domains (default 12; wire runs real time)
	MeasureFrom  float64  // default 0.4 × Duration
	Seed         int64    // master seed (0 = 1)
	TolerancePct float64  // throughput parity tolerance (default 15)
	// Engine runs the wire half on the sharded event-loop datapath
	// (internal/engine) instead of the legacy per-flow-goroutine path —
	// same controllers, same shim bottleneck, so the parity gate
	// cross-validates the engine datapath against the simulator.
	Engine bool
}

func (o *WireParityOptions) defaults() {
	if len(o.Protos) == 0 {
		o.Protos = []string{ProtoProteusP, ProtoProteusS, ProtoProteusH}
	}
	if o.Mbps <= 0 {
		o.Mbps = 20
	}
	if o.RTT <= 0 {
		o.RTT = 0.040
	}
	if o.QueueBytes <= 0 {
		o.QueueBytes = int(1.5 * o.Mbps * 1e6 / 8 * o.RTT)
	}
	if o.Duration <= 0 {
		o.Duration = 12
	}
	if o.MeasureFrom <= 0 || o.MeasureFrom >= o.Duration {
		o.MeasureFrom = 0.4 * o.Duration
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.TolerancePct <= 0 {
		o.TolerancePct = 15
	}
}

// WireParityRow is one protocol's matched measurements. Loss is the
// fraction lost/(acked+lost) in bytes, computed identically in both
// domains.
type WireParityRow struct {
	Proto                   string
	SimMbps, WireMbps       float64
	SimMeanRTT, WireMeanRTT float64
	SimP95RTT, WireP95RTT   float64
	SimLoss, WireLoss       float64
	TputErrPct              float64 // |wire−sim|/sim × 100
	Pass                    bool
}

// WireParityResult is the full cross-validation outcome.
type WireParityResult struct {
	Opts WireParityOptions
	Rows []WireParityRow
}

// AllPass reports whether every protocol met the throughput tolerance.
func (r *WireParityResult) AllPass() bool {
	for _, row := range r.Rows {
		if !row.Pass {
			return false
		}
	}
	return true
}

// WireParity runs each protocol once per domain and builds the parity
// table. The wire half runs in real time: expect ~len(Protos)×Duration
// wall seconds.
func WireParity(o WireParityOptions) (*WireParityResult, error) {
	o.defaults()
	res := &WireParityResult{Opts: o}
	for i, proto := range o.Protos {
		seed := o.Seed + int64(i)
		simMbps, simMean, simP95, simLoss := wireParitySim(seed, o, proto)

		var wMbps, wMean, wP95, wLoss float64
		if o.Engine {
			var err error
			wMbps, wMean, wP95, wLoss, err = wireParityEngine(seed, o, proto)
			if err != nil {
				return nil, fmt.Errorf("engine wire run %s: %w", proto, err)
			}
		} else {
			lb, err := wire.RunLoopback(wire.LoopbackConfig{
				NewController: func() transport.Controller {
					return NewControllerRNG(rand.New(rand.NewSource(wire.MixSeed(seed, 0x55))), proto)
				},
				Shim:        parityShim(seed, o),
				Duration:    o.Duration,
				MeasureFrom: o.MeasureFrom,
			})
			if err != nil {
				return nil, fmt.Errorf("wire run %s: %w", proto, err)
			}
			wMbps, wMean, wP95 = lb.Mbps, lb.MeanRTT, lb.P95RTT
			if tot := lb.Sender.AckedBytes + lb.Sender.LostBytes; tot > 0 {
				wLoss = float64(lb.Sender.LostBytes) / float64(tot)
			}
		}
		row := WireParityRow{
			Proto:   proto,
			SimMbps: simMbps, WireMbps: wMbps,
			SimMeanRTT: simMean, WireMeanRTT: wMean,
			SimP95RTT: simP95, WireP95RTT: wP95,
			SimLoss: simLoss, WireLoss: wLoss,
		}
		if simMbps > 0 {
			row.TputErrPct = math.Abs(wMbps-simMbps) / simMbps * 100
		}
		row.Pass = row.TputErrPct <= o.TolerancePct
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// parityShim is the matched bottleneck both wire datapaths run
// through, derived from the same option fields the sim link uses.
func parityShim(seed int64, o WireParityOptions) wire.ShimConfig {
	return wire.ShimConfig{
		RateMbps:   o.Mbps,
		QueueBytes: o.QueueBytes,
		Delay:      o.RTT / 2,
		AckDelay:   o.RTT / 2,
		Seed:       wire.MixSeed(seed, 0x77),
	}
}

// wireParityEngine is the engine-datapath wire half: the same
// controller drives one sender flow on a sharded event loop through
// the matched shim bottleneck into an engine receiver, measured over
// the same real-time window as the legacy path.
func wireParityEngine(seed int64, o WireParityOptions, proto string) (mbps, meanRTT, p95RTT, loss float64, err error) {
	recv, err := engine.New(engine.Config{})
	if err != nil {
		return
	}
	defer recv.Stop()
	snd, err := engine.New(engine.Config{})
	if err != nil {
		return
	}
	defer snd.Stop()
	if err = recv.Start(); err != nil {
		return
	}
	if err = snd.Start(); err != nil {
		return
	}
	shim, err := wire.NewShim(parityShim(seed, o), net.UDPAddrFromAddrPort(recv.Addrs()[0]))
	if err != nil {
		return
	}
	if err = shim.Start(); err != nil {
		shim.Stop()
		return
	}
	defer shim.Stop()
	fl, err := snd.AddFlow(engine.FlowConfig{
		Dst:       shim.Addr().AddrPort(),
		CC:        NewControllerRNG(rand.New(rand.NewSource(wire.MixSeed(seed, 0x55))), proto),
		RecordRTT: true,
	})
	if err != nil {
		return
	}
	time.Sleep(time.Duration(o.MeasureFrom * float64(time.Second)))
	mark := fl.Stats()
	markSamples := len(fl.RTTSamples())
	time.Sleep(time.Duration((o.Duration - o.MeasureFrom) * float64(time.Second)))
	st := fl.Stats()
	rtts := fl.RTTSamples()[markSamples:]
	window := o.Duration - o.MeasureFrom
	mbps = float64(st.AckedBytes-mark.AckedBytes) * 8 / window / 1e6
	meanRTT = stats.Mean(rtts)
	p95RTT = stats.Percentile(rtts, 95)
	if tot := st.AckedBytes + st.LostBytes; tot > 0 {
		loss = float64(st.LostBytes) / float64(tot)
	}
	return
}

// wireParitySim is the simulator half: a solo flow on the matched link,
// measured over the same window, with windowed RTT samples and a
// byte-fraction loss rate.
func wireParitySim(seed int64, o WireParityOptions, proto string) (mbps, meanRTT, p95RTT, loss float64) {
	s := sim.New(seed)
	link := LinkSpec{Mbps: o.Mbps, RTT: o.RTT, BufBytes: o.QueueBytes}
	path := link.Build(s)
	cc := NewController(s, proto)
	snd := transport.NewSender(1, path, cc)
	snd.RecordRTT = true
	snd.Start()
	var markAcked int64
	markSamples := 0
	s.At(o.MeasureFrom, func() {
		markAcked = snd.AckedBytes()
		markSamples = len(snd.RTTSamples())
	})
	s.Run(o.Duration)
	window := o.Duration - o.MeasureFrom
	mbps = float64(snd.AckedBytes()-markAcked) * 8 / window / 1e6
	rtts := snd.RTTSamples()[markSamples:]
	meanRTT = stats.Mean(rtts)
	p95RTT = stats.Percentile(rtts, 95)
	if tot := snd.AckedBytes() + snd.LostBytes(); tot > 0 {
		loss = float64(snd.LostBytes()) / float64(tot)
	}
	return mbps, meanRTT, p95RTT, loss
}

// Render formats the parity table with a PASS/FAIL verdict per row.
func (r *WireParityResult) Render() string {
	var b strings.Builder
	dp := "legacy"
	if r.Opts.Engine {
		dp = "engine"
	}
	fmt.Fprintf(&b, "# Sim vs wire parity (%s datapath): %.0f Mbps, %.0f ms RTT, %.1f s window, tolerance %.0f%%\n",
		dp, r.Opts.Mbps, r.Opts.RTT*1e3, r.Opts.Duration-r.Opts.MeasureFrom, r.Opts.TolerancePct)
	fmt.Fprintf(&b, "%-12s %9s %9s %7s %9s %9s %9s %9s %8s %8s  %s\n",
		"proto", "sim Mbps", "wire Mbps", "err%",
		"sim RTT", "wire RTT", "sim p95", "wire p95", "sim loss", "wire loss", "verdict")
	for _, row := range r.Rows {
		verdict := "PASS"
		if !row.Pass {
			verdict = "FAIL"
		}
		fmt.Fprintf(&b, "%-12s %9.2f %9.2f %7.1f %8.1fms %8.1fms %8.1fms %8.1fms %7.2f%% %7.2f%%  %s\n",
			row.Proto, row.SimMbps, row.WireMbps, row.TputErrPct,
			row.SimMeanRTT*1e3, row.WireMeanRTT*1e3,
			row.SimP95RTT*1e3, row.WireP95RTT*1e3,
			row.SimLoss*100, row.WireLoss*100, verdict)
	}
	return b.String()
}
