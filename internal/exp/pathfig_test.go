package exp

import (
	"math"
	"reflect"
	"testing"

	"pccproteus/internal/sim"
)

// TestBBR2Registered is the registration smoke for the bbr2 baseline:
// the protocol constant resolves through the registry used by every
// figure and by the wire harness.
func TestBBR2Registered(t *testing.T) {
	s := sim.New(1)
	cc := NewController(s, ProtoBBR2)
	if cc.Name() != "bbr2" {
		t.Fatalf("registry returned %q for %q", cc.Name(), ProtoBBR2)
	}
}

// TestSatelliteHandoverSurvival is the acceptance gate: on the LEO
// constellation model, Proteus-S must re-attain ≥80% of its
// pre-handover rate (capped by the new pass's capacity) within 3 s of
// every handover micro-blackout, in every trial.
func TestSatelliteHandoverSurvival(t *testing.T) {
	if testing.Short() {
		t.Skip("satellite survival gate skipped in -short")
	}
	tb, err := SatelliteSurvival(Options{Fast: true, Trials: 2}, []string{ProtoProteusS})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 || tb.Rows[0].XName != ProtoProteusS {
		t.Fatalf("rows = %+v", tb.Rows)
	}
	cells := tb.Rows[0].Cells // Mbps, pre, post, recov%, surv%
	if cells[4] != 100 {
		t.Fatalf("proteus-s survived only %.0f%% of trials (row %v)", cells[4], cells)
	}
	if cells[3] < 80 {
		t.Fatalf("proteus-s mean worst-case recovery %.1f%% < 80%% (row %v)", cells[3], cells)
	}
	if cells[0] <= 0 || cells[1] <= 0 || cells[2] <= 0 {
		t.Fatalf("implausible throughput cells %v", cells)
	}
}

// TestIncastFairnessTable checks the incast figure: every protocol —
// including the bbr2 baseline — produces a full row with goodput, a
// Jain index in (0, 1], and ordered FCT percentiles, and the table is
// bit-reproducible at a fixed seed.
func TestIncastFairnessTable(t *testing.T) {
	if testing.Short() {
		t.Skip("incast table skipped in -short")
	}
	protos := []string{ProtoCubic, ProtoBBR2, ProtoProteusS}
	tb := IncastFairness(Options{Fast: true, Trials: 1}, protos)
	if len(tb.Rows) != len(protos) {
		t.Fatalf("rows = %d, want %d", len(tb.Rows), len(protos))
	}
	sawBBR2 := false
	for _, r := range tb.Rows {
		if r.XName == ProtoBBR2 {
			sawBBR2 = true
		}
		goodput, jain, p50, p99 := r.Cells[0], r.Cells[1], r.Cells[2], r.Cells[3]
		if goodput <= 0 || math.IsNaN(goodput) {
			t.Fatalf("%s: goodput %v", r.XName, goodput)
		}
		if jain <= 0 || jain > 1+1e-9 {
			t.Fatalf("%s: Jain index %v outside (0,1]", r.XName, jain)
		}
		if p50 <= 0 || p99 < p50 {
			t.Fatalf("%s: FCT percentiles p50=%v p99=%v", r.XName, p50, p99)
		}
	}
	if !sawBBR2 {
		t.Fatal("bbr2 missing from the incast table")
	}
	again := IncastFairness(Options{Fast: true, Trials: 1}, protos)
	if !reflect.DeepEqual(tb, again) {
		t.Fatal("incast table not reproducible at a fixed seed")
	}
}

// TestCellularFigures runs reduced cellular solo and yield tables on
// both bundled generators and checks shape, finiteness, and seed
// reproducibility.
func TestCellularFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("cellular figures skipped in -short")
	}
	o := Options{Fast: true, Trials: 1, Duration: 20}
	for _, model := range []string{"lte", "5g"} {
		tb, err := CellularSolo(o, []string{ProtoProteusS, ProtoBBR2}, model)
		if err != nil {
			t.Fatal(err)
		}
		if len(tb.Rows) != 2 {
			t.Fatalf("%s: rows = %+v", model, tb.Rows)
		}
		for _, r := range tb.Rows {
			if r.Cells[0] <= 0 || math.IsNaN(r.Cells[0]) || r.Cells[1] <= 0 {
				t.Fatalf("%s %s: cells %v", model, r.XName, r.Cells)
			}
		}
		again, err := CellularSolo(o, []string{ProtoProteusS, ProtoBBR2}, model)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(tb, again) {
			t.Fatalf("%s: solo table not reproducible", model)
		}
	}
	ty, err := CellularYield(Options{Fast: true, Trials: 1, Duration: 20}, "lte")
	if err != nil {
		t.Fatal(err)
	}
	if len(ty.Rows) != 5 {
		t.Fatalf("yield rows = %+v", ty.Rows)
	}
	for _, r := range ty.Rows {
		if r.Cells[0] <= 0 || r.Cells[3] < 0 {
			t.Fatalf("yield %s: cells %v", r.XName, r.Cells)
		}
	}
}

// TestPathModelWireParity is the sim-vs-wire gate for the trace-driven
// model: the same generated LTE schedule drives both domains and the
// throughput must agree within the standard tolerance. The wire half
// runs in real time.
func TestPathModelWireParity(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time wire run skipped in -short")
	}
	res, err := PathModelWireParity(WireParityOptions{
		Protos:   []string{ProtoProteusP},
		Duration: 10,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllPass() {
		t.Fatalf("trace-model parity failed:\n%s", res.Render())
	}
	t.Log("\n" + res.Render())
}
