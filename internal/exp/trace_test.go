package exp

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pccproteus/internal/trace"
)

// TestTracingReducesToTimeline is the subsystem's end-to-end acceptance
// check: run a Fig-14-style scenario with the flight recorder attached,
// read the per-flow JSONL files back, and verify that the reduced
// throughput timeline reproduces the harness's printed per-second
// series exactly — the trace alone is enough to rebuild the figure.
func TestTracingReducesToTimeline(t *testing.T) {
	dir := t.TempDir()
	tc := &Tracing{Dir: dir}
	link := emulabLink(375000)
	dur := 30.0
	series := timeline(tc, "fig14_bbr_vs_bbrs", 1, link,
		[]FlowSpec{{Proto: ProtoBBR}, {Proto: ProtoBBRS, StartAt: 10}}, dur)
	if err := tc.Err(); err != nil {
		t.Fatal(err)
	}
	// The link's own ring (queue depth samples) is flow 0.
	if _, err := os.Stat(filepath.Join(dir, "fig14_bbr_vs_bbrs_flow0_link.jsonl")); err != nil {
		t.Errorf("link trace file missing: %v", err)
	}
	for fi, s := range series {
		name := fmt.Sprintf("fig14_bbr_vs_bbrs_flow%d_%s.jsonl", fi+1, sanitizeName(s.Name))
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("flow trace file: %v", err)
		}
		evs, err := trace.ReadJSONL(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sum := trace.Reduce(evs, 1, dur)
		if len(sum.ThroughputMbps) != len(s.Mbps) {
			t.Fatalf("%s: reduced %d buckets, timeline has %d", name, len(sum.ThroughputMbps), len(s.Mbps))
		}
		for i, want := range s.Mbps {
			if math.Abs(sum.ThroughputMbps[i]-want) > 1e-9 {
				t.Errorf("%s: second %d: reduced %.9f Mbps, timeline printed %.9f",
					name, i, sum.ThroughputMbps[i], want)
			}
		}
	}
}

// TestTracingRunWritesPerFlowFiles covers the Run path (used by the
// non-timeline figures) plus masking and duplicate-scenario dedup.
func TestTracingRunWritesPerFlowFiles(t *testing.T) {
	dir := t.TempDir()
	tc := &Tracing{Dir: dir, Mask: trace.MaskOf(trace.KindRTTSample)}
	link := emulabLink(75000)
	flows := []FlowSpec{{Proto: ProtoCubic}, {Proto: ProtoProteusS, StartAt: 2}}
	runTraced(tc, "fig6_buf75000_cubic_vs_proteus-s_s1", 1, link, flows, 5, 10)
	runTraced(tc, "fig6_buf75000_cubic_vs_proteus-s_s1", 2, link, flows, 5, 10)
	if err := tc.Err(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"fig6_buf75000_cubic_vs_proteus-s_s1_flow1_cubic.jsonl",
		"fig6_buf75000_cubic_vs_proteus-s_s1_flow2_proteus-s.jsonl",
		"fig6_buf75000_cubic_vs_proteus-s_s1_run2_flow1_cubic.jsonl",
	} {
		path := filepath.Join(dir, name)
		f, err := os.Open(path)
		if err != nil {
			t.Fatalf("expected trace file: %v", err)
		}
		evs, err := trace.ReadJSONL(f)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(evs) == 0 {
			t.Errorf("%s: no events", name)
		}
		for _, ev := range evs {
			if ev.Kind != trace.KindRTTSample {
				t.Errorf("%s: masked recorder captured kind %v", name, ev.Kind)
				break
			}
		}
	}
	// With only RTT samples enabled, the link never records (its ring
	// holds queue/drop events), so no flow0 file is written.
	if _, err := os.Stat(filepath.Join(dir, "fig6_buf75000_cubic_vs_proteus-s_s1_flow0_link.jsonl")); err == nil {
		t.Error("link file written despite queue/drop kinds masked off")
	}
}

func TestSanitizeName(t *testing.T) {
	if got := sanitizeName("fixed:20"); got != "fixed-20" {
		t.Errorf("sanitizeName(fixed:20) = %q", got)
	}
	if got := sanitizeName("a/b c*d"); got != "a-b-c-d" {
		t.Errorf("sanitizeName = %q", got)
	}
	if got := sanitizeName("fig14_bbr-s.x_Y9"); !strings.EqualFold(got, "fig14_bbr-s.x_Y9") {
		t.Errorf("sanitizeName mangled safe chars: %q", got)
	}
}
