package exp

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch:\n got:\n%s\nwant:\n%s", name, got, want)
	}
}

// TestTableWriteCSVGolden pins the table CSV format, including RFC-4180
// quoting of row labels containing commas and quotes, and NaN cells.
func TestTableWriteCSVGolden(t *testing.T) {
	tbl := &Table{
		Title:   "quoting test",
		XLabel:  "config",
		Columns: []string{"tput", "p95"},
		Rows: []TableRow{
			{XName: `buf="small", fast`, Cells: []float64{1.25, math.NaN()}},
			{XName: "fixed:20", Cells: []float64{20, 0.0301}},
			{X: 37.5, Cells: []float64{1.0 / 3.0, 2}},
			{X: 0.001, Cells: []float64{-1.5e-7, 1e9}},
		},
	}
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "table.csv", buf.Bytes())
}

func TestWriteCDFCSVGolden(t *testing.T) {
	series := []CDFSeries{
		{Name: "bbr vs proteus-s", Values: []float64{0.9, 0.5, 1.0, 0.75}},
		{Name: `odd,"name"`, Values: []float64{0.25}},
	}
	var buf bytes.Buffer
	if err := WriteCDFCSV(&buf, series); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "cdf.csv", buf.Bytes())
}

func TestWriteTimelineCSVGolden(t *testing.T) {
	series := []TimelineSeries{
		{Name: "bbr", Mbps: []float64{48.2, 31.7, 0}},
		{Name: "bbr-s", Mbps: []float64{0, 15.5, 46.333333}},
	}
	var buf bytes.Buffer
	if err := WriteTimelineCSV(&buf, "fig14, \"fast\"", series); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "timeline.csv", buf.Bytes())
}
