package exp

import (
	"pccproteus/internal/engine"
	"pccproteus/internal/overload"
)

// OverloadFig runs the engine-datapath degradation scenarios — a 4×
// scavenger flow flood and an ack-starved slow-receiver phase — on
// real loopback sockets and tabulates graceful-degradation metrics:
// primary goodput before / during / after the load, the retention
// ratio under load, time to recover once the load is removed, and the
// class-aware shed/reject/BUSY counters that show the brownout
// machinery spent the pressure on scavengers, not primaries.
func OverloadFig(o Options) (*Table, error) {
	o = o.withDefaults()
	dur := 2.0
	if o.Fast {
		dur = 1.0
	}
	seed := o.Seed
	if seed == 0 {
		seed = 1
	}

	type scenario struct {
		name string
		cfg  engine.OverloadConfig
	}
	scenarios := []scenario{
		{
			// 6 primaries on a 24-slot receiver, hit by 24 scavengers:
			// a 4× flood that drives occupancy through Shed.
			name: "flood-4x",
			cfg: engine.OverloadConfig{
				PrimaryFlows: 6,
				RecvFlowCap:  24,
				Plan: overload.Plan{Phases: []overload.Phase{
					{Kind: overload.KindFlood, At: 0, Flows: 24, Dur: dur},
				}},
				Overload: overload.Config{RecoverHold: 0.4},
				Seed:     seed,
			},
		},
		{
			// A mute endpoint starves a mixed population: the starved
			// flows fill their own engine's table until it sheds the
			// scavenger half and refuses further admissions.
			name: "ack-starve",
			cfg: engine.OverloadConfig{
				PrimaryFlows: 6,
				RecvFlowCap:  16,
				Plan: overload.Plan{Phases: []overload.Phase{
					{Kind: overload.KindAckStarve, At: 0, Flows: 32, Dur: dur},
				}},
				Overload: overload.Config{RecoverHold: 0.4},
				Seed:     seed + 1,
			},
		},
	}

	t := &Table{
		Title:  "Overload: class-aware degradation under flow flood / ack starvation",
		XLabel: "scenario",
		Columns: []string{
			"pre_mbps", "load_mbps", "post_mbps", "retain_pct", "recover_s",
			"shed_scav", "shed_prim", "rej_scav", "busy_tx",
		},
	}
	for _, sc := range scenarios {
		res, err := engine.RunOverload(sc.cfg)
		if err != nil {
			return nil, err
		}
		retain := 0.0
		if res.PreGoodput > 0 {
			retain = 100 * res.LoadGoodput / res.PreGoodput
		}
		// The load engines feel ack-starve pressure themselves; fold
		// their counters in with the receiver's so each scenario's row
		// reports everything the brownout machinery did.
		shedScav := res.Recv.ShedScavenger + res.Load.ShedScavenger
		shedPrim := res.Recv.ShedPrimary + res.Load.ShedPrimary
		rejScav := res.Recv.RejectedScavenger + res.Load.RejectedScavenger
		busyTx := res.Recv.BusyTx + res.Load.BusyTx
		t.Rows = append(t.Rows, TableRow{
			XName: sc.name,
			Cells: []float64{
				res.PreGoodput * 8 / 1e6,
				res.LoadGoodput * 8 / 1e6,
				res.PostGoodput * 8 / 1e6,
				retain,
				res.RecoverySecs,
				float64(shedScav),
				float64(shedPrim),
				float64(rejScav),
				float64(busyTx),
			},
		})
	}
	return t, nil
}
