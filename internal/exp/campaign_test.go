package exp

import (
	"strings"
	"testing"

	"pccproteus/internal/campaign"
)

// TestCampaignBridge runs a tiny campaign through the exp registry and
// checks the figure-table bridge renders every class.
func TestCampaignBridge(t *testing.T) {
	spec := campaign.Spec{
		Seed: 3, Scenarios: 4, Duration: 6,
		Pop: campaign.PopulationSpec{
			ArrivalRate: 3,
			FlowKB:      campaign.Range{Lo: 30, Hi: 500},
			MaxFlows:    8,
			Mix: []campaign.MixEntry{
				{Proto: ProtoProteusP, Weight: 1},
				{Proto: ProtoProteusS, Weight: 1},
			},
		},
	}
	agg, err := RunCampaign(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	tab := CampaignTable(agg)
	if len(tab.Rows) != len(agg.Classes) {
		t.Fatalf("%d table rows for %d classes", len(tab.Rows), len(agg.Classes))
	}
	out := tab.Render()
	for name := range agg.Classes {
		if !strings.Contains(out, name) {
			t.Fatalf("rendered table missing class %s:\n%s", name, out)
		}
	}
	sum := CampaignSummaryTable(agg)
	if len(sum.Rows) != 3 || !strings.Contains(sum.Render(), "scav-yield") {
		t.Fatalf("summary table malformed:\n%s", sum.Render())
	}
}
