package exp

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"pccproteus/internal/sim"
	"pccproteus/internal/trace"
)

// Tracing configures flight-recorder capture for the experiment
// harness. When attached (via Options.Trace), every simulation a figure
// runs records trace events and writes one JSONL file per flow into
// Dir, named <scenario>_flow<N>_<proto>.jsonl (flow 0 is the link's own
// ring, holding queue-depth samples). A nil *Tracing disables capture
// with no overhead: the simulations never see a recorder.
//
// Tracing is safe for concurrent use by figures running in parallel;
// write errors are collected rather than aborting the runs and are
// reported by Err.
type Tracing struct {
	Dir         string     // output directory (created on demand)
	Mask        trace.Mask // event kinds to record; 0 = all
	FlowCap     int        // per-flow ring capacity; 0 = trace.DefaultFlowCap
	SampleEvery int        // stride for high-rate kinds; 0/1 = every event
	CSV         bool       // also write a .csv beside each .jsonl

	mu   sync.Mutex
	seen map[string]int
	errs []error
}

func (tc *Tracing) enabled() bool { return tc != nil && tc.Dir != "" }

// attach hooks a fresh recorder onto s and returns a flush function
// that writes the captured per-flow files once the run completes. With
// tracing disabled both the hook and the flush are no-ops.
func (tc *Tracing) attach(s *sim.Sim, scenario string, flows []FlowSpec) func() {
	if !tc.enabled() {
		return func() {}
	}
	mask := tc.Mask
	if mask == 0 {
		mask = trace.AllEvents
	}
	rec := trace.NewRecorder(trace.Options{Mask: mask, FlowCap: tc.FlowCap, SampleEvery: tc.SampleEvery})
	s.SetTrace(rec)
	return func() { tc.flush(rec, scenario, flows) }
}

func (tc *Tracing) flush(rec *trace.Recorder, scenario string, flows []FlowSpec) {
	base := tc.unique(sanitizeName(scenario))
	if err := os.MkdirAll(tc.Dir, 0o755); err != nil {
		tc.fail(err)
		return
	}
	for _, flow := range rec.Flows() {
		name := "link"
		if flow > 0 {
			if int(flow) <= len(flows) {
				name = sanitizeName(flows[flow-1].Proto)
			} else {
				// Dynamically spawned cross traffic (e.g. Fig 2's short
				// CUBIC flows) has no spec entry.
				name = fmt.Sprintf("x%d", flow)
			}
		}
		stem := fmt.Sprintf("%s_flow%d_%s", base, flow, name)
		evs := rec.Events(flow)
		if err := tc.writeFile(stem+".jsonl", evs, trace.WriteJSONL); err != nil {
			tc.fail(fmt.Errorf("trace %s: %w", stem, err))
			continue
		}
		if tc.CSV {
			if err := tc.writeFile(stem+".csv", evs, trace.WriteCSV); err != nil {
				tc.fail(fmt.Errorf("trace %s: %w", stem, err))
			}
		}
	}
}

func (tc *Tracing) writeFile(name string, evs []trace.Event, write func(w io.Writer, evs []trace.Event) error) error {
	f, err := os.Create(filepath.Join(tc.Dir, name))
	if err != nil {
		return err
	}
	if err := write(f, evs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// unique disambiguates repeated scenario labels (repeat trials of the
// same configuration) by suffixing _run2, _run3, ...
func (tc *Tracing) unique(base string) string {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if tc.seen == nil {
		tc.seen = make(map[string]int)
	}
	tc.seen[base]++
	if n := tc.seen[base]; n > 1 {
		return fmt.Sprintf("%s_run%d", base, n)
	}
	return base
}

func (tc *Tracing) fail(err error) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	tc.errs = append(tc.errs, err)
}

// Err returns the accumulated write errors, or nil. Nil-receiver safe.
func (tc *Tracing) Err() error {
	if tc == nil {
		return nil
	}
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return errors.Join(tc.errs...)
}

// sanitizeName maps a scenario or protocol label to a filesystem-safe
// token: anything outside [A-Za-z0-9._-] becomes '-' ("fixed:20" →
// "fixed-20").
func sanitizeName(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		default:
			return '-'
		}
	}, s)
}
