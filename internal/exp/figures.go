package exp

import (
	"fmt"
	"math"

	"pccproteus/internal/campaign"
	"pccproteus/internal/cc/cubic"
	"pccproteus/internal/netem"
	"pccproteus/internal/sim"
	"pccproteus/internal/stats"
	"pccproteus/internal/transport"
)

// Options tunes experiment size. The zero value gives paper-scale runs;
// Fast selects reduced grids and durations for tests and benchmarks.
// Trace, when non-nil, attaches a flight recorder to every simulation
// and writes per-flow JSONL event files (see Tracing).
type Options struct {
	Trials   int
	Duration float64
	Fast     bool
	Trace    *Tracing

	// Seed offsets every per-trial RNG seed. Zero keeps the historical
	// fixed seeds (1, 2, 3, …) so default figure output is unchanged;
	// any other value remaps each trial seed through campaign.SplitSeed,
	// giving an independent but still deterministic replication.
	Seed int64

	// Workers bounds the campaign worker pool that runs independent
	// trials. Zero means one worker per CPU. Figure output is identical
	// for any value: trial results fold in trial order.
	Workers int
}

// seedFor maps a stable per-trial index to the seed actually used.
func (o Options) seedFor(n int64) int64 {
	if o.Seed == 0 {
		return n
	}
	return campaign.SplitSeed(o.Seed, n)
}

func (o Options) withDefaults() Options {
	if o.Trials == 0 {
		if o.Fast {
			o.Trials = 1
		} else {
			o.Trials = 3
		}
	}
	if o.Duration == 0 {
		if o.Fast {
			o.Duration = 60
		} else {
			o.Duration = 100
		}
	}
	return o
}

// emulabLink is the default §6 bottleneck: 50 Mbps, 30 ms RTT.
func emulabLink(bufBytes int) LinkSpec {
	return LinkSpec{Mbps: 50, RTT: 0.030, BufBytes: bufBytes}
}

// ---------------------------------------------------------------------
// Figure 2: RTT deviation vs RTT gradient as competition indicators.
// ---------------------------------------------------------------------

// Fig2Result carries the PDFs of the two metrics under each cross-flow
// arrival rate, plus the confusion probabilities.
type Fig2Result struct {
	ArrivalRates   []float64
	DevHistograms  []*stats.Histogram // per arrival rate, deviation (ms)
	GradHistograms []*stats.Histogram // per arrival rate, |gradient|
	DevConfusion   float64            // P(metric(9/s) < metric(0/s))
	GradConfusion  float64
}

// recordingCC wraps a controller and keeps (sentAt, rtt) pairs.
type recordingCC struct {
	transport.Controller
	sentAt []float64
	rtts   []float64
}

func (r *recordingCC) OnAck(a transport.Ack) {
	r.sentAt = append(r.sentAt, a.SentAt)
	r.rtts = append(r.rtts, a.RTT)
	r.Controller.OnAck(a)
}

// Fig2 reproduces the §4.2 measurement: a 20 Mbps constant-rate probe on
// a 100 Mbps / 60 ms / 2·BDP bottleneck, with Poisson arrivals of short
// CUBIC flows (uniform 20–100 KB) at 0–9 flows/sec; RTT deviation and
// |RTT gradient| are computed over consecutive 1.5·RTT windows.
func Fig2(o Options) Fig2Result {
	o = o.withDefaults()
	res := Fig2Result{ArrivalRates: []float64{0, 3, 6, 9}}
	dur := 120.0
	if o.Fast {
		dur = 40
	}
	var devSamples, gradSamples [][]float64
	for _, rate := range res.ArrivalRates {
		devs, grads := fig2Trial(o.Trace, fmt.Sprintf("fig2_rate%g", rate), o.seedFor(1), rate, dur)
		devSamples = append(devSamples, devs)
		gradSamples = append(gradSamples, grads)
		dh := stats.NewHistogram(0, 0.0014, 28) // 0–1.4 ms as in Fig. 2(a)
		for _, d := range devs {
			dh.Add(d)
		}
		gh := stats.NewHistogram(0, 0.02, 28) // 0–0.02 as in Fig. 2(b)
		for _, g := range grads {
			gh.Add(g)
		}
		res.DevHistograms = append(res.DevHistograms, dh)
		res.GradHistograms = append(res.GradHistograms, gh)
	}
	res.DevConfusion = stats.ConfusionProbability(devSamples[0], devSamples[len(devSamples)-1])
	res.GradConfusion = stats.ConfusionProbability(gradSamples[0], gradSamples[len(gradSamples)-1])
	return res
}

func fig2Trial(tc *Tracing, scenario string, seed int64, flowsPerSec, dur float64) (devs, grads []float64) {
	s := sim.New(seed)
	flush := tc.attach(s, scenario, []FlowSpec{{Proto: "fixed:20"}})
	defer flush()
	// Mild ambient jitter mirrors the measurement noise visible in the
	// paper's clean-case PDFs (their 0-flows curves are spread, not a
	// spike at zero); without it both metrics trivially read zero on an
	// idle link and the comparison degenerates.
	link := LinkSpec{Mbps: 100, RTT: 0.060, BufBytes: 1500 * 1000,
		Jitter: netem.LognormalNoise{Median: 0.00005, Sigma: 0.7}}
	path := link.Build(s)
	probe := &recordingCC{Controller: NewController(s, "fixed:20")}
	snd := transport.NewSender(1, path, probe)
	snd.Burst = 1 // the paper's probe is a smooth constant-rate UDP flow
	snd.Start()
	// Poisson CUBIC cross traffic.
	if flowsPerSec > 0 {
		nextID := 2
		var spawn func()
		spawn = func() {
			size := 20000 + s.Rand().Int63n(80001)
			// IW=3 as in the era's kernels (the flow then lives several
			// RTTs), and no pacing: classic TCP emits each window as a
			// line-rate burst — the transient queueing the paper's
			// deviation signal keys on.
			f := transport.NewSender(nextID, path, cubic.NewWithIW(3))
			f.NoPacing = true
			nextID++
			f.Limit = size
			f.Start()
			s.After(s.Rand().ExpFloat64()/flowsPerSec, spawn)
		}
		s.After(s.Rand().ExpFloat64()/flowsPerSec, spawn)
	}
	s.Run(dur)
	// Windowed analysis: consecutive 1.5·RTT windows by send time.
	win := 1.5 * link.RTT
	i := 0
	for i < len(probe.sentAt) {
		j := i
		for j < len(probe.sentAt) && probe.sentAt[j] < probe.sentAt[i]+win {
			j++
		}
		if j-i >= 4 {
			reg := stats.LinearRegression(probe.sentAt[i:j], probe.rtts[i:j])
			grads = append(grads, math.Abs(reg.Slope))
			devs = append(devs, stats.StdDev(probe.rtts[i:j]))
		}
		i = j
	}
	return devs, grads
}

// ---------------------------------------------------------------------
// Figure 3 (and 15): bottleneck saturation with varying buffer size.
// ---------------------------------------------------------------------

// Fig3 sweeps the buffer from 4.5 KB to 900 KB on the 50 Mbps / 30 ms
// link and reports each protocol's throughput and 95th-percentile
// inflation ratio. Pass the Appendix-B protocol set to reproduce
// Figure 15.
func Fig3(o Options, protocols []string) (throughput, inflation *Table) {
	o = o.withDefaults()
	if protocols == nil {
		protocols = AllSingle
	}
	buffers := []int{4500, 9000, 18750, 37500, 75000, 150000, 300000, 375000, 625000, 900000}
	if o.Fast {
		buffers = []int{4500, 37500, 150000, 375000, 900000}
	}
	throughput = &Table{Title: "Fig 3(a): throughput (Mbps) vs buffer size", XLabel: "buffer(KB)", Columns: protocols}
	inflation = &Table{Title: "Fig 3(b): 95th-percentile inflation ratio vs buffer size", XLabel: "buffer(KB)", Columns: protocols}
	for _, buf := range buffers {
		link := emulabLink(buf)
		tRow := TableRow{X: float64(buf) / 1000}
		iRow := TableRow{X: float64(buf) / 1000}
		for _, proto := range protocols {
			proto := proto
			tput := meanOver(o, func(seed int64) float64 {
				return soloTraced(o.Trace, fmt.Sprintf("fig3_buf%d_%s_s%d", buf, proto, seed),
					seed, link, proto, o.Duration*0.2, o.Duration).Mbps
			})
			infl := meanOver(o, func(seed int64) float64 {
				r := RunSolo(seed+100, link, proto, o.Duration*0.2, o.Duration)
				base := link.RTT + float64(netem.MTU)/(link.Mbps*1e6/8)
				return (r.P95RTT() - base) / (float64(buf) / (link.Mbps * 1e6 / 8))
			})
			tRow.Cells = append(tRow.Cells, tput)
			iRow.Cells = append(iRow.Cells, infl)
		}
		throughput.Rows = append(throughput.Rows, tRow)
		inflation.Rows = append(inflation.Rows, iRow)
	}
	return throughput, inflation
}

// ---------------------------------------------------------------------
// Figure 4 (and 16): random loss tolerance.
// ---------------------------------------------------------------------

// Fig4 sweeps non-congestion loss from 0 to 6% with a 2·BDP buffer.
func Fig4(o Options, protocols []string) *Table {
	o = o.withDefaults()
	if protocols == nil {
		protocols = AllSingle
	}
	losses := []float64{0, 0.001, 0.005, 0.01, 0.02, 0.03, 0.04, 0.05, 0.06}
	if o.Fast {
		losses = []float64{0, 0.01, 0.03, 0.05}
	}
	t := &Table{Title: "Fig 4: throughput (Mbps) vs random loss rate", XLabel: "loss", Columns: protocols}
	for _, loss := range losses {
		link := emulabLink(375000)
		link.LossProb = loss
		row := TableRow{X: loss}
		for _, proto := range protocols {
			proto := proto
			row.Cells = append(row.Cells, meanOver(o, func(seed int64) float64 {
				return soloTraced(o.Trace, fmt.Sprintf("fig4_loss%g_%s_s%d", loss, proto, seed),
					seed, link, proto, o.Duration*0.2, o.Duration).Mbps
			}))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// ---------------------------------------------------------------------
// Figure 5 (and 17): Jain's fairness index with competing flows.
// ---------------------------------------------------------------------

// Fig5 runs n = 2..10 same-protocol flows on a 20n Mbps / 300n KB link,
// each flow starting 20 s after the previous one, and measures Jain's
// index over the 200 s after the last start.
func Fig5(o Options, protocols []string) *Table {
	o = o.withDefaults()
	if protocols == nil {
		protocols = AllSingle
	}
	ns := []int{2, 3, 4, 5, 6, 7, 8, 9, 10}
	measure := 200.0
	if o.Fast {
		ns = []int{2, 4, 6}
		measure = 60
	}
	t := &Table{Title: "Fig 5: Jain's fairness index vs number of flows", XLabel: "flows", Columns: protocols}
	for _, n := range ns {
		link := LinkSpec{Mbps: 20 * float64(n), RTT: 0.030, BufBytes: 300000 * n}
		row := TableRow{X: float64(n)}
		for _, proto := range protocols {
			proto := proto
			j := meanOver(o, func(seed int64) float64 {
				flows := make([]FlowSpec, n)
				for i := range flows {
					flows[i] = FlowSpec{Proto: proto, StartAt: float64(i) * 20}
				}
				lastStart := float64(n-1) * 20
				res := runTraced(o.Trace, fmt.Sprintf("fig5_n%d_%s_s%d", n, proto, seed),
					seed, link, flows, lastStart, lastStart+measure)
				tputs := make([]float64, n)
				for i, r := range res {
					tputs[i] = r.Mbps
				}
				return stats.JainIndex(tputs)
			})
			row.Cells = append(row.Cells, j)
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// ---------------------------------------------------------------------
// Figure 6 (and 19): scavenger competing with primary protocols.
// ---------------------------------------------------------------------

// Fig6Cell is one (scavenger, primary, buffer) outcome.
type Fig6Cell struct {
	Scavenger, Primary string
	BufBytes           int
	PrimaryRatio       float64 // primary tput with scavenger / alone
	Utilization        float64 // joint tput / capacity
	RTTRatio           float64 // 95th RTT with scavenger / alone (Fig 7)
}

// Fig6 runs the §6.2 two-flow competition: one primary flow, then one
// scavenger 20 s later, under 75 KB (0.4 BDP) and 375 KB (2 BDP)
// buffers. It also yields the Figure 7 RTT ratios (375 KB case).
func Fig6(o Options, scavengers []string) []Fig6Cell {
	o = o.withDefaults()
	if scavengers == nil {
		scavengers = []string{ProtoLEDBAT, ProtoProteusS, ProtoProteusP, ProtoCopa}
	}
	buffers := []int{75000, 375000}
	var cells []Fig6Cell
	dur := 180.0
	measureFrom := 60.0
	if o.Fast {
		dur, measureFrom = 120, 50
	}
	for _, buf := range buffers {
		link := emulabLink(buf)
		for _, primary := range Primaries {
			// Baseline: the primary alone.
			soloT := 0.0
			soloRTT := 0.0
			for tr := 0; tr < o.Trials; tr++ {
				r := soloTraced(o.Trace, fmt.Sprintf("fig6_buf%d_%s_solo_s%d", buf, primary, tr+1),
					o.seedFor(int64(tr+1)), link, primary, measureFrom, dur)
				soloT += r.Mbps
				soloRTT += r.P95RTT()
			}
			soloT /= float64(o.Trials)
			soloRTT /= float64(o.Trials)
			for _, scv := range scavengers {
				var pT, sT, pRTT float64
				for tr := 0; tr < o.Trials; tr++ {
					res := runTraced(o.Trace,
						fmt.Sprintf("fig6_buf%d_%s_vs_%s_s%d", buf, primary, scv, tr+1),
						o.seedFor(int64(tr+1)), link,
						[]FlowSpec{{Proto: primary}, {Proto: scv, StartAt: 20}},
						measureFrom, dur)
					pT += res[0].Mbps
					sT += res[1].Mbps
					pRTT += res[0].P95RTT()
				}
				pT /= float64(o.Trials)
				sT /= float64(o.Trials)
				pRTT /= float64(o.Trials)
				cells = append(cells, Fig6Cell{
					Scavenger: scv, Primary: primary, BufBytes: buf,
					PrimaryRatio: pT / soloT,
					Utilization:  (pT + sT) / link.Mbps,
					RTTRatio:     pRTT / soloRTT,
				})
			}
		}
	}
	return cells
}

// Fig6Table renders the yield matrix for one scavenger.
func Fig6Table(cells []Fig6Cell, scavenger string) *Table {
	t := &Table{
		Title:   fmt.Sprintf("Fig 6: %s as scavenger — primary throughput ratio / joint utilization", scavenger),
		XLabel:  "primary",
		Columns: []string{"ratio@75KB", "util@75KB", "ratio@375KB", "util@375KB", "rttRatio@375KB"},
	}
	for _, primary := range Primaries {
		row := TableRow{XName: primary, Cells: []float64{nan(), nan(), nan(), nan(), nan()}}
		for _, c := range cells {
			if c.Scavenger != scavenger || c.Primary != primary {
				continue
			}
			if c.BufBytes == 75000 {
				row.Cells[0], row.Cells[1] = c.PrimaryRatio, c.Utilization
			} else {
				row.Cells[2], row.Cells[3], row.Cells[4] = c.PrimaryRatio, c.Utilization, c.RTTRatio
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

func nan() float64 { return math.NaN() }

// ---------------------------------------------------------------------
// Figure 8 (and Appendix B's CDFs): broad configuration sweep.
// ---------------------------------------------------------------------

// Fig8 sweeps bottleneck configurations (the paper's 180 = 6 bandwidths
// × 6 RTTs × 5 buffer depths) and returns the CDF of primary throughput
// ratios for each (primary, scavenger) pairing.
func Fig8(o Options, primaries, scavengers []string) []CDFSeries {
	o = o.withDefaults()
	if primaries == nil {
		primaries = []string{ProtoBBR, ProtoCubic, ProtoProteusP}
	}
	if scavengers == nil {
		scavengers = []string{ProtoProteusS, ProtoLEDBAT}
	}
	bws := []float64{20, 50, 100, 200, 300, 500}
	rtts := []float64{0.005, 0.010, 0.030, 0.060, 0.100, 0.200}
	bufs := []float64{0.2, 0.5, 1.0, 2.0, 5.0}
	if o.Fast {
		bws = []float64{20, 50, 100}
		rtts = []float64{0.010, 0.030, 0.100}
		bufs = []float64{0.5, 2.0}
	}
	series := make(map[string]*CDFSeries)
	for _, p := range primaries {
		for _, s := range scavengers {
			key := p + " vs " + s
			series[key] = &CDFSeries{Name: key}
		}
	}
	seed := int64(1)
	dur, measureFrom := 150.0, 50.0
	if o.Fast {
		dur, measureFrom = 90, 40
	}
	for _, bw := range bws {
		for _, rtt := range rtts {
			for _, bufBDP := range bufs {
				link := LinkSpec{Mbps: bw, RTT: rtt, BufBytes: int(bufBDP * bw * 1e6 / 8 * rtt)}
				if link.BufBytes < 3*netem.MTU {
					link.BufBytes = 3 * netem.MTU
				}
				for _, primary := range primaries {
					solo := soloTraced(o.Trace,
						fmt.Sprintf("fig8_bw%g_rtt%g_buf%g_%s_solo", bw, rtt*1000, bufBDP, primary),
						o.seedFor(seed), link, primary, measureFrom, dur).Mbps
					if solo < 0.1 {
						// A configuration the primary cannot use at all
						// (e.g. a buffer below one packet train) says
						// nothing about yielding.
						continue
					}
					for _, scv := range scavengers {
						res := runTraced(o.Trace,
							fmt.Sprintf("fig8_bw%g_rtt%g_buf%g_%s_vs_%s", bw, rtt*1000, bufBDP, primary, scv),
							o.seedFor(seed), link,
							[]FlowSpec{{Proto: primary}, {Proto: scv, StartAt: 20}},
							measureFrom, dur)
						ratio := res[0].Mbps / solo
						if ratio > 1 {
							ratio = 1
						}
						key := primary + " vs " + scv
						series[key].Values = append(series[key].Values, ratio)
					}
				}
				seed++
			}
		}
	}
	var out []CDFSeries
	for _, p := range primaries {
		for _, s := range scavengers {
			out = append(out, *series[p+" vs "+s])
		}
	}
	return out
}

// ---------------------------------------------------------------------
// Figure 14: extending RTT deviation to BBR (BBR-S).
// ---------------------------------------------------------------------

// TimelineSeries is per-second throughput for one flow.
type TimelineSeries struct {
	Name string
	Mbps []float64 // sample i covers second [i, i+1)
}

// timeline measures per-second throughput of every flow in a scenario.
func timeline(tc *Tracing, scenario string, seed int64, link LinkSpec, flows []FlowSpec, duration float64) []TimelineSeries {
	s := sim.New(seed)
	flush := tc.attach(s, scenario, flows)
	path := link.Build(s)
	senders := make([]*transport.Sender, len(flows))
	out := make([]TimelineSeries, len(flows))
	last := make([]int64, len(flows))
	for i, f := range flows {
		cc := NewController(s, f.Proto)
		snd := transport.NewSender(i+1, path, cc)
		snd.Burst = BurstFor(f.Proto)
		senders[i] = snd
		out[i].Name = f.Proto
		if f.StartAt <= 0 {
			snd.Start()
		} else {
			at := f.StartAt
			s.At(at, func() { snd.Start() })
		}
	}
	for sec := 1.0; sec <= duration; sec++ {
		sec := sec
		s.At(sec, func() {
			for i, snd := range senders {
				out[i].Mbps = append(out[i].Mbps, float64(snd.AckedBytes()-last[i])*8/1e6)
				last[i] = snd.AckedBytes()
			}
		})
	}
	s.Run(duration)
	flush()
	return out
}

// Fig14 reproduces §7.1: BBR-S competing in turn with BBR, with BBR-S,
// and with CUBIC on the 50 Mbps / 30 ms / 375 KB bottleneck; per-second
// throughput timelines, 200 s each.
func Fig14(o Options) map[string][]TimelineSeries {
	o = o.withDefaults()
	dur := 200.0
	if o.Fast {
		dur = 80
	}
	link := emulabLink(375000)
	return map[string][]TimelineSeries{
		"bbr_vs_bbrs": timeline(o.Trace, "fig14_bbr_vs_bbrs", o.seedFor(1), link, []FlowSpec{
			{Proto: ProtoBBR}, {Proto: ProtoBBRS, StartAt: 10}}, dur),
		"bbrs_vs_bbrs": timeline(o.Trace, "fig14_bbrs_vs_bbrs", o.seedFor(2), link, []FlowSpec{
			{Proto: ProtoBBRS}, {Proto: ProtoBBRS, StartAt: 10}}, dur),
		"cubic_vs_bbrs": timeline(o.Trace, "fig14_cubic_vs_bbrs", o.seedFor(3), link, []FlowSpec{
			{Proto: ProtoCubic}, {Proto: ProtoBBRS, StartAt: 10}}, dur),
	}
}

// Fig18 reproduces the Appendix-B 4-flow timelines: flows join every
// 100 s and the latecomer dynamics of each protocol are visible in the
// per-second series.
func Fig18(o Options, protocols []string) map[string][]TimelineSeries {
	o = o.withDefaults()
	if protocols == nil {
		protocols = []string{ProtoLEDBAT25, ProtoLEDBAT, ProtoProteusP, ProtoProteusS}
	}
	dur := 500.0
	gap := 100.0
	if o.Fast {
		dur, gap = 160, 40
	}
	link := LinkSpec{Mbps: 80, RTT: 0.030, BufBytes: 1200000}
	out := make(map[string][]TimelineSeries, len(protocols))
	for i, proto := range protocols {
		flows := make([]FlowSpec, 4)
		for j := range flows {
			flows[j] = FlowSpec{Proto: proto, StartAt: float64(j) * gap}
		}
		out[proto] = timeline(o.Trace, "fig18_"+proto, o.seedFor(int64(i+1)), link, flows, dur)
	}
	return out
}

// ---------------------------------------------------------------------
// Extension (§7.2 future work): LTE-like high-fluctuation channels.
// ---------------------------------------------------------------------

// LTESolo runs each protocol alone on a cellular-like channel whose
// capacity follows a bounded random walk (mean ≈ 25 Mbps of a 50 Mbps
// peak, 100 ms steps) with moderate jitter, reporting throughput and
// 95th-percentile RTT — the environment §7.2 names as untested future
// work for the noise-tolerance design.
func LTESolo(o Options, protocols []string) *Table {
	o = o.withDefaults()
	if protocols == nil {
		protocols = AllSingle
	}
	t := &Table{
		Title:   "Extension: LTE-like varying-capacity channel (solo flows)",
		XLabel:  "protocol",
		Columns: []string{"Mbps", "p95RTT(ms)"},
	}
	dur := o.Duration
	for _, proto := range protocols {
		proto := proto
		var tput, rtt float64
		for tr := 0; tr < o.Trials; tr++ {
			tp, p95 := lteTrial(o.Trace, fmt.Sprintf("lte_%s_s%d", proto, tr+1), o.seedFor(int64(tr+1)), proto, dur)
			tput += tp
			rtt += p95
		}
		n := float64(o.Trials)
		t.Rows = append(t.Rows, TableRow{XName: proto, Cells: []float64{tput / n, rtt * 1000 / n}})
	}
	return t
}

func lteTrial(tc *Tracing, scenario string, seed int64, proto string, dur float64) (mbps, p95 float64) {
	s := sim.New(seed)
	flush := tc.attach(s, scenario, []FlowSpec{{Proto: proto}})
	defer flush()
	link := LinkSpec{
		Mbps: 50, RTT: 0.050, BufBytes: 600000,
		Jitter: netem.LognormalNoise{Median: 0.002, Sigma: 0.8},
	}
	path := link.Build(s)
	walk := &netem.RateWalk{Sim: s, Link: path.Link, Interval: 0.1, Sigma: 0.35, MinFac: 0.2, MaxFac: 1.0}
	walk.Start()
	cc := NewController(s, proto)
	snd := transport.NewSender(1, path, cc)
	snd.Burst = BurstFor(proto)
	snd.RecordRTT = true
	snd.Start()
	var mark int64
	s.At(dur*0.2, func() { mark = snd.AckedBytes() })
	s.Run(dur)
	n := len(snd.RTTSamples())
	return float64(snd.AckedBytes()-mark) * 8 / (dur * 0.8) / 1e6,
		stats.Percentile(snd.RTTSamples()[n/5:], 95)
}
