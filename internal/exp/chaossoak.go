package exp

import (
	"fmt"
	"math/rand"
	"strings"

	"pccproteus/internal/chaos"
	"pccproteus/internal/sim"
	"pccproteus/internal/transport"
	"pccproteus/internal/wire"
)

// ChaosSoakOptions configures one cross-world fault-replay run: the
// same canonical chaos plan is applied to the simulator link and to the
// real-UDP shim, and the survival machinery plus per-category fault
// attribution are compared between worlds.
type ChaosSoakOptions struct {
	Protos     []string    // default: proteus-p, proteus-s, proteus-h
	Mbps       float64     // bottleneck capacity (default 20)
	RTT        float64     // base round-trip, seconds (default 0.040)
	QueueBytes int         // default 1.5 × BDP
	Duration   float64     // seconds, both domains (default 16; wire runs real time)
	Seed       int64       // master seed (0 = 1)
	Plan       *chaos.Plan // nil = DefaultSoakPlan(Duration)
}

func (o *ChaosSoakOptions) defaults() {
	if len(o.Protos) == 0 {
		o.Protos = []string{ProtoProteusP, ProtoProteusS, ProtoProteusH}
	}
	if o.Mbps <= 0 {
		o.Mbps = 20
	}
	if o.RTT <= 0 {
		o.RTT = 0.040
	}
	if o.QueueBytes <= 0 {
		o.QueueBytes = int(1.5 * o.Mbps * 1e6 / 8 * o.RTT)
	}
	if o.Duration <= 0 {
		o.Duration = 16
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Plan == nil {
		p := DefaultSoakPlan(o.Duration)
		o.Plan = &p
	}
}

// DefaultSoakPlan builds the canonical soak schedule for a run of the
// given length: a 2 s full blackout once the ramp has settled, then
// overlapping corruption/duplication/reordering windows, and a short
// ack-path blackout near the end. Every fault category used by the
// attribution comparison is exercised.
func DefaultSoakPlan(duration float64) chaos.Plan {
	t := duration
	return chaos.Plan{Faults: []chaos.Fault{
		{Kind: chaos.KindBlackout, At: 0.35 * t, Dur: 2},
		{Kind: chaos.KindCorrupt, At: 0.6 * t, Dur: 0.2 * t, Value: 0.03},
		{Kind: chaos.KindDuplicate, At: 0.6 * t, Dur: 0.2 * t, Value: 0.05},
		{Kind: chaos.KindReorder, At: 0.62 * t, Dur: 0.15 * t, Value: 0.1, Delay: 0.02},
		{Kind: chaos.KindAckBlackout, At: 0.85 * t, Dur: 0.4},
	}}.Canonical()
}

// ChaosAttribution is the per-category fault accounting one world
// reports after a soak: how many packets each injected fault destroyed,
// damaged, duplicated, reordered, or flushed.
type ChaosAttribution struct {
	FaultDrop  int64 // data destroyed by blackout
	AckDropped int64 // acks destroyed by blackout / ack blackout
	Corrupted  int64
	Duplicated int64
	Reordered  int64
	Flushed    int64 // data flushed by peer restart
}

// categories returns the attribution counters in a fixed order with
// names, for comparison and rendering.
func (a ChaosAttribution) categories() []struct {
	Name string
	N    int64
} {
	return []struct {
		Name string
		N    int64
	}{
		{"fault-drop", a.FaultDrop},
		{"ack-drop", a.AckDropped},
		{"corrupted", a.Corrupted},
		{"duplicated", a.Duplicated},
		{"reordered", a.Reordered},
		{"flushed", a.Flushed},
	}
}

// ChaosSoakRow is one protocol's matched survival outcome.
type ChaosSoakRow struct {
	Proto               string
	SimMbps, WireMbps   float64 // acked throughput over the full run
	SimTrips, WireTrips int64   // watchdog trips
	SimRecov, WireRecov int64   // watchdog recoveries
	SimAttr, WireAttr   ChaosAttribution
	Mismatch            string // first attribution category active in one world only
	Pass                bool
}

// ChaosSoakResult is the full cross-world soak outcome.
type ChaosSoakResult struct {
	Opts ChaosSoakOptions
	Plan chaos.Plan // the canonical plan both worlds replayed
	Rows []ChaosSoakRow
}

// AllPass reports whether every protocol survived in both worlds with
// matching fault attribution.
func (r *ChaosSoakResult) AllPass() bool {
	for _, row := range r.Rows {
		if !row.Pass {
			return false
		}
	}
	return true
}

// ChaosSoak replays the plan through both worlds for each protocol.
// The wire half runs in real time: expect ~len(Protos)×Duration wall
// seconds.
func ChaosSoak(o ChaosSoakOptions) (*ChaosSoakResult, error) {
	o.defaults()
	plan := o.Plan.Canonical()
	res := &ChaosSoakResult{Opts: o, Plan: plan}
	planHasBlackout := false
	for _, f := range plan.Faults {
		if f.Kind == chaos.KindBlackout {
			planHasBlackout = true
		}
	}
	for i, proto := range o.Protos {
		seed := o.Seed + int64(i)
		row := ChaosSoakRow{Proto: proto}
		row.SimMbps, row.SimTrips, row.SimRecov, row.SimAttr = chaosSoakSim(seed, o, plan, proto)

		lb, err := wire.RunLoopback(wire.LoopbackConfig{
			NewController: func() transport.Controller {
				return NewControllerRNG(rand.New(rand.NewSource(wire.MixSeed(seed, 0x55))), proto)
			},
			Shim: wire.ShimConfig{
				RateMbps:   o.Mbps,
				QueueBytes: o.QueueBytes,
				Delay:      o.RTT / 2,
				AckDelay:   o.RTT / 2,
				Seed:       wire.MixSeed(seed, 0x77),
			},
			Duration: o.Duration,
			Chaos:    &plan,
		})
		if err != nil {
			return nil, fmt.Errorf("wire soak %s: %w", proto, err)
		}
		row.WireMbps = float64(lb.Sender.AckedBytes) * 8 / o.Duration / 1e6
		row.WireTrips = lb.Sender.WatchdogTrips
		row.WireRecov = lb.Sender.Recoveries
		row.WireAttr = ChaosAttribution{
			FaultDrop:  lb.Shim.FaultDrop,
			AckDropped: lb.Shim.AckFaultDrop,
			Corrupted:  lb.Shim.Corrupted,
			Duplicated: lb.Shim.Duplicated,
			Reordered:  lb.Shim.Reordered,
			Flushed:    lb.Shim.Flushed,
		}

		// Attribution must agree across worlds: every category a fault
		// activated in one world must also have fired in the other.
		simCats, wireCats := row.SimAttr.categories(), row.WireAttr.categories()
		for j := range simCats {
			if (simCats[j].N > 0) != (wireCats[j].N > 0) {
				row.Mismatch = simCats[j].Name
				break
			}
		}
		row.Pass = row.Mismatch == ""
		if planHasBlackout {
			row.Pass = row.Pass &&
				row.SimTrips >= 1 && row.SimRecov >= 1 &&
				row.WireTrips >= 1 && row.WireRecov >= 1
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// chaosSoakSim is the simulator half: a solo survival-enabled flow on
// the matched link with the plan applied via chaos.ApplySim.
func chaosSoakSim(seed int64, o ChaosSoakOptions, plan chaos.Plan, proto string) (mbps float64, trips, recov int64, attr ChaosAttribution) {
	s := sim.New(seed)
	spec := LinkSpec{Mbps: o.Mbps, RTT: o.RTT, BufBytes: o.QueueBytes}
	path := spec.Build(s)
	snd := transport.NewSender(1, path, NewController(s, proto))
	snd.Survival = true
	chaos.ApplySim(s, path.Link, path, plan, o.Duration)
	snd.Start()
	s.Run(o.Duration)

	mbps = float64(snd.AckedBytes()) * 8 / o.Duration / 1e6
	trips, recov = snd.WatchdogTrips(), snd.WatchdogRecoveries()
	ls, ps := path.Link.Stats(), path.Stats()
	attr = ChaosAttribution{
		FaultDrop:  ls.FaultDrop,
		AckDropped: ps.AckDropped,
		Corrupted:  ls.Corrupted,
		Duplicated: ls.Duplicated,
		Reordered:  ls.Reordered,
		Flushed:    ls.Flushed,
	}
	return mbps, trips, recov, attr
}

// Render formats the soak table: throughput, survival counters, and
// the per-category attribution comparison.
func (r *ChaosSoakResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Chaos soak: %.0f Mbps, %.0f ms RTT, %.1f s, %d faults replayed in both worlds\n",
		r.Opts.Mbps, r.Opts.RTT*1e3, r.Opts.Duration, len(r.Plan.Faults))
	for _, f := range r.Plan.Faults {
		fmt.Fprintf(&b, "#   %-13s t=[%.2f,%.2f)", f.Kind, f.At, f.At+f.Dur)
		if f.Value != 0 {
			fmt.Fprintf(&b, " value=%.3f", f.Value)
		}
		if f.Delay != 0 {
			fmt.Fprintf(&b, " delay=%.3f", f.Delay)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-12s %9s %9s %11s %11s  %s\n",
		"proto", "sim Mbps", "wire Mbps", "sim trip/rec", "wire trip/rec", "verdict")
	for _, row := range r.Rows {
		verdict := "PASS"
		if !row.Pass {
			verdict = "FAIL"
			if row.Mismatch != "" {
				verdict += " (" + row.Mismatch + " attribution differs)"
			}
		}
		fmt.Fprintf(&b, "%-12s %9.2f %9.2f %8d/%-3d %8d/%-4d  %s\n",
			row.Proto, row.SimMbps, row.WireMbps,
			row.SimTrips, row.SimRecov, row.WireTrips, row.WireRecov, verdict)
	}
	fmt.Fprintf(&b, "%-12s %12s %12s\n", "attribution", "sim", "wire")
	for i, row := range r.Rows {
		if i > 0 {
			break // attribution is per-proto; render the first in full
		}
		simCats, wireCats := row.SimAttr.categories(), row.WireAttr.categories()
		for j := range simCats {
			fmt.Fprintf(&b, "  %-10s %12d %12d\n", simCats[j].Name, simCats[j].N, wireCats[j].N)
		}
	}
	return b.String()
}
