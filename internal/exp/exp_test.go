package exp

import (
	"math"
	"strings"
	"testing"

	"pccproteus/internal/sim"
	"pccproteus/internal/stats"
)

func fast() Options { return Options{Fast: true, Trials: 1} }

func TestNewControllerKnowsAllProtocols(t *testing.T) {
	s := sim.New(1)
	for _, p := range append(append([]string{}, AllSingle...),
		ProtoProteusH, ProtoBBRS, ProtoLEDBAT25, "fixed:20") {
		cc := NewController(s, p)
		if cc == nil {
			t.Fatalf("nil controller for %s", p)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown protocol must panic")
		}
	}()
	NewController(s, "nonsense")
}

func TestLinkSpecBuild(t *testing.T) {
	s := sim.New(1)
	l := LinkSpec{Mbps: 50, RTT: 0.030, BufBytes: 375000, LossProb: 0.01, AckHold: true}
	p := l.Build(s)
	if p.Link.LossProb != 0.01 || p.Batcher == nil {
		t.Fatal("link options not applied")
	}
	if math.Abs(l.BDPBytes()-187500) > 1 {
		t.Fatalf("BDP %v", l.BDPBytes())
	}
}

func TestRunMeasuresWindowedThroughput(t *testing.T) {
	link := LinkSpec{Mbps: 50, RTT: 0.030, BufBytes: 375000}
	res := Run(1, link, []FlowSpec{{Proto: "fixed:20"}}, 5, 15)
	if math.Abs(res[0].Mbps-20) > 1 {
		t.Fatalf("fixed-rate measured at %.1f", res[0].Mbps)
	}
	if len(res[0].RTTSamples) == 0 || res[0].P95RTT() <= 0 {
		t.Fatal("rtt samples missing")
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title: "t", XLabel: "x", Columns: []string{"a", "b"},
		Rows: []TableRow{
			{X: 1, Cells: []float64{2, math.NaN()}},
			{XName: "named", Cells: []float64{3, 4}},
		},
	}
	out := tab.Render()
	for _, want := range []string{"# t", "a", "named", "-"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	cdf := RenderCDFs("c", []CDFSeries{{Name: "s", Values: []float64{1, 2, 3}}})
	if !strings.Contains(cdf, "p50") || !strings.Contains(cdf, "s") {
		t.Fatalf("cdf render:\n%s", cdf)
	}
}

func TestFig2DeviationBeatsGradient(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	r := Fig2(fast())
	// The paper's headline §4.2 result: RTT deviation separates congested
	// from clean far better than RTT gradient (0.6% vs 8.0% confusion).
	if r.DevConfusion >= r.GradConfusion {
		t.Fatalf("deviation confusion %.3f should beat gradient %.3f",
			r.DevConfusion, r.GradConfusion)
	}
	if r.DevConfusion > 0.15 {
		t.Fatalf("deviation confusion %.3f too high to be a useful signal", r.DevConfusion)
	}
	// The congested PDF must shift right relative to the clean one.
	clean := r.DevHistograms[0]
	congested := r.DevHistograms[len(r.DevHistograms)-1]
	if clean.N == 0 || congested.N == 0 {
		t.Fatal("empty histograms")
	}
}

func TestFig3Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	tput, infl := Fig3(fast(), []string{ProtoProteusP, ProtoProteusS, ProtoLEDBAT, ProtoCubic})
	get := func(tab *Table, bufKB float64, col int) float64 {
		for _, r := range tab.Rows {
			if r.X == bufKB {
				return r.Cells[col]
			}
		}
		t.Fatalf("row %v missing", bufKB)
		return 0
	}
	// Proteus-P saturates (≥80%) with a small buffer; LEDBAT needs far
	// more (paper: 150 KB for 90%). The absolute small-buffer point
	// shifts from the paper's 4.5 KB because our senders emit multi-
	// packet trains (see EXPERIMENTS.md), but the ordering holds.
	if v := get(tput, 37.5, 0); v < 40 {
		t.Errorf("Proteus-P at 37.5KB buffer: %.1f Mbps, want ≥40", v)
	}
	if l, p := get(tput, 37.5, 2), get(tput, 37.5, 0); l > p {
		t.Errorf("LEDBAT at 37.5KB (%.1f) should trail Proteus-P (%.1f)", l, p)
	}
	// The 4.5 KB (three-packet) row is not asserted: buffers smaller
	// than one pacing train are dominated by the burst model rather than
	// the congestion controllers (recorded in EXPERIMENTS.md).
	if v := get(tput, 375, 2); v < 42 {
		t.Errorf("LEDBAT at 375KB buffer: %.1f Mbps, want ≥42", v)
	}
	// Inflation at 2 BDP: LEDBAT ≈ 1 (keeps buffer at target), Proteus
	// far lower (paper: ≤10%).
	if v := get(infl, 375, 2); v < 0.5 {
		t.Errorf("LEDBAT inflation at 375KB: %.2f, want ≈1", v)
	}
	if v := get(infl, 375, 0); v > 0.35 {
		t.Errorf("Proteus-P inflation at 375KB: %.2f, want small", v)
	}
	if v := get(infl, 375, 3); v < 0.5 {
		t.Errorf("CUBIC inflation at 375KB: %.2f, want ≈1 (bufferbloat)", v)
	}
}

func TestFig4LossShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	tab := Fig4(fast(), []string{ProtoProteusP, ProtoLEDBAT, ProtoBBR})
	get := func(loss float64, col int) float64 {
		for _, r := range tab.Rows {
			if r.X == loss {
				return r.Cells[col]
			}
		}
		t.Fatalf("row %v missing", loss)
		return 0
	}
	clean := get(0, 1)
	// LEDBAT is fragile even at low loss (paper: 50% degradation at
	// 0.001); with Fig4's fast grid the first lossy point is 1%.
	if lossy := get(0.01, 1); lossy > 0.6*clean {
		t.Errorf("LEDBAT under 1%% loss: %.1f vs clean %.1f, should collapse", lossy, clean)
	}
	// BBR barely notices 5%.
	if v := get(0.05, 2); v < 35 {
		t.Errorf("BBR at 5%% loss: %.1f, want ≥35", v)
	}
	// Proteus-P tolerates its 5%-design-point region far better than
	// LEDBAT: compare at 3%.
	if p, l := get(0.03, 0), get(0.03, 1); p < 3*l {
		t.Errorf("Proteus-P (%.1f) should far exceed LEDBAT (%.1f) at 3%% loss", p, l)
	}
}

func TestFig5FairnessShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	tab := Fig5(fast(), []string{ProtoProteusP, ProtoLEDBAT})
	for _, r := range tab.Rows {
		if r.Cells[0] < 0.85 {
			t.Errorf("Proteus-P Jain at n=%v: %.3f, want ≥0.85", r.X, r.Cells[0])
		}
	}
	// LEDBAT's latecomer unfairness develops slowly; in the fast grid we
	// only require it to be visibly less fair than Proteus-P.
	last := tab.Rows[len(tab.Rows)-1]
	if last.Cells[1] > last.Cells[0]-0.01 {
		t.Errorf("LEDBAT Jain at n=%v: %.3f should trail Proteus-P %.3f", last.X, last.Cells[1], last.Cells[0])
	}
}

func TestFig6YieldShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	cells := Fig6(fast(), []string{ProtoLEDBAT, ProtoProteusS})
	find := func(scv, primary string, buf int) Fig6Cell {
		for _, c := range cells {
			if c.Scavenger == scv && c.Primary == primary && c.BufBytes == buf {
				return c
			}
		}
		t.Fatalf("cell %s/%s/%d missing", scv, primary, buf)
		return Fig6Cell{}
	}
	// Core claims of §6.2, qualitative form:
	// (1) LEDBAT fails to yield to CUBIC at the shallow buffer (target
	//     delay exceeds the buffer's max inflation → near fair share).
	if c := find(ProtoLEDBAT, ProtoCubic, 75000); c.PrimaryRatio > 0.85 {
		t.Errorf("LEDBAT vs CUBIC @75KB: ratio %.2f — paper says it fails to yield (≈0.5-0.7)", c.PrimaryRatio)
	}
	// (2) Proteus-S yields to CUBIC everywhere.
	if c := find(ProtoProteusS, ProtoCubic, 375000); c.PrimaryRatio < 0.85 {
		t.Errorf("Proteus-S vs CUBIC @375KB: ratio %.2f, want ≥0.85", c.PrimaryRatio)
	}
	// (3) Against latency-aware primaries, Proteus-S beats LEDBAT.
	for _, primary := range []string{ProtoCopa, ProtoProteusP} {
		l := find(ProtoLEDBAT, primary, 375000)
		p := find(ProtoProteusS, primary, 375000)
		if p.PrimaryRatio <= l.PrimaryRatio {
			t.Errorf("vs %s @375KB: Proteus-S ratio %.2f should beat LEDBAT %.2f",
				primary, p.PrimaryRatio, l.PrimaryRatio)
		}
	}
	// (4) Rendering works for each scavenger.
	if s := Fig6Table(cells, ProtoProteusS).Render(); !strings.Contains(s, "cubic") {
		t.Error("table render incomplete")
	}
}

func TestFig14BBRSShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	series := Fig14(fast())
	mean := func(xs []float64, from int) float64 {
		return stats.Mean(xs[from:])
	}
	vs := series["bbr_vs_bbrs"]
	half := len(vs[0].Mbps) / 2
	if p, s := mean(vs[0].Mbps, half), mean(vs[1].Mbps, half); p < 2*s {
		t.Errorf("BBR-S should yield to BBR: %.1f vs %.1f", p, s)
	}
	cu := series["cubic_vs_bbrs"]
	if p, s := mean(cu[0].Mbps, half), mean(cu[1].Mbps, half); p < 2*s {
		t.Errorf("BBR-S should yield to CUBIC: %.1f vs %.1f", p, s)
	}
	ss := series["bbrs_vs_bbrs"]
	a, b := mean(ss[0].Mbps, half), mean(ss[1].Mbps, half)
	if j := stats.JainIndex([]float64{a, b}); j < 0.7 {
		t.Errorf("BBR-S vs BBR-S should be roughly fair: %.1f vs %.1f (J=%.2f)", a, b, j)
	}
}

func TestWiFiProfilesDeterministic(t *testing.T) {
	a := WiFiProfiles(8, 7)
	b := WiFiProfiles(8, 7)
	for i := range a {
		if a[i].Link != b[i].Link {
			t.Fatal("profiles must be deterministic per seed")
		}
	}
	for _, p := range a {
		if p.Link.Mbps < 10 || p.Link.Mbps > 60 || p.Link.Jitter == nil || !p.Link.AckHold {
			t.Fatalf("profile out of spec: %+v", p.Link)
		}
	}
}

func TestAblationVariantsCover(t *testing.T) {
	vs := AblationVariants()
	if len(vs) != 5 {
		t.Fatalf("want 5 variants, got %d", len(vs))
	}
	names := map[string]bool{}
	for _, v := range vs {
		names[v.Name] = true
	}
	for _, want := range []string{"full", "no-ack-filter", "no-regression-tol", "no-trending", "two-pair-probes"} {
		if !names[want] {
			t.Fatalf("missing variant %s", want)
		}
	}
}

func TestLTESoloShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	tab := LTESolo(Options{Fast: true, Trials: 1}, []string{ProtoCubic, ProtoCopa, ProtoProteusP, ProtoProteusS})
	get := func(name string) (float64, float64) {
		for _, r := range tab.Rows {
			if r.XName == name {
				return r.Cells[0], r.Cells[1]
			}
		}
		t.Fatalf("row %s missing", name)
		return 0, 0
	}
	cubicMbps, _ := get(ProtoCubic)
	copaMbps, copaRTT := get(ProtoCopa)
	pMbps, pRTT := get(ProtoProteusP)
	sMbps, _ := get(ProtoProteusS)
	// The §7.2 story on this substrate: ack-clocked window protocols
	// track the varying capacity; per-ack delay-based COPA keeps latency
	// lowest; MI-cadence rate control (Proteus-P) reacts a half-second
	// late to capacity dips and bloats the queue — exactly the
	// future-work gap the paper concedes; and Proteus-S reads channel
	// variation as competition and abstains.
	if cubicMbps < 10 {
		t.Errorf("CUBIC on LTE-like channel: %.1f Mbps, expected to track capacity", cubicMbps)
	}
	if copaMbps < 5 || copaRTT > pRTT {
		t.Errorf("COPA should hold modest rate at the lowest delay: %.1f Mbps @%.0fms vs Proteus-P @%.0fms",
			copaMbps, copaRTT, pRTT)
	}
	if sMbps > pMbps {
		t.Errorf("Proteus-S (%.1f) should abstain relative to Proteus-P (%.1f) on a fluctuating channel", sMbps, pMbps)
	}
}

func TestWriteCSV(t *testing.T) {
	tab := &Table{
		Title: "t", XLabel: "x", Columns: []string{"a", "b"},
		Rows: []TableRow{
			{X: 1.5, Cells: []float64{2, 3}},
			{XName: "row2", Cells: []float64{4, 5}},
		},
	}
	var buf strings.Builder
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	for _, want := range []string{"x,a,b", "1.5,", "row2,"} {
		if !strings.Contains(got, want) {
			t.Fatalf("csv missing %q:\n%s", want, got)
		}
	}
}

func TestWriteCDFCSV(t *testing.T) {
	var buf strings.Builder
	err := WriteCDFCSV(&buf, []CDFSeries{{Name: "s1", Values: []float64{3, 1, 2}}})
	if err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	lines := strings.Split(strings.TrimSpace(got), "\n")
	if len(lines) != 4 {
		t.Fatalf("want header+3 rows, got %d:\n%s", len(lines), got)
	}
	if !strings.HasSuffix(lines[3], "1.000000") {
		t.Fatalf("last cumfrac must be 1: %s", lines[3])
	}
	if !strings.Contains(lines[1], "s1,1,") {
		t.Fatalf("values must be sorted: %s", lines[1])
	}
}

func TestWriteTimelineCSV(t *testing.T) {
	var buf strings.Builder
	err := WriteTimelineCSV(&buf, "sc", []TimelineSeries{{Name: "f", Mbps: []float64{1, 2}}})
	if err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.Contains(got, "sc,0:f,1,1") || !strings.Contains(got, "sc,0:f,2,2") {
		t.Fatalf("timeline csv wrong:\n%s", got)
	}
}
