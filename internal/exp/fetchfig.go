package exp

import (
	"pccproteus/internal/dash"
	"pccproteus/internal/fetch"
	"pccproteus/internal/sim"
	"pccproteus/internal/stats"
	"pccproteus/internal/transport"
	"pccproteus/internal/web"
)

// FetchBackgrounds lists the bulk-fetch variants of the scavenger-yield
// experiment: no background fetch (the foreground baseline), a fetch
// under Proteus-S (should scavenge), and one under Proteus-P (should
// claim a primary's share).
var FetchBackgrounds = []string{"none", ProtoProteusS, ProtoProteusP}

// FetchYieldResult is one background variant's aggregate outcome.
type FetchYieldResult struct {
	Background string
	DashMbps   float64 // mean DASH chunk bitrate across players and trials
	WebP50     float64 // web page-load-time quantiles, seconds
	WebP95     float64
	WebP99     float64
	FetchMbps  float64 // bulk-fetch goodput (0 for the baseline)
}

// pltHist parameterizes the page-load-time sketch: 10 ms to 100 s at
// ~7% relative resolution.
func pltHist() *stats.LogHist { return stats.NewLogHist(0.01, 100, 160) }

// FetchYield runs the scavenger-yield benchmark for the segmented
// bulk-fetch protocol (EXPERIMENTS Appendix F): a residential downlink
// carries three DASH players (CUBIC transport) and Poisson web page
// loads; an effectively infinite fetch.SimTransfer runs underneath in
// each background variant. A well-behaved scavenger fetch leaves the
// foreground within a few percent of the fetch-free baseline while
// soaking up the leftover capacity; the same fetch under Proteus-P
// claims a primary's share and degrades the foreground.
func FetchYield(o Options) []FetchYieldResult {
	o = o.withDefaults()
	dur := o.Duration
	var out []FetchYieldResult
	for _, bg := range FetchBackgrounds {
		var dashSum, fetchSum float64
		hist := pltHist()
		for tr := 0; tr < o.Trials; tr++ {
			dashMbps, plts, fetchBytes := fetchYieldTrial(o.seedFor(int64(tr+1)), bg, dur)
			dashSum += dashMbps
			fetchSum += float64(fetchBytes) * 8 / dur / 1e6
			for _, p := range plts {
				hist.Add(p)
			}
		}
		n := float64(o.Trials)
		out = append(out, FetchYieldResult{
			Background: bg,
			DashMbps:   dashSum / n,
			WebP50:     hist.Quantile(0.50),
			WebP95:     hist.Quantile(0.95),
			WebP99:     hist.Quantile(0.99),
			FetchMbps:  fetchSum / n,
		})
	}
	return out
}

// fetchYieldLink is the experiment's downlink: tight enough that three
// top-rung DASH players nearly fill it, so a background flow claiming a
// fair share visibly squeezes the foreground.
func fetchYieldLink() LinkSpec {
	return LinkSpec{Mbps: 60, RTT: 0.020, BufBytes: 375000}
}

func fetchYieldTrial(seed int64, background string, dur float64) (dashMbps float64, plts []float64, fetchBytes int64) {
	const nVideos = 3
	s := sim.New(seed)
	path := fetchYieldLink().Build(s)
	video := dash.Video{Name: "vod", Ladder: fig11Ladder, ChunkDur: 3, Chunks: 1 << 20}
	players := make([]*dash.Player, nVideos)
	for i := 0; i < nVideos; i++ {
		snd := transport.NewSender(i+1, path, NewController(s, ProtoCubic))
		p := dash.NewPlayer(s, snd, video, dash.NewBOLA(24), 24)
		players[i] = p
		p.Start()
	}
	connBase := 1000
	var spawn func()
	spawn = func() {
		page := web.RandomPage(s.Rand())
		pl := web.NewPageLoad(s, path, page, connBase, func(plt float64) {
			plts = append(plts, plt)
		})
		connBase += 100
		pl.Start()
		s.After(s.Rand().ExpFloat64()*10, spawn)
	}
	s.After(s.Rand().ExpFloat64()*10, spawn)

	var tr *fetch.SimTransfer
	if background != "none" {
		// An object far larger than the link can move in dur: the fetch
		// never completes, so its goodput is pure steady-state yield.
		tr = &fetch.SimTransfer{
			S: s, Path: path, CC: NewController(s, background), ID: 100,
			ObjectBytes: 1 << 40,
		}
		if err := tr.Start(); err != nil {
			panic(err) // static configuration; a typo should fail loudly
		}
	}
	s.Run(dur)
	sum := 0.0
	for _, p := range players {
		sum += p.Metrics().AvgBitrate()
	}
	dashMbps = sum / nVideos
	if tr != nil {
		fetchBytes = tr.DeliveredBytes()
	}
	return dashMbps, plts, fetchBytes
}

// FetchYieldTable renders the scavenger-yield results.
func FetchYieldTable(results []FetchYieldResult) *Table {
	t := &Table{
		Title:   "App F: bulk-fetch scavenger yield (DASH+web foreground)",
		XLabel:  "background",
		Columns: []string{"dash-Mbps", "web-p50(s)", "web-p95(s)", "web-p99(s)", "fetch-Mbps"},
	}
	for _, r := range results {
		t.Rows = append(t.Rows, TableRow{XName: "fetch=" + r.Background, Cells: []float64{
			r.DashMbps, r.WebP50, r.WebP95, r.WebP99, r.FetchMbps,
		}})
	}
	return t
}
