package exp

import "testing"

// The Appendix F acceptance property: a Proteus-S bulk fetch yields —
// the DASH/web foreground stays within 10% of its fetch-free baseline —
// while the identical fetch under Proteus-P claims a primary's share of
// the leftover capacity (several times the scavenger's take).
func TestFetchYieldScavengerProperty(t *testing.T) {
	res := FetchYield(Options{Fast: true})
	byBg := map[string]FetchYieldResult{}
	for _, r := range res {
		byBg[r.Background] = r
	}
	base, ok1 := byBg["none"]
	scav, ok2 := byBg[ProtoProteusS]
	prim, ok3 := byBg[ProtoProteusP]
	if !ok1 || !ok2 || !ok3 {
		t.Fatalf("missing variants: %+v", res)
	}

	// Scavenger yield: foreground within 10% of the fetch-free baseline.
	if scav.DashMbps < 0.9*base.DashMbps {
		t.Errorf("proteus-s fetch degraded DASH: %.2f vs baseline %.2f Mbps",
			scav.DashMbps, base.DashMbps)
	}
	if scav.WebP95 > 1.3*base.WebP95 {
		t.Errorf("proteus-s fetch degraded web p95 PLT: %.2fs vs baseline %.2fs",
			scav.WebP95, base.WebP95)
	}
	if scav.FetchMbps <= 0 {
		t.Errorf("proteus-s fetch made no progress")
	}

	// Primary claim: the same fetch under Proteus-P takes several times
	// the scavenger's share.
	if prim.FetchMbps < 3*scav.FetchMbps {
		t.Errorf("proteus-p fetch claimed %.2f Mbps, not a primary share vs scavenger %.2f",
			prim.FetchMbps, scav.FetchMbps)
	}
	if prim.FetchMbps < 2 {
		t.Errorf("proteus-p fetch goodput %.2f Mbps below any plausible claimed share", prim.FetchMbps)
	}
	if base.FetchMbps != 0 {
		t.Errorf("baseline reports fetch goodput %.2f", base.FetchMbps)
	}
}
