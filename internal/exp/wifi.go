package exp

import (
	"fmt"
	"math/rand"

	"pccproteus/internal/netem"
)

// WiFiProfile is one synthetic stand-in for a (location, AWS-region)
// uplink path from §6.2.1: a modest-bandwidth bottleneck with lognormal
// per-packet jitter, occasional latency spikes, and bursty ACK release
// from irregular MAC scheduling.
type WiFiProfile struct {
	Link LinkSpec
}

// WiFiProfiles generates n deterministic path profiles. Parameters are
// drawn to match the paper's description of the measured channels:
// "typical RTT deviation up to 5 ms, occasional spikes tens of
// milliseconds higher".
func WiFiProfiles(n int, seed int64) []WiFiProfile {
	rng := rand.New(rand.NewSource(seed))
	out := make([]WiFiProfile, n)
	for i := range out {
		bw := 10 + rng.Float64()*50        // 10–60 Mbps uplink
		rtt := 0.020 + rng.Float64()*0.100 // 20–120 ms to the region
		bufBDP := 0.5 + rng.Float64()*2.5  // 0.5–3 BDP of buffer
		jitterMed := 0.0005 + rng.Float64()*0.002
		sigma := 0.5 + rng.Float64()*0.5
		spikeP := 0.0002 + rng.Float64()*0.0015
		out[i] = WiFiProfile{Link: LinkSpec{
			Mbps:     bw,
			RTT:      rtt,
			BufBytes: int(bufBDP * bw * 1e6 / 8 * rtt),
			Jitter: netem.SpikeNoise{
				Base:      netem.LognormalNoise{Median: jitterMed, Sigma: sigma},
				SpikeProb: spikeP,
				SpikeMin:  0.010,
				SpikeMax:  0.040,
			},
			AckHold: true,
		}}
	}
	return out
}

// Fig9 reproduces the single-flow WiFi test: each protocol runs alone on
// every profile; throughputs are normalized by the best protocol on that
// profile, and the per-protocol CDFs are returned.
func Fig9(o Options, protocols []string) []CDFSeries {
	o = o.withDefaults()
	if protocols == nil {
		protocols = AllSingle
	}
	nProfiles := 64
	dur := 120.0
	if o.Fast {
		nProfiles = 8
		dur = 60
	}
	profiles := WiFiProfiles(nProfiles, o.seedFor(7))
	series := make([]CDFSeries, len(protocols))
	for i, p := range protocols {
		series[i].Name = p
	}
	for pi, prof := range profiles {
		tputs := make([]float64, len(protocols))
		best := 0.0
		for i, proto := range protocols {
			r := soloTraced(o.Trace, fmt.Sprintf("fig9_p%d_%s", pi, proto),
				o.seedFor(int64(pi+1)), prof.Link, proto, dur*0.25, dur)
			tputs[i] = r.Mbps
			if r.Mbps > best {
				best = r.Mbps
			}
		}
		if best == 0 {
			continue
		}
		for i := range protocols {
			series[i].Values = append(series[i].Values, tputs[i]/best)
		}
	}
	return series
}

// Fig10 reproduces the WiFi yielding test: for each primary protocol,
// the CDF over profiles of the primary's throughput ratio when competing
// with each scavenger. Returns series named "<primary> vs <scavenger>".
func Fig10(o Options, primaries, scavengers []string) []CDFSeries {
	o = o.withDefaults()
	if primaries == nil {
		primaries = Primaries
	}
	if scavengers == nil {
		scavengers = []string{ProtoProteusS, ProtoLEDBAT}
	}
	nProfiles := 64
	dur, measureFrom := 120.0, 40.0
	if o.Fast {
		nProfiles = 6
		dur, measureFrom = 80, 30
	}
	profiles := WiFiProfiles(nProfiles, o.seedFor(7))
	var out []CDFSeries
	for _, primary := range primaries {
		for _, scv := range scavengers {
			s := CDFSeries{Name: primary + " vs " + scv}
			for pi, prof := range profiles {
				solo := soloTraced(o.Trace, fmt.Sprintf("fig10_p%d_%s_solo", pi, primary),
					o.seedFor(int64(pi+1)), prof.Link, primary, measureFrom, dur).Mbps
				if solo == 0 {
					continue
				}
				res := runTraced(o.Trace, fmt.Sprintf("fig10_p%d_%s_vs_%s", pi, primary, scv),
					o.seedFor(int64(pi+1)), prof.Link,
					[]FlowSpec{{Proto: primary}, {Proto: scv, StartAt: 10}},
					measureFrom, dur)
				ratio := res[0].Mbps / solo
				if ratio > 1 {
					ratio = 1
				}
				s.Values = append(s.Values, ratio)
			}
			out = append(out, s)
		}
	}
	return out
}
