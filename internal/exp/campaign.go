package exp

import (
	"pccproteus/internal/campaign"
)

// RunCampaign executes a campaign spec against this package's protocol
// registry — every proto name accepted by NewController is valid in a
// spec's population mix. Workers <= 0 uses one worker per CPU; results
// are bit-identical for any worker count.
func RunCampaign(spec campaign.Spec, workers int) (*campaign.Aggregate, error) {
	return campaign.Run(spec, campaign.RunOpts{
		Workers:       workers,
		NewController: NewControllerRNG,
	})
}

// CampaignTable bridges a campaign aggregate into the figure pipeline:
// one row per controller class with the distribution summaries the
// figure tables use, renderable by Table.Render and exportable through
// the same CSV path as every Fig* result.
func CampaignTable(a *campaign.Aggregate) *Table {
	t := &Table{
		Title:   "Campaign " + a.Name + ": per-class outcomes",
		XLabel:  "class",
		Columns: []string{"flows", "done", "MB", "gput-p50", "gput-p90", "fct-p50", "rtt-p50(ms)", "rtt-p95(ms)", "rtt-p99(ms)", "loss-mean"},
	}
	for _, name := range a.ClassNames() {
		c := a.Classes[name]
		t.Rows = append(t.Rows, TableRow{XName: name, Cells: []float64{
			float64(c.Flows), float64(c.Completed), float64(c.Bytes) / 1e6,
			c.Goodput.Quantile(0.50), c.Goodput.Quantile(0.90),
			c.FCT.Quantile(0.50), c.RTT.Quantile(0.50) * 1000,
			c.RTT.Quantile(0.95) * 1000, c.RTT.Quantile(0.99) * 1000, c.Loss.Mean,
		}})
	}
	return t
}

// CampaignSummaryTable bridges the per-scenario distributions (scavenger
// yield, Jain fairness over primaries, bottleneck utilization).
func CampaignSummaryTable(a *campaign.Aggregate) *Table {
	t := &Table{
		Title:   "Campaign " + a.Name + ": per-scenario distributions",
		XLabel:  "metric",
		Columns: []string{"p10", "p50", "p90", "mean", "n"},
	}
	row := func(name string, h interface {
		Quantile(float64) float64
		N() int64
	}, mean float64) {
		t.Rows = append(t.Rows, TableRow{XName: name, Cells: []float64{
			h.Quantile(0.10), h.Quantile(0.50), h.Quantile(0.90), mean, float64(h.N()),
		}})
	}
	row("scav-yield", a.ScavYield, a.YieldMoments.Mean)
	row("fairness", a.Fairness, a.FairnessMoments.Mean)
	t.Rows = append(t.Rows, TableRow{XName: "utilization", Cells: []float64{
		nan(), nan(), nan(), a.Utilization.Mean, float64(a.Utilization.Count),
	}})
	return t
}
