package exp

import (
	"strings"
	"testing"

	"pccproteus/internal/chaos"
)

func TestDefaultSoakPlanIsCanonical(t *testing.T) {
	p := DefaultSoakPlan(16)
	if len(p.Faults) != 5 {
		t.Fatalf("faults: %v", p.Faults)
	}
	c := p.Canonical()
	if len(c.Faults) != len(p.Faults) {
		t.Fatalf("default plan must survive canonicalization: %v vs %v", p.Faults, c.Faults)
	}
	kinds := map[chaos.Kind]bool{}
	for _, f := range p.Faults {
		kinds[f.Kind] = true
	}
	for _, k := range []chaos.Kind{chaos.KindBlackout, chaos.KindCorrupt, chaos.KindDuplicate, chaos.KindReorder, chaos.KindAckBlackout} {
		if !kinds[k] {
			t.Errorf("default plan missing %s", k)
		}
	}
}

// TestChaosSoakCrossWorld is the attribution-parity acceptance gate:
// the same canonical fault plan replays through the simulator and the
// real-UDP shim, and every injected fault category must leave matching
// attribution in both worlds, with the watchdog tripping and
// recovering in both. One protocol keeps real-time cost bounded; the
// per-mode survival gates live in the wire and chaos packages.
func TestChaosSoakCrossWorld(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time test")
	}
	res, err := ChaosSoak(ChaosSoakOptions{
		Protos:   []string{ProtoProteusP},
		Duration: 12,
		Seed:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows: %+v", res.Rows)
	}
	row := res.Rows[0]
	if !row.Pass {
		t.Fatalf("soak failed:\n%s", res.Render())
	}
	if row.SimAttr.FaultDrop == 0 || row.WireAttr.FaultDrop == 0 {
		t.Errorf("blackout left no attribution: sim=%+v wire=%+v", row.SimAttr, row.WireAttr)
	}
	if row.SimAttr.Corrupted == 0 || row.SimAttr.Duplicated == 0 || row.SimAttr.Reordered == 0 {
		t.Errorf("sim attribution incomplete: %+v", row.SimAttr)
	}
	out := res.Render()
	for _, want := range []string{"Chaos soak", "proteus-p", "fault-drop", "PASS"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if !res.AllPass() {
		t.Error("AllPass must reflect the single passing row")
	}
}
