package exp

import (
	"fmt"

	"pccproteus/internal/core"
	"pccproteus/internal/dash"
	"pccproteus/internal/sim"
	"pccproteus/internal/transport"
	"pccproteus/internal/web"
)

// accessLink models the §6.2.2 residential downlink: ~100 Mbps wired
// with a moderate buffer.
func accessLink() LinkSpec {
	return LinkSpec{Mbps: 100, RTT: 0.020, BufBytes: 500000}
}

// fig11Ladder is the video ladder for the DASH-with-scavenger benchmark
// (top rung ≈ 16 Mbps, matching the bitrate range of Fig. 11(a)).
var fig11Ladder = []float64{0.6, 1.2, 2.5, 4.5, 7, 11, 16}

// Fig11Background lists the background-flow variants of §6.2.2.
var Fig11Background = []string{"none", ProtoProteusS, ProtoLEDBAT, ProtoCubic}

// Fig11Video reproduces Fig. 11(a): n concurrent DASH videos (over
// CUBIC transport, as dash.js over TCP) share the downlink with one
// long-running background flow; the mean chunk bitrate across videos is
// reported per background protocol.
func Fig11Video(o Options) *Table {
	o = o.withDefaults()
	counts := []int{1, 2, 4, 8}
	dur := 180.0
	if o.Fast {
		counts = []int{1, 4}
		dur = 90
	}
	t := &Table{
		Title:   "Fig 11(a): average DASH bitrate (Mbps) vs concurrent videos",
		XLabel:  "videos",
		Columns: prefixAll("bg=", Fig11Background),
	}
	for _, n := range counts {
		row := TableRow{X: float64(n)}
		for _, bg := range Fig11Background {
			bg := bg
			n := n
			avg := meanOver(o, func(seed int64) float64 {
				return fig11VideoTrial(seed, n, bg, dur)
			})
			row.Cells = append(row.Cells, avg)
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

func fig11VideoTrial(seed int64, nVideos int, background string, dur float64) float64 {
	s := sim.New(seed)
	link := accessLink()
	path := link.Build(s)
	video := dash.Video{Name: "vod", Ladder: fig11Ladder, ChunkDur: 3, Chunks: 1 << 20}
	players := make([]*dash.Player, nVideos)
	for i := 0; i < nVideos; i++ {
		snd := transport.NewSender(i+1, path, NewController(s, ProtoCubic))
		p := dash.NewPlayer(s, snd, video, dash.NewBOLA(24), 24)
		players[i] = p
		p.Start()
	}
	if background != "none" {
		bg := transport.NewSender(100, path, NewController(s, background))
		bg.Start()
	}
	s.Run(dur)
	sum := 0.0
	for _, p := range players {
		sum += p.Metrics().AvgBitrate()
	}
	return sum / float64(nVideos)
}

// Fig11Web reproduces Fig. 11(b): pages requested at Poisson rate 1 per
// 10 s for 10 minutes, with one background flow; returns the PLT
// distribution per background protocol.
func Fig11Web(o Options) []CDFSeries {
	o = o.withDefaults()
	dur := 600.0
	if o.Fast {
		dur = 150
	}
	var out []CDFSeries
	for _, bg := range Fig11Background {
		se := CDFSeries{Name: "bg=" + bg}
		for tr := 0; tr < o.Trials; tr++ {
			se.Values = append(se.Values, fig11WebTrial(o.seedFor(int64(tr+1)), bg, dur)...)
		}
		out = append(out, se)
	}
	return out
}

func fig11WebTrial(seed int64, background string, dur float64) []float64 {
	s := sim.New(seed)
	link := accessLink()
	path := link.Build(s)
	if background != "none" {
		bg := transport.NewSender(1, path, NewController(s, background))
		bg.Start()
	}
	var plts []float64
	connBase := 1000
	var spawn func()
	spawn = func() {
		page := web.RandomPage(s.Rand())
		pl := web.NewPageLoad(s, path, page, connBase, func(plt float64) {
			plts = append(plts, plt)
		})
		connBase += 100
		pl.Start()
		s.After(s.Rand().ExpFloat64()*10, spawn)
	}
	s.After(s.Rand().ExpFloat64()*10, spawn)
	s.Run(dur)
	return plts
}

// Fig12Result is one bandwidth point of the hybrid-video experiment.
type Fig12Result struct {
	BandwidthMbps float64
	Mode          string // "proteus-h" or "proteus-p"
	Bitrate4K     float64
	Bitrate1080   float64
	Rebuf4K       float64
	Rebuf1080     float64
}

// Fig12 reproduces the §6.3 hybrid-mode video streaming benchmark: one
// 4K and three 1080P videos stream simultaneously for three minutes over
// a 30 ms / 900 KB bottleneck of varying bandwidth, with all senders
// using Proteus-H (thresholds driven by the §4.4 rules) or all using
// Proteus-P. Setting forceMax pins the ABR at the top rung (Figure 13).
func Fig12(o Options, forceMax bool) []Fig12Result {
	o = o.withDefaults()
	bws := []float64{70, 80, 90, 100, 110, 120}
	if forceMax {
		bws = []float64{90, 100, 110, 120, 130, 140}
	}
	if o.Fast {
		if forceMax {
			bws = []float64{100, 120}
		} else {
			bws = []float64{80, 110}
		}
	}
	dur := 180.0
	var out []Fig12Result
	for _, bw := range bws {
		for _, mode := range []string{"proteus-h", "proteus-p"} {
			mode := mode
			var b4, b1080, r4, r1080 float64
			for tr := 0; tr < o.Trials; tr++ {
				m4, m1080 := fig12Trial(o.seedFor(int64(tr+1)), bw, mode, forceMax, dur)
				b4 += m4.AvgBitrate()
				r4 += m4.RebufferRatio()
				b1080 += m1080.AvgBitrate()
				r1080 += m1080.RebufferRatio()
			}
			n := float64(o.Trials)
			out = append(out, Fig12Result{
				BandwidthMbps: bw, Mode: mode,
				Bitrate4K: b4 / n, Bitrate1080: b1080 / n,
				Rebuf4K: r4 / n, Rebuf1080: r1080 / n,
			})
		}
	}
	return out
}

func fig12Trial(seed int64, bw float64, mode string, forceMax bool, dur float64) (m4k, m1080 dash.Metrics) {
	s := sim.New(seed)
	link := LinkSpec{Mbps: bw, RTT: 0.030, BufBytes: 900000}
	path := link.Build(s)
	corpus := dash.Corpus(10, 10, s.Rand())
	// Randomly select one 4K and three 1080P titles, as in §6.3.
	videos := []dash.Video{corpus[s.Rand().Intn(10)]}
	for i := 0; i < 3; i++ {
		videos = append(videos, corpus[10+s.Rand().Intn(10)])
	}
	var abr dash.ABR = dash.NewBOLA(24)
	if forceMax {
		abr = dash.ForceMax{}
	}
	players := make([]*dash.Player, len(videos))
	for i, v := range videos {
		var cc transport.Controller
		var hybrid *core.Hybrid
		if mode == "proteus-h" {
			c, h := core.NewProteusH(s.Rand())
			cc, hybrid = c, h
		} else {
			cc = core.NewProteusP(s.Rand())
		}
		snd := transport.NewSender(i+1, path, cc)
		p := dash.NewPlayer(s, snd, v, abr, 24)
		p.Hybrid = hybrid
		players[i] = p
		p.Start()
	}
	s.Run(dur)
	m4k = players[0].Metrics()
	var sum dash.Metrics
	for _, p := range players[1:] {
		m := p.Metrics()
		sum.BitrateSum += m.BitrateSum
		sum.ChunksPlayed += m.ChunksPlayed
		sum.PlayTime += m.PlayTime
		sum.StallTime += m.StallTime
	}
	return m4k, sum
}

// Fig12Table renders the hybrid-video results.
func Fig12Table(results []Fig12Result, forceMax bool) *Table {
	title := "Fig 12: hybrid mode in adaptive video streaming"
	if forceMax {
		title = "Fig 13: rebuffer ratio with ABR forced to highest bitrates"
	}
	t := &Table{
		Title:   title,
		XLabel:  "bw(Mbps)/mode",
		Columns: []string{"4K bitrate", "1080P bitrate", "4K rebuf%", "1080P rebuf%"},
	}
	for _, r := range results {
		t.Rows = append(t.Rows, TableRow{
			XName: fmt.Sprintf("%.0f/%s", r.BandwidthMbps, r.Mode),
			Cells: []float64{r.Bitrate4K, r.Bitrate1080, r.Rebuf4K * 100, r.Rebuf1080 * 100},
		})
	}
	return t
}

func prefixAll(prefix string, in []string) []string {
	out := make([]string, len(in))
	for i, s := range in {
		out[i] = prefix + s
	}
	return out
}
