package exp

import "testing"

// TestMeanOverRegression pins Fig4 values captured before meanOver moved
// onto the campaign worker pool and seedFor onto campaign.SplitSeed. The
// refactor promises bit-identical output — OrderedReduce folds trial
// results in trial order and SplitSeed is the same mix seedFor inlined —
// so these compare with ==, for both the historical Seed==0 identity
// seeds and a remapped replication.
func TestMeanOverRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-trial figure run")
	}
	type pin struct {
		loss               float64
		proteusP, cubicVal float64
	}
	cases := []struct {
		seed int64
		pins []pin
	}{
		{0, []pin{
			{0, 46.958, 50},
			{0.01, 40.522499999999994, 4.94125},
			{0.03, 17.566, 2.6635},
			{0.05, 13.02725, 2.07575},
		}},
		{99, []pin{
			{0, 46.96875, 50},
			{0.01, 45.3845, 4.7465},
			{0.03, 14.869, 2.6615},
			{0.05, 6.8225, 1.93225},
		}},
	}
	for _, c := range cases {
		for _, workers := range []int{1, 4} {
			o := Options{Fast: true, Trials: 2, Duration: 30, Seed: c.seed, Workers: workers}
			tab := Fig4(o, []string{ProtoProteusP, ProtoCubic})
			if len(tab.Rows) != len(c.pins) {
				t.Fatalf("seed=%d: %d rows, want %d", c.seed, len(tab.Rows), len(c.pins))
			}
			for i, p := range c.pins {
				r := tab.Rows[i]
				if r.X != p.loss || r.Cells[0] != p.proteusP || r.Cells[1] != p.cubicVal {
					t.Fatalf("seed=%d workers=%d loss=%g: got %v/%v, want %v/%v",
						c.seed, workers, r.X, r.Cells[0], r.Cells[1], p.proteusP, p.cubicVal)
				}
			}
		}
	}
}
