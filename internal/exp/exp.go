// Package exp is the experiment harness: it reconstructs every figure of
// the paper's evaluation (§6, §7.1, Appendix B) on the emulated network
// substrate. Each Fig* function builds the paper's workload, runs it in
// virtual time, and returns the same rows/series the paper plots, which
// the cmd/proteusbench CLI renders as text tables.
package exp

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"pccproteus/internal/campaign"
	"pccproteus/internal/cc/allegro"
	"pccproteus/internal/cc/bbr"
	"pccproteus/internal/cc/bbr2"
	"pccproteus/internal/cc/copa"
	"pccproteus/internal/cc/cubic"
	"pccproteus/internal/cc/fixedrate"
	"pccproteus/internal/cc/ledbat"
	"pccproteus/internal/core"
	"pccproteus/internal/netem"
	"pccproteus/internal/sim"
	"pccproteus/internal/stats"
	"pccproteus/internal/transport"
)

// Protocol names accepted by NewController. These match the labels used
// in the paper's figures.
const (
	ProtoProteusP = "proteus-p"
	ProtoProteusS = "proteus-s"
	ProtoProteusH = "proteus-h"
	ProtoVivace   = "vivace"
	ProtoCubic    = "cubic"
	ProtoBBR      = "bbr"
	ProtoBBRS     = "bbr-s"
	ProtoBBR2     = "bbr2"
	ProtoCopa     = "copa"
	ProtoLEDBAT   = "ledbat"
	ProtoLEDBAT25 = "ledbat-25"
	ProtoAllegro  = "allegro"
	ProtoFixedPfx = "fixed:" // e.g. "fixed:20" = 20 Mbps constant rate
)

// Primaries are the primary protocols evaluated throughout §6.
var Primaries = []string{ProtoCubic, ProtoBBR, ProtoCopa, ProtoProteusP, ProtoVivace}

// AllSingle is the single-flow protocol set of Figures 3–5.
var AllSingle = []string{ProtoProteusS, ProtoLEDBAT, ProtoCubic, ProtoBBR, ProtoProteusP, ProtoCopa, ProtoVivace}

// NewController builds a controller by protocol name. Unknown names
// panic: experiment definitions are static and a typo should fail loudly.
func NewController(s *sim.Sim, name string) transport.Controller {
	return NewControllerRNG(s.Rand(), name)
}

// NewControllerRNG is NewController with an explicit randomness source,
// for datapaths that run outside a simulator (the wire harness seeds a
// private RNG per flow so real-time runs stay reproducible).
func NewControllerRNG(rng *rand.Rand, name string) transport.Controller {
	switch name {
	case ProtoProteusP:
		return core.NewProteusP(rng)
	case ProtoProteusS:
		return core.NewProteusS(rng)
	case ProtoProteusH:
		c, _ := core.NewProteusH(rng)
		return c
	case ProtoVivace:
		return core.NewVivace(rng)
	case ProtoCubic:
		return cubic.New()
	case ProtoBBR:
		return bbr.New()
	case ProtoBBRS:
		return bbr.NewScavenger()
	case ProtoBBR2:
		return bbr2.New()
	case ProtoCopa:
		return copa.New()
	case ProtoLEDBAT:
		return ledbat.New(0.100)
	case ProtoLEDBAT25:
		return ledbat.New(0.025)
	case ProtoAllegro:
		return allegro.New(rng)
	}
	if strings.HasPrefix(name, ProtoFixedPfx) {
		mbps, err := strconv.ParseFloat(strings.TrimPrefix(name, ProtoFixedPfx), 64)
		if err != nil {
			panic("exp: bad fixed-rate protocol " + name)
		}
		return fixedrate.New(mbps)
	}
	panic("exp: unknown protocol " + name)
}

// LinkSpec describes one emulated bottleneck.
type LinkSpec struct {
	Mbps     float64
	RTT      float64 // base round-trip, seconds
	BufBytes int
	LossProb float64
	Jitter   netem.Noise
	AckHold  bool // bursty-ACK (WiFi MAC) model on the return path
}

// Build instantiates the path on a simulator.
func (l LinkSpec) Build(s *sim.Sim) *netem.Path {
	link := netem.NewLink(s, l.Mbps, l.BufBytes, l.RTT/2)
	link.LossProb = l.LossProb
	link.Jitter = l.Jitter
	p := &netem.Path{Link: link, AckDelay: l.RTT / 2}
	if l.AckHold {
		p.Batcher = &netem.AckBatcher{Sim: s, HoldRate: 2, HoldTime: 0.02}
	}
	return p
}

// BDPBytes returns the link's bandwidth-delay product in bytes.
func (l LinkSpec) BDPBytes() float64 { return l.Mbps * 1e6 / 8 * l.RTT }

// FlowResult summarizes one flow in one run.
type FlowResult struct {
	Proto      string
	Mbps       float64 // mean throughput over the measurement window
	RTTSamples []float64
}

// P95RTT returns the 95th-percentile RTT of the flow's samples.
func (f FlowResult) P95RTT() float64 { return stats.Percentile(f.RTTSamples, 95) }

// FlowSpec is one flow in a scenario.
type FlowSpec struct {
	Proto   string
	StartAt float64
}

// BurstFor returns the pacing-train length for a protocol. Kernel
// stacks emit GSO-style multi-packet trains, and user-space UDP senders
// burst comparably under OS timer granularity, so every congestion
// controller keeps the transport default; only the constant-bit-rate
// measurement probe of Figure 2 is configured as perfectly smooth.
func BurstFor(proto string) int {
	if strings.HasPrefix(proto, ProtoFixedPfx) {
		return 1
	}
	return 0 // transport default (GSO-style train)
}

// Run executes a multi-flow scenario on one link and measures each
// flow's throughput over [measureFrom, duration], returning results in
// flow order. RTT samples are retained for every flow.
func Run(seed int64, link LinkSpec, flows []FlowSpec, measureFrom, duration float64) []FlowResult {
	return runTraced(nil, "", seed, link, flows, measureFrom, duration)
}

// runTraced is Run with an optional flight recorder: with tc enabled,
// the run's per-flow event streams are written under scenario's name.
func runTraced(tc *Tracing, scenario string, seed int64, link LinkSpec, flows []FlowSpec, measureFrom, duration float64) []FlowResult {
	s := sim.New(seed)
	flush := tc.attach(s, scenario, flows)
	path := link.Build(s)
	senders := make([]*transport.Sender, len(flows))
	for i, f := range flows {
		cc := NewController(s, f.Proto)
		snd := transport.NewSender(i+1, path, cc)
		snd.Burst = BurstFor(f.Proto)
		snd.RecordRTT = true
		senders[i] = snd
		if f.StartAt <= 0 {
			snd.Start()
		} else {
			at := f.StartAt
			s.At(at, func() { snd.Start() })
		}
	}
	marks := make([]int64, len(flows))
	s.At(measureFrom, func() {
		for i, snd := range senders {
			marks[i] = snd.AckedBytes()
		}
	})
	s.Run(duration)
	flush()
	out := make([]FlowResult, len(flows))
	for i, snd := range senders {
		out[i] = FlowResult{
			Proto:      flows[i].Proto,
			Mbps:       float64(snd.AckedBytes()-marks[i]) * 8 / (duration - measureFrom) / 1e6,
			RTTSamples: snd.RTTSamples(),
		}
	}
	return out
}

// RunSolo measures a single flow's throughput and RTT distribution.
func RunSolo(seed int64, link LinkSpec, proto string, measureFrom, duration float64) FlowResult {
	return Run(seed, link, []FlowSpec{{Proto: proto}}, measureFrom, duration)[0]
}

// soloTraced is RunSolo with an optional flight recorder.
func soloTraced(tc *Tracing, scenario string, seed int64, link LinkSpec, proto string, measureFrom, duration float64) FlowResult {
	return runTraced(tc, scenario, seed, link, []FlowSpec{{Proto: proto}}, measureFrom, duration)[0]
}

// meanOver runs fn once per trial on the campaign worker pool, deriving
// each trial's seed from the options, and averages the results.
// OrderedReduce folds in trial order, so the mean is bit-identical to
// the historical sequential loop regardless of Workers.
func meanOver(o Options, fn func(seed int64) float64) float64 {
	sum := 0.0
	campaign.OrderedReduce(o.Trials, o.Workers, func(t int) float64 {
		return fn(o.seedFor(int64(t + 1)))
	}, func(_ int, v float64) { sum += v })
	return sum / float64(o.Trials)
}

// Table is a generic labeled result grid: one row per X value, one
// column per series, used by the text renderer and the benchmarks.
type Table struct {
	Title   string
	XLabel  string
	Columns []string
	Rows    []TableRow
}

// TableRow is one x-value's cells.
type TableRow struct {
	X     float64
	XName string // optional label overriding X
	Cells []float64
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", t.Title)
	fmt.Fprintf(&b, "%-14s", t.XLabel)
	for _, c := range t.Columns {
		fmt.Fprintf(&b, " %12s", c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		if r.XName != "" {
			fmt.Fprintf(&b, "%-14s", r.XName)
		} else {
			fmt.Fprintf(&b, "%-14.4g", r.X)
		}
		for _, c := range r.Cells {
			if math.IsNaN(c) {
				fmt.Fprintf(&b, " %12s", "-")
			} else {
				fmt.Fprintf(&b, " %12.4g", c)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CDFSeries is a named empirical distribution, for the CDF figures.
type CDFSeries struct {
	Name   string
	Values []float64
}

// RenderCDFs prints one line per decile for each series.
func RenderCDFs(title string, series []CDFSeries) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", title)
	fmt.Fprintf(&b, "%-26s %6s %6s %6s %6s %6s %6s\n", "series", "p10", "p25", "p50", "p75", "p90", "mean")
	for _, s := range series {
		v := append([]float64(nil), s.Values...)
		sort.Float64s(v)
		fmt.Fprintf(&b, "%-26s %6.3f %6.3f %6.3f %6.3f %6.3f %6.3f\n", s.Name,
			stats.PercentileSorted(v, 10), stats.PercentileSorted(v, 25),
			stats.PercentileSorted(v, 50), stats.PercentileSorted(v, 75),
			stats.PercentileSorted(v, 90), stats.Mean(v))
	}
	return b.String()
}
