package exp

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WriteCSV emits the table as CSV (header row, then one row per X),
// ready for external plotting.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{t.XLabel}, t.Columns...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range t.Rows {
		rec := make([]string, 0, len(r.Cells)+1)
		if r.XName != "" {
			rec = append(rec, r.XName)
		} else {
			rec = append(rec, strconv.FormatFloat(r.X, 'g', -1, 64))
		}
		for _, c := range r.Cells {
			rec = append(rec, strconv.FormatFloat(c, 'g', 6, 64))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCDFCSV emits empirical CDFs as long-form CSV
// (series,value,cumfrac), one row per sample.
func WriteCDFCSV(w io.Writer, series []CDFSeries) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"series", "value", "cumfrac"}); err != nil {
		return err
	}
	for _, s := range series {
		v := append([]float64(nil), s.Values...)
		sort.Float64s(v)
		for i, x := range v {
			rec := []string{
				s.Name,
				strconv.FormatFloat(x, 'g', 6, 64),
				fmt.Sprintf("%.6f", float64(i+1)/float64(len(v))),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTimelineCSV emits per-second throughput series as long-form CSV
// (scenario,flow,second,mbps).
func WriteTimelineCSV(w io.Writer, scenario string, series []TimelineSeries) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"scenario", "flow", "second", "mbps"}); err != nil {
		return err
	}
	for fi, s := range series {
		for sec, v := range s.Mbps {
			rec := []string{
				scenario,
				fmt.Sprintf("%d:%s", fi, s.Name),
				strconv.Itoa(sec + 1),
				strconv.FormatFloat(v, 'g', 6, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
