// Package web models web page loading for the §6.2.2 application
// benchmark: a page is a main document plus a set of objects fetched
// over a limited number of concurrent CUBIC connections (a browser's
// classic per-host limit), and the page-load time (PLT) is when the last
// object completes. Page requests arrive as a Poisson process while an
// optional background flow scavenges (or competes) on the same downlink.
package web

import (
	"math/rand"

	"pccproteus/internal/cc/cubic"
	"pccproteus/internal/netem"
	"pccproteus/internal/sim"
	"pccproteus/internal/transport"
)

// PageSpec is one page's object sizes in bytes.
type PageSpec struct {
	Objects []int64
}

// TotalBytes returns the page weight.
func (p PageSpec) TotalBytes() int64 {
	var t int64
	for _, o := range p.Objects {
		t += o
	}
	return t
}

// RandomPage draws a page in the style of the Alexa-top-sites era: a
// 50–300 KB document plus 25–70 objects with a heavy-tailed size mix,
// totaling roughly 1–5 MB (the 2019 median page weighed ~2 MB across
// ~70 requests).
func RandomPage(rng *rand.Rand) PageSpec {
	n := 25 + rng.Intn(46)
	objs := make([]int64, 0, n+1)
	objs = append(objs, 50_000+rng.Int63n(250_000)) // main document
	for i := 0; i < n; i++ {
		var size int64
		switch {
		case rng.Float64() < 0.15: // images / media
			size = 100_000 + rng.Int63n(400_000)
		case rng.Float64() < 0.5: // scripts / css
			size = 30_000 + rng.Int63n(120_000)
		default: // small assets
			size = 2_000 + rng.Int63n(30_000)
		}
		objs = append(objs, size)
	}
	return PageSpec{Objects: objs}
}

// MaxConnections is the per-page parallel connection limit (browsers'
// per-host default).
const MaxConnections = 6

// HandshakeRTTs is the connection-setup cost charged before a fetch's
// first byte (TCP + TLS ≈ 2 round trips).
const HandshakeRTTs = 2

// PageLoad fetches one page on the given path and calls done with the
// completion time. The main document loads first (connection 1); the
// remaining objects are distributed over up to MaxConnections parallel
// CUBIC connections, mirroring how a browser discovers subresources.
type PageLoad struct {
	sim     *sim.Sim
	path    *netem.Path
	page    PageSpec
	started float64
	done    func(plt float64)

	queue      []int64
	afterQueue []int64 // second discovery wave
	active     int
	nextConn   int
	completed  int
}

// NewPageLoad creates (but does not start) a page load.
func NewPageLoad(s *sim.Sim, path *netem.Path, page PageSpec, connBase int, done func(plt float64)) *PageLoad {
	return &PageLoad{sim: s, path: path, page: page, done: done, nextConn: connBase}
}

// Start begins the fetch at the current simulation time. Real pages
// load in dependency waves: the document reveals render-blocking
// scripts and stylesheets, which in turn reveal images and other leaf
// assets — so the subresources are fetched in two waves, each behind
// fresh connections with handshake costs. This wave structure (not raw
// byte count) is what makes real page loads span seconds.
func (pl *PageLoad) Start() {
	pl.started = pl.sim.Now()
	rest := pl.page.Objects[1:]
	wave1 := append([]int64(nil), rest[:len(rest)/3]...)
	wave2 := append([]int64(nil), rest[len(rest)/3:]...)
	// Main document first; wave 1 when it completes; wave 2 when wave 1
	// drains.
	pl.fetch(pl.page.Objects[0], func() {
		pl.queue = wave1
		pl.afterQueue = wave2
		for pl.active < MaxConnections && len(pl.queue) > 0 {
			pl.dispatch()
		}
	})
}

func (pl *PageLoad) dispatch() {
	size := pl.queue[0]
	pl.queue = pl.queue[1:]
	pl.fetch(size, func() {
		if len(pl.queue) == 0 && pl.active == 0 && len(pl.afterQueue) > 0 {
			pl.queue = pl.afterQueue
			pl.afterQueue = nil
			for pl.active < MaxConnections && len(pl.queue) > 0 {
				pl.dispatch()
			}
			return
		}
		if len(pl.queue) > 0 {
			pl.dispatch()
		}
	})
}

func (pl *PageLoad) fetch(size int64, next func()) {
	pl.active++
	snd := transport.NewSender(pl.nextConn, pl.path, cubic.New())
	pl.nextConn++
	snd.Limit = size
	snd.OnComplete = func(now float64) {
		pl.active--
		pl.completed++
		if pl.completed == len(pl.page.Objects) {
			if pl.done != nil {
				pl.done(now - pl.started)
			}
			return
		}
		next()
	}
	handshake := HandshakeRTTs * pl.path.BaseRTT()
	pl.sim.After(handshake, snd.Start)
}
