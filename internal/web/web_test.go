package web

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pccproteus/internal/netem"
	"pccproteus/internal/sim"
)

func testPath(s *sim.Sim) *netem.Path {
	l := netem.NewLink(s, 100, 500000, 0.010)
	return &netem.Path{Link: l, AckDelay: 0.010}
}

func TestRandomPageShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		p := RandomPage(rng)
		if len(p.Objects) < 26 || len(p.Objects) > 71 {
			t.Fatalf("object count %d out of range", len(p.Objects))
		}
		if tot := p.TotalBytes(); tot < 300_000 || tot > 12_000_000 {
			t.Fatalf("page weight %d out of range", tot)
		}
		if p.Objects[0] < 50_000 {
			t.Fatal("main document too small")
		}
	}
}

func TestPageLoadCompletes(t *testing.T) {
	s := sim.New(1)
	path := testPath(s)
	page := RandomPage(s.Rand())
	var plt float64
	pl := NewPageLoad(s, path, page, 1, func(d float64) { plt = d })
	pl.Start()
	s.Run(60)
	if plt == 0 {
		t.Fatal("page never completed")
	}
	// A ~1–4 MB page on 100 Mbps / 20 ms should load within a couple of
	// seconds (dominated by RTTs of the short flows).
	if plt > 5 {
		t.Fatalf("PLT %.2f s implausibly slow", plt)
	}
	// Lower bound: at least one RTT for the document plus one for the
	// subresources.
	if plt < 0.040 {
		t.Fatalf("PLT %.3f s implausibly fast", plt)
	}
}

func TestPageLoadRespectsConnectionLimit(t *testing.T) {
	s := sim.New(2)
	path := testPath(s)
	page := PageSpec{Objects: make([]int64, 30)}
	for i := range page.Objects {
		page.Objects[i] = 50_000
	}
	pl := NewPageLoad(s, path, page, 1, nil)
	pl.Start()
	maxActive := 0
	var tick func()
	tick = func() {
		if pl.active > maxActive {
			maxActive = pl.active
		}
		if s.Now() < 20 {
			s.After(0.005, tick)
		}
	}
	s.After(0.005, tick)
	s.Run(20)
	if maxActive > MaxConnections {
		t.Fatalf("active connections %d exceeded limit %d", maxActive, MaxConnections)
	}
	if pl.completed != len(page.Objects) {
		t.Fatalf("completed %d of %d", pl.completed, len(page.Objects))
	}
}

func TestPLTDegradesUnderLoss(t *testing.T) {
	load := func(lossy bool) float64 {
		s := sim.New(3)
		path := testPath(s)
		if lossy {
			path.Link.LossProb = 0.05
		}
		page := PageSpec{Objects: []int64{200_000, 100_000, 100_000, 100_000}}
		var plt float64
		pl := NewPageLoad(s, path, page, 1, func(d float64) { plt = d })
		pl.Start()
		s.Run(120)
		return plt
	}
	clean, lossy := load(false), load(true)
	if clean == 0 || lossy == 0 {
		t.Fatal("loads did not complete")
	}
	if lossy <= clean {
		t.Fatalf("loss should slow the page: clean=%.3f lossy=%.3f", clean, lossy)
	}
}

// Property: every random page eventually completes and the PLT is
// positive.
func TestQuickPageLoadAlwaysCompletes(t *testing.T) {
	f := func(seed int64) bool {
		s := sim.New(seed)
		path := testPath(s)
		page := RandomPage(s.Rand())
		done := false
		plt := 0.0
		pl := NewPageLoad(s, path, page, 1, func(d float64) { done, plt = true, d })
		pl.Start()
		s.Run(120)
		return done && plt > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
