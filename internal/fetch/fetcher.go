package fetch

import (
	"errors"
	"net"
	"os"
	"sync"
	"time"

	"pccproteus/internal/stats"
	"pccproteus/internal/transport"
	"pccproteus/internal/wire"
)

// Datapath loop tuning, matching the wire sender's real-time loops.
const (
	minSleep      = 50 * time.Microsecond
	maxSleep      = time.Millisecond
	rtoCheckEvery = 0.010
	schedSlack    = 0.25
	readTimeout   = 50 * time.Millisecond
	maxFiniteRate = 125e9 // bytes/sec above which pacing is disabled

	// rttHistLo/Hi/Bins parameterize the per-fetch RTT histogram:
	// geometric bins from 100 µs to 10 s, ~7% relative resolution.
	rttHistLo   = 1e-4
	rttHistHi   = 10.0
	rttHistBins = 160
)

// FetcherStats is a snapshot of a running (or finished) fetch.
type FetcherStats struct {
	CoreStats
	BadResps  int64 // datagrams the segment codec rejected
	CrcErrs   int64 // segments whose payload failed its CRC
	SentBytes int64 // request bytes written to the socket
}

// Fetcher drives one segmented fetch over a datagram socket: a pacing
// loop issues FETCH requests under the controller's rate and window, a
// receive loop feeds SEGMENT responses back into the scheduler core.
// Configure the exported fields, then Start.
type Fetcher struct {
	// Conn is a connected datagram socket to the server (possibly via
	// the impairment shim). The fetcher owns it after Start.
	Conn wire.Conn
	CC   transport.Controller
	// ObjID names the object (fetch.ObjectID of its name).
	ObjID uint64
	// SegSize must match the server's store (default DefaultSegSize).
	SegSize int
	// Window bounds the reassembly window in segments.
	Window int
	// Burst is the request-train length per pacing wake (default
	// transport.DefaultBurst).
	Burst int
	// OnData observes each segment at in-order delivery (e.g. to write
	// the object to disk). Called from the receive goroutine.
	OnData func(seg int64, payload []byte)

	clock wire.Clock

	mu    sync.Mutex
	core  *Core
	pacer tokenBucket
	sched float64
	// schedAnchor tracks whether the scheduled-send timeline has been
	// anchored since the last idle, exactly as in the wire sender.
	schedAnchor bool
	lastTick    float64
	rttHist     *stats.LogHist
	badResps    int64
	crcErrs     int64
	sentBytes   int64

	reqBuf []byte

	started  bool
	done     chan struct{}
	complete chan struct{}
	compOnce sync.Once
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// Start validates configuration and launches the datapath goroutines.
func (f *Fetcher) Start() error {
	if f.started {
		return errors.New("fetch: fetcher already started")
	}
	if f.Conn == nil || f.CC == nil {
		return errors.New("fetch: fetcher needs Conn and CC")
	}
	core, err := NewCore(Config{
		ObjID: f.ObjID, CC: f.CC, SegSize: f.SegSize, Window: f.Window,
		Hash: true, OnData: f.OnData, OnRTT: func(rtt float64) { f.rttHist.Add(rtt) },
	})
	if err != nil {
		return err
	}
	if f.Burst <= 0 {
		f.Burst = transport.DefaultBurst
	}
	f.core = core
	f.rttHist = stats.NewLogHist(rttHistLo, rttHistHi, rttHistBins)
	f.clock = wire.NewClock()
	f.pacer.cap = float64(2 * f.Burst * f.respSize())
	f.pacer.reset(0)
	f.reqBuf = make([]byte, wire.FetchLen)
	f.done = make(chan struct{})
	f.complete = make(chan struct{})
	f.started = true
	f.wg.Add(2)
	go f.sendLoop()
	go f.recvLoop()
	return nil
}

// respSize is the full-segment response size, the pacing currency.
func (f *Fetcher) respSize() int {
	seg := f.SegSize
	if seg <= 0 {
		seg = DefaultSegSize
	}
	return wire.SegmentHeaderLen + seg
}

// Done is closed once the object is fully delivered and verified (or
// verification failed — check Stats().Verified).
func (f *Fetcher) Done() <-chan struct{} { return f.complete }

// Stop terminates both loops and closes the socket.
func (f *Fetcher) Stop() {
	f.stopOnce.Do(func() {
		close(f.done)
		f.Conn.Close()
	})
	f.wg.Wait()
}

// Stats returns a snapshot of the fetch's counters.
func (f *Fetcher) Stats() FetcherStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return FetcherStats{
		CoreStats: f.core.Stats(),
		BadResps:  f.badResps, CrcErrs: f.crcErrs, SentBytes: f.sentBytes,
	}
}

// RTTQuantiles returns the p50/p95/p99 of the fetch's per-request RTT
// samples, in seconds.
func (f *Fetcher) RTTQuantiles() (p50, p95, p99 float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rttHist.Quantile(0.50), f.rttHist.Quantile(0.95), f.rttHist.Quantile(0.99)
}

func (f *Fetcher) sendLoop() {
	defer f.wg.Done()
	for {
		select {
		case <-f.done:
			return
		default:
		}
		f.mu.Lock()
		now := f.clock.Now()
		if now-f.lastTick >= rtoCheckEvery {
			f.lastTick = now
			if req, ok := f.core.Tick(now); ok {
				if !f.writeReq(req, now) {
					f.mu.Unlock()
					return
				}
			}
		}
		if f.core.Done() {
			f.mu.Unlock()
			f.compOnce.Do(func() { close(f.complete) })
			select {
			case <-f.done:
				return
			case <-time.After(maxSleep):
			}
			continue
		}
		rate := f.core.PacingRate()
		f.pacer.advance(now, rate)
		// Requests are paced so the *responses* they elicit arrive at
		// the controller's target rate: the token bucket is charged the
		// expected response size per request, and each request's
		// scheduled-send stamp advances the virtual timeline by that
		// response's serialization time. The echoed stamp is what the
		// shim's virtual bottleneck measures against, so response
		// arrivals are a deterministic function of the request schedule
		// — the wire sender's determinism property, mirrored.
		gated := false
		if f.pacer.delay(f.trainBytes(), rate) == 0 {
			finite := rate > 0 && rate <= maxFiniteRate
			if !finite || !f.schedAnchor || now-f.sched > f.pacer.cap/rate+schedSlack {
				f.sched = now
				f.schedAnchor = true
			}
			for {
				size, ok := f.core.PeekSize()
				if !ok {
					gated = true
					break
				}
				if !f.pacer.take(size) {
					break
				}
				virt := now
				if finite {
					virt = f.sched
					f.sched += float64(size) / rate
				}
				req, issued := f.core.Issue(now, virt)
				if !issued {
					break // cannot happen: pick is deterministic between Peek and Issue
				}
				if !f.writeReqVirt(req, virt) {
					f.mu.Unlock()
					return
				}
			}
		}
		var sleep time.Duration
		if gated {
			sleep = maxSleep
		} else {
			d := f.pacer.delay(f.trainBytes(), rate)
			sleep = time.Duration(d * float64(time.Second))
			if sleep > maxSleep {
				sleep = maxSleep
			}
		}
		f.mu.Unlock()
		if sleep < minSleep {
			sleep = minSleep
		}
		select {
		case <-f.done:
			return
		case <-time.After(sleep):
		}
	}
}

func (f *Fetcher) trainBytes() int { return f.Burst * f.respSize() }

// writeReq encodes and transmits one request stamped at now.
func (f *Fetcher) writeReq(req Request, now float64) bool {
	return f.writeReqVirt(req, now)
}

// writeReqVirt encodes and transmits one request with its scheduled
// send stamp. Called with the mutex held; reports false only on a
// closed socket.
func (f *Fetcher) writeReqVirt(req Request, virt float64) bool {
	pkt := wire.EncodeFetch(f.reqBuf, wire.FetchHeader{
		ObjID: f.ObjID, Seg: req.Seg, Nonce: req.Nonce,
		SentAt: f.clock.NanosAt(virt), Meta: req.Meta,
	})
	f.sentBytes += int64(len(pkt))
	if _, err := f.Conn.Write(pkt); err != nil {
		// A full socket buffer is a loss the datapath will detect; only
		// a closed socket ends the loop.
		return !isClosed(err)
	}
	return true
}

func (f *Fetcher) recvLoop() {
	defer f.wg.Done()
	buf := make([]byte, 65536)
	for {
		select {
		case <-f.done:
			return
		default:
		}
		f.Conn.SetReadDeadline(time.Now().Add(readTimeout))
		n, err := f.Conn.Read(buf)
		if err != nil {
			if isTimeout(err) {
				continue
			}
			if isClosed(err) {
				return
			}
			time.Sleep(time.Millisecond)
			continue
		}
		h, payload, derr := wire.DecodeSegment(buf[:n])
		f.mu.Lock()
		if derr != nil {
			if errors.Is(derr, wire.ErrChecksum) {
				f.crcErrs++
			}
			f.badResps++
			f.mu.Unlock()
			continue
		}
		now := f.clock.Now()
		// Prefer the shim's emulated arrival stamp; on a bare path the
		// fetcher's own clock at read is the truth.
		recvAt := now
		if h.Arrival != 0 {
			recvAt = f.clock.SecondsSince(h.Arrival)
		}
		f.core.OnResponse(Response{
			Nonce: h.Nonce, Seg: h.Seg, Meta: h.Meta,
			TotalSegs: h.TotalSegs, ObjSize: h.ObjSize, Payload: payload,
		}, recvAt, now)
		fin := f.core.Done()
		f.mu.Unlock()
		if fin {
			f.compOnce.Do(func() { close(f.complete) })
		}
	}
}

// tokenBucket is the fetcher's pacer, byte-for-byte the wire sender's:
// tokens accrue at the controller's rate and are spent per request in
// expected-response bytes.
type tokenBucket struct {
	tokens float64
	last   float64
	cap    float64
	inited bool
}

func (p *tokenBucket) reset(now float64) {
	p.tokens = 0
	p.last = now
	p.inited = true
}

func (p *tokenBucket) advance(now, rate float64) {
	if !p.inited {
		p.reset(now)
	}
	dt := now - p.last
	if dt < 0 {
		dt = 0
	}
	p.last = now
	if rate <= 0 || rate > maxFiniteRate {
		p.tokens = p.cap
		return
	}
	p.tokens += dt * rate
	if p.tokens > p.cap {
		p.tokens = p.cap
	}
}

func (p *tokenBucket) take(n int) bool {
	if p.tokens < float64(n) {
		return false
	}
	p.tokens -= float64(n)
	return true
}

func (p *tokenBucket) delay(n int, rate float64) float64 {
	deficit := float64(n) - p.tokens
	if deficit <= 0 {
		return 0
	}
	if rate <= 0 || rate > maxFiniteRate {
		return 0
	}
	return deficit / rate
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

func isClosed(err error) bool {
	return errors.Is(err, net.ErrClosed) || errors.Is(err, os.ErrClosed)
}
