package fetch

import (
	"math"

	"pccproteus/internal/netem"
	"pccproteus/internal/sim"
	"pccproteus/internal/transport"
	"pccproteus/internal/wire"
)

// simTickEvery is the periodic scheduler tick inside the simulator —
// the event-driven analog of the wire fetcher's rtoCheckEvery cadence.
const simTickEvery = 0.010

// SimTransfer runs the same scheduler core as the wire Fetcher on a
// netem.Path inside the simulator: requests travel the uncongested
// reverse path (the direction acks normally take, with the same
// blackout and restart-flush semantics), segment responses traverse the
// forward bottleneck, and the controller hears the identical callback
// sequence. No payload bytes move — byte accounting comes from the
// object geometry — so a 100 GB background fetch costs the simulator
// only its packet events.
type SimTransfer struct {
	S    *sim.Sim
	Path *netem.Path
	CC   transport.Controller
	// ID tags the response packets' FlowID for tracing.
	ID int
	// ObjectBytes is the object size (the sim server is synthetic).
	ObjectBytes int64
	// SegSize and Window as in Config.
	SegSize int
	Window  int
	// Burst is the request-train length per pacing event.
	Burst int
	// OnComplete fires once when the transfer finishes.
	OnComplete func(now float64)

	core      *Core
	totalSegs int64
	nextSend  float64
	timerSet  bool
	blocked   bool
	started   bool
	completed bool
}

// Start begins the fetch at the current simulation time.
func (t *SimTransfer) Start() error {
	if t.started {
		return nil
	}
	core, err := NewCore(Config{
		CC: t.CC, SegSize: t.SegSize, Window: t.Window,
	})
	if err != nil {
		return err
	}
	if t.Burst <= 0 {
		t.Burst = transport.DefaultBurst
	}
	t.core = core
	t.totalSegs = TotalSegs(t.ObjectBytes, core.cfg.SegSize)
	t.started = true
	t.core.lastRespAt = t.S.Now()
	t.tick()
	t.trySend()
	return nil
}

// Done reports whether the transfer has completed.
func (t *SimTransfer) Done() bool { return t.completed }

// DeliveredBytes returns bytes delivered in order so far — the goodput
// numerator experiments measure.
func (t *SimTransfer) DeliveredBytes() int64 { return t.core.DeliveredBytes() }

// Stats exposes the scheduler core's counters.
func (t *SimTransfer) Stats() CoreStats { return t.core.Stats() }

// tick is the periodic survival scan; it reschedules itself until the
// transfer completes.
func (t *SimTransfer) tick() {
	if t.completed {
		return
	}
	now := t.S.Now()
	if req, ok := t.core.Tick(now); ok {
		t.sendRequest(req, now)
	}
	t.checkDone(now)
	if t.completed {
		return
	}
	if t.blocked || !t.timerSet {
		t.blocked = false
		if t.nextSend < now {
			t.nextSend = now
		}
		t.trySend()
	}
	t.S.After(simTickEvery, t.tick)
}

func (t *SimTransfer) trySend() {
	if t.timerSet || t.completed || !t.started {
		return
	}
	if _, ok := t.core.PeekSize(); !ok {
		t.blocked = true
		return
	}
	now := t.S.Now()
	at := t.nextSend
	if at < now {
		at = now
	}
	t.timerSet = true
	t.S.At(at, t.emit)
}

func (t *SimTransfer) emit() {
	t.timerSet = false
	if t.completed {
		return
	}
	now := t.S.Now()
	burst := t.Burst
	if burst > 1 {
		// Randomized train length, as the simulated sender: stochastic
		// aggregate arrivals are what give a near-saturated bottleneck
		// queue its realistic variance.
		burst = 1 + t.S.Rand().Intn(2*burst-1)
	}
	sent := 0
	for i := 0; i < burst; i++ {
		size, ok := t.core.PeekSize()
		if !ok {
			t.blocked = true
			break
		}
		req, issued := t.core.Issue(now, now)
		if !issued {
			break
		}
		t.sendRequest(req, now)
		sent += size
	}
	if sent == 0 {
		return
	}
	rate := t.core.PacingRate()
	if math.IsInf(rate, 1) || rate <= 0 {
		t.nextSend = now
	} else {
		t.nextSend = now + float64(sent)/rate
	}
	t.trySend()
}

// sendRequest carries one request across the reverse path to the
// synthetic server, which answers by offering the response packet to
// the forward bottleneck. Reverse-path blackouts destroy the request
// (the core's RTO re-issues it); a restart flush discards it in flight
// — the exact semantics acks have.
func (t *SimTransfer) sendRequest(req Request, now float64) {
	if t.Path.DropAck() {
		return
	}
	ep := t.Path.Epoch()
	at := t.Path.AckArrival(now)
	virt := now
	t.S.At(at, func() {
		if ep != t.Path.Epoch() {
			t.Path.NoteAckFlushed()
			return
		}
		t.serve(req, virt)
	})
}

// serve is the stateless sim server: geometry from the configured
// object size, response size from the segment index, the request's
// send stamp echoed into the packet's SentAt — mirroring the wire
// server's echo of the scheduled-send stamp.
func (t *SimTransfer) serve(req Request, virt float64) {
	size := wire.SegmentHeaderLen + wire.DigestLen
	if !req.Meta {
		n := int64(t.core.cfg.SegSize)
		if rem := t.ObjectBytes - req.Seg*int64(t.core.cfg.SegSize); rem < n {
			n = rem
		}
		if n < 0 {
			n = 0
		}
		size = wire.SegmentHeaderLen + int(n)
	}
	pkt := &netem.Packet{FlowID: t.ID, Seq: req.Nonce, Size: size, SentAt: virt}
	seg, meta := req.Seg, req.Meta
	t.Path.Send(pkt, func(p *netem.Packet, arrival float64) {
		t.deliverResp(p, seg, meta, arrival)
	})
}

func (t *SimTransfer) deliverResp(p *netem.Packet, seg int64, meta bool, arrival float64) {
	if t.completed {
		return
	}
	recvAt := arrival + t.Path.StampOffset
	t.core.OnResponse(Response{
		Nonce: p.Seq, Seg: seg, Meta: meta,
		TotalSegs: t.totalSegs, ObjSize: t.ObjectBytes,
	}, recvAt, arrival)
	t.checkDone(arrival)
	if t.completed {
		return
	}
	if t.blocked || !t.timerSet {
		t.blocked = false
		if t.nextSend < arrival {
			t.nextSend = arrival
		}
		t.trySend()
	}
}

func (t *SimTransfer) checkDone(now float64) {
	if !t.completed && t.core.Done() {
		t.completed = true
		if t.OnComplete != nil {
			t.OnComplete(now)
		}
	}
}
