// Package fetch is the segmented bulk-transfer protocol layered on the
// wire datapath: the application layer the paper's headline Proteus-S
// use-case — software updates and backups that move bulk data without
// hurting foreground traffic — actually needs in order to be measured
// as *delivered application goodput* rather than opaque paced packets.
//
// The design is receiver-driven, in the style of NDN interest/data
// exchanges (and ndn-dpdk's segmented fetcher): an object is split into
// fixed-size segments; the fetcher issues FETCH requests — each naming
// one segment — paced and windowed by any transport.Controller, and the
// server answers each request with one SEGMENT response. Congestion
// control therefore runs at the *downloading* endpoint: the controller
// is fed acknowledgment callbacks whose byte currency is the expected
// response size, so its rate and window govern the response stream that
// actually crosses the bottleneck. Per-segment request state lives in a
// retransmit queue driven by response arrivals (RACK-style reordering
// tolerance plus an RTO backstop); delivery is in-order through a
// bounded reassembly window; integrity is checked per segment (CRC-32C)
// and end-to-end (whole-object SHA-256 from the metadata exchange).
//
// The same scheduler core runs on both worlds: Fetcher drives it over
// UDP sockets against a wire.Receiver serving a Store, and SimTransfer
// drives it over a netem.Path inside the simulator, which is what lets
// experiments put a bulk fetch behind Proteus-S underneath simulated
// dash/web foreground and gate the two worlds against each other.
package fetch

import (
	"crypto/sha256"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"

	"pccproteus/internal/wire"
)

// DefaultSegSize is the default segment payload size: chosen so a full
// segment response is exactly one netem.MTU (1500) on the wire, which
// keeps sim and wire byte accounting aligned.
const DefaultSegSize = 1500 - wire.SegmentHeaderLen

// ObjectID names an object: FNV-1a 64 of its name. Both ends derive it
// independently, so the wire protocol never carries strings.
func ObjectID(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return h.Sum64()
}

// object is one served blob with its precomputed whole-object digest.
type object struct {
	name   string
	data   []byte
	digest [wire.DigestLen]byte
}

// Store is the server side: a read-only set of named objects answering
// fetch requests. Load objects with Add/AddFile/ServeDir before wiring
// HandleFetch into a receiver; after that the store is never mutated,
// so the receiver goroutine reads it without locking.
type Store struct {
	SegSize int // payload bytes per segment (default DefaultSegSize)

	objs map[uint64]*object
}

// NewStore returns an empty store with the given segment size (0 means
// DefaultSegSize).
func NewStore(segSize int) *Store {
	if segSize <= 0 {
		segSize = DefaultSegSize
	}
	if segSize > wire.MaxSegPayload {
		segSize = wire.MaxSegPayload
	}
	return &Store{SegSize: segSize, objs: make(map[uint64]*object)}
}

// Add registers data under name. The store aliases data; callers must
// not mutate it afterwards.
func (st *Store) Add(name string, data []byte) uint64 {
	id := ObjectID(name)
	st.objs[id] = &object{name: name, data: data, digest: sha256.Sum256(data)}
	return id
}

// AddFile loads one file from disk under its base name.
func (st *Store) AddFile(path string) (uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	return st.Add(filepath.Base(path), data), nil
}

// ServeDir loads every regular file directly inside dir (sorted, no
// recursion) and returns the loaded names.
func (st *Store) ServeDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.Type().IsRegular() {
			continue
		}
		if _, err := st.AddFile(filepath.Join(dir, e.Name())); err != nil {
			return nil, err
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

// Objects returns the number of loaded objects.
func (st *Store) Objects() int { return len(st.objs) }

// TotalSegs returns the segment count for an object of size bytes at
// the given segment size: at least 1, so even an empty object has a
// well-formed geometry (one zero-byte segment).
func TotalSegs(size int64, segSize int) int64 {
	n := (size + int64(segSize) - 1) / int64(segSize)
	if n < 1 {
		n = 1
	}
	return n
}

// HandleFetch answers one fetch request, encoding the SEGMENT response
// into buf and returning the packet slice, or nil for an unknown object
// or out-of-range segment (the fetcher treats silence as loss). It has
// the exact signature of wire.Receiver.OnFetch.
func (st *Store) HandleFetch(h wire.FetchHeader, buf []byte) []byte {
	obj, ok := st.objs[h.ObjID]
	if !ok {
		return nil
	}
	size := int64(len(obj.data))
	total := TotalSegs(size, st.SegSize)
	sh := wire.SegmentHeader{
		Nonce:      h.Nonce,
		SentAtEcho: h.SentAt,
		Meta:       h.Meta,
		ObjID:      h.ObjID,
		TotalSegs:  total,
		ObjSize:    size,
	}
	if h.Meta {
		return wire.EncodeSegment(buf, sh, obj.digest[:])
	}
	if h.Seg >= total {
		return nil
	}
	sh.Seg = h.Seg
	lo := h.Seg * int64(st.SegSize)
	hi := lo + int64(st.SegSize)
	if hi > size {
		hi = size
	}
	return wire.EncodeSegment(buf, sh, obj.data[lo:hi])
}
