package fetch

import (
	"crypto/sha256"
	"math"
	"math/rand"
	"testing"

	"pccproteus/internal/transport"
)

// fixedCC is a minimal controller for datapath tests: a constant pacing
// rate and congestion window, with counters proving the core delivers
// the standard callback sequence.
type fixedCC struct {
	rate  float64
	cwnd  float64
	sends int
	acks  int
	loss  int
}

func (c *fixedCC) Name() string                                  { return "test-fixed" }
func (c *fixedCC) OnSend(now float64, pkt *transport.SentPacket) { c.sends++ }
func (c *fixedCC) OnAck(transport.Ack)                           { c.acks++ }
func (c *fixedCC) OnLoss(transport.Loss)                         { c.loss++ }
func (c *fixedCC) PacingRate() float64                           { return c.rate }
func (c *fixedCC) CWnd() float64                                 { return c.cwnd }

// handServer drives a Core against a synthetic in-memory server with a
// fixed RTT and a per-response drop hook, stepping virtual time by hand.
type handServer struct {
	data    []byte
	segSize int
	total   int64
	digest  [32]byte
	rtt     float64
	drop    func(n int64) bool // drop the response to request number n

	reqs  int64
	queue []timedResp
}

type timedResp struct {
	at float64
	r  Response
}

func newHandServer(size int, segSize int, rtt float64) *handServer {
	data := make([]byte, size)
	rand.New(rand.NewSource(7)).Read(data)
	return &handServer{
		data: data, segSize: segSize, rtt: rtt,
		total:  TotalSegs(int64(size), segSize),
		digest: sha256.Sum256(data),
	}
}

func (sv *handServer) respond(req Request, now float64) {
	n := sv.reqs
	sv.reqs++
	if sv.drop != nil && sv.drop(n) {
		return
	}
	r := Response{Nonce: req.Nonce, Seg: req.Seg, Meta: req.Meta,
		TotalSegs: sv.total, ObjSize: int64(len(sv.data))}
	if req.Meta {
		r.Payload = sv.digest[:]
	} else {
		lo := req.Seg * int64(sv.segSize)
		hi := lo + int64(sv.segSize)
		if hi > int64(len(sv.data)) {
			hi = int64(len(sv.data))
		}
		r.Payload = sv.data[lo:hi]
	}
	sv.queue = append(sv.queue, timedResp{at: now + sv.rtt, r: r})
}

// run steps the core against the server until completion or the time
// horizon, returning the completion time.
func (sv *handServer) run(t *testing.T, c *Core, horizon float64) float64 {
	t.Helper()
	const dt = 0.001
	for now := 0.0; now < horizon; now += dt {
		if req, ok := c.Tick(now); ok {
			sv.respond(req, now)
		}
		for {
			if _, ok := c.PeekSize(); !ok {
				break
			}
			req, ok := c.Issue(now, now)
			if !ok {
				t.Fatalf("PeekSize ok but Issue refused at t=%.3f", now)
			}
			sv.respond(req, now)
		}
		rest := sv.queue[:0]
		for _, tr := range sv.queue {
			if tr.at <= now {
				c.OnResponse(tr.r, tr.at, now)
			} else {
				rest = append(rest, tr)
			}
		}
		sv.queue = rest
		if c.Done() {
			return now
		}
	}
	return horizon
}

func TestCoreCleanTransfer(t *testing.T) {
	cc := &fixedCC{rate: 2e6, cwnd: math.Inf(1)}
	c, err := NewCore(Config{CC: cc, SegSize: 1000, Hash: true})
	if err != nil {
		t.Fatal(err)
	}
	sv := newHandServer(10500, 1000, 0.050)
	end := sv.run(t, c, 30)
	if !c.Done() || !c.Verified() {
		t.Fatalf("done=%v verified=%v", c.Done(), c.Verified())
	}
	if end >= 30 {
		t.Fatalf("did not complete before horizon")
	}
	st := c.Stats()
	if st.Delivered != 10500 {
		t.Fatalf("delivered=%d want 10500", st.Delivered)
	}
	// 11 data segments + 1 metadata request, no losses, no dups.
	if st.ReqsSent != 12 || st.LostReqs != 0 || st.Dups != 0 || st.Refetched != 0 {
		t.Fatalf("reqs=%d lost=%d dups=%d refetched=%d", st.ReqsSent, st.LostReqs, st.Dups, st.Refetched)
	}
	if cc.acks != 12 || cc.sends != 12 {
		t.Fatalf("controller callbacks: sends=%d acks=%d", cc.sends, cc.acks)
	}
}

func TestCoreRecoversFromLoss(t *testing.T) {
	cc := &fixedCC{rate: 4e6, cwnd: math.Inf(1)}
	c, err := NewCore(Config{CC: cc, SegSize: 1000, Hash: true})
	if err != nil {
		t.Fatal(err)
	}
	sv := newHandServer(200_000, 1000, 0.040)
	sv.drop = func(n int64) bool { return n%7 == 3 } // lose every 7th response
	sv.run(t, c, 60)
	if !c.Done() || !c.Verified() {
		t.Fatalf("done=%v verified=%v stats=%+v", c.Done(), c.Verified(), c.Stats())
	}
	st := c.Stats()
	if st.LostReqs == 0 {
		t.Fatalf("expected declared losses, got none")
	}
	if cc.loss == 0 {
		t.Fatalf("controller never heard OnLoss")
	}
	if st.Refetched != 0 {
		t.Fatalf("refetched=%d want 0", st.Refetched)
	}
	if st.Delivered != 200_000 {
		t.Fatalf("delivered=%d", st.Delivered)
	}
}

// A response that arrives after its request was declared lost must
// still deliver its segment — data is data — and the pending
// retransmit for that segment must be skipped, not re-sent.
func TestCoreLateResponseDelivers(t *testing.T) {
	cc := &fixedCC{rate: 1e6, cwnd: math.Inf(1)}
	c, err := NewCore(Config{CC: cc, SegSize: 100, Hash: false})
	if err != nil {
		t.Fatal(err)
	}
	// Geometry via a synthetic meta response so the core can issue.
	c.OnResponse(Response{Nonce: 999, Meta: true, TotalSegs: 3, ObjSize: 300,
		Payload: make([]byte, 32)}, 0, 0)

	req0, ok := c.Issue(0, 0)
	if !ok || req0.Meta {
		t.Fatalf("expected fresh segment request, got %+v ok=%v", req0, ok)
	}
	// Force the request lost via the RTO backstop (no responses for >RTO).
	c.Tick(5.0)
	if got := c.Stats().LostReqs; got != 1 {
		t.Fatalf("lostReqs=%d want 1", got)
	}
	// The late response arrives anyway.
	c.OnResponse(Response{Nonce: req0.Nonce, Seg: req0.Seg, TotalSegs: 3, ObjSize: 300}, 5.1, 5.1)
	if c.Stats().SegsRx != 1 {
		t.Fatalf("late response did not deliver: %+v", c.Stats())
	}
	// The retransmit queue entry for that segment must now be skipped:
	// the next issued request is for segment 1, not 0 again.
	req1, ok := c.Issue(5.2, 5.2)
	if !ok || req1.Seg != 1 {
		t.Fatalf("next request seg=%d ok=%v want seg=1 (done seg skipped)", req1.Seg, ok)
	}
	if c.Stats().Refetched != 0 {
		t.Fatalf("refetched=%d want 0", c.Stats().Refetched)
	}
}

// The reassembly window bounds how far ahead of the in-order point the
// fetcher requests: with segment 0's responses withheld, issuance stops
// at exactly Window outstanding segments.
func TestCoreReassemblyWindowBound(t *testing.T) {
	cc := &fixedCC{rate: 1e9, cwnd: math.Inf(1)}
	c, err := NewCore(Config{CC: cc, SegSize: 100, Window: 8, Hash: false})
	if err != nil {
		t.Fatal(err)
	}
	c.OnResponse(Response{Nonce: 999, Meta: true, TotalSegs: 100, ObjSize: 10000,
		Payload: make([]byte, 32)}, 0, 0)
	issued := 0
	for {
		req, ok := c.Issue(0.001, 0.001)
		if !ok {
			break
		}
		if req.Meta {
			continue
		}
		issued++
		if req.Seg != 0 {
			// Respond to everything except segment 0.
			c.OnResponse(Response{Nonce: req.Nonce, Seg: req.Seg,
				TotalSegs: 100, ObjSize: 10000}, 0.002, 0.002)
		}
		if issued > 50 {
			break
		}
	}
	if issued != 8 {
		t.Fatalf("issued %d fresh requests with window 8 and cum stuck at 0", issued)
	}
}

// The congestion window gates issuance in expected-response bytes.
func TestCoreCwndGate(t *testing.T) {
	respSize := wireRespSize(1000)
	cc := &fixedCC{rate: 1e9, cwnd: float64(3 * respSize)}
	c, err := NewCore(Config{CC: cc, SegSize: 1000, Hash: false})
	if err != nil {
		t.Fatal(err)
	}
	c.OnResponse(Response{Nonce: 999, Meta: true, TotalSegs: 100, ObjSize: 100_000,
		Payload: make([]byte, 32)}, 0, 0)
	n := 0
	for {
		if _, ok := c.Issue(0.001, 0.001); !ok {
			break
		}
		n++
		if n > 10 {
			break
		}
	}
	if n != 3 {
		t.Fatalf("issued %d requests under a 3-response cwnd", n)
	}
	if c.Stats().Inflight != 3*respSize {
		t.Fatalf("inflight=%d want %d", c.Stats().Inflight, 3*respSize)
	}
}

// An outage freezes issuance, probes keep flowing, and the first
// response recovers the transfer at the pre-outage rate.
func TestCoreOutageAndRecovery(t *testing.T) {
	cc := &fixedCC{rate: 1e6, cwnd: math.Inf(1)}
	c, err := NewCore(Config{CC: cc, SegSize: 1000, Hash: false})
	if err != nil {
		t.Fatal(err)
	}
	c.OnResponse(Response{Nonce: 999, Meta: true, TotalSegs: 50, ObjSize: 50_000,
		Payload: make([]byte, 32)}, 0, 0)
	req, ok := c.Issue(0.01, 0.01)
	if !ok {
		t.Fatal("no request issued")
	}
	_ = req
	// Silence for far past the watchdog threshold.
	var probes int
	for now := 0.1; now < 3.0; now += 0.01 {
		if _, ok := c.Tick(now); ok {
			probes++
		}
	}
	st := c.Stats()
	if !st.InOutage || st.WdTrips != 1 {
		t.Fatalf("watchdog did not trip: %+v", st)
	}
	if probes == 0 {
		t.Fatalf("no probes during outage")
	}
	if _, ok := c.PeekSize(); ok {
		t.Fatalf("issuance not frozen during outage")
	}
	// Any response heals the path.
	c.OnResponse(Response{Nonce: 12345, Seg: 3, TotalSegs: 50, ObjSize: 50_000}, 3.0, 3.0)
	st = c.Stats()
	if st.InOutage || st.WdRecov != 1 {
		t.Fatalf("no recovery: %+v", st)
	}
	if _, ok := c.PeekSize(); !ok {
		t.Fatalf("issuance still frozen after recovery")
	}
}

func wireRespSize(segSize int) int {
	c, _ := NewCore(Config{CC: &fixedCC{rate: 1, cwnd: 1}, SegSize: segSize})
	return c.segWire(0)
}
