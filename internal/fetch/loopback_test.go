package fetch

import (
	"math"
	"testing"

	"pccproteus/internal/cc/fixedrate"
	"pccproteus/internal/chaos"
	"pccproteus/internal/netem"
	"pccproteus/internal/sim"
	"pccproteus/internal/transport"
	"pccproteus/internal/wire"
)

func TestLoopbackSingleFlowClean(t *testing.T) {
	res, err := RunLoopback(LoopbackConfig{
		NewController: func() transport.Controller { return fixedrate.New(30) },
		Shim:          wire.ShimConfig{RateMbps: 50, QueueBytes: 1 << 17, Delay: 0.010, AckDelay: 0.010},
		BytesPerFlow:  2 << 20,
		Timeout:       20,
		Seed:          42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDone || !res.AllVerified {
		t.Fatalf("done=%v verified=%v flow=%+v", res.AllDone, res.AllVerified, res.Flows[0].Fetcher)
	}
	f := res.Flows[0]
	if f.Bytes != 2<<20 {
		t.Fatalf("delivered=%d want %d", f.Bytes, int64(2)<<20)
	}
	if f.Fetcher.Refetched != 0 {
		t.Fatalf("refetched=%d", f.Fetcher.Refetched)
	}
	if f.Fetcher.BadResps != 0 || f.Fetcher.CrcErrs != 0 {
		t.Fatalf("codec rejects on a clean path: %+v", f.Fetcher)
	}
	if f.P50RTT <= 0 || f.P99RTT < f.P50RTT {
		t.Fatalf("rtt quantiles p50=%.4f p99=%.4f", f.P50RTT, f.P99RTT)
	}
}

// The acceptance scenario: three concurrent fetchers, ≥64 MiB total,
// under random loss and a reordering window, every object verifying.
func TestLoopbackMultiFlowLossReorder(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-flow bulk transfer in -short mode")
	}
	plan := chaos.Plan{Seed: 3, Faults: []chaos.Fault{
		{Kind: chaos.KindReorder, At: 0.5, Dur: 3.0, Value: 0.02, Delay: 0.003},
	}}
	res, err := RunLoopback(LoopbackConfig{
		NewController: func() transport.Controller { return fixedrate.New(70) },
		Shim: wire.ShimConfig{RateMbps: 100, QueueBytes: 1 << 18,
			Delay: 0.005, AckDelay: 0.005, LossProb: 0.003},
		Flows:        3,
		BytesPerFlow: 22 << 20, // 66 MiB total
		Timeout:      45,
		Chaos:        &plan,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDone || !res.AllVerified {
		for i, f := range res.Flows {
			t.Logf("flow %d: done=%v verified=%v bytes=%d stats=%+v shim=%+v",
				i, f.Done, f.Verified, f.Bytes, f.Fetcher, f.Shim)
		}
		t.Fatalf("multi-flow run incomplete: total=%d", res.TotalBytes)
	}
	if res.TotalBytes != 3*(22<<20) {
		t.Fatalf("total=%d want %d", res.TotalBytes, int64(3*(22<<20)))
	}
	var lost int64
	for _, f := range res.Flows {
		lost += f.Fetcher.LostReqs
		if f.Fetcher.Refetched != 0 {
			t.Fatalf("refetched=%d", f.Fetcher.Refetched)
		}
	}
	if lost == 0 {
		t.Fatalf("no losses across 66 MiB at 0.3%% random loss — impairments not applied?")
	}
}

// A mid-transfer blackout: the fetcher freezes, probes through the
// outage, resumes on heal, and never re-fetches a delivered segment.
func TestLoopbackBlackoutResume(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time blackout replay in -short mode")
	}
	plan := chaos.Plan{Seed: 5, Faults: []chaos.Fault{
		{Kind: chaos.KindBlackout, At: 0.6, Dur: 1.2},
	}}
	res, err := RunLoopback(LoopbackConfig{
		NewController: func() transport.Controller { return fixedrate.New(40) },
		Shim:          wire.ShimConfig{RateMbps: 60, QueueBytes: 1 << 17, Delay: 0.008, AckDelay: 0.008},
		BytesPerFlow:  8 << 20,
		Timeout:       30,
		Chaos:         &plan,
		Seed:          9,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := res.Flows[0]
	if !f.Done || !f.Verified {
		t.Fatalf("did not resume after blackout: %+v shim=%+v", f.Fetcher, f.Shim)
	}
	if f.Fetcher.WdTrips == 0 || f.Fetcher.WdRecov == 0 {
		t.Fatalf("watchdog trips=%d recov=%d", f.Fetcher.WdTrips, f.Fetcher.WdRecov)
	}
	if f.Fetcher.Refetched != 0 {
		t.Fatalf("blackout resume re-fetched %d delivered segments", f.Fetcher.Refetched)
	}
	if f.Secs < 1.8 {
		t.Fatalf("finished in %.2fs — the 1.2s blackout cannot have been applied", f.Secs)
	}
}

// Sim-vs-wire parity: the same controller fetching the same object over
// the same emulated path must land within a tolerance band of the
// simulator's goodput — the cross-validation gate the wire sender has,
// extended to the fetch datapath.
func TestLoopbackSimParity(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time parity run in -short mode")
	}
	const (
		rateMbps   = 20.0
		bottleneck = 50.0
		fwdDelay   = 0.010
		revDelay   = 0.010
		bytes      = int64(6 << 20)
	)

	// Simulator half.
	s := sim.New(1)
	link := netem.NewLink(s, bottleneck, 1<<17, fwdDelay)
	path := &netem.Path{Link: link, AckDelay: revDelay}
	doneAt := -1.0
	tr := &SimTransfer{
		S: s, Path: path, CC: fixedrate.New(rateMbps), ID: 1, ObjectBytes: bytes,
		OnComplete: func(now float64) { doneAt = now },
	}
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}
	s.Run(120)
	if !tr.Done() {
		t.Fatalf("sim transfer incomplete: %+v", tr.Stats())
	}
	simMbps := float64(bytes) * 8 / doneAt / 1e6

	// Wire half, same shape.
	res, err := RunLoopback(LoopbackConfig{
		NewController: func() transport.Controller { return fixedrate.New(rateMbps) },
		Shim:          wire.ShimConfig{RateMbps: bottleneck, QueueBytes: 1 << 17, Delay: fwdDelay, AckDelay: revDelay},
		BytesPerFlow:  bytes,
		Timeout:       30,
		Seed:          11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDone || !res.AllVerified {
		t.Fatalf("wire transfer incomplete: %+v", res.Flows[0].Fetcher)
	}
	wireMbps := res.Flows[0].GoodputMbps

	if ratio := wireMbps / simMbps; math.Abs(ratio-1) > 0.25 {
		t.Fatalf("goodput parity broken: wire %.2f Mbps vs sim %.2f Mbps (ratio %.2f)",
			wireMbps, simMbps, ratio)
	}
}
