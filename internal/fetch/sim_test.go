package fetch

import (
	"math"
	"testing"

	"pccproteus/internal/chaos"
	"pccproteus/internal/netem"
	"pccproteus/internal/sim"
)

// simFetch runs one SimTransfer on a fresh path and returns it with the
// completion time (or -1 if it never finished before the horizon).
func simFetch(t *testing.T, cc *fixedCC, bytes int64, horizon float64,
	mutate func(s *sim.Sim, link *netem.Link, path *netem.Path)) (*SimTransfer, float64) {
	t.Helper()
	s := sim.New(1)
	link := netem.NewLink(s, 10, 50_000, 0.020) // 10 Mbps, 20 ms one way
	path := &netem.Path{Link: link, AckDelay: 0.020}
	if mutate != nil {
		mutate(s, link, path)
	}
	doneAt := -1.0
	tr := &SimTransfer{
		S: s, Path: path, CC: cc, ID: 1, ObjectBytes: bytes,
		OnComplete: func(now float64) { doneAt = now },
	}
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}
	s.Run(horizon)
	return tr, doneAt
}

func TestSimTransferClean(t *testing.T) {
	cc := &fixedCC{rate: 5e5, cwnd: math.Inf(1)} // 4 Mbps, under the 10 Mbps bottleneck
	tr, doneAt := simFetch(t, cc, 1<<20, 30, nil)
	if !tr.Done() {
		t.Fatalf("transfer incomplete: %+v", tr.Stats())
	}
	st := tr.Stats()
	if st.LostReqs != 0 || st.Refetched != 0 || st.Dups != 0 {
		t.Fatalf("clean path saw lost=%d refetched=%d dups=%d", st.LostReqs, st.Refetched, st.Dups)
	}
	if tr.DeliveredBytes() != 1<<20 {
		t.Fatalf("delivered=%d want %d", tr.DeliveredBytes(), int64(1)<<20)
	}
	// Paced at 5e5 B/s of response wire bytes, 1 MiB of payload plus
	// headers takes ~2.2 s; the path adds one RTT of startup.
	ideal := float64(1<<20) / (5e5 * float64(DefaultSegSize) / float64(DefaultSegSize+67))
	if doneAt < ideal*0.9 || doneAt > ideal*1.5 {
		t.Fatalf("completion at %.2fs, ideal %.2fs", doneAt, ideal)
	}
}

func TestSimTransferUnderLoss(t *testing.T) {
	cc := &fixedCC{rate: 5e5, cwnd: math.Inf(1)}
	tr, _ := simFetch(t, cc, 1<<20, 60, func(s *sim.Sim, link *netem.Link, path *netem.Path) {
		link.CorruptProb = 0.02
	})
	if !tr.Done() {
		t.Fatalf("transfer incomplete under 2%% loss: %+v", tr.Stats())
	}
	st := tr.Stats()
	if st.LostReqs == 0 {
		t.Fatalf("no losses declared under 2%% corruption")
	}
	if st.Refetched != 0 {
		t.Fatalf("refetched=%d want 0", st.Refetched)
	}
	if tr.DeliveredBytes() != 1<<20 {
		t.Fatalf("delivered=%d", tr.DeliveredBytes())
	}
}

// A mid-transfer blackout trips the watchdog, probes detect the heal,
// and the transfer resumes without re-fetching delivered segments.
func TestSimTransferBlackoutResume(t *testing.T) {
	cc := &fixedCC{rate: 5e5, cwnd: math.Inf(1)}
	plan := chaos.Plan{Seed: 1, Faults: []chaos.Fault{
		{Kind: chaos.KindBlackout, At: 1.0, Dur: 1.5},
	}}
	tr, doneAt := simFetch(t, cc, 2<<20, 60, func(s *sim.Sim, link *netem.Link, path *netem.Path) {
		chaos.ApplySim(s, link, path, plan, 60)
	})
	if !tr.Done() {
		t.Fatalf("transfer never resumed after blackout: %+v", tr.Stats())
	}
	st := tr.Stats()
	if st.WdTrips == 0 || st.WdRecov == 0 {
		t.Fatalf("watchdog trips=%d recov=%d; want both nonzero", st.WdTrips, st.WdRecov)
	}
	if st.Probes == 0 {
		t.Fatalf("no probes during the blackout")
	}
	if st.Refetched != 0 {
		t.Fatalf("blackout resume re-fetched %d delivered segments", st.Refetched)
	}
	if tr.DeliveredBytes() != 2<<20 {
		t.Fatalf("delivered=%d", tr.DeliveredBytes())
	}
	if doneAt < 2.5 {
		t.Fatalf("completion at %.2fs is inside the blackout window", doneAt)
	}
}
