package fetch

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"hash"
	"math"

	"pccproteus/internal/transport"
	"pccproteus/internal/wire"
)

// Tuning constants, mirroring the wire sender's datapath so a fetch
// behaves like an upload running in the opposite direction.
const (
	// DefaultWindow is the reassembly window in segments: how far past
	// the in-order delivery point the fetcher will request. ~5.7 MB at
	// the default segment size — comfortably above the BDP of every
	// emulated path in this repo, so the congestion window, not the
	// reassembly bound, is what gates steady state.
	DefaultWindow = 4096
	// maxPendRecs bounds request bookkeeping when responses never come;
	// at the cap the oldest record is force-retired.
	maxPendRecs = 1 << 16

	dupRespThreshold = 3 // RACK reference gap, as dupAckThreshold
	maxRTOBackoff    = 4
	maxRTOCap        = 3.0
	watchdogFloor    = 0.5
	probeEvery       = 0.25
)

// Config parameterizes a transfer's scheduler core.
type Config struct {
	ObjID uint64
	CC    transport.Controller
	// SegSize is the segment payload size the server was configured
	// with; both ends must agree (default DefaultSegSize).
	SegSize int
	// Window bounds the reassembly window in segments (default
	// DefaultWindow).
	Window int
	// Hash verifies delivered bytes against the whole-object SHA-256
	// from the metadata exchange. The wire driver sets it; the sim
	// driver moves no real bytes and leaves it off.
	Hash bool
	// OnData, when set, observes each segment at in-order delivery.
	// The payload slice is only valid during the call.
	OnData func(seg int64, payload []byte)
	// OnRTT, when set, observes every per-request RTT sample (seconds).
	OnRTT func(rtt float64)
}

// Request is one FETCH the core has decided to send. Size is the
// *expected response* wire size — the currency of pacing and window
// accounting, since the response stream is what crosses the bottleneck.
type Request struct {
	Nonce int64
	Seg   int64
	Meta  bool
	Probe bool
	Size  int
}

// Response is one SEGMENT response handed back to the core. Payload is
// nil in the simulator (no real bytes move); Meta responses carry the
// whole-object digest as their payload.
type Response struct {
	Nonce     int64
	Seg       int64
	Meta      bool
	TotalSegs int64
	ObjSize   int64
	Payload   []byte
}

// reqRec is the fetcher-side record of one outstanding request. sentAt
// is the request's scheduled (token-bucket) send time — the measurement
// timebase; wallAt is the actual emission time, used for loss-detection
// and RTO aging.
type reqRec struct {
	nonce  int64
	seg    int64
	size   int // expected response wire size
	sentAt float64
	wallAt float64
	mi     int64
	meta   bool
	probe  bool
	acked  bool
	lost   bool
}

// CoreStats is a snapshot of the scheduler's counters.
type CoreStats struct {
	ReqsSent  int64 // requests issued (excluding probes)
	SegsRx    int64 // distinct data segments received
	Dups      int64 // duplicate/stale responses discarded
	LostReqs  int64 // requests declared lost
	Probes    int64 // keep-alive probes issued during outages
	Refetched int64 // requests issued for already-delivered segments
	Delivered int64 // bytes delivered in order
	Inflight  int   // expected response bytes outstanding
	Pend      int   // live request records
	SRTT      float64
	WdTrips   int64
	WdRecov   int64
	InOutage  bool
	Done      bool
	Verified  bool
}

// Core is the transport-agnostic half of a fetcher: request selection
// under the controller's window, per-request retransmit state, RACK +
// RTO loss detection with outage survival, and in-order reassembly with
// integrity verification. It is single-threaded by contract — the wire
// driver serializes calls under its mutex, the sim driver runs on the
// simulator's event loop.
type Core struct {
	cfg Config
	rtt transport.RTTEstimator

	nonce int64
	pend  map[int64]*reqRec
	order []*reqRec // send order (nonce order); pruned from the front
	free  []*reqRec
	sp    transport.SentPacket // reused OnSend scratch

	retx    []int64 // segment indices awaiting re-request, ascending
	retxSet map[int64]bool

	geomKnown bool
	totalSegs int64
	objSize   int64
	metaDone  bool
	metaOut   int // outstanding (not acked/lost) metadata requests
	digest    [wire.DigestLen]byte

	done      []bool
	buffer    map[int64][]byte
	cum       int64 // segments [0,cum) delivered in order
	next      int64 // next never-requested segment
	hash      hash.Hash
	delivered int64
	inflight  int
	maxRx     int64 // highest responded nonce (RACK reference)

	finished bool
	verified bool

	// Liveness and survival, as in the wire sender: RTO backoff during
	// response silence, a stall watchdog that freezes the controller
	// across an outage, keep-alive probes that detect healing.
	lastRespAt   float64
	rtoBackoff   int
	lastGoodRate float64
	outage       bool
	outageAt     float64
	resumeRate   float64
	nextProbeAt  float64

	revBase float64 // reverse-path constant calibrated at the first response
	revCal  bool

	reqsSent, segsRx, dups, lostReqs, probes, refetched int64
	wdTrips, wdRecoveries                               int64
}

// NewCore validates cfg and builds a scheduler core.
func NewCore(cfg Config) (*Core, error) {
	if cfg.CC == nil {
		return nil, errors.New("fetch: core needs a controller")
	}
	if cfg.SegSize <= 0 {
		cfg.SegSize = DefaultSegSize
	}
	if cfg.SegSize > wire.MaxSegPayload {
		return nil, errors.New("fetch: segment size exceeds wire maximum")
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	c := &Core{
		cfg:     cfg,
		pend:    make(map[int64]*reqRec),
		retxSet: make(map[int64]bool),
		buffer:  make(map[int64][]byte),
		maxRx:   -1,
	}
	if cfg.Hash {
		c.hash = sha256.New()
	}
	return c, nil
}

// segWire returns the expected wire size of the response to a request
// for seg (a full segment until the geometry is known).
func (c *Core) segWire(seg int64) int {
	n := c.cfg.SegSize
	if c.geomKnown {
		if rem := c.objSize - seg*int64(c.cfg.SegSize); rem < int64(n) {
			n = int(rem)
		}
		if n < 0 {
			n = 0
		}
	}
	return wire.SegmentHeaderLen + n
}

// request kinds returned by pick.
const (
	pickNone = iota
	pickMeta
	pickRetx
	pickFresh
)

// pick chooses the next request without committing to it, pruning
// already-delivered entries off the retransmit queue as it goes. The
// window gate compares expected response bytes against the
// controller's cwnd — the exact analog of the sender's inflight gate.
func (c *Core) pick() (kind int, seg int64, size int) {
	if c.outage || c.Done() {
		return pickNone, 0, 0
	}
	if !c.metaDone && c.metaOut == 0 {
		kind, size = pickMeta, wire.SegmentHeaderLen+wire.DigestLen
	} else {
		for len(c.retx) > 0 {
			s := c.retx[0]
			if c.segDone(s) {
				c.retx = c.retx[1:]
				delete(c.retxSet, s)
				continue
			}
			kind, seg, size = pickRetx, s, c.segWire(s)
			break
		}
		if kind == pickNone && c.geomKnown && c.next < c.totalSegs && c.next < c.cum+int64(c.cfg.Window) {
			kind, seg, size = pickFresh, c.next, c.segWire(c.next)
		}
	}
	if kind == pickNone {
		return pickNone, 0, 0
	}
	if float64(c.inflight+size) > c.cfg.CC.CWnd() {
		return pickNone, 0, 0
	}
	return kind, seg, size
}

// PeekSize returns the expected response size of the next request, or
// false when nothing may be issued now (complete, outage, reassembly
// window full, or congestion-window blocked). Drivers use it to take
// pacing tokens before committing with Issue.
func (c *Core) PeekSize() (int, bool) {
	kind, _, size := c.pick()
	return size, kind != pickNone
}

// Issue commits the next request: the controller's OnSend fires, the
// request enters the retransmit bookkeeping, and the descriptor to
// encode is returned. virt is the scheduled (token-bucket) send time,
// now the wall time.
func (c *Core) Issue(now, virt float64) (Request, bool) {
	kind, seg, size := c.pick()
	if kind == pickNone {
		return Request{}, false
	}
	switch kind {
	case pickMeta:
		c.metaOut++
	case pickRetx:
		c.retx = c.retx[1:]
		delete(c.retxSet, seg)
	case pickFresh:
		c.next++
	}
	c.capPend(now)
	c.sp = transport.SentPacket{Seq: c.nonce, Size: size, SentAt: virt}
	c.cfg.CC.OnSend(now, &c.sp)
	rec := c.newRec()
	rec.nonce, rec.seg, rec.size, rec.sentAt, rec.wallAt, rec.mi = c.nonce, seg, size, virt, now, c.sp.MI
	rec.meta, rec.probe, rec.acked, rec.lost = kind == pickMeta, false, false, false
	c.nonce++
	c.pend[rec.nonce] = rec
	c.order = append(c.order, rec)
	c.inflight += size
	c.reqsSent++
	if kind != pickMeta && c.segDone(seg) {
		c.refetched++ // structurally unreachable; counted to prove it
	}
	return Request{Nonce: rec.nonce, Seg: seg, Meta: rec.meta, Size: size}, true
}

// Tick runs the periodic work — RTO scan, stall watchdog, probe
// scheduling — and returns a keep-alive probe request when one is due.
// Probes re-request a needed segment (or the metadata) but are
// invisible to the controller: no OnSend, no inflight accounting.
func (c *Core) Tick(now float64) (Request, bool) {
	c.checkRTO(now)
	// Silence on an unfinished transfer is the outage signal — not
	// "silence with outstanding requests": an RTO sweep can retire every
	// record mid-blackout, and gating on outstanding() would then leave
	// nobody to probe the path back to life.
	if !c.outage && c.reqsSent > 0 && !c.Done() &&
		now-c.lastRespAt >= c.watchdogTimeout() {
		c.tripWatchdog(now)
	}
	if !c.outage || c.Done() || now < c.nextProbeAt {
		return Request{}, false
	}
	c.nextProbeAt = now + probeEvery
	c.capPend(now)
	rec := c.newRec()
	rec.nonce, rec.sentAt, rec.wallAt = c.nonce, now, now
	rec.size, rec.mi = 0, 0
	rec.meta, rec.probe, rec.acked, rec.lost = !c.metaDone, true, false, false
	if !rec.meta {
		rec.seg = c.cum // by definition the first undelivered segment
	}
	c.nonce++
	if rec.meta {
		c.metaOut++
	}
	c.pend[rec.nonce] = rec
	c.order = append(c.order, rec)
	c.probes++
	return Request{Nonce: rec.nonce, Seg: rec.seg, Meta: rec.meta, Probe: true}, true
}

// OnResponse applies one response: request-record retirement with an
// RTT sample and controller OnAck, then payload delivery (late and
// probe responses still deliver — data is data), then loss detection.
// recvAt is the response's arrival stamp on the emulated path; now is
// the fetcher-clock time of processing.
func (c *Core) OnResponse(r Response, recvAt, now float64) {
	c.noteResp(now)
	if !c.geomKnown && r.TotalSegs > 0 {
		// Every response carries the geometry, so the fetcher starts
		// filling the window off whichever response lands first.
		c.geomKnown = true
		c.totalSegs = r.TotalSegs
		c.objSize = r.ObjSize
		c.done = make([]bool, r.TotalSegs)
	}
	if r.Nonce > c.maxRx {
		c.maxRx = r.Nonce
	}
	if rec, ok := c.pend[r.Nonce]; ok && !rec.acked && !rec.lost {
		c.ackRec(rec, now, recvAt)
	}
	c.deliver(r)
	c.detectLosses(now)
	c.prune()
	if rate := c.cfg.CC.PacingRate(); rate > 0 {
		c.lastGoodRate = rate
	}
}

// ackRec retires one outstanding request against its response.
func (c *Core) ackRec(rec *reqRec, now, recvAt float64) {
	rec.acked = true
	if rec.meta {
		c.metaOut--
	}
	if rec.probe {
		return // liveness only: no controller callbacks, no RTT sample
	}
	c.inflight -= rec.size
	// Timestamp-based RTT exactly as the wire sender measures it: the
	// forward half against the echoed scheduled-send stamp and the
	// response's emulated arrival, the reverse half a constant
	// calibrated once at the first response (a locked constant cannot
	// masquerade as an RTT trend; a drifting minimum can).
	if !c.revCal {
		c.revBase = now - recvAt
		c.revCal = true
	}
	rtt := (recvAt - rec.sentAt) + c.revBase
	if rtt < 0 {
		rtt = 0
	}
	c.rtt.Update(rtt)
	if c.cfg.OnRTT != nil {
		c.cfg.OnRTT(rtt)
	}
	c.cfg.CC.OnAck(transport.Ack{
		Seq: rec.nonce, Bytes: rec.size, SentAt: rec.sentAt, RecvAt: recvAt,
		Now: now, RTT: rtt, OWD: recvAt - rec.sentAt, MI: rec.mi,
		Inflight: c.inflight,
	})
}

// deliver routes a response's content into the reassembly state. The
// request record's fate is irrelevant here: a segment that arrives
// after its request was declared lost is new data all the same, and
// counting it delivered is what makes retransmissions converge.
func (c *Core) deliver(r Response) {
	if r.Meta {
		if c.metaDone {
			c.dups++
			return
		}
		copy(c.digest[:], r.Payload)
		c.metaDone = true
		return
	}
	if !c.geomKnown || r.Seg < 0 || r.Seg >= c.totalSegs || c.done[r.Seg] {
		c.dups++
		return
	}
	c.done[r.Seg] = true
	c.segsRx++
	if r.Seg == c.cum {
		c.deliverSeg(r.Seg, r.Payload)
		c.cum++
	} else if c.hash != nil || c.cfg.OnData != nil {
		c.buffer[r.Seg] = append([]byte(nil), r.Payload...)
	}
	for c.cum < c.totalSegs && c.done[c.cum] {
		if !c.drainOne() {
			break
		}
	}
}

// deliverSeg hands one in-order segment to the hash and the data hook.
func (c *Core) deliverSeg(seg int64, payload []byte) {
	if c.hash != nil {
		c.hash.Write(payload)
	}
	if c.cfg.OnData != nil {
		c.cfg.OnData(seg, payload)
	}
	if c.geomKnown {
		// Byte accounting comes from the geometry, not len(payload), so
		// the payload-free simulator counts identically to the wire.
		n := c.objSize - seg*int64(c.cfg.SegSize)
		if n > int64(c.cfg.SegSize) {
			n = int64(c.cfg.SegSize)
		}
		if n > 0 {
			c.delivered += n
		}
	}
}

// drainOne advances cum across one buffered segment.
func (c *Core) drainOne() bool {
	if !c.done[c.cum] {
		return false
	}
	payload, ok := c.buffer[c.cum]
	if c.hash != nil || c.cfg.OnData != nil {
		if !ok {
			return false // cannot happen: done segments were buffered
		}
		delete(c.buffer, c.cum)
	}
	c.deliverSeg(c.cum, payload)
	c.cum++
	return true
}

// segDone reports whether seg has already been received.
func (c *Core) segDone(seg int64) bool {
	return c.geomKnown && seg >= 0 && seg < c.totalSegs && c.done[seg]
}

// Done reports whether the transfer is complete: geometry and digest
// known, every segment delivered. On the first true it finalizes the
// integrity verdict.
func (c *Core) Done() bool {
	if c.finished {
		return true
	}
	if !c.metaDone || !c.geomKnown || c.cum < c.totalSegs {
		return false
	}
	c.finished = true
	if c.hash != nil {
		c.verified = bytes.Equal(c.hash.Sum(nil), c.digest[:])
	} else {
		c.verified = true // no bytes moved; nothing to verify
	}
	return true
}

// Verified reports the end-to-end integrity verdict (meaningful once
// Done; always true for payload-free sim transfers).
func (c *Core) Verified() bool { return c.verified }

// DeliveredBytes returns bytes delivered in order so far.
func (c *Core) DeliveredBytes() int64 { return c.delivered }

// TotalSegsKnown returns the object geometry (0,0 before it is known).
func (c *Core) TotalSegsKnown() (segs, size int64) { return c.totalSegs, c.objSize }

// SRTT exposes the smoothed RTT estimate.
func (c *Core) SRTT() float64 { return c.rtt.SRTT() }

// PacingRate mirrors the datapath convention: an explicit controller
// rate wins; window-based controllers get 1.25·cwnd/srtt once an RTT
// estimate exists, unpaced before.
func (c *Core) PacingRate() float64 {
	if r := c.cfg.CC.PacingRate(); r > 0 {
		return r
	}
	if !c.rtt.Valid() {
		return math.Inf(1)
	}
	cwnd := c.cfg.CC.CWnd()
	if math.IsInf(cwnd, 1) {
		return math.Inf(1)
	}
	return 1.25 * cwnd / c.rtt.SRTT()
}

// Stats returns a snapshot of the core's counters.
func (c *Core) Stats() CoreStats {
	return CoreStats{
		ReqsSent: c.reqsSent, SegsRx: c.segsRx, Dups: c.dups,
		LostReqs: c.lostReqs, Probes: c.probes, Refetched: c.refetched,
		Delivered: c.delivered, Inflight: c.inflight, Pend: len(c.order),
		SRTT: c.rtt.SRTT(), WdTrips: c.wdTrips, WdRecov: c.wdRecoveries,
		InOutage: c.outage, Done: c.finished, Verified: c.verified,
	}
}

// --- loss detection and survival -------------------------------------

// noteResp records response liveness: backoff resets, and any response
// during an outage proves the path healed.
func (c *Core) noteResp(now float64) {
	c.lastRespAt = now
	c.rtoBackoff = 0
	if c.outage {
		c.recover(now)
	}
}

func (c *Core) watchdogTimeout() float64 {
	w := 2 * c.rtt.RTO()
	if w < watchdogFloor {
		w = watchdogFloor
	}
	return w
}

func (c *Core) effRTO() float64 {
	base := c.rtt.RTO()
	rto := base
	for i := 0; i < c.rtoBackoff; i++ {
		rto *= 2
	}
	if rto > maxRTOCap {
		rto = math.Max(maxRTOCap, base)
	}
	return rto
}

// tripWatchdog freezes the transfer for an outage: request issuance
// stops (pick returns nothing), the controller's measurement state is
// parked, and probing begins.
func (c *Core) tripWatchdog(now float64) {
	c.outage = true
	c.outageAt = now
	c.wdTrips++
	c.resumeRate = c.lastGoodRate
	c.nextProbeAt = now
	switch cc := c.cfg.CC.(type) {
	case transport.OutageAware:
		cc.OnOutage(now)
	case transport.PauseAware:
		cc.OnAppPause(now)
	}
}

// recover ends an outage at the first delivered response, restoring the
// controller at the pre-outage operating rate.
func (c *Core) recover(now float64) {
	c.outage = false
	c.wdRecoveries++
	switch cc := c.cfg.CC.(type) {
	case transport.OutageAware:
		cc.OnRecovery(now, c.resumeRate)
	case transport.PauseAware:
		cc.OnAppResume(now)
	}
}

// detectLosses is the RACK-style rule shared with both datapaths: a
// request dupRespThreshold nonces behind the highest responded nonce is
// declared lost only once it is also older than srtt plus a reordering
// window, so path reordering does not manufacture losses.
func (c *Core) detectLosses(now float64) {
	window := c.rtt.SRTT() + c.reorderWindow()
	for _, rec := range c.order {
		if rec.nonce > c.maxRx-dupRespThreshold {
			break
		}
		if !rec.acked && !rec.lost && now-rec.wallAt > window {
			c.markLost(rec, now)
		}
	}
}

func (c *Core) reorderWindow() float64 {
	w := 4 * c.rtt.RTTVar()
	if w < 0.004 {
		w = 0.004
	}
	return w
}

// checkRTO declares every outstanding request older than the RTO lost —
// the backstop when responses stop entirely.
func (c *Core) checkRTO(now float64) {
	rto := c.effRTO()
	declared := false
	for _, rec := range c.order {
		if rec.acked || rec.lost {
			continue
		}
		if now-rec.wallAt < rto {
			break // send order: the rest are younger
		}
		c.markLost(rec, now)
		declared = true
	}
	// Back off only in true response silence; straggler declarations
	// while responses still flow are ordinary congestion.
	if declared && now-c.lastRespAt >= rto && c.rtoBackoff < maxRTOBackoff {
		c.rtoBackoff++
	}
	c.prune()
}

// markLost retires a request as lost: the controller hears OnLoss, and
// the named segment re-enters the retransmit queue unless it has been
// delivered through another copy in the meantime — the rule that makes
// resumption after a blackout re-request only what is actually missing.
func (c *Core) markLost(rec *reqRec, now float64) {
	rec.lost = true
	if rec.meta {
		c.metaOut--
	}
	if rec.probe {
		return // never in inflight, never reported to the controller
	}
	c.inflight -= rec.size
	c.lostReqs++
	c.cfg.CC.OnLoss(transport.Loss{
		Seq: rec.nonce, Bytes: rec.size, SentAt: rec.sentAt, Now: now,
		MI: rec.mi, Inflight: c.inflight,
	})
	if !rec.meta && !c.segDone(rec.seg) {
		c.pushRetx(rec.seg)
	}
}

// pushRetx queues seg for re-request, keeping the queue sorted (lowest
// first — the segment closest to the delivery point unblocks the most
// window) and deduplicated.
func (c *Core) pushRetx(seg int64) {
	if c.retxSet[seg] {
		return
	}
	c.retxSet[seg] = true
	i := len(c.retx)
	c.retx = append(c.retx, 0)
	for i > 0 && c.retx[i-1] > seg {
		c.retx[i] = c.retx[i-1]
		i--
	}
	c.retx[i] = seg
}

// capPend force-retires the oldest record at the bookkeeping cap.
func (c *Core) capPend(now float64) {
	if len(c.order) < maxPendRecs {
		return
	}
	if rec := c.order[0]; !rec.acked && !rec.lost {
		c.markLost(rec, now)
	}
	c.prune()
}

func (c *Core) prune() {
	i := 0
	for i < len(c.order) && (c.order[i].acked || c.order[i].lost) {
		rec := c.order[i]
		delete(c.pend, rec.nonce)
		c.free = append(c.free, rec)
		i++
	}
	if i > 0 {
		n := copy(c.order, c.order[i:])
		for j := n; j < len(c.order); j++ {
			c.order[j] = nil
		}
		c.order = c.order[:n]
	}
}

func (c *Core) newRec() *reqRec {
	if n := len(c.free); n > 0 {
		rec := c.free[n-1]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
		return rec
	}
	return &reqRec{}
}
