package fetch

import (
	"math/rand"
	"testing"

	"pccproteus/internal/transport"
	"pccproteus/internal/wire"
)

// benchCC is an uncontended controller for the datapath benchmark: the
// rate and window never gate, so the measured cost is the fetch machinery
// itself.
type benchCC struct{}

func (benchCC) Name() string                                { return "bench-fixed" }
func (benchCC) OnSend(now float64, p *transport.SentPacket) {}
func (benchCC) OnAck(transport.Ack)                         {}
func (benchCC) OnLoss(transport.Loss)                       {}
func (benchCC) PacingRate() float64                         { return 125e6 }
func (benchCC) CWnd() float64                               { return 1e12 }

// RunFetchBench measures the steady-state per-segment fetch path: request
// selection and record bookkeeping in the core, FETCH encode, the store's
// lookup + SEGMENT encode with payload CRC, SEGMENT decode with CRC
// verify, and in-order delivery with the running SHA-256. SetBytes is the
// segment payload, so the report's MB/s column is the single-core goodput
// ceiling of the protocol machinery (no sockets, no pacing).
//
// Exported (rather than a regular Benchmark) so proteusbench -perf can
// fold it into BENCH_proteus.json.
func RunFetchBench(b *testing.B) {
	const objSegs = 512
	store := NewStore(0)
	data := make([]byte, objSegs*DefaultSegSize)
	rand.New(rand.NewSource(9)).Read(data)
	objID := store.Add("bench", data)

	newCore := func() *Core {
		c, err := NewCore(Config{
			ObjID: objID, CC: benchCC{}, SegSize: store.SegSize,
			Hash: true, OnData: func(seg int64, payload []byte) {},
		})
		if err != nil {
			b.Fatal(err)
		}
		return c
	}
	core := newCore()
	reqBuf := make([]byte, wire.FetchLen)
	segBuf := make([]byte, wire.MaxDataLen)
	now := 0.0

	b.ReportAllocs()
	b.SetBytes(int64(store.SegSize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 1e-5
		req, ok := core.Issue(now, now)
		if !ok {
			b.Fatal("core refused to issue with an uncontended controller")
		}
		pkt := wire.EncodeFetch(reqBuf, wire.FetchHeader{
			ObjID: objID, Seg: req.Seg, Nonce: req.Nonce,
			SentAt: int64(now * 1e9), Meta: req.Meta,
		})
		h, err := wire.DecodeFetch(pkt)
		if err != nil {
			b.Fatal(err)
		}
		resp := store.HandleFetch(h, segBuf)
		if resp == nil {
			b.Fatal("store refused a valid request")
		}
		sh, payload, err := wire.DecodeSegment(resp)
		if err != nil {
			b.Fatal(err)
		}
		core.OnResponse(Response{
			Nonce: sh.Nonce, Seg: sh.Seg, Meta: sh.Meta,
			TotalSegs: sh.TotalSegs, ObjSize: sh.ObjSize, Payload: payload,
		}, now, now)
		if core.Done() {
			if !core.Stats().Verified {
				b.Fatal("object failed verification")
			}
			core = newCore()
		}
	}
}
