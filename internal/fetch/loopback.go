package fetch

import (
	"fmt"
	"math/rand"
	"net"
	"time"

	"pccproteus/internal/chaos"
	"pccproteus/internal/transport"
	"pccproteus/internal/wire"
)

// LoopbackConfig describes one single-process multi-flow fetch run:
// one server (receiver + segment store) and Flows concurrent fetchers,
// each behind its own impairment shim, all over 127.0.0.1 sockets.
//
// Per-fetcher shims are a topology choice, not a limitation: the shim
// learns one dialing endpoint per instance, so giving each fetcher its
// own shim models independent access links converging on one server —
// the shape of a fleet download. (Flows contending on one bottleneck is
// the simulator's department, where the shared-queue coupling is
// deterministic.)
type LoopbackConfig struct {
	NewController func() transport.Controller

	Shim wire.ShimConfig
	// Flows is the number of concurrent fetchers (default 1); each
	// fetches its own object of BytesPerFlow bytes (default 1 MiB)
	// filled with seeded pseudorandom data.
	Flows        int
	BytesPerFlow int64
	SegSize      int
	Window       int
	// Timeout bounds the run in real seconds (default 60).
	Timeout float64
	// Chaos, when non-nil, replays a fault plan in real time against
	// every shim, with restarts flushing in-flight queues and resetting
	// the receiver — the same semantics as the wire sender's loopback.
	Chaos *chaos.Plan
	// Seed drives object contents and per-shim impairment RNGs.
	Seed int64
}

// FlowResult summarizes one fetcher's transfer.
type FlowResult struct {
	Done        bool
	Verified    bool
	Bytes       int64 // delivered in order
	Secs        float64
	GoodputMbps float64
	P50RTT      float64 // seconds
	P95RTT      float64
	P99RTT      float64
	Fetcher     FetcherStats
	Shim        wire.ShimStats
}

// LoopbackResult summarizes one multi-flow fetch run.
type LoopbackResult struct {
	Flows       []FlowResult
	Receiver    wire.ReceiverStats
	TotalBytes  int64
	AggMbps     float64 // total delivered bytes over the wall duration
	AllDone     bool
	AllVerified bool
}

// RunLoopback executes one multi-flow fetch scenario end to end,
// blocking until every transfer completes or Timeout elapses.
func RunLoopback(cfg LoopbackConfig) (*LoopbackResult, error) {
	if cfg.NewController == nil {
		return nil, fmt.Errorf("fetch: loopback needs a controller factory")
	}
	if cfg.Flows <= 0 {
		cfg.Flows = 1
	}
	if cfg.BytesPerFlow <= 0 {
		cfg.BytesPerFlow = 1 << 20
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 60
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}

	// Server: one receiver answering fetches from an in-memory store of
	// per-flow objects with deterministic pseudorandom contents.
	store := NewStore(cfg.SegSize)
	objIDs := make([]uint64, cfg.Flows)
	for i := 0; i < cfg.Flows; i++ {
		data := make([]byte, cfg.BytesPerFlow)
		rng := rand.New(rand.NewSource(wire.MixSeed(seed, int64(i))))
		rng.Read(data)
		objIDs[i] = store.Add(fmt.Sprintf("obj-%d", i), data)
	}
	rconn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, err
	}
	rconn.SetReadBuffer(1 << 21)
	rconn.SetWriteBuffer(1 << 21)
	recv := &wire.Receiver{Conn: rconn, OnFetch: store.HandleFetch}
	if err := recv.Start(); err != nil {
		rconn.Close()
		return nil, err
	}
	defer recv.Stop()

	shims := make([]*wire.Shim, cfg.Flows)
	fetchers := make([]*Fetcher, cfg.Flows)
	cleanup := func() {
		for _, f := range fetchers {
			if f != nil {
				f.Stop()
			}
		}
		for _, sh := range shims {
			if sh != nil {
				sh.Stop()
			}
		}
	}
	for i := 0; i < cfg.Flows; i++ {
		shimCfg := cfg.Shim
		shimCfg.Seed = wire.MixSeed(seed, 0x5ea1+int64(i))
		sh, err := wire.NewShim(shimCfg, recv.Addr())
		if err != nil {
			cleanup()
			return nil, err
		}
		if err := sh.Start(); err != nil {
			sh.Stop()
			cleanup()
			return nil, err
		}
		shims[i] = sh
		conn, err := net.DialUDP("udp", nil, sh.Addr())
		if err != nil {
			cleanup()
			return nil, err
		}
		conn.SetReadBuffer(1 << 21)
		conn.SetWriteBuffer(1 << 21)
		f := &Fetcher{
			Conn: conn, CC: cfg.NewController(), ObjID: objIDs[i],
			SegSize: store.SegSize, Window: cfg.Window,
		}
		if err := f.Start(); err != nil {
			conn.Close()
			cleanup()
			return nil, err
		}
		fetchers[i] = f
	}
	defer cleanup()

	// Chaos replay: every step lands on all shims; a restart flushes
	// their in-flight queues and resets the receiver's flow state.
	if cfg.Chaos != nil {
		plan := cfg.Chaos.Canonical()
		steps := plan.Steps(cfg.Timeout)
		go func() {
			t0 := time.Now()
			for _, step := range steps {
				d := time.Duration(step.At*float64(time.Second)) - time.Since(t0)
				if d > 0 {
					time.Sleep(d)
				}
				if step.Restart {
					for _, sh := range shims {
						sh.Flush()
					}
					recv.Reset()
					continue
				}
				for _, sh := range shims {
					sh.SetFault(step.State)
				}
			}
		}()
	}

	t0 := time.Now()
	deadline := t0.Add(time.Duration(cfg.Timeout * float64(time.Second)))
	endAt := make([]time.Time, cfg.Flows)
	pending := make(map[int]struct{}, cfg.Flows)
	for i := range fetchers {
		pending[i] = struct{}{}
	}
	for len(pending) > 0 && time.Now().Before(deadline) {
		for i := range pending {
			select {
			case <-fetchers[i].Done():
				endAt[i] = time.Now()
				delete(pending, i)
			default:
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	wall := time.Since(t0).Seconds()

	res := &LoopbackResult{AllDone: true, AllVerified: true}
	for i, f := range fetchers {
		st := f.Stats()
		secs := wall
		if !endAt[i].IsZero() {
			secs = endAt[i].Sub(t0).Seconds()
		}
		p50, p95, p99 := f.RTTQuantiles()
		fr := FlowResult{
			Done: st.Done, Verified: st.Verified, Bytes: st.Delivered,
			Secs: secs, P50RTT: p50, P95RTT: p95, P99RTT: p99,
			Fetcher: st, Shim: shims[i].Stats(),
		}
		if secs > 0 {
			fr.GoodputMbps = float64(st.Delivered) * 8 / secs / 1e6
		}
		res.Flows = append(res.Flows, fr)
		res.TotalBytes += st.Delivered
		res.AllDone = res.AllDone && st.Done
		res.AllVerified = res.AllVerified && st.Verified
	}
	res.Receiver = recv.Stats()
	if wall > 0 {
		res.AggMbps = float64(res.TotalBytes) * 8 / wall / 1e6
	}
	return res, nil
}
