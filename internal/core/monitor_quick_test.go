package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: whatever interleaving of sends, acks, losses, and seals
// occurs, every MI with at least one packet finalizes exactly once, and
// none is left pending — this guards the exact lifecycle bug where an
// MI fully acknowledged before sealing leaked forever and stalled the
// probing round.
func TestQuickMIFinalizesExactlyOnce(t *testing.T) {
	f := func(seed int64, nMIs uint8, lossPct uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{Rng: rng}.withDefaults()
		cfg.UseAckFilter = false
		mo := newMonitor(&cfg)
		u := NewPrimary()

		type pkt struct {
			mi     int64
			sentAt float64
		}
		finalized := map[int64]int{}
		total := int(nMIs)%12 + 1
		now := 0.0
		var inflight []pkt
		for m := 0; m < total; m++ {
			mi := mo.beginMI(now, 10, 0.030)
			n := rng.Intn(12) + 1
			for i := 0; i < n; i++ {
				mo.onSend(now, 1500)
				inflight = append(inflight, pkt{mi: mi.id, sentAt: now})
				now += 0.003
			}
			// Randomly deliver some acks/losses BEFORE sealing, so some
			// MIs complete early (the historical leak).
			rng.Shuffle(len(inflight), func(i, j int) { inflight[i], inflight[j] = inflight[j], inflight[i] })
			keep := inflight[:0]
			for _, p := range inflight {
				switch {
				case rng.Intn(3) == 0: // leave outstanding for later
					keep = append(keep, p)
				case rng.Intn(100) < int(lossPct)%40:
					if res, ok := mo.onLoss(p.mi, u); ok {
						finalized[res.id]++
					}
				default:
					rtt := 0.030 + rng.Float64()*0.005
					if res, ok := mo.onAck(p.sentAt+rtt, p.mi, p.sentAt, rtt, u); ok {
						finalized[res.id]++
					}
				}
			}
			inflight = keep
			if res, ok := mo.seal(now, u); ok {
				finalized[res.id]++
			}
		}
		// Drain everything still outstanding.
		for _, p := range inflight {
			rtt := 0.030 + rng.Float64()*0.005
			if res, ok := mo.onAck(p.sentAt+rtt, p.mi, p.sentAt, rtt, u); ok {
				finalized[res.id]++
			}
		}
		if len(mo.pending) != 0 {
			return false // leaked MIs
		}
		if len(finalized) != total {
			return false // lost results
		}
		for _, c := range finalized {
			if c != 1 {
				return false // double finalize
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: the controller's base rate always stays within its
// configured clamps no matter what MI results it digests.
func TestQuickRateStaysClamped(t *testing.T) {
	f := func(seed int64, utilities []int16) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New("clamptest", ProteusConfig(rng), NewPrimary())
		for _, u16 := range utilities {
			res := miResult{
				id:      c.mon.nextID + 1,
				target:  c.rate,
				utility: float64(u16),
			}
			c.mon.nextID++
			c.handleResult(0, res)
			if c.rate < c.cfg.MinRateMbps-1e-9 || c.rate > c.cfg.MaxRateMbps+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
