package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pccproteus/internal/netem"
	"pccproteus/internal/sim"
	"pccproteus/internal/stats"
	"pccproteus/internal/transport"
)

func newTestLink(s *sim.Sim, mbps float64, bufBytes int, rttSec float64) *netem.Path {
	l := netem.NewLink(s, mbps, bufBytes, rttSec/2)
	return &netem.Path{Link: l, AckDelay: rttSec / 2}
}

// run measures each sender's throughput (Mbps) between warmup and end.
func runFlows(s *sim.Sim, senders []*transport.Sender, warmup, end float64) []float64 {
	var marks []int64
	s.At(warmup, func() {
		for _, sd := range senders {
			marks = append(marks, sd.AckedBytes())
		}
	})
	for _, sd := range senders {
		sd.Start()
	}
	s.Run(end)
	out := make([]float64, len(senders))
	for i, sd := range senders {
		out[i] = float64(sd.AckedBytes()-marks[i]) * 8 / (end - warmup) / 1e6
	}
	return out
}

func TestUtilityPrimaryShape(t *testing.T) {
	u := NewPrimary()
	// Clean network: utility is increasing in rate.
	m1 := Metrics{RateMbps: 10}
	m2 := Metrics{RateMbps: 20}
	if u.Utility(m2) <= u.Utility(m1) {
		t.Fatal("clean-network utility must increase with rate")
	}
	// Positive gradient is penalized; negative gradient ignored.
	base := u.Utility(Metrics{RateMbps: 20})
	if u.Utility(Metrics{RateMbps: 20, RTTGradient: 0.05}) >= base {
		t.Fatal("positive gradient must penalize")
	}
	if u.Utility(Metrics{RateMbps: 20, RTTGradient: -0.5}) != base {
		t.Fatal("negative gradient must be ignored (Proteus-P modification)")
	}
	// Loss penalized with c=11.35: 5% random loss still leaves positive
	// marginal utility at low rates.
	if u.Utility(Metrics{RateMbps: 20, LossRate: 0.05}) >= base {
		t.Fatal("loss must penalize")
	}
}

func TestUtilityScavengerDeviationPenalty(t *testing.T) {
	s := NewScavenger()
	p := NewPrimary()
	m := Metrics{RateMbps: 20, RTTDeviation: 0.001}
	if s.Utility(m) >= p.Utility(m) {
		t.Fatal("scavenger must penalize RTT deviation on top of primary")
	}
	// With zero deviation the two coincide.
	m0 := Metrics{RateMbps: 20}
	if math.Abs(s.Utility(m0)-p.Utility(m0)) > 1e-12 {
		t.Fatal("u_S == u_P when deviation is zero")
	}
	// d·x·σ: exact penalty.
	want := p.Utility(m) - DefaultScavengerD*20*0.001
	if math.Abs(s.Utility(m)-want) > 1e-9 {
		t.Fatalf("penalty: got %v want %v", s.Utility(m), want)
	}
}

func TestUtilityHybridPiecewise(t *testing.T) {
	h := NewHybrid()
	h.SetThreshold(15)
	below := Metrics{RateMbps: 10, RTTDeviation: 0.002}
	above := Metrics{RateMbps: 20, RTTDeviation: 0.002}
	if h.Utility(below) != h.P.Utility(below) {
		t.Fatal("below threshold must use primary utility")
	}
	if h.Utility(above) != h.S.Utility(above) {
		t.Fatal("at/above threshold must use scavenger utility")
	}
	if h.Threshold() != 15 {
		t.Fatal("threshold accessor")
	}
	h.SetThreshold(math.Inf(1))
	if h.Utility(above) != h.P.Utility(above) {
		t.Fatal("infinite threshold (emergency rule) must be pure primary")
	}
}

func TestVivaceUtilityRewardsNegativeGradient(t *testing.T) {
	v := NewVivaceUtility()
	base := v.Utility(Metrics{RateMbps: 20})
	if v.Utility(Metrics{RateMbps: 20, RTTGradient: -0.01}) <= base {
		t.Fatal("Vivace rewards negative gradient (Proteus-P does not)")
	}
}

// Property: Proteus-P utility is concave in rate for clean metrics
// (midpoint test), guaranteeing the unique-equilibrium machinery of
// Appendix A applies.
func TestQuickPrimaryConcavity(t *testing.T) {
	u := NewPrimary()
	f := func(a, b uint16, gradMilli uint8) bool {
		x1 := float64(a)/100 + 0.1
		x2 := float64(b)/100 + 0.1
		grad := float64(gradMilli) / 1000
		um := func(x float64) float64 {
			return u.Utility(Metrics{RateMbps: x, RTTGradient: grad})
		}
		mid := (x1 + x2) / 2
		return um(mid) >= (um(x1)+um(x2))/2-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: scavenger utility is monotonically non-increasing in the
// deviation penalty.
func TestQuickScavengerMonotoneInDeviation(t *testing.T) {
	u := NewScavenger()
	f := func(x16 uint16, d1, d2 uint16) bool {
		x := float64(x16)/100 + 0.1
		a, b := float64(d1)/1e5, float64(d2)/1e5
		if a > b {
			a, b = b, a
		}
		ua := u.Utility(Metrics{RateMbps: x, RTTDeviation: a})
		ub := u.Utility(Metrics{RateMbps: x, RTTDeviation: b})
		return ua >= ub-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProteusPSaturatesCleanLink(t *testing.T) {
	s := sim.New(1)
	path := newTestLink(s, 50, 375000, 0.030)
	cc := NewProteusP(s.Rand())
	snd := transport.NewSender(1, path, cc)
	snd.RecordRTT = true
	tput := runFlows(s, []*transport.Sender{snd}, 20, 100)
	if tput[0] < 42 { // ≥84% of 50 Mbps after warmup
		t.Fatalf("Proteus-P throughput %.1f Mbps, want ≥42", tput[0])
	}
	// Latency awareness: 95th percentile RTT inflation small.
	p95 := stats.Percentile(snd.RTTSamples(), 95)
	if p95 > path.BaseRTT()+0.015 {
		t.Fatalf("95th RTT %.1f ms shows bufferbloat (base %.1f ms)", p95*1000, path.BaseRTT()*1000)
	}
}

func TestProteusSSaturatesCleanLinkAlone(t *testing.T) {
	s := sim.New(2)
	path := newTestLink(s, 50, 375000, 0.030)
	cc := NewProteusS(s.Rand())
	snd := transport.NewSender(1, path, cc)
	tput := runFlows(s, []*transport.Sender{snd}, 20, 100)
	if tput[0] < 40 { // scavenger alone must behave like a primary
		t.Fatalf("Proteus-S solo throughput %.1f Mbps, want ≥40", tput[0])
	}
}

func TestProteusWorksWithShallowBuffer(t *testing.T) {
	s := sim.New(3)
	path := newTestLink(s, 50, 15000, 0.030) // 0.08 BDP — paper: tiny buffer suffices
	cc := NewProteusP(s.Rand())
	snd := transport.NewSender(1, path, cc)
	tput := runFlows(s, []*transport.Sender{snd}, 20, 100)
	if tput[0] < 40 {
		t.Fatalf("shallow-buffer throughput %.1f Mbps, want ≥40", tput[0])
	}
}

func TestTwoProteusPFairness(t *testing.T) {
	s := sim.New(4)
	path := newTestLink(s, 50, 375000, 0.030)
	a := transport.NewSender(1, path, NewProteusP(s.Rand()))
	b := transport.NewSender(2, path, NewProteusP(s.Rand()))
	tput := runFlows(s, []*transport.Sender{a, b}, 40, 160)
	j := stats.JainIndex(tput)
	if j < 0.95 {
		t.Fatalf("Jain index %.3f (tput %v), want ≥0.95", j, tput)
	}
	if tput[0]+tput[1] < 40 {
		t.Fatalf("joint utilization %.1f too low", tput[0]+tput[1])
	}
}

func TestProteusSYieldsToProteusP(t *testing.T) {
	// As in the paper's §6.2 methodology: one primary flow, followed by
	// one scavenger 20 s later; measure after both have settled.
	s := sim.New(5)
	path := newTestLink(s, 50, 375000, 0.030)
	p := transport.NewSender(1, path, NewProteusP(s.Rand()))
	scv := transport.NewSender(2, path, NewProteusS(s.Rand()))
	p.Start()
	s.At(20, func() { scv.Start() })
	var pMark, sMark int64
	s.At(60, func() { pMark, sMark = p.AckedBytes(), scv.AckedBytes() })
	s.Run(180)
	pT := float64(p.AckedBytes()-pMark) * 8 / 120 / 1e6
	sT := float64(scv.AckedBytes()-sMark) * 8 / 120 / 1e6
	// The primary should keep the vast majority of the link. (The exact
	// primary-throughput-ratio figures are produced by the experiment
	// harness; here we assert the qualitative contract across seeds.)
	if pT < 0.60*50 {
		t.Fatalf("primary got %.1f Mbps against scavenger, want ≥30 (scavenger %.1f)", pT, sT)
	}
	if sT > 0.2*50 {
		t.Fatalf("scavenger took %.1f Mbps, too aggressive", sT)
	}
	if pT < 3*sT {
		t.Fatalf("yield too weak: P=%.1f S=%.1f", pT, sT)
	}
}

func TestProteusSRecoversWhenPrimaryLeaves(t *testing.T) {
	s := sim.New(6)
	path := newTestLink(s, 50, 375000, 0.030)
	p := transport.NewSender(1, path, NewProteusP(s.Rand()))
	scv := transport.NewSender(2, path, NewProteusS(s.Rand()))
	p.Start()
	scv.Start()
	s.At(60, func() { p.Stop() })
	s.Run(60)
	midMark := scv.AckedBytes()
	s.Run(150)
	tail := float64(scv.AckedBytes()-midMark) * 8 / 90 / 1e6
	if tail < 35 {
		t.Fatalf("scavenger only reached %.1f Mbps after primary left", tail)
	}
}

func TestSetUtilityMidFlowSwitchesBehavior(t *testing.T) {
	s := sim.New(7)
	path := newTestLink(s, 50, 375000, 0.030)
	// Flow A: primary throughout. Flow B: starts primary, becomes
	// scavenger at t=60 — its share must collapse.
	ccB := NewProteusP(s.Rand())
	a := transport.NewSender(1, path, NewProteusP(s.Rand()))
	b := transport.NewSender(2, path, ccB)
	a.Start()
	b.Start()
	s.At(60, func() { ccB.SetUtility(NewScavenger()) })
	s.Run(60)
	aMark, bMark := a.AckedBytes(), b.AckedBytes()
	s.Run(160)
	aT := float64(a.AckedBytes()-aMark) * 8 / 100 / 1e6
	bT := float64(b.AckedBytes()-bMark) * 8 / 100 / 1e6
	if bT > aT/2 {
		t.Fatalf("after switching to scavenger, B=%.1f should be far below A=%.1f", bT, aT)
	}
	if ccB.Stats().UtilitySwaps != 1 {
		t.Fatal("swap not recorded")
	}
}

func TestProteusToleratesRandomLoss(t *testing.T) {
	s := sim.New(8)
	path := newTestLink(s, 50, 375000, 0.030)
	path.Link.LossProb = 0.02 // 2% random loss, within the 5% design point
	cc := NewProteusP(s.Rand())
	snd := transport.NewSender(1, path, cc)
	tput := runFlows(s, []*transport.Sender{snd}, 20, 100)
	if tput[0] < 30 {
		t.Fatalf("throughput %.1f under 2%% random loss, want ≥30", tput[0])
	}
}

func TestProteusPOnNoisyLink(t *testing.T) {
	s := sim.New(9)
	path := newTestLink(s, 50, 375000, 0.030)
	path.Link.Jitter = netem.SpikeNoise{
		Base:      netem.LognormalNoise{Median: 0.001, Sigma: 0.8},
		SpikeProb: 0.001, SpikeMin: 0.01, SpikeMax: 0.03,
	}
	cc := NewProteusP(s.Rand())
	snd := transport.NewSender(1, path, cc)
	tput := runFlows(s, []*transport.Sender{snd}, 20, 120)
	if tput[0] < 25 {
		t.Fatalf("noisy-link throughput %.1f Mbps, want ≥25", tput[0])
	}
}

func TestAckFilterDropsBurstSamples(t *testing.T) {
	cfg := ProteusConfig(rand.New(rand.NewSource(1)))
	mo := newMonitor(&cfg)
	// Steady 1 ms ACK cadence, 30 ms RTT.
	now := 0.0
	for i := 0; i < 100; i++ {
		now += 0.001
		mo.ackFilter(now, 0.030)
	}
	// A 200 ms silence then a burst: interval ratio 200 ≫ 50 → filter on.
	now += 0.200
	if mo.ackFilter(now, 0.230) {
		t.Fatal("post-gap inflated sample should be filtered")
	}
	now += 0.0001
	if mo.ackFilter(now, 0.200) {
		t.Fatal("burst samples above EWMA should be filtered")
	}
	// Recovery: a sample below the moving average ends filtering.
	now += 0.0001
	if !mo.ackFilter(now, 0.029) {
		t.Fatal("below-average sample should end filtering")
	}
	if mo.filteredOut != 2 {
		t.Fatalf("filteredOut=%d want 2", mo.filteredOut)
	}
}

func TestTrendingWarmupIsAnomalous(t *testing.T) {
	cfg := ProteusConfig(rand.New(rand.NewSource(1)))
	ns := newNoiseState(&cfg)
	g, d := ns.observe(Metrics{AvgRTT: 0.03, RTTDeviation: 0.0001})
	if !g || !d {
		t.Fatal("warmup must be conservative (anomalous)")
	}
}

func TestTrendingDetectsPersistentInflation(t *testing.T) {
	cfg := ProteusConfig(rand.New(rand.NewSource(1)))
	ns := newNoiseState(&cfg)
	// Long stable period.
	for i := 0; i < 60; i++ {
		ns.observe(Metrics{AvgRTT: 0.030, RTTDeviation: 0.0001})
	}
	g, _ := ns.observe(Metrics{AvgRTT: 0.030, RTTDeviation: 0.0001})
	if g {
		t.Fatal("stable trend should not be anomalous")
	}
	// Slow persistent inflation: +0.4 ms per MI, each step small.
	anomalousSeen := false
	for i := 1; i <= 12; i++ {
		g, _ = ns.observe(Metrics{AvgRTT: 0.030 + float64(i)*0.0004, RTTDeviation: 0.0001})
		if g {
			anomalousSeen = true
		}
	}
	if !anomalousSeen {
		t.Fatal("persistent slow inflation must trip the trending detector")
	}
}

func TestMonitorMetricsComputation(t *testing.T) {
	cfg := Config{Rng: rand.New(rand.NewSource(1))}.withDefaults()
	cfg.UseRegressionTolerance = false
	cfg.UseTrending = false
	cfg.UseAckFilter = false
	mo := newMonitor(&cfg)
	m := mo.beginMI(0, 10, 0.030)
	// 10 packets over 30 ms, RTTs rising linearly 30→39 ms.
	for i := 0; i < 10; i++ {
		mo.onSend(float64(i)*0.003, 1500)
	}
	u := NewPrimary()
	mo.seal(0.030, u)
	var res miResult
	var done bool
	for i := 0; i < 10; i++ {
		sendT := float64(i) * 0.003
		rtt := 0.030 + float64(i)*0.001
		res, done = mo.onAck(sendT+rtt, m.id, sendT, rtt, u)
	}
	if !done {
		t.Fatal("MI did not finalize")
	}
	// Gradient: 1 ms per 3 ms of send time = 1/3 s/s.
	if math.Abs(res.metrics.RTTGradient-1.0/3) > 1e-9 {
		t.Fatalf("gradient %v want 1/3", res.metrics.RTTGradient)
	}
	if math.Abs(res.metrics.AvgRTT-0.0345) > 1e-9 {
		t.Fatalf("avg rtt %v", res.metrics.AvgRTT)
	}
	if res.metrics.RTTDeviation <= 0 {
		t.Fatal("deviation must be positive for a ramp")
	}
	if res.metrics.RateMbps != 10 { // utility uses the commanded rate
		t.Fatalf("metrics rate %v want target 10", res.metrics.RateMbps)
	}
	wantMeas := 10 * 1500 * 8 / 0.027 / 1e6 // sealed at last send
	if math.Abs(res.rate-wantMeas) > 1 {
		t.Fatalf("measured rate %v want ≈%v", res.rate, wantMeas)
	}
	if res.metrics.LossRate != 0 {
		t.Fatal("no losses expected")
	}
}

func TestMonitorLossAccounting(t *testing.T) {
	cfg := Config{Rng: rand.New(rand.NewSource(1))}.withDefaults()
	mo := newMonitor(&cfg)
	m := mo.beginMI(0, 10, 0.030)
	for i := 0; i < 4; i++ {
		mo.onSend(float64(i)*0.003, 1500)
	}
	u := NewPrimary()
	mo.seal(0.012, u)
	mo.onAck(0.033, m.id, 0.0, 0.033, u)
	mo.onAck(0.036, m.id, 0.003, 0.033, u)
	mo.onLoss(m.id, u)
	res, done := mo.onLoss(m.id, u)
	if !done {
		t.Fatal("MI should finalize after all packets accounted")
	}
	if math.Abs(res.metrics.LossRate-0.5) > 1e-12 {
		t.Fatalf("loss rate %v want 0.5", res.metrics.LossRate)
	}
}

func TestRegressionToleranceZeroesNoise(t *testing.T) {
	cfg := ProteusConfig(rand.New(rand.NewSource(1)))
	cfg.UseTrending = false
	mo := newMonitor(&cfg)
	m := mo.beginMI(0, 10, 0.030)
	// RTTs: pure zig-zag noise around 30 ms, no trend — regression error
	// dwarfs the fitted slope.
	n := 20
	for i := 0; i < n; i++ {
		mo.onSend(float64(i)*0.0015, 1500)
	}
	u := NewScavenger()
	mo.seal(0.030, u)
	var res miResult
	var done bool
	for i := 0; i < n; i++ {
		sendT := float64(i) * 0.0015
		rtt := 0.030
		if i%2 == 0 {
			rtt += 0.002
		}
		res, done = mo.onAck(sendT+rtt, m.id, sendT, rtt, u)
	}
	if !done {
		t.Fatal("not finalized")
	}
	if res.metrics.RTTGradient != 0 || res.metrics.RTTDeviation != 0 {
		t.Fatalf("tolerance should zero noisy grad/dev, got %v/%v",
			res.metrics.RTTGradient, res.metrics.RTTDeviation)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{Rng: rand.New(rand.NewSource(1))}.withDefaults()
	if cfg.ProbePairs != 3 || cfg.Epsilon != 0.05 || cfg.TrendK != 6 ||
		cfg.G1 != 2 || cfg.G2 != 4 || cfg.AckIntervalRatio != 50 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
	v := VivaceConfig(rand.New(rand.NewSource(1)))
	if v.ProbePairs != 2 || v.UseTrending || v.UseAckFilter || v.UseRegressionTolerance {
		t.Fatal("Vivace preset must disable Proteus noise mechanisms")
	}
}

// §2.2's critique of "same metrics, greater penalty" scavenging,
// demonstrated: a low-weight proportional sender still roughly matches a
// latency-sensitive Proteus-P sender, because the primary retreats on
// latency long before the proportional sender's loss signal fires — the
// weight never gets to matter.
func TestProportionalUtilityFailsAsScavenger(t *testing.T) {
	s := sim.New(9)
	path := newTestLink(s, 50, 375000, 0.030)
	primary := transport.NewSender(1, path, NewProteusP(s.Rand()))
	cfg := ProteusConfig(s.Rand())
	prop := New("proportional-0.3", cfg, NewProportional(0.3))
	scv := transport.NewSender(2, path, prop)
	primary.Start()
	s.At(20, func() { scv.Start() })
	var mp, ms int64
	s.At(60, func() { mp, ms = primary.AckedBytes(), scv.AckedBytes() })
	s.Run(180)
	pT := float64(primary.AckedBytes()-mp) * 8 / 120 / 1e6
	sT := float64(scv.AckedBytes()-ms) * 8 / 120 / 1e6
	// The "scavenger" keeps a large share — nothing like the ≤10% a real
	// scavenger should take.
	if sT < 0.25*(pT+sT) {
		t.Fatalf("proportional-weight sender took only %.1f of %.1f — §2.2 expects it to fail to yield",
			sT, pT+sT)
	}
}

func TestProportionalWeightOrdersShares(t *testing.T) {
	// Between two proportional senders of the same family, the weight
	// does order the shares (that is what it was designed for).
	u3, u10 := NewProportional(0.3), NewProportional(1.0)
	m := Metrics{RateMbps: 20, LossRate: 0.02}
	if u3.Utility(m) >= u10.Utility(m) {
		t.Fatal("lower weight must mean lower utility at equal metrics")
	}
	if u3.Name() != "proportional" {
		t.Fatal("name")
	}
}

func TestPauseDiscardsOpenMIs(t *testing.T) {
	s := sim.New(11)
	path := newTestLink(s, 50, 375000, 0.030)
	cc := NewProteusP(s.Rand())
	snd := transport.NewSender(1, path, cc)
	snd.Start()
	s.Run(5)
	snd.Pause()
	if cc.Stats().MIsDiscarded == 0 {
		t.Fatal("pausing mid-flow must discard the open MIs")
	}
	snd.Resume()
	before := cc.Stats().MIsCompleted
	s.Run(8)
	if cc.Stats().MIsCompleted <= before {
		t.Fatal("MIs must resume completing after Resume")
	}
}

func TestPacingRateTracksProbeMI(t *testing.T) {
	s := sim.New(12)
	path := newTestLink(s, 50, 375000, 0.030)
	cc := NewProteusP(s.Rand())
	snd := transport.NewSender(1, path, cc)
	snd.Start()
	s.Run(20) // well past startup, probing continuously
	// Sample pacing across a second: it must visit rates both above and
	// below the base (the ±ε probe MIs).
	base := cc.RateMbps()
	hi, lo := false, false
	for i := 0; i < 200; i++ {
		s.Run(20 + float64(i)*0.005)
		r := cc.PacingRate() * 8 / 1e6
		b := cc.RateMbps()
		if r > b*1.01 {
			hi = true
		}
		if r < b*0.99 {
			lo = true
		}
	}
	_ = base
	if !hi || !lo {
		t.Fatalf("pacing should oscillate ±ε around base (hi=%v lo=%v)", hi, lo)
	}
}

func TestCWndCapScalesWithRate(t *testing.T) {
	cc := NewProteusP(rand.New(rand.NewSource(1)))
	w0 := cc.CWnd()
	cc.rate = 100
	if cc.CWnd() <= w0 {
		t.Fatal("window cap must scale with rate")
	}
	if cc.State() != "starting" {
		t.Fatalf("fresh controller state %s", cc.State())
	}
}
