// Package core implements the paper's primary contribution: the PCC
// Proteus congestion-control framework. It separates congestion control
// into a utility module (a library of utility functions — primary,
// scavenger, hybrid, custom — computed over per-monitor-interval
// performance metrics) and a rate-control module (Vivace-style online
// gradient ascent, extended with Proteus's majority-of-three rule), plus
// the noise-tolerance mechanisms of §5 (per-ACK RTT sample filtering,
// per-MI regression-error tolerance, MI-history trending tolerance).
//
// A single Controller instance can switch utility functions mid-flow via
// SetUtility — the paper's flexibility goal — so an application moves
// between primary, scavenger, and hybrid service without restarting the
// connection.
package core

import "math"

// Metrics summarizes one monitor interval, in the units the paper's
// utility functions use: rates in Mbps, times in seconds.
type Metrics struct {
	RateMbps     float64 // average sending rate over the MI
	LossRate     float64 // fraction of the MI's packets lost
	RTTGradient  float64 // d(RTT)/dt, seconds per second (post-tolerance)
	RTTDeviation float64 // σ(RTT) within the MI, seconds (post-tolerance)
	AvgRTT       float64 // mean RTT of the MI, seconds
	Duration     float64 // MI length, seconds
}

// UtilityFunc maps MI metrics to a scalar utility. Implementations must
// be pure functions of the metrics (plus their own parameters) so the
// rate controller can compare utilities across sending rates.
type UtilityFunc interface {
	Name() string
	Utility(m Metrics) float64
}

// PrimaryParams are the constants of the Proteus-P utility function
// (eq. 1), defaulted to the PCC Vivace values the paper adopts.
type PrimaryParams struct {
	T float64 // throughput exponent t ∈ (0,1); concavity
	B float64 // latency-gradient coefficient b > 0
	C float64 // loss coefficient c (11.35 tolerates 5% random loss)
}

// DefaultPrimaryParams returns t=0.9, b=900, c=11.35 as used in §6.
func DefaultPrimaryParams() PrimaryParams { return PrimaryParams{T: 0.9, B: 900, C: 11.35} }

// Primary is the Proteus-P utility (eq. 1):
//
//	u_P(x) = x^t − b·x·max(0, d(RTT)/dt) − c·x·L
//
// Negative RTT gradient is ignored — the paper's modification to Vivace
// that avoids slow convergence from over-rewarding queue drain.
type Primary struct {
	PrimaryParams
}

// NewPrimary returns Proteus-P with the paper's default parameters.
func NewPrimary() *Primary { return &Primary{DefaultPrimaryParams()} }

// Name implements UtilityFunc.
func (u *Primary) Name() string { return "proteus-p" }

// Utility implements UtilityFunc.
func (u *Primary) Utility(m Metrics) float64 {
	x := m.RateMbps
	if x < 0 {
		x = 0
	}
	grad := m.RTTGradient
	if grad < 0 {
		grad = 0
	}
	return math.Pow(x, u.T) - u.B*x*grad - u.C*x*m.LossRate
}

// Scavenger is the Proteus-S utility (eq. 2):
//
//	u_S(x) = u_P(x) − d·x·σ(RTT)
//
// RTT deviation — the standard deviation of RTT samples within the MI —
// is the competition indicator of §4.2: it fires on the buffer-occupancy
// oscillation that competing senders' probing produces, earlier than
// loss or sustained gradient, and it is a metric primary protocols do
// not themselves penalize.
type Scavenger struct {
	PrimaryParams
	D float64 // RTT-deviation coefficient d (σ in seconds)
}

// NewScavenger returns Proteus-S with this implementation's default
// deviation coefficient (see DefaultScavengerD).
func NewScavenger() *Scavenger {
	return &Scavenger{PrimaryParams: DefaultPrimaryParams(), D: DefaultScavengerD}
}

// DefaultScavengerD is the RTT-deviation coefficient d of eq. 2. The
// paper uses 1500 (σ in seconds) on its Emulab/kernel substrate; this
// emulation's smoothed per-MI deviations at a contested bottleneck run
// roughly a third of a kernel stack's magnitude (no interrupt jitter,
// no cross traffic, burst-head RTT sampling), so the default is scaled
// accordingly. See DESIGN.md §5 on substitution calibration; the
// scavenger equilibrium x_S ≈ (t/(d·σ̄))^(1/(1-t)) is what is being
// calibrated.
const DefaultScavengerD = 5000

// Name implements UtilityFunc.
func (u *Scavenger) Name() string { return "proteus-s" }

// Utility implements UtilityFunc.
func (u *Scavenger) Utility(m Metrics) float64 {
	x := m.RateMbps
	if x < 0 {
		x = 0
	}
	grad := m.RTTGradient
	if grad < 0 {
		grad = 0
	}
	return math.Pow(x, u.T) - u.B*x*grad - u.C*x*m.LossRate - u.D*x*m.RTTDeviation
}

// Hybrid is the Proteus-H piecewise utility (eq. 3): primary below the
// switching threshold, scavenger at or above it. The threshold is set by
// the application (e.g. the video rules of §4.4) and may change at any
// time; there is no explicit mode switch in the control algorithm — the
// mode emerges from comparing utilities of different sending rates.
type Hybrid struct {
	P *Primary
	S *Scavenger

	thresholdMbps float64
}

// NewHybrid returns Proteus-H with default P and S components and an
// infinite threshold (pure primary until the application sets one).
func NewHybrid() *Hybrid {
	return &Hybrid{P: NewPrimary(), S: NewScavenger(), thresholdMbps: math.Inf(1)}
}

// Name implements UtilityFunc.
func (u *Hybrid) Name() string { return "proteus-h" }

// SetThreshold updates the switching threshold in Mbps. An infinite
// threshold makes Proteus-H behave as Proteus-P (the §4.4 emergency
// rule); zero makes it a pure scavenger.
func (u *Hybrid) SetThreshold(mbps float64) { u.thresholdMbps = mbps }

// Threshold returns the current switching threshold in Mbps.
func (u *Hybrid) Threshold() float64 { return u.thresholdMbps }

// Utility implements UtilityFunc.
func (u *Hybrid) Utility(m Metrics) float64 {
	if m.RateMbps < u.thresholdMbps {
		return u.P.Utility(m)
	}
	return u.S.Utility(m)
}

// Custom wraps an arbitrary function as a UtilityFunc, letting
// applications express needs beyond the built-in modes.
type Custom struct {
	Label string
	Fn    func(m Metrics) float64
}

// Name implements UtilityFunc.
func (u *Custom) Name() string { return u.Label }

// Utility implements UtilityFunc.
func (u *Custom) Utility(m Metrics) float64 { return u.Fn(m) }

// VivaceUtility is the unmodified PCC Vivace utility: like Proteus-P but
// rewarding negative RTT gradient as well (no max(0,·) clamp). Used by
// the Vivace baseline.
type VivaceUtility struct {
	PrimaryParams
}

// NewVivaceUtility returns the Vivace utility with default parameters.
func NewVivaceUtility() *VivaceUtility { return &VivaceUtility{DefaultPrimaryParams()} }

// Name implements UtilityFunc.
func (u *VivaceUtility) Name() string { return "vivace" }

// Utility implements UtilityFunc.
func (u *VivaceUtility) Utility(m Metrics) float64 {
	x := m.RateMbps
	if x < 0 {
		x = 0
	}
	return math.Pow(x, u.T) - u.B*x*m.RTTGradient - u.C*x*m.LossRate
}

// Proportional is the §2.2 "same metrics, greater penalty" strawman: the
// proportional-bandwidth-allocation utility of the Vivace paper, in
// which a sender's aggressiveness is scaled by a weight w —
//
//	u_w(x) = w·x^t − b·x·max(0, d(RTT)/dt) − c·x·L
//
// so a w < 1 sender tolerates less loss and backs off earlier than a
// w = 1 sender of the same family. The paper rejects this route for a
// scavenger for two reasons this implementation lets experiments
// demonstrate: achieving a small share against a loss-based primary
// requires *inducing* persistent loss, and against a latency-sensitive
// primary the weight is irrelevant because the latency-based sender
// backs off long before the loss signal this utility listens to ever
// fires.
type Proportional struct {
	PrimaryParams
	W float64 // throughput weight; < 1 deprioritizes, > 1 prioritizes
}

// NewProportional returns the proportional-allocation utility with the
// given weight and default constants.
func NewProportional(w float64) *Proportional {
	return &Proportional{PrimaryParams: DefaultPrimaryParams(), W: w}
}

// Name implements UtilityFunc.
func (u *Proportional) Name() string { return "proportional" }

// Utility implements UtilityFunc.
func (u *Proportional) Utility(m Metrics) float64 {
	x := m.RateMbps
	if x < 0 {
		x = 0
	}
	grad := m.RTTGradient
	if grad < 0 {
		grad = 0
	}
	return u.W*math.Pow(x, u.T) - u.B*x*grad - u.C*x*m.LossRate
}
