package core

import "pccproteus/internal/stats"

// noiseState implements the MI-history trending tolerance of §5: the
// sender keeps the average RTT and RTT deviation of the most recent k
// MIs and derives trending metrics whose moving averages model the
// channel's *non-congestion* noise. A new sample that lies several
// deviations away from its noise model is statistically unlikely to be
// noise and therefore must not be ignored by the per-MI tolerance.
//
// Three statistics are monitored:
//
//   - trending gradient: the linear-regression slope over the stored
//     MIs' average RTTs (paper §5) — catches slow persistent inflation
//     that stays inside per-MI tolerance.
//   - trending deviation: the standard deviation of the stored MIs' RTT
//     deviations (paper §5) — catches bursts of deviation volatility.
//   - deviation level: the per-MI RTT deviation itself, against an EWMA
//     of its history. This extends the paper's formula: the volatility
//     statistic alone cannot distinguish steady competition (deviation
//     persistently elevated but stable) from a quiet channel, yet that
//     steady state is exactly where a scavenger must keep yielding.
//
// Model hygiene: the moving averages are meant to describe noise, so
// anomalous (likely-congestion) samples update them at a vanishing gain
// — otherwise a few seconds of competition would be absorbed into the
// noise floor and blind the scavenger. During the initial warmup the
// model learns at full gain regardless, to capture the channel's
// ambient noise (e.g. WiFi jitter) before discrimination begins.
type noiseState struct {
	cfg     *Config
	avgRTTs []float64 // ring of the last k MIs' average RTTs
	devs    []float64 // ring of the last k MIs' RTT deviations
	idx     []float64 // 1..k regression abscissa (reused)
	seen    int

	trendGrad *stats.EWMA // noise model of the trending gradient
	trendDev  *stats.EWMA // noise model of the trending deviation
	devLevel  *stats.EWMA // noise model of the per-MI deviation level
}

func newNoiseState(cfg *Config) *noiseState {
	return &noiseState{
		cfg:       cfg,
		trendGrad: stats.NewEWMA(),
		trendDev:  stats.NewEWMA(),
		devLevel:  stats.NewEWMA(),
	}
}

// observe folds one finalized MI's (pre-tolerance) metrics into the
// trending state and reports whether the gradient and deviation are
// anomalous — i.e. must not be zeroed by the per-MI tolerance.
func (ns *noiseState) observe(met Metrics) (gradAnomalous, devAnomalous bool) {
	k := ns.cfg.TrendK
	ns.seen++
	ns.avgRTTs = append(ns.avgRTTs, met.AvgRTT)
	ns.devs = append(ns.devs, met.RTTDeviation)
	if len(ns.avgRTTs) > k {
		ns.avgRTTs = ns.avgRTTs[1:]
		ns.devs = ns.devs[1:]
	}
	warmup := ns.seen <= ns.cfg.NoiseWarmupMIs
	if len(ns.avgRTTs) < k {
		// Not enough history for the trending statistics: learn the
		// deviation level and stay conservative (treat as anomalous).
		ns.devLevel.Add(met.RTTDeviation)
		return true, true
	}
	if len(ns.idx) != k {
		ns.idx = make([]float64, k)
		for i := range ns.idx {
			ns.idx[i] = float64(i + 1)
		}
	}
	trendingGradient := stats.LinearRegression(ns.idx, ns.avgRTTs).Slope
	trendingDeviation := stats.StdDev(ns.devs)

	g1, g2 := ns.cfg.G1, ns.cfg.G2
	if ns.trendGrad.Initialized() {
		gradAnomalous = abs(trendingGradient-ns.trendGrad.Avg()) > g1*ns.trendGrad.Dev()
	} else {
		gradAnomalous = true
	}
	if ns.trendDev.Initialized() {
		volatile := trendingDeviation-ns.trendDev.Avg() > g2*ns.trendDev.Dev()
		elevated := met.RTTDeviation-ns.devLevel.Avg() > g2*ns.devLevel.Dev()
		devAnomalous = volatile || elevated
	} else {
		devAnomalous = true
	}
	if warmup {
		gradAnomalous = true
		devAnomalous = true
		ns.trendGrad.Add(trendingGradient)
		ns.trendDev.Add(trendingDeviation)
		ns.devLevel.Add(met.RTTDeviation)
		return gradAnomalous, devAnomalous
	}
	ns.addSample(ns.trendGrad, trendingGradient, gradAnomalous)
	ns.addSample(ns.trendDev, trendingDeviation, devAnomalous)
	ns.addSample(ns.devLevel, met.RTTDeviation, devAnomalous)
	return gradAnomalous, devAnomalous
}

// addSample updates a noise-model EWMA: full gain for ordinary samples,
// a vanishing gain for anomalous ones so congestion cannot teach itself
// into the noise floor (yet a genuine long-term shift in channel noise
// is eventually absorbed).
func (ns *noiseState) addSample(e *stats.EWMA, v float64, anomalous bool) {
	if !anomalous || !e.Initialized() {
		e.Add(v)
		return
	}
	a, b := e.Alpha, e.Beta
	e.Alpha, e.Beta = a/256, b/256
	e.Add(v)
	e.Alpha, e.Beta = a, b
}
