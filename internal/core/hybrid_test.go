package core

import (
	"testing"

	"pccproteus/internal/sim"
	"pccproteus/internal/transport"
)

// TestHybridStaticThresholdPair checks the §4.4 ideal-rate-pair claim in
// simulation: two Proteus-H senders with thresholds r1 < r2 on a
// bottleneck whose capacity falls in [2·r1, r1+r2) should converge near
// (r1, C−r1) — the low-threshold sender caps itself once it exceeds its
// threshold (scavenger utility above it), while the other keeps primary
// utility up to r2.
func TestHybridStaticThresholdPair(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	s := sim.New(3)
	path := newTestLink(s, 44, 330000, 0.030) // C=44 ∈ [2·15=30, 15+25=40)... use thresholds below
	// Thresholds: r1=15, r2=25. C=44 ≥ r1+r2=40 and < 2·r2=50 →
	// prediction (C−r2, r2) = (19, 25).
	cc1, h1 := NewProteusH(s.Rand())
	cc2, h2 := NewProteusH(s.Rand())
	h1.SetThreshold(15)
	h2.SetThreshold(25)
	a := transport.NewSender(1, path, cc1)
	b := transport.NewSender(2, path, cc2)
	a.Start()
	s.At(10, func() { b.Start() })
	var ma, mb int64
	s.At(80, func() { ma, mb = a.AckedBytes(), b.AckedBytes() })
	s.Run(200)
	ta := float64(a.AckedBytes()-ma) * 8 / 120 / 1e6
	tb := float64(b.AckedBytes()-mb) * 8 / 120 / 1e6
	// Qualitative contract: the low-threshold sender ends near (not
	// meaningfully above) its threshold; the high-threshold sender gets
	// clearly more; together they use most of the link.
	if ta > 15*1.35 {
		t.Errorf("low-threshold sender at %.1f Mbps, should cap near 15", ta)
	}
	if tb < ta {
		t.Errorf("high-threshold sender (%.1f) should exceed low-threshold (%.1f)", tb, ta)
	}
	if ta+tb < 0.65*44 {
		t.Errorf("joint utilization %.1f too low", ta+tb)
	}
}

// TestHybridInfiniteThresholdActsPrimary: with the emergency rule active
// (threshold ∞) a Proteus-H flow shares fairly with a Proteus-P flow.
func TestHybridInfiniteThresholdActsPrimary(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	s := sim.New(4)
	path := newTestLink(s, 50, 375000, 0.030)
	ccH, _ := NewProteusH(s.Rand()) // default threshold is ∞
	hSnd := transport.NewSender(1, path, ccH)
	pSnd := transport.NewSender(2, path, NewProteusP(s.Rand()))
	hSnd.Start()
	s.At(5, func() { pSnd.Start() })
	var mh, mp int64
	s.At(60, func() { mh, mp = hSnd.AckedBytes(), pSnd.AckedBytes() })
	s.Run(160)
	th := float64(hSnd.AckedBytes()-mh) * 8 / 100 / 1e6
	tp := float64(pSnd.AckedBytes()-mp) * 8 / 100 / 1e6
	// Rough fairness: neither side should be starved.
	if th < 0.2*(th+tp) || tp < 0.2*(th+tp) {
		t.Errorf("∞-threshold hybrid should share like a primary: H=%.1f P=%.1f", th, tp)
	}
}
