package core

import (
	"pccproteus/internal/stats"
)

// mi is one monitor interval: a stretch of transmission at (nominally)
// one sending rate whose packets are tracked until every one is acked or
// lost, at which point the MI's metrics and utility are computed (§3).
type mi struct {
	id          int64
	targetMbps  float64
	start       float64
	end         float64 // sealed once a send occurs past this time
	sealed      bool
	discarded   bool // spans an app pause; its utility is meaningless
	outstanding int
	sentBytes   int64
	sentPkts    int
	lostPkts    int
	ackedPkts   int
	sendTimes   []float64 // per retained RTT sample
	rtts        []float64
	lastSend    float64
}

// miResult is a finalized MI ready for the rate controller.
type miResult struct {
	id      int64
	rate    float64 // measured average send rate, Mbps
	target  float64 // the rate the controller asked for, Mbps
	utility float64
	metrics Metrics
}

// monitor owns the MI lifecycle and metric computation, including the
// per-ACK and per-MI noise-tolerance mechanisms.
type monitor struct {
	cfg     *Config
	current *mi
	pending map[int64]*mi
	nextID  int64

	// Per-ACK RTT sample filtering state (§5): consecutive ACK-interval
	// ratio test plus the "ignore until below moving average" latch.
	lastAckAt    float64
	lastInterval float64
	ewmaRTT      *stats.EWMA
	filtering    bool
	filteredOut  int64

	noise   *noiseState
	devEWMA stats.EWMA
}

func newMonitor(cfg *Config) *monitor {
	return &monitor{
		cfg:     cfg,
		pending: make(map[int64]*mi),
		ewmaRTT: stats.NewEWMA(),
		noise:   newNoiseState(cfg),
		devEWMA: stats.EWMA{Alpha: 0.25, Beta: 0.25},
	}
}

// beginMI opens a fresh MI at the given target rate.
func (mo *monitor) beginMI(now, targetMbps, srtt float64) *mi {
	dur := mo.cfg.MIMin
	if srtt > 0 {
		d := srtt * mo.cfg.MIRTTMult
		// Jitter the MI length slightly (±10%) so competing senders do
		// not phase-lock their probing.
		d *= 1 + 0.2*(mo.cfg.Rng.Float64()-0.5)
		if d > dur {
			dur = d
		}
	}
	mo.nextID++
	m := &mi{
		id:         mo.nextID,
		targetMbps: targetMbps,
		start:      now,
		end:        now + dur,
	}
	mo.current = m
	mo.pending[m.id] = m
	return m
}

// onSend records a transmitted packet against the current MI and reports
// whether the MI's time is up (the controller should roll to the next).
func (mo *monitor) onSend(now float64, bytes int) (miID int64, expired bool) {
	m := mo.current
	m.outstanding++
	m.sentPkts++
	m.sentBytes += int64(bytes)
	m.lastSend = now
	return m.id, now >= m.end
}

// seal marks the current MI as no longer accepting packets. If every
// packet of the MI was already acknowledged before sealing (possible at
// low rates, where the pacing gap exceeds the RTT), the MI finalizes
// right here — otherwise it would wait forever for an ack that already
// came.
func (mo *monitor) seal(now float64, u UtilityFunc) (miResult, bool) {
	m := mo.current
	if m == nil || m.sealed {
		return miResult{}, false
	}
	m.sealed = true
	if m.lastSend > m.start {
		m.end = m.lastSend
	}
	return mo.maybeFinalize(m, u)
}

// discardOpen marks every unfinished MI as discarded (app pause) and
// returns how many were affected.
func (mo *monitor) discardOpen() int64 {
	n := int64(0)
	for _, m := range mo.pending {
		if !m.discarded {
			m.discarded = true
			n++
		}
	}
	return n
}

// ackFilter implements §5 per-ACK RTT sample filtering: when the ratio
// between two consecutive ACK intervals exceeds the threshold, RTT
// samples are ignored until one falls below the EWMA RTT average.
// Returns true when the sample should be kept.
//
// The interval clock is the receiver-side arrival stamp, not the
// sender-side ack arrival time: the burstiness the filter guards
// against (ack compression distorting RTT samples) is a data-path
// property, visible in the spacing of arrivals at the receiver, while
// sender-side spacing additionally carries reverse-path and host
// scheduling jitter. On a real wire that jitter trips the ratio test
// spuriously — worst of all during the slow-start overload transient,
// where the filter would then discard the climbing RTTs that are the
// exit signal, because no sample dips below the EWMA until the queue
// drains.
func (mo *monitor) ackFilter(recvAt, rtt float64) bool {
	if mo.cfg.UseAckFilter {
		if mo.lastAckAt > 0 {
			interval := recvAt - mo.lastAckAt
			if mo.lastInterval > 0 && interval > mo.cfg.AckIntervalRatio*mo.lastInterval {
				mo.filtering = true
			}
			mo.lastInterval = interval
		}
		mo.lastAckAt = recvAt
		if mo.filtering {
			if mo.ewmaRTT.Initialized() && rtt < mo.ewmaRTT.Avg() {
				mo.filtering = false
			} else {
				mo.filteredOut++
				mo.ewmaRTT.Add(rtt)
				return false
			}
		}
	} else {
		mo.lastAckAt = recvAt
	}
	mo.ewmaRTT.Add(rtt)
	return true
}

// onAck records an acknowledgment for MI miID, recvAt being the
// receiver-side arrival stamp used as the ack filter's interval clock.
// If that MI is now complete, its result is returned.
func (mo *monitor) onAck(recvAt float64, miID int64, sentAt, rtt float64, u UtilityFunc) (miResult, bool) {
	m, ok := mo.pending[miID]
	if !ok {
		return miResult{}, false
	}
	m.outstanding--
	m.ackedPkts++
	if mo.ackFilter(recvAt, rtt) {
		// Packets released in one pacing train share a send timestamp.
		// Collapse them to the train head's (minimum) RTT: the tail of a
		// train queues behind its own siblings, which says nothing about
		// the network, and the induced send-time-correlated ramp would
		// otherwise read as a (heavily penalized) RTT gradient.
		if n := len(m.sendTimes); n > 0 && m.sendTimes[n-1] == sentAt {
			if rtt < m.rtts[n-1] {
				m.rtts[n-1] = rtt
			}
		} else {
			m.sendTimes = append(m.sendTimes, sentAt)
			m.rtts = append(m.rtts, rtt)
		}
	}
	return mo.maybeFinalize(m, u)
}

// onLoss records a loss for MI miID, possibly completing it.
func (mo *monitor) onLoss(miID int64, u UtilityFunc) (miResult, bool) {
	m, ok := mo.pending[miID]
	if !ok {
		return miResult{}, false
	}
	m.outstanding--
	m.lostPkts++
	return mo.maybeFinalize(m, u)
}

func (mo *monitor) maybeFinalize(m *mi, u UtilityFunc) (miResult, bool) {
	if !m.sealed || m.outstanding > 0 {
		return miResult{}, false
	}
	delete(mo.pending, m.id)
	if m.discarded || m.sentPkts == 0 {
		return miResult{}, false
	}
	met := mo.computeMetrics(m)
	dur := m.end - m.start
	if dur <= 0 {
		dur = mo.cfg.MIMin
	}
	return miResult{
		id:      m.id,
		rate:    float64(m.sentBytes) * 8 / dur / 1e6,
		target:  m.targetMbps,
		utility: u.Utility(met),
		metrics: met,
	}, true
}

// computeMetrics derives the MI's performance metrics and applies the
// per-MI regression-error tolerance and the MI-history trending
// tolerance (§5).
func (mo *monitor) computeMetrics(m *mi) Metrics {
	dur := m.end - m.start
	if dur <= 0 {
		dur = mo.cfg.MIMin
	}
	met := Metrics{
		Duration: dur,
		// Utility is computed on the commanded rate: the pacer hits the
		// target by construction over any horizon longer than one train,
		// while the bytes-sent estimate inside a short MI is quantized by
		// train boundaries and would corrupt hi/lo probe comparisons.
		RateMbps: m.targetMbps,
		LossRate: float64(m.lostPkts) / float64(m.sentPkts),
	}
	if len(m.rtts) >= 2 {
		reg := stats.LinearRegression(m.sendTimes, m.rtts)
		met.AvgRTT = stats.Mean(m.rtts)
		met.RTTGradient = reg.Slope
		met.RTTDeviation = stats.StdDev(m.rtts)

		gradZero, devZero := false, false
		switch {
		case mo.cfg.UseRegressionTolerance:
			// Regression error, normalized by MI duration so it is
			// commensurate with the gradient (a relative error). A fit on
			// fewer than four points has a near-zero residual by
			// construction, so it cannot vouch for its own slope: treat
			// it as noise (the trending veto below can still restore it).
			regErr := reg.Residual / dur
			if abs(met.RTTGradient) < regErr || len(m.rtts) < 4 {
				gradZero, devZero = true, true
			}
		case mo.cfg.FixedGradTolerance > 0:
			// Vivace-style flat tolerance on the gradient only.
			if abs(met.RTTGradient) < mo.cfg.FixedGradTolerance {
				gradZero = true
			}
		}
		if mo.cfg.UseTrending {
			gradAnomalous, devAnomalous := mo.noise.observe(met)
			// Trending veto: a sample several deviations from its moving
			// average is statistically unlikely to be noise and must not
			// be ignored, even when within per-MI tolerance.
			if gradAnomalous {
				gradZero = false
			}
			if devAnomalous {
				devZero = false
			}
		}
		if gradZero {
			met.RTTGradient = 0
		}
		if devZero {
			met.RTTDeviation = 0
		}
	} else if len(m.rtts) >= 1 {
		met.AvgRTT = stats.Mean(m.rtts)
	}
	// The deviation the utility sees is smoothed over the last few MIs.
	// Raw per-MI deviation is wave-phase noise: whether a transient queue
	// oscillation happened to overlap this particular MI is a coin flip,
	// and feeding that coin flip into hi/lo probe comparisons randomizes
	// the scavenger's decisions. The smoothed level turns the deviation
	// term into a consistent bias: −d·σ̄·Δx on every pair, which is what
	// makes the scavenger drift down while competition persists — and it
	// decays within a few MIs once the channel calms, so recovery stays
	// prompt.
	mo.devEWMA.Add(met.RTTDeviation)
	met.RTTDeviation = mo.devEWMA.Avg()
	return met
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
