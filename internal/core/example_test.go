package core_test

import (
	"fmt"
	"math"

	"pccproteus/internal/core"
)

func ExampleScavenger_Utility() {
	s := core.NewScavenger()
	calm := core.Metrics{RateMbps: 20}
	contested := core.Metrics{RateMbps: 20, RTTDeviation: 0.002}
	fmt.Printf("calm=%.1f contested=%.1f\n", s.Utility(calm), s.Utility(contested))
	// Output: calm=14.8 contested=-185.2
}

func ExampleHybrid_SetThreshold() {
	h := core.NewHybrid()
	h.SetThreshold(15) // primary below 15 Mbps, scavenger above
	below := core.Metrics{RateMbps: 10, RTTDeviation: 0.002}
	above := core.Metrics{RateMbps: 20, RTTDeviation: 0.002}
	fmt.Printf("below-penalized=%v above-penalized=%v\n",
		h.Utility(below) < h.P.Utility(below),
		h.Utility(above) < h.P.Utility(above))
	// Output: below-penalized=false above-penalized=true
}

func ExampleCustom() {
	// A custom utility that only cares about loss (an Allegro-like app
	// policy), showing the open utility library of §3.
	u := &core.Custom{
		Label: "loss-only",
		Fn: func(m core.Metrics) float64 {
			return math.Pow(m.RateMbps, 0.9) - 20*m.RateMbps*m.LossRate
		},
	}
	fmt.Printf("%s %.1f\n", u.Name(), u.Utility(core.Metrics{RateMbps: 10, LossRate: 0.01}))
	// Output: loss-only 5.9
}
