package core

import (
	"fmt"
	"os"
	"testing"

	"pccproteus/internal/netem"
	"pccproteus/internal/sim"
	"pccproteus/internal/transport"
)

// TestDiagYield dumps per-MI traces for the P-vs-S scenario. Run with
// PROTEUS_DIAG=1 to see the output; it is a development aid, not an
// assertion.
func TestDiagYield(t *testing.T) {
	if os.Getenv("PROTEUS_DIAG") == "" {
		t.Skip("set PROTEUS_DIAG=1 for diagnostics")
	}
	s := sim.New(2)
	path := newTestLink(s, 50, 375000, 0.030)
	ccP := NewProteusP(s.Rand())
	ccS := NewProteusS(s.Rand())
	p := transport.NewSender(1, path, ccP)
	scv := transport.NewSender(2, path, ccS)
	ccS.Trace = func(ev TraceEvent) {
		if s.Now() > 100 && s.Now() < 102 {
			fmt.Printf("S t=%6.2f mi=%4d tgt=%6.2f meas=%6.2f u=%8.2f grad=%+.5f dev=%.5f loss=%.3f base=%6.2f %s\n",
				s.Now(), ev.MIID, ev.Target, ev.Measured, ev.Utility,
				ev.Metrics.RTTGradient, ev.Metrics.RTTDeviation, ev.Metrics.LossRate, ev.BaseRate, ev.State)
		}
	}
	ccP.Trace = func(ev TraceEvent) {
		if s.Now() > 100 && s.Now() < 102 {
			fmt.Printf("P t=%6.2f mi=%4d tgt=%6.2f meas=%6.2f u=%8.2f grad=%+.5f dev=%.5f loss=%.3f base=%6.2f %s\n",
				s.Now(), ev.MIID, ev.Target, ev.Measured, ev.Utility,
				ev.Metrics.RTTGradient, ev.Metrics.RTTDeviation, ev.Metrics.LossRate, ev.BaseRate, ev.State)
		}
	}
	p.Start()
	scv.Start()
	lastP, lastS := int64(0), int64(0)
	for ts := 5.0; ts <= 120; ts += 5 {
		ts := ts
		s.At(ts, func() {
			dp := float64(p.AckedBytes()-lastP) * 8 / 5 / 1e6
			ds := float64(scv.AckedBytes()-lastS) * 8 / 5 / 1e6
			lastP, lastS = p.AckedBytes(), scv.AckedBytes()
			fmt.Printf("== t=%5.1f  P=%6.2f Mbps  S=%6.2f Mbps  (P stats %+v)\n", ts, dp, ds, ccSstats(ccS))
		})
	}
	s.Run(120)
}

func ccSstats(c *Controller) Stats { return c.Stats() }

// TestDiagLoss dumps traces for the 2% random-loss scenario.
func TestDiagLoss(t *testing.T) {
	if os.Getenv("PROTEUS_DIAG") == "" {
		t.Skip("set PROTEUS_DIAG=1 for diagnostics")
	}
	s := sim.New(8)
	path := newTestLink(s, 50, 375000, 0.030)
	path.Link.LossProb = 0.02
	cc := NewProteusP(s.Rand())
	snd := transport.NewSender(1, path, cc)
	cc.Trace = func(ev TraceEvent) {
		if s.Now() > 30 && s.Now() < 36 {
			fmt.Printf("t=%6.2f mi=%4d tgt=%6.2f u=%8.2f grad=%+.5f loss=%.3f base=%6.2f\n",
				s.Now(), ev.MIID, ev.Target, ev.Utility,
				ev.Metrics.RTTGradient, ev.Metrics.LossRate, ev.BaseRate)
		}
	}
	snd.Start()
	last := int64(0)
	for ts := 5.0; ts <= 100; ts += 5 {
		ts := ts
		s.At(ts, func() {
			d := float64(snd.AckedBytes()-last) * 8 / 5 / 1e6
			last = snd.AckedBytes()
			fmt.Printf("== t=%5.1f  tput=%6.2f Mbps  rate=%6.2f  %+v\n", ts, d, cc.RateMbps(), cc.Stats())
		})
	}
	s.Run(100)
}

// TestDiagNoisy traces Proteus-P on a jittery link.
func TestDiagNoisy(t *testing.T) {
	if os.Getenv("PROTEUS_DIAG") == "" {
		t.Skip("diag")
	}
	s := sim.New(9)
	path := newTestLink(s, 50, 375000, 0.030)
	path.Link.Jitter = noisyJitter()
	cc := NewProteusP(s.Rand())
	snd := transport.NewSender(1, path, cc)
	n := 0
	cc.Trace = func(ev TraceEvent) {
		n++
		if n%20 == 0 && s.Now() < 30 {
			fmt.Printf("t=%6.2f mi=%4d tgt=%6.2f u=%9.2f grad=%+.5f dev=%.5f loss=%.3f base=%6.2f samples-avgRTT=%.4f\n",
				s.Now(), ev.MIID, ev.Target, ev.Utility,
				ev.Metrics.RTTGradient, ev.Metrics.RTTDeviation, ev.Metrics.LossRate, ev.BaseRate, ev.Metrics.AvgRTT)
		}
	}
	snd.Start()
	last := int64(0)
	for ts := 5.0; ts <= 60; ts += 5 {
		ts := ts
		s.At(ts, func() {
			d := float64(snd.AckedBytes()-last) * 8 / 5 / 1e6
			last = snd.AckedBytes()
			fmt.Printf("== t=%5.1f tput=%6.2f rate=%6.2f %+v\n", ts, d, cc.RateMbps(), cc.Stats())
		})
	}
	s.Run(60)
}

func noisyJitter() netem.SpikeNoise {
	return netem.SpikeNoise{
		Base:      netem.LognormalNoise{Median: 0.001, Sigma: 0.8},
		SpikeProb: 0.001, SpikeMin: 0.01, SpikeMax: 0.03,
	}
}
