package core

import (
	"math"
	"math/rand"

	"pccproteus/internal/stats"
	"pccproteus/internal/trace"
	"pccproteus/internal/transport"
)

// Config parameterizes the framework. Zero values are filled in by
// (*Config).withDefaults; construct presets with VivaceConfig or
// ProteusConfig.
type Config struct {
	Rng *rand.Rand // required: the simulation's deterministic source

	// Monitor intervals.
	MIMin        float64 // minimum MI duration, seconds
	MIRTTMult    float64 // MI duration as a multiple of smoothed RTT
	MinPktsPerMI int     // an MI does not seal until it carries this many packets

	// Rate control.
	InitialRateMbps float64
	MinRateMbps     float64
	MaxRateMbps     float64
	Epsilon         float64 // probing rate perturbation (±ε)
	ProbePairs      int     // 2 = Vivace consistency, 3 = Proteus majority rule
	Theta0          float64 // gradient→rate conversion factor, Mbps per utility-slope unit
	OmegaInit       float64 // initial rate-change boundary, fraction of rate
	OmegaStep       float64 // boundary growth per consecutive boundary hit
	AmpMax          int     // cap on the confidence amplifier

	// Noise tolerance (§5).
	UseAckFilter           bool    // per-ACK RTT sample filtering
	AckIntervalRatio       float64 // consecutive ACK-interval ratio threshold (50)
	UseRegressionTolerance bool    // per-MI regression-error tolerance
	FixedGradTolerance     float64 // Vivace-style flat tolerance (used when regression tolerance is off)
	UseTrending            bool    // MI-history trending tolerance
	TrendK                 int     // MIs of history (6)
	G1, G2                 float64 // anomaly thresholds (2, 4)
	NoiseWarmupMIs         int     // MIs of full-gain noise-model learning
}

func (c Config) withDefaults() Config {
	if c.MIMin == 0 {
		c.MIMin = 0.010
	}
	if c.MIRTTMult == 0 {
		c.MIRTTMult = 1.5
	}
	if c.MinPktsPerMI == 0 {
		c.MinPktsPerMI = 8
	}
	if c.InitialRateMbps == 0 {
		c.InitialRateMbps = 1.0
	}
	if c.MinRateMbps == 0 {
		c.MinRateMbps = 0.1
	}
	if c.MaxRateMbps == 0 {
		c.MaxRateMbps = 10000
	}
	if c.Epsilon == 0 {
		c.Epsilon = 0.05
	}
	if c.ProbePairs == 0 {
		c.ProbePairs = 3
	}
	if c.Theta0 == 0 {
		c.Theta0 = 0.5
	}
	if c.OmegaInit == 0 {
		c.OmegaInit = 0.05
	}
	if c.OmegaStep == 0 {
		c.OmegaStep = 0.10
	}
	if c.AmpMax == 0 {
		c.AmpMax = 50
	}
	if c.AckIntervalRatio == 0 {
		c.AckIntervalRatio = 50
	}
	if c.TrendK == 0 {
		c.TrendK = 6
	}
	if c.G1 == 0 {
		c.G1 = 2
	}
	if c.G2 == 0 {
		c.G2 = 4
	}
	if c.NoiseWarmupMIs == 0 {
		c.NoiseWarmupMIs = 24
	}
	return c
}

// ProteusConfig returns the full Proteus configuration: majority-of-three
// probing and all four noise-tolerance mechanisms enabled.
func ProteusConfig(rng *rand.Rand) Config {
	return Config{
		Rng:                    rng,
		ProbePairs:             3,
		UseAckFilter:           true,
		UseRegressionTolerance: true,
		UseTrending:            true,
	}.withDefaults()
}

// VivaceConfig returns the PCC Vivace baseline configuration: two-pair
// consistency probing and only a fixed gradient-tolerance threshold.
func VivaceConfig(rng *rand.Rand) Config {
	return Config{
		Rng:                rng,
		ProbePairs:         2,
		FixedGradTolerance: 0.005,
	}.withDefaults()
}

type ctrlState int

const (
	stateStarting ctrlState = iota
	stateProbing
)

func (s ctrlState) String() string {
	if s == stateStarting {
		return "starting"
	}
	return "probing"
}

// Stats carries controller-internal counters for diagnostics and the
// ablation experiments.
type Stats struct {
	MIsCompleted   int64
	MIsDiscarded   int64
	RTTFilteredOut int64
	DecisionsUp    int64
	DecisionsDown  int64
	ProbesRepeated int64
	UtilitySwaps   int64
	Outages        int64
	Recoveries     int64
}

// Controller is the Proteus/Vivace congestion controller: a utility
// module plus the gradient-based rate-control module, implementing
// transport.Controller. One instance drives one flow.
type Controller struct {
	cfg  Config
	util UtilityFunc
	mon  *monitor

	label string
	state ctrlState
	rate  float64 // base sending rate, Mbps

	// Starting state.
	startPrevUtil float64
	startPrevSet  bool
	startPrevRate float64
	startEvalRate float64 // the doubled rate whose utility we await

	// Probing state bookkeeping. probeQueue holds rates for MIs not yet
	// begun; probeSlot maps a live MI id to its slot (pair*2 + position);
	// probeUtil/probeRate record finalized results.
	probeQueue []float64
	probeSlot  map[int64]int
	probeUtil  []float64
	probeRate  []float64
	probeGot   int

	// Gradient-step state: confidence amplifier and dynamic boundary,
	// carried across consecutive same-direction decisions.
	dir   float64
	amp   int
	omega float64

	nextUtil UtilityFunc // swap applied at the next MI boundary
	paused   bool

	// Trace, when set, receives every finalized MI result plus the
	// controller's post-decision state — the hook the timeline figures
	// and the diagnostics use.
	Trace func(ev TraceEvent)

	// tr is the flight-recorder handle, bound by the transport sender
	// at Start (via transport.TraceAware); disabled by default.
	tr trace.Tracer

	stats Stats
}

// TraceEvent reports one finalized monitor interval.
type TraceEvent struct {
	MIID     int64
	Target   float64 // the rate the MI was asked to run at, Mbps
	Measured float64 // the rate it actually achieved, Mbps
	Utility  float64
	Metrics  Metrics
	BaseRate float64 // controller base rate after processing this result
	State    string
}

// New creates a controller with the given configuration and utility
// function. Use the preset constructors below for the paper's variants.
func New(label string, cfg Config, util UtilityFunc) *Controller {
	cfg = cfg.withDefaults()
	c := &Controller{
		cfg:           cfg,
		util:          util,
		label:         label,
		state:         stateStarting,
		rate:          cfg.InitialRateMbps,
		startEvalRate: cfg.InitialRateMbps,
		omega:         cfg.OmegaInit,
	}
	c.mon = newMonitor(&c.cfg)
	return c
}

// NewProteusP returns Proteus in primary mode.
func NewProteusP(rng *rand.Rand) *Controller {
	return New("proteus-p", ProteusConfig(rng), NewPrimary())
}

// NewProteusS returns Proteus in scavenger mode.
func NewProteusS(rng *rand.Rand) *Controller {
	return New("proteus-s", ProteusConfig(rng), NewScavenger())
}

// NewProteusH returns Proteus in hybrid mode together with the Hybrid
// utility so callers can adjust the switching threshold.
func NewProteusH(rng *rand.Rand) (*Controller, *Hybrid) {
	h := NewHybrid()
	return New("proteus-h", ProteusConfig(rng), h), h
}

// NewVivace returns the PCC Vivace baseline.
func NewVivace(rng *rand.Rand) *Controller {
	return New("vivace", VivaceConfig(rng), NewVivaceUtility())
}

// Name implements transport.Controller.
func (c *Controller) Name() string { return c.label }

// RateMbps returns the controller's current base sending rate.
func (c *Controller) RateMbps() float64 { return c.rate }

// State returns the rate-control state name (starting/probing/moving).
func (c *Controller) State() string { return c.state.String() }

// Utility returns the active utility function.
func (c *Controller) Utility() UtilityFunc { return c.util }

// Stats returns a snapshot of internal counters.
func (c *Controller) Stats() Stats {
	s := c.stats
	s.RTTFilteredOut = c.mon.filteredOut
	return s
}

// SetUtility swaps the utility function at the next MI boundary — the
// flexibility API of §3: "a simple API call", usable mid-flow.
func (c *Controller) SetUtility(u UtilityFunc) {
	c.nextUtil = u
	c.stats.UtilitySwaps++
}

// SetTracer implements transport.TraceAware: the controller emits
// MIDecision, UtilitySample, RateChange, and ModeSwitch events at its
// decision points when a flight recorder is attached.
func (c *Controller) SetTracer(t trace.Tracer) { c.tr = t }

// OnAppPause implements transport.PauseAware: open MIs spanning an
// application stall are discarded, their utility being meaningless.
func (c *Controller) OnAppPause(now float64) {
	c.paused = true
	c.stats.MIsDiscarded += c.mon.discardOpen()
	c.abortDecisionState(now)
}

// OnAppResume implements transport.PauseAware.
func (c *Controller) OnAppResume(float64) {
	c.paused = false
	c.mon.current = nil // force a fresh MI on the next send
}

// OnOutage implements transport.OutageAware: the sender's stall
// watchdog detected a path outage. Open monitor intervals are
// discarded (their utility is meaningless) and the controller freezes —
// no acks will arrive, so any decision made now would only encode the
// outage itself into the gradient state.
func (c *Controller) OnOutage(now float64) {
	c.stats.Outages++
	c.paused = true
	c.stats.MIsDiscarded += c.mon.discardOpen()
	c.abortDecisionState(now)
	c.tr.ModeSwitch(now, "outage", c.rate)
}

// OnRecovery implements transport.OutageAware: the path healed. The
// controller resumes from resumeRate — the rate that was actually
// being delivered before the outage (bytes/sec; 0 keeps the current
// rate) — with the gradient state reset, re-entering probing exactly
// as after a utility swap. Without this, the loss flood from packets
// sent into the outage would have rate-collapsed the gradient
// machinery, and re-climbing from the floor takes many seconds the
// recovery invariant does not allow.
func (c *Controller) OnRecovery(now float64, resumeRate float64) {
	c.stats.Recoveries++
	c.paused = false
	if resumeRate > 0 {
		prev := c.rate
		c.rate = c.clampRate(resumeRate * 8 / 1e6)
		c.tr.RateChange(now, c.rate, prev, 0, 0, "recover")
	}
	c.dir = 0
	c.amp = 0
	c.omega = c.cfg.OmegaInit
	c.startPrevSet = false
	c.mon.current = nil // force a fresh MI on the next send
	c.tr.ModeSwitch(now, "recover", c.rate)
	c.enterProbing(now)
}

// abortDecisionState returns to probing from any half-made decision.
func (c *Controller) abortDecisionState(now float64) {
	if c.state != stateStarting {
		c.enterProbing(now)
	}
}

// OnSend implements transport.Controller: rolls monitor intervals and
// tags each packet with its MI.
func (c *Controller) OnSend(now float64, pkt *transport.SentPacket) {
	cur := c.mon.current
	if cur == nil || cur.sealed ||
		(now >= cur.end && cur.sentPkts >= c.cfg.MinPktsPerMI) {
		c.rollMI(now)
	}
	c.mon.onSend(now, pkt.Size)
	pkt.MI = c.mon.current.id
}

func (c *Controller) rollMI(now float64) {
	if res, ok := c.mon.seal(now, c.util); ok {
		c.handleResult(now, res)
	}
	if c.nextUtil != nil {
		if c.tr.Enabled(trace.KindModeSwitch) {
			c.tr.ModeSwitch(now, "utility:"+c.nextUtil.Name(), c.rate)
		}
		c.util = c.nextUtil
		c.nextUtil = nil
	}
	target := c.rate
	if c.state == stateProbing && len(c.probeQueue) > 0 {
		target = c.probeQueue[0]
		c.probeQueue = c.probeQueue[1:]
		m := c.mon.beginMI(now, target, c.srtt())
		c.probeSlot[m.id] = c.probeGotAssigned()
		return
	}
	c.mon.beginMI(now, target, c.srtt())
}

// probeGotAssigned returns the next unassigned probe slot index.
func (c *Controller) probeGotAssigned() int {
	n := 2*c.cfg.ProbePairs - (len(c.probeQueue) + 1)
	return n
}

func (c *Controller) srtt() float64 {
	if c.mon.ewmaRTT.Initialized() {
		return c.mon.ewmaRTT.Avg()
	}
	return 0
}

// OnAck implements transport.Controller.
func (c *Controller) OnAck(ack transport.Ack) {
	// The monitor's ack filter clocks intervals on the receiver-side
	// arrival stamp (immune to reverse-path jitter); transports that do
	// not stamp arrivals fall back to the sender-side ack time.
	recvAt := ack.RecvAt
	if recvAt <= 0 {
		recvAt = ack.Now
	}
	res, done := c.mon.onAck(recvAt, ack.MI, ack.SentAt, ack.RTT, c.util)
	if done {
		c.handleResult(ack.Now, res)
	}
}

// OnLoss implements transport.Controller.
func (c *Controller) OnLoss(loss transport.Loss) {
	res, done := c.mon.onLoss(loss.MI, c.util)
	if done {
		c.handleResult(loss.Now, res)
	}
}

// PacingRate implements transport.Controller: the target rate of the MI
// in progress (probe MIs perturb the base rate by ±ε).
func (c *Controller) PacingRate() float64 {
	r := c.rate
	if cur := c.mon.current; cur != nil && !cur.sealed {
		r = cur.targetMbps
	}
	return r * 1e6 / 8
}

// CWnd implements transport.Controller. Proteus is purely rate-based;
// the window is only a safety cap of 4·rate·max(srtt, 100ms) to bound
// in-flight state on pathological paths.
func (c *Controller) CWnd() float64 {
	srtt := c.srtt()
	if srtt < 0.1 {
		srtt = 0.1
	}
	return 4 * (c.rate * 1e6 / 8) * srtt
}

// --- decision logic ---

func (c *Controller) handleResult(now float64, res miResult) {
	c.stats.MIsCompleted++
	switch c.state {
	case stateStarting:
		c.handleStarting(now, res)
	case stateProbing:
		c.handleProbing(now, res)
	}
	c.tr.MIDecision(now, res.id, res.target, res.rate, res.utility, c.rate, c.state.String())
	if c.tr.Enabled(trace.KindUtilitySample) {
		c.tr.UtilitySample(now, res.id, res.utility,
			res.metrics.RTTGradient, res.metrics.RTTDeviation, res.metrics.LossRate,
			c.util.Name())
	}
	if c.Trace != nil {
		c.Trace(TraceEvent{
			MIID: res.id, Target: res.target, Measured: res.rate,
			Utility: res.utility, Metrics: res.metrics,
			BaseRate: c.rate, State: c.state.String(),
		})
	}
}

// handleStarting doubles the rate each round while utility keeps growing
// (slow-start analog), then falls back to the last good rate and starts
// probing. Because MI results lag the rate changes by roughly one RTT,
// several MIs run at each rate; only the first result at the rate under
// evaluation counts.
func (c *Controller) handleStarting(now float64, res miResult) {
	if res.target != c.startEvalRate {
		return // stale result from before the last doubling
	}
	if !c.startPrevSet || res.utility > c.startPrevUtil {
		c.startPrevSet = true
		c.startPrevUtil = res.utility
		c.startPrevRate = c.rate
		c.rate = c.clampRate(c.rate * 2)
		if c.rate > c.startPrevRate {
			c.tr.RateChange(now, c.rate, c.startPrevRate, 0, 1, "double")
			c.startEvalRate = c.rate
			return
		}
		// Hit the rate cap: nothing left to double into.
	}
	prev := c.rate
	c.rate = c.startPrevRate
	c.tr.RateChange(now, c.rate, prev, 0, 1, "fallback")
	c.enterProbing(now)
}

func (c *Controller) enterProbing(now float64) {
	if c.state != stateProbing {
		c.tr.ModeSwitch(now, "probing", c.rate)
	}
	c.state = stateProbing
	c.clearProbes()
	c.setupProbes()
}

func (c *Controller) clearProbes() {
	c.probeQueue = nil
	c.probeSlot = make(map[int64]int)
	c.probeUtil = make([]float64, 2*c.cfg.ProbePairs)
	c.probeRate = make([]float64, 2*c.cfg.ProbePairs)
	c.probeGot = 0
}

// setupProbes schedules ProbePairs pairs of MIs at rate·(1±ε), each pair
// in random order (§5 majority rule: Proteus uses three pairs and takes
// the majority direction; Vivace uses two and requires consistency).
func (c *Controller) setupProbes() {
	eps := c.cfg.Epsilon
	hi := c.clampRate(c.rate * (1 + eps))
	lo := c.clampRate(c.rate * (1 - eps))
	for p := 0; p < c.cfg.ProbePairs; p++ {
		if c.cfg.Rng.Intn(2) == 0 {
			c.probeQueue = append(c.probeQueue, hi, lo)
		} else {
			c.probeQueue = append(c.probeQueue, lo, hi)
		}
	}
}

func (c *Controller) handleProbing(now float64, res miResult) {
	slot, ok := c.probeSlot[res.id]
	if !ok {
		return // a filler MI at the base rate while results trickle in
	}
	delete(c.probeSlot, res.id)
	idx := slot
	if idx < 0 || idx >= len(c.probeUtil) {
		return
	}
	c.probeUtil[idx] = res.utility
	c.probeRate[idx] = res.target
	c.probeGot++
	if c.probeGot < 2*c.cfg.ProbePairs {
		return
	}
	c.decideFromProbes(now)
}

// decideFromProbes tallies the per-pair votes and either moves the rate
// in the majority direction or re-probes on a tie.
func (c *Controller) decideFromProbes(now float64) {
	votes := 0
	var grads []float64
	pairs := c.cfg.ProbePairs
	for p := 0; p < pairs; p++ {
		u1, u2 := c.probeUtil[2*p], c.probeUtil[2*p+1]
		r1, r2 := c.probeRate[2*p], c.probeRate[2*p+1]
		if r1 == r2 {
			continue
		}
		g := (u1 - u2) / (r1 - r2)
		grads = append(grads, g)
		if g > 0 {
			votes++
		} else if g < 0 {
			votes--
		}
	}
	if len(grads) == 0 {
		c.clearProbes()
		c.setupProbes()
		return
	}
	var grad float64
	var conclusive bool
	var dir float64
	if pairs >= 3 {
		// Proteus majority rule (§5): the median pair gradient has the
		// majority's sign by construction and discards the magnitude of
		// an outlier pair — one probe MI that randomly caught a transient
		// congestion spike (or a loss burst) must not dictate the step
		// size of the whole decision.
		grad = stats.Median(grads)
		conclusive = grad != 0
		if grad > 0 {
			dir = 1
		} else {
			dir = -1
		}
	} else {
		// Vivace consistency rule: both pairs must agree on direction.
		sum := 0.0
		for _, g := range grads {
			sum += g
		}
		grad = sum / float64(len(grads))
		conclusive = votes >= pairs || -votes >= pairs
		if votes > 0 {
			dir = 1
		} else {
			dir = -1
		}
	}
	if conclusive {
		c.applyDecision(now, dir, grad)
		return
	}
	// Inconclusive: keep the rate and test the same pair of rates again
	// — the slow ramp-up §5's majority rule addresses.
	c.stats.ProbesRepeated++
	c.dir = 0
	c.amp = 1
	c.omega = c.cfg.OmegaInit
	c.clearProbes()
	c.setupProbes()
}

// applyDecision performs one gradient-ascent rate change after a
// conclusive probing round: Δ = θ0·m·|grad|, bounded by the dynamic
// boundary ω·rate. The confidence amplifier m grows across consecutive
// same-direction decisions and resets on a direction flip; the boundary
// ω grows only while consecutive steps keep hitting it (Vivace's
// confidence-amplified rate controller). The controller then immediately
// probes again around the new rate.
func (c *Controller) applyDecision(now, dir, grad float64) {
	if dir == c.dir {
		if c.amp < c.cfg.AmpMax {
			c.amp++
		}
	} else {
		c.amp = 1
		c.omega = c.cfg.OmegaInit
	}
	c.dir = dir
	if dir > 0 {
		c.stats.DecisionsUp++
	} else {
		c.stats.DecisionsDown++
	}
	raw := c.cfg.Theta0 * float64(c.amp) * math.Abs(grad)
	bound := c.omega * c.rate
	step := raw
	if step >= bound {
		step = bound
		c.omega += c.cfg.OmegaStep
	} else {
		c.omega = c.cfg.OmegaInit
	}
	if min := c.cfg.MinRateMbps * c.cfg.Epsilon; step < min {
		step = min
	}
	prev := c.rate
	c.rate = c.clampRate(c.rate + dir*step)
	if dir > 0 {
		c.tr.RateChange(now, c.rate, prev, grad, c.amp, "up")
	} else {
		c.tr.RateChange(now, c.rate, prev, grad, c.amp, "down")
	}
	c.clearProbes()
	c.setupProbes()
}

func (c *Controller) clampRate(r float64) float64 {
	if r < c.cfg.MinRateMbps {
		return c.cfg.MinRateMbps
	}
	if r > c.cfg.MaxRateMbps {
		return c.cfg.MaxRateMbps
	}
	return r
}
