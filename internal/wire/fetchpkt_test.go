package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

func TestFetchPacketRoundtrip(t *testing.T) {
	var buf [FetchLen]byte
	cases := []FetchHeader{
		{},
		{ObjID: 0xdeadbeefcafef00d, Seg: 42, Nonce: 7, SentAt: 1_700_000_000_000_000_000},
		{ObjID: 1, Meta: true, Nonce: 999, SentAt: 5},
		{ObjID: ^uint64(0), Seg: 1<<62 - 1, Nonce: 1<<62 - 1, SentAt: 1<<62 - 1},
	}
	for _, h := range cases {
		pkt := EncodeFetch(buf[:], h)
		if len(pkt) != FetchLen {
			t.Fatalf("encoded length %d", len(pkt))
		}
		got, err := DecodeFetch(pkt)
		if err != nil {
			t.Fatalf("decode %+v: %v", h, err)
		}
		if got != h {
			t.Fatalf("roundtrip mismatch: sent %+v got %+v", h, got)
		}
	}
}

func TestDecodeFetchRejectsMalformed(t *testing.T) {
	var buf [FetchLen + 8]byte
	good := EncodeFetch(buf[:], FetchHeader{ObjID: 9, Seg: 3, Nonce: 11, SentAt: 13})

	check := func(name string, b []byte, want error) {
		t.Helper()
		if _, err := DecodeFetch(b); !errors.Is(err, want) {
			t.Fatalf("%s: err=%v want %v", name, err, want)
		}
	}
	check("empty", nil, ErrTruncated)
	check("truncated", good[:FetchLen-1], ErrTruncated)
	check("oversized", buf[:FetchLen+1], ErrOversized)

	mut := func(mutate func(b []byte)) []byte {
		b := append([]byte(nil), good...)
		mutate(b)
		return b
	}
	check("bad type", mut(func(b []byte) { b[0] = typeData }), ErrBadType)
	check("bad version", mut(func(b []byte) { b[1] = wireVersion + 1 }), ErrBadVersion)
	check("undefined flag", mut(func(b []byte) { b[2] = 0x80 }), ErrInconsistent)
	check("negative seg", mut(func(b []byte) { b[3+8] = 0x80 }), ErrInconsistent)
	check("negative nonce", mut(func(b []byte) { b[19] = 0x80 }), ErrInconsistent)
	check("negative stamp", mut(func(b []byte) { b[27] = 0x80 }), ErrInconsistent)
}

func TestSegmentPacketRoundtrip(t *testing.T) {
	var buf [MaxDataLen]byte
	payload := bytes.Repeat([]byte{0xa5, 0x5a, 0x01}, 400)
	h := SegmentHeader{
		Nonce: 77, SentAtEcho: 123456789, Arrival: 987654321,
		ObjID: 0x0123456789abcdef, TotalSegs: 100, ObjSize: 100 * 1200, Seg: 42,
	}
	pkt := EncodeSegment(buf[:], h, payload)
	if len(pkt) != SegmentHeaderLen+len(payload) {
		t.Fatalf("encoded length %d", len(pkt))
	}
	got, p, err := DecodeSegment(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("header mismatch: sent %+v got %+v", h, got)
	}
	if !bytes.Equal(p, payload) {
		t.Fatalf("payload mismatch")
	}
	// The 26-byte prefix is data-packet compatible: StampArrival must
	// rewrite the arrival slot of a segment exactly as it does for data.
	StampArrival(pkt, 42424242)
	got2, _, err := DecodeSegment(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if got2.Arrival != 42424242 {
		t.Fatalf("StampArrival wrote %d", got2.Arrival)
	}
}

func TestSegmentMetaRoundtrip(t *testing.T) {
	var buf [1500]byte
	digest := bytes.Repeat([]byte{0xcd}, DigestLen)
	h := SegmentHeader{Nonce: 5, Meta: true, ObjID: 3, TotalSegs: 9, ObjSize: 8 * 1433}
	pkt := EncodeSegment(buf[:], h, digest)
	got, p, err := DecodeSegment(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Meta || !bytes.Equal(p, digest) {
		t.Fatalf("meta roundtrip: %+v", got)
	}
}

func TestDecodeSegmentRejectsMalformed(t *testing.T) {
	var buf [1500]byte
	payload := bytes.Repeat([]byte{7}, 256)
	good := EncodeSegment(buf[:], SegmentHeader{
		Nonce: 1, TotalSegs: 10, ObjSize: 2560, Seg: 4,
	}, payload)

	check := func(name string, b []byte, want error) {
		t.Helper()
		if _, _, err := DecodeSegment(b); !errors.Is(err, want) {
			t.Fatalf("%s: err=%v want %v", name, err, want)
		}
	}
	mut := func(mutate func(b []byte)) []byte {
		b := append([]byte(nil), good...)
		mutate(b)
		return b
	}
	check("empty", nil, ErrTruncated)
	check("truncated header", good[:SegmentHeaderLen-1], ErrTruncated)
	check("bad type", mut(func(b []byte) { b[0] = typeAck }), ErrBadType)
	check("bad version", mut(func(b []byte) { b[1] = 0 }), ErrBadVersion)
	check("undefined flag", mut(func(b []byte) { b[26] = 0x02 }), ErrInconsistent)
	check("zero totalSegs", mut(func(b []byte) {
		binary.BigEndian.PutUint64(b[35:], 0)
	}), ErrInconsistent)
	check("seg past geometry", mut(func(b []byte) {
		binary.BigEndian.PutUint64(b[51:], 10)
	}), ErrInconsistent)
	check("length mismatch", good[:len(good)-1], ErrInconsistent)
	check("flipped payload bit", mut(func(b []byte) {
		b[SegmentHeaderLen] ^= 0x01
	}), ErrChecksum)
	check("flipped crc", mut(func(b []byte) { b[63] ^= 0x01 }), ErrChecksum)

	// Meta responses must carry exactly a digest for segment zero.
	meta := EncodeSegment(buf[:], SegmentHeader{Meta: true, TotalSegs: 1, ObjSize: 1},
		bytes.Repeat([]byte{1}, DigestLen))
	if _, _, err := DecodeSegment(meta); err != nil {
		t.Fatalf("well-formed meta rejected: %v", err)
	}
	badMeta := EncodeSegment(buf[:], SegmentHeader{Meta: true, TotalSegs: 1, ObjSize: 1},
		bytes.Repeat([]byte{1}, DigestLen-1))
	check("short meta digest", badMeta, ErrInconsistent)
}
