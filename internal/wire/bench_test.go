package wire

import "testing"

// BenchmarkPacerSend measures the steady-state per-packet send path:
// token-bucket advance, OnSend, record from the freelist, header
// encode, socket write (stubbed), and front-pruning after the ack.
// The hot path must stay allocation-free.
func BenchmarkPacerSend(b *testing.B) {
	cc := &countingCC{rate: 125e6, cwnd: 1e12}
	s := newUnitSender(cc)
	now := 0.0
	b.ReportAllocs()
	b.SetBytes(1200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 1e-4
		s.pacer.Advance(now, cc.rate)
		s.pacer.Take(1200)
		s.emit(now, now, 1200)
		rec := s.unacked[len(s.unacked)-1]
		rec.acked = true
		s.inflight -= rec.size
		s.prune()
	}
}

// BenchmarkAckProcess measures the per-ack receive path: ack decode,
// unacked walk, RTT update, OnAck dispatch, RACK scan, and prune —
// one emitted packet per processed ack, as in steady state.
func BenchmarkAckProcess(b *testing.B) {
	cc := &countingCC{rate: 125e6, cwnd: 1e12}
	s := newUnitSender(cc)
	var buf [MaxAckLen]byte
	a := AckPacket{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := float64(i) * 1e-4
		s.emit(now, now, 1200)
		a.Seq = int64(i)
		a.CumAck = int64(i + 1)
		a.RecvAt = s.clock.NanosAt(now)
		pkt := a.Encode(buf[:])
		if err := DecodeAck(pkt, &s.ack); err != nil {
			b.Fatal("decode failed")
		}
		s.processAck(&s.ack)
	}
}
