// Package wire is the real-network datapath: it runs the same
// congestion controllers the simulator drives — anything implementing
// transport.Controller — over actual UDP sockets in real time. It is
// the Pantheon-analogue deployment layer of the reproduction: the
// controller code is byte-for-byte identical between the discrete-event
// simulator and the wire, so matched scenarios can be cross-validated
// (see exp.WireParity and `proteusbench -wire`).
//
// The datapath has four pieces:
//
//   - a compact binary packet format (packet.go): data packets carry a
//     sequence number and a send timestamp; acks carry a cumulative ack,
//     up to four SACK-style blocks, and echoed timestamps so the sender
//     computes per-packet RTT and one-way delay without clock agreement
//     beyond the host's own.
//
//   - a token-bucket pacer (pacer.go) that converts the controller's
//     target rate into spaced multi-packet trains, absorbing OS timer
//     granularity the same way Linux pacing offloads do.
//
//   - an ack-clocked sender (sender.go) and a SACK-tracking receiver
//     (receiver.go): per-packet RTT samples, RACK-style loss declaration
//     (dup-ack count plus a reordering time threshold) and an RTO
//     backstop, all feeding the controller through the same OnSend /
//     OnAck / OnLoss hooks the simulated transport uses — which is what
//     routes wire measurements into the Monitor and noise-filter
//     machinery of internal/core unchanged.
//
//   - an impairment shim (shim.go): an in-process UDP proxy that
//     emulates a bottleneck (serialization at a configurable rate, a
//     tail-drop byte queue, propagation delay, seeded jitter and random
//     loss) on the loopback path, so wire experiments are reproducible
//     on any machine without root or tc/netem privileges.
//
// Concurrency model: each Sender runs two goroutines (a pacing send
// loop and an ack receive loop) serialized by one mutex, so controllers
// — which are not thread-safe — only ever see single-threaded calls.
// The per-packet hot path is allocation-free: headers encode into a
// reused buffer and sent-packet records come from a freelist (guarded
// by BenchmarkPacerSend / BenchmarkAckProcess).
package wire

import "time"

// Clock converts the host's monotonic clock into the float64 seconds
// timeline controllers expect. The zero value is not usable; create
// with NewClock. All times produced by one Clock share its epoch, so
// they are small numbers (seconds since the flow started), matching
// the magnitude the simulator feeds controllers.
type Clock struct {
	epoch time.Time
}

// NewClock returns a clock whose epoch is now.
func NewClock() Clock { return Clock{epoch: time.Now()} }

// Now returns monotonic seconds since the epoch.
func (c Clock) Now() float64 { return time.Since(c.epoch).Seconds() }

// WallNanos returns the wall-clock timestamp placed into packets. Wall
// time is used on the wire (rather than the monotonic reading) so that
// two proteusd processes on one host share a timebase for one-way
// delay; RTT never crosses clock domains.
func (c Clock) WallNanos() int64 { return time.Now().UnixNano() }

// SecondsSince converts a wall-clock packet timestamp into this
// clock's epoch-relative seconds.
func (c Clock) SecondsSince(wallNanos int64) float64 {
	return float64(wallNanos-c.epoch.UnixNano()) / 1e9
}

// NanosAt converts epoch-relative seconds back to a wall timestamp.
func (c Clock) NanosAt(sec float64) int64 {
	return c.epoch.UnixNano() + int64(sec*1e9)
}

// MixSeed derives an independent deterministic seed from (seed, n),
// using the same splitmix64-style finalizer as the experiment
// harness's per-trial seeding (exp.Options.seedFor): every wire
// component (shim jitter, shim loss, demo workloads) draws from its
// own stream so runs with the same -seed are reproducible and runs
// with different seeds are decorrelated. The result is always
// positive; a zero mix is remapped to 1 so it can seed math/rand.
func MixSeed(seed, n int64) int64 {
	x := uint64(n) + uint64(seed)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	s := int64(x)
	if s < 0 {
		s = -s
	}
	if s == 0 {
		s = 1
	}
	return s
}
