package wire

import "testing"

func TestBufPoolReuse(t *testing.T) {
	p := NewBufPool(1024)
	a := p.Get()
	if len(a) != 1024 {
		t.Fatalf("len=%d want 1024", len(a))
	}
	p.Put(a)
	b := p.Get()
	if &a[0] != &b[0] {
		t.Fatal("pool did not reuse the freed buffer")
	}
	if p.Misses() != 1 {
		t.Fatalf("misses=%d want 1", p.Misses())
	}
	// Foreign (undersized) buffers are rejected, not resized.
	p.Put(make([]byte, 8))
	c := p.Get()
	if len(c) != 1024 {
		t.Fatalf("foreign buffer leaked into pool: len=%d", len(c))
	}
	// A Put of a truncated-but-original buffer restores full length.
	p.Put(c[:5])
	d := p.Get()
	if len(d) != 1024 {
		t.Fatalf("truncated put not restored: len=%d", len(d))
	}
}

func TestBufPoolZeroAllocSteadyState(t *testing.T) {
	p := NewBufPool(2048)
	warm := p.Get()
	p.Put(warm)
	allocs := testing.AllocsPerRun(1000, func() {
		b := p.Get()
		p.Put(b)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Get/Put allocates %.1f/op, want 0", allocs)
	}
}
