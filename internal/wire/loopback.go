package wire

import (
	"fmt"
	"net"
	"sort"
	"time"

	"pccproteus/internal/chaos"
	"pccproteus/internal/stats"
	"pccproteus/internal/trace"
	"pccproteus/internal/transport"
)

// LoopbackConfig describes one single-process wire run: a sender, the
// impairment shim, and a receiver wired together over 127.0.0.1
// sockets, running for Duration real seconds.
type LoopbackConfig struct {
	// NewController builds the flow's congestion controller. A factory
	// (rather than an instance) keeps package wire independent of the
	// controller packages; exp supplies one from a protocol name.
	NewController func() transport.Controller

	Shim     ShimConfig
	Duration float64 // real seconds to run
	// MeasureFrom cuts the measurement window [MeasureFrom, Duration]
	// for throughput and RTT statistics, excluding startup.
	MeasureFrom float64
	// Schedule, when non-empty, applies timed impairment updates —
	// the wire-side replay of an adversary schedule.
	Schedule []ShimUpdate
	// Chaos, when non-nil, replays a fault plan against the shim in
	// real time: the same plan a simulated run applies via
	// chaos.ApplySim, so fault schedules cross-validate sim vs wire.
	Chaos *chaos.Plan
	// Recorder optionally captures flight-recorder events from the
	// sender and controller (flow 1).
	Recorder *trace.Recorder
	// PacketSize defaults to netem.MTU.
	PacketSize int
	// Burst defaults to transport.DefaultBurst.
	Burst int
}

// LoopbackResult summarizes one loopback wire run.
type LoopbackResult struct {
	Mbps         float64 // acked throughput over the measurement window
	MeanRTT      float64 // seconds, samples within the window
	P95RTT       float64
	LossRate     float64 // sender-declared lost packets / sent packets
	PerSecMbps   []float64
	CapacityMbps float64 // time-averaged emulated capacity, whole run
	Sender       SenderStats
	Receiver     ReceiverStats
	Shim         ShimStats
}

// RunLoopback executes one wire scenario end to end and blocks for
// cfg.Duration of real time.
func RunLoopback(cfg LoopbackConfig) (*LoopbackResult, error) {
	if cfg.NewController == nil {
		return nil, fmt.Errorf("wire: loopback needs a controller factory")
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 10
	}
	if cfg.MeasureFrom <= 0 || cfg.MeasureFrom >= cfg.Duration {
		cfg.MeasureFrom = cfg.Duration * 0.4
	}

	rconn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, err
	}
	rconn.SetReadBuffer(1 << 21)
	rconn.SetWriteBuffer(1 << 21)
	recv := &Receiver{Conn: rconn}
	if err := recv.Start(); err != nil {
		rconn.Close()
		return nil, err
	}
	defer recv.Stop()

	shim, err := NewShim(cfg.Shim, recv.Addr())
	if err != nil {
		return nil, err
	}
	if err := shim.Start(); err != nil {
		shim.Stop()
		return nil, err
	}
	defer shim.Stop()

	sconn, err := net.DialUDP("udp", nil, shim.Addr())
	if err != nil {
		return nil, err
	}
	sconn.SetReadBuffer(1 << 21)
	sconn.SetWriteBuffer(1 << 21)
	snd := &Sender{
		CC:         cfg.NewController(),
		Conn:       sconn,
		Burst:      cfg.Burst,
		PacketSize: cfg.PacketSize,
		RecordRTT:  true,
		Recorder:   cfg.Recorder,
	}
	if err := snd.Start(); err != nil {
		sconn.Close()
		return nil, err
	}
	defer snd.Stop()

	// Timed impairment updates, sorted and driven from one goroutine.
	if len(cfg.Schedule) > 0 {
		upd := append([]ShimUpdate(nil), cfg.Schedule...)
		sort.Slice(upd, func(i, j int) bool { return upd[i].At < upd[j].At })
		go func() {
			t0 := time.Now()
			for _, u := range upd {
				d := time.Duration(u.At*float64(time.Second)) - time.Since(t0)
				if d > 0 {
					time.Sleep(d)
				}
				shim.Update(u)
			}
		}()
	}

	// Chaos fault plan, replayed in real time against the shim — the
	// wire-side twin of chaos.ApplySim. Restarts flush the shim's
	// in-flight queues and reset the receiver's flow state; every state
	// step lands on the shim atomically and is stamped onto the
	// sender's trace timeline exactly as the simulated applier would.
	if cfg.Chaos != nil {
		plan := cfg.Chaos.Canonical()
		steps := plan.Steps(cfg.Duration)
		go func() {
			t0 := time.Now()
			prev := chaos.PathState{}
			for _, step := range steps {
				sleepUntilReal(t0, step.At)
				if step.Restart {
					shim.Flush()
					recv.Reset()
					snd.NoteFault(string(chaos.KindPeerRestart), 1, 0)
					continue
				}
				shim.SetFault(step.State)
				for _, ev := range chaos.Transitions(prev, step.State) {
					snd.NoteFault(ev.Name, ev.Active, ev.Value)
				}
				prev = step.State
			}
		}()
	}

	// Per-second throughput sampling plus the measurement-window mark.
	nsec := int(cfg.Duration)
	perSec := make([]float64, 0, nsec)
	measIsInt := cfg.MeasureFrom == float64(int(cfg.MeasureFrom))
	var markAcked int64
	t0 := time.Now()
	var last int64
	for sec := 1; sec <= nsec; sec++ {
		sleepUntilReal(t0, float64(sec))
		st := snd.Stats()
		perSec = append(perSec, float64(st.AckedBytes-last)*8/1e6)
		last = st.AckedBytes
		if measIsInt && sec == int(cfg.MeasureFrom) {
			markAcked = st.AckedBytes
		}
	}
	sleepUntilReal(t0, cfg.Duration)
	if !measIsInt {
		// Interpolate the mark from the per-second samples.
		markAcked = ackedAt(perSec, cfg.MeasureFrom)
	}
	capBytes := shim.CapacityBytes()
	final := snd.Stats()
	samples := snd.RTTSamples()

	res := &LoopbackResult{
		PerSecMbps:   perSec,
		Sender:       final,
		Receiver:     recv.Stats(),
		Shim:         shim.Stats(),
		CapacityMbps: capBytes * 8 / 1e6 / cfg.Duration,
	}
	window := cfg.Duration - cfg.MeasureFrom
	if window > 0 {
		res.Mbps = float64(final.AckedBytes-markAcked) * 8 / window / 1e6
	}
	var rtts []float64
	for _, sm := range samples {
		if sm.T >= cfg.MeasureFrom {
			rtts = append(rtts, sm.RTT)
		}
	}
	res.MeanRTT = stats.Mean(rtts)
	res.P95RTT = stats.Percentile(rtts, 95)
	if final.SentPkts > 0 {
		res.LossRate = float64(final.LostPkts) / float64(final.SentPkts)
	}
	return res, nil
}

// sleepUntilReal sleeps until t0+sec of real time has elapsed.
func sleepUntilReal(t0 time.Time, sec float64) {
	d := time.Duration(sec*float64(time.Second)) - time.Since(t0)
	if d > 0 {
		time.Sleep(d)
	}
}

// ackedAt reconstructs cumulative acked bytes at time t from
// per-second throughput samples.
func ackedAt(perSec []float64, t float64) int64 {
	total := 0.0
	for i, mbps := range perSec {
		hi := float64(i + 1)
		if hi > t {
			frac := t - float64(i)
			if frac > 0 {
				total += mbps * 1e6 / 8 * frac
			}
			break
		}
		total += mbps * 1e6 / 8
	}
	return int64(total)
}
