package wire

import (
	"math/rand"
	"net"
	"runtime"
	"testing"
	"time"

	"pccproteus/internal/cc/fixedrate"
	"pccproteus/internal/chaos"
	"pccproteus/internal/core"
	"pccproteus/internal/transport"
)

// TestSenderRTOExponentialBackoff exercises the backoff ladder
// directly: consecutive ack-less expiries double the effective RTO up
// to the cap, and one delivered ack resets it.
func TestSenderRTOExponentialBackoff(t *testing.T) {
	cc := &countingCC{rate: 1e6, cwnd: 1e9}
	s := newUnitSender(cc)
	// No RTT samples yet: base RTO is the estimator's 1.0 s default.
	if got := s.effRTO(); got != 1.0 {
		t.Fatalf("base effRTO %v want 1.0", got)
	}
	s.emit(0, 0, 1200)
	s.checkRTO(1.1) // expiry in full ack silence: declare + back off
	if cc.losses != 1 || s.rtoBackoff != 1 {
		t.Fatalf("after first expiry: losses=%d backoff=%d", cc.losses, s.rtoBackoff)
	}
	if got := s.effRTO(); got != 2.0 {
		t.Fatalf("backed-off effRTO %v want 2.0", got)
	}
	// A packet younger than the backed-off RTO is not declared.
	s.emit(1.2, 1.2, 1200)
	s.checkRTO(2.0)
	if cc.losses != 1 {
		t.Fatalf("declared a loss before the backed-off RTO: losses=%d", cc.losses)
	}
	s.checkRTO(3.3) // age 2.1 >= 2.0: declare, backoff -> 2
	if cc.losses != 2 || s.rtoBackoff != 2 {
		t.Fatalf("after second expiry: losses=%d backoff=%d", cc.losses, s.rtoBackoff)
	}
	// 1.0 * 2^2 = 4.0 exceeds the 3 s ceiling.
	if got := s.effRTO(); got != maxRTOCap {
		t.Fatalf("effRTO %v want capped at %v", got, maxRTOCap)
	}
	// The cap also bounds the exponent: expiries cannot push backoff
	// past maxRTOBackoff.
	for i := 0; i < 10; i++ {
		s.emit(10+float64(i), 10+float64(i), 1200)
		s.checkRTO(20 + 10*float64(i))
	}
	if s.rtoBackoff != maxRTOBackoff {
		t.Fatalf("backoff %d want clamped at %d", s.rtoBackoff, maxRTOBackoff)
	}
	// Any delivered ack resets the ladder.
	s.emit(100, 100, 1200)
	a := AckPacket{Seq: s.seq - 1, CumAck: s.seq, RecvAt: s.clock.WallNanos()}
	s.processAck(&a)
	if s.rtoBackoff != 0 {
		t.Fatalf("backoff %d after an ack, want 0", s.rtoBackoff)
	}
	if got := s.effRTO(); got == maxRTOCap {
		t.Fatalf("effRTO still at the cap after reset: %v", got)
	}
}

// outageCC is a controller that records outage callbacks.
type outageCC struct {
	countingCC
	outages, recoveries int
	resumeRate          float64
}

func (c *outageCC) OnOutage(now float64) { c.outages++ }
func (c *outageCC) OnRecovery(now float64, rate float64) {
	c.recoveries++
	c.resumeRate = rate
}

// TestSenderWatchdogProbeLifecycle drives trip → probe → recovery at
// the unit level: the watchdog freezes data, probes bypass the
// controller, and the first delivered ack restores the pre-outage rate.
func TestSenderWatchdogProbeLifecycle(t *testing.T) {
	cc := &outageCC{countingCC: countingCC{rate: 2e6, cwnd: 1e9}}
	s := newUnitSender(cc)
	s.emit(0, 0, 1200)
	a := AckPacket{Seq: 0, CumAck: 1, RecvAt: s.clock.WallNanos()}
	s.processAck(&a) // establishes lastGoodRate = 2e6
	if s.lastGoodRate != 2e6 {
		t.Fatalf("lastGoodRate %v want 2e6", s.lastGoodRate)
	}
	s.emit(1, 1, 1200)
	s.tripWatchdog(2.0)
	if !s.outage || cc.outages != 1 || s.wdTrips != 1 {
		t.Fatalf("trip: outage=%v outages=%d trips=%d", s.outage, cc.outages, s.wdTrips)
	}
	sends := cc.sends
	inflight := s.inflight
	if !s.sendProbe(2.1) {
		t.Fatal("probe send failed")
	}
	if cc.sends != sends || s.inflight != inflight {
		t.Fatalf("probe leaked into the controller: sends %d->%d inflight %d->%d", sends, cc.sends, inflight, s.inflight)
	}
	if s.probes != 1 {
		t.Fatalf("probes=%d want 1", s.probes)
	}
	// The probe's ack ends the outage and restores the pre-outage rate.
	probeSeq := s.seq - 1
	pa := AckPacket{Seq: probeSeq, CumAck: 0, RecvAt: s.clock.WallNanos(),
		Blocks: []SackBlock{{probeSeq, probeSeq + 1}}}
	s.processAck(&pa)
	if s.outage || cc.recoveries != 1 || s.wdRecoveries != 1 {
		t.Fatalf("recovery: outage=%v recoveries=%d/%d", s.outage, cc.recoveries, s.wdRecoveries)
	}
	if cc.resumeRate != 2e6 {
		t.Fatalf("resume rate %v want the pre-outage 2e6", cc.resumeRate)
	}
	if cc.acks != 1 {
		t.Fatalf("probe ack reached OnAck: acks=%d want 1", cc.acks)
	}
}

// TestChaosBlackoutSurvivalWire is the acceptance-criterion gate in the
// real-UDP world: 40 ms RTT, 20 Mbps, 2 s full blackout — each Proteus
// mode must re-attain >= 80% of its pre-blackout throughput within 3 s
// of healing.
func TestChaosBlackoutSurvivalWire(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time test")
	}
	modes := map[string]func() transport.Controller{
		"proteus-p": func() transport.Controller { return core.NewProteusP(rand.New(rand.NewSource(11))) },
		"proteus-s": func() transport.Controller { return core.NewProteusS(rand.New(rand.NewSource(12))) },
		"proteus-h": func() transport.Controller {
			c, _ := core.NewProteusH(rand.New(rand.NewSource(13)))
			return c
		},
	}
	for name, factory := range modes {
		name, factory := name, factory
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			res, err := RunLoopback(LoopbackConfig{
				NewController: factory,
				Shim: ShimConfig{
					RateMbps: 20, QueueBytes: 150_000,
					Delay: 0.020, AckDelay: 0.020, Seed: 5,
				},
				Duration: 13,
				Chaos: &chaos.Plan{Faults: []chaos.Fault{
					{Kind: chaos.KindBlackout, At: 6, Dur: 2},
				}},
			})
			if err != nil {
				t.Fatal(err)
			}
			per := res.PerSecMbps
			pre := per[4]
			if per[5] > pre {
				pre = per[5] // best of seconds (4,6] before the cut
			}
			if pre < 0.5 {
				t.Fatalf("%s: implausible pre-blackout throughput %.2f (perSec=%v)", name, pre, per)
			}
			if res.Shim.FaultDrop == 0 {
				t.Fatalf("%s: blackout destroyed nothing (shim=%+v)", name, res.Shim)
			}
			// Second (7,8] lies fully inside the blackout.
			if per[7] > 0.5 {
				t.Errorf("%s: %.2f Mbps acked through a blackout (perSec=%v)", name, per[7], per)
			}
			best := 0.0
			for _, v := range per[8:11] {
				if v > best {
					best = v
				}
			}
			if best < 0.8*pre {
				t.Errorf("%s: post-heal best %.2f < 80%% of pre %.2f (perSec=%v)", name, best, pre, per)
			}
			if res.Sender.WatchdogTrips < 1 || res.Sender.Recoveries < 1 {
				t.Errorf("%s: watchdog trips=%d recoveries=%d, want >=1 each", name, res.Sender.WatchdogTrips, res.Sender.Recoveries)
			}
			if res.Sender.InOutage {
				t.Errorf("%s: still flagged in-outage at the end", name)
			}
		})
	}
}

// TestChaosOutageBoundedState drives a blackout against the manually
// wired datapath and asserts the survival invariants the ISSUE gates
// on: no sender/receiver state growth and no goroutine growth during
// the outage, and resumed progress after it.
func TestChaosOutageBoundedState(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time test")
	}
	rconn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	recv := &Receiver{Conn: rconn}
	if err := recv.Start(); err != nil {
		t.Fatal(err)
	}
	defer recv.Stop()
	shim, err := NewShim(ShimConfig{RateMbps: 16, QueueBytes: 96_000, Delay: 0.020, AckDelay: 0.020, Seed: 3}, recv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := shim.Start(); err != nil {
		t.Fatal(err)
	}
	defer shim.Stop()
	sconn, err := net.DialUDP("udp", nil, shim.Addr())
	if err != nil {
		t.Fatal(err)
	}
	snd := &Sender{CC: fixedrate.New(8), Conn: sconn}
	if err := snd.Start(); err != nil {
		t.Fatal(err)
	}
	defer snd.Stop()

	time.Sleep(1 * time.Second)
	g0 := runtime.NumGoroutine()

	shim.SetFault(chaos.PathState{LinkDown: true, AckDown: true})
	time.Sleep(1 * time.Second)
	st1 := snd.Stats()
	if !st1.InOutage || st1.WatchdogTrips != 1 {
		t.Fatalf("watchdog should have tripped: %+v", st1)
	}
	time.Sleep(1500 * time.Millisecond)
	st2 := snd.Stats()
	g1 := runtime.NumGoroutine()
	if st2.UnackedRecs > st1.UnackedRecs+16 {
		t.Errorf("sender state grew during outage: %d -> %d records", st1.UnackedRecs, st2.UnackedRecs)
	}
	if rs := recv.Stats(); rs.Flows > 1 {
		t.Errorf("receiver grew flows during outage: %+v", rs)
	}
	if g1 > g0+2 {
		t.Errorf("goroutines grew during outage: %d -> %d", g0, g1)
	}
	if st2.ProbesSent == 0 {
		t.Error("no keep-alive probes during outage")
	}

	shim.SetFault(chaos.PathState{})
	time.Sleep(1200 * time.Millisecond)
	st3 := snd.Stats()
	if st3.InOutage || st3.Recoveries != 1 {
		t.Fatalf("no recovery after heal: %+v", st3)
	}
	if st3.AckedBytes <= st2.AckedBytes {
		t.Errorf("no progress after heal: acked %d -> %d", st2.AckedBytes, st3.AckedBytes)
	}
}

// TestChaosPeerRestartWire replays a peer-restart plan end to end: the
// shim flushes its in-flight queues, the receiver discards its flow
// state, and the flow must keep making progress afterwards.
func TestChaosPeerRestartWire(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time test")
	}
	res, err := RunLoopback(LoopbackConfig{
		NewController: func() transport.Controller { return fixedrate.New(8) },
		Shim: ShimConfig{
			RateMbps: 16, QueueBytes: 96_000,
			Delay: 0.020, AckDelay: 0.020, Seed: 9,
		},
		Duration:    4,
		MeasureFrom: 2.5,
		Chaos: &chaos.Plan{Faults: []chaos.Fault{
			{Kind: chaos.KindPeerRestart, At: 2},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shim.Flushed == 0 && res.Shim.AckFlushed == 0 {
		t.Errorf("restart flushed nothing in flight (shim=%+v)", res.Shim)
	}
	// Post-restart progress: the measurement window sits entirely after
	// the restart.
	if res.Mbps < 4 {
		t.Errorf("flow did not survive the restart: %.2f Mbps post-restart (perSec=%v)", res.Mbps, res.PerSecMbps)
	}
}
