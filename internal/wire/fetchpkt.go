package wire

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
)

// This file is the codec for the segmented bulk-fetch protocol
// (internal/fetch): a request/response pair layered on the same wire
// conventions as the data/ack pair. A FETCH names one segment of one
// object; the server answers with a SEGMENT carrying that segment's
// bytes. The transfer's congestion control lives entirely at the
// fetcher, which paces FETCH requests so that the *responses* arrive at
// the controller's target rate — receiver-driven transport in the
// style of NDN interest/data exchanges.
//
// Fetch packet (fixed FetchLen bytes):
//
//	off len field
//	0   1   type     (0x46 'F')
//	1   1   version
//	2   1   flags    (bit0 = metadata request: answer with the object's
//	            geometry and whole-object digest instead of a segment)
//	3   8   objID    (FNV-1a 64 of the object name)
//	11  8   segIndex (requested segment; ignored for metadata)
//	19  8   nonce    (monotonic per fetcher, echoed in the response — the
//	            retransmit queue is keyed on nonces, so a re-request of
//	            the same segment is distinguishable from its original)
//	27  8   sentAt   (fetcher-clock wall nanos of the request's
//	            *scheduled* send time under the token-bucket pacer)
//
// Segment packet (SegmentHeaderLen bytes of header + payload). The
// first 26 bytes deliberately mirror the data-packet layout — nonce in
// the seq slot, the echoed request stamp in the sentAt slot, and the
// arrival stamp at the same offset — so the impairment shim's virtual
// bottleneck and StampArrival hook work on segments unchanged:
//
//	off len field
//	0   1   type     (0x53 'S')
//	1   1   version
//	2   8   nonce    (echoed from the request)
//	10  8   sentAt   (echoed request scheduled-send stamp; with the
//	            arrival stamp this gives the fetcher a per-segment RTT
//	            on its own clock, exactly like the ack path)
//	18  8   arrival  (0 from the server; stamped by the shim)
//	26  1   flags    (bit0 = metadata response: the payload is the
//	            whole-object SHA-256 digest)
//	27  8   objID
//	35  8   totalSegs (object geometry, carried on every response so a
//	            fetcher can start without a completed metadata exchange)
//	43  8   objSize   (object length in bytes)
//	51  8   segIndex
//	59  4   segSize  (payload length; redundant with the datagram
//	            length, cross-checked by the decoder)
//	63  4   crc32c   (Castagnoli CRC of the payload — the per-segment
//	            integrity check; the whole-object SHA-256 from the
//	            metadata response is the end-to-end check)
//	67  ... payload
const (
	typeFetch   = 0x46
	typeSegment = 0x53

	// FetchLen is the exact size of a fetch request packet.
	FetchLen = 35
	// SegmentHeaderLen is the segment-packet header size in bytes.
	SegmentHeaderLen = 67
	// MaxSegPayload is the largest segment payload a datagram can carry.
	MaxSegPayload = MaxDataLen - SegmentHeaderLen
	// DigestLen is the whole-object digest size (SHA-256).
	DigestLen = 32

	fetchFlagMeta = 0x01
)

// ErrChecksum is returned when a segment's payload fails its CRC — the
// bytes traversed the path but arrived damaged.
var ErrChecksum = errors.New("wire: segment checksum mismatch")

// crcTable is the Castagnoli polynomial table (hardware-accelerated on
// amd64/arm64 via hash/crc32's SSE4.2/CRC32 paths).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// FetchHeader is the decoded form of a fetch request.
type FetchHeader struct {
	ObjID  uint64
	Seg    int64
	Nonce  int64
	SentAt int64 // wall nanos, scheduled send time
	Meta   bool
}

// EncodeFetch writes a fetch request into buf (len >= FetchLen) and
// returns the packet slice.
func EncodeFetch(buf []byte, h FetchHeader) []byte {
	buf[0] = typeFetch
	buf[1] = wireVersion
	buf[2] = 0
	if h.Meta {
		buf[2] = fetchFlagMeta
	}
	binary.BigEndian.PutUint64(buf[3:], h.ObjID)
	binary.BigEndian.PutUint64(buf[11:], uint64(h.Seg))
	binary.BigEndian.PutUint64(buf[19:], uint64(h.Nonce))
	binary.BigEndian.PutUint64(buf[27:], uint64(h.SentAt))
	return buf[:FetchLen]
}

// DecodeFetch parses a fetch request. It returns a nil error only for a
// well-formed request: exact length, correct type and version, no
// undefined flags, and non-negative sequence fields.
func DecodeFetch(b []byte) (FetchHeader, error) {
	if len(b) < FetchLen {
		return FetchHeader{}, ErrTruncated
	}
	if b[0] != typeFetch {
		return FetchHeader{}, ErrBadType
	}
	if b[1] != wireVersion {
		return FetchHeader{}, ErrBadVersion
	}
	if len(b) > FetchLen {
		return FetchHeader{}, ErrOversized
	}
	if b[2]&^fetchFlagMeta != 0 {
		return FetchHeader{}, ErrInconsistent
	}
	h := FetchHeader{
		Meta:   b[2]&fetchFlagMeta != 0,
		ObjID:  binary.BigEndian.Uint64(b[3:]),
		Seg:    int64(binary.BigEndian.Uint64(b[11:])),
		Nonce:  int64(binary.BigEndian.Uint64(b[19:])),
		SentAt: int64(binary.BigEndian.Uint64(b[27:])),
	}
	if h.Seg < 0 || h.Nonce < 0 || h.SentAt < 0 {
		return FetchHeader{}, ErrInconsistent
	}
	return h, nil
}

// SegmentHeader is the decoded header of a segment response. The
// payload is returned separately by DecodeSegment.
type SegmentHeader struct {
	Nonce      int64
	SentAtEcho int64 // wall nanos echoed from the request
	Arrival    int64 // emulated arrival wall nanos; 0 when no shim stamped it
	Meta       bool
	ObjID      uint64
	TotalSegs  int64
	ObjSize    int64
	Seg        int64
}

// EncodeSegment writes a segment response (header + payload + CRC) into
// buf, which must have len >= SegmentHeaderLen+len(payload), and
// returns the packet slice.
func EncodeSegment(buf []byte, h SegmentHeader, payload []byte) []byte {
	buf[0] = typeSegment
	buf[1] = wireVersion
	binary.BigEndian.PutUint64(buf[2:], uint64(h.Nonce))
	binary.BigEndian.PutUint64(buf[10:], uint64(h.SentAtEcho))
	binary.BigEndian.PutUint64(buf[18:], uint64(h.Arrival))
	buf[26] = 0
	if h.Meta {
		buf[26] = fetchFlagMeta
	}
	binary.BigEndian.PutUint64(buf[27:], h.ObjID)
	binary.BigEndian.PutUint64(buf[35:], uint64(h.TotalSegs))
	binary.BigEndian.PutUint64(buf[43:], uint64(h.ObjSize))
	binary.BigEndian.PutUint64(buf[51:], uint64(h.Seg))
	binary.BigEndian.PutUint32(buf[59:], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[63:], crc32.Checksum(payload, crcTable))
	copy(buf[SegmentHeaderLen:], payload)
	return buf[:SegmentHeaderLen+len(payload)]
}

// DecodeSegment parses a segment response and returns its header and a
// view of the payload (aliasing b — callers that retain it must copy).
// It returns a nil error only for a well-formed segment: correct type
// and version bytes, no undefined flags, a declared payload length
// matching the datagram, internally consistent geometry, and a payload
// CRC that verifies (ErrChecksum otherwise — counted separately from
// structural corruption because it means the path, not the peer, broke
// the bytes).
func DecodeSegment(b []byte) (SegmentHeader, []byte, error) {
	if len(b) < SegmentHeaderLen {
		return SegmentHeader{}, nil, ErrTruncated
	}
	if b[0] != typeSegment {
		return SegmentHeader{}, nil, ErrBadType
	}
	if b[1] != wireVersion {
		return SegmentHeader{}, nil, ErrBadVersion
	}
	if len(b) > MaxDataLen {
		return SegmentHeader{}, nil, ErrOversized
	}
	if b[26]&^fetchFlagMeta != 0 {
		return SegmentHeader{}, nil, ErrInconsistent
	}
	h := SegmentHeader{
		Nonce:      int64(binary.BigEndian.Uint64(b[2:])),
		SentAtEcho: int64(binary.BigEndian.Uint64(b[10:])),
		Arrival:    int64(binary.BigEndian.Uint64(b[18:])),
		Meta:       b[26]&fetchFlagMeta != 0,
		ObjID:      binary.BigEndian.Uint64(b[27:]),
		TotalSegs:  int64(binary.BigEndian.Uint64(b[35:])),
		ObjSize:    int64(binary.BigEndian.Uint64(b[43:])),
		Seg:        int64(binary.BigEndian.Uint64(b[51:])),
	}
	segSize := int(binary.BigEndian.Uint32(b[59:]))
	if h.Nonce < 0 || h.SentAtEcho < 0 || h.Arrival < 0 ||
		h.TotalSegs <= 0 || h.ObjSize < 0 || h.Seg < 0 {
		return SegmentHeader{}, nil, ErrInconsistent
	}
	if segSize != len(b)-SegmentHeaderLen {
		return SegmentHeader{}, nil, ErrInconsistent
	}
	if h.Meta {
		if segSize != DigestLen || h.Seg != 0 {
			return SegmentHeader{}, nil, ErrInconsistent
		}
	} else if h.Seg >= h.TotalSegs {
		return SegmentHeader{}, nil, ErrInconsistent
	}
	payload := b[SegmentHeaderLen:]
	if crc32.Checksum(payload, crcTable) != binary.BigEndian.Uint32(b[63:]) {
		return SegmentHeader{}, nil, ErrChecksum
	}
	return h, payload, nil
}
