package wire

import (
	"net"
	"testing"
	"time"
)

// A flow evicted under cap pressure gets one final cumulative ack, so a
// sender whose last packets raced the eviction learns what landed
// before it rebinds — instead of discovering the gap by RTO afterward.
func TestReceiverEvictionFlushesFinalAck(t *testing.T) {
	rconn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	recv := &Receiver{Conn: rconn, MaxFlows: 1}
	if err := recv.Start(); err != nil {
		t.Fatal(err)
	}
	defer recv.Stop()

	dial := func() *net.UDPConn {
		c, err := net.DialUDP("udp", nil, recv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	connA := dial()
	defer connA.Close()
	connB := dial()
	defer connB.Close()

	// Flow A receives 0,1,2 then 4 — a gap at 3, so its state is
	// cum=3 with SACK {4,5}.
	var buf [256]byte
	send := func(c *net.UDPConn, seq int64) {
		// Nonzero SentAt: regular acks echo it, the eviction flush sends
		// zero — that is how the test tells them apart.
		pkt := EncodeData(buf[:], DataHeader{Seq: seq, SentAt: 12345}, DataHeaderLen)
		if _, err := c.Write(pkt); err != nil {
			t.Fatal(err)
		}
	}
	for _, seq := range []int64{0, 1, 2, 4} {
		send(connA, seq)
	}

	// Drain A's regular acks until the one for seq 4 arrives, proving
	// the receiver has processed everything before B triggers eviction.
	rbuf := make([]byte, MaxAckLen)
	var a AckPacket
	deadline := time.Now().Add(5 * time.Second)
	for {
		connA.SetReadDeadline(deadline)
		n, err := connA.Read(rbuf)
		if err != nil {
			t.Fatalf("waiting for regular acks: %v", err)
		}
		if DecodeAck(rbuf[:n], &a) == nil && a.Seq == 4 {
			break
		}
	}

	// B's first packet exceeds MaxFlows=1 and evicts A.
	send(connB, 0)

	// A must now receive the final ack: SentAtEcho 0, cum 3, SACK {4,5}.
	for {
		connA.SetReadDeadline(deadline)
		n, err := connA.Read(rbuf)
		if err != nil {
			t.Fatalf("final ack never arrived: %v (stats %+v)", err, recv.Stats())
		}
		if DecodeAck(rbuf[:n], &a) != nil || a.SentAtEcho != 0 {
			continue
		}
		if a.CumAck != 3 || a.Seq != 4 {
			t.Fatalf("final ack cum=%d seq=%d want cum=3 seq=4", a.CumAck, a.Seq)
		}
		if len(a.Blocks) != 1 || a.Blocks[0] != (SackBlock{4, 5}) {
			t.Fatalf("final ack blocks=%+v want [{4 5}]", a.Blocks)
		}
		break
	}

	st := recv.Stats()
	if st.Evicted != 1 || st.Flows != 1 {
		t.Fatalf("evicted=%d flows=%d", st.Evicted, st.Flows)
	}

	// A rebinding (same behavior as a restarted sender) gets fresh flow
	// state: its next packet is acked from cum zero, not stale state.
	connA2 := dial()
	defer connA2.Close()
	pkt := EncodeData(buf[:], DataHeader{Seq: 0, SentAt: 777}, DataHeaderLen)
	if _, err := connA2.Write(pkt); err != nil {
		t.Fatal(err)
	}
	connA2.SetReadDeadline(deadline)
	n, err := connA2.Read(rbuf)
	if err != nil {
		t.Fatalf("rebind ack: %v", err)
	}
	if err := DecodeAck(rbuf[:n], &a); err != nil {
		t.Fatal(err)
	}
	if a.CumAck != 1 || a.SentAtEcho != 777 {
		t.Fatalf("rebind ack cum=%d echo=%d want cum=1 echo=777", a.CumAck, a.SentAtEcho)
	}
}
