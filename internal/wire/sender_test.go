package wire

import (
	"io"
	"testing"
	"time"

	"pccproteus/internal/trace"
	"pccproteus/internal/transport"
)

// countingCC is a minimal controller that tallies its callbacks.
type countingCC struct {
	sends, acks, losses int
	rate, cwnd          float64
}

func (c *countingCC) Name() string                                { return "counting" }
func (c *countingCC) OnSend(now float64, p *transport.SentPacket) { c.sends++ }
func (c *countingCC) OnAck(transport.Ack)                         { c.acks++ }
func (c *countingCC) OnLoss(transport.Loss)                       { c.losses++ }
func (c *countingCC) PacingRate() float64                         { return c.rate }
func (c *countingCC) CWnd() float64                               { return c.cwnd }

// nopConn is a sink for unit tests that never start the goroutines.
type nopConn struct{}

func (nopConn) Write(b []byte) (int, error)     { return len(b), nil }
func (nopConn) Read(b []byte) (int, error)      { return 0, io.EOF }
func (nopConn) SetReadDeadline(time.Time) error { return nil }
func (nopConn) Close() error                    { return nil }

// newUnitSender builds a sender ready for direct emit/processAck calls
// without launching the datapath goroutines.
func newUnitSender(cc transport.Controller) *Sender {
	s := &Sender{CC: cc, Conn: nopConn{}, PacketSize: 1200}
	s.clock = NewClock()
	s.tr = (*trace.Recorder)(nil).Tracer(1)
	s.sendBuf = make([]byte, s.PacketSize)
	s.pacer.Cap = float64(8 * s.PacketSize)
	s.pacer.Reset(0)
	return s
}

func TestSenderDuplicateAckCountedOnce(t *testing.T) {
	cc := &countingCC{rate: 1e6, cwnd: 1e9}
	s := newUnitSender(cc)
	now := s.clock.Now()
	s.emit(now, now, 1200)
	a := AckPacket{Seq: 0, CumAck: 1, RecvAt: s.clock.WallNanos()}
	s.processAck(&a)
	s.processAck(&a) // duplicate of the same ack
	if cc.acks != 1 {
		t.Fatalf("OnAck called %d times for a duplicated ack, want 1", cc.acks)
	}
	if s.ackedPkts != 1 || s.ackedBytes != 1200 {
		t.Fatalf("acked %d pkts / %d bytes, want 1/1200", s.ackedPkts, s.ackedBytes)
	}
	if s.inflight != 0 {
		t.Fatalf("inflight %d want 0", s.inflight)
	}
}

func TestSenderReorderedAcksNoSpuriousLoss(t *testing.T) {
	cc := &countingCC{rate: 1e6, cwnd: 1e9}
	s := newUnitSender(cc)
	now := s.clock.Now()
	for i := 0; i < 6; i++ {
		s.emit(now, now, 1200)
	}
	// SACK for 4..5 while 0..3 are outstanding: well past the dup-ack
	// threshold in sequence space, but the packets are young, so the
	// RACK time test must hold losses back.
	a := AckPacket{Seq: 5, CumAck: 0, RecvAt: s.clock.WallNanos(),
		Blocks: []SackBlock{{4, 6}}}
	s.processAck(&a)
	if cc.losses != 0 {
		t.Fatalf("reordering within the time window produced %d losses", cc.losses)
	}
	if cc.acks != 2 {
		t.Fatalf("OnAck %d want 2 (seqs 4,5)", cc.acks)
	}
	// Late-arriving acks for the "missing" packets must land normally.
	b := AckPacket{Seq: 3, CumAck: 6, RecvAt: s.clock.WallNanos()}
	s.processAck(&b)
	if cc.acks != 6 || cc.losses != 0 || s.inflight != 0 {
		t.Fatalf("after fill: acks=%d losses=%d inflight=%d", cc.acks, cc.losses, s.inflight)
	}
}

func TestSenderRACKDeclaresOldGaps(t *testing.T) {
	cc := &countingCC{rate: 1e6, cwnd: 1e9}
	s := newUnitSender(cc)
	now := s.clock.Now()
	for i := 0; i < 6; i++ {
		s.emit(now, now, 1200)
	}
	a := AckPacket{Seq: 5, CumAck: 0, RecvAt: s.clock.WallNanos(),
		Blocks: []SackBlock{{3, 6}}}
	s.processAck(&a)
	if cc.losses != 0 {
		t.Fatal("young gap declared lost")
	}
	// Age the gap past srtt + reorder window, then let any ack retrigger
	// detection.
	for _, rec := range s.unacked {
		if !rec.acked {
			rec.wallAt -= 1.0
		}
	}
	b := AckPacket{Seq: 5, CumAck: 0, RecvAt: s.clock.WallNanos(),
		Blocks: []SackBlock{{3, 6}}}
	s.processAck(&b)
	if cc.losses != 3 {
		t.Fatalf("aged gap: %d losses want 3 (seqs 0,1,2)", cc.losses)
	}
	if s.lostPkts != 3 || s.lostBytes != 3600 {
		t.Fatalf("lost %d pkts / %d bytes", s.lostPkts, s.lostBytes)
	}
	if s.inflight != 0 {
		t.Fatalf("inflight %d want 0 after all packets resolved", s.inflight)
	}
}

func TestSenderRTOBackstop(t *testing.T) {
	cc := &countingCC{rate: 1e6, cwnd: 1e9}
	s := newUnitSender(cc)
	now := s.clock.Now()
	s.emit(now, now, 1200)
	s.unacked[0].wallAt -= 2.0 // older than any RTO
	s.checkRTO(s.clock.Now())
	if cc.losses != 1 || s.lostPkts != 1 {
		t.Fatalf("RTO did not fire: losses=%d", cc.losses)
	}
	if len(s.unacked) != 0 {
		t.Fatal("lost packet not pruned")
	}
}

func TestSenderFiniteTransferCompletes(t *testing.T) {
	cc := &countingCC{rate: 1e6, cwnd: 1e9}
	s := newUnitSender(cc)
	s.Limit = 3600
	s.complete = make(chan struct{})
	now := s.clock.Now()
	for !s.limitReached() {
		s.emit(now, now, s.nextSize())
	}
	if s.sentPkts != 3 {
		t.Fatalf("sent %d pkts want 3", s.sentPkts)
	}
	a := AckPacket{Seq: 2, CumAck: 3, RecvAt: s.clock.WallNanos()}
	s.processAck(&a)
	select {
	case <-s.complete:
	default:
		t.Fatal("completion channel not closed at Limit")
	}
}

func TestSenderFreelistRecyclesRecords(t *testing.T) {
	cc := &countingCC{rate: 1e6, cwnd: 1e9}
	s := newUnitSender(cc)
	now := s.clock.Now()
	s.emit(now, now, 1200)
	first := s.unacked[0]
	a := AckPacket{Seq: 0, CumAck: 1, RecvAt: s.clock.WallNanos()}
	s.processAck(&a)
	if len(s.freelist) != 1 {
		t.Fatalf("freelist len %d want 1", len(s.freelist))
	}
	now2 := s.clock.Now()
	s.emit(now2, now2, 1200)
	if s.unacked[0] != first {
		t.Fatal("record not recycled from the freelist")
	}
}
