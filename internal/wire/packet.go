package wire

import (
	"encoding/binary"
	"errors"
)

// Codec errors. Decoders return these instead of panicking or silently
// accepting garbage: a corrupted datagram off the network must be a
// countable error, never a crash and never a bogus ack view.
var (
	// ErrTruncated is returned for input shorter than its header (or,
	// for acks, shorter than its declared SACK blocks) requires.
	ErrTruncated = errors.New("wire: truncated packet")
	// ErrOversized is returned for input longer than the format allows.
	ErrOversized = errors.New("wire: oversized packet")
	// ErrBadType is returned when the type byte is not the expected one.
	ErrBadType = errors.New("wire: wrong packet type")
	// ErrBadVersion is returned for an unknown wire version.
	ErrBadVersion = errors.New("wire: unknown wire version")
	// ErrInconsistent is returned when the fields decode but contradict
	// each other — e.g. SACK ranges below the cumulative ack, empty or
	// overlapping blocks, or negative sequence numbers.
	ErrInconsistent = errors.New("wire: inconsistent packet fields")
)

// Wire format. All integers are big-endian.
//
// Data packet, version 1 (DataHeaderLen bytes of header, padded with
// payload to the configured packet size so serialization cost on the
// emulated bottleneck matches the sim's MTU accounting):
//
//	off len field
//	0   1   type   (0x50 'P')
//	1   1   version
//	2   8   seq
//	10  8   sentAt  (sender-clock nanos of the packet's *scheduled*
//	            send time under the token-bucket pacer — at most one
//	            bucket's worth behind the actual emission instant)
//	18  8   arrival (wall nanos; 0 from the sender, stamped by the
//	            impairment shim with the packet's emulated arrival
//	            time so endpoints measure the emulated path's timing,
//	            not the host scheduler's delivery jitter)
//
// Data packet, version 2 (DataHeaderLenV2 bytes): identical except a
// 4-byte flow ID follows the version byte, shifting the remaining
// fields. Version 2 exists for the sharded engine datapath, where many
// flows multiplex one socket and source address alone cannot demux:
//
//	off len field
//	0   1   type   (0x50 'P')
//	1   1   version (2)
//	2   4   flow
//	6   8   seq
//	14  8   sentAt
//	22  8   arrival
//
// Ack packet, version 1 (AckFixedLen + 16 bytes per SACK block):
//
//	off len field
//	0   1   type   (0x41 'A')
//	1   1   number of SACK blocks (0..MaxSackBlocks)
//	2   8   seq     (the data packet that triggered this ack)
//	10  8   sentAt  (echoed from that data packet)
//	18  8   recvAt  (wall nanos at the receiver)
//	26  8   cumAck  (every seq < cumAck has been received)
//	34  16n SACK blocks: [start,end) pairs above cumAck, highest last
//
// Ack packet, version 2 (type 0x42 'B', AckFixedLenV2 + 16n): the v1
// layout with a 4-byte flow ID echoed after the block count. Acks use
// a distinct type byte rather than a version field because the v1 ack
// header has no version byte to dispatch on.
//
//	off len field
//	0   1   type   (0x42 'B')
//	1   1   number of SACK blocks
//	2   4   flow
//	6   8   seq
//	14  8   sentAt
//	22  8   recvAt
//	30  8   cumAck
//	38  16n SACK blocks
// Busy packet (type 0x59 'Y', BusyLen bytes, fixed length): the
// receiver-side overload control frame. Sent instead of creating (or
// while dropping) flow state when the receiving host is under
// pressure, so a refused sender backs off with jittered exponential
// retry instead of hammering a socket that cannot serve it:
//
//	off len field
//	0   1   type   (0x59 'Y')
//	1   1   version (1)
//	2   4   flow    (the flow being refused or shed)
//	6   4   retry-after hint, milliseconds (1..MaxBusyRetryMillis)
//	10  1   flags   (bit 0: shed — existing flow state was dropped,
//	            not just a new admission refused)
const (
	typeData  = 0x50
	typeAck   = 0x41
	typeAckV2 = 0x42
	typeBusy  = 0x59

	wireVersion   = 1
	wireVersionV2 = 2

	// DataHeaderLen is the version-1 data-packet header size in bytes.
	DataHeaderLen = 10 + 8 + 8
	// DataHeaderLenV2 is the version-2 (flow-ID-bearing) header size.
	DataHeaderLenV2 = DataHeaderLen + 4
	// AckFixedLen is the fixed portion of a version-1 ack packet.
	AckFixedLen = 34
	// AckFixedLenV2 is the fixed portion of a version-2 ack packet.
	AckFixedLenV2 = AckFixedLen + 4
	// MaxSackBlocks bounds the SACK blocks carried per ack.
	MaxSackBlocks = 4
	// MaxAckLen is the largest possible ack packet of either version.
	MaxAckLen = AckFixedLenV2 + 16*MaxSackBlocks
	// MaxDataLen is the largest acceptable data packet: the maximum
	// UDP payload over IPv4 (65535 − 20 IP − 8 UDP).
	MaxDataLen = 65507
	// BusyLen is the exact length of a busy (overload push-back) packet.
	BusyLen = 11
	// MaxBusyRetryMillis bounds the retry-after hint a busy packet may
	// carry (one minute): anything larger is a corrupt or hostile frame,
	// not a plausible overload horizon.
	MaxBusyRetryMillis = 60_000
)

// FlowClassScavenger is the flow-ID class bit: the engine sets the top
// bit of the 32-bit wire flow ID on scavenger-class flows, so the
// *receiving* host can apply the paper's utility ordering under its own
// overload — shed scavengers first — without any extra header bytes.
// Engine flow allocation counts up from 1, so the bit is unambiguous
// until 2³¹ flows; legacy version-1 traffic (flow ID 0) reads as
// primary, the conservative default.
const FlowClassScavenger uint32 = 1 << 31

// ScavengerID reports whether a wire flow ID carries the scavenger
// class bit.
func ScavengerID(id uint32) bool { return id&FlowClassScavenger != 0 }

// DataHeader is the decoded header of a data packet.
type DataHeader struct {
	Seq     int64
	SentAt  int64  // wall nanos
	Arrival int64  // emulated arrival wall nanos; 0 when no shim stamped it
	Flow    uint32 // engine flow ID; 0 on version-1 packets
}

// EncodeData writes a data packet of exactly size bytes into buf
// (which must have len >= size >= DataHeaderLen) and returns the
// packet slice. Bytes past the header are left as-is: they are
// padding, and reusing the buffer avoids per-packet clearing cost.
func EncodeData(buf []byte, h DataHeader, size int) []byte {
	buf[0] = typeData
	buf[1] = wireVersion
	binary.BigEndian.PutUint64(buf[2:], uint64(h.Seq))
	binary.BigEndian.PutUint64(buf[10:], uint64(h.SentAt))
	binary.BigEndian.PutUint64(buf[18:], uint64(h.Arrival))
	return buf[:size]
}

// EncodeDataV2 writes a version-2 (flow-ID-bearing) data packet of
// exactly size bytes into buf (len >= size >= DataHeaderLenV2) and
// returns the packet slice. The engine datapath uses this form; the
// legacy per-flow path keeps emitting version 1 byte-for-byte.
func EncodeDataV2(buf []byte, h DataHeader, size int) []byte {
	buf[0] = typeData
	buf[1] = wireVersionV2
	binary.BigEndian.PutUint32(buf[2:], h.Flow)
	binary.BigEndian.PutUint64(buf[6:], uint64(h.Seq))
	binary.BigEndian.PutUint64(buf[14:], uint64(h.SentAt))
	binary.BigEndian.PutUint64(buf[22:], uint64(h.Arrival))
	return buf[:size]
}

// StampArrival rewrites the arrival field of an encoded data or
// segment packet in place — the impairment shim's hook (segments put
// their arrival stamp at the same offset by design). It reports false
// when b is neither.
func StampArrival(b []byte, nanos int64) bool {
	if len(b) < DataHeaderLen {
		return false
	}
	switch {
	case b[0] == typeData && b[1] == wireVersionV2:
		if len(b) < DataHeaderLenV2 {
			return false
		}
		binary.BigEndian.PutUint64(b[22:], uint64(nanos))
		return true
	case (b[0] == typeData || b[0] == typeSegment) && b[1] == wireVersion:
		binary.BigEndian.PutUint64(b[18:], uint64(nanos))
		return true
	}
	return false
}

// DecodeData parses a data packet of either version. It returns a nil
// error only for a well-formed data packet: correct type and version
// bytes, a length within [header, MaxDataLen], and non-negative stamps.
func DecodeData(b []byte) (DataHeader, error) {
	if len(b) < DataHeaderLen {
		return DataHeader{}, ErrTruncated
	}
	if b[0] != typeData {
		return DataHeader{}, ErrBadType
	}
	if len(b) > MaxDataLen {
		return DataHeader{}, ErrOversized
	}
	var h DataHeader
	switch b[1] {
	case wireVersion:
		h = DataHeader{
			Seq:     int64(binary.BigEndian.Uint64(b[2:])),
			SentAt:  int64(binary.BigEndian.Uint64(b[10:])),
			Arrival: int64(binary.BigEndian.Uint64(b[18:])),
		}
	case wireVersionV2:
		if len(b) < DataHeaderLenV2 {
			return DataHeader{}, ErrTruncated
		}
		h = DataHeader{
			Flow:    binary.BigEndian.Uint32(b[2:]),
			Seq:     int64(binary.BigEndian.Uint64(b[6:])),
			SentAt:  int64(binary.BigEndian.Uint64(b[14:])),
			Arrival: int64(binary.BigEndian.Uint64(b[22:])),
		}
	default:
		return DataHeader{}, ErrBadVersion
	}
	if h.Seq < 0 || h.SentAt < 0 || h.Arrival < 0 {
		return DataHeader{}, ErrInconsistent
	}
	return h, nil
}

// SackBlock is one contiguous received range [Start, End).
type SackBlock struct {
	Start, End int64
}

// AckPacket is the decoded form of an ack. Blocks is reused across
// decodes of the same AckPacket value to keep the receive loop
// allocation-free.
type AckPacket struct {
	Seq        int64 // triggering data seq
	SentAtEcho int64 // wall nanos echoed from the data packet
	RecvAt     int64 // wall nanos at the receiver
	CumAck     int64
	Flow       uint32 // engine flow ID echoed from the data packet; 0 on v1
	Blocks     []SackBlock
}

// Encode writes the ack into buf (len >= MaxAckLen) and returns the
// packet slice. At most MaxSackBlocks blocks are written; when more
// are present the highest blocks win, because the sender's RACK loss
// detection keys off the highest SACKed sequence.
func (a *AckPacket) Encode(buf []byte) []byte {
	blocks := a.Blocks
	if len(blocks) > MaxSackBlocks {
		blocks = blocks[len(blocks)-MaxSackBlocks:]
	}
	buf[0] = typeAck
	buf[1] = byte(len(blocks))
	binary.BigEndian.PutUint64(buf[2:], uint64(a.Seq))
	binary.BigEndian.PutUint64(buf[10:], uint64(a.SentAtEcho))
	binary.BigEndian.PutUint64(buf[18:], uint64(a.RecvAt))
	binary.BigEndian.PutUint64(buf[26:], uint64(a.CumAck))
	off := AckFixedLen
	for _, bl := range blocks {
		binary.BigEndian.PutUint64(buf[off:], uint64(bl.Start))
		binary.BigEndian.PutUint64(buf[off+8:], uint64(bl.End))
		off += 16
	}
	return buf[:off]
}

// EncodeV2 writes the version-2 (flow-ID-echoing) form of the ack into
// buf (len >= MaxAckLen) and returns the packet slice. Block clamping
// matches Encode.
func (a *AckPacket) EncodeV2(buf []byte) []byte {
	blocks := a.Blocks
	if len(blocks) > MaxSackBlocks {
		blocks = blocks[len(blocks)-MaxSackBlocks:]
	}
	buf[0] = typeAckV2
	buf[1] = byte(len(blocks))
	binary.BigEndian.PutUint32(buf[2:], a.Flow)
	binary.BigEndian.PutUint64(buf[6:], uint64(a.Seq))
	binary.BigEndian.PutUint64(buf[14:], uint64(a.SentAtEcho))
	binary.BigEndian.PutUint64(buf[22:], uint64(a.RecvAt))
	binary.BigEndian.PutUint64(buf[30:], uint64(a.CumAck))
	off := AckFixedLenV2
	for _, bl := range blocks {
		binary.BigEndian.PutUint64(buf[off:], uint64(bl.Start))
		binary.BigEndian.PutUint64(buf[off+8:], uint64(bl.End))
		off += 16
	}
	return buf[:off]
}

// DecodeAck parses an ack packet of either version into a, reusing
// a.Blocks. It returns a nil error only for a well-formed ack: exact
// length for the declared block count, non-negative sequence fields,
// and SACK blocks that are non-empty, strictly ascending,
// non-overlapping, and entirely above the cumulative ack. A malformed
// ack leaves a with zero blocks so a caller that ignores the error
// cannot act on stale ranges from a previous decode.
func DecodeAck(b []byte, a *AckPacket) error {
	a.Blocks = a.Blocks[:0]
	a.Flow = 0
	if len(b) < AckFixedLen {
		return ErrTruncated
	}
	fixed := AckFixedLen
	body := 2
	switch b[0] {
	case typeAck:
	case typeAckV2:
		fixed = AckFixedLenV2
		body = 6
		if len(b) < fixed {
			return ErrTruncated
		}
		a.Flow = binary.BigEndian.Uint32(b[2:])
	default:
		return ErrBadType
	}
	n := int(b[1])
	if n > MaxSackBlocks {
		return ErrInconsistent
	}
	if len(b) < fixed+16*n {
		return ErrTruncated
	}
	if len(b) > fixed+16*n {
		return ErrOversized
	}
	a.Seq = int64(binary.BigEndian.Uint64(b[body:]))
	a.SentAtEcho = int64(binary.BigEndian.Uint64(b[body+8:]))
	a.RecvAt = int64(binary.BigEndian.Uint64(b[body+16:]))
	a.CumAck = int64(binary.BigEndian.Uint64(b[body+24:]))
	if a.Seq < 0 || a.SentAtEcho < 0 || a.RecvAt < 0 || a.CumAck < 0 {
		a.Flow = 0
		return ErrInconsistent
	}
	off := fixed
	prevEnd := a.CumAck
	for i := 0; i < n; i++ {
		bl := SackBlock{
			Start: int64(binary.BigEndian.Uint64(b[off:])),
			End:   int64(binary.BigEndian.Uint64(b[off+8:])),
		}
		if bl.Start >= bl.End || bl.Start < prevEnd {
			a.Blocks = a.Blocks[:0]
			return ErrInconsistent
		}
		prevEnd = bl.End
		a.Blocks = append(a.Blocks, bl)
		off += 16
	}
	return nil
}

// BusyPacket is the decoded form of an overload push-back frame.
type BusyPacket struct {
	// Flow is the wire flow ID being refused or shed (class bit intact).
	Flow uint32
	// RetryAfterMillis is the receiver's back-off hint; the sender
	// treats it as the base of a jittered exponential schedule.
	RetryAfterMillis uint32
	// Shed marks that existing flow state was dropped (not merely a new
	// admission refused), so the sender should also expect its
	// in-flight window to die.
	Shed bool
}

const busyFlagShed = 0x01

// EncodeBusy writes a busy packet into buf (len >= BusyLen) and
// returns the packet slice. The retry hint is clamped into
// [1, MaxBusyRetryMillis] so an encoded frame is always decodable.
func EncodeBusy(buf []byte, bp BusyPacket) []byte {
	retry := bp.RetryAfterMillis
	if retry < 1 {
		retry = 1
	}
	if retry > MaxBusyRetryMillis {
		retry = MaxBusyRetryMillis
	}
	buf[0] = typeBusy
	buf[1] = wireVersion
	binary.BigEndian.PutUint32(buf[2:], bp.Flow)
	binary.BigEndian.PutUint32(buf[6:], retry)
	flags := byte(0)
	if bp.Shed {
		flags |= busyFlagShed
	}
	buf[10] = flags
	return buf[:BusyLen]
}

// DecodeBusy parses a busy packet. It returns a nil error only for a
// well-formed frame: exact length, known type/version, a retry hint in
// [1, MaxBusyRetryMillis], and no unknown flag bits — an overload
// frame is a demand to stop sending, so a corrupt one must be
// countable garbage, never an accidental flow pause.
func DecodeBusy(b []byte) (BusyPacket, error) {
	if len(b) < BusyLen {
		return BusyPacket{}, ErrTruncated
	}
	if b[0] != typeBusy {
		return BusyPacket{}, ErrBadType
	}
	if len(b) > BusyLen {
		return BusyPacket{}, ErrOversized
	}
	if b[1] != wireVersion {
		return BusyPacket{}, ErrBadVersion
	}
	retry := binary.BigEndian.Uint32(b[6:])
	if retry < 1 || retry > MaxBusyRetryMillis {
		return BusyPacket{}, ErrInconsistent
	}
	if b[10]&^busyFlagShed != 0 {
		return BusyPacket{}, ErrInconsistent
	}
	return BusyPacket{
		Flow:             binary.BigEndian.Uint32(b[2:]),
		RetryAfterMillis: retry,
		Shed:             b[10]&busyFlagShed != 0,
	}, nil
}

// PacketType classifies a raw datagram for the shim's proxy loop
// without a full decode: 'P' for data, 'A' for acks (either version),
// 'F' for fetch requests, 'S' for segments, 'Y' for busy (overload
// push-back), 0 for junk.
func PacketType(b []byte) byte {
	if len(b) == 0 {
		return 0
	}
	switch b[0] {
	case typeData, typeAck, typeFetch, typeSegment, typeBusy:
		return b[0]
	case typeAckV2:
		return typeAck
	}
	return 0
}
