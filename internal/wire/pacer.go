package wire

// Pacer is a token bucket measured in bytes. A send loop advances it
// with the controller's current pacing rate, takes tokens per packet,
// and asks how long to sleep when the bucket runs dry. The burst
// capacity absorbs OS sleep granularity: a loop that oversleeps by a
// millisecond finds the accumulated tokens waiting and emits a train,
// keeping the average rate exact — the same mechanism as Linux's
// fq/pacing with GSO trains, and the real-time analog of the
// simulator's multi-packet pacing events. Exported so the sharded
// engine datapath reuses the exact pacing semantics of the per-flow
// Sender; Cap must be set before first use.
type Pacer struct {
	tokens float64 // bytes available
	last   float64 // clock seconds of the previous advance
	Cap    float64 // max accumulated bytes
	inited bool
}

// Reset empties the bucket and re-anchors its clock.
func (p *Pacer) Reset(now float64) {
	p.tokens = 0
	p.last = now
	p.inited = true
}

// Advance accrues tokens for the elapsed time at rate bytes/sec. An
// infinite or non-positive rate fills the bucket: pacing is disabled
// and the window (or the app limit) is the only brake.
func (p *Pacer) Advance(now, rate float64) {
	if !p.inited {
		p.Reset(now)
	}
	dt := now - p.last
	if dt < 0 {
		dt = 0
	}
	p.last = now
	if rate <= 0 || rate > MaxFiniteRate {
		p.tokens = p.Cap
		return
	}
	p.tokens += dt * rate
	if p.tokens > p.Cap {
		p.tokens = p.Cap
	}
}

// Take consumes n bytes if available.
func (p *Pacer) Take(n int) bool {
	if p.tokens < float64(n) {
		return false
	}
	p.tokens -= float64(n)
	return true
}

// Delay returns the seconds until n bytes of tokens will have accrued
// at rate bytes/sec (0 when they already have).
func (p *Pacer) Delay(n int, rate float64) float64 {
	deficit := float64(n) - p.tokens
	if deficit <= 0 {
		return 0
	}
	if rate <= 0 || rate > MaxFiniteRate {
		return 0
	}
	return deficit / rate
}

// MaxFiniteRate is the bytes/sec above which pacing is treated as
// disabled (math.Inf would also work, but an explicit ceiling keeps
// the arithmetic finite). 125e9 B/s = 1 Tbps.
const MaxFiniteRate = 125e9

// maxFiniteRate keeps the package-internal spelling working.
const maxFiniteRate = MaxFiniteRate
