package wire

import (
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"net"
	"sync"
	"time"

	"pccproteus/internal/chaos"
)

// ShimConfig parameterizes the emulated bottleneck the shim inserts
// into the loopback path. It deliberately mirrors netem.Link +
// netem.Path so a LinkSpec maps onto it field-for-field and matched
// sim/wire scenarios are comparable.
type ShimConfig struct {
	RateMbps   float64 // bottleneck capacity
	QueueBytes int     // tail-drop byte queue
	Delay      float64 // forward one-way propagation delay, seconds
	AckDelay   float64 // reverse-path delay applied to acks, seconds
	LossProb   float64 // random (non-congestion) loss probability

	// Lognormal forward jitter, as netem.LognormalNoise: extra
	// head-of-line latency with median JitterMedian seconds and shape
	// JitterSigma. Zero median disables it.
	JitterMedian float64
	JitterSigma  float64

	// Seed drives the shim's private RNG (loss, jitter) through
	// MixSeed, so impairments are reproducible run-to-run. Zero means
	// seed 1.
	Seed int64
}

// ShimStats aggregates the shim's counters, mirroring netem.LinkStats
// (including the fault-attribution counters, so a chaos plan replayed
// through both worlds can be compared category by category).
type ShimStats struct {
	Enqueued   int64 // bottleneck packets (data/segments) accepted into the queue
	Dropped    int64 // bottleneck packets tail-dropped
	LostRandom int64 // bottleneck packets destroyed by random loss
	Delivered  int64 // bottleneck packets forwarded to their endpoint
	AcksRelay  int64 // acks forwarded to the sender
	FetchRelay int64 // fetch requests forwarded to the server
	Overflow   int64 // packets lost to shim internal backlog (should be 0)
	SentBytes  int64 // bytes serialized through the emulated bottleneck

	FaultDrop    int64 // data packets destroyed by an injected blackout
	AckFaultDrop int64 // acks destroyed by a blackout or ack-path blackout
	Corrupted    int64 // data packets damaged in flight by injected corruption
	Duplicated   int64 // extra copies created by injected duplication
	Reordered    int64 // data packets released out of order
	Flushed      int64 // in-flight data packets discarded by a peer restart
	AckFlushed   int64 // in-flight acks discarded by a peer restart
}

// ShimUpdate is one timed impairment change, used to replay adversary
// schedules on the wire: at At seconds after Start, the shim adopts
// the given capacity, loss, extra forward delay, and queue size.
type ShimUpdate struct {
	At         float64
	RateMbps   float64
	LossProb   float64
	ExtraDelay float64 // added to the configured base Delay
	QueueBytes int
}

// forwardItem is one datagram scheduled for release at a deadline.
// Deadlines within one channel are nondecreasing by construction, so
// a single goroutine draining the channel in FIFO order preserves
// both timing and ordering without a timer heap. (Reorder-selected
// packets go to a separate channel precisely because their deadlines
// break this invariant for the main stream.) epoch stamps the restart
// epoch at enqueue: items from a flushed epoch are discarded at
// release.
// toSender selects the release destination: the learned dialing
// endpoint (a wire sender's acks, a fetcher's segments) instead of the
// configured dst.
type forwardItem struct {
	at       float64
	buf      []byte
	n        int
	epoch    uint64
	toSender bool
}

// Shim is a userspace netem: a UDP proxy that receives the sender's
// data stream, passes it through an emulated bottleneck (serialization
// at RateMbps into a tail-drop queue, then propagation delay, jitter
// and random loss), and forwards the survivors to the receiver. Acks
// travel back through the shim with a fixed reverse delay. Both
// endpoints talk to real sockets; only the impairments are emulated,
// which is what makes wire runs reproducible without root.
type Shim struct {
	conn *net.UDPConn
	dst  *net.UDPAddr // receiver

	clock Clock

	mu          sync.Mutex
	rate        float64 // bytes/sec
	queueCap    int
	delay       float64
	baseDelay   float64 // configured Delay, before Update extras
	ackDelay    float64
	lossProb    float64
	jitterMed   float64
	jitterSigma float64
	rng         *rand.Rand

	busyUntil   float64
	lastArrival float64
	inBase      float64 // sender→shim latency calibrated at the first packet
	inCal       bool
	lastAckOut  float64
	senderAddr  *net.UDPAddr
	stats       ShimStats
	fault       chaos.PathState // current injected fault state
	epoch       uint64          // restart epoch; bumped by Flush

	// Capacity integral for the wire-capacity invariant: capBytes
	// accumulates rate·dt across rate changes.
	capBytes  float64
	capSinceT float64

	dataCh    chan forwardItem
	ackCh     chan forwardItem
	reorderCh chan forwardItem

	bufPool *BufPool

	started  bool
	done     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewShim opens the shim's socket on 127.0.0.1 and points it at the
// receiver address dst.
func NewShim(cfg ShimConfig, dst *net.UDPAddr) (*Shim, error) {
	if cfg.RateMbps <= 0 || cfg.QueueBytes <= 0 {
		return nil, errors.New("wire: shim needs positive rate and queue")
	}
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, err
	}
	conn.SetReadBuffer(1 << 21)
	conn.SetWriteBuffer(1 << 21)
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	sh := &Shim{
		conn:        conn,
		dst:         dst,
		rate:        cfg.RateMbps * 1e6 / 8,
		queueCap:    cfg.QueueBytes,
		delay:       cfg.Delay,
		baseDelay:   cfg.Delay,
		ackDelay:    cfg.AckDelay,
		lossProb:    cfg.LossProb,
		jitterMed:   cfg.JitterMedian,
		jitterSigma: cfg.JitterSigma,
		rng:         rand.New(rand.NewSource(MixSeed(seed, 0x5153))),
		dataCh:      make(chan forwardItem, 1<<14),
		ackCh:       make(chan forwardItem, 1<<14),
		reorderCh:   make(chan forwardItem, 1<<12),
		bufPool:     PacketBufs,
	}
	return sh, nil
}

// Addr returns the address senders should dial.
func (sh *Shim) Addr() *net.UDPAddr { return sh.conn.LocalAddr().(*net.UDPAddr) }

// Start launches the proxy loop and the two forwarder goroutines.
func (sh *Shim) Start() error {
	if sh.started {
		return errors.New("wire: shim already started")
	}
	sh.clock = NewClock()
	sh.capSinceT = 0
	sh.inBase, sh.inCal = 0, false
	sh.done = make(chan struct{})
	sh.started = true
	sh.wg.Add(4)
	go sh.readLoop()
	go sh.forwardData()
	go sh.forwardAcks()
	go sh.forwardReorder()
	return nil
}

// Stop closes the socket and terminates all goroutines.
func (sh *Shim) Stop() {
	sh.stopOnce.Do(func() {
		close(sh.done)
		sh.conn.Close()
	})
	sh.wg.Wait()
}

// Stats returns a snapshot of the shim's counters.
func (sh *Shim) Stats() ShimStats {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.stats
}

// Update applies one impairment change immediately. Zero RateMbps or
// QueueBytes keep the current value; negative LossProb/ExtraDelay
// keep the current value (so partial updates compose).
func (sh *Shim) Update(u ShimUpdate) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	now := sh.clock.Now()
	sh.accrueCapacity(now)
	if u.RateMbps > 0 {
		sh.rate = u.RateMbps * 1e6 / 8
	}
	if u.QueueBytes > 0 {
		sh.queueCap = u.QueueBytes
	}
	if u.LossProb >= 0 {
		sh.lossProb = u.LossProb
	}
	if u.ExtraDelay >= 0 {
		sh.delay = sh.baseDelay + u.ExtraDelay
	}
}

// SetFault replaces the shim's injected fault state — the wire-world
// applier of a chaos plan (the sim-world twin is chaos.ApplySim
// setting the same fields on netem.Link/Path).
func (sh *Shim) SetFault(st chaos.PathState) {
	sh.mu.Lock()
	sh.fault = st
	sh.mu.Unlock()
}

// Flush models a peer restart: every datagram currently inside the
// emulated path (queued for release) is discarded at its release time
// and counted as Flushed/AckFlushed, mirroring netem's Link.Flush and
// Path.Flush.
func (sh *Shim) Flush() {
	sh.mu.Lock()
	sh.epoch++
	sh.mu.Unlock()
}

// CapacityBytes returns the integral of the (possibly time-varying)
// emulated capacity from Start until now, in bytes — the denominator
// of the wire-capacity invariant.
func (sh *Shim) CapacityBytes() float64 {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.accrueCapacity(sh.clock.Now())
	return sh.capBytes
}

func (sh *Shim) accrueCapacity(now float64) {
	if now > sh.capSinceT {
		sh.capBytes += sh.rate * (now - sh.capSinceT)
		sh.capSinceT = now
	}
}

func (sh *Shim) readLoop() {
	defer sh.wg.Done()
	buf := sh.bufPool.Get()
	defer sh.bufPool.Put(buf)
	for {
		select {
		case <-sh.done:
			return
		default:
		}
		sh.conn.SetReadDeadline(time.Now().Add(readTimeout))
		n, src, err := sh.conn.ReadFromUDP(buf)
		if err != nil {
			if isTimeout(err) {
				continue
			}
			if isClosed(err) {
				return
			}
			// Transient socket errors (e.g. ICMP unreachable surfaced
			// while a peer restarts) must not kill the proxy loop.
			time.Sleep(time.Millisecond)
			continue
		}
		switch PacketType(buf[:n]) {
		case typeData:
			sh.handleBottleneck(buf, n, src, false)
		case typeSegment:
			sh.handleBottleneck(buf, n, src, true)
		case typeAck, typeBusy:
			// Busy frames ride the reverse path exactly like acks: raw
			// relay, no bottleneck emulation.
			sh.handleAck(buf, n)
		case typeFetch:
			sh.handleFetch(buf, n, src)
		}
	}
}

// handleBottleneck passes one data or segment packet through the
// emulated bottleneck.
//
// The bottleneck timeline is virtual: it is computed from the packet's
// own send stamp, normalized by the sender→shim latency observed on
// the very first packet, rather than from the shim's (scheduler-
// jittered) receive time. That makes the emulated arrival of every
// packet a deterministic function of when the sender scheduled it —
// the same property the simulator's netem.Link has — so the endpoints'
// RTT samples carry the emulated path's queueing dynamics and none of
// the host's wakeup noise. The calibration is locked at the first
// packet on purpose: a running minimum keeps drifting as rarer
// scheduling luck is observed, and each step of that drift reads as an
// RTT trend to the controller's gradient regression, while a constant
// that is a fraction of a millisecond off merely shifts every RTT by
// the same amount. Physical forwarding still happens at the scheduled
// wall time; only measurement uses the virtual stamps.
// In fetch mode the same virtual bottleneck carries SEGMENT responses
// in the server→fetcher direction (seg=true): a segment echoes its
// request's scheduled-send stamp at the data packet's sentAt offset, so
// the virtual timeline is a deterministic function of the *fetcher's*
// pacing schedule, with the request's reverse trip and the server's
// turnaround absorbed into the first-packet calibration as constants.
func (sh *Shim) handleBottleneck(buf []byte, n int, src *net.UDPAddr, seg bool) {
	var sentNanos int64
	if seg {
		if n < SegmentHeaderLen || buf[1] != wireVersion {
			return
		}
		sentNanos = int64(binary.BigEndian.Uint64(buf[10:]))
	} else {
		h, err := DecodeData(buf[:n])
		if err != nil {
			return
		}
		sentNanos = h.SentAt
	}
	sh.mu.Lock()
	if !seg && (sh.senderAddr == nil || !sh.senderAddr.IP.Equal(src.IP) || sh.senderAddr.Port != src.Port) {
		sh.senderAddr = src // learn/refresh the sender's return address
	}
	if sh.fault.LinkDown {
		// Blackout destroys the packet before any queue or capacity
		// accounting — the same attribution point as netem.Link.Send.
		sh.stats.FaultDrop++
		sh.mu.Unlock()
		return
	}
	now := sh.clock.Now()
	sh.accrueCapacity(now)
	sentAt := sh.clock.SecondsSince(sentNanos)
	if !sh.inCal {
		sh.inBase = now - sentAt
		sh.inCal = true
	}
	start := sentAt + sh.inBase
	// The tail-drop decision is taken on the virtual timeline as well:
	// the bytes queued ahead of this packet are exactly the work the
	// bottleneck still owes when the packet arrives, (busyUntil −
	// arrival)·rate. Accounting drops physically (enqueue on receipt,
	// release on a wall-clock timer) would jitter *which* packets of an
	// overloaded interval die, and at deep overload the controller's
	// hi/lo probe comparisons are decided by precisely that loss
	// attribution — the simulator's deterministic tail drop is part of
	// the behavior under test.
	if backlog := (sh.busyUntil - start) * sh.rate; backlog > 0 && int(backlog)+n > sh.queueCap {
		sh.stats.Dropped++
		sh.mu.Unlock()
		return
	}
	sh.stats.Enqueued++
	if sh.busyUntil > start {
		start = sh.busyUntil
	}
	txEnd := start + float64(n)/sh.rate
	sh.busyUntil = txEnd
	lost := sh.lossProb > 0 && sh.rng.Float64() < sh.lossProb
	jitter := 0.0
	if sh.jitterMed > 0 {
		jitter = sh.jitterMed * math.Exp(sh.jitterSigma*sh.rng.NormFloat64())
	}
	// Fault draws follow the legacy draws, each gated on its
	// probability, matching the draw order in netem.Link.Send.
	corrupt := sh.fault.CorruptProb > 0 && sh.rng.Float64() < sh.fault.CorruptProb
	dup := sh.fault.DupProb > 0 && sh.rng.Float64() < sh.fault.DupProb
	reorder := sh.fault.ReorderProb > 0 && sh.rng.Float64() < sh.fault.ReorderProb
	arrival := txEnd + sh.delay + jitter
	ch := sh.dataCh
	// Jitter is head-of-line blocking, exactly as in netem.Link:
	// delivery order is preserved, which also keeps the forwarder's
	// single-goroutine FIFO release correct. A reorder-selected packet
	// is the deliberate exception: it is held ReorderDelay extra,
	// bypasses the clamp, and releases on its own channel so it can
	// overtake — or be overtaken by — the main stream.
	if reorder {
		sh.stats.Reordered++
		arrival += sh.fault.ReorderDelay
		ch = sh.reorderCh
	} else {
		if arrival < sh.lastArrival {
			arrival = sh.lastArrival
		}
		sh.lastArrival = arrival
	}
	sh.stats.SentBytes += int64(n)
	if lost {
		sh.stats.LostRandom++
		sh.mu.Unlock()
		return
	}
	// A receiver clock jump shifts the stamped arrival the endpoints
	// measure with, not the physical forwarding time.
	stamp := sh.clock.NanosAt(arrival + sh.fault.ClockOffset)
	b := sh.bufPool.Get()
	copy(b, buf[:n])
	if corrupt {
		// Deterministic mangle: version byte plus the tail byte. The
		// packet still traverses and is forwarded — the receiver's
		// hardened codec is what rejects it, exercising the survival
		// path end-to-end (netem, with no codec in the loop, destroys
		// the packet at delivery instead; attribution matches).
		sh.stats.Corrupted++
		b[1] ^= 0xa5
		b[n-1] ^= 0xff
	} else {
		StampArrival(b[:n], stamp)
	}
	if !sh.enqueue(ch, forwardItem{at: arrival, buf: b, n: n, epoch: sh.epoch, toSender: seg}) {
		sh.bufPool.Put(b)
	}
	if dup {
		// The duplicate copy arrives clean alongside the original
		// (only the first copy was damaged), as in netem.
		sh.stats.Duplicated++
		b2 := sh.bufPool.Get()
		copy(b2, buf[:n])
		StampArrival(b2[:n], stamp)
		if !sh.enqueue(ch, forwardItem{at: arrival, buf: b2, n: n, epoch: sh.epoch, toSender: seg}) {
			sh.bufPool.Put(b2)
		}
	}
	sh.mu.Unlock()
}

// handleFetch relays a fetch request to the server after the
// reverse-path delay — requests are the fetch protocol's mirror image
// of acks: small control datagrams whose congestion effects are modeled
// as a fixed delay, while the segment responses they elicit pay the
// emulated bottleneck. The request's source is the learned dialing
// endpoint, so segments and any cohabiting ack traffic return to the
// fetcher.
func (sh *Shim) handleFetch(buf []byte, n int, src *net.UDPAddr) {
	sh.mu.Lock()
	if sh.senderAddr == nil || !sh.senderAddr.IP.Equal(src.IP) || sh.senderAddr.Port != src.Port {
		sh.senderAddr = src
	}
	if sh.fault.LinkDown || sh.fault.AckDown {
		sh.stats.AckFaultDrop++
		sh.mu.Unlock()
		return
	}
	now := sh.clock.Now()
	out := now + sh.ackDelay
	if out < sh.lastAckOut {
		out = sh.lastAckOut
	}
	sh.lastAckOut = out
	b := sh.bufPool.Get()
	copy(b, buf[:n])
	if !sh.enqueue(sh.ackCh, forwardItem{at: out, buf: b, n: n, epoch: sh.epoch}) {
		sh.bufPool.Put(b)
	}
	sh.mu.Unlock()
}

// handleAck relays an ack to the sender after the reverse-path delay.
func (sh *Shim) handleAck(buf []byte, n int) {
	sh.mu.Lock()
	if sh.senderAddr == nil {
		sh.mu.Unlock()
		return
	}
	if sh.fault.LinkDown || sh.fault.AckDown {
		sh.stats.AckFaultDrop++
		sh.mu.Unlock()
		return
	}
	now := sh.clock.Now()
	out := now + sh.ackDelay
	if out < sh.lastAckOut {
		out = sh.lastAckOut
	}
	sh.lastAckOut = out
	b := sh.bufPool.Get()
	copy(b, buf[:n])
	if !sh.enqueue(sh.ackCh, forwardItem{at: out, buf: b, n: n, epoch: sh.epoch, toSender: true}) {
		sh.bufPool.Put(b)
	}
	sh.mu.Unlock()
}

// enqueue adds an item without blocking; a full channel counts as
// internal overflow (never observed at the rates the shim targets, but
// dropping beats deadlocking the read loop).
func (sh *Shim) enqueue(ch chan forwardItem, it forwardItem) bool {
	select {
	case ch <- it:
		return true
	default:
		sh.stats.Overflow++
		return false
	}
}

func (sh *Shim) sleepUntil(at float64) bool {
	d := at - sh.clock.Now()
	if d <= 0 {
		return true
	}
	select {
	case <-sh.done:
		return false
	case <-time.After(time.Duration(d * float64(time.Second))):
		return true
	}
}

func (sh *Shim) forwardData() {
	defer sh.wg.Done()
	sh.drainForward(sh.dataCh)
}

// forwardReorder releases reorder-selected packets on their own
// timeline, letting them land out of order relative to the main
// stream.
func (sh *Shim) forwardReorder() {
	defer sh.wg.Done()
	sh.drainForward(sh.reorderCh)
}

func (sh *Shim) drainForward(ch chan forwardItem) {
	for {
		select {
		case <-sh.done:
			return
		case it := <-ch:
			if !sh.sleepUntil(it.at) {
				return
			}
			sh.mu.Lock()
			var to *net.UDPAddr
			if it.epoch != sh.epoch {
				sh.stats.Flushed++
			} else {
				sh.stats.Delivered++
				if it.toSender {
					to = sh.senderAddr
				} else {
					to = sh.dst
				}
			}
			sh.mu.Unlock()
			if to != nil {
				sh.conn.WriteToUDP(it.buf[:it.n], to)
			}
			sh.bufPool.Put(it.buf)
		}
	}
}

func (sh *Shim) forwardAcks() {
	defer sh.wg.Done()
	for {
		select {
		case <-sh.done:
			return
		case it := <-sh.ackCh:
			if !sh.sleepUntil(it.at) {
				return
			}
			sh.mu.Lock()
			var dst *net.UDPAddr
			if it.epoch != sh.epoch {
				sh.stats.AckFlushed++
			} else if it.toSender {
				sh.stats.AcksRelay++
				dst = sh.senderAddr
			} else {
				sh.stats.FetchRelay++
				dst = sh.dst
			}
			sh.mu.Unlock()
			if dst != nil {
				sh.conn.WriteToUDP(it.buf[:it.n], dst)
			}
			sh.bufPool.Put(it.buf)
		}
	}
}
