package wire

import "sync"

// MaxDatagram is the buffer size every pooled packet buffer carries:
// large enough for any UDP datagram, so one pool serves data packets,
// acks, and fetch traffic alike.
const MaxDatagram = 64 * 1024

// BufPool is a bounded free list of fixed-size packet buffers. Unlike
// sync.Pool it never boxes the slice header through an interface, so
// Get/Put are zero-allocation in steady state — the property the
// engine's per-packet hot path is gated on — and its contents survive
// GC cycles, keeping warm-up deterministic in benchmarks. The zero
// value is unusable; use NewBufPool.
type BufPool struct {
	size int
	mu   sync.Mutex
	free [][]byte
	// misses counts Gets served by make instead of the free list;
	// benchmarks read it to prove steady-state reuse.
	misses int64
}

// maxPooledBufs bounds the free list: beyond it, Put drops the buffer
// for the GC, so a burst's worth of buffers cannot pin memory forever.
const maxPooledBufs = 4096

// NewBufPool returns a pool of size-byte buffers.
func NewBufPool(size int) *BufPool {
	return &BufPool{size: size}
}

// PacketBufs is the shared pool for full-size datagram buffers; the
// shim, receiver, and engine shards all draw from it so idle
// components donate their buffers to busy ones.
var PacketBufs = NewBufPool(MaxDatagram)

// Get returns a buffer of the pool's size, reusing a freed one when
// available.
func (p *BufPool) Get() []byte {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return b
	}
	p.misses++
	p.mu.Unlock()
	return make([]byte, p.size)
}

// Put returns a buffer to the pool. Buffers that did not come from
// this pool (wrong capacity) and overflow beyond the bound are
// dropped; passing a buffer after Put is a use-after-free bug on the
// caller's side, exactly as with sync.Pool.
func (p *BufPool) Put(b []byte) {
	if cap(b) < p.size {
		return
	}
	b = b[:p.size]
	p.mu.Lock()
	if len(p.free) < maxPooledBufs {
		p.free = append(p.free, b)
	}
	p.mu.Unlock()
}

// Misses reports how many Gets allocated fresh memory.
func (p *BufPool) Misses() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.misses
}
