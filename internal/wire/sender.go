package wire

import (
	"errors"
	"math"
	"net"
	"os"
	"sync"
	"time"

	"pccproteus/internal/netem"
	"pccproteus/internal/trace"
	"pccproteus/internal/transport"
)

// Conn is the datagram socket surface the sender needs. *net.UDPConn
// (connected with net.DialUDP) satisfies it; tests substitute
// in-process fakes.
type Conn interface {
	Write(b []byte) (int, error)
	Read(b []byte) (int, error)
	SetReadDeadline(t time.Time) error
	Close() error
}

const (
	dupAckThreshold = 3 // matches the simulated transport

	// minSleep is the shortest pacing sleep worth issuing: below OS
	// timer resolution a sleep is pure overhead, so the token bucket
	// absorbs it and the next wake emits a train.
	minSleep = 50 * time.Microsecond
	// maxSleep bounds how long the send loop naps when blocked on the
	// window or the app limit, so acks and RTOs are handled promptly.
	maxSleep = time.Millisecond
	// rtoCheckEvery throttles the timeout scan on the send path.
	rtoCheckEvery = 0.010
	// maxRTOBackoff caps the exponential RTO backoff exponent: across
	// consecutive ack-less expiries the effective RTO doubles up to
	// 2^maxRTOBackoff times, so a dead path costs geometrically fewer
	// spurious loss declarations instead of one per scan forever.
	maxRTOBackoff = 4
	// maxRTOCap bounds the backed-off RTO in seconds (unless the base
	// RTO estimate itself already exceeds it).
	maxRTOCap = 3.0
	// watchdogFloor is the minimum ack-silence (seconds) before the
	// stall watchdog may trip; 2*RTO applies when that is larger.
	watchdogFloor = 0.5
	// probeEvery is the keep-alive probe cadence (seconds) during an
	// outage: cheap header-only packets that bypass the controller and
	// whose first ack signals the path has healed.
	probeEvery = 0.25
	// maxUnackedRecs bounds the sender's in-flight bookkeeping. The RTO
	// normally retires records long before this; the cap is the
	// backstop guaranteeing no state growth when acks never come.
	maxUnackedRecs = 1 << 16
	// schedSlack is how far past one bucket depth the pacing schedule
	// may trail the wall clock before an idle restart re-anchors it.
	// Steady sending keeps the schedule within a bucket depth of the
	// wall clock, so only a genuine stall (window- or app-limited for
	// a quarter second) re-anchors; rate changes never do.
	schedSlack = 0.25
	// readTimeout is the receive loop's poll interval for shutdown.
	readTimeout = 50 * time.Millisecond
)

// RTTSample is one acknowledged packet's RTT, timestamped on the
// sender's clock so measurement windows can be cut afterwards.
type RTTSample struct {
	T   float64
	RTT float64
}

// SenderStats is a consistent snapshot of the sender's counters.
type SenderStats struct {
	SentPkts   int64
	SentBytes  int64
	AckedPkts  int64
	AckedBytes int64
	LostPkts   int64
	LostBytes  int64
	Inflight   int
	SRTT       float64
	MinRTT     float64
	RateMbps   float64 // controller target rate at snapshot time

	BadAcks       int64 // datagrams the ack codec rejected
	ProbesSent    int64 // keep-alive probes emitted during outages
	WatchdogTrips int64 // stall-watchdog activations
	Recoveries    int64 // outages ended by a delivered ack
	UnackedRecs   int   // live sender bookkeeping records
	InOutage      bool  // watchdog currently tripped
}

// Sender drives one congestion-controlled flow over a datagram socket.
// Configure the exported fields, then Start. Two goroutines run until
// Stop: a token-bucket pacing loop and an ack receive loop; all
// controller callbacks happen under one mutex, in real time, with the
// same OnSend/OnAck/OnLoss semantics as the simulated transport.
type Sender struct {
	CC   transport.Controller
	Conn Conn

	// Limit, when positive, bounds the transfer (lost bytes are
	// re-credited, as in the simulated transport). Zero streams
	// indefinitely until Stop.
	Limit int64
	// Burst is the packet-train length per pacing wake (default
	// transport.DefaultBurst).
	Burst int
	// PacketSize is the on-wire datagram size (default netem.MTU, so
	// wire and sim account serialization identically).
	PacketSize int
	// RecordRTT retains every RTT sample with its timestamp.
	RecordRTT bool
	// Recorder, when non-nil, receives flight-recorder events for
	// FlowID: RTT samples and declared losses from the datapath, plus
	// whatever the controller emits through transport.TraceAware. The
	// recorder is only ever touched under the sender's mutex.
	Recorder *trace.Recorder
	// FlowID tags trace events (default 1).
	FlowID int

	clock Clock
	tr    trace.Tracer

	mu       sync.Mutex
	rtt      transport.RTTEstimator
	pacer    Pacer
	unacked  []*wireRec
	freelist []*wireRec
	sp       transport.SentPacket // reused OnSend scratch
	seq      int64
	inflight int
	launched int64
	maxSack  int64

	sentPkts   int64
	sentBytes  int64
	ackedPkts  int64
	ackedBytes int64
	lostPkts   int64
	lostBytes  int64

	lastRTOCheck float64
	revBase      float64 // reverse-path delay calibrated at the first ack
	revCal       bool
	sched        float64 // next packet's scheduled send time
	schedAnchor  bool    // sched has been anchored since the last idle
	rttSamples   []RTTSample

	// Survival machinery: exponential RTO backoff plus a stall watchdog
	// that freezes the controller during a path outage and re-probes
	// from the last known-good rate once the path heals.
	rtoBackoff   int
	lastAckAt    float64 // sender-clock time of the last decoded ack
	lastGoodRate float64 // controller rate (B/s) at the last ack
	outage       bool
	outageAt     float64
	resumeRate   float64 // rate to restore on recovery (B/s)
	nextProbeAt  float64
	badAcks      int64
	probes       int64
	wdTrips      int64
	wdRecoveries int64

	sendBuf []byte
	ackBuf  [MaxAckLen]byte
	ack     AckPacket

	started  bool
	done     chan struct{} // closed by Stop
	complete chan struct{} // closed when Limit is reached
	compOnce sync.Once
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// wireRec is the sender-side record of one in-flight packet. sentAt is
// the packet's scheduled (token-bucket) send time — the measurement
// timebase; wallAt is the actual wall-clock emission time, used for
// loss-detection and RTO aging, which must follow real elapsed time.
type wireRec struct {
	seq    int64
	size   int
	sentAt float64
	wallAt float64
	mi     int64
	acked  bool
	lost   bool
	probe  bool // keep-alive probe: invisible to the controller
}

// Start validates configuration and launches the datapath goroutines.
func (s *Sender) Start() error {
	if s.started {
		return errors.New("wire: sender already started")
	}
	if s.CC == nil || s.Conn == nil {
		return errors.New("wire: sender needs CC and Conn")
	}
	if s.PacketSize <= 0 {
		s.PacketSize = netem.MTU
	}
	if s.PacketSize < DataHeaderLen {
		return errors.New("wire: packet size below header size")
	}
	if s.Burst <= 0 {
		s.Burst = transport.DefaultBurst
	}
	if s.FlowID == 0 {
		s.FlowID = 1
	}
	s.tr = s.Recorder.Tracer(s.FlowID) // nil Recorder yields NopTracer
	if ta, ok := s.CC.(transport.TraceAware); ok {
		ta.SetTracer(s.tr)
	}
	s.clock = NewClock()
	s.sendBuf = make([]byte, s.PacketSize)
	s.pacer.Cap = float64(2 * s.Burst * s.PacketSize)
	s.pacer.Reset(0)
	s.done = make(chan struct{})
	s.complete = make(chan struct{})
	s.started = true
	s.wg.Add(2)
	go s.sendLoop()
	go s.recvLoop()
	return nil
}

// Done is closed once a finite transfer (Limit > 0) is fully acked.
func (s *Sender) Done() <-chan struct{} { return s.complete }

// Stop terminates both loops and closes the socket. Safe to call more
// than once and concurrently with completion.
func (s *Sender) Stop() {
	s.stopOnce.Do(func() {
		close(s.done)
		s.Conn.Close()
	})
	s.wg.Wait()
}

// Clock exposes the sender's timebase (valid after Start) so harnesses
// can timestamp their own samples on the same axis.
func (s *Sender) Clock() Clock { return s.clock }

// Stats returns a snapshot of the sender's counters.
func (s *Sender) Stats() SenderStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SenderStats{
		SentPkts: s.sentPkts, SentBytes: s.sentBytes,
		AckedPkts: s.ackedPkts, AckedBytes: s.ackedBytes,
		LostPkts: s.lostPkts, LostBytes: s.lostBytes,
		Inflight: s.inflight,
		SRTT:     s.rtt.SRTT(), MinRTT: s.rtt.MinRTT(),
		RateMbps: s.CC.PacingRate() * 8 / 1e6,
		BadAcks:  s.badAcks, ProbesSent: s.probes,
		WatchdogTrips: s.wdTrips, Recoveries: s.wdRecoveries,
		UnackedRecs: len(s.unacked), InOutage: s.outage,
	}
}

// NoteFault stamps a chaos fault transition onto this flow's trace
// timeline; the loopback chaos executor calls it as steps apply, so a
// wire trace carries the same fault events a simulated run would.
func (s *Sender) NoteFault(name string, active, value float64) {
	s.mu.Lock()
	s.tr.Fault(s.clock.Now(), name, active, value)
	s.mu.Unlock()
}

// Drain waits for the flow to go idle (nothing outstanding) or the
// timeout to elapse, whichever is first, and reports whether the flow
// drained. proteusd uses it for graceful shutdown: stop offering new
// data, let in-flight packets resolve, then Stop.
func (s *Sender) Drain(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		s.mu.Lock()
		idle := s.inflight == 0
		s.mu.Unlock()
		if idle {
			return true
		}
		if !time.Now().Before(deadline) {
			return false
		}
		select {
		case <-s.done:
			return false
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// RTTSamples returns the retained samples (RecordRTT must be set).
// The returned slice is a copy and safe to use while the flow runs.
func (s *Sender) RTTSamples() []RTTSample {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]RTTSample(nil), s.rttSamples...)
}

// --- send path -------------------------------------------------------

func (s *Sender) sendLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		default:
		}
		s.mu.Lock()
		now := s.clock.Now()
		if now-s.lastRTOCheck >= rtoCheckEvery {
			s.lastRTOCheck = now
			s.checkRTO(now)
			// Stall watchdog: with data outstanding (prune leaves the
			// head record live, so non-empty unacked means outstanding)
			// and no ack for 2*RTO (floored), declare an outage.
			if !s.outage && s.sentPkts > 0 && len(s.unacked) > 0 &&
				now-s.lastAckAt >= s.watchdogTimeout() {
				s.tripWatchdog(now)
			}
		}
		if s.outage {
			// Data sending is frozen; only cheap keep-alive probes go
			// out, hunting for the first ack that proves the path healed.
			if now >= s.nextProbeAt {
				s.nextProbeAt = now + probeEvery
				if !s.sendProbe(now) {
					s.mu.Unlock()
					return
				}
			}
			s.mu.Unlock()
			select {
			case <-s.done:
				return
			case <-time.After(maxSleep):
			}
			continue
		}
		rate := s.pacingRate()
		s.pacer.Advance(now, rate)
		// Trains are all-or-nothing: the loop waits until the bucket
		// covers a full Burst, then drains every token it holds, like
		// the simulated sender's multi-packet pacing events. Each packet
		// is stamped not with the wall clock but with its *scheduled*
		// send time, kept on a leaky-bucket timeline that advances by
		// exactly size/rate per packet while the flow sends steadily.
		// Scheduled stamps are evenly spaced no matter how the OS timer
		// jitters the wakes, so the timebase the receiver and impairment
		// shim measure against is that of a perfectly paced sender. That
		// determinism is what the controller's gradient regression
		// needs: with wall stamps, wake jitter feeds the emulated
		// bottleneck irregular arrivals whose genuine queueing variance
		// reads as RTT trends the regression cannot tell from a forming
		// queue. The schedule re-anchors at the current wake on flow
		// start and after any idle much longer than the bucket depth —
		// no back-credit, so a post-idle catch-up burst never carries
		// stamps from the dead time. Between anchors the stamps track
		// only the schedule, never the wall clock: because token accrual
		// and schedule advance are backed by the same byte count, the
		// schedule can run at most one bucket depth ahead of the wall
		// clock, and a train drained in one wake carries stamps spread
		// over the interval it was *due*, not the instant it happened
		// to be emitted.
		sent, gated := 0, false
		if s.pacer.Delay(s.trainBytes(), rate) == 0 {
			finite := rate > 0 && rate <= maxFiniteRate
			if !finite || !s.schedAnchor || now-s.sched > s.pacer.Cap/rate+schedSlack {
				s.sched = now
				s.schedAnchor = true
			}
			for {
				if s.limitReached() {
					gated = true
					break
				}
				size := s.nextSize()
				if float64(s.inflight+size) > s.CC.CWnd() {
					gated = true
					break
				}
				if !s.pacer.Take(size) {
					break
				}
				virt := now
				if finite {
					virt = s.sched
					s.sched += float64(size) / rate
				}
				if !s.emit(now, virt, size) {
					s.mu.Unlock()
					return // socket closed under us
				}
				sent++
			}
		}
		var sleep time.Duration
		if gated {
			// Window- or limit-blocked: wake on the ack-poll cadence.
			sleep = maxSleep
		} else {
			d := s.pacer.Delay(s.trainBytes(), rate)
			sleep = time.Duration(d * float64(time.Second))
			if sleep > maxSleep {
				sleep = maxSleep
			}
		}
		s.mu.Unlock()
		if sleep < minSleep {
			sleep = minSleep
		}
		select {
		case <-s.done:
			return
		case <-time.After(sleep):
		}
	}
}

// trainBytes returns the size of the next full pacing train: Burst
// packets, or whatever remains of a finite transfer if that is less.
func (s *Sender) trainBytes() int {
	n := s.Burst * s.PacketSize
	if s.Limit > 0 {
		if rem := s.Limit - s.launched; rem < int64(n) {
			n = int(rem)
			if n < DataHeaderLen {
				n = DataHeaderLen
			}
		}
	}
	return n
}

// nextSize returns the size of the next packet to send: full-size,
// except the tail of a finite transfer (never below the header).
func (s *Sender) nextSize() int {
	size := s.PacketSize
	if s.Limit > 0 {
		if rem := s.Limit - s.launched; rem < int64(size) {
			size = int(rem)
			if size < DataHeaderLen {
				size = DataHeaderLen
			}
		}
	}
	return size
}

func (s *Sender) limitReached() bool {
	return s.Limit > 0 && s.launched >= s.Limit
}

// emit transmits one packet stamped with its scheduled send time virt
// (<= now). It reports false on a permanent socket error. Called with
// the mutex held.
func (s *Sender) emit(now, virt float64, size int) bool {
	s.capUnacked(now)
	s.sp = transport.SentPacket{Seq: s.seq, Size: size, SentAt: virt}
	s.CC.OnSend(now, &s.sp)
	rec := s.newRec()
	rec.seq, rec.size, rec.sentAt, rec.wallAt, rec.mi = s.seq, size, virt, now, s.sp.MI
	rec.acked, rec.lost, rec.probe = false, false, false
	s.seq++
	s.unacked = append(s.unacked, rec)
	s.inflight += size
	s.launched += int64(size)
	s.sentPkts++
	s.sentBytes += int64(size)
	pkt := EncodeData(s.sendBuf, DataHeader{Seq: rec.seq, SentAt: s.clock.NanosAt(virt)}, size)
	if _, err := s.Conn.Write(pkt); err != nil {
		// A full socket buffer drops the datagram — a real loss the
		// datapath will detect like any other. Only a closed socket
		// ends the loop.
		return !isClosed(err)
	}
	return true
}

// sendProbe emits one header-only keep-alive packet during an outage.
// Probes carry real sequence numbers (so the receiver acks them like
// any data) but are invisible to the controller: no OnSend, no
// inflight, no byte accounting. Called with the mutex held; reports
// false on a closed socket.
func (s *Sender) sendProbe(now float64) bool {
	s.capUnacked(now)
	rec := s.newRec()
	rec.seq, rec.size, rec.sentAt, rec.wallAt, rec.mi = s.seq, DataHeaderLen, now, now, 0
	rec.acked, rec.lost, rec.probe = false, false, true
	s.seq++
	s.unacked = append(s.unacked, rec)
	s.probes++
	pkt := EncodeData(s.sendBuf, DataHeader{Seq: rec.seq, SentAt: s.clock.NanosAt(now)}, DataHeaderLen)
	if _, err := s.Conn.Write(pkt); err != nil {
		return !isClosed(err)
	}
	return true
}

// capUnacked enforces the bookkeeping bound: at the cap, the oldest
// record is force-retired (declared lost if still outstanding) so the
// slice cannot grow without limit when acks never arrive. Called with
// the mutex held.
func (s *Sender) capUnacked(now float64) {
	if len(s.unacked) < maxUnackedRecs {
		return
	}
	if rec := s.unacked[0]; !rec.acked && !rec.lost {
		s.markLost(rec, now, "evicted")
	}
	s.prune()
}

// effRTO is the retransmission timeout with exponential backoff
// applied: base*2^rtoBackoff, capped at maxRTOCap unless the base
// estimate already exceeds the cap.
func (s *Sender) effRTO() float64 {
	base := s.rtt.RTO()
	rto := base
	for i := 0; i < s.rtoBackoff; i++ {
		rto *= 2
	}
	if rto > maxRTOCap {
		rto = math.Max(maxRTOCap, base)
	}
	return rto
}

func (s *Sender) watchdogTimeout() float64 {
	w := 2 * s.rtt.RTO()
	if w < watchdogFloor {
		w = watchdogFloor
	}
	return w
}

// tripWatchdog enters outage mode: data sending freezes, the
// controller's measurement state is parked (OutageAware when the
// controller supports it, the app-pause path otherwise), and probing
// begins. Called with the mutex held.
func (s *Sender) tripWatchdog(now float64) {
	s.outage = true
	s.outageAt = now
	s.wdTrips++
	s.resumeRate = s.lastGoodRate
	s.nextProbeAt = now // first probe on the next wake
	s.tr.Fault(now, "watchdog-trip", 1, now-s.lastAckAt)
	switch cc := s.CC.(type) {
	case transport.OutageAware:
		cc.OnOutage(now)
	case transport.PauseAware:
		cc.OnAppPause(now)
	}
}

// noteAck records ack liveness: backoff resets, and a delivered ack
// during an outage is proof the path healed. Called with the mutex
// held, from processAck, before any per-packet work.
func (s *Sender) noteAck(now float64) {
	s.lastAckAt = now
	s.rtoBackoff = 0
	if s.outage {
		s.recoverFromOutage(now)
	}
}

// recoverFromOutage leaves outage mode and restores the pre-outage
// rate (the controller re-enters probing from there rather than
// crawling up from a loss-collapsed rate). Called with the mutex held.
func (s *Sender) recoverFromOutage(now float64) {
	s.outage = false
	s.wdRecoveries++
	s.tr.Fault(now, "watchdog-recover", 0, now-s.outageAt)
	switch cc := s.CC.(type) {
	case transport.OutageAware:
		cc.OnRecovery(now, s.resumeRate)
	case transport.PauseAware:
		cc.OnAppResume(now)
	}
	// Re-anchor pacing: the dead time must not turn into a catch-up
	// burst or stale schedule stamps.
	s.schedAnchor = false
	s.pacer.Reset(now)
}

// pacingRate mirrors the simulated transport's convention: an explicit
// controller rate wins; window-based controllers (PacingRate 0) get
// 1.25·cwnd/srtt once an RTT estimate exists, line rate before.
func (s *Sender) pacingRate() float64 {
	if r := s.CC.PacingRate(); r > 0 {
		return r
	}
	if !s.rtt.Valid() {
		return math.Inf(1)
	}
	cwnd := s.CC.CWnd()
	if math.IsInf(cwnd, 1) {
		return math.Inf(1)
	}
	return 1.25 * cwnd / s.rtt.SRTT()
}

// --- receive path ----------------------------------------------------

func (s *Sender) recvLoop() {
	defer s.wg.Done()
	buf := make([]byte, MaxAckLen+64)
	for {
		select {
		case <-s.done:
			return
		default:
		}
		s.Conn.SetReadDeadline(time.Now().Add(readTimeout))
		n, err := s.Conn.Read(buf)
		if err != nil {
			if isTimeout(err) {
				continue
			}
			if isClosed(err) {
				return
			}
			// Transient socket errors (e.g. ICMP port-unreachable while
			// the peer restarts) must not kill the ack path.
			time.Sleep(time.Millisecond)
			continue
		}
		s.mu.Lock()
		if derr := DecodeAck(buf[:n], &s.ack); derr != nil {
			s.badAcks++
		} else {
			s.processAck(&s.ack)
		}
		s.mu.Unlock()
	}
}

// processAck applies one ack: newly covered packets produce OnAck
// callbacks with RTT/OWD samples, then RACK-style loss detection runs.
// Called with the mutex held.
func (s *Sender) processAck(a *AckPacket) {
	now := s.clock.Now()
	s.noteAck(now) // any decoded ack is liveness: resets backoff, ends outages
	if a.Seq > s.maxSack {
		s.maxSack = a.Seq
	}
	if a.CumAck-1 > s.maxSack {
		s.maxSack = a.CumAck - 1
	}
	for _, bl := range a.Blocks {
		if bl.End-1 > s.maxSack {
			s.maxSack = bl.End - 1
		}
	}
	recvAt := s.clock.SecondsSince(a.RecvAt)
	for _, rec := range s.unacked {
		if rec.acked || rec.lost {
			continue
		}
		if rec.seq >= a.CumAck && !a.Covers(rec.seq) {
			if rec.seq > s.maxSack {
				break // sorted by seq: nothing further is covered
			}
			continue
		}
		s.ackRec(rec, now, recvAt)
	}
	s.detectLosses(now)
	s.prune()
	// The last ack-time rate is what recovery restores: acks stop the
	// moment an outage starts, so this is the pre-outage rate, not the
	// loss-collapsed one the controller decays to while blacked out.
	if r := s.CC.PacingRate(); r > 0 {
		s.lastGoodRate = r
	}
	if s.Limit > 0 && s.ackedBytes >= s.Limit {
		s.compOnce.Do(func() { close(s.complete) })
	}
}

// Covers reports whether seq falls in one of the ack's SACK blocks.
func (a *AckPacket) Covers(seq int64) bool {
	for _, bl := range a.Blocks {
		if seq >= bl.Start && seq < bl.End {
			return true
		}
	}
	return false
}

func (s *Sender) ackRec(rec *wireRec, now, recvAt float64) {
	rec.acked = true
	if rec.probe {
		// Probes exist only for liveness (noteAck already consumed it);
		// they carry no bytes the controller should hear about.
		return
	}
	s.inflight -= rec.size
	s.ackedPkts++
	s.ackedBytes += int64(rec.size)
	// Timestamp-based RTT, in the style of TCP timestamps: the forward
	// half is measured against the receiver's echoed arrival time, and
	// the reverse half contributes a constant calibrated from the first
	// ack rather than each ack's own relay jitter. The congestion
	// signal — the bottleneck queue — lives entirely in the forward
	// path, so this loses no real queueing while keeping ack-path timer
	// noise out of the samples the controller's gradient regression
	// consumes. The calibration is locked, not a running minimum: a
	// minimum keeps drifting down as rarer scheduling luck is observed,
	// and every step of that drift would read as an RTT trend. A fixed
	// offset that is a millisecond off is invisible to the controller;
	// a drifting one is not. Any fixed clock skew between the endpoints
	// cancels out of the sum either way.
	if !s.revCal {
		s.revBase = now - recvAt
		s.revCal = true
	}
	rtt := (recvAt - rec.sentAt) + s.revBase
	if rtt < 0 {
		rtt = 0
	}
	s.rtt.Update(rtt)
	s.tr.RTTSample(now, rec.seq, rtt, s.rtt.SRTT(), s.ackedBytes, s.inflight)
	if s.RecordRTT {
		s.rttSamples = append(s.rttSamples, RTTSample{T: now, RTT: rtt})
	}
	s.CC.OnAck(transport.Ack{
		Seq: rec.seq, Bytes: rec.size, SentAt: rec.sentAt, RecvAt: recvAt,
		Now: now, RTT: rtt, OWD: recvAt - rec.sentAt, MI: rec.mi,
		Inflight: s.inflight,
	})
}

// detectLosses is the RACK-style rule shared with the simulated
// transport: a packet dupAckThreshold behind the highest SACKed
// sequence is declared lost only once it is also older than
// srtt + reorder window, so real-path reordering does not manufacture
// losses.
func (s *Sender) detectLosses(now float64) {
	window := s.rtt.SRTT() + s.reorderWindow()
	for _, rec := range s.unacked {
		if rec.seq > s.maxSack-dupAckThreshold {
			break
		}
		if !rec.acked && !rec.lost && now-rec.wallAt > window {
			s.markLost(rec, now, "declared")
		}
	}
}

func (s *Sender) reorderWindow() float64 {
	w := 4 * s.rtt.RTTVar()
	if w < 0.004 {
		w = 0.004
	}
	return w
}

// checkRTO declares every outstanding packet older than the RTO lost —
// the backstop when acks stop entirely. Called with the mutex held.
func (s *Sender) checkRTO(now float64) {
	rto := s.effRTO()
	declared := false
	for _, rec := range s.unacked {
		if rec.acked || rec.lost {
			continue
		}
		if now-rec.wallAt < rto {
			break // sorted by send time: the rest are younger
		}
		s.markLost(rec, now, "rto")
		declared = true
	}
	// Back off only when the expiry happened in true ack silence (no
	// ack for a full RTO): straggler declarations while acks still
	// flow are ordinary congestion, not a dead path. Any delivered
	// ack resets the backoff in noteAck.
	if declared && now-s.lastAckAt >= rto && s.rtoBackoff < maxRTOBackoff {
		s.rtoBackoff++
	}
	s.prune()
}

func (s *Sender) markLost(rec *wireRec, now float64, reason string) {
	rec.lost = true
	if rec.probe {
		return // never in inflight, never reported to the controller
	}
	s.inflight -= rec.size
	s.lostPkts++
	s.lostBytes += int64(rec.size)
	s.tr.PacketDrop(now, rec.seq, rec.size, 0, reason)
	if s.Limit > 0 {
		s.launched -= int64(rec.size) // re-credit so a replacement goes out
	}
	s.CC.OnLoss(transport.Loss{
		Seq: rec.seq, Bytes: rec.size, SentAt: rec.sentAt, Now: now,
		MI: rec.mi, Inflight: s.inflight,
	})
}

func (s *Sender) prune() {
	i := 0
	for i < len(s.unacked) && (s.unacked[i].acked || s.unacked[i].lost) {
		s.freelist = append(s.freelist, s.unacked[i])
		i++
	}
	if i > 0 {
		n := copy(s.unacked, s.unacked[i:])
		for j := n; j < len(s.unacked); j++ {
			s.unacked[j] = nil
		}
		s.unacked = s.unacked[:n]
	}
}

func (s *Sender) newRec() *wireRec {
	if n := len(s.freelist); n > 0 {
		rec := s.freelist[n-1]
		s.freelist[n-1] = nil
		s.freelist = s.freelist[:n-1]
		return rec
	}
	return &wireRec{}
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

func isClosed(err error) bool {
	return errors.Is(err, net.ErrClosed) || errors.Is(err, os.ErrClosed)
}
