package wire

import (
	"bytes"
	"testing"
)

// FuzzDecodeData proves the data codec never panics and that every
// accepted packet re-encodes to the same header bytes.
func FuzzDecodeData(f *testing.F) {
	var buf [1500]byte
	f.Add(append([]byte(nil), EncodeData(buf[:], DataHeader{Seq: 7, SentAt: 1e18, Arrival: 2e18}, 1200)...))
	f.Add(append([]byte(nil), EncodeData(buf[:], DataHeader{}, DataHeaderLen)...))
	f.Add([]byte{})
	f.Add([]byte{typeData})
	f.Add([]byte{typeData, wireVersion})
	f.Add(bytes.Repeat([]byte{0xff}, DataHeaderLen))
	f.Fuzz(func(t *testing.T, b []byte) {
		h, err := DecodeData(b)
		if err != nil {
			return
		}
		if h.Seq < 0 || h.SentAt < 0 || h.Arrival < 0 {
			t.Fatalf("accepted negative stamps: %+v", h)
		}
		// Round-trip: re-encoding the decoded header must reproduce
		// the input's header bytes exactly.
		out := make([]byte, len(b))
		copy(out, b)
		EncodeData(out, h, len(b))
		if !bytes.Equal(out[:DataHeaderLen], b[:DataHeaderLen]) {
			t.Fatalf("header round-trip mismatch:\n in %x\nout %x", b[:DataHeaderLen], out[:DataHeaderLen])
		}
	})
}

// FuzzDecodeAck proves the ack codec never panics, that accepted acks
// satisfy the documented SACK invariants, and that rejected input
// leaves no stale blocks behind.
func FuzzDecodeAck(f *testing.F) {
	var buf [MaxAckLen]byte
	good := AckPacket{Seq: 42, SentAtEcho: 1, RecvAt: 2, CumAck: 40,
		Blocks: []SackBlock{{41, 43}, {45, 50}}}
	f.Add(append([]byte(nil), good.Encode(buf[:])...))
	f.Add(append([]byte(nil), (&AckPacket{}).Encode(buf[:])...))
	f.Add([]byte{})
	f.Add([]byte{typeAck, 0})
	f.Add(bytes.Repeat([]byte{0xff}, MaxAckLen))
	f.Fuzz(func(t *testing.T, b []byte) {
		var a AckPacket
		a.Blocks = append(a.Blocks, SackBlock{1, 2}) // stale state
		if err := DecodeAck(b, &a); err != nil {
			if len(a.Blocks) != 0 {
				t.Fatalf("rejected decode left %d stale blocks", len(a.Blocks))
			}
			return
		}
		if a.Seq < 0 || a.SentAtEcho < 0 || a.RecvAt < 0 || a.CumAck < 0 {
			t.Fatalf("accepted negative fields: %+v", a)
		}
		prev := a.CumAck
		for _, bl := range a.Blocks {
			if bl.Start >= bl.End || bl.Start < prev {
				t.Fatalf("accepted inconsistent blocks: cum=%d %+v", a.CumAck, a.Blocks)
			}
			prev = bl.End
		}
		// Round-trip: re-encoding must reproduce the input exactly
		// (the decoder enforces an exact length, so this is total).
		out := a.Encode(buf[:])
		if !bytes.Equal(out, b) {
			t.Fatalf("ack round-trip mismatch:\n in %x\nout %x", b, out)
		}
	})
}

// FuzzDecodeFetch proves the fetch-request codec never panics and that
// every accepted request re-encodes byte-identically (the packet is all
// header, so the round trip is total).
func FuzzDecodeFetch(f *testing.F) {
	var buf [FetchLen]byte
	f.Add(append([]byte(nil), EncodeFetch(buf[:], FetchHeader{ObjID: 7, Seg: 3, Nonce: 9, SentAt: 1e18})...))
	f.Add(append([]byte(nil), EncodeFetch(buf[:], FetchHeader{Meta: true})...))
	f.Add([]byte{})
	f.Add([]byte{typeFetch, wireVersion})
	f.Add(bytes.Repeat([]byte{0xff}, FetchLen))
	f.Fuzz(func(t *testing.T, b []byte) {
		h, err := DecodeFetch(b)
		if err != nil {
			return
		}
		if h.Seg < 0 || h.Nonce < 0 || h.SentAt < 0 {
			t.Fatalf("accepted negative fields: %+v", h)
		}
		out := EncodeFetch(buf[:], h)
		if !bytes.Equal(out, b) {
			t.Fatalf("fetch round-trip mismatch:\n in %x\nout %x", b, out)
		}
	})
}

// FuzzDecodeSegment proves the segment codec never panics, that every
// accepted segment satisfies the documented invariants (consistent
// geometry, exact payload length, verified CRC), and that accepted
// packets re-encode byte-identically.
func FuzzDecodeSegment(f *testing.F) {
	var buf [2048]byte
	f.Add(append([]byte(nil), EncodeSegment(buf[:], SegmentHeader{
		Nonce: 1, SentAtEcho: 2, Arrival: 3, TotalSegs: 4, ObjSize: 4000, Seg: 2,
	}, bytes.Repeat([]byte{0xab}, 1000))...))
	f.Add(append([]byte(nil), EncodeSegment(buf[:], SegmentHeader{
		Meta: true, TotalSegs: 1, ObjSize: 10,
	}, bytes.Repeat([]byte{0x11}, DigestLen))...))
	f.Add(append([]byte(nil), EncodeSegment(buf[:], SegmentHeader{TotalSegs: 1}, nil)...))
	f.Add([]byte{})
	f.Add([]byte{typeSegment, wireVersion})
	f.Add(bytes.Repeat([]byte{0xff}, SegmentHeaderLen))
	f.Fuzz(func(t *testing.T, b []byte) {
		h, payload, err := DecodeSegment(b)
		if err != nil {
			return
		}
		if h.Nonce < 0 || h.SentAtEcho < 0 || h.Arrival < 0 ||
			h.TotalSegs <= 0 || h.ObjSize < 0 || h.Seg < 0 {
			t.Fatalf("accepted negative/zero fields: %+v", h)
		}
		if len(payload) != len(b)-SegmentHeaderLen {
			t.Fatalf("payload length %d for %d-byte packet", len(payload), len(b))
		}
		if h.Meta && (len(payload) != DigestLen || h.Seg != 0) {
			t.Fatalf("accepted inconsistent meta: %+v len=%d", h, len(payload))
		}
		if !h.Meta && h.Seg >= h.TotalSegs {
			t.Fatalf("accepted seg %d of %d", h.Seg, h.TotalSegs)
		}
		out := make([]byte, len(b))
		EncodeSegment(out, h, payload)
		if !bytes.Equal(out, b) {
			t.Fatalf("segment round-trip mismatch:\n in %x\nout %x", b, out)
		}
	})
}

// FuzzDecodeBusy proves the overload push-back codec never panics and
// that every accepted frame re-encodes byte-identically (fixed-length,
// all header, so the round trip is total).
func FuzzDecodeBusy(f *testing.F) {
	var buf [BusyLen]byte
	f.Add(append([]byte(nil), EncodeBusy(buf[:], BusyPacket{Flow: 9, RetryAfterMillis: 250})...))
	f.Add(append([]byte(nil), EncodeBusy(buf[:], BusyPacket{Flow: 3 | FlowClassScavenger, RetryAfterMillis: MaxBusyRetryMillis, Shed: true})...))
	f.Add([]byte{})
	f.Add([]byte{typeBusy, 1})
	f.Add(bytes.Repeat([]byte{0xff}, BusyLen))
	f.Fuzz(func(t *testing.T, b []byte) {
		bp, err := DecodeBusy(b)
		if err != nil {
			return
		}
		if bp.RetryAfterMillis < 1 || bp.RetryAfterMillis > MaxBusyRetryMillis {
			t.Fatalf("accepted out-of-range retry: %+v", bp)
		}
		out := EncodeBusy(buf[:], bp)
		if !bytes.Equal(out, b) {
			t.Fatalf("busy round-trip mismatch:\n in %x\nout %x", b, out)
		}
	})
}
