package wire

import (
	"bytes"
	"testing"
)

// FuzzDecodeData proves the data codec never panics and that every
// accepted packet re-encodes to the same header bytes.
func FuzzDecodeData(f *testing.F) {
	var buf [1500]byte
	f.Add(append([]byte(nil), EncodeData(buf[:], DataHeader{Seq: 7, SentAt: 1e18, Arrival: 2e18}, 1200)...))
	f.Add(append([]byte(nil), EncodeData(buf[:], DataHeader{}, DataHeaderLen)...))
	f.Add([]byte{})
	f.Add([]byte{typeData})
	f.Add([]byte{typeData, wireVersion})
	f.Add(bytes.Repeat([]byte{0xff}, DataHeaderLen))
	f.Fuzz(func(t *testing.T, b []byte) {
		h, err := DecodeData(b)
		if err != nil {
			return
		}
		if h.Seq < 0 || h.SentAt < 0 || h.Arrival < 0 {
			t.Fatalf("accepted negative stamps: %+v", h)
		}
		// Round-trip: re-encoding the decoded header must reproduce
		// the input's header bytes exactly.
		out := make([]byte, len(b))
		copy(out, b)
		EncodeData(out, h, len(b))
		if !bytes.Equal(out[:DataHeaderLen], b[:DataHeaderLen]) {
			t.Fatalf("header round-trip mismatch:\n in %x\nout %x", b[:DataHeaderLen], out[:DataHeaderLen])
		}
	})
}

// FuzzDecodeAck proves the ack codec never panics, that accepted acks
// satisfy the documented SACK invariants, and that rejected input
// leaves no stale blocks behind.
func FuzzDecodeAck(f *testing.F) {
	var buf [MaxAckLen]byte
	good := AckPacket{Seq: 42, SentAtEcho: 1, RecvAt: 2, CumAck: 40,
		Blocks: []SackBlock{{41, 43}, {45, 50}}}
	f.Add(append([]byte(nil), good.Encode(buf[:])...))
	f.Add(append([]byte(nil), (&AckPacket{}).Encode(buf[:])...))
	f.Add([]byte{})
	f.Add([]byte{typeAck, 0})
	f.Add(bytes.Repeat([]byte{0xff}, MaxAckLen))
	f.Fuzz(func(t *testing.T, b []byte) {
		var a AckPacket
		a.Blocks = append(a.Blocks, SackBlock{1, 2}) // stale state
		if err := DecodeAck(b, &a); err != nil {
			if len(a.Blocks) != 0 {
				t.Fatalf("rejected decode left %d stale blocks", len(a.Blocks))
			}
			return
		}
		if a.Seq < 0 || a.SentAtEcho < 0 || a.RecvAt < 0 || a.CumAck < 0 {
			t.Fatalf("accepted negative fields: %+v", a)
		}
		prev := a.CumAck
		for _, bl := range a.Blocks {
			if bl.Start >= bl.End || bl.Start < prev {
				t.Fatalf("accepted inconsistent blocks: cum=%d %+v", a.CumAck, a.Blocks)
			}
			prev = bl.End
		}
		// Round-trip: re-encoding must reproduce the input exactly
		// (the decoder enforces an exact length, so this is total).
		out := a.Encode(buf[:])
		if !bytes.Equal(out, b) {
			t.Fatalf("ack round-trip mismatch:\n in %x\nout %x", b, out)
		}
	})
}
