package wire

import (
	"io"
	"testing"
	"time"

	"pccproteus/internal/trace"
	"pccproteus/internal/transport"
)

// This file exports the datapath micro-benchmarks so the proteusbench
// -perf mode can run them via testing.Benchmark from a regular binary.
// They mirror the _test.go benchmarks but cannot share their helpers
// (test files are invisible outside `go test`).

// benchCC is a fixed-rate controller with callbacks that do no work.
type benchCC struct{ rate, cwnd float64 }

func (c *benchCC) Name() string                              { return "bench" }
func (c *benchCC) OnSend(now float64, p *transport.SentPacket) {}
func (c *benchCC) OnAck(transport.Ack)                       {}
func (c *benchCC) OnLoss(transport.Loss)                     {}
func (c *benchCC) PacingRate() float64                       { return c.rate }
func (c *benchCC) CWnd() float64                             { return c.cwnd }

// benchConn swallows writes; the benchmarks never start the datapath
// goroutines, so reads are unreachable.
type benchConn struct{}

func (benchConn) Write(b []byte) (int, error)     { return len(b), nil }
func (benchConn) Read(b []byte) (int, error)      { return 0, io.EOF }
func (benchConn) SetReadDeadline(time.Time) error { return nil }
func (benchConn) Close() error                    { return nil }

func newBenchSender(cc transport.Controller) *Sender {
	s := &Sender{CC: cc, Conn: benchConn{}, PacketSize: 1200}
	s.clock = NewClock()
	s.tr = (*trace.Recorder)(nil).Tracer(1)
	s.sendBuf = make([]byte, s.PacketSize)
	s.pacer.Cap = float64(8 * s.PacketSize)
	s.pacer.Reset(0)
	return s
}

// RunPacerBench is the steady-state per-packet send path: token-bucket
// advance, OnSend, freelist record, header encode, stubbed socket
// write, and prune after the ack.
func RunPacerBench(b *testing.B) {
	cc := &benchCC{rate: 125e6, cwnd: 1e12}
	s := newBenchSender(cc)
	now := 0.0
	b.ReportAllocs()
	b.SetBytes(1200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 1e-4
		s.pacer.Advance(now, cc.rate)
		s.pacer.Take(1200)
		s.emit(now, now, 1200)
		rec := s.unacked[len(s.unacked)-1]
		rec.acked = true
		s.inflight -= rec.size
		s.prune()
	}
}

// RunAckBench is the per-ack receive path: ack decode, unacked walk,
// RTT update, OnAck dispatch, RACK scan, prune.
func RunAckBench(b *testing.B) {
	cc := &benchCC{rate: 125e6, cwnd: 1e12}
	s := newBenchSender(cc)
	var buf [MaxAckLen]byte
	a := AckPacket{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := float64(i) * 1e-4
		s.emit(now, now, 1200)
		a.Seq = int64(i)
		a.CumAck = int64(i + 1)
		a.RecvAt = s.clock.NanosAt(now)
		pkt := a.Encode(buf[:])
		if err := DecodeAck(pkt, &s.ack); err != nil {
			b.Fatal("decode failed")
		}
		s.processAck(&s.ack)
	}
}
