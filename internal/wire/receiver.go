package wire

import (
	"errors"
	"net"
	"net/netip"
	"sync"
	"time"
)

// ReceiverStats is a snapshot of the receive side.
type ReceiverStats struct {
	Pkts      int64
	Bytes     int64
	Dups      int64
	AcksSent  int64
	HighestRx int64 // highest sequence seen on any flow
	CumAck    int64 // cumulative ack of the most recently active flow
	BadPkts   int64 // datagrams rejected by the codec (corrupt/garbage)
	Flows     int   // live per-source flows
	Evicted   int64 // flows evicted (idle deadline or flow-cap pressure)
	FetchReqs int64 // fetch requests dispatched to OnFetch
	SegsSent  int64 // segment responses written back
}

// AckTracker maintains the receive-side sequence state of one flow: a
// cumulative ack (every seq < Cum received) plus sorted disjoint SACK
// ranges above it. Exported so the sharded engine datapath's receiver
// flows reuse the exact merge semantics of the per-source Receiver.
type AckTracker struct {
	Cum    int64 // every seq < Cum has been received
	Ranges []SackBlock
}

// flowKey identifies one flow at the receiver: the sender's source
// address plus the packet's flow ID (always 0 on version-1 packets,
// preserving the historical source-address-only keying; engine
// senders multiplex many flow IDs over one source socket).
type flowKey struct {
	src  netip.AddrPort
	flow uint32
}

// flowState is the per-flow ack state. A sender that restarts and
// rebinds arrives from a fresh port and therefore gets fresh state —
// exactly the rebind semantics a restart needs — while the old flow's
// state ages out on the idle deadline.
type flowState struct {
	AckTracker
	pkts     int64
	dups     int64
	highest  int64
	lastSeen float64 // receiver-clock seconds of the last datagram
	v2       bool    // acks echo the data packets' wire version
}

// maxTrackedRanges bounds per-flow SACK state under pathological
// loss; overflow discards the lowest range, whose packets the sender
// will eventually retire by RTO.
const maxTrackedRanges = 64

// defaultIdleTimeout evicts a flow after this many seconds without a
// datagram; defaultMaxFlows caps live flows (the stalest is evicted
// to admit a new one). Both bound receiver state against source-port
// churn — accidental or adversarial.
const (
	defaultIdleTimeout = 60.0
	defaultMaxFlows    = 64
)

// Record merges seq into the cumulative-ack/SACK state and reports
// whether it was new.
func (f *AckTracker) Record(seq int64) bool {
	if seq < f.Cum {
		return false
	}
	if seq == f.Cum {
		f.Cum++
		for len(f.Ranges) > 0 && f.Ranges[0].Start <= f.Cum {
			if f.Ranges[0].End > f.Cum {
				f.Cum = f.Ranges[0].End
			}
			f.Ranges = f.Ranges[1:]
		}
		return true
	}
	// Out-of-order arrival: splice into the sorted disjoint ranges.
	for i := range f.Ranges {
		bl := &f.Ranges[i]
		switch {
		case seq >= bl.Start && seq < bl.End:
			return false
		case seq == bl.End:
			bl.End++
			if i+1 < len(f.Ranges) && f.Ranges[i+1].Start == bl.End {
				bl.End = f.Ranges[i+1].End
				f.Ranges = append(f.Ranges[:i+1], f.Ranges[i+2:]...)
			}
			return true
		case seq == bl.Start-1:
			bl.Start--
			return true
		case seq < bl.Start:
			f.Ranges = append(f.Ranges, SackBlock{})
			copy(f.Ranges[i+1:], f.Ranges[i:])
			f.Ranges[i] = SackBlock{Start: seq, End: seq + 1}
			return true
		}
	}
	f.Ranges = append(f.Ranges, SackBlock{Start: seq, End: seq + 1})
	if len(f.Ranges) > maxTrackedRanges {
		f.Ranges = f.Ranges[1:]
	}
	return true
}

// Receiver is the ack-generating endpoint: it tracks received
// sequences per source flow as a cumulative ack plus SACK ranges and
// answers every data packet with an ack, giving the sender the
// per-packet ack clock the controllers' monitor machinery expects.
type Receiver struct {
	// Conn is the unconnected listening socket; acks go back to each
	// data packet's source address, so the receiver works identically
	// behind the impairment shim and on a bare two-process path.
	Conn *net.UDPConn
	// OnDeliver, when set, observes every arriving data packet (bytes,
	// receiver-clock seconds). Called from the receive goroutine.
	OnDeliver func(now float64, bytes int)
	// OnFetch, when set, answers fetch requests: it is handed the
	// decoded request and a scratch buffer (MaxDataLen bytes, reused
	// across calls) and returns the encoded SEGMENT response to write
	// back, or nil to ignore the request (unknown object). Called from
	// the receive goroutine, so implementations must be safe against
	// the receiver's other callbacks but need no internal locking of
	// the buffer. Set before Start.
	OnFetch func(h FetchHeader, buf []byte) []byte
	// IdleTimeout evicts a flow after this many seconds of silence;
	// zero means defaultIdleTimeout. Set before Start.
	IdleTimeout float64
	// MaxFlows caps live per-source flows; zero means defaultMaxFlows.
	MaxFlows int

	clock Clock

	mu        sync.Mutex
	flows     map[flowKey]*flowState
	pkts      int64
	bytes     int64
	dups      int64
	acks      int64
	bad       int64
	evicted   int64
	fetchReqs int64
	segsSent  int64
	highest   int64
	lastCum   int64 // cum of the most recently active flow, for stats
	lastSweep float64

	ackScratch AckPacket
	ackBuf     [MaxAckLen]byte
	// Eviction's final ack uses its own scratch: eviction runs inside
	// the sweep, which the loop calls *between* encoding the pending ack
	// into ackBuf and writing it out after unlock — sharing the buffer
	// would corrupt that in-flight ack.
	evictScratch AckPacket
	evictBuf     [MaxAckLen]byte
	fetchBuf     []byte // OnFetch response scratch, allocated at Start

	started  bool
	done     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// Start launches the receive loop.
func (r *Receiver) Start() error {
	if r.started {
		return errors.New("wire: receiver already started")
	}
	if r.Conn == nil {
		return errors.New("wire: receiver needs Conn")
	}
	r.clock = NewClock()
	r.highest = -1
	r.flows = make(map[flowKey]*flowState)
	if r.IdleTimeout <= 0 {
		r.IdleTimeout = defaultIdleTimeout
	}
	if r.MaxFlows <= 0 {
		r.MaxFlows = defaultMaxFlows
	}
	if r.OnFetch != nil {
		r.fetchBuf = make([]byte, MaxDataLen)
	}
	r.done = make(chan struct{})
	r.started = true
	r.wg.Add(1)
	go r.loop()
	return nil
}

// Stop terminates the loop and closes the socket.
func (r *Receiver) Stop() {
	r.stopOnce.Do(func() {
		close(r.done)
		r.Conn.Close()
	})
	r.wg.Wait()
}

// Reset discards all per-flow state, modeling a receiver-process
// restart: senders see their cumulative acks regress to zero and must
// cope (the chaos peer-restart fault drives this).
func (r *Receiver) Reset() {
	r.mu.Lock()
	r.flows = make(map[flowKey]*flowState)
	r.lastCum = 0
	r.mu.Unlock()
}

// Addr returns the listening address.
func (r *Receiver) Addr() *net.UDPAddr { return r.Conn.LocalAddr().(*net.UDPAddr) }

// Stats returns a snapshot of the receiver's counters.
func (r *Receiver) Stats() ReceiverStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return ReceiverStats{
		Pkts: r.pkts, Bytes: r.bytes, Dups: r.dups, AcksSent: r.acks,
		HighestRx: r.highest, CumAck: r.lastCum, BadPkts: r.bad,
		Flows: len(r.flows), Evicted: r.evicted,
		FetchReqs: r.fetchReqs, SegsSent: r.segsSent,
	}
}

// flow returns (creating if needed) the state for src, enforcing the
// flow cap by evicting the stalest flow. Called with the mutex held.
func (r *Receiver) flow(key flowKey, now float64) *flowState {
	if f, ok := r.flows[key]; ok {
		return f
	}
	if len(r.flows) >= r.MaxFlows {
		var oldKey flowKey
		oldest := now + 1
		for k, f := range r.flows {
			if f.lastSeen < oldest {
				oldest = f.lastSeen
				oldKey = k
			}
		}
		r.flushFinalAck(oldKey, r.flows[oldKey])
		delete(r.flows, oldKey)
		r.evicted++
	}
	f := &flowState{highest: -1}
	r.flows[key] = f
	return f
}

// sweep evicts idle flows; at most once per second. Called with the
// mutex held.
func (r *Receiver) sweep(now float64) {
	if now-r.lastSweep < 1 {
		return
	}
	r.lastSweep = now
	for k, f := range r.flows {
		if now-f.lastSeen > r.IdleTimeout {
			r.flushFinalAck(k, f)
			delete(r.flows, k)
			r.evicted++
		}
	}
}

// flushFinalAck sends one last cumulative ack to a flow about to be
// evicted, so a sender whose data raced the eviction learns which
// packets actually landed instead of discovering the gap by RTO after
// it rebinds. Called with the mutex held; the write itself is rare
// (evictions are exceptional) so holding the lock across it is fine.
func (r *Receiver) flushFinalAck(key flowKey, f *flowState) {
	if r.Conn == nil { // unit-level flow-table tests run socketless
		return
	}
	ack := &r.evictScratch
	ack.Seq = f.highest
	if ack.Seq < 0 {
		ack.Seq = 0
	}
	ack.SentAtEcho = 0
	ack.RecvAt = r.clock.WallNanos()
	ack.CumAck = f.Cum
	ack.Blocks = append(ack.Blocks[:0], f.Ranges...)
	var pkt []byte
	if f.v2 {
		ack.Flow = key.flow
		pkt = ack.EncodeV2(r.evictBuf[:])
	} else {
		pkt = ack.Encode(r.evictBuf[:])
	}
	r.acks++
	r.Conn.WriteToUDPAddrPort(pkt, key.src)
}

func (r *Receiver) loop() {
	defer r.wg.Done()
	buf := PacketBufs.Get()
	defer PacketBufs.Put(buf)
	for {
		select {
		case <-r.done:
			return
		default:
		}
		r.Conn.SetReadDeadline(time.Now().Add(readTimeout))
		n, src, err := r.Conn.ReadFromUDPAddrPort(buf)
		if err != nil {
			if isTimeout(err) {
				continue
			}
			if isClosed(err) {
				return
			}
			// Transient socket errors (ICMP unreachable while a peer
			// restarts, spurious EINTR) must not kill the ack clock.
			time.Sleep(time.Millisecond)
			continue
		}
		if n > 0 && buf[0] == typeFetch && r.OnFetch != nil {
			fh, ferr := DecodeFetch(buf[:n])
			if ferr != nil {
				r.mu.Lock()
				r.bad++
				r.mu.Unlock()
				continue
			}
			// The segment store is read-only after load and fetchBuf is
			// owned by this goroutine, so no lock is needed around the
			// callback; only the counters take the mutex.
			resp := r.OnFetch(fh, r.fetchBuf)
			r.mu.Lock()
			r.fetchReqs++
			if resp != nil {
				r.segsSent++
			}
			r.mu.Unlock()
			if resp != nil {
				r.Conn.WriteToUDPAddrPort(resp, src)
			}
			continue
		}
		h, derr := DecodeData(buf[:n])
		if derr != nil {
			// Corrupt or junk input is counted and dropped — never a
			// panic, never an ack.
			r.mu.Lock()
			r.bad++
			r.mu.Unlock()
			continue
		}
		now := r.clock.Now()
		r.mu.Lock()
		f := r.flow(flowKey{src: src, flow: h.Flow}, now)
		f.lastSeen = now
		if h.Flow != 0 {
			f.v2 = true // engine flow IDs are nonzero; acks echo the version
		}
		dup := !f.Record(h.Seq)
		if dup {
			f.dups++
			r.dups++
		} else {
			f.pkts++
			r.pkts++
			r.bytes += int64(n)
		}
		if h.Seq > f.highest {
			f.highest = h.Seq
		}
		if h.Seq > r.highest {
			r.highest = h.Seq
		}
		r.lastCum = f.Cum
		ack := &r.ackScratch
		ack.Seq = h.Seq
		ack.SentAtEcho = h.SentAt
		// Prefer the shim's emulated arrival stamp: RTTs then measure
		// the emulated path, with host delivery jitter excluded. On a
		// bare path (no shim) the receiver's own clock is the truth.
		ack.RecvAt = h.Arrival
		if ack.RecvAt == 0 {
			ack.RecvAt = r.clock.WallNanos()
		}
		ack.CumAck = f.Cum
		ack.Blocks = append(ack.Blocks[:0], f.Ranges...)
		var pkt []byte
		if f.v2 {
			ack.Flow = h.Flow
			pkt = ack.EncodeV2(r.ackBuf[:])
		} else {
			ack.Flow = 0
			pkt = ack.Encode(r.ackBuf[:])
		}
		r.acks++
		r.sweep(now)
		r.mu.Unlock()
		if r.OnDeliver != nil && !dup {
			r.OnDeliver(now, n)
		}
		r.Conn.WriteToUDPAddrPort(pkt, src)
	}
}
