package wire

import (
	"errors"
	"net"
	"sync"
	"time"
)

// ReceiverStats is a snapshot of the receive side.
type ReceiverStats struct {
	Pkts      int64
	Bytes     int64
	Dups      int64
	AcksSent  int64
	HighestRx int64 // highest sequence seen
	CumAck    int64
}

// Receiver is the ack-generating endpoint: it tracks received
// sequences as a cumulative ack plus SACK ranges and answers every
// data packet with an ack, giving the sender the per-packet ack clock
// the controllers' monitor machinery expects.
type Receiver struct {
	// Conn is the unconnected listening socket; acks go back to each
	// data packet's source address, so the receiver works identically
	// behind the impairment shim and on a bare two-process path.
	Conn *net.UDPConn
	// OnDeliver, when set, observes every arriving data packet (bytes,
	// receiver-clock seconds). Called from the receive goroutine.
	OnDeliver func(now float64, bytes int)

	clock Clock

	mu      sync.Mutex
	cum     int64 // every seq < cum received
	ranges  []SackBlock
	pkts    int64
	bytes   int64
	dups    int64
	acks    int64
	highest int64

	ackScratch AckPacket
	ackBuf     [MaxAckLen]byte

	started  bool
	done     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// maxTrackedRanges bounds receiver SACK state under pathological
// loss; overflow discards the lowest range, whose packets the sender
// will eventually retire by RTO.
const maxTrackedRanges = 64

// Start launches the receive loop.
func (r *Receiver) Start() error {
	if r.started {
		return errors.New("wire: receiver already started")
	}
	if r.Conn == nil {
		return errors.New("wire: receiver needs Conn")
	}
	r.clock = NewClock()
	r.highest = -1
	r.done = make(chan struct{})
	r.started = true
	r.wg.Add(1)
	go r.loop()
	return nil
}

// Stop terminates the loop and closes the socket.
func (r *Receiver) Stop() {
	r.stopOnce.Do(func() {
		close(r.done)
		r.Conn.Close()
	})
	r.wg.Wait()
}

// Addr returns the listening address.
func (r *Receiver) Addr() *net.UDPAddr { return r.Conn.LocalAddr().(*net.UDPAddr) }

// Stats returns a snapshot of the receiver's counters.
func (r *Receiver) Stats() ReceiverStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return ReceiverStats{
		Pkts: r.pkts, Bytes: r.bytes, Dups: r.dups, AcksSent: r.acks,
		HighestRx: r.highest, CumAck: r.cum,
	}
}

func (r *Receiver) loop() {
	defer r.wg.Done()
	buf := make([]byte, 65536)
	for {
		select {
		case <-r.done:
			return
		default:
		}
		r.Conn.SetReadDeadline(time.Now().Add(readTimeout))
		n, src, err := r.Conn.ReadFromUDP(buf)
		if err != nil {
			if isTimeout(err) {
				continue
			}
			return
		}
		h, ok := DecodeData(buf[:n])
		if !ok {
			continue
		}
		r.mu.Lock()
		dup := !r.record(h.Seq)
		if dup {
			r.dups++
		} else {
			r.pkts++
			r.bytes += int64(n)
		}
		if h.Seq > r.highest {
			r.highest = h.Seq
		}
		ack := &r.ackScratch
		ack.Seq = h.Seq
		ack.SentAtEcho = h.SentAt
		// Prefer the shim's emulated arrival stamp: RTTs then measure
		// the emulated path, with host delivery jitter excluded. On a
		// bare path (no shim) the receiver's own clock is the truth.
		ack.RecvAt = h.Arrival
		if ack.RecvAt == 0 {
			ack.RecvAt = r.clock.WallNanos()
		}
		ack.CumAck = r.cum
		ack.Blocks = append(ack.Blocks[:0], r.ranges...)
		pkt := ack.Encode(r.ackBuf[:])
		r.acks++
		r.mu.Unlock()
		if r.OnDeliver != nil && !dup {
			r.OnDeliver(r.clock.Now(), n)
		}
		r.Conn.WriteToUDP(pkt, src)
	}
}

// record merges seq into the cumulative-ack/SACK state and reports
// whether it was new. Called with the mutex held.
func (r *Receiver) record(seq int64) bool {
	if seq < r.cum {
		return false
	}
	if seq == r.cum {
		r.cum++
		for len(r.ranges) > 0 && r.ranges[0].Start <= r.cum {
			if r.ranges[0].End > r.cum {
				r.cum = r.ranges[0].End
			}
			r.ranges = r.ranges[1:]
		}
		return true
	}
	// Out-of-order arrival: splice into the sorted disjoint ranges.
	for i := range r.ranges {
		bl := &r.ranges[i]
		switch {
		case seq >= bl.Start && seq < bl.End:
			return false
		case seq == bl.End:
			bl.End++
			if i+1 < len(r.ranges) && r.ranges[i+1].Start == bl.End {
				bl.End = r.ranges[i+1].End
				r.ranges = append(r.ranges[:i+1], r.ranges[i+2:]...)
			}
			return true
		case seq == bl.Start-1:
			bl.Start--
			return true
		case seq < bl.Start:
			r.ranges = append(r.ranges, SackBlock{})
			copy(r.ranges[i+1:], r.ranges[i:])
			r.ranges[i] = SackBlock{Start: seq, End: seq + 1}
			return true
		}
	}
	r.ranges = append(r.ranges, SackBlock{Start: seq, End: seq + 1})
	if len(r.ranges) > maxTrackedRanges {
		r.ranges = r.ranges[1:]
	}
	return true
}
