package wire

import (
	"math"
	"net"
	"testing"
	"time"

	"pccproteus/internal/cc/fixedrate"
	"pccproteus/internal/transport"
)

// TestLoopbackFixedRate runs the full datapath — sender, shim,
// receiver over real loopback sockets — and checks that an 8 Mbps
// fixed-rate flow through an uncongested 16 Mbps bottleneck gets its
// rate, its RTT, and (almost) no losses.
func TestLoopbackFixedRate(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time test")
	}
	res, err := RunLoopback(LoopbackConfig{
		NewController: func() transport.Controller { return fixedrate.New(8) },
		Shim: ShimConfig{
			RateMbps: 16, QueueBytes: 64 * 1500,
			Delay: 0.020, AckDelay: 0.020, Seed: 1,
		},
		Duration:    2.5,
		MeasureFrom: 1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Mbps-8) > 1.6 {
		t.Fatalf("throughput %.2f Mbps want 8±1.6 (perSec %v)", res.Mbps, res.PerSecMbps)
	}
	if res.MeanRTT < 0.040 || res.MeanRTT > 0.080 {
		t.Fatalf("mean RTT %.1f ms want ~40-80 ms", res.MeanRTT*1e3)
	}
	if res.P95RTT < res.MeanRTT {
		t.Fatalf("p95 RTT %.4f below mean %.4f", res.P95RTT, res.MeanRTT)
	}
	if res.LossRate > 0.02 {
		t.Fatalf("loss rate %.3f on an uncongested path", res.LossRate)
	}
	if res.Shim.Overflow != 0 {
		t.Fatalf("shim overflow %d, internal backlog dropped packets", res.Shim.Overflow)
	}
	if res.Receiver.Pkts == 0 || res.Sender.AckedPkts == 0 {
		t.Fatal("no packets made it end to end")
	}
}

// TestLoopbackRandomLoss checks that seeded random loss on the shim is
// detected by the sender's RACK machinery at roughly the configured
// probability.
func TestLoopbackRandomLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time test")
	}
	res, err := RunLoopback(LoopbackConfig{
		NewController: func() transport.Controller { return fixedrate.New(6) },
		Shim: ShimConfig{
			RateMbps: 50, QueueBytes: 64 * 1500,
			Delay: 0.010, AckDelay: 0.010, LossProb: 0.04, Seed: 7,
		},
		Duration:    2.5,
		MeasureFrom: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shim.LostRandom == 0 {
		t.Fatal("shim destroyed no packets at 4% loss")
	}
	if res.Sender.LostPkts == 0 {
		t.Fatal("sender detected none of the shim's losses")
	}
	if res.LossRate < 0.005 || res.LossRate > 0.12 {
		t.Fatalf("detected loss rate %.3f want ≈0.04", res.LossRate)
	}
}

// TestShimCapacityIntegralAndUpdate drives the shim's time-varying
// capacity accounting directly: the capacity integral must track rate
// changes applied through Update.
func TestShimCapacityIntegralAndUpdate(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time test")
	}
	dst := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 9} // discard
	sh, err := NewShim(ShimConfig{RateMbps: 10, QueueBytes: 1 << 16}, dst)
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.Start(); err != nil {
		t.Fatal(err)
	}
	defer sh.Stop()
	time.Sleep(300 * time.Millisecond)
	sh.Update(ShimUpdate{RateMbps: 20})
	time.Sleep(300 * time.Millisecond)
	got := sh.CapacityBytes()
	want := (10*0.3 + 20*0.3) * 1e6 / 8
	if got < want*0.7 || got > want*1.3 {
		t.Fatalf("capacity integral %.0f want ≈%.0f", got, want)
	}
	// Partial updates: zero rate keeps it, negative loss keeps it.
	sh.Update(ShimUpdate{LossProb: 0.5})
	sh.mu.Lock()
	rate, loss := sh.rate, sh.lossProb
	sh.mu.Unlock()
	if rate != 20e6/8 {
		t.Fatalf("rate changed by loss-only update: %v", rate)
	}
	if loss != 0.5 {
		t.Fatalf("loss %v want 0.5", loss)
	}
	sh.Update(ShimUpdate{LossProb: -1, ExtraDelay: 0.030})
	sh.mu.Lock()
	loss, delay := sh.lossProb, sh.delay
	sh.mu.Unlock()
	if loss != 0.5 {
		t.Fatalf("negative LossProb overwrote loss: %v", loss)
	}
	if delay != 0.030 {
		t.Fatalf("delay %v want base 0 + 0.030", delay)
	}
}

func TestShimRejectsBadConfig(t *testing.T) {
	dst := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 9}
	if _, err := NewShim(ShimConfig{RateMbps: 0, QueueBytes: 100}, dst); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := NewShim(ShimConfig{RateMbps: 10, QueueBytes: 0}, dst); err == nil {
		t.Fatal("zero queue accepted")
	}
}
