package wire

import (
	"math"
	"testing"
)

func TestDataPacketRoundtrip(t *testing.T) {
	buf := make([]byte, 1500)
	h := DataHeader{Seq: 123456789, SentAt: 1710000000123456789}
	pkt := EncodeData(buf, h, 1200)
	if len(pkt) != 1200 {
		t.Fatalf("packet length %d want 1200", len(pkt))
	}
	got, err := DecodeData(pkt)
	if err != nil || got != h {
		t.Fatalf("roundtrip: got %+v err=%v want %+v", got, err, h)
	}
	if PacketType(pkt) != typeData {
		t.Fatal("PacketType should classify as data")
	}
	// Malformed inputs must be rejected with the matching error.
	if _, err := DecodeData(pkt[:DataHeaderLen-1]); err != ErrTruncated {
		t.Fatalf("short packet: err=%v want ErrTruncated", err)
	}
	bad := append([]byte(nil), pkt...)
	bad[1] = wireVersionV2 + 1
	if _, err := DecodeData(bad); err != ErrBadVersion {
		t.Fatalf("wrong version: err=%v want ErrBadVersion", err)
	}
	if _, err := DecodeData(append([]byte{typeAck, 1, 2, 3}, make([]byte, DataHeaderLen)...)); err != ErrBadType {
		t.Fatalf("ack as data: err=%v want ErrBadType", err)
	}
	if _, err := DecodeData(make([]byte, MaxDataLen+1)); err != ErrTruncated && err != ErrBadType {
		// A giant junk buffer fails on type first; a giant valid header
		// must fail on size.
		t.Fatalf("junk: err=%v", err)
	}
	huge := make([]byte, MaxDataLen+1)
	copy(huge, pkt[:DataHeaderLen])
	if _, err := DecodeData(huge); err != ErrOversized {
		t.Fatalf("oversized: err=%v want ErrOversized", err)
	}
	neg := append([]byte(nil), pkt...)
	neg[2] |= 0x80 // negative seq
	if _, err := DecodeData(neg); err != ErrInconsistent {
		t.Fatalf("negative seq: err=%v want ErrInconsistent", err)
	}
}

func TestAckPacketRoundtrip(t *testing.T) {
	var buf [MaxAckLen]byte
	a := AckPacket{
		Seq: 42, SentAtEcho: 111, RecvAt: 222, CumAck: 40,
		Blocks: []SackBlock{{41, 43}, {45, 50}},
	}
	pkt := a.Encode(buf[:])
	if len(pkt) != AckFixedLen+2*16 {
		t.Fatalf("ack length %d", len(pkt))
	}
	if PacketType(pkt) != typeAck {
		t.Fatal("PacketType should classify as ack")
	}
	var got AckPacket
	if err := DecodeAck(pkt, &got); err != nil {
		t.Fatalf("decode failed: %v", err)
	}
	if got.Seq != 42 || got.SentAtEcho != 111 || got.RecvAt != 222 || got.CumAck != 40 {
		t.Fatalf("fixed fields: %+v", got)
	}
	if len(got.Blocks) != 2 || got.Blocks[0] != (SackBlock{41, 43}) || got.Blocks[1] != (SackBlock{45, 50}) {
		t.Fatalf("blocks: %+v", got.Blocks)
	}
	// Decoding reuses Blocks without allocating once capacity exists.
	if err := DecodeAck(pkt, &got); err != nil || len(got.Blocks) != 2 {
		t.Fatalf("re-decode failed: %v", err)
	}
}

func TestAckPacketBlockOverflowKeepsHighest(t *testing.T) {
	var buf [MaxAckLen]byte
	a := AckPacket{
		Blocks: []SackBlock{{1, 2}, {4, 5}, {7, 8}, {10, 11}, {13, 14}, {16, 20}},
	}
	pkt := a.Encode(buf[:])
	var got AckPacket
	if err := DecodeAck(pkt, &got); err != nil {
		t.Fatalf("decode failed: %v", err)
	}
	if len(got.Blocks) != MaxSackBlocks {
		t.Fatalf("got %d blocks want %d", len(got.Blocks), MaxSackBlocks)
	}
	// The highest blocks must survive — RACK keys off the top sequence.
	if got.Blocks[MaxSackBlocks-1] != (SackBlock{16, 20}) || got.Blocks[0] != (SackBlock{7, 8}) {
		t.Fatalf("wrong blocks kept: %+v", got.Blocks)
	}
}

func TestDecodeAckRejectsMalformed(t *testing.T) {
	var buf [MaxAckLen]byte
	mk := func(a AckPacket) []byte {
		return append([]byte(nil), a.Encode(buf[:])...)
	}
	base := AckPacket{Seq: 9, CumAck: 5, Blocks: []SackBlock{{7, 9}}}
	cases := []struct {
		name string
		pkt  []byte
		want error
	}{
		{"truncated header", []byte{typeAck, 0}, ErrTruncated},
		{"wrong type", mkData(), ErrBadType},
		{"block count over max", withByte(mk(base), 1, MaxSackBlocks+1), ErrInconsistent},
		{"declares more blocks than present", withByte(mk(base), 1, 2), ErrTruncated},
		{"trailing junk", append(mk(base), 0xff), ErrOversized},
		{"negative cum ack", withByte(mk(base), 26, 0x80), ErrInconsistent},
		{"empty sack block", mk(AckPacket{CumAck: 5, Blocks: []SackBlock{{7, 7}}}), ErrInconsistent},
		{"inverted sack block", mk(AckPacket{CumAck: 5, Blocks: []SackBlock{{9, 7}}}), ErrInconsistent},
		{"sack below cum ack", mk(AckPacket{CumAck: 5, Blocks: []SackBlock{{3, 4}}}), ErrInconsistent},
		{"overlapping sack blocks", mk(AckPacket{CumAck: 0, Blocks: []SackBlock{{2, 6}, {4, 8}}}), ErrInconsistent},
		{"descending sack blocks", mk(AckPacket{CumAck: 0, Blocks: []SackBlock{{8, 10}, {2, 4}}}), ErrInconsistent},
	}
	for _, tc := range cases {
		var got AckPacket
		got.Blocks = append(got.Blocks, SackBlock{1, 2}) // stale state to clear
		if err := DecodeAck(tc.pkt, &got); err != tc.want {
			t.Errorf("%s: err=%v want %v", tc.name, err, tc.want)
		} else if len(got.Blocks) != 0 {
			t.Errorf("%s: rejected decode left %d stale blocks", tc.name, len(got.Blocks))
		}
	}
	// A valid ack still decodes after all that.
	var got AckPacket
	if err := DecodeAck(mk(base), &got); err != nil {
		t.Fatalf("valid ack rejected: %v", err)
	}
}

func mkData() []byte {
	var buf [64]byte
	return append([]byte(nil), EncodeData(buf[:], DataHeader{Seq: 1}, 40)...)
}

func withByte(b []byte, i int, v byte) []byte {
	out := append([]byte(nil), b...)
	out[i] = v
	return out
}

func TestMixSeed(t *testing.T) {
	if MixSeed(42, 7) != MixSeed(42, 7) {
		t.Fatal("not deterministic")
	}
	if MixSeed(42, 7) == MixSeed(42, 8) || MixSeed(42, 7) == MixSeed(43, 7) {
		t.Fatal("streams not decorrelated")
	}
	for s := int64(0); s < 100; s++ {
		if v := MixSeed(s, s*31); v <= 0 {
			t.Fatalf("MixSeed(%d) = %d, want positive", s, v)
		}
	}
}

func TestDataPacketV2Roundtrip(t *testing.T) {
	buf := make([]byte, 1500)
	h := DataHeader{Seq: 987654321, SentAt: 1710000000123456789, Flow: 0xdeadbeef}
	pkt := EncodeDataV2(buf, h, 1200)
	got, err := DecodeData(pkt)
	if err != nil || got != h {
		t.Fatalf("v2 roundtrip: got %+v err=%v want %+v", got, err, h)
	}
	if PacketType(pkt) != typeData {
		t.Fatal("PacketType should classify v2 as data")
	}
	// The v2 arrival stamp lands at its shifted offset.
	if !StampArrival(pkt, 42) {
		t.Fatal("StampArrival should accept a v2 data packet")
	}
	got, err = DecodeData(pkt)
	if err != nil || got.Arrival != 42 || got.Flow != h.Flow {
		t.Fatalf("v2 stamp: got %+v err=%v", got, err)
	}
	// A v2 header shorter than DataHeaderLenV2 is truncated, not junk.
	if _, err := DecodeData(pkt[:DataHeaderLenV2-1]); err != ErrTruncated {
		t.Fatalf("short v2: err=%v want ErrTruncated", err)
	}
}

func TestAckPacketV2Roundtrip(t *testing.T) {
	var buf [MaxAckLen]byte
	a := AckPacket{Seq: 7, SentAtEcho: 11, RecvAt: 13, CumAck: 5, Flow: 31337,
		Blocks: []SackBlock{{Start: 8, End: 10}, {Start: 12, End: 15}}}
	pkt := a.EncodeV2(buf[:])
	if len(pkt) != AckFixedLenV2+2*16 {
		t.Fatalf("v2 ack length %d want %d", len(pkt), AckFixedLenV2+2*16)
	}
	if PacketType(pkt) != typeAck {
		t.Fatal("PacketType should classify a v2 ack as ack")
	}
	var out AckPacket
	if err := DecodeAck(pkt, &out); err != nil {
		t.Fatalf("v2 ack decode: %v", err)
	}
	if out.Seq != a.Seq || out.SentAtEcho != a.SentAtEcho || out.RecvAt != a.RecvAt ||
		out.CumAck != a.CumAck || out.Flow != a.Flow || len(out.Blocks) != 2 ||
		out.Blocks[0] != a.Blocks[0] || out.Blocks[1] != a.Blocks[1] {
		t.Fatalf("v2 ack roundtrip: got %+v want %+v", out, a)
	}
	// A v1 decode into the same struct must clear the stale Flow.
	var buf1 [MaxAckLen]byte
	v1 := AckPacket{Seq: 1, CumAck: 1}
	pkt1 := v1.Encode(buf1[:])
	if err := DecodeAck(pkt1, &out); err != nil || out.Flow != 0 {
		t.Fatalf("v1 after v2: err=%v flow=%d want 0", err, out.Flow)
	}
	// Truncated and inconsistent v2 acks are rejected.
	if err := DecodeAck(pkt[:AckFixedLenV2-1], &out); err != ErrTruncated {
		t.Fatalf("short v2 ack: err=%v want ErrTruncated", err)
	}
	if err := DecodeAck(pkt[:AckFixedLenV2], &out); err != ErrTruncated {
		t.Fatalf("v2 ack missing blocks: err=%v want ErrTruncated", err)
	}
}

func TestPacerAccrualAndDelay(t *testing.T) {
	p := Pacer{Cap: 12000}
	p.Reset(0)
	p.Advance(0.001, 1e6) // 1 MB/s for 1 ms = 1000 bytes
	if p.Take(1200) {
		t.Fatal("took more tokens than accrued")
	}
	if d := p.Delay(1200, 1e6); math.Abs(d-200e-6) > 1e-9 {
		t.Fatalf("delay %.9f want 200µs", d)
	}
	p.Advance(0.002, 1e6)
	if !p.Take(1200) {
		t.Fatal("tokens should be available after 2 ms")
	}
	// The bucket caps accumulation: a long sleep cannot build an
	// unbounded burst.
	p.Advance(10, 1e6)
	if p.tokens != p.Cap {
		t.Fatalf("tokens %.0f want cap %.0f", p.tokens, p.Cap)
	}
	// Infinite/huge rates disable pacing entirely.
	p2 := Pacer{Cap: 5000}
	p2.Advance(0, math.Inf(1))
	if !p2.Take(4999) || p2.Delay(5000, math.Inf(1)) != 0 {
		t.Fatal("infinite rate should fill the bucket and never delay")
	}
	// Time never runs backwards through the bucket.
	p3 := Pacer{Cap: 5000}
	p3.Reset(1)
	p3.Advance(0.5, 1e6)
	if p3.tokens != 0 {
		t.Fatalf("backwards advance accrued %v tokens", p3.tokens)
	}
}

func TestBusyPacketRoundtrip(t *testing.T) {
	var buf [BusyLen]byte
	cases := []BusyPacket{
		{Flow: 7, RetryAfterMillis: 250},
		{Flow: 12 | FlowClassScavenger, RetryAfterMillis: 1, Shed: true},
		{Flow: 0, RetryAfterMillis: MaxBusyRetryMillis},
	}
	for _, bp := range cases {
		pkt := EncodeBusy(buf[:], bp)
		if len(pkt) != BusyLen {
			t.Fatalf("encoded length %d want %d", len(pkt), BusyLen)
		}
		if PacketType(pkt) != typeBusy {
			t.Fatal("PacketType should classify as busy")
		}
		got, err := DecodeBusy(pkt)
		if err != nil || got != bp {
			t.Fatalf("roundtrip: got %+v err=%v want %+v", got, err, bp)
		}
	}
	// The encoder clamps out-of-range hints into the decodable range.
	if got, err := DecodeBusy(EncodeBusy(buf[:], BusyPacket{RetryAfterMillis: 0})); err != nil || got.RetryAfterMillis != 1 {
		t.Fatalf("zero hint not clamped: %+v err=%v", got, err)
	}
	if got, err := DecodeBusy(EncodeBusy(buf[:], BusyPacket{RetryAfterMillis: 1 << 30})); err != nil || got.RetryAfterMillis != MaxBusyRetryMillis {
		t.Fatalf("huge hint not clamped: %+v err=%v", got, err)
	}
}

func TestDecodeBusyRejectsMalformed(t *testing.T) {
	var buf [BusyLen]byte
	good := EncodeBusy(buf[:], BusyPacket{Flow: 5, RetryAfterMillis: 100})
	mut := func(f func(b []byte)) []byte {
		b := append([]byte(nil), good...)
		f(b)
		return b
	}
	cases := []struct {
		name string
		pkt  []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short", good[:BusyLen-1], ErrTruncated},
		{"long", append(append([]byte(nil), good...), 0), ErrOversized},
		{"wrong type", mut(func(b []byte) { b[0] = typeAck }), ErrBadType},
		{"bad version", mut(func(b []byte) { b[1] = 99 }), ErrBadVersion},
		{"zero retry", mut(func(b []byte) { b[6], b[7], b[8], b[9] = 0, 0, 0, 0 }), ErrInconsistent},
		{"huge retry", mut(func(b []byte) { b[6] = 0xff }), ErrInconsistent},
		{"unknown flags", mut(func(b []byte) { b[10] = 0x82 }), ErrInconsistent},
	}
	for _, c := range cases {
		if _, err := DecodeBusy(c.pkt); err != c.want {
			t.Errorf("%s: err=%v want %v", c.name, err, c.want)
		}
	}
}

func TestScavengerID(t *testing.T) {
	if ScavengerID(1) || ScavengerID(0) {
		t.Fatal("plain ids must not be scavenger")
	}
	if !ScavengerID(1 | FlowClassScavenger) {
		t.Fatal("class bit not detected")
	}
}
