package wire

import (
	"math"
	"testing"
)

func TestDataPacketRoundtrip(t *testing.T) {
	buf := make([]byte, 1500)
	h := DataHeader{Seq: 123456789, SentAt: 1710000000123456789}
	pkt := EncodeData(buf, h, 1200)
	if len(pkt) != 1200 {
		t.Fatalf("packet length %d want 1200", len(pkt))
	}
	got, ok := DecodeData(pkt)
	if !ok || got != h {
		t.Fatalf("roundtrip: got %+v ok=%v want %+v", got, ok, h)
	}
	if PacketType(pkt) != typeData {
		t.Fatal("PacketType should classify as data")
	}
	// Malformed inputs must be rejected.
	if _, ok := DecodeData(pkt[:DataHeaderLen-1]); ok {
		t.Fatal("short packet decoded")
	}
	bad := append([]byte(nil), pkt...)
	bad[1] = wireVersion + 1
	if _, ok := DecodeData(bad); ok {
		t.Fatal("wrong version decoded")
	}
	if _, ok := DecodeData([]byte{typeAck, 1, 2, 3}); ok {
		t.Fatal("ack decoded as data")
	}
}

func TestAckPacketRoundtrip(t *testing.T) {
	var buf [MaxAckLen]byte
	a := AckPacket{
		Seq: 42, SentAtEcho: 111, RecvAt: 222, CumAck: 40,
		Blocks: []SackBlock{{41, 43}, {45, 50}},
	}
	pkt := a.Encode(buf[:])
	if len(pkt) != AckFixedLen+2*16 {
		t.Fatalf("ack length %d", len(pkt))
	}
	if PacketType(pkt) != typeAck {
		t.Fatal("PacketType should classify as ack")
	}
	var got AckPacket
	if !DecodeAck(pkt, &got) {
		t.Fatal("decode failed")
	}
	if got.Seq != 42 || got.SentAtEcho != 111 || got.RecvAt != 222 || got.CumAck != 40 {
		t.Fatalf("fixed fields: %+v", got)
	}
	if len(got.Blocks) != 2 || got.Blocks[0] != (SackBlock{41, 43}) || got.Blocks[1] != (SackBlock{45, 50}) {
		t.Fatalf("blocks: %+v", got.Blocks)
	}
	// Decoding reuses Blocks without allocating once capacity exists.
	if !DecodeAck(pkt, &got) || len(got.Blocks) != 2 {
		t.Fatal("re-decode failed")
	}
}

func TestAckPacketBlockOverflowKeepsHighest(t *testing.T) {
	var buf [MaxAckLen]byte
	a := AckPacket{
		Blocks: []SackBlock{{1, 2}, {4, 5}, {7, 8}, {10, 11}, {13, 14}, {16, 20}},
	}
	pkt := a.Encode(buf[:])
	var got AckPacket
	if !DecodeAck(pkt, &got) {
		t.Fatal("decode failed")
	}
	if len(got.Blocks) != MaxSackBlocks {
		t.Fatalf("got %d blocks want %d", len(got.Blocks), MaxSackBlocks)
	}
	// The highest blocks must survive — RACK keys off the top sequence.
	if got.Blocks[MaxSackBlocks-1] != (SackBlock{16, 20}) || got.Blocks[0] != (SackBlock{7, 8}) {
		t.Fatalf("wrong blocks kept: %+v", got.Blocks)
	}
}

func TestDecodeAckRejectsMalformed(t *testing.T) {
	var got AckPacket
	if DecodeAck([]byte{typeAck, 0}, &got) {
		t.Fatal("truncated ack decoded")
	}
	var buf [MaxAckLen]byte
	a := AckPacket{Blocks: []SackBlock{{1, 2}}}
	pkt := append([]byte(nil), a.Encode(buf[:])...)
	pkt[1] = MaxSackBlocks + 1 // block count out of range
	if DecodeAck(pkt, &got) {
		t.Fatal("over-count ack decoded")
	}
	pkt[1] = 2 // claims more blocks than bytes present
	if DecodeAck(pkt, &got) {
		t.Fatal("short-block ack decoded")
	}
}

func TestMixSeed(t *testing.T) {
	if MixSeed(42, 7) != MixSeed(42, 7) {
		t.Fatal("not deterministic")
	}
	if MixSeed(42, 7) == MixSeed(42, 8) || MixSeed(42, 7) == MixSeed(43, 7) {
		t.Fatal("streams not decorrelated")
	}
	for s := int64(0); s < 100; s++ {
		if v := MixSeed(s, s*31); v <= 0 {
			t.Fatalf("MixSeed(%d) = %d, want positive", s, v)
		}
	}
}

func TestPacerAccrualAndDelay(t *testing.T) {
	p := pacer{cap: 12000}
	p.reset(0)
	p.advance(0.001, 1e6) // 1 MB/s for 1 ms = 1000 bytes
	if p.take(1200) {
		t.Fatal("took more tokens than accrued")
	}
	if d := p.delay(1200, 1e6); math.Abs(d-200e-6) > 1e-9 {
		t.Fatalf("delay %.9f want 200µs", d)
	}
	p.advance(0.002, 1e6)
	if !p.take(1200) {
		t.Fatal("tokens should be available after 2 ms")
	}
	// The bucket caps accumulation: a long sleep cannot build an
	// unbounded burst.
	p.advance(10, 1e6)
	if p.tokens != p.cap {
		t.Fatalf("tokens %.0f want cap %.0f", p.tokens, p.cap)
	}
	// Infinite/huge rates disable pacing entirely.
	p2 := pacer{cap: 5000}
	p2.advance(0, math.Inf(1))
	if !p2.take(4999) || p2.delay(5000, math.Inf(1)) != 0 {
		t.Fatal("infinite rate should fill the bucket and never delay")
	}
	// Time never runs backwards through the bucket.
	p3 := pacer{cap: 5000}
	p3.reset(1)
	p3.advance(0.5, 1e6)
	if p3.tokens != 0 {
		t.Fatalf("backwards advance accrued %v tokens", p3.tokens)
	}
}
