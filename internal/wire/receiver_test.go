package wire

import (
	"math/rand"
	"net/netip"
	"testing"
)

func testAddr(i int) netip.AddrPort {
	return netip.AddrPortFrom(netip.AddrFrom4([4]byte{127, 0, 0, 1}), uint16(40000+i))
}

// expectRecord drives the per-flow SACK tracker directly; ok is the
// expected "new packet" result.
func expectRecord(t *testing.T, f *flowState, seq int64, ok bool) {
	t.Helper()
	if got := f.Record(seq); got != ok {
		t.Fatalf("record(%d) = %v want %v (cum=%d ranges=%v)", seq, got, ok, f.Cum, f.Ranges)
	}
}

func TestReceiverRecordInOrder(t *testing.T) {
	f := &flowState{}
	for i := int64(0); i < 5; i++ {
		expectRecord(t, f, i, true)
	}
	if f.Cum != 5 || len(f.Ranges) != 0 {
		t.Fatalf("cum=%d ranges=%v", f.Cum, f.Ranges)
	}
	expectRecord(t, f, 3, false) // retransmit below cum is a dup
}

func TestReceiverRecordGapAndFill(t *testing.T) {
	f := &flowState{}
	expectRecord(t, f, 0, true)
	expectRecord(t, f, 2, true) // hole at 1
	if f.Cum != 1 || len(f.Ranges) != 1 || f.Ranges[0] != (SackBlock{2, 3}) {
		t.Fatalf("cum=%d ranges=%v", f.Cum, f.Ranges)
	}
	expectRecord(t, f, 2, false) // dup inside a range
	expectRecord(t, f, 1, true)  // fill the hole: cum jumps past the range
	if f.Cum != 3 || len(f.Ranges) != 0 {
		t.Fatalf("after fill: cum=%d ranges=%v", f.Cum, f.Ranges)
	}
}

func TestReceiverRecordMergesAdjacentRanges(t *testing.T) {
	f := &flowState{}
	f.Cum = 0
	expectRecord(t, f, 5, true)
	expectRecord(t, f, 7, true)
	if len(f.Ranges) != 2 {
		t.Fatalf("ranges=%v", f.Ranges)
	}
	expectRecord(t, f, 6, true) // bridges {5,6} and {7,8}
	if len(f.Ranges) != 1 || f.Ranges[0] != (SackBlock{5, 8}) {
		t.Fatalf("merge failed: %v", f.Ranges)
	}
	expectRecord(t, f, 4, true) // extends {5,8} downward
	if f.Ranges[0] != (SackBlock{4, 8}) {
		t.Fatalf("downward extend failed: %v", f.Ranges)
	}
	expectRecord(t, f, 2, true) // new range below the existing one
	if len(f.Ranges) != 2 || f.Ranges[0] != (SackBlock{2, 3}) {
		t.Fatalf("insert-below failed: %v", f.Ranges)
	}
	// Filling 0,1,3 collapses everything into cum.
	expectRecord(t, f, 0, true)
	expectRecord(t, f, 1, true)
	expectRecord(t, f, 3, true)
	if f.Cum != 8 || len(f.Ranges) != 0 {
		t.Fatalf("final: cum=%d ranges=%v", f.Cum, f.Ranges)
	}
}

func TestReceiverRecordOverflowDropsLowest(t *testing.T) {
	f := &flowState{}
	// Every other sequence: maxTrackedRanges+1 disjoint singletons.
	for i := 0; i <= maxTrackedRanges; i++ {
		expectRecord(t, f, int64(2*i+2), true)
	}
	if len(f.Ranges) != maxTrackedRanges {
		t.Fatalf("len(ranges)=%d want %d", len(f.Ranges), maxTrackedRanges)
	}
	if f.Ranges[0].Start != 4 {
		t.Fatalf("lowest range should have been discarded, got %v", f.Ranges[0])
	}
}

// Duplicated packets must never double-count: the ack view (cum +
// ranges) after N distinct packets delivered with each packet repeated
// k times must equal the view after each packet delivered once.
func TestReceiverRecordDuplicationNoDoubleCount(t *testing.T) {
	f := &flowState{}
	newCount := 0
	for i := int64(0); i < 50; i++ {
		for rep := 0; rep < 3; rep++ {
			if f.Record(i) {
				newCount++
			}
		}
	}
	if newCount != 50 {
		t.Fatalf("newCount=%d want 50 (duplicates double-counted)", newCount)
	}
	if f.Cum != 50 || len(f.Ranges) != 0 {
		t.Fatalf("cum=%d ranges=%v", f.Cum, f.Ranges)
	}
	// Duplicates of out-of-order packets sitting in SACK ranges.
	g := &flowState{}
	for _, seq := range []int64{5, 5, 7, 7, 5, 9, 7} {
		g.Record(seq)
	}
	want := []SackBlock{{5, 6}, {7, 8}, {9, 10}}
	if g.Cum != 0 || len(g.Ranges) != len(want) {
		t.Fatalf("cum=%d ranges=%v", g.Cum, g.Ranges)
	}
	for i, bl := range want {
		if g.Ranges[i] != bl {
			t.Fatalf("ranges=%v want %v", g.Ranges, want)
		}
	}
}

// Severe reordering: delivering a window of sequences in any
// permutation (with some repeated) must converge to the same ack view
// — cum past the window, no residual ranges — and every intermediate
// state must be internally consistent (sorted, disjoint, above cum).
func TestReceiverRecordSevereReordering(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		const n = 200
		order := rng.Perm(n)
		f := &flowState{}
		for _, v := range order {
			f.Record(int64(v))
			if rng.Intn(4) == 0 {
				f.Record(int64(v)) // sprinkle duplicates
			}
			checkFlowConsistent(t, f)
		}
		if f.Cum != n || len(f.Ranges) != 0 {
			t.Fatalf("trial %d: cum=%d ranges=%v", trial, f.Cum, f.Ranges)
		}
	}
}

func checkFlowConsistent(t *testing.T, f *flowState) {
	t.Helper()
	prev := f.Cum
	for i, bl := range f.Ranges {
		if bl.Start >= bl.End {
			t.Fatalf("range %d inverted: %v", i, f.Ranges)
		}
		if bl.Start < prev {
			t.Fatalf("range %d overlaps/below cum=%d: %v", i, f.Cum, f.Ranges)
		}
		prev = bl.End
	}
}

// Per-source flow isolation and bounded state: distinct sources get
// distinct ack state, the flow cap evicts the stalest flow, and the
// idle sweep reclaims silent flows.
func TestReceiverFlowEvictionBounds(t *testing.T) {
	r := &Receiver{MaxFlows: 4, IdleTimeout: 10, flows: map[flowKey]*flowState{}}
	for i := 0; i < 8; i++ {
		f := r.flow(flowKey{src: testAddr(i)}, float64(i))
		f.lastSeen = float64(i)
		f.Record(int64(i))
	}
	if len(r.flows) != 4 {
		t.Fatalf("flows=%d want 4 (cap not enforced)", len(r.flows))
	}
	if r.evicted != 4 {
		t.Fatalf("evicted=%d want 4", r.evicted)
	}
	// The survivors must be the 4 most recently seen sources.
	for i := 4; i < 8; i++ {
		if _, ok := r.flows[flowKey{src: testAddr(i)}]; !ok {
			t.Fatalf("flow %d missing: %v", i, r.flows)
		}
	}
	// Idle sweep: advance past the deadline for flows 4 and 5 only.
	r.flows[flowKey{src: testAddr(6)}].lastSeen = 100
	r.flows[flowKey{src: testAddr(7)}].lastSeen = 100
	r.sweep(101)
	if len(r.flows) != 2 {
		t.Fatalf("after sweep: flows=%d want 2", len(r.flows))
	}
	if r.evicted != 6 {
		t.Fatalf("evicted=%d want 6", r.evicted)
	}
}
