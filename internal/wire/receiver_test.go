package wire

import "testing"

// rec drives the receiver's SACK tracker directly; ok is the expected
// "new packet" result.
func expectRecord(t *testing.T, r *Receiver, seq int64, ok bool) {
	t.Helper()
	if got := r.record(seq); got != ok {
		t.Fatalf("record(%d) = %v want %v (cum=%d ranges=%v)", seq, got, ok, r.cum, r.ranges)
	}
}

func TestReceiverRecordInOrder(t *testing.T) {
	r := &Receiver{}
	for i := int64(0); i < 5; i++ {
		expectRecord(t, r, i, true)
	}
	if r.cum != 5 || len(r.ranges) != 0 {
		t.Fatalf("cum=%d ranges=%v", r.cum, r.ranges)
	}
	expectRecord(t, r, 3, false) // retransmit below cum is a dup
}

func TestReceiverRecordGapAndFill(t *testing.T) {
	r := &Receiver{}
	expectRecord(t, r, 0, true)
	expectRecord(t, r, 2, true) // hole at 1
	if r.cum != 1 || len(r.ranges) != 1 || r.ranges[0] != (SackBlock{2, 3}) {
		t.Fatalf("cum=%d ranges=%v", r.cum, r.ranges)
	}
	expectRecord(t, r, 2, false) // dup inside a range
	expectRecord(t, r, 1, true)  // fill the hole: cum jumps past the range
	if r.cum != 3 || len(r.ranges) != 0 {
		t.Fatalf("after fill: cum=%d ranges=%v", r.cum, r.ranges)
	}
}

func TestReceiverRecordMergesAdjacentRanges(t *testing.T) {
	r := &Receiver{}
	r.cum = 0
	expectRecord(t, r, 5, true)
	expectRecord(t, r, 7, true)
	if len(r.ranges) != 2 {
		t.Fatalf("ranges=%v", r.ranges)
	}
	expectRecord(t, r, 6, true) // bridges {5,6} and {7,8}
	if len(r.ranges) != 1 || r.ranges[0] != (SackBlock{5, 8}) {
		t.Fatalf("merge failed: %v", r.ranges)
	}
	expectRecord(t, r, 4, true) // extends {5,8} downward
	if r.ranges[0] != (SackBlock{4, 8}) {
		t.Fatalf("downward extend failed: %v", r.ranges)
	}
	expectRecord(t, r, 2, true) // new range below the existing one
	if len(r.ranges) != 2 || r.ranges[0] != (SackBlock{2, 3}) {
		t.Fatalf("insert-below failed: %v", r.ranges)
	}
	// Filling 0,1,3 collapses everything into cum.
	expectRecord(t, r, 0, true)
	expectRecord(t, r, 1, true)
	expectRecord(t, r, 3, true)
	if r.cum != 8 || len(r.ranges) != 0 {
		t.Fatalf("final: cum=%d ranges=%v", r.cum, r.ranges)
	}
}

func TestReceiverRecordOverflowDropsLowest(t *testing.T) {
	r := &Receiver{}
	// Every other sequence: maxTrackedRanges+1 disjoint singletons.
	for i := 0; i <= maxTrackedRanges; i++ {
		expectRecord(t, r, int64(2*i+2), true)
	}
	if len(r.ranges) != maxTrackedRanges {
		t.Fatalf("len(ranges)=%d want %d", len(r.ranges), maxTrackedRanges)
	}
	if r.ranges[0].Start != 4 {
		t.Fatalf("lowest range should have been discarded, got %v", r.ranges[0])
	}
}
