// Package stats provides the statistical machinery shared by the
// congestion controllers and the experiment harness: streaming moments,
// percentiles, Jain's fairness index, linear regression with residual
// error (the basis of Proteus's RTT-gradient estimate and its per-MI
// regression-error tolerance), EWMA/mean-deviation trackers in the style
// of the Linux kernel's smoothed-RTT state, windowed min/max filters, and
// the confusion probability used in the paper's Figure 2 analysis.
package stats

import (
	"math"
	"sort"
)

// dropNaN returns xs with NaN samples removed. When xs has no NaN it is
// returned as-is, without copying — the common case stays allocation-free.
// NaNs are treated as missing measurements everywhere in this package:
// one poisoned RTT sample must not propagate into a rate computation.
func dropNaN(xs []float64) []float64 {
	for i, x := range xs {
		if math.IsNaN(x) {
			out := append([]float64(nil), xs[:i]...)
			for _, y := range xs[i+1:] {
				if !math.IsNaN(y) {
					out = append(out, y)
				}
			}
			return out
		}
	}
	return xs
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
// NaN samples are ignored.
func Mean(xs []float64) float64 {
	xs = dropNaN(xs)
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs (divide by n,
// matching the paper's σ(RTT) definition), or 0 when fewer than two
// non-NaN samples remain.
func StdDev(xs []float64) float64 {
	xs = dropNaN(xs)
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks. It copies and sorts its
// input. Returns 0 for an empty slice; NaN samples are ignored (a NaN p
// returns the minimum, like p <= 0).
func Percentile(xs []float64, p float64) float64 {
	xs = dropNaN(xs)
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	return percentileSorted(c, p)
}

// PercentileSorted is Percentile for data already in ascending order; it
// does not allocate.
func PercentileSorted(sorted []float64, p float64) float64 {
	return percentileSorted(sorted, p)
}

func percentileSorted(c []float64, p float64) float64 {
	if len(c) == 0 {
		return 0
	}
	if !(p > 0) { // includes NaN
		return c[0]
	}
	if p >= 100 {
		return c[len(c)-1]
	}
	rank := p / 100 * float64(len(c)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return c[lo]
	}
	frac := rank - float64(lo)
	return c[lo]*(1-frac) + c[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// JainIndex returns Jain's fairness index of the allocation xs:
// (Σx)² / (n · Σx²). It is 1 for perfectly equal shares and 1/n when one
// flow takes everything. Returns 0 for empty or all-zero input; NaN
// samples are ignored.
func JainIndex(xs []float64) float64 {
	xs = dropNaN(xs)
	if len(xs) == 0 {
		return 0
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// LinReg holds the result of an ordinary-least-squares fit y = a + b·x.
type LinReg struct {
	Intercept float64 // a
	Slope     float64 // b
	Residual  float64 // sqrt(mean squared residual)
	N         int
}

// LinearRegression fits y = a + b·x by least squares. With fewer than two
// points, or zero x-variance, the slope is 0 and the intercept is the
// mean of y. Pairs where either coordinate is NaN are ignored.
func LinearRegression(x, y []float64) LinReg {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	ok := func(i int) bool { return !math.IsNaN(x[i]) && !math.IsNaN(y[i]) }
	var mx, my float64
	m := 0
	for i := 0; i < n; i++ {
		if ok(i) {
			mx += x[i]
			my += y[i]
			m++
		}
	}
	if m == 0 {
		return LinReg{}
	}
	mx /= float64(m)
	my /= float64(m)
	var sxx, sxy float64
	for i := 0; i < n; i++ {
		if !ok(i) {
			continue
		}
		dx := x[i] - mx
		sxx += dx * dx
		sxy += dx * (y[i] - my)
	}
	r := LinReg{N: m}
	if sxx == 0 || m < 2 {
		r.Intercept = my
	} else {
		r.Slope = sxy / sxx
		r.Intercept = my - r.Slope*mx
	}
	var sse float64
	for i := 0; i < n; i++ {
		if !ok(i) {
			continue
		}
		e := y[i] - (r.Intercept + r.Slope*x[i])
		sse += e * e
	}
	r.Residual = math.Sqrt(sse / float64(m))
	return r
}

// ConfusionProbability estimates P(b < a) for independent draws a from
// sampleA and b from sampleB, i.e. the probability that a value from the
// "congested" population B looks smaller than one from the "clean"
// population A — the paper's Figure 2 confusion metric. Ties count half.
// Computed exactly in O((n+m) log(n+m)).
func ConfusionProbability(sampleA, sampleB []float64) float64 {
	sampleA, sampleB = dropNaN(sampleA), dropNaN(sampleB)
	if len(sampleA) == 0 || len(sampleB) == 0 {
		return 0
	}
	a := append([]float64(nil), sampleA...)
	b := append([]float64(nil), sampleB...)
	sort.Float64s(a)
	sort.Float64s(b)
	// For each a_i count b_j < a_i (plus half the ties) with a merge walk.
	var count float64
	lo, hi := 0, 0 // b indices: b[<lo] < a_i, b[<hi] <= a_i
	for _, av := range a {
		for lo < len(b) && b[lo] < av {
			lo++
		}
		if hi < lo {
			hi = lo
		}
		for hi < len(b) && b[hi] <= av {
			hi++
		}
		count += float64(lo) + 0.5*float64(hi-lo)
	}
	return count / float64(len(a)*len(b))
}

// Welford is a streaming mean/variance accumulator.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates x. NaN samples are ignored: a single poisoned sample
// would otherwise corrupt the running moments permanently.
func (w *Welford) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of samples.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the running population variance.
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the running population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Var()) }

// EWMA is an exponentially weighted moving average with a companion mean
// absolute deviation, mirroring how the Linux kernel maintains smoothed
// RTT (srtt) and RTT variance (rttvar). Proteus reuses this structure for
// its trending-gradient and trending-deviation statistics (§5).
type EWMA struct {
	Alpha float64 // weight of a new sample for the average (e.g. 1/8)
	Beta  float64 // weight of a new sample for the deviation (e.g. 1/4)
	avg   float64
	dev   float64
	init  bool
}

// NewEWMA returns an EWMA with the kernel's classic gains (1/8, 1/4).
func NewEWMA() *EWMA { return &EWMA{Alpha: 0.125, Beta: 0.25} }

// Add incorporates a sample. NaN samples are ignored — an EWMA seeded
// or fed with NaN would stay NaN forever.
func (e *EWMA) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	if !e.init {
		e.avg = x
		e.dev = math.Abs(x) / 2
		e.init = true
		return
	}
	diff := math.Abs(x - e.avg)
	e.avg += e.Alpha * (x - e.avg)
	e.dev += e.Beta * (diff - e.dev)
}

// Initialized reports whether any sample has been added.
func (e *EWMA) Initialized() bool { return e.init }

// Avg returns the smoothed average (0 before the first sample).
func (e *EWMA) Avg() float64 { return e.avg }

// Dev returns the smoothed mean absolute deviation.
func (e *EWMA) Dev() float64 { return e.dev }

// Reset clears the filter.
func (e *EWMA) Reset() { e.avg, e.dev, e.init = 0, 0, false }

// WindowedMin tracks the minimum of samples within a trailing time
// window using a monotonic deque; used for BBR's min-RTT filter and
// COPA's standing RTT.
type WindowedMin struct {
	Window  float64
	samples []timedSample
}

type timedSample struct {
	t, v float64
}

// Add records sample v at time t (t must be nondecreasing). NaN values
// are ignored: NaN compares false with everything, so one would sit in
// the deque shadowing real minima.
func (w *WindowedMin) Add(t, v float64) {
	if math.IsNaN(v) {
		return
	}
	for len(w.samples) > 0 && w.samples[len(w.samples)-1].v >= v {
		w.samples = w.samples[:len(w.samples)-1]
	}
	w.samples = append(w.samples, timedSample{t, v})
	w.expire(t)
}

func (w *WindowedMin) expire(t float64) {
	for len(w.samples) > 0 && t-w.samples[0].t > w.Window {
		w.samples = w.samples[1:]
	}
}

// Get returns the window minimum as of time t, and whether any sample is
// present.
func (w *WindowedMin) Get(t float64) (float64, bool) {
	w.expire(t)
	if len(w.samples) == 0 {
		return 0, false
	}
	return w.samples[0].v, true
}

// WindowedMax is the mirror of WindowedMin, used for BBR's bottleneck
// bandwidth filter.
type WindowedMax struct {
	Window  float64
	samples []timedSample
}

// Add records sample v at time t (t must be nondecreasing). NaN values
// are ignored, as in WindowedMin.
func (w *WindowedMax) Add(t, v float64) {
	if math.IsNaN(v) {
		return
	}
	for len(w.samples) > 0 && w.samples[len(w.samples)-1].v <= v {
		w.samples = w.samples[:len(w.samples)-1]
	}
	w.samples = append(w.samples, timedSample{t, v})
	w.expire(t)
}

func (w *WindowedMax) expire(t float64) {
	for len(w.samples) > 0 && t-w.samples[0].t > w.Window {
		w.samples = w.samples[1:]
	}
}

// Get returns the window maximum as of time t, and whether any sample is
// present.
func (w *WindowedMax) Get(t float64) (float64, bool) {
	w.expire(t)
	if len(w.samples) == 0 {
		return 0, false
	}
	return w.samples[0].v, true
}

// Histogram is a fixed-bin histogram over [Lo, Hi); samples outside the
// range clamp to the edge bins. It renders the PDFs of Figure 2.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	N      int
}

// NewHistogram creates a histogram with bins equal-width bins.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins < 1 {
		bins = 1
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one sample. NaN samples are ignored (float-to-int
// conversion of NaN is platform-defined in Go, so a NaN bin index is
// not even deterministic); ±Inf clamps to the edge bins. A degenerate
// range (Hi <= Lo) puts everything in bin 0.
func (h *Histogram) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	b := 0
	if h.Hi > h.Lo {
		switch frac := (x - h.Lo) / (h.Hi - h.Lo); {
		case frac >= 1:
			b = len(h.Counts) - 1
		case frac > 0:
			b = int(frac * float64(len(h.Counts)))
			if b >= len(h.Counts) { // frac just below 1 can round up
				b = len(h.Counts) - 1
			}
		}
	}
	h.Counts[b]++
	h.N++
}

// PDF returns per-bin probability mass (fractions summing to 1).
func (h *Histogram) PDF() []float64 {
	out := make([]float64, len(h.Counts))
	if h.N == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(h.N)
	}
	return out
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// CDF returns the empirical CDF of xs evaluated at each sorted sample,
// as (values, cumulative fractions). Useful for plotting Figures 8–10.
// NaN samples are ignored.
func CDF(xs []float64) (values, fracs []float64) {
	xs = dropNaN(xs)
	if len(xs) == 0 {
		return nil, nil
	}
	values = append([]float64(nil), xs...)
	sort.Float64s(values)
	fracs = make([]float64, len(values))
	for i := range values {
		fracs[i] = float64(i+1) / float64(len(values))
	}
	return values, fracs
}
