package stats

import (
	"math"
	"testing"
)

// The degenerate-input contract: empty and single-sample inputs return
// well-defined zeros or identities, and NaN samples are treated as
// missing measurements — never propagated into a result.

var nan = math.NaN()

func TestDegenerateQuantiles(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		p    float64
		want float64
	}{
		{"empty", nil, 50, 0},
		{"empty p0", []float64{}, 0, 0},
		{"single", []float64{7}, 50, 7},
		{"single p0", []float64{7}, 0, 7},
		{"single p100", []float64{7}, 100, 7},
		{"p below range", []float64{1, 2, 3}, -10, 1},
		{"p above range", []float64{1, 2, 3}, 110, 3},
		{"nan p", []float64{1, 2, 3}, nan, 1},
		{"all nan", []float64{nan, nan}, 50, 0},
		{"nan mixed", []float64{nan, 4, nan, 2}, 50, 3},
		{"nan single survivor", []float64{nan, 5, nan}, 90, 5},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Percentile(c.xs, c.p); got != c.want {
				t.Fatalf("Percentile(%v, %v) = %v, want %v", c.xs, c.p, got, c.want)
			}
		})
	}
}

func TestDegenerateMoments(t *testing.T) {
	cases := []struct {
		name     string
		xs       []float64
		mean, sd float64
	}{
		{"empty", nil, 0, 0},
		{"single", []float64{3}, 3, 0},
		{"all nan", []float64{nan, nan, nan}, 0, 0},
		{"nan mixed", []float64{1, nan, 3}, 2, 1},
		{"nan leading", []float64{nan, 2, 2}, 2, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Mean(c.xs); got != c.mean {
				t.Fatalf("Mean(%v) = %v, want %v", c.xs, got, c.mean)
			}
			if got := StdDev(c.xs); got != c.sd {
				t.Fatalf("StdDev(%v) = %v, want %v", c.xs, got, c.sd)
			}
		})
	}
}

func TestDegenerateJainAndCDF(t *testing.T) {
	if got := JainIndex([]float64{nan, nan}); got != 0 {
		t.Fatalf("JainIndex(all NaN) = %v, want 0", got)
	}
	if got := JainIndex([]float64{5, nan, 5}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("JainIndex(5, NaN, 5) = %v, want 1", got)
	}
	vals, fracs := CDF([]float64{nan, 2, nan, 1})
	if len(vals) != 2 || vals[0] != 1 || vals[1] != 2 || fracs[1] != 1 {
		t.Fatalf("CDF dropped NaNs wrong: %v %v", vals, fracs)
	}
	if vals, _ := CDF([]float64{nan}); vals != nil {
		t.Fatalf("CDF(all NaN) = %v, want nil", vals)
	}
}

func TestDegenerateRegression(t *testing.T) {
	// NaN pairs are skipped: the fit must match the clean subset.
	x := []float64{0, 1, nan, 2, 3}
	y := []float64{1, 3, 7, nan, 7}
	r := LinearRegression(x, y)
	clean := LinearRegression([]float64{0, 1, 3}, []float64{1, 3, 7})
	if r.N != 3 || math.Abs(r.Slope-clean.Slope) > 1e-12 || math.Abs(r.Intercept-clean.Intercept) > 1e-12 {
		t.Fatalf("NaN-skipping fit %+v != clean fit %+v", r, clean)
	}
	if r := LinearRegression([]float64{nan}, []float64{nan}); r != (LinReg{}) {
		t.Fatalf("all-NaN regression = %+v, want zero", r)
	}
	if r := LinearRegression([]float64{1, nan}, []float64{5, 9}); r.Intercept != 5 || r.Slope != 0 || r.N != 1 {
		t.Fatalf("single clean pair = %+v", r)
	}
}

func TestDegenerateConfusion(t *testing.T) {
	if got := ConfusionProbability([]float64{nan}, []float64{1, 2}); got != 0 {
		t.Fatalf("ConfusionProbability(all-NaN A) = %v, want 0", got)
	}
	got := ConfusionProbability([]float64{2, nan}, []float64{1, nan})
	if got != 1 {
		t.Fatalf("ConfusionProbability with NaNs = %v, want 1", got)
	}
}

func TestStreamingIgnoreNaN(t *testing.T) {
	var w Welford
	for _, x := range []float64{1, nan, 3} {
		w.Add(x)
	}
	if w.N() != 2 || w.Mean() != 2 {
		t.Fatalf("Welford with NaN: n=%d mean=%v", w.N(), w.Mean())
	}

	e := NewEWMA()
	e.Add(nan)
	if e.Initialized() {
		t.Fatal("EWMA initialized by NaN")
	}
	e.Add(4)
	e.Add(nan)
	if e.Avg() != 4 || math.IsNaN(e.Dev()) {
		t.Fatalf("EWMA poisoned by NaN: avg=%v dev=%v", e.Avg(), e.Dev())
	}

	mn := WindowedMin{Window: 10}
	mn.Add(0, nan)
	if _, ok := mn.Get(0); ok {
		t.Fatal("WindowedMin stored a NaN")
	}
	mn.Add(1, 5)
	mn.Add(2, nan)
	if v, ok := mn.Get(2); !ok || v != 5 {
		t.Fatalf("WindowedMin after NaN: %v %v", v, ok)
	}

	mx := WindowedMax{Window: 10}
	mx.Add(1, 5)
	mx.Add(2, nan)
	if v, ok := mx.Get(2); !ok || v != 5 {
		t.Fatalf("WindowedMax after NaN: %v %v", v, ok)
	}
}

func TestDegenerateHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{nan, -1, 0, 9.999, 10, 11, math.Inf(1), math.Inf(-1)} {
		h.Add(x)
	}
	if h.N != 7 { // all but the NaN
		t.Fatalf("N = %d, want 7", h.N)
	}
	if h.Counts[0] != 3 { // -1, 0, -Inf
		t.Fatalf("low bin = %d, want 3", h.Counts[0])
	}
	if h.Counts[4] != 4 { // 9.999, 10, 11, +Inf
		t.Fatalf("high bin = %d, want 4", h.Counts[4])
	}

	// Degenerate range: everything lands in bin 0, no panic, no NaN math.
	d := NewHistogram(5, 5, 3)
	d.Add(4)
	d.Add(5)
	d.Add(6)
	if d.N != 3 || d.Counts[0] != 3 {
		t.Fatalf("degenerate range: N=%d counts=%v", d.N, d.Counts)
	}

	// Zero-bin request is clamped to one bin.
	z := NewHistogram(0, 1, 0)
	z.Add(0.5)
	if len(z.Counts) != 1 || z.Counts[0] != 1 {
		t.Fatalf("zero-bin histogram: %v", z.Counts)
	}
}
