package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("mean=%v", m)
	}
	if sd := StdDev(xs); !almost(sd, 2, 1e-12) {
		t.Fatalf("stddev=%v", sd)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{3}) != 0 {
		t.Fatal("empty/singleton cases")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4}, {10, 1.4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want, 1e-12) {
			t.Errorf("P%v=%v want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile")
	}
	// Input must not be mutated.
	in := []float64{3, 1, 2}
	Percentile(in, 50)
	if in[0] != 3 {
		t.Fatal("Percentile mutated input")
	}
}

func TestJainIndex(t *testing.T) {
	if j := JainIndex([]float64{10, 10, 10}); !almost(j, 1, 1e-12) {
		t.Fatalf("equal shares: %v", j)
	}
	if j := JainIndex([]float64{30, 0, 0}); !almost(j, 1.0/3, 1e-12) {
		t.Fatalf("one hog: %v", j)
	}
	if JainIndex(nil) != 0 || JainIndex([]float64{0, 0}) != 0 {
		t.Fatal("degenerate cases")
	}
}

func TestLinearRegression(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4}
	y := []float64{1, 3, 5, 7, 9} // y = 1 + 2x
	r := LinearRegression(x, y)
	if !almost(r.Slope, 2, 1e-12) || !almost(r.Intercept, 1, 1e-12) || !almost(r.Residual, 0, 1e-9) {
		t.Fatalf("fit: %+v", r)
	}
	// Constant x → zero slope, mean intercept.
	r = LinearRegression([]float64{2, 2, 2}, []float64{1, 2, 3})
	if r.Slope != 0 || !almost(r.Intercept, 2, 1e-12) {
		t.Fatalf("degenerate fit: %+v", r)
	}
	if LinearRegression(nil, nil).N != 0 {
		t.Fatal("empty fit")
	}
}

func TestLinRegResidual(t *testing.T) {
	// Perfect line plus symmetric noise ±1 → residual 1.
	x := []float64{0, 1, 2, 3}
	y := []float64{1, -1, 1, -1}
	r := LinearRegression(x, y)
	want := 0.0
	for i := range x {
		e := y[i] - (r.Intercept + r.Slope*x[i])
		want += e * e
	}
	want = math.Sqrt(want / 4)
	if !almost(r.Residual, want, 1e-12) {
		t.Fatalf("residual=%v want %v", r.Residual, want)
	}
}

func TestConfusionProbability(t *testing.T) {
	// B entirely above A → P(b < a) = 0.
	if p := ConfusionProbability([]float64{1, 2}, []float64{3, 4}); p != 0 {
		t.Fatalf("separated: %v", p)
	}
	// B entirely below A → 1.
	if p := ConfusionProbability([]float64{3, 4}, []float64{1, 2}); p != 1 {
		t.Fatalf("inverted: %v", p)
	}
	// Identical distributions → 0.5 (ties count half).
	if p := ConfusionProbability([]float64{1, 2, 3}, []float64{1, 2, 3}); !almost(p, 0.5, 1e-12) {
		t.Fatalf("identical: %v", p)
	}
	if ConfusionProbability(nil, []float64{1}) != 0 {
		t.Fatal("empty input")
	}
}

func TestConfusionAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		a := make([]float64, 30)
		b := make([]float64, 40)
		for i := range a {
			a[i] = math.Round(rng.Float64()*10) / 2
		}
		for i := range b {
			b[i] = math.Round(rng.Float64()*10)/2 + 1
		}
		var brute float64
		for _, av := range a {
			for _, bv := range b {
				if bv < av {
					brute++
				} else if bv == av {
					brute += 0.5
				}
			}
		}
		brute /= float64(len(a) * len(b))
		if got := ConfusionProbability(a, b); !almost(got, brute, 1e-12) {
			t.Fatalf("trial %d: got %v want %v", trial, got, brute)
		}
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var w Welford
	var xs []float64
	for i := 0; i < 1000; i++ {
		x := rng.NormFloat64()*3 + 7
		w.Add(x)
		xs = append(xs, x)
	}
	if !almost(w.Mean(), Mean(xs), 1e-9) {
		t.Fatalf("mean: %v vs %v", w.Mean(), Mean(xs))
	}
	if !almost(w.StdDev(), StdDev(xs), 1e-9) {
		t.Fatalf("stddev: %v vs %v", w.StdDev(), StdDev(xs))
	}
	if w.N() != 1000 {
		t.Fatalf("n=%d", w.N())
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA()
	if e.Initialized() {
		t.Fatal("fresh EWMA claims initialized")
	}
	e.Add(100)
	if e.Avg() != 100 || e.Dev() != 50 {
		t.Fatalf("first sample: avg=%v dev=%v", e.Avg(), e.Dev())
	}
	e.Add(100)
	if !almost(e.Avg(), 100, 1e-12) {
		t.Fatalf("steady avg: %v", e.Avg())
	}
	// Converges towards a constant input.
	for i := 0; i < 200; i++ {
		e.Add(50)
	}
	if !almost(e.Avg(), 50, 1e-6) || e.Dev() > 1e-3 {
		t.Fatalf("convergence: avg=%v dev=%v", e.Avg(), e.Dev())
	}
	e.Reset()
	if e.Initialized() {
		t.Fatal("reset failed")
	}
}

func TestWindowedMinMax(t *testing.T) {
	mn := WindowedMin{Window: 10}
	mx := WindowedMax{Window: 10}
	mn.Add(0, 5)
	mn.Add(1, 3)
	mn.Add(2, 4)
	mx.Add(0, 5)
	mx.Add(1, 7)
	mx.Add(2, 6)
	if v, ok := mn.Get(2); !ok || v != 3 {
		t.Fatalf("min=%v", v)
	}
	if v, ok := mx.Get(2); !ok || v != 7 {
		t.Fatalf("max=%v", v)
	}
	// Expiry: after window passes, old extreme drops out.
	if v, _ := mn.Get(12); v != 4 {
		t.Fatalf("min after expiry=%v", v)
	}
	if v, _ := mx.Get(12); v != 6 {
		t.Fatalf("max after expiry=%v", v)
	}
	if _, ok := mn.Get(1000); ok {
		t.Fatal("all samples should expire")
	}
}

func TestWindowedMinAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := WindowedMin{Window: 5}
	type s struct{ t, v float64 }
	var hist []s
	tm := 0.0
	for i := 0; i < 500; i++ {
		tm += rng.Float64()
		v := rng.Float64() * 100
		w.Add(tm, v)
		hist = append(hist, s{tm, v})
		want := math.Inf(1)
		for _, h := range hist {
			if tm-h.t <= 5 && h.v < want {
				want = h.v
			}
		}
		if got, ok := w.Get(tm); !ok || !almost(got, want, 1e-12) {
			t.Fatalf("i=%d got %v want %v", i, got, want)
		}
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-5) // clamps into bin 0
	h.Add(50) // clamps into bin 9
	pdf := h.PDF()
	if len(pdf) != 10 || !almost(pdf[0], 2.0/12, 1e-12) || !almost(pdf[9], 2.0/12, 1e-12) {
		t.Fatalf("pdf=%v", pdf)
	}
	sum := 0.0
	for _, p := range pdf {
		sum += p
	}
	if !almost(sum, 1, 1e-12) {
		t.Fatalf("pdf sums to %v", sum)
	}
	if !almost(h.BinCenter(0), 0.5, 1e-12) || !almost(h.BinCenter(9), 9.5, 1e-12) {
		t.Fatal("bin centers")
	}
}

func TestCDF(t *testing.T) {
	v, f := CDF([]float64{3, 1, 2})
	if !sort.Float64sAreSorted(v) {
		t.Fatal("values not sorted")
	}
	if f[len(f)-1] != 1 {
		t.Fatal("last frac must be 1")
	}
	if v2, f2 := CDF(nil); v2 != nil || f2 != nil {
		t.Fatal("empty CDF")
	}
}

// --- property-based tests ---

func TestQuickJainBounds(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		j := JainIndex(xs)
		if j == 0 { // all-zero allocation
			for _, x := range xs {
				if x != 0 {
					return false
				}
			}
			return true
		}
		return j >= 1/float64(len(xs))-1e-9 && j <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPercentileMonotone(t *testing.T) {
	f := func(raw []int16, p1, p2 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		a, b := float64(p1%101), float64(p2%101)
		if a > b {
			a, b = b, a
		}
		return Percentile(xs, a) <= Percentile(xs, b)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickStdDevNonNegativeAndShiftInvariant(t *testing.T) {
	f := func(raw []int16, shift int16) bool {
		xs := make([]float64, len(raw))
		ys := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
			ys[i] = float64(r) + float64(shift)
		}
		a, b := StdDev(xs), StdDev(ys)
		return a >= 0 && math.Abs(a-b) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickConfusionSymmetry(t *testing.T) {
	// P(b<a) + P(a<b) = 1 when computed both ways (ties split evenly).
	f := func(ra, rb []int8) bool {
		if len(ra) == 0 || len(rb) == 0 {
			return true
		}
		a := make([]float64, len(ra))
		b := make([]float64, len(rb))
		for i, r := range ra {
			a[i] = float64(r)
		}
		for i, r := range rb {
			b[i] = float64(r)
		}
		return math.Abs(ConfusionProbability(a, b)+ConfusionProbability(b, a)-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRegressionRecoversLine(t *testing.T) {
	f := func(a8, b8 int8, n8 uint8) bool {
		n := int(n8%20) + 2
		a, b := float64(a8), float64(b8)/4
		x := make([]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			x[i] = float64(i)
			y[i] = a + b*float64(i)
		}
		r := LinearRegression(x, y)
		return math.Abs(r.Slope-b) < 1e-6 && math.Abs(r.Intercept-a) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
