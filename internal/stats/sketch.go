package stats

import (
	"fmt"
	"math"
)

// This file holds the mergeable sketch types the campaign runner
// (internal/campaign) aggregates with: fixed-size accumulators that can
// be computed per shard and combined without ever retaining raw
// samples. Two properties are load-bearing:
//
//   - LogHist merge is *exactly* associative and commutative (integer
//     bin counts), so histogram aggregates are independent of how work
//     was sharded.
//   - Moments merge is mathematically associative but, like all float
//     arithmetic, not bit-exact under regrouping; callers that promise
//     bit-identical output across worker counts must fold shard results
//     in a fixed order (campaign.OrderedReduce does).
//
// All fields are exported so aggregates serialize to JSON directly.

// Moments is a mergeable streaming accumulator for count, mean,
// variance, and range. Add uses Welford's update; Merge uses the
// Chan-Golub-LeVeque pairwise formula.
type Moments struct {
	Count int64   `json:"n"`
	Mean  float64 `json:"mean"`
	M2    float64 `json:"m2"` // sum of squared deviations from the mean
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
}

// Add incorporates one sample. NaN samples are ignored, as everywhere
// in this package.
func (m *Moments) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	if m.Count == 0 {
		m.Min, m.Max = x, x
	} else {
		if x < m.Min {
			m.Min = x
		}
		if x > m.Max {
			m.Max = x
		}
	}
	m.Count++
	d := x - m.Mean
	m.Mean += d / float64(m.Count)
	m.M2 += d * (x - m.Mean)
}

// Merge folds another accumulator into m. Merging an empty accumulator
// is a no-op, so zero values compose freely.
func (m *Moments) Merge(o Moments) {
	if o.Count == 0 {
		return
	}
	if m.Count == 0 {
		*m = o
		return
	}
	n := m.Count + o.Count
	delta := o.Mean - m.Mean
	m.M2 += o.M2 + delta*delta*float64(m.Count)*float64(o.Count)/float64(n)
	m.Mean += delta * float64(o.Count) / float64(n)
	if o.Min < m.Min {
		m.Min = o.Min
	}
	if o.Max > m.Max {
		m.Max = o.Max
	}
	m.Count = n
}

// Var returns the population variance (0 with fewer than two samples).
func (m Moments) Var() float64 {
	if m.Count < 2 {
		return 0
	}
	return m.M2 / float64(m.Count)
}

// StdDev returns the population standard deviation.
func (m Moments) StdDev() float64 { return math.Sqrt(m.Var()) }

// LogHist is a fixed-bin histogram with geometrically spaced bin edges
// over [Lo, Hi): bin i covers [Lo·r^i, Lo·r^(i+1)) with r =
// (Hi/Lo)^(1/bins). Samples below Lo (including zero and negatives)
// land in the Under counter, samples at or above Hi in Over, so no
// sample is ever silently discarded and N is exact. Counts are
// integers, which makes Merge exactly associative and commutative —
// the property the campaign determinism guarantee rests on.
type LogHist struct {
	Lo     float64 `json:"lo"`
	Hi     float64 `json:"hi"`
	Counts []int64 `json:"counts"`
	Under  int64   `json:"under"`
	Over   int64   `json:"over"`
}

// NewLogHist creates a log-scale histogram. Lo and Hi must be positive
// with Lo < Hi; bins must be at least 1. Invalid configurations panic:
// sketch shapes are static campaign configuration, and a typo should
// fail loudly.
func NewLogHist(lo, hi float64, bins int) *LogHist {
	if !(lo > 0) || !(hi > lo) || bins < 1 {
		panic(fmt.Sprintf("stats: bad LogHist config lo=%v hi=%v bins=%d", lo, hi, bins))
	}
	return &LogHist{Lo: lo, Hi: hi, Counts: make([]int64, bins)}
}

// Add records one sample. NaN samples are ignored.
func (h *LogHist) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	if x < h.Lo {
		h.Under++
		return
	}
	if x >= h.Hi {
		h.Over++
		return
	}
	b := int(math.Log(x/h.Lo) / math.Log(h.Hi/h.Lo) * float64(len(h.Counts)))
	if b >= len(h.Counts) { // float rounding at the top edge
		b = len(h.Counts) - 1
	}
	h.Counts[b]++
}

// N returns the total number of recorded samples, including the
// underflow and overflow counters.
func (h *LogHist) N() int64 {
	n := h.Under + h.Over
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Merge adds another histogram's counts into h. The configurations
// must match exactly.
func (h *LogHist) Merge(o *LogHist) error {
	if o == nil {
		return nil
	}
	if h.Lo != o.Lo || h.Hi != o.Hi || len(h.Counts) != len(o.Counts) {
		return fmt.Errorf("stats: LogHist config mismatch: [%v,%v)x%d vs [%v,%v)x%d",
			h.Lo, h.Hi, len(h.Counts), o.Lo, o.Hi, len(o.Counts))
	}
	h.Under += o.Under
	h.Over += o.Over
	for i, c := range o.Counts {
		h.Counts[i] += c
	}
	return nil
}

// edge returns the lower edge of bin i (bin len(Counts) = Hi).
func (h *LogHist) edge(i int) float64 {
	return h.Lo * math.Pow(h.Hi/h.Lo, float64(i)/float64(len(h.Counts)))
}

// Quantile estimates the p-th quantile (0 <= p <= 1) by walking the
// cumulative counts and interpolating geometrically inside the
// containing bin. Underflow mass is attributed to Lo and overflow mass
// to Hi — quantiles are clamped to the histogram's range, which is the
// honest answer a bounded sketch can give. Returns 0 for an empty
// histogram.
func (h *LogHist) Quantile(p float64) float64 {
	n := h.N()
	if n == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := p * float64(n)
	cum := float64(h.Under)
	if target <= cum {
		return h.Lo
	}
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if target <= next {
			frac := (target - cum) / float64(c)
			lo, hi := h.edge(i), h.edge(i+1)
			return lo * math.Pow(hi/lo, frac)
		}
		cum = next
	}
	return h.Hi
}
