package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// exactQuantile is the reference: the p-th order statistic of the
// sorted samples (lower interpolation, matching the sketch's "mass at
// or below" semantics).
func exactQuantile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// Property: for in-range samples, every quantile estimate lands within
// one bin's geometric ratio of the exact sorted-sample quantile — the
// resolution bound a log-binned sketch promises.
func TestLogHistQuantilePropertyVsSorted(t *testing.T) {
	const (
		lo, hi = 1e-4, 10.0
		bins   = 160
	)
	// One bin spans a ratio of (hi/lo)^(1/bins); estimates may also
	// straddle a bin edge against the reference, so allow two bins.
	tol := math.Pow(math.Pow(hi/lo, 1.0/bins), 2)

	rng := rand.New(rand.NewSource(1))
	distributions := []struct {
		name string
		draw func() float64
	}{
		{"uniform-log", func() float64 {
			return lo * math.Pow(hi/lo, rng.Float64()) * 0.9999
		}},
		{"lognormal", func() float64 {
			return 0.05 * math.Exp(rng.NormFloat64()*0.8)
		}},
		{"exponential", func() float64 {
			return 0.01 + rng.ExpFloat64()*0.2
		}},
		{"bimodal", func() float64 {
			if rng.Intn(2) == 0 {
				return 0.02 + rng.Float64()*0.01
			}
			return 1.5 + rng.Float64()*0.5
		}},
	}
	quantiles := []float64{0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99}

	for _, dist := range distributions {
		for _, n := range []int{10, 1000, 50000} {
			h := NewLogHist(lo, hi, bins)
			samples := make([]float64, 0, n)
			for i := 0; i < n; i++ {
				x := dist.draw()
				if x < lo {
					x = lo
				}
				if x >= hi {
					x = hi * 0.9999
				}
				h.Add(x)
				samples = append(samples, x)
			}
			sort.Float64s(samples)
			for _, p := range quantiles {
				got := h.Quantile(p)
				want := exactQuantile(samples, p)
				if ratio := got / want; ratio > tol || ratio < 1/tol {
					t.Errorf("%s n=%d p=%.2f: sketch %.6g vs exact %.6g (ratio %.4f, tol %.4f)",
						dist.name, n, p, got, want, ratio, tol)
				}
			}
		}
	}
}

// Extremes behave: p=0 and p=1 bracket every recorded sample, and
// out-of-range mass clamps to the sketch bounds.
func TestLogHistQuantileExtremes(t *testing.T) {
	h := NewLogHist(1e-3, 1e3, 60)
	rng := rand.New(rand.NewSource(2))
	minS, maxS := math.Inf(1), math.Inf(-1)
	for i := 0; i < 1000; i++ {
		x := math.Exp(rng.NormFloat64() * 2)
		h.Add(x)
		if x < minS {
			minS = x
		}
		if x > maxS {
			maxS = x
		}
	}
	binRatio := math.Pow(1e6, 1.0/60)
	if q := h.Quantile(0); q > minS*binRatio {
		t.Fatalf("p=0 quantile %.6g above min sample %.6g", q, minS)
	}
	if q := h.Quantile(1); q < maxS/binRatio {
		t.Fatalf("p=1 quantile %.6g below max sample %.6g", q, maxS)
	}

	under := NewLogHist(1, 10, 4)
	under.Add(0.5) // underflow
	under.Add(99)  // overflow
	if q := under.Quantile(0.25); q != 1 {
		t.Fatalf("underflow mass should clamp to Lo: got %v", q)
	}
	if q := under.Quantile(1); q != 10 {
		t.Fatalf("overflow mass should clamp to Hi: got %v", q)
	}
}
