package stats_test

import (
	"fmt"

	"pccproteus/internal/stats"
)

func ExampleJainIndex() {
	fair := stats.JainIndex([]float64{10, 10, 10, 10})
	unfair := stats.JainIndex([]float64{37, 1, 1, 1})
	fmt.Printf("fair=%.2f unfair=%.2f\n", fair, unfair)
	// Output: fair=1.00 unfair=0.29
}

func ExampleLinearRegression() {
	x := []float64{0, 1, 2, 3}
	y := []float64{30, 32, 34, 36} // RTT ramping 2 ms per interval
	fit := stats.LinearRegression(x, y)
	fmt.Printf("slope=%.1f intercept=%.1f\n", fit.Slope, fit.Intercept)
	// Output: slope=2.0 intercept=30.0
}

func ExampleConfusionProbability() {
	clean := []float64{0.1, 0.2, 0.1, 0.15}
	congested := []float64{0.9, 1.1, 0.8, 1.0}
	fmt.Printf("%.2f\n", stats.ConfusionProbability(clean, congested))
	// Output: 0.00
}
