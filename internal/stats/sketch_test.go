package stats

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func TestMomentsMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var m Moments
	var xs []float64
	for i := 0; i < 1000; i++ {
		x := rng.NormFloat64()*3 + 10
		xs = append(xs, x)
		m.Add(x)
	}
	if m.Count != 1000 {
		t.Fatalf("Count = %d", m.Count)
	}
	if got, want := m.Mean, Mean(xs); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Mean = %v, want %v", got, want)
	}
	if got, want := m.StdDev(), StdDev(xs); math.Abs(got-want) > 1e-9 {
		t.Fatalf("StdDev = %v, want %v", got, want)
	}
}

func TestMomentsMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var whole, a, b Moments
	for i := 0; i < 500; i++ {
		x := rng.ExpFloat64()
		whole.Add(x)
		if i < 200 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.Count != whole.Count {
		t.Fatalf("merged Count = %d, want %d", a.Count, whole.Count)
	}
	if math.Abs(a.Mean-whole.Mean) > 1e-12 || math.Abs(a.StdDev()-whole.StdDev()) > 1e-9 {
		t.Fatalf("merged mean/std %v/%v, want %v/%v", a.Mean, a.StdDev(), whole.Mean, whole.StdDev())
	}
	if a.Min != whole.Min || a.Max != whole.Max {
		t.Fatalf("merged min/max %v/%v, want %v/%v", a.Min, a.Max, whole.Min, whole.Max)
	}
	// Merging an empty accumulator in either direction is a no-op /
	// copy.
	var empty Moments
	before := a
	a.Merge(empty)
	if a != before {
		t.Fatal("merging empty changed the accumulator")
	}
	empty.Merge(a)
	if empty != a {
		t.Fatal("merging into empty is not a copy")
	}
}

func TestMomentsNaNIgnored(t *testing.T) {
	var m Moments
	m.Add(math.NaN())
	m.Add(1)
	m.Add(math.NaN())
	if m.Count != 1 || m.Mean != 1 {
		t.Fatalf("NaN leaked into moments: %+v", m)
	}
}

func randomLogHist(rng *rand.Rand) *LogHist {
	h := NewLogHist(0.001, 1000, 32)
	n := rng.Intn(200)
	for i := 0; i < n; i++ {
		// Spread over the range plus out-of-range mass on both sides.
		h.Add(math.Exp(rng.Float64()*20 - 10))
	}
	return h
}

// TestLogHistMergeProperties checks, under randomized inputs, that
// merge is commutative and associative — exactly, not approximately —
// and that N is conserved.
func TestLogHistMergeProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		a, b, c := randomLogHist(rng), randomLogHist(rng), randomLogHist(rng)
		sum := a.N() + b.N() + c.N()

		clone := func(h *LogHist) *LogHist {
			cp := *h
			cp.Counts = append([]int64(nil), h.Counts...)
			return &cp
		}

		// (a ∪ b) ∪ c
		ab := clone(a)
		if err := ab.Merge(b); err != nil {
			t.Fatal(err)
		}
		abc1 := clone(ab)
		if err := abc1.Merge(c); err != nil {
			t.Fatal(err)
		}
		// a ∪ (b ∪ c)
		bc := clone(b)
		if err := bc.Merge(c); err != nil {
			t.Fatal(err)
		}
		abc2 := clone(a)
		if err := abc2.Merge(bc); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(abc1, abc2) {
			t.Fatalf("trial %d: merge not associative:\n%+v\n%+v", trial, abc1, abc2)
		}
		// b ∪ a  ==  a ∪ b
		ba := clone(b)
		if err := ba.Merge(a); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ab, ba) {
			t.Fatalf("trial %d: merge not commutative:\n%+v\n%+v", trial, ab, ba)
		}
		if abc1.N() != sum {
			t.Fatalf("trial %d: N not conserved: %d vs %d", trial, abc1.N(), sum)
		}
	}
}

func TestLogHistMergeConfigMismatch(t *testing.T) {
	a := NewLogHist(0.001, 1000, 32)
	b := NewLogHist(0.001, 1000, 16)
	if err := a.Merge(b); err == nil {
		t.Fatal("expected config-mismatch error")
	}
	if err := a.Merge(nil); err != nil {
		t.Fatalf("nil merge should be a no-op, got %v", err)
	}
}

func TestLogHistBinsAndQuantile(t *testing.T) {
	h := NewLogHist(1, 1024, 10) // bin edges at powers of 2
	h.Add(0)                     // under
	h.Add(0.5)                   // under
	h.Add(2000)                  // over
	h.Add(math.NaN())            // ignored
	for i := 0; i < 10; i++ {
		h.Add(1.5 * math.Pow(2, float64(i))) // one sample mid-bin i
	}
	if h.Under != 2 || h.Over != 1 {
		t.Fatalf("under/over = %d/%d", h.Under, h.Over)
	}
	if h.N() != 13 {
		t.Fatalf("N = %d, want 13", h.N())
	}
	for i, c := range h.Counts {
		if c != 1 {
			t.Fatalf("bin %d count = %d, want 1", i, c)
		}
	}
	if q := h.Quantile(0); q != 1 {
		t.Fatalf("Quantile(0) = %v, want Lo", q)
	}
	if q := h.Quantile(1); q != 1024 {
		t.Fatalf("Quantile(1) = %v, want Hi", q)
	}
	// Median of 13 samples: 2 under + 5 binned ≈ falls in bin 4-ish;
	// the estimate must at least be inside the range and monotone.
	q25, q50, q75 := h.Quantile(0.25), h.Quantile(0.5), h.Quantile(0.75)
	if !(q25 <= q50 && q50 <= q75) {
		t.Fatalf("quantiles not monotone: %v %v %v", q25, q50, q75)
	}
	if q50 < 1 || q50 > 1024 {
		t.Fatalf("median %v outside range", q50)
	}
}

func TestLogHistEmptyQuantile(t *testing.T) {
	h := NewLogHist(1, 10, 4)
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
}
