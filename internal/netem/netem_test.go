package netem

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pccproteus/internal/sim"
)

func TestLinkSerialization(t *testing.T) {
	s := sim.New(1)
	l := NewLink(s, 12, 100000, 0.010) // 12 Mbps = 1.5e6 B/s → 1 ms per 1500B
	var arrivals []float64
	for i := 0; i < 3; i++ {
		l.Send(&Packet{Seq: int64(i), Size: MTU}, func(p *Packet, at float64) {
			arrivals = append(arrivals, at)
		})
	}
	s.Run(1)
	if len(arrivals) != 3 {
		t.Fatalf("delivered %d", len(arrivals))
	}
	// Packet i departs at (i+1) ms and arrives 10 ms later.
	for i, at := range arrivals {
		want := float64(i+1)*0.001 + 0.010
		if math.Abs(at-want) > 1e-9 {
			t.Fatalf("arrival[%d]=%v want %v", i, at, want)
		}
	}
}

func TestLinkTailDrop(t *testing.T) {
	s := sim.New(1)
	l := NewLink(s, 12, 3*MTU, 0.010)
	accepted := 0
	for i := 0; i < 10; i++ {
		if l.Send(&Packet{Seq: int64(i), Size: MTU}, func(*Packet, float64) {}) {
			accepted++
		}
	}
	if accepted != 3 {
		t.Fatalf("accepted=%d want 3", accepted)
	}
	if l.Stats().Dropped != 7 {
		t.Fatalf("drops=%d", l.Stats().Dropped)
	}
	s.Run(1)
	if l.QueueBytes() != 0 {
		t.Fatalf("queue not drained: %d", l.QueueBytes())
	}
}

func TestQueueDrainsAndRefills(t *testing.T) {
	s := sim.New(1)
	l := NewLink(s, 12, 2*MTU, 0)
	l.Send(&Packet{Size: MTU}, func(*Packet, float64) {})
	l.Send(&Packet{Size: MTU}, func(*Packet, float64) {})
	if l.QueueBytes() != 2*MTU {
		t.Fatalf("queue=%d", l.QueueBytes())
	}
	s.Run(0.0015) // 1.5 packet times
	if l.QueueBytes() != MTU {
		t.Fatalf("after partial drain queue=%d", l.QueueBytes())
	}
	if !l.Send(&Packet{Size: MTU}, func(*Packet, float64) {}) {
		t.Fatal("refill should succeed after drain")
	}
}

func TestRandomLoss(t *testing.T) {
	s := sim.New(7)
	l := NewLink(s, 1000, 1<<30, 0.001)
	l.LossProb = 0.3
	delivered := 0
	n := 20000
	for i := 0; i < n; i++ {
		l.Send(&Packet{Size: MTU}, func(*Packet, float64) { delivered++ })
	}
	s.Run(1e6)
	gotLoss := 1 - float64(delivered)/float64(n)
	if math.Abs(gotLoss-0.3) > 0.02 {
		t.Fatalf("loss rate %v want ~0.3", gotLoss)
	}
	if l.Stats().LostRandom != int64(n-delivered) {
		t.Fatal("LostRandom counter mismatch")
	}
}

func TestQueueDelayReflectsBacklog(t *testing.T) {
	s := sim.New(1)
	l := NewLink(s, 12, 1<<20, 0)
	for i := 0; i < 10; i++ {
		l.Send(&Packet{Size: MTU}, func(*Packet, float64) {})
	}
	// 10 packets × 1 ms serialization each.
	if d := l.QueueDelay(); math.Abs(d-0.010) > 1e-9 {
		t.Fatalf("queue delay %v want 10ms", d)
	}
	s.Run(1)
	if l.QueueDelay() != 0 {
		t.Fatal("queue delay should be 0 when idle")
	}
}

func TestLognormalNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := LognormalNoise{Median: 0.002, Sigma: 0.7}
	var samples []float64
	for i := 0; i < 20000; i++ {
		v := n.Sample(rng)
		if v <= 0 {
			t.Fatal("lognormal must be positive")
		}
		samples = append(samples, v)
	}
	// Median should be near the configured 2 ms.
	below := 0
	for _, v := range samples {
		if v < 0.002 {
			below++
		}
	}
	frac := float64(below) / float64(len(samples))
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("median calibration off: %v below", frac)
	}
	if (LognormalNoise{}).Sample(rng) != 0 {
		t.Fatal("zero-median model must be silent")
	}
}

func TestSpikeNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := SpikeNoise{SpikeProb: 0.1, SpikeMin: 0.05, SpikeMax: 0.05}
	spikes := 0
	for i := 0; i < 10000; i++ {
		if n.Sample(rng) >= 0.05 {
			spikes++
		}
	}
	if spikes < 800 || spikes > 1200 {
		t.Fatalf("spike frequency %d/10000 want ~1000", spikes)
	}
}

func TestAckBatcher(t *testing.T) {
	s := sim.New(11)
	b := &AckBatcher{Sim: s, HoldRate: 5, HoldTime: 0.05}
	// Sample delays across a stretch of virtual time; some must be held.
	held, zero := 0, 0
	for i := 0; i < 2000; i++ {
		s.Run(float64(i) * 0.005)
		d := b.Delay()
		if d > 0 {
			held++
			if d > 0.05+1e-9 {
				t.Fatalf("hold delay %v exceeds window", d)
			}
		} else {
			zero++
		}
	}
	if held == 0 || zero == 0 {
		t.Fatalf("batcher degenerate: held=%d zero=%d", held, zero)
	}
	var nilB *AckBatcher
	if nilB.Delay() != 0 {
		t.Fatal("nil batcher must be a no-op")
	}
}

func TestPathBaseRTTAndBDP(t *testing.T) {
	s := sim.New(1)
	l := NewLink(s, 50, 1<<20, 0.015)
	p := &Path{Link: l, AckDelay: 0.015}
	wantRTT := 0.030 + 1500/(50e6/8)
	if math.Abs(p.BaseRTT()-wantRTT) > 1e-9 {
		t.Fatalf("baseRTT=%v want %v", p.BaseRTT(), wantRTT)
	}
	if math.Abs(p.BDP()-l.Rate*wantRTT) > 1e-6 {
		t.Fatalf("bdp=%v", p.BDP())
	}
}

func TestSharedLinkCouplesFlows(t *testing.T) {
	// Two senders interleave on one link: total service time is the sum.
	s := sim.New(1)
	l := NewLink(s, 12, 1<<20, 0)
	var last float64
	for i := 0; i < 4; i++ {
		flow := i % 2
		l.Send(&Packet{FlowID: flow, Size: MTU}, func(p *Packet, at float64) { last = at })
	}
	s.Run(1)
	if math.Abs(last-0.004) > 1e-9 {
		t.Fatalf("last arrival %v want 4ms", last)
	}
}

// Property: conservation — every packet is dropped, randomly lost, or
// delivered, and queue occupancy returns to zero.
func TestQuickLinkConservation(t *testing.T) {
	f := func(seed int64, sizes []uint8, lossPct uint8) bool {
		s := sim.New(seed)
		l := NewLink(s, 10, 5*MTU, 0.001)
		l.LossProb = float64(lossPct%50) / 100
		delivered := 0
		accepted := 0
		for _, sz := range sizes {
			size := int(sz)%MTU + 1
			if l.Send(&Packet{Size: size}, func(*Packet, float64) { delivered++ }) {
				accepted++
			}
		}
		s.Run(1e9)
		st := l.Stats()
		if st.Enqueued != int64(accepted) {
			return false
		}
		if int64(delivered) != st.Delivered {
			return false
		}
		if st.Delivered+st.LostRandom != st.Enqueued {
			return false
		}
		return l.QueueBytes() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: arrivals are FIFO — delivery order matches send order.
func TestQuickLinkFIFO(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		s := sim.New(seed)
		l := NewLink(s, 100, 1<<30, 0.002)
		var got []int64
		for i := int64(0); i < int64(n); i++ {
			l.Send(&Packet{Seq: i, Size: MTU}, func(p *Packet, at float64) {
				got = append(got, p.Seq)
			})
		}
		s.Run(1e9)
		for i := 1; i < len(got); i++ {
			if got[i] < got[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRateWalkBoundsAndVaries(t *testing.T) {
	s := sim.New(13)
	l := NewLink(s, 50, 1<<20, 0.010)
	w := &RateWalk{Sim: s, Link: l, Interval: 0.05, Sigma: 0.4, MinFac: 0.25, MaxFac: 1.0}
	w.Start()
	var rates []float64
	for i := 1; i <= 400; i++ {
		i := i
		s.At(float64(i)*0.05, func() { rates = append(rates, l.Rate) })
	}
	s.Run(21)
	base := 50e6 / 8
	varied := false
	for _, r := range rates {
		if r < 0.25*base-1 || r > 1.0*base+1 {
			t.Fatalf("rate %v escaped bounds", r)
		}
		if math.Abs(r-base) > 0.01*base {
			varied = true
		}
	}
	if !varied {
		t.Fatal("rate never moved")
	}
}
