package netem

import (
	"math"
	"math/rand"
	"testing"

	"pccproteus/internal/sim"
)

// TestSetRateClamp is the table test for the documented capacity floor:
// zero, negative, and NaN capacity steps clamp to MinRate, everything
// at or above the floor (including +Inf) passes through unchanged.
func TestSetRateClamp(t *testing.T) {
	cases := []struct {
		name string
		bps  float64
		want float64
	}{
		{"normal", 5e6, 5e6},
		{"at-floor", MinRate, MinRate},
		{"just-below-floor", MinRate - 1, MinRate},
		{"zero", 0, MinRate},
		{"negative", -3e6, MinRate},
		{"neg-inf", math.Inf(-1), MinRate},
		{"nan", math.NaN(), MinRate},
		{"pos-inf", math.Inf(1), math.Inf(1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l := NewLink(sim.New(1), 10, 1<<20, 0.010)
			l.SetRate(tc.bps)
			if l.Rate != tc.want && !(math.IsInf(tc.want, 1) && math.IsInf(l.Rate, 1)) {
				t.Fatalf("SetRate(%v): Rate = %v, want %v", tc.bps, l.Rate, tc.want)
			}
		})
	}
}

// TestSetRateMbps checks the Mbps convenience wrapper clamps identically.
func TestSetRateMbps(t *testing.T) {
	l := NewLink(sim.New(1), 10, 1<<20, 0.010)
	l.SetRateMbps(20)
	if l.Rate != 20*1e6/8 {
		t.Fatalf("SetRateMbps(20): Rate = %v, want %v", l.Rate, 20*1e6/8)
	}
	l.SetRateMbps(-1)
	if l.Rate != MinRate {
		t.Fatalf("SetRateMbps(-1): Rate = %v, want floor %v", l.Rate, MinRate)
	}
}

// TestNewLinkFloorsRate checks the constructor routes through the same
// clamp as SetRate.
func TestNewLinkFloorsRate(t *testing.T) {
	l := NewLink(sim.New(1), 0, 1<<20, 0.010)
	if l.Rate != MinRate {
		t.Fatalf("NewLink(0 Mbps): Rate = %v, want floor %v", l.Rate, MinRate)
	}
}

// TestSetPropDelay is the table test for the delay model boundary:
// NaN, infinite, and negative delays are rejected with an error and
// leave the link untouched; valid delays (including zero) apply.
func TestSetPropDelay(t *testing.T) {
	cases := []struct {
		name    string
		d       float64
		wantErr bool
	}{
		{"normal", 0.025, false},
		{"zero", 0, false},
		{"large", 2.0, false},
		{"negative", -0.001, true},
		{"nan", math.NaN(), true},
		{"pos-inf", math.Inf(1), true},
		{"neg-inf", math.Inf(-1), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l := NewLink(sim.New(1), 10, 1<<20, 0.010)
			err := l.SetPropDelay(tc.d)
			if (err != nil) != tc.wantErr {
				t.Fatalf("SetPropDelay(%v): err = %v, wantErr %v", tc.d, err, tc.wantErr)
			}
			if tc.wantErr && l.PropDelay != 0.010 {
				t.Fatalf("SetPropDelay(%v): rejected delay mutated PropDelay to %v", tc.d, l.PropDelay)
			}
			if !tc.wantErr && l.PropDelay != tc.d {
				t.Fatalf("SetPropDelay(%v): PropDelay = %v", tc.d, l.PropDelay)
			}
		})
	}
}

// TestPathHopsConservationVariableRate is the multi-hop property test
// under a time-varying stage: a two-hop path whose second link's
// capacity steps every 100 ms (through SetRate, including degenerate
// zero/negative steps that clamp to the floor) must still satisfy every
// per-link conservation law after the queues drain.
func TestPathHopsConservationVariableRate(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			s := sim.New(seed)
			l1 := NewLink(s, 50+rng.Float64()*50, 1<<20, 0.002)
			cap2 := 2*MTU + rng.Intn(30*MTU)
			l2 := NewLink(s, 5+rng.Float64()*20, cap2, 0.010)
			l2.LossProb = rng.Float64() * 0.2
			p := &Path{Link: l1, Hops: []*Link{l2}, AckDelay: 0.010}

			// Variable-rate stage: capacity steps on the second hop,
			// drawn wide enough to include zero and negative samples.
			for at := 0.1; at < 10; at += 0.1 {
				mbps := -5 + rng.Float64()*40
				s.At(at, func() { l2.SetRateMbps(mbps) })
			}

			var offered, delivered int64
			n := 300 + rng.Intn(500)
			for i := 0; i < n; i++ {
				pkt := &Packet{FlowID: 1, Seq: int64(i), Size: 40 + rng.Intn(MTU-40+1)}
				s.At(rng.Float64()*10, func() {
					pkt.SentAt = s.Now()
					offered++
					p.Send(pkt, func(*Packet, float64) { delivered++ })
				})
			}
			// Heal the rate at t=10 so the drain completes quickly even
			// if the last step landed on the floor.
			s.At(10.001, func() { l2.SetRateMbps(20) })
			s.Run(10 + float64(cap2)/(20*1e6/8) + 30)

			s1, s2 := l1.Stats(), l2.Stats()
			if s1.Enqueued+s1.Dropped != offered {
				t.Fatalf("seed %d: hop1 enqueued(%d)+dropped(%d) != offered %d",
					seed, s1.Enqueued, s1.Dropped, offered)
			}
			if s1.Delivered+s1.LostRandom != s1.Enqueued {
				t.Fatalf("seed %d: hop1 delivered(%d)+lost(%d) != enqueued(%d)",
					seed, s1.Delivered, s1.LostRandom, s1.Enqueued)
			}
			if s2.Enqueued+s2.Dropped != s1.Delivered {
				t.Fatalf("seed %d: hop2 enqueued(%d)+dropped(%d) != hop1 delivered(%d)",
					seed, s2.Enqueued, s2.Dropped, s1.Delivered)
			}
			if s2.Delivered+s2.LostRandom != s2.Enqueued {
				t.Fatalf("seed %d: hop2 delivered(%d)+lost(%d) != enqueued(%d)",
					seed, s2.Delivered, s2.LostRandom, s2.Enqueued)
			}
			if int64(delivered) != s2.Delivered {
				t.Fatalf("seed %d: observed deliveries %d != hop2 delivered %d",
					seed, delivered, s2.Delivered)
			}
			if l1.QueueBytes() != 0 || l2.QueueBytes() != 0 {
				t.Fatalf("seed %d: queues not drained: %d/%d",
					seed, l1.QueueBytes(), l2.QueueBytes())
			}
		})
	}
}
