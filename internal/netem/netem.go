// Package netem emulates the network substrate the paper runs on: a
// serializing bottleneck link with a tail-drop byte queue, propagation
// delay and optional non-congestion random loss, plus the latency-noise
// models (per-packet jitter, latency spikes, bursty ACK release) that
// stand in for the paper's live-Internet WiFi paths.
//
// All timing is virtual, driven by a sim.Sim; all randomness comes from
// the simulation's seeded source, so every topology is deterministic.
package netem

import (
	"fmt"
	"math"
	"math/rand"

	"pccproteus/internal/sim"
	"pccproteus/internal/trace"
)

// MTU is the size in bytes of a full data packet on the wire. The paper's
// analysis (Appendix A) and Emulab setup use 1500-byte packets.
const MTU = 1500

// Packet is one data packet in flight. ACKs are modeled as scheduling
// callbacks rather than packets: the reverse path is never the
// bottleneck in any of the paper's scenarios.
type Packet struct {
	FlowID int
	Seq    int64
	Size   int     // bytes on the wire
	SentAt float64 // time the sender released it
	MI     int64   // monitor-interval tag for PCC-style senders, else 0
}

// Noise models additive, non-congestion latency (seconds). Implementations
// must be cheap: one sample per packet.
type Noise interface {
	Sample(rng *rand.Rand) float64
}

// NoNoise is the zero-latency noise model.
type NoNoise struct{}

// Sample returns 0.
func (NoNoise) Sample(*rand.Rand) float64 { return 0 }

// LognormalNoise draws lognormal extra latency: exp(N(Mu, Sigma²)) scaled
// so the median is Median seconds. A heavy right tail matches measured
// WiFi jitter (the paper: "typical RTT deviation is up to 5 ms but RTT
// occasionally spikes tens of milliseconds higher").
type LognormalNoise struct {
	Median float64 // median extra delay in seconds
	Sigma  float64 // shape; 0.5–1.0 is WiFi-like
}

// Sample draws one jitter value.
func (n LognormalNoise) Sample(rng *rand.Rand) float64 {
	if n.Median <= 0 {
		return 0
	}
	return n.Median * math.Exp(n.Sigma*rng.NormFloat64())
}

// SpikeNoise adds rare large latency spikes on top of a base model,
// emulating WiFi MAC-layer stalls.
type SpikeNoise struct {
	Base      Noise
	SpikeProb float64 // per-packet probability of a spike
	SpikeMin  float64 // seconds
	SpikeMax  float64 // seconds
}

// Sample draws base jitter plus an occasional spike.
func (n SpikeNoise) Sample(rng *rand.Rand) float64 {
	d := 0.0
	if n.Base != nil {
		d = n.Base.Sample(rng)
	}
	if n.SpikeProb > 0 && rng.Float64() < n.SpikeProb {
		d += n.SpikeMin + rng.Float64()*(n.SpikeMax-n.SpikeMin)
	}
	return d
}

// LinkStats aggregates link-level counters. Conservation laws (checked
// by the property tests): offered = Enqueued + Dropped + FaultDrop,
// and after the path drains Delivered + LostRandom + Corrupted +
// Flushed = Enqueued + Duplicated.
type LinkStats struct {
	Enqueued   int64 // packets accepted into the queue
	Dropped    int64 // packets tail-dropped
	LostRandom int64 // packets destroyed by random loss
	Delivered  int64 // packets handed to receivers
	SentBytes  int64 // bytes serialized onto the wire
	FaultDrop  int64 // packets destroyed by an injected blackout
	Corrupted  int64 // packets destroyed in flight by injected corruption
	Duplicated int64 // extra in-flight copies created by injected duplication
	Reordered  int64 // packets released out of order by injected reordering
	Flushed    int64 // in-flight packets discarded by a peer restart
}

// Link is a shared bottleneck: a FIFO byte queue drained at Rate, followed
// by a fixed propagation delay and optional per-packet jitter and random
// loss. Multiple senders share one Link; queue occupancy (and therefore
// latency) is global, which is what couples competing flows.
type Link struct {
	Sim       *sim.Sim
	Rate      float64 // bytes per second
	QueueCap  int     // queue capacity in bytes (tail drop beyond this)
	PropDelay float64 // one-way propagation delay, seconds
	LossProb  float64 // random (non-congestion) loss probability
	Jitter    Noise   // extra forward latency per packet (nil = none)

	// Injected faults (driven by internal/chaos; all zero in a healthy
	// run, in which case they cost nothing — not even an RNG draw).
	Down         bool    // blackout: every offered packet is destroyed
	CorruptProb  float64 // per-packet probability of in-flight corruption
	DupProb      float64 // per-packet probability of a duplicate delivery
	ReorderProb  float64 // per-packet probability of out-of-order release
	ReorderDelay float64 // extra delay applied to reorder-selected packets

	queueBytes  int
	busyUntil   float64
	lastArrival float64
	epoch       uint64
	stats       LinkStats
}

// NewLink builds a bottleneck with rate in bits/sec converted from Mbps,
// capacity in bytes, and one-way propagation delay in seconds.
func NewLink(s *sim.Sim, rateMbps float64, queueCapBytes int, propDelay float64) *Link {
	l := &Link{Sim: s, QueueCap: queueCapBytes, PropDelay: propDelay}
	l.SetRate(rateMbps * 1e6 / 8)
	return l
}

// MinRate is the documented capacity floor in bytes per second: one MTU
// per second. Time-varying capacity models (pathmodel traces, adversary
// schedules, rate walks) can legitimately sample zero or negative
// capacity during a deep fade; SetRate clamps such steps here so the
// serializing queue keeps draining — however slowly — instead of
// dividing by zero or running the busy timeline backwards.
const MinRate = float64(MTU)

// SetRate sets the link capacity in bytes per second. Zero, negative,
// and NaN inputs are clamped to MinRate; +Inf is allowed (instantaneous
// serialization). Every time-varying capacity model must change the
// rate through this boundary rather than writing Rate directly.
func (l *Link) SetRate(bps float64) {
	if math.IsNaN(bps) || bps < MinRate {
		bps = MinRate
	}
	l.Rate = bps
}

// SetRateMbps is SetRate with the capacity given in Mbps.
func (l *Link) SetRateMbps(mbps float64) { l.SetRate(mbps * 1e6 / 8) }

// SetPropDelay sets the one-way propagation delay in seconds. Unlike a
// degenerate capacity — which has a natural floor — a NaN, infinite, or
// negative delay silently corrupts every arrival timestamp computed
// downstream, so the model boundary rejects it with an error instead of
// guessing.
func (l *Link) SetPropDelay(d float64) error {
	if math.IsNaN(d) || math.IsInf(d, 0) || d < 0 {
		return fmt.Errorf("netem: invalid propagation delay %v", d)
	}
	l.PropDelay = d
	return nil
}

// Stats returns a copy of the link counters.
func (l *Link) Stats() LinkStats { return l.stats }

// Flush models a peer restart: every packet currently in flight (sent
// but not yet delivered) is discarded at its would-be delivery time and
// counted as Flushed. Queue-occupancy accounting is unaffected — the
// bytes still drain off the wire; only delivery is suppressed.
func (l *Link) Flush() { l.epoch++ }

// QueueBytes returns the current queue occupancy in bytes.
func (l *Link) QueueBytes() int { return l.queueBytes }

// QueueDelay returns the delay a packet enqueued now would wait before
// its own serialization begins.
func (l *Link) QueueDelay() float64 {
	d := l.busyUntil - l.Sim.Now()
	if d < 0 {
		return 0
	}
	return d
}

// Send enqueues pkt. It returns false (and counts a drop) if the queue is
// full. Otherwise deliver is invoked at the packet's arrival time unless
// the packet falls to random loss, in which case it silently vanishes —
// the sender must infer the loss, as on a real path.
//
// With a flight recorder attached to the simulation, the link emits a
// PacketDrop event for every tail drop and random loss (into the
// owning flow's ring) and a sampled QueueDepth event per enqueue (into
// the link's own ring, flow 0).
func (l *Link) Send(pkt *Packet, deliver func(p *Packet, arrival float64)) bool {
	rec := l.Sim.Trace()
	now := l.Sim.Now()
	if l.Down {
		// Blackout: the packet is offered to a dead path and vanishes
		// before it reaches the queue, exactly as the wire shim drops
		// it before its virtual-timeline accounting. The sender gets
		// no synchronous feedback — loss is inferred by timeout.
		l.stats.FaultDrop++
		if rec.Enabled(trace.KindPacketDrop) {
			rec.Tracer(pkt.FlowID).PacketDrop(now, pkt.Seq, pkt.Size, l.queueBytes, "blackout")
		}
		return true
	}
	if l.queueBytes+pkt.Size > l.QueueCap {
		l.stats.Dropped++
		if rec.Enabled(trace.KindPacketDrop) {
			rec.Tracer(pkt.FlowID).PacketDrop(now, pkt.Seq, pkt.Size, l.queueBytes, "taildrop")
		}
		return false
	}
	l.queueBytes += pkt.Size
	l.stats.Enqueued++
	if rec.Enabled(trace.KindQueueDepth) {
		rec.Tracer(0).QueueDepth(now, l.queueBytes, l.QueueDelay(), l.Rate)
	}
	start := now
	if l.busyUntil > start {
		start = l.busyUntil
	}
	txEnd := start + float64(pkt.Size)/l.Rate
	l.busyUntil = txEnd
	lost := l.LossProb > 0 && l.Sim.Rand().Float64() < l.LossProb
	jitter := 0.0
	if l.Jitter != nil {
		jitter = l.Jitter.Sample(l.Sim.Rand())
	}
	// Fault draws come after the legacy draws, each gated on its
	// probability, so a fault-free run consumes the RNG identically to
	// one built before faults existed and stays bit-reproducible.
	corrupt := l.CorruptProb > 0 && l.Sim.Rand().Float64() < l.CorruptProb
	dup := l.DupProb > 0 && l.Sim.Rand().Float64() < l.DupProb
	reorder := l.ReorderProb > 0 && l.Sim.Rand().Float64() < l.ReorderProb
	arrival := txEnd + l.PropDelay + jitter
	// Jitter models MAC-layer stalls (retransmissions, scheduling), which
	// block the head of the line: packets behind a delayed one are
	// delayed too, so delivery stays in order. Per-packet *reordering* by
	// tens of milliseconds is not something wired or WiFi links do, and
	// would manufacture phantom losses at the sender — unless an injected
	// reordering fault asks for exactly that, in which case the selected
	// packet is held ReorderDelay extra and released out of order (it
	// skips the clamp and does not advance the head-of-line marker).
	if reorder {
		l.stats.Reordered++
		arrival += l.ReorderDelay
	} else {
		if arrival < l.lastArrival {
			arrival = l.lastArrival
		}
		l.lastArrival = arrival
	}
	l.Sim.At(txEnd, func() {
		l.queueBytes -= pkt.Size
		l.stats.SentBytes += int64(pkt.Size)
	})
	if lost {
		l.stats.LostRandom++
		if rec.Enabled(trace.KindPacketDrop) {
			rec.Tracer(pkt.FlowID).PacketDrop(now, pkt.Seq, pkt.Size, l.queueBytes, "random")
		}
		return true
	}
	ep := l.epoch
	l.Sim.At(arrival, func() {
		if ep != l.epoch {
			l.stats.Flushed++
			if rec.Enabled(trace.KindPacketDrop) {
				rec.Tracer(pkt.FlowID).PacketDrop(l.Sim.Now(), pkt.Seq, pkt.Size, l.queueBytes, "restart")
			}
			return
		}
		if corrupt {
			// The bytes traversed the link but arrive damaged; the
			// receiver's codec rejects them, so delivery never happens.
			l.stats.Corrupted++
			if rec.Enabled(trace.KindPacketDrop) {
				rec.Tracer(pkt.FlowID).PacketDrop(l.Sim.Now(), pkt.Seq, pkt.Size, l.queueBytes, "corrupt")
			}
			return
		}
		l.stats.Delivered++
		deliver(pkt, arrival)
	})
	if dup {
		// A duplicate copy materializes in the network and arrives
		// alongside the original (dup of a corrupted packet arrives
		// clean — only the first copy was damaged). Counted at
		// creation so the conservation law Delivered + LostRandom +
		// Corrupted + Flushed = Enqueued + Duplicated holds even when
		// a restart flushes the copy.
		l.stats.Duplicated++
		l.Sim.At(arrival, func() {
			if ep != l.epoch {
				l.stats.Flushed++
				return
			}
			l.stats.Delivered++
			deliver(pkt, arrival)
		})
	}
	return true
}

// AckBatcher models bursty ACK delivery caused by irregular MAC
// scheduling: "hold" windows open as a Poisson process; ACKs arriving
// during a hold are queued and released together when it closes. This is
// the phenomenon Proteus's per-ACK interval filter (§5) defends against.
type AckBatcher struct {
	Sim      *sim.Sim
	HoldRate float64 // hold windows per second (Poisson)
	HoldTime float64 // seconds each hold lasts

	holdUntil float64
	nextHold  float64
	seeded    bool
}

// Delay returns the extra delay to apply to an ACK arriving now.
func (b *AckBatcher) Delay() float64 {
	if b == nil || b.HoldRate <= 0 || b.HoldTime <= 0 {
		return 0
	}
	now := b.Sim.Now()
	if !b.seeded {
		b.nextHold = now + b.Sim.Rand().ExpFloat64()/b.HoldRate
		b.seeded = true
	}
	// Advance the hold process up to now.
	for b.nextHold <= now {
		b.holdUntil = b.nextHold + b.HoldTime
		b.nextHold += b.Sim.Rand().ExpFloat64() / b.HoldRate
	}
	if now < b.holdUntil {
		return b.holdUntil - now
	}
	return 0
}

// Path bundles the forward direction — one or more bottleneck links in
// series — with the uncongested return path an ACK takes. A single-link
// path (Hops empty) behaves exactly as it always has: base RTT =
// Link.PropDelay + AckDelay (+ one MTU serialization). With Hops set,
// packets delivered by Link are immediately offered to each hop in
// order, so queueing, serialization, loss, and faults apply per stage —
// the building block for dumbbell, parking-lot, and shared-uplink
// topologies (internal/campaign).
type Path struct {
	Link      *Link
	Hops      []*Link // downstream bottlenecks traversed after Link, in order
	AckDelay  float64 // reverse one-way delay, seconds
	AckJitter Noise
	Batcher   *AckBatcher

	// Injected faults (driven by internal/chaos).
	AckDown     bool    // reverse-path blackout: acks emitted now vanish
	StampOffset float64 // receiver clock-jump offset applied to arrival stamps

	lastAckArrival float64
	epoch          uint64
	stats          PathStats
}

// PathStats counts reverse-path fault attribution.
type PathStats struct {
	AckDropped int64 // acks destroyed by an ack-path blackout
	AckFlushed int64 // in-flight acks discarded by a peer restart
}

// Stats returns a copy of the reverse-path counters.
func (p *Path) Stats() PathStats { return p.stats }

// Send offers pkt to the forward direction of the path. On a single-link
// path it is exactly Link.Send. With hops, the packet re-enters each
// downstream link at its previous-stage arrival time; deliver fires only
// after the last stage. The return value reports acceptance at the
// *first* queue — a downstream tail drop is invisible to the sender, as
// on a real multi-hop path, and is discovered via dup-ACKs or RTO.
func (p *Path) Send(pkt *Packet, deliver func(p *Packet, arrival float64)) bool {
	if len(p.Hops) == 0 {
		return p.Link.Send(pkt, deliver)
	}
	return p.Link.Send(pkt, p.hopDeliver(0, deliver))
}

// hopDeliver builds the delivery chain that forwards a packet from hop
// i-1 into hop i (hop index len(Hops) is the receiver).
func (p *Path) hopDeliver(i int, deliver func(p *Packet, arrival float64)) func(*Packet, float64) {
	if i == len(p.Hops) {
		return deliver
	}
	return func(q *Packet, _ float64) {
		// Now() == the arrival time at this stage; the hop's own queue,
		// serialization, and prop delay take over from here. A downstream
		// drop simply ends the chain.
		p.Hops[i].Send(q, p.hopDeliver(i+1, deliver))
	}
}

// BottleneckRate returns the lowest link rate on the forward direction,
// in bytes/sec — the capacity the path can sustain end to end.
func (p *Path) BottleneckRate() float64 {
	r := p.Link.Rate
	for _, h := range p.Hops {
		if h.Rate < r {
			r = h.Rate
		}
	}
	return r
}

// Flush models a peer restart on the reverse path: acks already in
// flight toward the sender are discarded at their would-be arrival.
func (p *Path) Flush() { p.epoch++ }

// Epoch returns the current restart epoch; an ack scheduled for
// delivery must capture it and discard itself (via NoteAckFlushed) if
// the epoch has moved by its arrival time.
func (p *Path) Epoch() uint64 { return p.epoch }

// NoteAckFlushed records one in-flight ack discarded by a restart.
func (p *Path) NoteAckFlushed() { p.stats.AckFlushed++ }

// DropAck reports whether an ack emitted now is destroyed by an
// ack-path blackout, counting the drop.
func (p *Path) DropAck() bool {
	if !p.AckDown {
		return false
	}
	p.stats.AckDropped++
	return true
}

// AckArrival computes when an ACK emitted by the receiver at recvTime
// lands back at the sender. Like the forward direction, ACK jitter is
// head-of-line blocking and preserves order.
func (p *Path) AckArrival(recvTime float64) float64 {
	d := p.AckDelay
	if p.AckJitter != nil {
		d += p.AckJitter.Sample(p.Link.Sim.Rand())
	}
	if p.Batcher != nil {
		d += p.Batcher.Delay()
	}
	at := recvTime + d
	if at < p.lastAckArrival {
		at = p.lastAckArrival
	}
	p.lastAckArrival = at
	return at
}

// BaseRTT returns the no-queue round-trip time of the path including one
// full-MTU serialization per forward link.
func (p *Path) BaseRTT() float64 {
	rtt := p.Link.PropDelay + p.AckDelay + float64(MTU)/p.Link.Rate
	for _, h := range p.Hops {
		rtt += h.PropDelay + float64(MTU)/h.Rate
	}
	return rtt
}

// BDP returns the bandwidth-delay product of the path in bytes,
// using the bottleneck (minimum) rate across the forward links.
func (p *Path) BDP() float64 { return p.BottleneckRate() * p.BaseRTT() }

// RateWalk drives a link's capacity as a bounded geometric random walk,
// emulating cellular (LTE-like) channels where the scheduler's per-user
// capacity swings on sub-second timescales (§7.2 names LTE as the
// high-fluctuation environment left to future work). Every Interval the
// rate is multiplied by a lognormal step and clamped to
// [MinFactor, MaxFactor]·Base.
type RateWalk struct {
	Sim      *sim.Sim
	Link     *Link
	Base     float64 // bytes/sec around which the walk moves
	Interval float64 // seconds between steps
	Sigma    float64 // per-step lognormal volatility
	MinFac   float64
	MaxFac   float64
}

// Start begins the walk; it reschedules itself for the life of the
// simulation.
func (w *RateWalk) Start() {
	if w.Base == 0 {
		w.Base = w.Link.Rate
	}
	if w.Interval <= 0 {
		w.Interval = 0.1
	}
	if w.MinFac == 0 {
		w.MinFac = 0.25
	}
	if w.MaxFac == 0 {
		w.MaxFac = 1.0
	}
	if w.Sigma == 0 {
		w.Sigma = 0.25
	}
	w.step()
}

func (w *RateWalk) step() {
	f := w.Link.Rate / w.Base * math.Exp(w.Sigma*w.Sim.Rand().NormFloat64())
	if f < w.MinFac {
		f = w.MinFac
	}
	if f > w.MaxFac {
		f = w.MaxFac
	}
	w.Link.SetRate(w.Base * f)
	w.Sim.After(w.Interval, w.step)
}
