package netem

import (
	"math/rand"
	"testing"

	"pccproteus/internal/sim"
)

// Property tests: under randomized offered load, loss probability, and
// mid-run rate changes, the link's conservation laws must hold exactly.
//
//   - queue occupancy never exceeds QueueCap (checked at every
//     enqueue and at random probe times);
//   - every offered packet is either accepted or tail-dropped:
//     Enqueued + Dropped == offered;
//   - every accepted packet eventually either delivers or falls to
//     random loss: Delivered + LostRandom == Enqueued after drain;
//   - SentBytes equals the bytes of all accepted packets after drain,
//     and the queue is empty.
func TestLinkConservationRandomized(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			s := sim.New(seed)
			queueCap := 2*MTU + rng.Intn(50*MTU) // fixed per trial
			link := NewLink(s, 1+rng.Float64()*99, queueCap, rng.Float64()*0.05)
			link.LossProb = rng.Float64() * 0.3
			if rng.Intn(2) == 0 {
				link.Jitter = LognormalNoise{Median: 0.001, Sigma: 0.5}
			}

			checkCap := func(when string) {
				if q := link.QueueBytes(); q > queueCap || q < 0 {
					t.Fatalf("seed %d: queue %d outside [0,%d] %s at t=%.4f",
						seed, q, queueCap, when, s.Now())
				}
			}

			var offered, accepted, acceptedBytes, delivered int64
			n := 200 + rng.Intn(800)
			for i := 0; i < n; i++ {
				pkt := &Packet{FlowID: 1, Seq: int64(i), Size: 40 + rng.Intn(MTU-40+1)}
				at := rng.Float64() * 10
				s.At(at, func() {
					pkt.SentAt = s.Now()
					offered++
					if link.Send(pkt, func(p *Packet, arrival float64) {
						delivered++
						checkCap("at delivery")
					}) {
						accepted++
						acceptedBytes += int64(pkt.Size)
					}
					checkCap("after send")
				})
			}
			// Mid-run rate changes: the schedule the adversary subsystem
			// drives through sim events, reduced to its essence.
			for i := 0; i < 10; i++ {
				newRate := (0.5 + rng.Float64()*99.5) * 1e6 / 8
				s.At(rng.Float64()*10, func() { link.Rate = newRate })
			}
			// Random occupancy probes between events.
			for i := 0; i < 50; i++ {
				s.At(rng.Float64()*12, func() { checkCap("at probe") })
			}

			// Run long past the last send so the queue fully drains even
			// at the slowest rate the walk can pick.
			s.Run(10 + float64(queueCap)/(0.5*1e6/8) + 30)

			st := link.Stats()
			if st.Enqueued+st.Dropped != offered {
				t.Fatalf("seed %d: Enqueued %d + Dropped %d != offered %d", seed, st.Enqueued, st.Dropped, offered)
			}
			if st.Enqueued != accepted {
				t.Fatalf("seed %d: Enqueued %d != accepted sends %d", seed, st.Enqueued, accepted)
			}
			if st.Delivered+st.LostRandom != st.Enqueued {
				t.Fatalf("seed %d: Delivered %d + LostRandom %d != Enqueued %d after drain",
					seed, st.Delivered, st.LostRandom, st.Enqueued)
			}
			if st.Delivered != delivered {
				t.Fatalf("seed %d: Delivered %d != observed deliveries %d", seed, st.Delivered, delivered)
			}
			if st.SentBytes != acceptedBytes {
				t.Fatalf("seed %d: SentBytes %d != accepted bytes %d after drain", seed, st.SentBytes, acceptedBytes)
			}
			if link.QueueBytes() != 0 {
				t.Fatalf("seed %d: queue not empty after drain: %d", seed, link.QueueBytes())
			}
			if st.Dropped == 0 && st.LostRandom == 0 && link.LossProb > 0.05 {
				t.Logf("seed %d: note: no losses at all (lossProb=%.2f, n=%d)", seed, link.LossProb, n)
			}
		})
	}
}
