package netem

import (
	"math"
	"testing"

	"pccproteus/internal/sim"
)

// TestMultiHopDeliveryTiming checks that a packet traversing two links
// arrives after the sum of both serializations and propagation delays.
func TestMultiHopDeliveryTiming(t *testing.T) {
	s := sim.New(1)
	l1 := NewLink(s, 8, 1<<20, 0.010) // 8 Mbps = 1e6 B/s
	l2 := NewLink(s, 4, 1<<20, 0.020) // 4 Mbps = 5e5 B/s
	p := &Path{Link: l1, Hops: []*Link{l2}, AckDelay: 0.005}

	var got float64
	pkt := &Packet{FlowID: 1, Seq: 0, Size: 1000}
	if !p.Send(pkt, func(_ *Packet, arrival float64) { got = arrival }) {
		t.Fatal("send rejected on empty queues")
	}
	s.Run(10)

	want := 1000/1e6 + 0.010 + 1000/5e5 + 0.020
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("arrival = %.6f, want %.6f", got, want)
	}
	if l1.Stats().Delivered != 1 || l2.Stats().Delivered != 1 {
		t.Fatalf("per-link delivered = %d/%d, want 1/1",
			l1.Stats().Delivered, l2.Stats().Delivered)
	}
}

// TestMultiHopZeroHopsIdentical checks that a hop-free Path.Send is the
// same call as Link.Send: identical RNG consumption and arrival times.
func TestMultiHopZeroHopsIdentical(t *testing.T) {
	run := func(viaPath bool) []float64 {
		s := sim.New(7)
		l := NewLink(s, 10, 1<<20, 0.015)
		l.LossProb = 0.1
		l.Jitter = LognormalNoise{Median: 0.001, Sigma: 0.5}
		p := &Path{Link: l, AckDelay: 0.010}
		var arrivals []float64
		deliver := func(_ *Packet, at float64) { arrivals = append(arrivals, at) }
		for i := 0; i < 50; i++ {
			pkt := &Packet{FlowID: 1, Seq: int64(i), Size: MTU}
			if viaPath {
				p.Send(pkt, deliver)
			} else {
				l.Send(pkt, deliver)
			}
		}
		s.Run(10)
		return arrivals
	}
	a, b := run(true), run(false)
	if len(a) != len(b) {
		t.Fatalf("delivery counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestMultiHopDownstreamDrop checks that a tail drop at the second hop
// is counted there, is invisible to the sender's Send result, and that
// each link's conservation law still holds.
func TestMultiHopDownstreamDrop(t *testing.T) {
	s := sim.New(1)
	l1 := NewLink(s, 100, 1<<20, 0.001) // fast ingress
	l2 := NewLink(s, 1, 2*MTU, 0.001)   // slow egress, 2-packet queue
	p := &Path{Link: l1, Hops: []*Link{l2}}

	delivered := 0
	for i := 0; i < 20; i++ {
		pkt := &Packet{FlowID: 1, Seq: int64(i), Size: MTU}
		if !p.Send(pkt, func(*Packet, float64) { delivered++ }) {
			t.Fatalf("first-hop queue rejected packet %d", i)
		}
	}
	s.Run(60)

	s1, s2 := l1.Stats(), l2.Stats()
	if s1.Dropped != 0 || s2.Dropped == 0 {
		t.Fatalf("drops: hop1=%d hop2=%d, want 0 and >0", s1.Dropped, s2.Dropped)
	}
	if int64(delivered) != s2.Delivered {
		t.Fatalf("delivered %d, hop2 says %d", delivered, s2.Delivered)
	}
	// Conservation at hop 2: everything hop 1 delivered was offered.
	if s2.Enqueued+s2.Dropped != s1.Delivered {
		t.Fatalf("hop2 enqueued(%d)+dropped(%d) != hop1 delivered(%d)",
			s2.Enqueued, s2.Dropped, s1.Delivered)
	}
}

// TestMultiHopBaseRTTAndBDP checks hop-aware path arithmetic.
func TestMultiHopBaseRTTAndBDP(t *testing.T) {
	s := sim.New(1)
	l1 := NewLink(s, 8, 1<<20, 0.010)
	l2 := NewLink(s, 4, 1<<20, 0.020)
	p := &Path{Link: l1, Hops: []*Link{l2}, AckDelay: 0.030}

	wantRTT := 0.010 + 0.020 + 0.030 + MTU/1e6 + MTU/5e5
	if got := p.BaseRTT(); math.Abs(got-wantRTT) > 1e-12 {
		t.Fatalf("BaseRTT = %v, want %v", got, wantRTT)
	}
	if got := p.BottleneckRate(); got != 5e5 {
		t.Fatalf("BottleneckRate = %v, want 5e5", got)
	}
	if got, want := p.BDP(), 5e5*wantRTT; math.Abs(got-want) > 1e-9 {
		t.Fatalf("BDP = %v, want %v", got, want)
	}
}
