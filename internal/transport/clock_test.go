package transport

import (
	"testing"

	"pccproteus/internal/netem"
	"pccproteus/internal/sim"
)

// fakeEvent is one scheduled callback on the fake clock.
type fakeEvent struct {
	at      float64
	fn      func()
	stopped bool
}

func (e *fakeEvent) Stop() bool {
	was := !e.stopped
	e.stopped = true
	return was
}

// fakeClock is a hand-driven Clock: tests set the time and decide
// which scheduled callbacks fire. It proves the sender's timebase is
// genuinely injected — nothing below depends on the simulator's clock.
type fakeClock struct {
	now    float64
	events []*fakeEvent
}

func (c *fakeClock) Now() float64 { return c.now }

func (c *fakeClock) At(t float64, fn func()) Timer {
	e := &fakeEvent{at: t, fn: fn}
	c.events = append(c.events, e)
	return e
}

// runUntil fires pending events in time order up to and including t,
// then advances the clock to t.
func (c *fakeClock) runUntil(t float64) {
	for {
		best := -1
		for i, e := range c.events {
			if !e.stopped && e.at <= t && (best < 0 || e.at < c.events[best].at) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		e := c.events[best]
		e.stopped = true
		if e.at > c.now {
			c.now = e.at
		}
		e.fn()
	}
	if t > c.now {
		c.now = t
	}
}

// pending reports whether any live event is scheduled at time at.
func (c *fakeClock) pending(at float64) bool {
	for _, e := range c.events {
		if !e.stopped && e.at == at {
			return true
		}
	}
	return false
}

// newFakeSender builds a sender on a fake clock. The path still exists
// (emit hands packets to the link) but the simulation never runs, so
// the test delivers acks by hand through handleAck.
func newFakeSender(cc Controller, fc *fakeClock) *Sender {
	s := sim.New(1)
	p := testPath(s, 1000, 1<<20, 0.030)
	snd := NewSender(1, p, cc)
	snd.Burst = 1
	snd.Clock = fc
	return snd
}

func TestInjectedClockSetsTimebase(t *testing.T) {
	fc := &fakeClock{now: 50}
	cc := &rateCC{rate: 1.5e6}
	snd := newFakeSender(cc, fc)
	snd.Start()
	fc.runUntil(50)
	if snd.startTime != 50 {
		t.Fatalf("startTime %v want 50 (injected clock)", snd.startTime)
	}
	if len(snd.unacked) == 0 || snd.unacked[0].SentAt != 50 {
		t.Fatalf("first packet SentAt %v want 50", snd.unacked[0].SentAt)
	}
	// The RTO backstop must be armed on the injected clock too:
	// initial RTO is 1 s after the oldest outstanding packet.
	if !fc.pending(51) {
		t.Fatal("RTO timer not scheduled on the injected clock")
	}
}

// emitEight runs the paced sender for 7 ms of fake time: at 1.5e6 B/s
// and Burst 1, exactly eight MTU packets go out, 1 ms apart.
func emitEight(t *testing.T, snd *Sender, fc *fakeClock) {
	t.Helper()
	snd.Start()
	fc.runUntil(100.0075) // past the 8th emit despite float accumulation
	if len(snd.unacked) != 8 {
		t.Fatalf("emitted %d packets want 8", len(snd.unacked))
	}
}

func TestDuplicateAckIsIdempotent(t *testing.T) {
	fc := &fakeClock{now: 100}
	cc := &rateCC{rate: 1.5e6}
	snd := newFakeSender(cc, fc)
	emitEight(t, snd, fc)
	fc.now = 100.030
	pkt := &netem.Packet{FlowID: 1, Seq: 0, Size: netem.MTU, SentAt: 100}
	snd.handleAck(pkt, 100.015)
	snd.handleAck(pkt, 100.015) // exact duplicate
	if len(cc.acks) != 1 {
		t.Fatalf("OnAck fired %d times for a duplicated ack, want 1", len(cc.acks))
	}
	if snd.AckedBytes() != netem.MTU {
		t.Fatalf("acked %d bytes want %d", snd.AckedBytes(), netem.MTU)
	}
	if snd.InflightBytes() != 7*netem.MTU {
		t.Fatalf("inflight %d want %d", snd.InflightBytes(), 7*netem.MTU)
	}
}

func TestReorderedAckWithinWindowNoLoss(t *testing.T) {
	fc := &fakeClock{now: 100}
	cc := &rateCC{rate: 1.5e6}
	snd := newFakeSender(cc, fc)
	emitEight(t, snd, fc)
	// Ack seq 7 while 0..6 are still outstanding — far past the dup-ack
	// threshold in sequence space, but every packet is younger than
	// srtt + reorder window, so RACK must hold fire.
	fc.now = 100.030
	snd.handleAck(&netem.Packet{FlowID: 1, Seq: 7, Size: netem.MTU, SentAt: 100.007}, 100.015)
	if len(cc.losses) != 0 {
		t.Fatalf("young reordering produced %d losses", len(cc.losses))
	}
	// The "missing" acks then arrive late and are credited normally.
	for seq := int64(0); seq < 7; seq++ {
		snd.handleAck(&netem.Packet{FlowID: 1, Seq: seq, Size: netem.MTU, SentAt: 100 + float64(seq)/1000}, 100.02)
	}
	if len(cc.acks) != 8 || len(cc.losses) != 0 {
		t.Fatalf("after late acks: %d acks %d losses", len(cc.acks), len(cc.losses))
	}
	if snd.InflightBytes() != 0 {
		t.Fatalf("inflight %d want 0", snd.InflightBytes())
	}
}

func TestAgedGapDeclaredLost(t *testing.T) {
	fc := &fakeClock{now: 100}
	cc := &rateCC{rate: 1.5e6}
	snd := newFakeSender(cc, fc)
	emitEight(t, snd, fc)
	fc.now = 100.030
	snd.handleAck(&netem.Packet{FlowID: 1, Seq: 7, Size: netem.MTU, SentAt: 100.007}, 100.015)
	if len(cc.losses) != 0 {
		t.Fatal("young gap declared lost")
	}
	// Age the gap past srtt + reorder window (a late ack's own huge RTT
	// sample would inflate rttvar and mask it, so age the packets, not
	// the clock sample).
	for _, sp := range snd.unacked {
		if !sp.acked && sp.Seq <= 4 {
			sp.SentAt -= 1.0
		}
	}
	fc.now = 100.040
	snd.handleAck(&netem.Packet{FlowID: 1, Seq: 5, Size: netem.MTU, SentAt: 100.005}, 100.037)
	// maxAcked is 7, so seqs ≤ 4 are dup-ack candidates; all are aged.
	if len(cc.losses) != 5 {
		t.Fatalf("aged gap: %d losses want 5 (seqs 0..4)", len(cc.losses))
	}
	if snd.LostBytes() != 5*netem.MTU {
		t.Fatalf("lost %d bytes want %d", snd.LostBytes(), 5*netem.MTU)
	}
	// A straggler ack for a declared-lost packet is ignored, not
	// double-credited.
	acked := snd.AckedBytes()
	snd.handleAck(&netem.Packet{FlowID: 1, Seq: 0, Size: netem.MTU, SentAt: 99}, 100.037)
	if snd.AckedBytes() != acked || len(cc.losses) != 5 {
		t.Fatal("straggler ack for a lost packet changed accounting")
	}
}
