// Package transport implements the end-to-end sender machinery every
// congestion controller in this repository plugs into: rate pacing and
// window gating, per-packet acknowledgments carrying RTT and one-way
// delay, duplicate-ACK and RTO loss detection, RFC 6298 RTT estimation,
// finite transfers with implicit retransmission accounting, and
// pause/resume for application-limited flows (video).
//
// This is the single codebase the paper's "flexibility" goal calls for:
// primary protocols, scavengers, and hybrids are all Controller
// implementations behind one interface, and PCC-style controllers can
// even swap utility functions on a live connection.
package transport

import (
	"math"

	"pccproteus/internal/netem"
	"pccproteus/internal/sim"
	"pccproteus/internal/trace"
)

// SentPacket is the sender-side record of one transmitted packet. The
// controller's OnSend hook may set MI to tag the packet with a monitor
// interval (PCC-style controllers do; others leave it zero).
type SentPacket struct {
	Seq    int64
	Size   int
	SentAt float64
	MI     int64
	acked  bool
	lost   bool
	probe  bool // outage keep-alive: invisible to the controller
}

// Ack describes one acknowledgment delivered to the controller.
type Ack struct {
	Seq      int64
	Bytes    int
	SentAt   float64
	RecvAt   float64 // arrival time at the receiver (OWD = RecvAt-SentAt)
	Now      float64 // ACK arrival time at the sender
	RTT      float64
	OWD      float64 // one-way delay, for LEDBAT-style controllers
	MI       int64
	Inflight int // bytes in flight after this ack
}

// Loss describes one packet declared lost.
type Loss struct {
	Seq      int64
	Bytes    int
	SentAt   float64
	Now      float64
	MI       int64
	Inflight int
}

// Controller is a congestion-control algorithm. The sender enforces
// both constraints it reports: packets are paced at PacingRate and never
// leave more than CWnd bytes in flight.
//
// Convention: a window-based protocol (CUBIC, LEDBAT) returns
// PacingRate() == 0, meaning "pace me at 1.25·cwnd/srtt" — close to how
// Linux paces TCP — while a rate-based protocol (PCC family, BBR)
// returns its explicit rate. A purely rate-based protocol returns
// math.Inf(1) from CWnd.
type Controller interface {
	// Name identifies the protocol in experiment output.
	Name() string
	// OnSend is invoked for every transmitted packet, before it enters
	// the network. The controller may tag pkt.MI.
	OnSend(now float64, pkt *SentPacket)
	// OnAck is invoked for every acknowledgment.
	OnAck(ack Ack)
	// OnLoss is invoked for every packet declared lost (dup-ACK or RTO).
	OnLoss(loss Loss)
	// PacingRate returns the target sending rate in bytes/sec, or 0 to
	// request default cwnd-based pacing.
	PacingRate() float64
	// CWnd returns the congestion window in bytes.
	CWnd() float64
}

// PauseAware is implemented by controllers that must know when the
// application stops requesting data (e.g. a full video playback buffer),
// so they can discard measurement intervals that span idle periods.
type PauseAware interface {
	OnAppPause(now float64)
	OnAppResume(now float64)
}

// OutageAware is implemented by controllers that want the sender's
// stall watchdog to freeze and restore them across a path outage.
// OnOutage must discard open measurement state and stop adapting (no
// acks will arrive); OnRecovery is called at the first ack after the
// outage with the last pacing rate that was actually delivering before
// it (bytes/sec, 0 when unknown), so the controller can re-probe from
// the pre-outage operating point instead of from wherever the loss
// flood drove it. Controllers that implement only PauseAware get
// OnAppPause/OnAppResume as a degraded fallback.
type OutageAware interface {
	OnOutage(now float64)
	OnRecovery(now float64, resumeRate float64)
}

// TraceAware is implemented by controllers that emit their own
// flight-recorder events (MI decisions, rate changes, mode switches).
// The sender hands each such controller its flow's tracer at Start.
type TraceAware interface {
	SetTracer(t trace.Tracer)
}

// Timer is a cancelable scheduled callback, as returned by Clock.At.
type Timer interface{ Stop() bool }

// Clock is the time base and timer service a Sender runs on. It exists
// so the sender's clock is an injected dependency rather than an
// implication of the simulator: the discrete-event engine provides the
// default (SimClock), tests substitute hand-driven fakes, and the wire
// datapath reuses the same controller-facing conventions (seconds as
// float64, absolute-time scheduling) against the host's real clock.
type Clock interface {
	// Now returns the current time in seconds.
	Now() float64
	// At schedules fn at absolute time t and returns a cancel handle.
	At(t float64, fn func()) Timer
}

// simClock adapts *sim.Sim to Clock.
type simClock struct{ s *sim.Sim }

func (c simClock) Now() float64                  { return c.s.Now() }
func (c simClock) At(t float64, fn func()) Timer { return c.s.At(t, fn) }

// SimClock returns the Clock backed by a discrete-event simulator —
// the default time base for senders on an emulated path.
func SimClock(s *sim.Sim) Clock { return simClock{s} }

// RTTEstimator maintains RFC 6298 smoothed RTT state plus the lifetime
// minimum.
type RTTEstimator struct {
	srtt   float64
	rttvar float64
	minRTT float64
	init   bool
}

// Update incorporates an RTT sample.
func (e *RTTEstimator) Update(rtt float64) {
	if !e.init {
		e.srtt = rtt
		e.rttvar = rtt / 2
		e.minRTT = rtt
		e.init = true
		return
	}
	if rtt < e.minRTT {
		e.minRTT = rtt
	}
	d := math.Abs(e.srtt - rtt)
	e.rttvar = 0.75*e.rttvar + 0.25*d
	e.srtt = 0.875*e.srtt + 0.125*rtt
}

// SRTT returns the smoothed RTT (0 before any sample).
func (e *RTTEstimator) SRTT() float64 { return e.srtt }

// MinRTT returns the lifetime minimum RTT (0 before any sample).
func (e *RTTEstimator) MinRTT() float64 { return e.minRTT }

// RTTVar returns the smoothed mean deviation of the RTT — the basis of
// the RTO and of the RACK reordering window. Exported so other
// datapaths (the wire sender) reuse this estimator verbatim.
func (e *RTTEstimator) RTTVar() float64 { return e.rttvar }

// RTO returns the retransmission timeout, floored at 200 ms.
func (e *RTTEstimator) RTO() float64 {
	if !e.init {
		return 1.0
	}
	rto := e.srtt + 4*e.rttvar
	if rto < 0.2 {
		rto = 0.2
	}
	return rto
}

// Valid reports whether any sample has been observed.
func (e *RTTEstimator) Valid() bool { return e.init }

const (
	dupAckThreshold = 3
	initialWindow   = 10 * netem.MTU

	// DefaultBurst is the per-pacing-event packet train length used when
	// Sender.Burst is zero. Four packets approximates Linux's default
	// GSO/pacing behavior at these rates.
	DefaultBurst = 4

	// maxRTOBackoff caps the exponential RTO backoff exponent: the
	// effective RTO is base·2^backoff, clamped to maxRTO. Without
	// backoff, every expiry re-fires at the base RTO and floods the
	// controller with duplicate loss signals for packets sent into an
	// outage.
	maxRTOBackoff = 4
	// maxRTO is the ceiling of the backed-off retransmission timeout.
	maxRTO = 3.0
	// watchdogFloor is the minimum ack silence (with data outstanding)
	// before the stall watchdog declares an outage; the actual
	// threshold is max(2·RTO, watchdogFloor).
	watchdogFloor = 0.5
	// probeInterval is the keep-alive send period during a declared
	// outage: cheap enough to be negligible, frequent enough to detect
	// path healing within a fraction of a second.
	probeInterval = 0.25
)

// Sender drives one flow. Create with NewSender, then Start.
type Sender struct {
	ID   int
	Path *netem.Path
	CC   Controller

	// Clock is the sender's time base. Leave nil for the default:
	// SimClock over the path's simulator. Set before Start.
	Clock Clock

	// Limit, when positive, bounds the transfer: the flow completes once
	// Limit bytes are acknowledged. Lost bytes are re-credited so the
	// flow keeps transmitting replacements, modeling retransmission.
	Limit int64
	// OnComplete fires once when a finite transfer finishes.
	OnComplete func(now float64)
	// OnDeliver fires at the receiver for every arriving packet, at the
	// packet's arrival time — the hook applications (video, web) consume.
	OnDeliver func(now float64, bytes int)
	// RecordRTT enables retention of every RTT sample for percentile
	// analysis.
	RecordRTT bool
	// Burst is the number of packets released back-to-back per pacing
	// event, modeling segmentation offload and interrupt coalescing in
	// real sender stacks (Linux pacing emits multi-packet trains). The
	// pacing gap after a burst covers the whole burst, so the average
	// rate is unchanged. Zero means DefaultBurst.
	Burst int
	// NoPacing disables rate pacing for window-based controllers: the
	// sender transmits whenever the window allows, at line rate — the
	// classic non-paced TCP behavior whose window-sized bursts are a
	// major source of transient queueing.
	NoPacing bool
	// Survival enables the outage machinery — exponential RTO backoff
	// and the stall watchdog with keep-alive probing — mirroring the
	// wire datapath's always-on behavior. It is opt-in here so
	// fault-free experiments replay bit-identically to earlier
	// versions; chaos scenarios and the adversary harness switch it on.
	Survival bool

	rtt      RTTEstimator
	unacked  []*SentPacket // ordered by Seq; pruned from the front
	seq      int64
	inflight int
	launched int64 // bytes released minus re-credited losses
	acked    int64
	lostB    int64
	recvd    int64
	maxAcked int64

	tr         trace.Tracer
	nextSend   float64
	timerSet   bool
	blocked    bool
	paused     bool
	done       bool
	started    bool
	rtoTimer   Timer
	rttSamples []float64
	startTime  float64

	// Survival machinery (exponential RTO backoff + stall watchdog).
	rtoBackoff   int
	lastAckAt    float64
	lastGoodRate float64 // pacing rate at the last ack, bytes/sec
	outage       bool
	outageAt     float64
	resumeRate   float64
	probeTimer   Timer
	wdTrips      int64
	wdRecoveries int64
}

// clk returns the sender's clock, defaulting to the path's simulator.
func (s *Sender) clk() Clock {
	if s.Clock == nil {
		s.Clock = simClock{s.Path.Link.Sim}
	}
	return s.Clock
}

// NewSender wires a flow onto a path with the given controller.
func NewSender(id int, path *netem.Path, cc Controller) *Sender {
	return &Sender{ID: id, Path: path, CC: cc, maxAcked: -1}
}

// Start begins transmission at the current simulation time.
func (s *Sender) Start() {
	if s.started {
		return
	}
	s.started = true
	s.startTime = s.clk().Now()
	s.lastAckAt = s.startTime
	s.tr = s.Path.Link.Sim.FlowTracer(s.ID)
	if ta, ok := s.CC.(TraceAware); ok {
		ta.SetTracer(s.tr)
	}
	s.armRTO()
	s.trySend()
}

// Stop halts the flow permanently.
func (s *Sender) Stop() {
	s.done = true
	if s.rtoTimer != nil {
		s.rtoTimer.Stop()
	}
	if s.probeTimer != nil {
		s.probeTimer.Stop()
		s.probeTimer = nil
	}
}

// Pause suspends transmission (application-limited). In-flight packets
// still drain and ack. Pausing a completed finite transfer is valid and
// keeps a subsequent Extend from transmitting until Resume.
func (s *Sender) Pause() {
	if s.paused {
		return
	}
	s.paused = true
	if pa, ok := s.CC.(PauseAware); ok {
		pa.OnAppPause(s.clk().Now())
	}
}

// Resume restarts a paused flow.
func (s *Sender) Resume() {
	if !s.paused {
		return
	}
	s.paused = false
	if pa, ok := s.CC.(PauseAware); ok {
		pa.OnAppResume(s.clk().Now())
	}
	now := s.clk().Now()
	if s.nextSend < now {
		s.nextSend = now
	}
	s.trySend()
}

// Extend adds more bytes to a finite transfer (e.g. the next video
// chunk) and resumes if needed. A completed flow is revived.
func (s *Sender) Extend(bytes int64) {
	s.Limit += bytes
	if s.done && s.started {
		s.done = false
		s.armRTO()
	}
	now := s.clk().Now()
	if s.nextSend < now {
		s.nextSend = now
	}
	if s.started {
		s.trySend()
	}
}

// AckedBytes returns cumulative acknowledged bytes.
func (s *Sender) AckedBytes() int64 { return s.acked }

// ReceivedBytes returns cumulative bytes that arrived at the receiver.
func (s *Sender) ReceivedBytes() int64 { return s.recvd }

// LostBytes returns cumulative bytes declared lost.
func (s *Sender) LostBytes() int64 { return s.lostB }

// InflightBytes returns bytes currently in flight.
func (s *Sender) InflightBytes() int { return s.inflight }

// RTTSamples returns the retained RTT samples (RecordRTT must be set).
func (s *Sender) RTTSamples() []float64 { return s.rttSamples }

// SRTT exposes the smoothed RTT for diagnostics.
func (s *Sender) SRTT() float64 { return s.rtt.SRTT() }

// MinRTT exposes the observed minimum RTT.
func (s *Sender) MinRTT() float64 { return s.rtt.MinRTT() }

// Done reports whether a finite transfer has completed.
func (s *Sender) Done() bool { return s.done }

// WatchdogTrips returns how many times the stall watchdog declared an
// outage.
func (s *Sender) WatchdogTrips() int64 { return s.wdTrips }

// WatchdogRecoveries returns how many declared outages ended with a
// recovery ack.
func (s *Sender) WatchdogRecoveries() int64 { return s.wdRecoveries }

// InOutage reports whether the stall watchdog currently has the flow
// in outage mode.
func (s *Sender) InOutage() bool { return s.outage }

// OutstandingPackets returns the number of sender-side packet records
// currently retained — the state that must stay bounded during an
// outage.
func (s *Sender) OutstandingPackets() int { return len(s.unacked) }

func (s *Sender) pacingRate() float64 {
	if r := s.CC.PacingRate(); r > 0 {
		return r
	}
	if s.NoPacing {
		return math.Inf(1)
	}
	// Default pacing for window-based controllers: 1.25·cwnd/srtt once an
	// RTT estimate exists; before that, release the initial window as a
	// burst (ack clocking takes over within one RTT).
	if !s.rtt.Valid() {
		return math.Inf(1)
	}
	cwnd := s.CC.CWnd()
	if math.IsInf(cwnd, 1) {
		return math.Inf(1)
	}
	return 1.25 * cwnd / s.rtt.SRTT()
}

func (s *Sender) sendAllowed() bool {
	if s.done || s.paused || !s.started || s.outage {
		return false
	}
	if s.Limit > 0 && s.launched >= s.Limit {
		return false
	}
	return true
}

func (s *Sender) trySend() {
	if s.timerSet || !s.sendAllowed() {
		return
	}
	if float64(s.inflight+netem.MTU) > s.CC.CWnd() {
		s.blocked = true
		return
	}
	clk := s.clk()
	now := clk.Now()
	at := s.nextSend
	if at < now {
		at = now
	}
	s.timerSet = true
	clk.At(at, s.emit)
}

func (s *Sender) emit() {
	s.timerSet = false
	if !s.sendAllowed() {
		return
	}
	now := s.clk().Now()
	burst := s.Burst
	if burst <= 0 {
		burst = DefaultBurst
	}
	if burst > 1 {
		// Randomize the train length (mean ≈ burst) so aggregate arrivals
		// at the bottleneck are stochastic. This is what gives a nearly
		// saturated queue its realistic variance (the M/D/1 blow-up as
		// utilization approaches 1) — the early competition signal §4.2
		// builds on. A fixed train length would produce an artificially
		// periodic, low-variance pattern. Randomness stays with the
		// simulation's seeded source even when the clock is injected.
		burst = 1 + s.Path.Link.Sim.Rand().Intn(2*burst-1)
	}
	sent := 0
	for i := 0; i < burst; i++ {
		if !s.sendAllowed() {
			break
		}
		if float64(s.inflight+netem.MTU) > s.CC.CWnd() {
			s.blocked = true
			break
		}
		size := netem.MTU
		if s.Limit > 0 {
			if rem := s.Limit - s.launched; rem < int64(size) {
				size = int(rem)
			}
		}
		pkt := &SentPacket{Seq: s.seq, Size: size, SentAt: now}
		s.seq++
		s.CC.OnSend(now, pkt)
		s.unacked = append(s.unacked, pkt)
		s.inflight += size
		s.launched += int64(size)
		sent += size

		wire := &netem.Packet{FlowID: s.ID, Seq: pkt.Seq, Size: size, SentAt: now, MI: pkt.MI}
		if !s.Path.Send(wire, s.deliver) {
			// Tail drop at the queue: the packet is gone; the sender
			// will discover this through dup-ACKs or RTO like any other
			// loss.
			_ = wire
		}
	}
	if sent == 0 {
		return
	}
	if s.rtoTimer == nil {
		s.armRTO()
	}
	rate := s.pacingRate()
	if math.IsInf(rate, 1) {
		s.nextSend = now
	} else {
		s.nextSend = now + float64(sent)/rate
	}
	s.trySend()
}

// deliver runs at the receiver when a data packet arrives.
func (s *Sender) deliver(p *netem.Packet, arrival float64) {
	s.recvd += int64(p.Size)
	if s.OnDeliver != nil {
		s.OnDeliver(arrival, p.Size)
	}
	if s.Path.DropAck() {
		return
	}
	// A receiver clock jump shifts the arrival stamps the sender's
	// controller sees (OWD, ack-interval clocking) without touching
	// sender-side RTT measurement — exactly the wire behavior.
	recvStamp := arrival + s.Path.StampOffset
	ackAt := s.Path.AckArrival(arrival)
	ep := s.Path.Epoch()
	s.clk().At(ackAt, func() {
		if ep != s.Path.Epoch() {
			s.Path.NoteAckFlushed()
			return
		}
		s.handleAck(p, recvStamp)
	})
}

func (s *Sender) handleAck(p *netem.Packet, recvAt float64) {
	if s.done && s.Limit > 0 {
		return
	}
	now := s.clk().Now()
	// Any delivered ack proves the path is alive: reset the RTO
	// backoff and, if the watchdog had declared an outage, recover.
	s.noteAck(now)
	idx := s.findUnacked(p.Seq)
	if idx < 0 {
		return // already declared lost, or stale after completion
	}
	sp := s.unacked[idx]
	if sp.acked || sp.lost {
		return
	}
	sp.acked = true
	s.inflight -= sp.Size
	if p.Seq > s.maxAcked {
		s.maxAcked = p.Seq
	}
	rtt := now - sp.SentAt
	s.rtt.Update(rtt)
	if sp.probe {
		// Keep-alive probes update liveness and the RTT estimate but
		// are invisible to the controller and to transfer accounting.
		s.prune()
		s.armRTO()
		return
	}
	s.acked += int64(sp.Size)
	s.tr.RTTSample(now, p.Seq, rtt, s.rtt.srtt, s.acked, s.inflight)
	if s.RecordRTT {
		s.rttSamples = append(s.rttSamples, rtt)
	}
	ack := Ack{
		Seq: p.Seq, Bytes: sp.Size, SentAt: sp.SentAt, RecvAt: recvAt,
		Now: now, RTT: rtt, OWD: recvAt - sp.SentAt, MI: sp.MI,
		Inflight: s.inflight,
	}
	s.CC.OnAck(ack)
	if r := s.CC.PacingRate(); r > 0 {
		s.lastGoodRate = r
	}
	s.detectDupAckLosses(now)
	s.prune()
	s.armRTO()
	if s.Limit > 0 && s.acked >= s.Limit && !s.done {
		s.done = true
		if s.rtoTimer != nil {
			s.rtoTimer.Stop()
		}
		if s.OnComplete != nil {
			s.OnComplete(now)
		}
		return
	}
	if s.blocked || !s.timerSet {
		s.blocked = false
		if s.nextSend < now {
			s.nextSend = now
		}
		s.trySend()
	}
}

// detectDupAckLosses declares packets lost that are dupAckThreshold
// sequence numbers behind the highest ack — the fast-retransmit analog
// for per-packet ACKs — but only once they are also older than an
// RTT-plus-reordering-window, in the style of RACK (RFC 8985). Pure
// sequence counting misfires badly on jittery paths, where packets of
// one burst routinely reorder by more than the threshold.
func (s *Sender) detectDupAckLosses(now float64) {
	window := s.rtt.SRTT() + s.reorderWindow()
	for _, sp := range s.unacked {
		if sp.Seq > s.maxAcked-dupAckThreshold {
			break
		}
		if !sp.acked && !sp.lost && now-sp.SentAt > window {
			s.markLost(sp, now)
		}
	}
}

// reorderWindow returns the extra delay tolerated for out-of-order
// delivery before a sequence gap is treated as loss.
func (s *Sender) reorderWindow() float64 {
	w := 4 * s.rtt.rttvar
	if w < 0.004 {
		w = 0.004
	}
	return w
}

func (s *Sender) markLost(sp *SentPacket, now float64) {
	sp.lost = true
	s.inflight -= sp.Size
	if sp.probe {
		// Probes lost into an outage are expected; they never reach
		// the controller or the transfer's byte accounting.
		return
	}
	s.lostB += int64(sp.Size)
	s.tr.PacketDrop(now, sp.Seq, sp.Size, s.Path.Link.QueueBytes(), "declared")
	if s.Limit > 0 {
		// Re-credit the bytes so replacements are transmitted.
		s.launched -= int64(sp.Size)
	}
	s.CC.OnLoss(Loss{
		Seq: sp.Seq, Bytes: sp.Size, SentAt: sp.SentAt, Now: now,
		MI: sp.MI, Inflight: s.inflight,
	})
}

func (s *Sender) findUnacked(seq int64) int {
	// unacked is sorted by Seq; binary search.
	lo, hi := 0, len(s.unacked)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.unacked[mid].Seq < seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s.unacked) && s.unacked[lo].Seq == seq {
		return lo
	}
	return -1
}

func (s *Sender) prune() {
	i := 0
	for i < len(s.unacked) && (s.unacked[i].acked || s.unacked[i].lost) {
		i++
	}
	if i > 0 {
		s.unacked = s.unacked[i:]
	}
}

func (s *Sender) armRTO() {
	if s.rtoTimer != nil {
		s.rtoTimer.Stop()
		s.rtoTimer = nil
	}
	if s.done {
		return
	}
	oldest := s.oldestOutstanding()
	if oldest == nil {
		return
	}
	clk := s.clk()
	deadline := oldest.SentAt + s.effRTO()
	if deadline < clk.Now() {
		deadline = clk.Now()
	}
	s.rtoTimer = clk.At(deadline, s.onRTO)
}

// effRTO is the retransmission timeout with exponential backoff: the
// base RFC 6298 value doubled per consecutive loss-declaring expiry,
// capped at maxRTO. The backoff resets on any ack.
func (s *Sender) effRTO() float64 {
	rto := s.rtt.RTO() * float64(int64(1)<<uint(s.rtoBackoff))
	if rto > maxRTO {
		if base := s.rtt.RTO(); base > maxRTO {
			return base
		}
		return maxRTO
	}
	return rto
}

// watchdogTimeout is the ack silence (with data outstanding) that
// declares an outage.
func (s *Sender) watchdogTimeout() float64 {
	wd := 2 * s.rtt.RTO()
	if wd < watchdogFloor {
		wd = watchdogFloor
	}
	return wd
}

// noteAck records proof of path liveness from a delivered ack.
func (s *Sender) noteAck(now float64) {
	s.lastAckAt = now
	s.rtoBackoff = 0
	if s.outage {
		s.recoverFromOutage(now)
	}
}

// tripWatchdog declares an outage: freeze the controller (so its
// gradient machinery does not rate-collapse on a flood of timeout
// losses), remember the pre-outage operating rate, and switch to cheap
// keep-alive probing until the path heals.
func (s *Sender) tripWatchdog(now float64) {
	s.outage = true
	s.outageAt = now
	s.wdTrips++
	s.resumeRate = s.lastGoodRate
	s.tr.Fault(now, "watchdog-trip", 1, now-s.lastAckAt)
	switch cc := s.CC.(type) {
	case OutageAware:
		cc.OnOutage(now)
	case PauseAware:
		cc.OnAppPause(now)
	}
	s.scheduleProbe(now + probeInterval)
}

// recoverFromOutage ends a declared outage at the first delivered ack:
// restore the controller at the pre-outage rate and resume sending.
func (s *Sender) recoverFromOutage(now float64) {
	s.outage = false
	s.wdRecoveries++
	if s.probeTimer != nil {
		s.probeTimer.Stop()
		s.probeTimer = nil
	}
	rate := s.resumeRate
	if rate <= 0 {
		rate = s.CC.PacingRate()
	}
	s.tr.Fault(now, "watchdog-recover", 0, now-s.outageAt)
	switch cc := s.CC.(type) {
	case OutageAware:
		cc.OnRecovery(now, rate)
	case PauseAware:
		cc.OnAppResume(now)
	}
	s.blocked = false
	if s.nextSend < now {
		s.nextSend = now
	}
	s.trySend()
}

func (s *Sender) scheduleProbe(at float64) {
	s.probeTimer = s.clk().At(at, s.sendProbe)
}

// sendProbe emits one keep-alive packet during an outage, bypassing
// the (frozen) controller entirely, and reschedules itself. The first
// probe the healed path delivers produces the recovery ack.
func (s *Sender) sendProbe() {
	s.probeTimer = nil
	if s.done || !s.outage {
		return
	}
	now := s.clk().Now()
	pkt := &SentPacket{Seq: s.seq, Size: netem.MTU, SentAt: now, probe: true}
	s.seq++
	s.unacked = append(s.unacked, pkt)
	s.inflight += pkt.Size
	wire := &netem.Packet{FlowID: s.ID, Seq: pkt.Seq, Size: pkt.Size, SentAt: now}
	s.Path.Send(wire, s.deliver)
	if s.rtoTimer == nil {
		s.armRTO()
	}
	s.scheduleProbe(now + probeInterval)
}

func (s *Sender) oldestOutstanding() *SentPacket {
	for _, sp := range s.unacked {
		if !sp.acked && !sp.lost {
			return sp
		}
	}
	return nil
}

func (s *Sender) onRTO() {
	s.rtoTimer = nil
	if s.done {
		return
	}
	now := s.clk().Now()
	// Stall watchdog: prolonged ack silence with data outstanding is
	// an outage, not a loss rate — handle it before declaring more
	// losses. Paused flows are excluded (silence is self-inflicted).
	if s.Survival && !s.outage && !s.paused && s.oldestOutstanding() != nil &&
		now-s.lastAckAt >= s.watchdogTimeout() {
		s.tripWatchdog(now)
	}
	rto := s.effRTO()
	declared := false
	for _, sp := range s.unacked {
		if !sp.acked && !sp.lost && now-sp.SentAt >= rto-1e-12 {
			s.markLost(sp, now)
			declared = true
		}
	}
	// Back off only when the expiry happened in true ack silence (no
	// ack for a full RTO). Straggler declarations while acks still flow
	// are ordinary congestion — backing off there would delay the loss
	// signal the controllers depend on.
	if s.Survival && declared && now-s.lastAckAt >= rto && s.rtoBackoff < maxRTOBackoff {
		s.rtoBackoff++
	}
	s.prune()
	s.armRTO()
	if s.blocked || !s.timerSet {
		s.blocked = false
		if s.nextSend < now {
			s.nextSend = now
		}
		s.trySend()
	}
}
