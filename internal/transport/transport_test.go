package transport

import (
	"math"
	"testing"
	"testing/quick"

	"pccproteus/internal/netem"
	"pccproteus/internal/sim"
)

// rateCC is a minimal rate-based controller for exercising the sender.
type rateCC struct {
	rate   float64
	acks   []Ack
	losses []Loss
	sent   int
}

func (c *rateCC) Name() string                    { return "test-rate" }
func (c *rateCC) OnSend(_ float64, p *SentPacket) { c.sent++; p.MI = 42 }
func (c *rateCC) OnAck(a Ack)                     { c.acks = append(c.acks, a) }
func (c *rateCC) OnLoss(l Loss)                   { c.losses = append(c.losses, l) }
func (c *rateCC) PacingRate() float64             { return c.rate }
func (c *rateCC) CWnd() float64                   { return math.Inf(1) }

// windowCC is a minimal window-based controller (fixed cwnd, default pacing).
type windowCC struct {
	cwnd   float64
	acks   int
	losses int
	paused int
}

func (c *windowCC) Name() string                { return "test-window" }
func (c *windowCC) OnSend(float64, *SentPacket) {}
func (c *windowCC) OnAck(Ack)                   { c.acks++ }
func (c *windowCC) OnLoss(Loss)                 { c.losses++ }
func (c *windowCC) PacingRate() float64         { return 0 }
func (c *windowCC) CWnd() float64               { return c.cwnd }
func (c *windowCC) OnAppPause(float64)          { c.paused++ }
func (c *windowCC) OnAppResume(float64)         { c.paused-- }

func testPath(s *sim.Sim, mbps float64, bufBytes int, rttSec float64) *netem.Path {
	l := netem.NewLink(s, mbps, bufBytes, rttSec/2)
	return &netem.Path{Link: l, AckDelay: rttSec / 2}
}

func TestRateSenderThroughput(t *testing.T) {
	s := sim.New(1)
	p := testPath(s, 50, 1<<20, 0.030)
	cc := &rateCC{rate: 20e6 / 8} // 20 Mbps
	snd := NewSender(1, p, cc)
	snd.Start()
	s.Run(10)
	gotMbps := float64(snd.AckedBytes()) * 8 / 10 / 1e6
	if math.Abs(gotMbps-20) > 1 {
		t.Fatalf("throughput %.2f Mbps want ~20", gotMbps)
	}
	if len(cc.losses) != 0 {
		t.Fatalf("unexpected losses: %d", len(cc.losses))
	}
}

func TestAckCarriesRTTAndMI(t *testing.T) {
	s := sim.New(1)
	p := testPath(s, 50, 1<<20, 0.030)
	cc := &rateCC{rate: 10e6 / 8}
	snd := NewSender(1, p, cc)
	snd.Start()
	s.Run(1)
	if len(cc.acks) == 0 {
		t.Fatal("no acks")
	}
	a := cc.acks[0]
	base := p.BaseRTT()
	if a.RTT < base-1e-9 || a.RTT > base+0.002 {
		t.Fatalf("rtt %v want ≈ base %v", a.RTT, base)
	}
	if a.MI != 42 {
		t.Fatalf("MI tag lost: %d", a.MI)
	}
	if a.OWD <= 0 || a.OWD >= a.RTT {
		t.Fatalf("owd %v out of range (rtt %v)", a.OWD, a.RTT)
	}
	if a.Bytes != netem.MTU {
		t.Fatalf("ack bytes %d", a.Bytes)
	}
}

func TestOverdrivenLinkCausesLossAndInflation(t *testing.T) {
	s := sim.New(1)
	p := testPath(s, 10, 20*netem.MTU, 0.030)
	cc := &rateCC{rate: 20e6 / 8} // 2x capacity
	snd := NewSender(1, p, cc)
	snd.RecordRTT = true
	snd.Start()
	s.Run(10)
	if len(cc.losses) == 0 {
		t.Fatal("overdriven link must drop")
	}
	// Delivered should be capped at link capacity.
	gotMbps := float64(snd.AckedBytes()) * 8 / 10 / 1e6
	if gotMbps > 10.5 {
		t.Fatalf("throughput %v exceeds capacity", gotMbps)
	}
	// RTT must show queue inflation near full buffer.
	maxRTT := 0.0
	for _, r := range snd.RTTSamples() {
		if r > maxRTT {
			maxRTT = r
		}
	}
	queueDelay := float64(20*netem.MTU) / p.Link.Rate
	if maxRTT < p.BaseRTT()+queueDelay*0.8 {
		t.Fatalf("max rtt %v shows no inflation (base %v, qd %v)", maxRTT, p.BaseRTT(), queueDelay)
	}
}

func TestWindowSenderIsAckClocked(t *testing.T) {
	s := sim.New(1)
	p := testPath(s, 50, 1<<20, 0.030)
	cc := &windowCC{cwnd: 20 * netem.MTU}
	snd := NewSender(1, p, cc)
	snd.Start()
	s.Run(5)
	// Steady state: cwnd/RTT throughput ≈ 20·1500·8/0.030 = 8 Mbps.
	gotMbps := float64(snd.AckedBytes()) * 8 / 5 / 1e6
	if math.Abs(gotMbps-8) > 1.2 {
		t.Fatalf("window throughput %.2f want ~8", gotMbps)
	}
	if snd.InflightBytes() > 20*netem.MTU {
		t.Fatalf("inflight %d exceeds cwnd", snd.InflightBytes())
	}
}

func TestFiniteTransferCompletes(t *testing.T) {
	s := sim.New(1)
	p := testPath(s, 50, 1<<20, 0.030)
	cc := &rateCC{rate: 50e6 / 8}
	snd := NewSender(1, p, cc)
	snd.Limit = 100 * 1000
	var doneAt float64
	snd.OnComplete = func(now float64) { doneAt = now }
	snd.Start()
	s.Run(10)
	if !snd.Done() {
		t.Fatal("transfer did not complete")
	}
	if snd.AckedBytes() != 100*1000 {
		t.Fatalf("acked %d want 100000", snd.AckedBytes())
	}
	// 100 KB at 50 Mbps ≈ 16 ms + RTT.
	if doneAt <= 0.030 || doneAt > 0.2 {
		t.Fatalf("completion time %v implausible", doneAt)
	}
}

func TestFiniteTransferRetransmitsUnderLoss(t *testing.T) {
	s := sim.New(5)
	p := testPath(s, 50, 1<<20, 0.030)
	p.Link.LossProb = 0.05
	cc := &rateCC{rate: 40e6 / 8}
	snd := NewSender(1, p, cc)
	snd.Limit = 500 * 1000
	snd.Start()
	s.Run(60)
	if !snd.Done() {
		t.Fatalf("lossy transfer did not complete (acked %d lost %d)", snd.AckedBytes(), snd.LostBytes())
	}
	if snd.LostBytes() == 0 {
		t.Fatal("expected some losses at 5%")
	}
	if snd.AckedBytes() != 500*1000 {
		t.Fatalf("acked %d want exactly limit", snd.AckedBytes())
	}
}

func TestDupAckLossDetection(t *testing.T) {
	s := sim.New(9)
	p := testPath(s, 10, 5*netem.MTU, 0.030) // tiny buffer forces tail drops
	cc := &rateCC{rate: 30e6 / 8}
	snd := NewSender(1, p, cc)
	snd.Start()
	s.Run(3)
	if len(cc.losses) == 0 {
		t.Fatal("no losses detected")
	}
	// Losses must be detected within a few RTTs, not only via RTO.
	first := cc.losses[0]
	if first.Now-first.SentAt > 1.0 {
		t.Fatalf("loss detection too slow: %v", first.Now-first.SentAt)
	}
}

func TestRTOFiresWhenAllAcksLost(t *testing.T) {
	s := sim.New(2)
	p := testPath(s, 10, 1<<20, 0.030)
	p.Link.LossProb = 1.0 // everything vanishes
	cc := &rateCC{rate: 1e6 / 8}
	snd := NewSender(1, p, cc)
	snd.Start()
	s.Run(5)
	if len(cc.losses) == 0 {
		t.Fatal("RTO never declared losses on black-hole path")
	}
	if snd.InflightBytes() < 0 {
		t.Fatalf("negative inflight %d", snd.InflightBytes())
	}
}

func TestPauseResume(t *testing.T) {
	s := sim.New(1)
	p := testPath(s, 50, 1<<20, 0.030)
	cc := &windowCC{cwnd: 1 << 20}
	snd := NewSender(1, p, cc)
	snd.Start()
	s.Run(1)
	ackedAtPause := int64(0)
	s.At(1.0, func() { snd.Pause() })
	s.Run(1.2)
	ackedAtPause = snd.AckedBytes()
	s.Run(3.0) // stay paused (allow inflight to drain)
	drained := snd.AckedBytes()
	if drained-ackedAtPause > 1<<20 {
		t.Fatalf("flow kept sending while paused: %d extra", drained-ackedAtPause)
	}
	snd.Resume()
	s.Run(4.0)
	if snd.AckedBytes() <= drained {
		t.Fatal("flow did not resume")
	}
	if cc.paused != 0 {
		t.Fatalf("pause/resume callbacks unbalanced: %d", cc.paused)
	}
}

func TestExtendRevivesCompletedFlow(t *testing.T) {
	s := sim.New(1)
	p := testPath(s, 50, 1<<20, 0.030)
	cc := &rateCC{rate: 50e6 / 8}
	snd := NewSender(1, p, cc)
	snd.Limit = 50 * 1000
	completions := 0
	snd.OnComplete = func(float64) { completions++ }
	snd.Start()
	s.Run(2)
	if completions != 1 {
		t.Fatalf("completions=%d", completions)
	}
	snd.Extend(50 * 1000)
	s.Run(4)
	if completions != 2 {
		t.Fatalf("completions after extend=%d", completions)
	}
	if snd.AckedBytes() != 100*1000 {
		t.Fatalf("acked %d", snd.AckedBytes())
	}
}

func TestRTTEstimator(t *testing.T) {
	var e RTTEstimator
	if e.Valid() || e.RTO() != 1.0 {
		t.Fatal("fresh estimator state")
	}
	e.Update(0.1)
	if e.SRTT() != 0.1 || e.MinRTT() != 0.1 {
		t.Fatal("first sample")
	}
	e.Update(0.05)
	if e.MinRTT() != 0.05 {
		t.Fatal("min tracking")
	}
	for i := 0; i < 100; i++ {
		e.Update(0.2)
	}
	if math.Abs(e.SRTT()-0.2) > 1e-3 {
		t.Fatalf("srtt convergence: %v", e.SRTT())
	}
	if e.RTO() < 0.2 {
		t.Fatalf("rto floor: %v", e.RTO())
	}
}

func TestReceiverDeliveryHook(t *testing.T) {
	s := sim.New(1)
	p := testPath(s, 50, 1<<20, 0.030)
	cc := &rateCC{rate: 10e6 / 8}
	snd := NewSender(1, p, cc)
	var delivered int64
	snd.OnDeliver = func(_ float64, b int) { delivered += int64(b) }
	snd.Start()
	s.Run(2)
	if delivered != snd.ReceivedBytes() {
		t.Fatalf("hook total %d vs counter %d", delivered, snd.ReceivedBytes())
	}
	if delivered == 0 {
		t.Fatal("nothing delivered")
	}
}

// Property: byte conservation under arbitrary loss and buffer settings —
// acked + lost + inflight == launched bytes, and inflight is never
// negative.
func TestQuickByteConservation(t *testing.T) {
	f := func(seed int64, lossPct, bufPkts uint8, rateMbps uint8) bool {
		s := sim.New(seed)
		buf := (int(bufPkts)%64 + 2) * netem.MTU
		p := testPath(s, 20, buf, 0.020)
		p.Link.LossProb = float64(lossPct%30) / 100
		rate := float64(rateMbps%40+1) * 1e6 / 8
		cc := &rateCC{rate: rate}
		snd := NewSender(1, p, cc)
		snd.Start()
		s.Run(5)
		snd.Stop()
		if snd.InflightBytes() < 0 {
			return false
		}
		total := snd.AckedBytes() + snd.LostBytes() + int64(snd.InflightBytes())
		// launched isn't exported; reconstruct: every OnSend call is MTU.
		launched := int64(cc.sent) * int64(netem.MTU)
		return total == launched
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: a finite lossy transfer always completes with exactly Limit
// bytes acked.
func TestQuickFiniteCompletion(t *testing.T) {
	f := func(seed int64, lossPct uint8, kb uint8) bool {
		s := sim.New(seed)
		p := testPath(s, 20, 1<<20, 0.020)
		p.Link.LossProb = float64(lossPct%20) / 100
		cc := &rateCC{rate: 10e6 / 8}
		snd := NewSender(1, p, cc)
		snd.Limit = int64(kb%100+1) * 1000
		snd.Start()
		s.Run(300)
		return snd.Done() && snd.AckedBytes() == snd.Limit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestExtendWhilePausedDoesNotSend(t *testing.T) {
	s := sim.New(1)
	p := testPath(s, 50, 1<<20, 0.030)
	cc := &rateCC{rate: 10e6 / 8}
	snd := NewSender(1, p, cc)
	snd.Limit = 30000
	snd.Start()
	s.Run(1)
	snd.Pause()
	acked := snd.AckedBytes()
	snd.Extend(300000)
	s.Run(3)
	if snd.AckedBytes()-acked > 1<<16 {
		t.Fatalf("paused flow sent %d bytes after Extend", snd.AckedBytes()-acked)
	}
	snd.Resume()
	s.Run(6)
	if !snd.Done() {
		t.Fatal("flow should complete after resume")
	}
}

func TestStopSilencesFlow(t *testing.T) {
	s := sim.New(2)
	p := testPath(s, 50, 1<<20, 0.030)
	cc := &rateCC{rate: 20e6 / 8}
	snd := NewSender(1, p, cc)
	snd.Start()
	s.Run(1)
	snd.Stop()
	acked := snd.AckedBytes()
	s.Run(3)
	// Only in-flight packets may still ack after Stop.
	if extra := snd.AckedBytes() - acked; extra > 1<<17 {
		t.Fatalf("stopped flow delivered %d extra bytes", extra)
	}
}

func TestAckJitterOnReturnPath(t *testing.T) {
	s := sim.New(3)
	p := testPath(s, 50, 1<<20, 0.030)
	p.AckJitter = netem.LognormalNoise{Median: 0.002, Sigma: 0.5}
	cc := &rateCC{rate: 10e6 / 8}
	snd := NewSender(1, p, cc)
	snd.RecordRTT = true
	snd.Start()
	s.Run(5)
	// RTTs must reflect return-path jitter: strictly above base for most
	// samples, with visible spread.
	base := p.BaseRTT()
	above := 0
	for _, r := range snd.RTTSamples() {
		if r > base+0.0005 {
			above++
		}
	}
	if above < len(snd.RTTSamples())/2 {
		t.Fatalf("ack jitter not reflected: %d/%d above base", above, len(snd.RTTSamples()))
	}
}

func TestNoPacingBurstsWindow(t *testing.T) {
	s := sim.New(4)
	p := testPath(s, 50, 1<<20, 0.030)
	cc := &windowCC{cwnd: 30 * netem.MTU}
	snd := NewSender(1, p, cc)
	snd.NoPacing = true
	snd.Start()
	s.Run(0.001)
	// Unpaced: the whole initial window leaves in the first instant.
	if snd.InflightBytes() < 30*netem.MTU-netem.MTU {
		t.Fatalf("unpaced sender should burst the window: inflight %d", snd.InflightBytes())
	}
}
