package bbr

import (
	"fmt"
	"os"
	"testing"

	"pccproteus/internal/sim"
	"pccproteus/internal/transport"
)

var debugMax float64

func TestDiagBBRLoss(t *testing.T) {
	if os.Getenv("PROTEUS_DIAG") == "" {
		t.Skip("diag")
	}
	s := sim.New(5)
	p := path(s, 50, 375000, 0.030)
	p.Link.LossProb = 0.05
	cc := New()
	cc.debugSample = func(rate float64) {
		if rate > debugMax {
			debugMax = rate
		}
	}
	snd := transport.NewSender(1, p, cc)
	snd.Start()
	last := int64(0)
	for ts := 1.0; ts <= 30; ts += 1 {
		ts := ts
		s.At(ts, func() {
			d := float64(snd.AckedBytes()-last) * 8 / 1e6
			last = snd.AckedBytes()
			fmt.Printf("t=%4.1f tput=%5.1f mode=%-9s btlbw=%5.1f maxSample=%5.1f gain=%.2f round=%d\n",
				ts, d, cc.Mode(), cc.BtlBw()*8/1e6, debugMax*8/1e6, cc.pacingGain, cc.round)
			debugMax = 0
		})
	}
	s.Run(30)
}

func TestDiagBBRSvar(t *testing.T) {
	if os.Getenv("PROTEUS_DIAG") == "" {
		t.Skip("diag")
	}
	s := sim.New(6)
	p := path(s, 50, 375000, 0.030)
	ccP := New()
	ccS := NewScavenger()
	primary := transport.NewSender(1, p, ccP)
	scav := transport.NewSender(2, p, ccS)
	primary.Start()
	s.At(10, func() { scav.Start() })
	var mp, ms int64
	for ts := 12.0; ts <= 60; ts += 4 {
		ts := ts
		s.At(ts, func() {
			dp := float64(primary.AckedBytes()-mp) * 8 / 4 / 1e6
			ds := float64(scav.AckedBytes()-ms) * 8 / 4 / 1e6
			mp, ms = primary.AckedBytes(), scav.AckedBytes()
			fmt.Printf("t=%4.1f P=%5.1f S=%5.1f rttvarS=%.4f modeS=%s q=%.0fKB\n",
				ts, dp, ds, ccS.rttvar, ccS.Mode(), float64(p.Link.QueueBytes())/1000)
		})
	}
	s.Run(60)
}
