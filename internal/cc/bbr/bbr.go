// Package bbr implements BBR v1 (Cardwell et al., 2016): a model-based
// controller that estimates the bottleneck bandwidth (windowed max of
// delivery-rate samples) and the round-trip propagation delay (windowed
// min), and paces at gain-cycled multiples of the bandwidth estimate
// through the Startup / Drain / ProbeBW / ProbeRTT state machine.
//
// The package also provides BBR-S, the paper's §7.1 demonstration that
// the RTT-deviation idea generalizes: a BBR sender that forces itself
// into ProbeRTT (its minimal-inflight state) for at least MinYield
// whenever the smoothed RTT deviation exceeds a threshold, thereby
// behaving as a scavenger.
package bbr

import (
	"math"

	"pccproteus/internal/netem"
	"pccproteus/internal/stats"
	"pccproteus/internal/trace"
	"pccproteus/internal/transport"
)

const (
	mss = float64(netem.MTU)

	startupGain  = 2.885 // 2/ln2
	drainGain    = 1 / 2.885
	cwndGain     = 2.0
	probeRTTCwnd = 4 * mss

	btlbwWindowRounds = 10   // bandwidth filter, in round trips
	rtpropWindow      = 10.0 // seconds
	probeRTTInterval  = 10.0 // seconds
	probeRTTDuration  = 0.2  // seconds
)

var gainCycle = [8]float64{1.25, 0.75, 1, 1, 1, 1, 1, 1}

type mode int

const (
	modeStartup mode = iota
	modeDrain
	modeProbeBW
	modeProbeRTT
)

func (m mode) String() string {
	switch m {
	case modeStartup:
		return "startup"
	case modeDrain:
		return "drain"
	case modeProbeBW:
		return "probe_bw"
	default:
		return "probe_rtt"
	}
}

type sendSnapshot struct {
	delivered   int64
	deliveredAt float64 // when that delivered count was reached
	sentAt      float64
}

// Controller is one BBR connection.
type Controller struct {
	// ScavengerDevThreshold, when positive, enables BBR-S (§7.1): when
	// the RTT swing (windowed max − min over the last ~1.5 s) exceeds
	// this many seconds, the sender is forced into ProbeRTT for at least
	// ScavengerMinYield seconds — and it stays yielded while swings keep
	// appearing, because any swing observed while holding a four-packet
	// window must be another flow's doing.
	ScavengerDevThreshold float64
	// ScavengerMinYield is the minimum forced-yield duration (40 ms in
	// the paper's demonstration).
	ScavengerMinYield float64

	mode       mode
	btlbw      stats.WindowedMax // bytes/sec, keyed by round count
	rtprop     stats.WindowedMin // seconds, keyed by time
	pacingGain float64

	delivered     int64
	deliveredAt   float64
	snapshots     map[int64]sendSnapshot
	round         int64
	nextRoundSeq  int64
	maxSeqSent    int64
	fullBW        float64
	fullBWRounds  int
	cycleIdx      int
	cycleStart    float64
	rtpropStamp   float64 // when rtprop was last reduced
	probeRTTUntil float64
	inflight      int

	debugSample func(rate float64)

	swingMax   stats.WindowedMax // raw RTT, scavenger competition signal
	swingMin   stats.WindowedMin
	forceYield bool
	graceUntil float64 // no re-trigger until then (post-yield settling)

	srtt         float64
	rttvar       float64 // smoothed RTT deviation, as the kernel computes it
	started      bool
	nowForRtprop float64 // latest ack time, for time-keyed filter expiry

	tr trace.Tracer
}

// SetTracer implements transport.TraceAware: mode transitions are
// emitted as ModeSwitch events (value = pacing gain), with the forced
// BBR-S yield distinguished as "probe_rtt_yield".
func (c *Controller) SetTracer(t trace.Tracer) { c.tr = t }

// New returns a standard BBR controller.
func New() *Controller {
	return &Controller{
		mode:       modeStartup,
		pacingGain: startupGain,
		btlbw:      stats.WindowedMax{Window: btlbwWindowRounds},
		rtprop:     stats.WindowedMin{Window: rtpropWindow},
		snapshots:  make(map[int64]sendSnapshot),
	}
}

// NewScavenger returns BBR-S. The paper's demonstration uses a 20 ms
// smoothed-deviation trigger on a kernel stack; this emulation's RTT
// variance at a contested bottleneck is a few times smaller (see
// DESIGN.md §5), so the trigger is scaled to 6 ms. The 40 ms minimum
// yield matches §7.1.
func NewScavenger() *Controller {
	c := New()
	c.ScavengerDevThreshold = 0.005
	c.ScavengerMinYield = 0.040
	c.swingMax = stats.WindowedMax{Window: 1.5}
	c.swingMin = stats.WindowedMin{Window: 1.5}
	return c
}

// Name implements transport.Controller.
func (c *Controller) Name() string {
	if c.ScavengerDevThreshold > 0 {
		return "bbr-s"
	}
	return "bbr"
}

// Mode returns the current state-machine mode (for tests/diagnostics).
func (c *Controller) Mode() string { return c.mode.String() }

// BtlBw returns the current bottleneck bandwidth estimate in bytes/sec.
func (c *Controller) BtlBw() float64 {
	bw, _ := c.btlbw.Get(float64(c.round))
	return bw
}

// RTProp returns the current propagation-delay estimate in seconds.
func (c *Controller) RTProp() float64 {
	rt, ok := c.rtprop.Get(c.nowForRtprop)
	if !ok {
		return 0.1
	}
	return rt
}

var _ transport.Controller = (*Controller)(nil)

// OnSend implements transport.Controller.
func (c *Controller) OnSend(now float64, pkt *transport.SentPacket) {
	if c.deliveredAt == 0 {
		c.deliveredAt = now
	}
	c.snapshots[pkt.Seq] = sendSnapshot{delivered: c.delivered, deliveredAt: c.deliveredAt, sentAt: now}
	if pkt.Seq > c.maxSeqSent {
		c.maxSeqSent = pkt.Seq
	}
	c.inflight += pkt.Size
	if !c.started {
		c.started = true
		c.cycleStart = now
		c.rtpropStamp = now
	}
}

// OnLoss implements transport.Controller. BBR v1 does not react to
// individual losses; only the in-flight accounting is maintained.
func (c *Controller) OnLoss(loss transport.Loss) {
	delete(c.snapshots, loss.Seq)
	c.inflight -= loss.Bytes
	if c.inflight < 0 {
		c.inflight = 0
	}
}

// OnAck implements transport.Controller.
func (c *Controller) OnAck(ack transport.Ack) {
	c.nowForRtprop = ack.Now
	c.inflight -= ack.Bytes
	if c.inflight < 0 {
		c.inflight = 0
	}
	c.delivered += int64(ack.Bytes)
	c.deliveredAt = ack.Now

	// Smoothed RTT and deviation (for BBR-S).
	if c.srtt == 0 {
		c.srtt = ack.RTT
		c.rttvar = ack.RTT / 2
	} else {
		d := math.Abs(c.srtt - ack.RTT)
		c.rttvar = 0.75*c.rttvar + 0.25*d
		c.srtt = 0.875*c.srtt + 0.125*ack.RTT
	}

	// Round accounting: a round trip completes when a packet sent at or
	// after the previous round's end-of-send is acknowledged.
	if ack.Seq >= c.nextRoundSeq {
		c.round++
		c.nextRoundSeq = c.maxSeqSent + 1
		c.onRound()
	}

	// Delivery-rate sample, per the BBR rate-sample algorithm: the
	// interval is the larger of the send interval and the ack (delivery)
	// interval, so queue growth between send and ack does not deflate
	// the sample and pipe-filling probes can ratchet the estimate up.
	if snap, ok := c.snapshots[ack.Seq]; ok {
		delete(c.snapshots, ack.Seq)
		sendElapsed := snap.sentAt - snap.deliveredAt
		ackElapsed := ack.Now - snap.deliveredAt
		elapsed := ackElapsed
		if sendElapsed > elapsed {
			elapsed = sendElapsed
		}
		if elapsed > 0 {
			rate := float64(c.delivered-snap.delivered) / elapsed
			if c.debugSample != nil {
				c.debugSample(rate)
			}
			c.btlbw.Add(float64(c.round), rate)
		}
	}

	// RTprop sample.
	if prev, ok := c.rtprop.Get(ack.Now); !ok || ack.RTT < prev {
		c.rtpropStamp = ack.Now
	}
	c.rtprop.Add(ack.Now, ack.RTT)

	if c.ScavengerDevThreshold > 0 {
		c.swingMax.Add(ack.Now, ack.RTT)
		c.swingMin.Add(ack.Now, ack.RTT)
	}

	c.step(ack.Now)
}

func (c *Controller) step(now float64) {
	// BBR-S: force ProbeRTT when the RTT swing signals competition, and
	// keep extending the yield while the swings persist.
	if c.ScavengerDevThreshold > 0 {
		hi, ok1 := c.swingMax.Get(now)
		lo, ok2 := c.swingMin.Get(now)
		swinging := ok1 && ok2 && hi-lo > c.ScavengerDevThreshold
		if swinging {
			if c.mode != modeProbeRTT && now >= c.graceUntil {
				c.forceYield = true
				c.enterProbeRTT(now, c.ScavengerMinYield)
			} else if c.mode == modeProbeRTT && c.forceYield && now+c.ScavengerMinYield > c.probeRTTUntil {
				c.probeRTTUntil = now + c.ScavengerMinYield
			}
		}
	}
	switch c.mode {
	case modeStartup:
		if c.fullBWRounds >= 3 {
			c.mode = modeDrain
			c.pacingGain = drainGain
			c.tr.ModeSwitch(now, "drain", c.pacingGain)
		}
	case modeDrain:
		if float64(c.inflight) <= c.bdp() {
			c.enterProbeBW(now)
		}
	case modeProbeBW:
		rt := c.RTProp()
		if now-c.cycleStart > rt {
			c.cycleIdx = (c.cycleIdx + 1) % len(gainCycle)
			c.cycleStart = now
			c.pacingGain = gainCycle[c.cycleIdx]
		}
		if now-c.rtpropStamp > probeRTTInterval {
			c.enterProbeRTT(now, probeRTTDuration)
		}
	case modeProbeRTT:
		if now >= c.probeRTTUntil {
			c.rtpropStamp = now
			if c.forceYield {
				// Grace period: the release itself refills the queue and
				// swings the RTT; do not read our own recovery (or a
				// fellow scavenger's) as fresh competition.
				c.graceUntil = now + 30*c.srtt
			}
			c.forceYield = false
			c.enterProbeBW(now)
		}
	}
}

func (c *Controller) onRound() {
	if c.mode != modeStartup {
		return
	}
	bw := c.BtlBw()
	if bw > c.fullBW*1.25 {
		c.fullBW = bw
		c.fullBWRounds = 0
	} else {
		c.fullBWRounds++
	}
}

func (c *Controller) enterProbeBW(now float64) {
	c.mode = modeProbeBW
	c.cycleIdx = 2 // skip the 1.25 phase right after drain
	c.cycleStart = now
	c.pacingGain = gainCycle[c.cycleIdx]
	c.tr.ModeSwitch(now, "probe_bw", c.pacingGain)
}

func (c *Controller) enterProbeRTT(now float64, dur float64) {
	c.mode = modeProbeRTT
	if dur < probeRTTDuration && c.ScavengerDevThreshold == 0 {
		dur = probeRTTDuration
	}
	c.probeRTTUntil = now + dur
	c.pacingGain = 1.0
	if c.forceYield {
		c.tr.ModeSwitch(now, "probe_rtt_yield", c.pacingGain)
	} else {
		c.tr.ModeSwitch(now, "probe_rtt", c.pacingGain)
	}
}

func (c *Controller) bdp() float64 {
	return c.BtlBw() * c.RTProp()
}

// PacingRate implements transport.Controller.
func (c *Controller) PacingRate() float64 {
	bw := c.BtlBw()
	if bw == 0 {
		// No estimate yet: start at ~10 packets per assumed 100 ms RTT.
		return 10 * mss / 0.1 * c.pacingGain
	}
	if c.mode == modeProbeRTT {
		return bw // pacing is irrelevant; cwnd clamps inflight
	}
	return c.pacingGain * bw
}

// CWnd implements transport.Controller.
func (c *Controller) CWnd() float64 {
	if c.mode == modeProbeRTT {
		return probeRTTCwnd
	}
	bdp := c.bdp()
	if bdp == 0 {
		return 10 * mss
	}
	gain := cwndGain
	if c.mode == modeStartup {
		gain = startupGain
	}
	w := gain * bdp
	if w < 4*mss {
		w = 4 * mss
	}
	return w
}
