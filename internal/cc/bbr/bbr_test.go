package bbr

import (
	"testing"

	"pccproteus/internal/netem"
	"pccproteus/internal/sim"
	"pccproteus/internal/stats"
	"pccproteus/internal/transport"
)

func path(s *sim.Sim, mbps float64, buf int, rtt float64) *netem.Path {
	l := netem.NewLink(s, mbps, buf, rtt/2)
	return &netem.Path{Link: l, AckDelay: rtt / 2}
}

func TestBBRSaturatesLink(t *testing.T) {
	s := sim.New(1)
	p := path(s, 50, 375000, 0.030)
	cc := New()
	snd := transport.NewSender(1, p, cc)
	snd.Start()
	var mark int64
	s.At(10, func() { mark = snd.AckedBytes() })
	s.Run(60)
	tput := float64(snd.AckedBytes()-mark) * 8 / 50 / 1e6
	if tput < 44 {
		t.Fatalf("BBR throughput %.1f want ≥44", tput)
	}
	// Bandwidth estimate should be close to link rate.
	if bw := cc.BtlBw() * 8 / 1e6; bw < 45 || bw > 60 {
		t.Fatalf("btlbw estimate %.1f Mbps", bw)
	}
	if rt := cc.RTProp(); rt < 0.029 || rt > 0.040 {
		t.Fatalf("rtprop estimate %.1f ms", rt*1000)
	}
}

func TestBBRBoundsQueueUnlikeCubic(t *testing.T) {
	s := sim.New(2)
	p := path(s, 50, 750000, 0.030) // 4 BDP: room to bloat
	snd := transport.NewSender(1, p, New())
	snd.RecordRTT = true
	snd.Start()
	s.Run(60)
	n := len(snd.RTTSamples())
	p95 := stats.Percentile(snd.RTTSamples()[n/4:], 95)
	// cwnd = 2·BDP bounds queue to ≈1 BDP = 30 ms above base.
	if p95 > 0.085 {
		t.Fatalf("95th RTT %.1f ms: BBR should not fill a 4-BDP buffer", p95*1000)
	}
}

func TestBBRExitsStartup(t *testing.T) {
	s := sim.New(3)
	p := path(s, 50, 375000, 0.030)
	cc := New()
	snd := transport.NewSender(1, p, cc)
	snd.Start()
	s.Run(3)
	if cc.Mode() == "startup" {
		t.Fatalf("BBR stuck in startup after 3 s (mode %s)", cc.Mode())
	}
}

func TestBBRProbeRTTVisits(t *testing.T) {
	s := sim.New(4)
	p := path(s, 50, 375000, 0.030)
	cc := New()
	snd := transport.NewSender(1, p, cc)
	snd.Start()
	visits := 0
	var tick func()
	tick = func() {
		if cc.Mode() == "probe_rtt" {
			visits++
		}
		if s.Now() < 35 {
			s.After(0.01, tick)
		}
	}
	s.After(0.01, tick)
	s.Run(35)
	if visits == 0 {
		t.Fatal("BBR never entered ProbeRTT in 35 s")
	}
}

func TestBBRToleratesRandomLoss(t *testing.T) {
	s := sim.New(5)
	p := path(s, 50, 375000, 0.030)
	p.Link.LossProb = 0.05
	snd := transport.NewSender(1, p, New())
	snd.Start()
	var mark int64
	s.At(10, func() { mark = snd.AckedBytes() })
	s.Run(60)
	tput := float64(snd.AckedBytes()-mark) * 8 / 50 / 1e6
	if tput < 35 {
		t.Fatalf("BBR under 5%% loss: %.1f Mbps, want ≥35 (loss-agnostic)", tput)
	}
}

func TestBBRSYieldsToBBR(t *testing.T) {
	// §7.1 / Fig. 14: BBR-S yields against plain BBR.
	s := sim.New(6)
	p := path(s, 50, 375000, 0.030)
	primary := transport.NewSender(1, p, New())
	scav := transport.NewSender(2, p, NewScavenger())
	primary.Start()
	s.At(10, func() { scav.Start() })
	var mp, ms int64
	s.At(40, func() { mp, ms = primary.AckedBytes(), scav.AckedBytes() })
	s.Run(120)
	tp := float64(primary.AckedBytes()-mp) * 8 / 80 / 1e6
	ts := float64(scav.AckedBytes()-ms) * 8 / 80 / 1e6
	if tp < 2.5*ts {
		t.Fatalf("BBR-S did not yield: BBR=%.1f BBR-S=%.1f", tp, ts)
	}
}

func TestBBRSFairWithItself(t *testing.T) {
	// Fig. 14: two BBR-S flows share the bottleneck roughly fairly.
	s := sim.New(7)
	p := path(s, 50, 375000, 0.030)
	a := transport.NewSender(1, p, NewScavenger())
	b := transport.NewSender(2, p, NewScavenger())
	a.Start()
	s.At(5, func() { b.Start() })
	var ma, mb int64
	s.At(40, func() { ma, mb = a.AckedBytes(), b.AckedBytes() })
	s.Run(160)
	ta := float64(a.AckedBytes()-ma) * 8 / 120 / 1e6
	tb := float64(b.AckedBytes()-mb) * 8 / 120 / 1e6
	if j := stats.JainIndex([]float64{ta, tb}); j < 0.8 {
		t.Fatalf("BBR-S self-fairness %.3f (%.1f vs %.1f)", j, ta, tb)
	}
}

func TestBBRNames(t *testing.T) {
	if New().Name() != "bbr" || NewScavenger().Name() != "bbr-s" {
		t.Fatal("names")
	}
}
