// Package fixedrate provides a constant-rate, congestion-oblivious
// controller. The paper uses a 20 Mbps fixed-rate UDP flow as the
// measurement probe for the Figure 2 RTT-deviation vs RTT-gradient
// analysis; it is also handy as a traffic generator and in tests.
package fixedrate

import (
	"math"

	"pccproteus/internal/transport"
)

// Controller sends at a fixed rate with no window limit.
type Controller struct {
	RateBps float64 // bytes per second
}

// New returns a fixed-rate controller with the rate given in Mbps.
func New(rateMbps float64) *Controller {
	return &Controller{RateBps: rateMbps * 1e6 / 8}
}

// Name implements transport.Controller.
func (c *Controller) Name() string { return "fixedrate" }

// OnSend implements transport.Controller.
func (c *Controller) OnSend(float64, *transport.SentPacket) {}

// OnAck implements transport.Controller.
func (c *Controller) OnAck(transport.Ack) {}

// OnLoss implements transport.Controller.
func (c *Controller) OnLoss(transport.Loss) {}

// PacingRate implements transport.Controller.
func (c *Controller) PacingRate() float64 { return c.RateBps }

// CWnd implements transport.Controller.
func (c *Controller) CWnd() float64 { return math.Inf(1) }
