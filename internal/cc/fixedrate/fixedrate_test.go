package fixedrate

import (
	"math"
	"testing"

	"pccproteus/internal/netem"
	"pccproteus/internal/sim"
	"pccproteus/internal/transport"
)

func TestFixedRateHoldsItsRate(t *testing.T) {
	s := sim.New(1)
	l := netem.NewLink(s, 100, 1<<20, 0.030)
	p := &netem.Path{Link: l, AckDelay: 0.030}
	cc := New(20)
	if cc.Name() != "fixedrate" {
		t.Fatal("name")
	}
	if !math.IsInf(cc.CWnd(), 1) {
		t.Fatal("fixed-rate flow must be window-unlimited")
	}
	snd := transport.NewSender(1, p, cc)
	snd.Burst = 1
	snd.Start()
	s.Run(10)
	tput := float64(snd.AckedBytes()) * 8 / 10 / 1e6
	if math.Abs(tput-20) > 1 {
		t.Fatalf("throughput %.2f want 20", tput)
	}
}

func TestFixedRateIgnoresCongestion(t *testing.T) {
	s := sim.New(2)
	l := netem.NewLink(s, 10, 20*netem.MTU, 0.030) // half the demanded rate
	p := &netem.Path{Link: l, AckDelay: 0.030}
	cc := New(20)
	snd := transport.NewSender(1, p, cc)
	snd.Start()
	s.Run(10)
	if cc.PacingRate() != 20e6/8 {
		t.Fatal("rate must not adapt")
	}
	tput := float64(snd.AckedBytes()) * 8 / 10 / 1e6
	if tput > 10.5 {
		t.Fatalf("delivered %.1f exceeds capacity", tput)
	}
	if l.Stats().Dropped == 0 {
		t.Fatal("overdriven link must drop")
	}
}
