// Package allegro implements PCC Allegro (Dong et al., NSDI '15), the
// first protocol of the PCC family and the direct ancestor of Vivace
// and Proteus (§8). Allegro shares the monitor-interval architecture but
// uses a loss-based sigmoid utility,
//
//	u(x) = T·sigmoid(c·(L−0.05)) − x·L,
//
// where T is the achieved throughput and L the loss rate — it reacts
// only to loss, not latency, and therefore bloats buffers (the paper:
// "PCC Allegro … uses a loss-based utility function, and also suffers
// from bufferbloat"). Its rate control is the original four-MI
// consistency probing with multiplicative step escalation.
//
// Allegro is included as a baseline to exhibit exactly the shortcomings
// that motivated Vivace's and Proteus's latency-aware designs.
package allegro

import (
	"math"
	"math/rand"

	"pccproteus/internal/core"
)

// utility is Allegro's sigmoid loss utility expressed over the shared
// Metrics type. Rates are in Mbps; the sigmoid steepness and the 5%
// loss threshold follow the NSDI '15 design.
type utility struct{}

// Name implements core.UtilityFunc.
func (utility) Name() string { return "allegro" }

// Utility implements core.UtilityFunc.
func (utility) Utility(m core.Metrics) float64 {
	x := m.RateMbps
	if x < 0 {
		x = 0
	}
	goodput := x * (1 - m.LossRate)
	// Sigmoid cutting in sharply above 5% loss (α=100 as in the paper's
	// TCP-friendly variant).
	sig := 1 / (1 + math.Exp(100*(m.LossRate-0.05)))
	return goodput*sig - x*m.LossRate
}

// New returns a PCC Allegro controller: the shared PCC rate-control
// machinery configured with Allegro's loss-only utility, two-pair
// consistency probing, and no latency-noise mechanisms (it has no
// latency terms to protect).
func New(rng *rand.Rand) *core.Controller {
	cfg := core.Config{
		Rng:        rng,
		ProbePairs: 2,
		// No gradient tolerance needed — the utility ignores latency —
		// but the field must be nonzero to select the fixed-threshold
		// path rather than regression tolerance.
		FixedGradTolerance: 1e9,
	}
	return core.New("allegro", cfg, utility{})
}
