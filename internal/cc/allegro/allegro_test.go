package allegro

import (
	"testing"

	"pccproteus/internal/core"
	"pccproteus/internal/netem"
	"pccproteus/internal/sim"
	"pccproteus/internal/stats"
	"pccproteus/internal/transport"
)

func path(s *sim.Sim, mbps float64, buf int, rtt float64) *netem.Path {
	l := netem.NewLink(s, mbps, buf, rtt/2)
	return &netem.Path{Link: l, AckDelay: rtt / 2}
}

func TestUtilityShape(t *testing.T) {
	u := utility{}
	// Below the 5% threshold, more rate is better.
	lo := u.Utility(core.Metrics{RateMbps: 10, LossRate: 0.01})
	hi := u.Utility(core.Metrics{RateMbps: 20, LossRate: 0.01})
	if hi <= lo {
		t.Fatal("utility must grow with rate under low loss")
	}
	// Past the threshold the sigmoid collapses the reward.
	bad := u.Utility(core.Metrics{RateMbps: 20, LossRate: 0.10})
	if bad >= 0 {
		t.Fatalf("10%% loss should make utility negative, got %v", bad)
	}
	// Latency is ignored entirely.
	a := u.Utility(core.Metrics{RateMbps: 20, RTTGradient: 0.5, RTTDeviation: 0.01})
	b := u.Utility(core.Metrics{RateMbps: 20})
	if a != b {
		t.Fatal("Allegro must be latency-blind")
	}
}

func TestAllegroSaturates(t *testing.T) {
	s := sim.New(1)
	p := path(s, 50, 375000, 0.030)
	snd := transport.NewSender(1, p, New(s.Rand()))
	snd.Start()
	var mark int64
	s.At(20, func() { mark = snd.AckedBytes() })
	s.Run(100)
	tput := float64(snd.AckedBytes()-mark) * 8 / 80 / 1e6
	if tput < 42 {
		t.Fatalf("Allegro throughput %.1f want ≥42", tput)
	}
}

func TestAllegroBloatsBuffersUnlikeProteus(t *testing.T) {
	// The §8 claim this baseline exists to demonstrate: Allegro, being
	// loss-based, pushes deep into the buffer where Proteus-P does not.
	run := func(mk func(*sim.Sim) transport.Controller) float64 {
		s := sim.New(2)
		p := path(s, 50, 375000, 0.030)
		snd := transport.NewSender(1, p, mk(s))
		snd.RecordRTT = true
		snd.Start()
		s.Run(80)
		n := len(snd.RTTSamples())
		return stats.Percentile(snd.RTTSamples()[n/4:], 95)
	}
	allegro := run(func(s *sim.Sim) transport.Controller { return New(s.Rand()) })
	proteus := run(func(s *sim.Sim) transport.Controller { return core.NewProteusP(s.Rand()) })
	if allegro < 2*proteus {
		t.Fatalf("Allegro p95 RTT %.1fms should dwarf Proteus-P %.1fms", allegro*1000, proteus*1000)
	}
}

func TestAllegroToleratesRandomLossUpToThreshold(t *testing.T) {
	s := sim.New(3)
	p := path(s, 50, 375000, 0.030)
	p.Link.LossProb = 0.02
	snd := transport.NewSender(1, p, New(s.Rand()))
	snd.Start()
	var mark int64
	s.At(20, func() { mark = snd.AckedBytes() })
	s.Run(100)
	tput := float64(snd.AckedBytes()-mark) * 8 / 80 / 1e6
	if tput < 25 {
		t.Fatalf("Allegro under 2%% loss: %.1f Mbps", tput)
	}
}
