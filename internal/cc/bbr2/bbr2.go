// Package bbr2 implements a BBRv2-style controller (Cardwell et al.,
// IETF drafts 2019–2021): the v1 model — windowed-max bottleneck
// bandwidth, windowed-min propagation delay, gain-cycled pacing — with
// v2's two structural changes. First, the fixed eight-phase gain cycle
// is replaced by the ProbeBW sub-state machine Down → Cruise → Refill
// → Up, which probes for bandwidth on a timer instead of every cycle
// and cruises with headroom between probes. Second, the controller
// keeps two explicit inflight bounds learned from loss. inflight_hi is
// the long-term ceiling: it is cut multiplicatively only when a probe
// proves too much — a lossy round while probing up (or during a lossy
// startup) — and is raised again by clean probing rounds. inflight_lo
// is the short-term reaction to loss outside a probe: each lossy
// cruise round cuts it, and it is released (reset to +Inf) at the next
// Refill, when the controller deliberately re-probes. Both bounds feed
// the congestion window: cwnd = min(gain·BDP, inflight_lo,
// inflight_hi), where inflight_hi keeps 15% headroom while cruising —
// so bbr2, unlike v1, responds to loss at a bounded rate instead of
// ignoring it.
package bbr2

import (
	"math"

	"pccproteus/internal/netem"
	"pccproteus/internal/stats"
	"pccproteus/internal/trace"
	"pccproteus/internal/transport"
)

const (
	mss = float64(netem.MTU)

	startupGain   = 2.885 // 2/ln2, as v1
	drainGain     = 1 / 2.885
	cwndGain      = 2.0
	probeUpGain   = 1.25
	probeDownGain = 0.75

	// Loss response: a round whose lost/(lost+delivered) byte fraction
	// exceeds lossThresh is "lossy"; each lossy round cuts inflight_hi
	// by beta. A round must also lose at least minLossPkts packets to
	// count — on a tiny window a single stray (e.g. random-media) loss
	// is a huge fraction, and cutting on it wedges the bound at the
	// floor. headroom is the fraction of inflight_hi usable outside an
	// active probe.
	lossThresh  = 0.02
	minLossPkts = 2
	beta        = 0.7
	headroom    = 0.85

	btlbwWindowRounds = 10   // bandwidth max-filter, in round trips
	rtpropWindow      = 10.0 // seconds
	probeRTTInterval  = 5.0  // v2 probes min-RTT twice as often as v1...
	probeRTTDuration  = 0.2
	probeRTTCwndGain  = 0.5 // ...but with half a BDP instead of 4 packets

	// bwProbeWait is the cruise time before the next Refill/Up probe
	// (v2 randomizes 2–3 s; a fixed midpoint keeps runs reproducible).
	bwProbeWait = 2.5

	// upMaxRounds bounds one Up probe; each clean Up round raises
	// inflight_hi at a doubling growth step.
	upMaxRounds = 3
)

type mode int

const (
	modeStartup mode = iota
	modeDrain
	modeProbeBW
	modeProbeRTT
)

// phase is the ProbeBW sub-state.
type phase int

const (
	phaseDown phase = iota
	phaseCruise
	phaseRefill
	phaseUp
)

func (m mode) String() string {
	switch m {
	case modeStartup:
		return "startup"
	case modeDrain:
		return "drain"
	case modeProbeBW:
		return "probe_bw"
	default:
		return "probe_rtt"
	}
}

func (p phase) String() string {
	switch p {
	case phaseDown:
		return "probe_down"
	case phaseCruise:
		return "cruise"
	case phaseRefill:
		return "refill"
	default:
		return "probe_up"
	}
}

type sendSnapshot struct {
	delivered   int64
	deliveredAt float64
	sentAt      float64
}

// Controller is one bbr2 connection.
type Controller struct {
	mode       mode
	phase      phase
	btlbw      stats.WindowedMax // bytes/sec, keyed by round count
	rtprop     stats.WindowedMin // seconds, keyed by time
	pacingGain float64

	inflightHi float64 // probe-learned long-term inflight ceiling, bytes
	inflightLo float64 // short-term loss bound, reset at each Refill

	delivered    int64
	deliveredAt  float64
	snapshots    map[int64]sendSnapshot
	round        int64
	nextRoundSeq int64
	maxSeqSent   int64
	fullBW       float64
	fullBWRounds int
	inflight     int

	// Per-round loss accounting.
	roundAcked   int64
	roundLost    int64
	lossyRound   bool // set at the round edge, consumed by step
	startupLossy int  // consecutive lossy rounds during startup

	cruiseStart   float64
	refillRound   int64
	upRounds      int
	upGrowth      float64 // packets added to inflight_hi next clean Up round
	rtpropStamp   float64
	probeRTTUntil float64

	started      bool
	nowForRtprop float64

	tr trace.Tracer
}

// New returns a bbr2 controller.
func New() *Controller {
	return &Controller{
		mode:       modeStartup,
		pacingGain: startupGain,
		btlbw:      stats.WindowedMax{Window: btlbwWindowRounds},
		rtprop:     stats.WindowedMin{Window: rtpropWindow},
		snapshots:  make(map[int64]sendSnapshot),
		inflightHi: math.Inf(1),
		inflightLo: math.Inf(1),
		upGrowth:   1,
	}
}

// SetTracer implements transport.TraceAware: mode and ProbeBW-phase
// transitions are emitted as ModeSwitch events (value = pacing gain).
func (c *Controller) SetTracer(t trace.Tracer) { c.tr = t }

// Name implements transport.Controller.
func (c *Controller) Name() string { return "bbr2" }

// Mode returns the current mode, with the ProbeBW sub-state spelled
// out (for tests and diagnostics).
func (c *Controller) Mode() string {
	if c.mode == modeProbeBW {
		return c.phase.String()
	}
	return c.mode.String()
}

// InflightHi returns the probe-learned inflight ceiling in bytes
// (+Inf until the first lossy probe).
func (c *Controller) InflightHi() float64 { return c.inflightHi }

// InflightLo returns the short-term loss bound in bytes (+Inf while
// no loss has been seen since the last Refill).
func (c *Controller) InflightLo() float64 { return c.inflightLo }

// BtlBw returns the bottleneck bandwidth estimate in bytes/sec.
func (c *Controller) BtlBw() float64 {
	bw, _ := c.btlbw.Get(float64(c.round))
	return bw
}

// RTProp returns the propagation-delay estimate in seconds.
func (c *Controller) RTProp() float64 {
	rt, ok := c.rtprop.Get(c.nowForRtprop)
	if !ok {
		return 0.1
	}
	return rt
}

var _ transport.Controller = (*Controller)(nil)

// OnSend implements transport.Controller.
func (c *Controller) OnSend(now float64, pkt *transport.SentPacket) {
	if c.deliveredAt == 0 {
		c.deliveredAt = now
	}
	c.snapshots[pkt.Seq] = sendSnapshot{delivered: c.delivered, deliveredAt: c.deliveredAt, sentAt: now}
	if pkt.Seq > c.maxSeqSent {
		c.maxSeqSent = pkt.Seq
	}
	c.inflight += pkt.Size
	if !c.started {
		c.started = true
		c.rtpropStamp = now
		c.cruiseStart = now
	}
}

// OnLoss implements transport.Controller: losses feed the per-round
// loss rate that drives the inflight_hi response.
func (c *Controller) OnLoss(loss transport.Loss) {
	delete(c.snapshots, loss.Seq)
	c.inflight -= loss.Bytes
	if c.inflight < 0 {
		c.inflight = 0
	}
	c.roundLost += int64(loss.Bytes)
}

// OnAck implements transport.Controller.
func (c *Controller) OnAck(ack transport.Ack) {
	c.nowForRtprop = ack.Now
	c.inflight -= ack.Bytes
	if c.inflight < 0 {
		c.inflight = 0
	}
	c.delivered += int64(ack.Bytes)
	c.deliveredAt = ack.Now
	c.roundAcked += int64(ack.Bytes)

	if ack.Seq >= c.nextRoundSeq {
		c.round++
		c.nextRoundSeq = c.maxSeqSent + 1
		c.onRound(ack.Now)
	}

	// Delivery-rate sample, exactly as v1 (see bbr.Controller.OnAck).
	if snap, ok := c.snapshots[ack.Seq]; ok {
		delete(c.snapshots, ack.Seq)
		sendElapsed := snap.sentAt - snap.deliveredAt
		ackElapsed := ack.Now - snap.deliveredAt
		elapsed := ackElapsed
		if sendElapsed > elapsed {
			elapsed = sendElapsed
		}
		if elapsed > 0 {
			c.btlbw.Add(float64(c.round), float64(c.delivered-snap.delivered)/elapsed)
		}
	}

	if prev, ok := c.rtprop.Get(ack.Now); !ok || ack.RTT < prev {
		c.rtpropStamp = ack.Now
	}
	c.rtprop.Add(ack.Now, ack.RTT)

	c.step(ack.Now)
}

// onRound closes the per-round loss ledger; in startup it runs the v1
// full-pipe estimator, and in an Up probe it does the once-per-round
// inflight_hi growth bookkeeping.
func (c *Controller) onRound(now float64) {
	tot := c.roundAcked + c.roundLost
	c.lossyRound = float64(c.roundLost) >= minLossPkts*mss &&
		float64(c.roundLost)/float64(tot) > lossThresh
	c.roundAcked, c.roundLost = 0, 0

	switch c.mode {
	case modeStartup:
		bw := c.BtlBw()
		if bw > c.fullBW*1.25 {
			c.fullBW = bw
			c.fullBWRounds = 0
		} else {
			c.fullBWRounds++
		}
		if c.lossyRound {
			c.startupLossy++
		} else {
			c.startupLossy = 0
		}
	case modeProbeBW:
		if c.phase == phaseUp {
			c.upRounds++
			if !c.lossyRound && !math.IsInf(c.inflightHi, 1) {
				// A clean probing round: raise the bound toward what
				// the probe proved deliverable, doubling the step.
				hi := c.inflightHi + c.upGrowth*mss
				if proved := float64(c.inflight); proved > hi {
					hi = proved
				}
				c.inflightHi = hi
				c.upGrowth *= 2
				if c.upGrowth > 64 {
					c.upGrowth = 64
				}
				c.tr.ModeSwitch(now, "inflight_hi_raise", c.inflightHi/mss)
			}
		}
	}
}

// cutInflightHi is the loss response: a multiplicative cut of the
// inflight bound, floored so the window never collapses entirely.
func (c *Controller) cutInflightHi(now float64) {
	bound := c.inflightHi
	if math.IsInf(bound, 1) {
		bound = float64(c.inflight)
		if b := c.bdp(); b > bound {
			bound = b
		}
	}
	bound *= beta
	if bound < 4*mss {
		bound = 4 * mss
	}
	c.inflightHi = bound
	c.upGrowth = 1
	c.tr.ModeSwitch(now, "inflight_hi_cut", c.inflightHi/mss)
}

// adaptInflightLo is the short-term loss response outside a probe:
// cut the transient bound, to be released at the next Refill.
func (c *Controller) adaptInflightLo(now float64) {
	lo := c.inflightLo
	if math.IsInf(lo, 1) {
		lo = float64(c.inflight)
		if b := c.bdp(); b > lo {
			lo = b
		}
	}
	lo *= beta
	if lo < 4*mss {
		lo = 4 * mss
	}
	c.inflightLo = lo
	c.tr.ModeSwitch(now, "inflight_lo_cut", c.inflightLo/mss)
}

func (c *Controller) step(now float64) {
	switch c.mode {
	case modeStartup:
		// Exit on a full pipe (v1) or on sustained loss (v2: startup
		// must not blast through a shallow buffer for three rounds).
		if c.fullBWRounds >= 3 || c.startupLossy >= 2 {
			if c.startupLossy >= 2 {
				c.cutInflightHi(now)
				c.startupLossy = 0
			}
			c.mode = modeDrain
			c.pacingGain = drainGain
			c.tr.ModeSwitch(now, "drain", c.pacingGain)
		}
	case modeDrain:
		if float64(c.inflight) <= c.bdp() {
			c.enterProbeBW(now, phaseCruise)
		}
	case modeProbeBW:
		c.stepProbeBW(now)
		if now-c.rtpropStamp > probeRTTInterval {
			c.enterProbeRTT(now)
		}
	case modeProbeRTT:
		if now >= c.probeRTTUntil {
			c.rtpropStamp = now
			c.enterProbeBW(now, phaseCruise)
		}
	}
	if c.mode == modeProbeBW && c.lossyRound &&
		(c.phase == phaseDown || c.phase == phaseCruise) {
		// Loss outside a probe is a short-term signal: cut the
		// transient inflight_lo bound (released at the next Refill),
		// leaving the probe-learned inflight_hi intact.
		c.adaptInflightLo(now)
	}
	c.lossyRound = false
}

// stepProbeBW advances the Down → Cruise → Refill → Up sub-machine.
func (c *Controller) stepProbeBW(now float64) {
	switch c.phase {
	case phaseDown:
		if float64(c.inflight) <= c.inflightTarget() {
			c.enterPhase(now, phaseCruise)
		}
	case phaseCruise:
		if now-c.cruiseStart > bwProbeWait {
			c.enterPhase(now, phaseRefill)
		}
	case phaseRefill:
		// One round refilling the pipe to the bound, then probe up.
		if c.round > c.refillRound {
			c.enterPhase(now, phaseUp)
		}
	case phaseUp:
		if c.lossyRound {
			c.cutInflightHi(now)
			c.enterPhase(now, phaseDown)
			return
		}
		if c.upRounds >= upMaxRounds {
			c.enterPhase(now, phaseDown)
		}
	}
}

// inflightTarget is the steady-state inflight bound: cruise keeps 15%
// headroom under inflight_hi, and never below one BDP's worth of use.
func (c *Controller) inflightTarget() float64 {
	t := c.bdp()
	if !math.IsInf(c.inflightHi, 1) {
		if h := headroom * c.inflightHi; h < t {
			t = h
		}
	}
	if t < 4*mss {
		t = 4 * mss
	}
	return t
}

func (c *Controller) enterProbeBW(now float64, p phase) {
	c.mode = modeProbeBW
	c.enterPhase(now, p)
}

func (c *Controller) enterPhase(now float64, p phase) {
	c.phase = p
	switch p {
	case phaseDown:
		c.pacingGain = probeDownGain
	case phaseCruise:
		c.pacingGain = 1.0
		c.cruiseStart = now
	case phaseRefill:
		c.pacingGain = 1.0
		c.refillRound = c.round
		c.inflightLo = math.Inf(1) // deliberate re-probe releases the bound
	case phaseUp:
		c.pacingGain = probeUpGain
		c.upRounds = 0
	}
	c.tr.ModeSwitch(now, p.String(), c.pacingGain)
}

func (c *Controller) enterProbeRTT(now float64) {
	c.mode = modeProbeRTT
	c.probeRTTUntil = now + probeRTTDuration
	c.pacingGain = 1.0
	c.tr.ModeSwitch(now, "probe_rtt", c.pacingGain)
}

func (c *Controller) bdp() float64 { return c.BtlBw() * c.RTProp() }

// PacingRate implements transport.Controller.
func (c *Controller) PacingRate() float64 {
	bw := c.BtlBw()
	if bw == 0 {
		return 10 * mss / 0.1 * c.pacingGain
	}
	if c.mode == modeProbeRTT {
		return bw
	}
	return c.pacingGain * bw
}

// CWnd implements transport.Controller: the v1 gain-scaled BDP window
// capped by the loss-learned inflight bound (with cruise headroom
// outside an active Refill/Up probe).
func (c *Controller) CWnd() float64 {
	if c.mode == modeProbeRTT {
		w := probeRTTCwndGain * c.bdp()
		if w < 4*mss {
			w = 4 * mss
		}
		return w
	}
	bdp := c.bdp()
	if bdp == 0 {
		return 10 * mss
	}
	gain := cwndGain
	if c.mode == modeStartup {
		gain = startupGain
	}
	w := gain * bdp
	if c.mode == modeProbeBW {
		bound := c.inflightLo
		if !math.IsInf(c.inflightHi, 1) {
			hi := c.inflightHi
			if c.phase == phaseDown || c.phase == phaseCruise {
				hi = headroom * c.inflightHi
			}
			if hi < bound {
				bound = hi
			}
		}
		if bound < w {
			w = bound
		}
	}
	if w < 4*mss {
		w = 4 * mss
	}
	return w
}
