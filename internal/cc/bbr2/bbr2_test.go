package bbr2

import (
	"math"
	"testing"

	"pccproteus/internal/netem"
	"pccproteus/internal/sim"
	"pccproteus/internal/stats"
	"pccproteus/internal/transport"
)

func path(s *sim.Sim, mbps float64, buf int, rtt float64) *netem.Path {
	l := netem.NewLink(s, mbps, buf, rtt/2)
	return &netem.Path{Link: l, AckDelay: rtt / 2}
}

func TestBBR2SaturatesLink(t *testing.T) {
	s := sim.New(1)
	p := path(s, 50, 375000, 0.030) // 2 BDP of buffer
	cc := New()
	snd := transport.NewSender(1, p, cc)
	snd.Start()
	var mark int64
	s.At(10, func() { mark = snd.AckedBytes() })
	s.Run(60)
	tput := float64(snd.AckedBytes()-mark) * 8 / 50 / 1e6
	if tput < 42 {
		t.Fatalf("bbr2 throughput %.1f want ≥42", tput)
	}
	if bw := cc.BtlBw() * 8 / 1e6; bw < 45 || bw > 60 {
		t.Fatalf("btlbw estimate %.1f Mbps", bw)
	}
	if rt := cc.RTProp(); rt < 0.029 || rt > 0.040 {
		t.Fatalf("rtprop estimate %.1f ms", rt*1000)
	}
}

func TestBBR2ExitsStartup(t *testing.T) {
	s := sim.New(2)
	p := path(s, 50, 375000, 0.030)
	cc := New()
	snd := transport.NewSender(1, p, cc)
	snd.Start()
	s.Run(3)
	if cc.Mode() == "startup" {
		t.Fatalf("bbr2 stuck in startup after 3 s (mode %s)", cc.Mode())
	}
}

// TestBBR2ProbeBWCycle checks the ProbeBW sub-machine actually cycles:
// over a long steady run the controller must visit cruise, refill, and
// probe_up (not park in one phase).
func TestBBR2ProbeBWCycle(t *testing.T) {
	s := sim.New(3)
	p := path(s, 50, 375000, 0.030)
	cc := New()
	snd := transport.NewSender(1, p, cc)
	snd.Start()
	seen := map[string]bool{}
	var tick func()
	tick = func() {
		seen[cc.Mode()] = true
		if s.Now() < 40 {
			s.After(0.01, tick)
		}
	}
	s.After(0.01, tick)
	s.Run(40)
	for _, want := range []string{"cruise", "refill", "probe_up", "probe_down"} {
		if !seen[want] {
			t.Fatalf("phase %q never visited (saw %v)", want, seen)
		}
	}
}

func TestBBR2ProbeRTTVisits(t *testing.T) {
	s := sim.New(4)
	p := path(s, 50, 375000, 0.030)
	cc := New()
	snd := transport.NewSender(1, p, cc)
	snd.Start()
	visits := 0
	var tick func()
	tick = func() {
		if cc.Mode() == "probe_rtt" {
			visits++
		}
		if s.Now() < 35 {
			s.After(0.01, tick)
		}
	}
	s.After(0.01, tick)
	s.Run(35)
	if visits == 0 {
		t.Fatal("probe_rtt never visited in 35 s")
	}
}

// TestBBR2LearnsInflightHi drives the flow into a shallow buffer:
// persistent loss must make the inflight_hi bound finite and keep it
// near the path's capacity rather than growing without bound.
func TestBBR2LearnsInflightHi(t *testing.T) {
	s := sim.New(5)
	bdp := 50.0 * 1e6 / 8 * 0.030
	p := path(s, 50, int(bdp/4), 0.030) // quarter-BDP buffer: loss is inevitable
	cc := New()
	snd := transport.NewSender(1, p, cc)
	snd.Start()
	s.Run(30)
	hi := cc.InflightHi()
	if math.IsInf(hi, 1) {
		t.Fatal("inflight_hi still infinite after 30 s on a shallow buffer")
	}
	if hi > 4*bdp {
		t.Fatalf("inflight_hi %.0f bytes: not bounding (bdp %.0f)", hi, bdp)
	}
	if hi < 4*1200 {
		t.Fatalf("inflight_hi %.0f below the 4-packet floor", hi)
	}
}

// TestBBR2BoundsQueue mirrors the bbr test: on a deep (4-BDP) buffer
// the cwnd gain must keep the standing queue near one BDP, not fill
// the buffer like a loss-based controller.
func TestBBR2BoundsQueue(t *testing.T) {
	s := sim.New(6)
	p := path(s, 50, 750000, 0.030)
	snd := transport.NewSender(1, p, New())
	snd.RecordRTT = true
	snd.Start()
	s.Run(60)
	n := len(snd.RTTSamples())
	p95 := stats.Percentile(snd.RTTSamples()[n/4:], 95)
	if p95 > 0.085 {
		t.Fatalf("95th RTT %.1f ms: bbr2 should not fill a 4-BDP buffer", p95*1000)
	}
}

// TestBBR2LossCapsThroughputLessThanCubicStarves checks the loss
// response is proportional, not collapse: on a 2%-random-loss link the
// controller should still move a usable share of the link.
func TestBBR2ToleratesRandomLoss(t *testing.T) {
	s := sim.New(7)
	p := path(s, 50, 375000, 0.030)
	p.Link.LossProb = 0.005
	snd := transport.NewSender(1, p, New())
	snd.Start()
	var mark int64
	s.At(10, func() { mark = snd.AckedBytes() })
	s.Run(40)
	tput := float64(snd.AckedBytes()-mark) * 8 / 30 / 1e6
	if tput < 15 {
		t.Fatalf("bbr2 throughput %.1f Mbps under 0.5%% loss: collapsed", tput)
	}
}
