package cubic

import (
	"math"
	"testing"

	"pccproteus/internal/netem"
	"pccproteus/internal/sim"
	"pccproteus/internal/stats"
	"pccproteus/internal/transport"
)

func path(s *sim.Sim, mbps float64, buf int, rtt float64) *netem.Path {
	l := netem.NewLink(s, mbps, buf, rtt/2)
	return &netem.Path{Link: l, AckDelay: rtt / 2}
}

func TestCubicSaturatesWithBDPBuffer(t *testing.T) {
	s := sim.New(1)
	p := path(s, 50, 375000, 0.030) // 2 BDP
	snd := transport.NewSender(1, p, New())
	snd.Start()
	var mark int64
	s.At(20, func() { mark = snd.AckedBytes() })
	s.Run(100)
	tput := float64(snd.AckedBytes()-mark) * 8 / 80 / 1e6
	if tput < 45 {
		t.Fatalf("CUBIC throughput %.1f want ≥45", tput)
	}
}

func TestCubicFillsBufferAndBloatsRTT(t *testing.T) {
	s := sim.New(2)
	p := path(s, 50, 375000, 0.030)
	snd := transport.NewSender(1, p, New())
	snd.RecordRTT = true
	snd.Start()
	s.Run(60)
	// CUBIC is loss-based: it must drive RTT towards base + full buffer.
	p95 := stats.Percentile(snd.RTTSamples(), 95)
	full := p.BaseRTT() + 375000/p.Link.Rate
	if p95 < p.BaseRTT()+0.5*(full-p.BaseRTT()) {
		t.Fatalf("95th RTT %.1f ms shows no bufferbloat (base %.1f, full %.1f)",
			p95*1000, p.BaseRTT()*1000, full*1000)
	}
	if p.Link.Stats().Dropped == 0 {
		t.Fatal("CUBIC should experience tail drops")
	}
}

func TestCubicLossResponse(t *testing.T) {
	c := New()
	c.srtt = 0.03
	c.cwnd = 100 * mss
	c.OnLoss(transport.Loss{Now: 1.0})
	if math.Abs(c.cwnd-70*mss) > 1e-9 {
		t.Fatalf("cwnd after loss %.1f MSS want 70", c.cwnd/mss)
	}
	// A second loss within the same RTT is one episode.
	c.OnLoss(transport.Loss{Now: 1.01})
	if math.Abs(c.cwnd-70*mss) > 1e-9 {
		t.Fatal("second loss in episode must not reduce again")
	}
	// After an RTT, it reduces again (fast convergence shrinks wMax).
	c.OnLoss(transport.Loss{Now: 1.2})
	if math.Abs(c.cwnd-49*mss) > 1e-9 {
		t.Fatalf("cwnd after second episode %.1f MSS want 49", c.cwnd/mss)
	}
}

func TestCubicSlowStartDoubles(t *testing.T) {
	c := New()
	start := c.CWnd()
	// Ack a window's worth of bytes: cwnd should double.
	acked := 0.0
	for acked < start {
		c.OnAck(transport.Ack{Bytes: netem.MTU, RTT: 0.03, Now: acked / 1e6})
		acked += mss
	}
	if c.CWnd() < 2*start*0.99 {
		t.Fatalf("slow start did not double: %v -> %v", start, c.CWnd())
	}
}

func TestCubicFairnessTwoFlows(t *testing.T) {
	s := sim.New(3)
	p := path(s, 50, 375000, 0.030)
	a := transport.NewSender(1, p, New())
	b := transport.NewSender(2, p, New())
	a.Start()
	s.At(5, func() { b.Start() })
	var ma, mb int64
	s.At(40, func() { ma, mb = a.AckedBytes(), b.AckedBytes() })
	s.Run(160)
	ta := float64(a.AckedBytes()-ma) * 8 / 120 / 1e6
	tb := float64(b.AckedBytes()-mb) * 8 / 120 / 1e6
	j := stats.JainIndex([]float64{ta, tb})
	if j < 0.90 {
		t.Fatalf("CUBIC/CUBIC Jain %.3f (%.1f vs %.1f)", j, ta, tb)
	}
	if ta+tb < 42 {
		t.Fatalf("joint utilization %.1f too low", ta+tb)
	}
}

func TestCubicGrowthIsCubicShaped(t *testing.T) {
	// After a loss the window should plateau near wMax and then
	// accelerate — probe the W(t) curve directly.
	c := New()
	c.srtt = 0.03
	c.cwnd = 100 * mss
	c.OnLoss(transport.Loss{Now: 0})
	w0 := c.cwnd
	now := 0.0
	var at25, at100 float64
	for i := 0; i < 4000; i++ {
		now += 0.001
		c.OnAck(transport.Ack{Bytes: netem.MTU, RTT: 0.03, Now: now})
		if at25 == 0 && now >= 1.0 {
			at25 = c.cwnd
		}
		if at100 == 0 && now >= 3.5 {
			at100 = c.cwnd
		}
	}
	if at25 <= w0 {
		t.Fatal("window must grow after loss epoch")
	}
	if at100 <= c.wMax {
		t.Fatalf("window should eventually exceed wMax: %.0f <= %.0f", at100, c.wMax)
	}
}
