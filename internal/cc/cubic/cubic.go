// Package cubic implements TCP CUBIC (RFC 8312): cubic window growth
// around the last congestion point, fast convergence, the TCP-friendly
// region, and a β=0.7 multiplicative decrease. CUBIC is the paper's
// canonical loss-based primary protocol (and the protocol LEDBAT was
// designed to scavenge against).
package cubic

import (
	"math"

	"pccproteus/internal/netem"
	"pccproteus/internal/transport"
)

const (
	mss = float64(netem.MTU)

	beta         = 0.7 // multiplicative decrease factor
	cubicC       = 0.4 // cubic scaling constant (packets/sec³)
	minCwnd      = 2 * mss
	fastConverge = true
)

// Controller is one CUBIC connection's congestion state.
type Controller struct {
	cwnd       float64 // bytes
	ssthresh   float64
	wMax       float64 // window at last loss, bytes
	k          float64 // time to regain wMax, seconds
	epochStart float64 // -1 = no epoch
	lastLoss   float64 // time of last window reduction
	srtt       float64
}

// New returns a CUBIC controller with the modern 10-segment initial
// window.
func New() *Controller {
	return NewWithIW(10)
}

// NewWithIW returns a CUBIC controller with an explicit initial window
// in segments (older stacks shipped IW=3; useful for modeling short
// cross-traffic flows of that era).
func NewWithIW(segments int) *Controller {
	return &Controller{
		cwnd:       float64(segments) * mss,
		ssthresh:   math.Inf(1),
		epochStart: -1,
		lastLoss:   -1,
	}
}

// Name implements transport.Controller.
func (c *Controller) Name() string { return "cubic" }

// OnSend implements transport.Controller.
func (c *Controller) OnSend(float64, *transport.SentPacket) {}

// CWnd implements transport.Controller.
func (c *Controller) CWnd() float64 { return c.cwnd }

// PacingRate implements transport.Controller: 0 selects the sender's
// default cwnd/srtt pacing, as Linux does for TCP.
func (c *Controller) PacingRate() float64 { return 0 }

// CwndBytes exposes the current window for tests and instrumentation.
func (c *Controller) CwndBytes() float64 { return c.cwnd }

// OnAck implements transport.Controller.
func (c *Controller) OnAck(ack transport.Ack) {
	if c.srtt == 0 {
		c.srtt = ack.RTT
	} else {
		c.srtt = 0.875*c.srtt + 0.125*ack.RTT
	}
	if c.cwnd < c.ssthresh {
		// Slow start.
		c.cwnd += float64(ack.Bytes)
		return
	}
	// Congestion avoidance: steer toward the cubic curve.
	if c.epochStart < 0 {
		c.epochStart = ack.Now
		if c.wMax < c.cwnd {
			c.wMax = c.cwnd
			c.k = 0
		} else {
			c.k = math.Cbrt(c.wMax / mss * (1 - beta) / cubicC)
		}
	}
	t := ack.Now - c.epochStart + c.srtt // target one RTT ahead
	wCubic := (cubicC*math.Pow(t-c.k, 3) + c.wMax/mss) * mss
	// TCP-friendly region (RFC 8312 §4.2).
	wEst := (c.wMax/mss*beta + 3*(1-beta)/(1+beta)*(t/c.srtt)) * mss
	target := wCubic
	if wEst > target {
		target = wEst
	}
	if target > c.cwnd {
		c.cwnd += (target - c.cwnd) / (c.cwnd / mss) * (float64(ack.Bytes) / mss)
	} else {
		// Very slow growth when at/above target.
		c.cwnd += mss * (float64(ack.Bytes) / mss) / (100 * c.cwnd / mss)
	}
}

// OnLoss implements transport.Controller: one multiplicative decrease
// per RTT-spaced loss episode.
func (c *Controller) OnLoss(loss transport.Loss) {
	rtt := c.srtt
	if rtt == 0 {
		rtt = 0.1
	}
	if c.lastLoss >= 0 && loss.Now-c.lastLoss < rtt {
		return // same loss episode
	}
	c.lastLoss = loss.Now
	if fastConverge && c.cwnd < c.wMax {
		c.wMax = c.cwnd * (1 + beta) / 2
	} else {
		c.wMax = c.cwnd
	}
	c.cwnd *= beta
	if c.cwnd < minCwnd {
		c.cwnd = minCwnd
	}
	c.ssthresh = c.cwnd
	c.epochStart = -1
	c.k = math.Cbrt(c.wMax / mss * (1 - beta) / cubicC)
}
