package ledbat

import (
	"testing"

	"pccproteus/internal/netem"
	"pccproteus/internal/sim"
	"pccproteus/internal/stats"
	"pccproteus/internal/transport"
)

func path(s *sim.Sim, mbps float64, buf int, rtt float64) *netem.Path {
	l := netem.NewLink(s, mbps, buf, rtt/2)
	return &netem.Path{Link: l, AckDelay: rtt / 2}
}

func TestLEDBATTargetsExtraDelay(t *testing.T) {
	s := sim.New(1)
	// Buffer big enough to hold 100 ms of extra delay (625 KB at 50 Mbps).
	p := path(s, 50, 900000, 0.030)
	snd := transport.NewSender(1, p, New(0.100))
	snd.RecordRTT = true
	snd.Start()
	var mark int64
	s.At(30, func() { mark = snd.AckedBytes() })
	s.Run(100)
	tput := float64(snd.AckedBytes()-mark) * 8 / 70 / 1e6
	if tput < 45 {
		t.Fatalf("LEDBAT throughput %.1f want ≥45", tput)
	}
	// Median RTT should sit near base + target (≈130 ms).
	med := stats.Median(snd.RTTSamples()[len(snd.RTTSamples())/2:])
	if med < 0.100 || med > 0.160 {
		t.Fatalf("median RTT %.1f ms, want ≈130 (base 30 + target 100)", med*1000)
	}
}

func TestLEDBAT25TargetsSmallerDelay(t *testing.T) {
	s := sim.New(1)
	p := path(s, 50, 900000, 0.030)
	snd := transport.NewSender(1, p, New(0.025))
	snd.RecordRTT = true
	snd.Start()
	s.Run(100)
	n := len(snd.RTTSamples())
	med := stats.Median(snd.RTTSamples()[n/2:])
	if med < 0.040 || med > 0.075 {
		t.Fatalf("LEDBAT-25 median RTT %.1f ms, want ≈55", med*1000)
	}
}

func TestLEDBATKeepsBufferFullWhenShallow(t *testing.T) {
	// With a buffer smaller than the target delay, LEDBAT can never
	// reach its target and behaves like a loss-based protocol, keeping
	// the buffer full (the paper's Fig. 3(b) observation).
	s := sim.New(2)
	p := path(s, 50, 150000, 0.030) // 24 ms of buffer < 100 ms target
	snd := transport.NewSender(1, p, New(0.100))
	snd.RecordRTT = true
	snd.Start()
	s.Run(60)
	if p.Link.Stats().Dropped == 0 {
		t.Fatal("LEDBAT below-target should fill the buffer to loss")
	}
	p95 := stats.Percentile(snd.RTTSamples(), 95)
	full := p.BaseRTT() + 150000/p.Link.Rate
	if p95 < p.BaseRTT()+0.6*(full-p.BaseRTT()) {
		t.Fatalf("95th RTT %.1f ms: buffer not kept full (full=%.1f)", p95*1000, full*1000)
	}
}

func TestLEDBATLatecomerAdvantage(t *testing.T) {
	// The second flow measures its base delay against a queue the first
	// flow has already inflated, so it believes there is no queuing and
	// starves the incumbent (§6.1.3).
	s := sim.New(3)
	// The buffer must accommodate the sum of both flows' delay targets
	// (the paper: fairness only improves once Σ targets exceeds the
	// buffer), so use a deep 1.8 MB queue.
	p := path(s, 50, 1800000, 0.030)
	first := transport.NewSender(1, p, New(0.100))
	second := transport.NewSender(2, p, New(0.100))
	first.Start()
	s.At(30, func() { second.Start() })
	// LEDBAT's proportional controller drifts slowly (the paper's Fig. 18
	// shows the takeover developing over hundreds of seconds), so measure
	// the last 100 s of a 280 s run.
	var m1, m2 int64
	s.At(180, func() { m1, m2 = first.AckedBytes(), second.AckedBytes() })
	s.Run(280)
	t1 := float64(first.AckedBytes()-m1) * 8 / 100 / 1e6
	t2 := float64(second.AckedBytes()-m2) * 8 / 100 / 1e6
	if t2 < 1.5*t1 {
		t.Fatalf("no latecomer advantage: first=%.1f second=%.1f", t1, t2)
	}
}

func TestLEDBATFragileToRandomLoss(t *testing.T) {
	// Even 0.1% random loss halves LEDBAT's window regularly (§6.1.2).
	s := sim.New(4)
	clean := path(s, 50, 900000, 0.030)
	a := transport.NewSender(1, clean, New(0.100))
	a.Start()
	s.Run(60)
	cleanTput := float64(a.AckedBytes()) * 8 / 60 / 1e6

	s2 := sim.New(4)
	lossy := path(s2, 50, 900000, 0.030)
	lossy.Link.LossProb = 0.001
	b := transport.NewSender(1, lossy, New(0.100))
	b.Start()
	s2.Run(60)
	lossTput := float64(b.AckedBytes()) * 8 / 60 / 1e6
	if lossTput > 0.7*cleanTput {
		t.Fatalf("LEDBAT should degrade under random loss: clean=%.1f lossy=%.1f", cleanTput, lossTput)
	}
}

func TestLEDBATWindowUpdateDirection(t *testing.T) {
	c := New(0.100)
	c.base = 0.030
	c.baseInit = true
	w0 := c.cwnd
	// Below target: grow.
	c.OnAck(transport.Ack{Bytes: netem.MTU, OWD: 0.050, RTT: 0.08, Now: 1})
	if c.cwnd <= w0 {
		t.Fatal("below-target ack must grow window")
	}
	// Above target: shrink — the CURRENT_FILTER takes the minimum of the
	// last few samples, so the whole filter must fill with high delays.
	c.cwnd = 100 * mss
	w1 := c.cwnd
	for i := 0; i < 4*currentFilter; i++ {
		c.OnAck(transport.Ack{Bytes: netem.MTU, OWD: 0.200, RTT: 0.23, Now: 2 + float64(i)})
	}
	if c.cwnd >= w1 {
		t.Fatal("above-target acks must shrink window")
	}
	if c.Name() != "ledbat" || New(0.025).Name() != "ledbat-25" {
		t.Fatal("names")
	}
}

func TestLEDBATLossHalves(t *testing.T) {
	c := New(0.100)
	c.srtt = 0.03
	c.cwnd = 100 * mss
	c.OnLoss(transport.Loss{Now: 1})
	if c.cwnd != 50*mss {
		t.Fatalf("cwnd %.0f want halved", c.cwnd/mss)
	}
	c.OnLoss(transport.Loss{Now: 1.005}) // same episode
	if c.cwnd != 50*mss {
		t.Fatal("same-episode loss must not halve twice")
	}
}
