// Package ledbat implements LEDBAT (RFC 6817), the IETF's Low Extra
// Delay Background Transport — the existing scavenger the paper compares
// against. LEDBAT steers the one-way queuing delay it induces toward a
// fixed target (100 ms in the RFC and in µTorrent; 25 ms in the original
// draft evaluated in Appendix B) with a proportional controller, and
// halves its window on loss.
//
// The base one-way delay is the minimum observed over the connection's
// lifetime. Because a latecomer measures its "base" against a queue
// already inflated by incumbent LEDBAT flows, it believes the queue is
// empty and pushes harder — the latecomer advantage of §6.1.3 emerges
// from this implementation without any special casing.
package ledbat

import (
	"math"

	"pccproteus/internal/netem"
	"pccproteus/internal/transport"
)

const (
	mss         = float64(netem.MTU)
	gain        = 1.0
	initialCwnd = 2 * mss
	minCwnd     = 2 * mss
	// currentFilter is the number of recent OWD samples whose minimum
	// estimates the current delay (RFC 6817 CURRENT_FILTER).
	currentFilter = 4
)

// Controller is one LEDBAT connection.
type Controller struct {
	// TargetDelay is the extra queuing delay goal in seconds: 0.100 per
	// RFC 6817 and the paper's main evaluation, 0.025 for the LEDBAT-25
	// variant of Appendix B.
	TargetDelay float64

	cwnd     float64
	base     float64 // lifetime minimum OWD
	baseInit bool
	recent   []float64 // last few OWD samples
	lastLoss float64
	srtt     float64
}

// New returns a LEDBAT controller with the given target extra delay in
// seconds.
func New(targetDelay float64) *Controller {
	return &Controller{TargetDelay: targetDelay, cwnd: initialCwnd, lastLoss: -1}
}

// Name implements transport.Controller.
func (c *Controller) Name() string {
	if c.TargetDelay <= 0.05 {
		return "ledbat-25"
	}
	return "ledbat"
}

// OnSend implements transport.Controller.
func (c *Controller) OnSend(float64, *transport.SentPacket) {}

// CWnd implements transport.Controller.
func (c *Controller) CWnd() float64 { return c.cwnd }

// PacingRate implements transport.Controller (default cwnd pacing).
func (c *Controller) PacingRate() float64 { return 0 }

// QueuingDelay reports the current estimated self-induced queuing delay.
func (c *Controller) QueuingDelay() float64 {
	if !c.baseInit || len(c.recent) == 0 {
		return 0
	}
	return c.currentDelay() - c.base
}

func (c *Controller) currentDelay() float64 {
	cur := math.Inf(1)
	for _, v := range c.recent {
		if v < cur {
			cur = v
		}
	}
	return cur
}

// OnAck implements transport.Controller: the RFC 6817 window update
//
//	off_target = (TARGET - queuing_delay) / TARGET
//	cwnd += GAIN · off_target · bytes_newly_acked · MSS / cwnd
//
// with growth clamped to slow-start speed (at most one MSS per MSS
// acked).
func (c *Controller) OnAck(ack transport.Ack) {
	if c.srtt == 0 {
		c.srtt = ack.RTT
	} else {
		c.srtt = 0.875*c.srtt + 0.125*ack.RTT
	}
	if !c.baseInit || ack.OWD < c.base {
		c.base = ack.OWD
		c.baseInit = true
	}
	c.recent = append(c.recent, ack.OWD)
	if len(c.recent) > currentFilter {
		c.recent = c.recent[1:]
	}
	qd := c.currentDelay() - c.base
	offTarget := (c.TargetDelay - qd) / c.TargetDelay
	delta := gain * offTarget * float64(ack.Bytes) * mss / c.cwnd
	if max := float64(ack.Bytes); delta > max {
		delta = max // never outgrow slow start
	}
	c.cwnd += delta
	if c.cwnd < minCwnd {
		c.cwnd = minCwnd
	}
}

// OnLoss implements transport.Controller: halve at most once per RTT.
func (c *Controller) OnLoss(loss transport.Loss) {
	rtt := c.srtt
	if rtt == 0 {
		rtt = 0.1
	}
	if c.lastLoss >= 0 && loss.Now-c.lastLoss < rtt {
		return
	}
	c.lastLoss = loss.Now
	c.cwnd /= 2
	if c.cwnd < minCwnd {
		c.cwnd = minCwnd
	}
}
