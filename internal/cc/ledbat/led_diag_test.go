package ledbat

import (
	"fmt"
	"os"
	"testing"

	"pccproteus/internal/sim"
	"pccproteus/internal/transport"
)

func TestDiagLatecomer(t *testing.T) {
	if os.Getenv("PROTEUS_DIAG") == "" {
		t.Skip("diag")
	}
	s := sim.New(3)
	p := path(s, 50, 1800000, 0.030)
	c1, c2 := New(0.100), New(0.100)
	first := transport.NewSender(1, p, c1)
	second := transport.NewSender(2, p, c2)
	first.Start()
	s.At(30, func() { second.Start() })
	for ts := 5.0; ts <= 150; ts += 10 {
		ts := ts
		s.At(ts, func() {
			fmt.Printf("t=%5.1f q=%7.1fKB cwnd1=%7.0f base1=%.4f qd1=%.4f cwnd2=%7.0f base2=%.4f qd2=%.4f\n",
				ts, float64(p.Link.QueueBytes())/1000, c1.cwnd, c1.base, c1.QueuingDelay(), c2.cwnd, c2.base, c2.QueuingDelay())
		})
	}
	s.Run(150)
}
