package copa

import (
	"testing"

	"pccproteus/internal/netem"
	"pccproteus/internal/sim"
	"pccproteus/internal/stats"
	"pccproteus/internal/transport"
)

func path(s *sim.Sim, mbps float64, buf int, rtt float64) *netem.Path {
	l := netem.NewLink(s, mbps, buf, rtt/2)
	return &netem.Path{Link: l, AckDelay: rtt / 2}
}

func TestCopaSaturatesLink(t *testing.T) {
	s := sim.New(1)
	p := path(s, 50, 375000, 0.030)
	snd := transport.NewSender(1, p, New())
	snd.Start()
	var mark int64
	s.At(15, func() { mark = snd.AckedBytes() })
	s.Run(100)
	tput := float64(snd.AckedBytes()-mark) * 8 / 85 / 1e6
	if tput < 42 {
		t.Fatalf("COPA throughput %.1f want ≥42", tput)
	}
}

func TestCopaKeepsDelayLow(t *testing.T) {
	s := sim.New(2)
	p := path(s, 50, 750000, 0.030)
	snd := transport.NewSender(1, p, New())
	snd.RecordRTT = true
	snd.Start()
	s.Run(60)
	n := len(snd.RTTSamples())
	p95 := stats.Percentile(snd.RTTSamples()[n/4:], 95)
	// COPA targets ~1/(δ·dq): queuing should stay well under the 120 ms
	// buffer — tens of ms at most.
	if p95 > 0.075 {
		t.Fatalf("95th RTT %.1f ms: COPA should be latency-aware", p95*1000)
	}
}

func TestCopaFairnessTwoFlows(t *testing.T) {
	s := sim.New(3)
	p := path(s, 50, 375000, 0.030)
	a := transport.NewSender(1, p, New())
	b := transport.NewSender(2, p, New())
	a.Start()
	s.At(5, func() { b.Start() })
	var ma, mb int64
	s.At(40, func() { ma, mb = a.AckedBytes(), b.AckedBytes() })
	s.Run(160)
	ta := float64(a.AckedBytes()-ma) * 8 / 120 / 1e6
	tb := float64(b.AckedBytes()-mb) * 8 / 120 / 1e6
	if j := stats.JainIndex([]float64{ta, tb}); j < 0.90 {
		t.Fatalf("COPA/COPA Jain %.3f (%.1f vs %.1f)", j, ta, tb)
	}
}

func TestCopaToleratesModerateRandomLoss(t *testing.T) {
	// COPA does not directly react to loss in default mode (§6.1.2).
	s := sim.New(4)
	p := path(s, 50, 375000, 0.030)
	p.Link.LossProb = 0.02
	snd := transport.NewSender(1, p, New())
	snd.Start()
	var mark int64
	s.At(15, func() { mark = snd.AckedBytes() })
	s.Run(100)
	tput := float64(snd.AckedBytes()-mark) * 8 / 85 / 1e6
	if tput < 25 {
		t.Fatalf("COPA under 2%% loss: %.1f Mbps", tput)
	}
}

func TestCopaDirectionLogic(t *testing.T) {
	c := New()
	// Prime RTT state: srtt 30 ms, no queue → increase.
	c.OnAck(transport.Ack{Bytes: netem.MTU, RTT: 0.030, Now: 0.03})
	w0 := c.CWnd()
	c.OnAck(transport.Ack{Bytes: netem.MTU, RTT: 0.030, Now: 0.032})
	if c.CWnd() <= w0 {
		t.Fatal("no queuing delay → window must grow")
	}
	// Large standing queue → target rate tiny → decrease.
	for i := 0; i < 50; i++ {
		c.OnAck(transport.Ack{Bytes: netem.MTU, RTT: 0.230, Now: 0.04 + float64(i)*0.01})
	}
	c.cwnd = 100 * mss // well above the tiny target
	w1 := c.CWnd()
	c.OnAck(transport.Ack{Bytes: netem.MTU, RTT: 0.230, Now: 0.6})
	if c.CWnd() >= w1 {
		t.Fatal("large queuing delay → window must shrink")
	}
}

func TestCopaVelocityDoubles(t *testing.T) {
	c := New()
	now := 0.0
	for i := 0; i < 400; i++ {
		now += 0.002
		c.OnAck(transport.Ack{Bytes: netem.MTU, RTT: 0.030, Now: now})
	}
	if c.velocity < 4 {
		t.Fatalf("velocity should double on sustained same-direction motion, got %v", c.velocity)
	}
}
