// Package copa implements COPA (Arun & Balakrishnan, NSDI '18) in its
// default mode: a delay-based controller that steers the sending rate
// toward 1/(δ·dq) packets per second, where dq is the queuing delay
// estimated as the difference between a short-window "standing" RTT and
// the propagation RTT, with velocity doubling for fast convergence. COPA
// is one of the latency-aware primary protocols the paper shows LEDBAT
// fails to yield to.
package copa

import (
	"pccproteus/internal/netem"
	"pccproteus/internal/stats"
	"pccproteus/internal/transport"
)

const (
	mss          = float64(netem.MTU)
	defaultDelta = 0.5
	minCwnd      = 4 * mss
	initialCwnd  = 10 * mss
)

// Controller is one COPA connection.
type Controller struct {
	// Delta trades throughput for delay; 0.5 is COPA's default.
	Delta float64

	cwnd     float64
	velocity float64
	dir      int // +1 increasing, -1 decreasing

	minRTT   stats.WindowedMin // propagation estimate, 10 s window
	standing stats.WindowedMin // standing RTT, srtt/2 window
	srtt     float64

	lastVelocityUpdate float64
	cwndAtLastUpdate   float64
	lastLoss           float64
}

// New returns a COPA controller in default mode.
func New() *Controller {
	return &Controller{
		Delta:    defaultDelta,
		cwnd:     initialCwnd,
		velocity: 1,
		dir:      1,
		minRTT:   stats.WindowedMin{Window: 10},
		standing: stats.WindowedMin{Window: 0.05},
		lastLoss: -1,
	}
}

// Name implements transport.Controller.
func (c *Controller) Name() string { return "copa" }

// OnSend implements transport.Controller.
func (c *Controller) OnSend(float64, *transport.SentPacket) {}

// CWnd implements transport.Controller.
func (c *Controller) CWnd() float64 { return c.cwnd }

// PacingRate implements transport.Controller (default cwnd pacing).
func (c *Controller) PacingRate() float64 { return 0 }

// QueuingDelay returns the current standing-minus-propagation delay
// estimate in seconds.
func (c *Controller) QueuingDelay(now float64) float64 {
	st, ok1 := c.standing.Get(now)
	mn, ok2 := c.minRTT.Get(now)
	if !ok1 || !ok2 {
		return 0
	}
	d := st - mn
	if d < 0 {
		return 0
	}
	return d
}

// OnAck implements transport.Controller.
func (c *Controller) OnAck(ack transport.Ack) {
	if c.srtt == 0 {
		c.srtt = ack.RTT
		c.lastVelocityUpdate = ack.Now
		c.cwndAtLastUpdate = c.cwnd
	} else {
		c.srtt = 0.875*c.srtt + 0.125*ack.RTT
	}
	c.standing.Window = c.srtt / 2
	c.minRTT.Add(ack.Now, ack.RTT)
	c.standing.Add(ack.Now, ack.RTT)

	dq := c.QueuingDelay(ack.Now)
	var wantUp bool
	if dq <= 0 {
		wantUp = true
	} else {
		targetRate := mss / (c.Delta * dq) // bytes per second
		currentRate := c.cwnd / c.srtt
		wantUp = currentRate < targetRate
	}
	step := c.velocity * mss * float64(ack.Bytes) / (c.Delta * c.cwnd)
	if wantUp {
		c.cwnd += step
	} else {
		c.cwnd -= step
		if c.cwnd < minCwnd {
			c.cwnd = minCwnd
		}
	}

	// Velocity update once per RTT: double if the window kept moving in
	// the same direction, reset otherwise.
	if ack.Now-c.lastVelocityUpdate >= c.srtt {
		newDir := 1
		if c.cwnd < c.cwndAtLastUpdate {
			newDir = -1
		}
		if newDir == c.dir {
			c.velocity *= 2
			if c.velocity > 32 {
				c.velocity = 32
			}
		} else {
			c.velocity = 1
		}
		c.dir = newDir
		c.lastVelocityUpdate = ack.Now
		c.cwndAtLastUpdate = c.cwnd
	}
}

// OnLoss implements transport.Controller. COPA's default mode does not
// react directly to packet loss (the delay signal already reflects the
// congestion that caused it) — which is why the paper finds COPA highly
// tolerant of random loss (§6.1.2). Only the velocity resets, so the
// window does not keep accelerating through a loss episode.
func (c *Controller) OnLoss(loss transport.Loss) {
	c.lastLoss = loss.Now
	c.velocity = 1
}
