// Package vivace exposes the PCC Vivace baseline: the same
// utility-framework machinery as Proteus (internal/core) configured with
// Vivace's original design — the gradient-rewarding utility function, a
// two-pair consistency rule instead of the majority-of-three, and only a
// fixed gradient-tolerance threshold in place of Proteus's adaptive
// noise mechanisms. The contrast between this package and core's Proteus
// presets is exactly the delta the paper's §5 introduces.
package vivace

import (
	"math/rand"

	"pccproteus/internal/core"
)

// New returns a PCC Vivace controller.
func New(rng *rand.Rand) *core.Controller { return core.NewVivace(rng) }
