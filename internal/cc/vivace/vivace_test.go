package vivace

import (
	"testing"

	"pccproteus/internal/core"
	"pccproteus/internal/netem"
	"pccproteus/internal/sim"
	"pccproteus/internal/transport"
)

func TestVivaceSaturatesCleanLink(t *testing.T) {
	s := sim.New(1)
	l := netem.NewLink(s, 50, 375000, 0.015)
	p := &netem.Path{Link: l, AckDelay: 0.015}
	cc := New(s.Rand())
	if cc.Name() != "vivace" {
		t.Fatalf("name %s", cc.Name())
	}
	snd := transport.NewSender(1, p, cc)
	snd.Start()
	var mark int64
	s.At(20, func() { mark = snd.AckedBytes() })
	s.Run(100)
	tput := float64(snd.AckedBytes()-mark) * 8 / 80 / 1e6
	if tput < 42 {
		t.Fatalf("Vivace throughput %.1f want ≥42", tput)
	}
}

func TestVivaceSlowerThanProteusOnNoisyLink(t *testing.T) {
	// §5/§6.2.1: Vivace's fixed tolerance and two-pair consistency rule
	// cost it heavily in noise relative to Proteus-P.
	run := func(proteus bool) float64 {
		s := sim.New(9)
		l := netem.NewLink(s, 50, 375000, 0.015)
		l.Jitter = netem.SpikeNoise{
			Base:      netem.LognormalNoise{Median: 0.001, Sigma: 0.8},
			SpikeProb: 0.001, SpikeMin: 0.01, SpikeMax: 0.03,
		}
		p := &netem.Path{Link: l, AckDelay: 0.015}
		var cc transport.Controller
		if proteus {
			cc = newProteusP(s)
		} else {
			cc = New(s.Rand())
		}
		snd := transport.NewSender(1, p, cc)
		snd.Start()
		var mark int64
		s.At(20, func() { mark = snd.AckedBytes() })
		s.Run(120)
		return float64(snd.AckedBytes()-mark) * 8 / 100 / 1e6
	}
	vivace, proteus := run(false), run(true)
	if proteus < vivace {
		t.Fatalf("Proteus-P (%.1f) should beat Vivace (%.1f) on the noisy link", proteus, vivace)
	}
}

func newProteusP(s *sim.Sim) transport.Controller { return core.NewProteusP(s.Rand()) }
