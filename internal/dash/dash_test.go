package dash

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pccproteus/internal/cc/cubic"
	"pccproteus/internal/core"
	"pccproteus/internal/netem"
	"pccproteus/internal/sim"
	"pccproteus/internal/transport"
)

func testPath(s *sim.Sim, mbps float64) *netem.Path {
	l := netem.NewLink(s, mbps, 500000, 0.015)
	return &netem.Path{Link: l, AckDelay: 0.015}
}

func TestCorpusShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := Corpus(10, 10, rng)
	if len(c) != 20 {
		t.Fatalf("corpus size %d", len(c))
	}
	for i, v := range c {
		if v.ChunkDur != 3 {
			t.Fatal("chunks must be 3 s")
		}
		if float64(v.Chunks)*v.ChunkDur < 180 {
			t.Fatalf("video %d shorter than 3 min", i)
		}
		if i < 10 && v.MaxBitrate() < 40 {
			t.Fatalf("4K video %d tops at %.1f Mbps", i, v.MaxBitrate())
		}
		if i >= 10 && (v.MaxBitrate() < 10 || v.MaxBitrate() > 13) {
			t.Fatalf("1080P video %d tops at %.1f Mbps", i, v.MaxBitrate())
		}
	}
}

func TestChunkBytes(t *testing.T) {
	v := Video{Ladder: []float64{8}, ChunkDur: 3}
	if v.ChunkBytes(0) != 3_000_000 {
		t.Fatalf("8 Mbps × 3 s = 3 MB, got %d", v.ChunkBytes(0))
	}
}

func TestBOLAMonotoneInBuffer(t *testing.T) {
	v := Video{Ladder: HDLadder, ChunkDur: 3, Chunks: 100}
	b := NewBOLA(24)
	prev := -1
	for buf := 0.0; buf <= 24; buf += 1.5 {
		q := b.Choose(buf, v)
		if q < prev {
			t.Fatalf("BOLA quality decreased with more buffer: %d -> %d at %.1fs", prev, q, buf)
		}
		prev = q
	}
	if b.Choose(0, v) != 0 {
		t.Fatal("empty buffer must pick the lowest rung")
	}
	if b.Choose(23, v) != len(v.Ladder)-1 {
		t.Fatalf("full buffer should pick the top rung, got %d", b.Choose(23, v))
	}
}

// Property: BOLA always returns a valid ladder index.
func TestQuickBOLAValidIndex(t *testing.T) {
	v := Video{Ladder: FourKLadder, ChunkDur: 3, Chunks: 100}
	b := NewBOLA(24)
	f := func(buf16 uint16) bool {
		buf := float64(buf16) / 100
		q := b.Choose(buf, v)
		return q >= 0 && q < len(v.Ladder)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPlayerStreamsSmoothlyWithAmpleBandwidth(t *testing.T) {
	s := sim.New(1)
	path := testPath(s, 100)
	snd := transport.NewSender(1, path, cubic.New())
	v := Video{Name: "hd", Ladder: HDLadder, ChunkDur: 3, Chunks: 40}
	p := NewPlayer(s, snd, v, NewBOLA(24), 24)
	p.Start()
	s.Run(200)
	m := p.Metrics()
	if !p.Done() {
		t.Fatalf("video did not finish (chunk %d)", p.nextChunk)
	}
	if m.RebufferRatio() > 0.001 {
		t.Fatalf("rebuffer ratio %.4f on a 100 Mbps link", m.RebufferRatio())
	}
	// With 100 Mbps for an 11 Mbps ladder, the ABR should mostly sit at
	// the top rung.
	if m.AvgBitrate() < 0.8*v.MaxBitrate() {
		t.Fatalf("avg bitrate %.1f want near %.1f", m.AvgBitrate(), v.MaxBitrate())
	}
}

func TestPlayerRebuffersWhenStarved(t *testing.T) {
	s := sim.New(2)
	path := testPath(s, 3) // 3 Mbps cannot smoothly carry even mid rungs
	snd := transport.NewSender(1, path, cubic.New())
	v := Video{Name: "hd", Ladder: HDLadder, ChunkDur: 3, Chunks: 60}
	p := NewPlayer(s, snd, v, ForceMax{}, 24)
	p.Start()
	s.Run(120)
	m := p.Metrics()
	if m.Rebuffers == 0 || m.StallTime == 0 {
		t.Fatalf("forced-max on 3 Mbps must stall (rebuffers=%d)", m.Rebuffers)
	}
}

func TestPlayerPausesWhenBufferFull(t *testing.T) {
	s := sim.New(3)
	path := testPath(s, 100)
	snd := transport.NewSender(1, path, cubic.New())
	v := Video{Name: "hd", Ladder: []float64{1}, ChunkDur: 3, Chunks: 1000}
	p := NewPlayer(s, snd, v, NewBOLA(12), 12)
	p.Start()
	s.Run(60)
	// A 1 Mbps stream on 100 Mbps fills the 12 s buffer almost instantly;
	// thereafter the fetch rate must track the playback rate (1 chunk per
	// 3 s), not the link rate.
	m := p.Metrics()
	if p.buffer > 12.001 {
		t.Fatalf("buffer exceeded cap: %.1f", p.buffer)
	}
	wantChunks := int(60/3) + int(12/3) + 2
	if p.nextChunk > wantChunks+2 {
		t.Fatalf("fetched %d chunks in 60 s, want ≈%d (app-limited)", p.nextChunk, wantChunks)
	}
	if m.RebufferRatio() != 0 {
		t.Fatal("no rebuffering expected")
	}
}

func TestHybridThresholdRules(t *testing.T) {
	s := sim.New(4)
	path := testPath(s, 100)
	c, h := newHybridForTest(s)
	snd := transport.NewSender(1, path, c)
	v := Video{Name: "hd", Ladder: HDLadder, ChunkDur: 3, Chunks: 100}
	p := NewPlayer(s, snd, v, NewBOLA(24), 24)
	p.Hybrid = h
	p.Start()
	// Before playback starts, the emergency rule holds (threshold ∞).
	if !math.IsInf(h.Threshold(), 1) {
		t.Fatalf("pre-start threshold should be ∞, got %v", h.Threshold())
	}
	s.Run(60)
	// Steady state with plenty of bandwidth: buffer near full → the
	// buffer-limit rule binds below the sufficient-rate cap.
	thr := h.Threshold()
	cap1 := p.SufficientRateG * v.MaxBitrate()
	if thr > cap1+1e-9 {
		t.Fatalf("threshold %v exceeds sufficient-rate cap %v", thr, cap1)
	}
	if math.IsInf(thr, 1) {
		t.Fatal("threshold should be finite during smooth playback")
	}
	m := p.Metrics()
	if m.RebufferRatio() > 0 {
		t.Fatal("unexpected rebuffering")
	}
}

func TestMetricsAccessors(t *testing.T) {
	m := Metrics{ChunksPlayed: 4, BitrateSum: 20, PlayTime: 90, StallTime: 10}
	if m.AvgBitrate() != 5 {
		t.Fatal("avg bitrate")
	}
	if m.RebufferRatio() != 0.1 {
		t.Fatal("rebuffer ratio")
	}
	var zero Metrics
	if zero.AvgBitrate() != 0 || zero.RebufferRatio() != 0 {
		t.Fatal("zero metrics")
	}
}

func newHybridForTest(s *sim.Sim) (transport.Controller, *core.Hybrid) {
	return core.NewProteusH(s.Rand())
}
